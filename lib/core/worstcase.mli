(** Runner-backed worst-case synthesis: {!Doall_adversary.Synth} wired
    to {!Runner.run_spec}.

    The search asks "what is the worst delivery/crash/fault schedule for
    this algorithm at this (p, t, d)?" — the question the paper answers
    with hand-built lower-bound constructions. Candidates run under the
    invariant oracle by default, so a strategy that drives an algorithm
    into an invariant violation is surfaced (and scores as an instant
    maximum) rather than crashing the search; capped runs are recorded
    as [e_completed = false] rows, never aborting a generation. *)

open Doall_adversary

val default_max_time : p:int -> t:int -> d:int -> int
(** The per-candidate time cap: generous enough that every liveness-safe
    strategy completes at experiment scale, small enough that a
    livelocking candidate costs bounded time. *)

val evaluator :
  ?check:bool ->
  ?max_time:int ->
  ?transport:Doall_sim.Config.transport ->
  algo:string ->
  p:int ->
  t:int ->
  d:int ->
  seed:int ->
  unit ->
  Strategy.t ->
  Synth.eval
(** One candidate = one {!Runner.run_spec} cell with
    [spec_adv = "strategy:" ^ to_spec], run in the calling domain.
    [?check] (default true) audits with the oracle and reports a
    violation in [e_violation] instead of raising. [?transport] (default
    point-to-point) runs every candidate on that backend. Deterministic
    in ([algo], p, t, d, [seed]) except for the measured [e_wall]. *)

val default_space : algo:string -> Strategy.space
(** [Quorum_safe] for [`Needs_quorum] algorithms (per the registry's
    liveness declaration), [Live] otherwise. *)

val default_init : space:Strategy.space -> Strategy.t list
(** Strong hand-crafted openers seeded into generation 0 (max-delay
    laggard, full-loss, flaky churn + fault storm, ...), so the search
    starts at least as bad as the chaos registry. *)

val search :
  ?seed:int ->
  ?population:int ->
  ?elite:int ->
  ?fitness:Synth.fitness ->
  ?space:Strategy.space ->
  ?init:Strategy.t list ->
  ?check:bool ->
  ?max_time:int ->
  ?transport:Doall_sim.Config.transport ->
  ?wall_cap_s:float ->
  ?on_generation:(Synth.progress -> unit) ->
  ?pool:Doall_sim.Pool.t ->
  ?jobs:int ->
  algo:string ->
  p:int ->
  t:int ->
  d:int ->
  budget:int ->
  unit ->
  Synth.outcome
(** {!Synth.search} against [algo] with the evaluator, space and seed
    population defaulted as above. [?seed] (default 0) drives both the
    search RNG and every candidate run, so a fixed seed makes the whole
    search — including the winning spec — bit-identical across repeated
    runs and across any [?jobs]. A channel [?transport] additionally
    opens the shared-channel contention dimension to the search
    ([~chan:true] to {!Synth.search}); point-to-point searches keep
    their pre-transport RNG sequence. On a channel the default space
    downgrades [Live]/[Full] to [In_model] — the channel carries its
    own loss model and the engine rejects message-fault policies on it
    — and passing a fault space explicitly raises [Invalid_argument]. *)
