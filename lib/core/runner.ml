open Doall_sim
open Doall_adversary

type algo_spec = {
  algo_name : string;
  doc : string;
  make : unit -> Algorithm.packed;
  deterministic : bool;
  liveness : [ `Any_survivor | `Needs_quorum ];
}

type adv_spec = {
  adv_name : string;
  adv_doc : string;
  instantiate : p:int -> t:int -> d:int -> Adversary.t;
}

let da_specs =
  List.map
    (fun q ->
      {
        algo_name = Printf.sprintf "da-q%d" q;
        doc =
          Printf.sprintf
            "deterministic progress-tree algorithm DA(%d) (Section 5)" q;
        make = (fun () -> Algo_da.make ~q ());
        deterministic = true;
        liveness = `Any_survivor;
      })
    [ 2; 3; 4; 5; 6; 7; 8 ]

let algorithms =
  [
    {
      algo_name = "trivial";
      doc = "oblivious baseline: every processor performs every task";
      make = (fun () -> Algo_trivial.make ());
      deterministic = true;
      liveness = `Any_survivor;
    };
    {
      algo_name = "paran1";
      doc = "randomized PA: one random permutation per processor (Sec. 6)";
      make = (fun () -> Algo_pa.make_ran1 ());
      deterministic = false;
      liveness = `Any_survivor;
    };
    {
      algo_name = "paran2";
      doc = "randomized PA: uniform random next task (Sec. 6)";
      make = (fun () -> Algo_pa.make_ran2 ());
      deterministic = false;
      liveness = `Any_survivor;
    };
    {
      algo_name = "padet";
      doc = "deterministic PA with a fixed low-d-contention list (Sec. 6)";
      make = (fun () -> Algo_pa.make_det ());
      deterministic = true;
      liveness = `Any_survivor;
    };
    {
      algo_name = "coord";
      doc =
        "synchronous-style rotating-coordinator baseline (cf. [10]); \
         timeouts assume a fast network";
      make = (fun () -> Algo_coord.make ());
      deterministic = true;
      liveness = `Any_survivor;
    };
  ]
  @ da_specs

let adversaries =
  [
    {
      adv_name = "fair";
      adv_doc = "everyone steps, messages arrive in one unit";
      instantiate = (fun ~p:_ ~t:_ ~d:_ -> Adversary.fair);
    };
    {
      adv_name = "max-delay";
      adv_doc = "fair stepping, every message takes the full d";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ ->
          Delay.into ~latency:Adversary.Maximal ~name:"max-delay"
            Delay.maximal);
    };
    {
      adv_name = "uniform-delay";
      adv_doc = "fair stepping, latency uniform on 1..d";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ -> Delay.into ~name:"uniform-delay" Delay.uniform);
    };
    {
      adv_name = "batch";
      adv_doc = "deliveries batched at stage boundaries (length min(d, t/6))";
      instantiate =
        (fun ~p:_ ~t ~d ->
          let stage_len = max 1 (min d (t / 6)) in
          Delay.into ~name:"batch" (Delay.stage_batched ~stage_len));
    };
    {
      adv_name = "solo";
      adv_doc = "only processor 0 ever advances";
      instantiate = (fun ~p:_ ~t:_ ~d:_ -> Schedule.into ~name:"solo" (Schedule.solo 0));
    };
    {
      adv_name = "round-robin";
      adv_doc = "a rotating quarter of the processors advances";
      instantiate =
        (fun ~p ~t:_ ~d:_ ->
          Schedule.into ~name:"round-robin"
            (Schedule.round_robin ~width:(max 1 (p / 4))));
    };
    {
      adv_name = "harmonic";
      adv_doc = "processor i runs (i+1) times slower than processor 0";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ -> Schedule.into ~name:"harmonic" Schedule.harmonic_speeds);
    };
    {
      adv_name = "random-half";
      adv_doc = "each processor steps with probability 1/2; uniform delays";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ ->
          Schedule.combine ~name:"random-half"
            ~schedule:(Schedule.random_subset ~prob:0.5) ~delay:Delay.uniform ());
    };
    {
      adv_name = "laggard";
      adv_doc = "omniscient: stalls processors about to perform fresh tasks";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ ->
          Schedule.combine ~name:"laggard" ~schedule:Schedule.adaptive_laggard
            ~delay:Delay.maximal ());
    };
    {
      adv_name = "lb-det";
      adv_doc = "the Theorem 3.1 stage adversary (deterministic algorithms)";
      instantiate = (fun ~p:_ ~t:_ ~d:_ -> Lb_deterministic.create ());
    };
    {
      adv_name = "lb-rand";
      adv_doc = "the Theorem 3.4 online adversary, coverage J_s selection";
      instantiate = (fun ~p:_ ~t:_ ~d:_ -> Lb_randomized.create ());
    };
    {
      adv_name = "lb-rand-random";
      adv_doc = "the Theorem 3.4 online adversary, random J_s (for PaRan2)";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ -> Lb_randomized.create ~selection:`Random ());
    };
    {
      adv_name = "partition";
      adv_doc = "two sites: fast within, full-d latency across the cut";
      instantiate =
        (fun ~p ~t:_ ~d:_ ->
          Delay.into ~name:"partition" (Delay.partition ~split:(max 1 (p / 2))));
    };
    {
      adv_name = "churn";
      adv_doc = "alternating calm (fast) and storm (full-d) periods";
      instantiate =
        (fun ~p:_ ~t ~d:_ ->
          let period = max 2 (t / 8) in
          Delay.into ~name:"churn"
            (Delay.churn ~calm:period ~storm:period));
    };
    {
      adv_name = "stragglers";
      adv_doc = "a third of the processors sit behind a full-d link";
      instantiate =
        (fun ~p ~t:_ ~d:_ ->
          Delay.into ~name:"stragglers"
            (Delay.targeted ~victims:(fun pid -> pid mod 3 = 0 && p > 1)));
    };
    {
      adv_name = "crash-half";
      adv_doc = "half the processors crash a third of the way in";
      instantiate =
        (fun ~p ~t ~d:_ ->
          Crash.into ~name:"crash-half"
            (Crash.at_time ~time:(max 1 (t / 3))
               ~pids:(List.init (p / 2) (fun i -> (2 * i) + 1))));
    };
    {
      adv_name = "crash-all-but-one";
      adv_doc = "everyone except processor 0 crashes early";
      instantiate =
        (fun ~p:_ ~t ~d:_ ->
          Crash.into ~name:"crash-all-but-one"
            (Crash.all_but_one ~survivor:0 ~time:(max 1 (t / 8))));
    };
    {
      adv_name = "crash-staggered";
      adv_doc = "the lowest live pid crashes at regular intervals";
      instantiate =
        (fun ~p ~t ~d:_ ->
          Crash.into ~name:"crash-staggered"
            (Crash.staggered ~every:(max 1 (t / max 1 p))));
    };
    (* -- chaos adversaries: beyond the paper's model (docs/FAULTS.md).
       Every one keeps pid 0 permanently up, so each registry algorithm
       stays live via its solo fallback even at 100% message loss. -- *)
    {
      adv_name = "lossy-half";
      adv_doc = "uniform delays and every message dropped with prob 1/2";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ ->
          Adversary.with_faults (Fault.drop ~prob:0.5)
            (Delay.into ~name:"lossy-half" Delay.uniform));
    };
    {
      adv_name = "lossy-all";
      adv_doc = "100% message loss: algorithms must finish solo";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ -> Fault.into ~name:"lossy-all" Fault.drop_all);
    };
    {
      adv_name = "dup-storm";
      adv_doc = "uniform delays; heavy duplication and reordering";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ ->
          Adversary.with_faults
            (Fault.all
               [
                 Fault.duplicate ~copies:2 ~prob:0.5; Fault.reorder ~prob:0.5;
               ])
            (Delay.into ~name:"dup-storm" Delay.uniform));
    };
    {
      adv_name = "flaky-restart";
      adv_doc = "processors cycle crash/recover (reset state); pid 0 stays up";
      instantiate =
        (fun ~p:_ ~t ~d:_ ->
          let crash, restart =
            Crash.flaky ~survivor:0 ~up:(max 4 (t / 4)) ~down:(max 2 (t / 8))
              ()
          in
          Schedule.combine ~name:"flaky-restart" ~delay:Delay.uniform ~crash
            ~restart ());
    };
    {
      adv_name = "chaos";
      adv_doc = "drops, duplicates, reorders and flaky restarts, all at once";
      instantiate =
        (fun ~p:_ ~t ~d:_ ->
          let crash, restart =
            Crash.flaky ~survivor:0 ~up:(max 4 (t / 4)) ~down:(max 2 (t / 8))
              ()
          in
          Schedule.combine ~name:"chaos" ~delay:Delay.uniform ~crash ~restart
            ~faults:
              (Fault.all
                 [
                   Fault.drop ~prob:0.3;
                   Fault.duplicate ~copies:2 ~prob:0.2;
                   Fault.reorder ~prob:0.3;
                 ])
            ());
    };
    (* -- shared-channel contention adversaries (docs/MODEL.md): the
       ordered and delayed classes over a multiple-access channel. Fair
       stepping and latency 1, so on a point-to-point run they all
       degenerate to [fair] (contention policies are inert there). -- *)
    {
      adv_name = "chan-ordered";
      adv_doc = "shared channel: serialize contenders lowest pid first";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ ->
          Chan.into ~name:"chan-ordered"
            (Chan.policy ~name:"ordered-low" ~order:Chan.ordered_low ()));
    };
    {
      adv_name = "chan-ordered-high";
      adv_doc = "shared channel: serialize contenders highest pid first";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ ->
          Chan.into ~name:"chan-ordered-high"
            (Chan.policy ~name:"ordered-high" ~order:Chan.ordered_high ()));
    };
    {
      adv_name = "chan-rotor";
      adv_doc = "shared channel: rotating grant across contenders";
      instantiate =
        (fun ~p:_ ~t:_ ~d:_ ->
          Chan.into ~name:"chan-rotor"
            (Chan.policy ~name:"rotor" ~order:(Chan.rotor 1) ()));
    };
    {
      adv_name = "chan-delayed";
      adv_doc =
        "shared channel: releases batched every min(d, 4) slots, so \
         submissions pile up and collide";
      instantiate =
        (fun ~p:_ ~t:_ ~d ->
          Chan.into ~name:"chan-delayed"
            (Chan.policy ~name:"delayed"
               ~hold:(Chan.batched ~cap:(max 2 (min d 4)))
               ()));
    };
    {
      adv_name = "chan-delayed-ordered";
      adv_doc =
        "shared channel: batched releases, then informed contenders \
         deferred behind redundant ones";
      instantiate =
        (fun ~p:_ ~t:_ ~d ->
          Chan.into ~name:"chan-delayed-ordered"
            (Chan.policy ~name:"delayed-ordered"
               ~order:Chan.most_informed_last
               ~hold:(Chan.batched ~cap:(max 2 (min d 4)))
               ()));
    };
  ]

let known_names to_name specs =
  String.concat ", " (List.map to_name specs)

(* Extension point: downstream libraries (e.g. doall.quorum) contribute
   algorithms without creating a dependency cycle. The ref is guarded by
   a mutex because [run_grid] workers call [find_algo] from other
   domains; registration itself should still happen before grids are
   launched (see runner.mli). *)
let registered : algo_spec list ref = ref []
let registered_mutex = Mutex.create ()

let register_algorithm spec =
  if List.exists (fun s -> s.algo_name = spec.algo_name) algorithms then
    invalid_arg
      (Printf.sprintf "Runner.register_algorithm: %S is a built-in name"
         spec.algo_name);
  Mutex.protect registered_mutex (fun () ->
      registered :=
        spec :: List.filter (fun s -> s.algo_name <> spec.algo_name) !registered)

let all_algorithms () =
  algorithms @ Mutex.protect registered_mutex (fun () -> List.rev !registered)

let find_algo name =
  match List.find_opt (fun s -> s.algo_name = name) (all_algorithms ()) with
  | Some s -> s
  | None ->
    failwith
      (Printf.sprintf "unknown algorithm %S (known: %s)" name
         (known_names (fun s -> s.algo_name) (all_algorithms ())))

type result = {
  metrics : Metrics.t;
  algo : string;
  adv : string;
  seed : int;
  wall_s : float;
  obs : Probe.snapshot option;
  spans : Span.snapshot option;
}

let strategy_prefix = "strategy:"

let find_adv name =
  if String.starts_with ~prefix:strategy_prefix name then begin
    (* dynamic adversary: a strategy-DSL spec compiled on instantiation
       (docs/FAULTS.md). Parsed here so a bad spec fails at lookup like
       an unknown name; [Strategy.into] is pure, so instantiating per
       run from worker domains honors the thread-safety contract. *)
    let plen = String.length strategy_prefix in
    let spec = String.sub name plen (String.length name - plen) in
    match Doall_adversary.Strategy.of_spec spec with
    | Ok strategy ->
      {
        adv_name = name;
        adv_doc = "compiled from a strategy-DSL spec (docs/FAULTS.md)";
        instantiate =
          (fun ~p:_ ~t:_ ~d:_ -> Doall_adversary.Strategy.into strategy);
      }
    | Error msg ->
      failwith (Printf.sprintf "bad strategy spec %S: %s" spec msg)
  end
  else
    match List.find_opt (fun s -> s.adv_name = name) adversaries with
    | Some s -> s
    | None ->
      failwith
        (Printf.sprintf
           "unknown adversary %S (known: %s; or strategy:<spec>)" name
           (known_names (fun s -> s.adv_name) adversaries))

let snapshot_of probe =
  match probe with
  | Some probe when Probe.enabled probe -> Some (Probe.snapshot probe)
  | Some _ | None -> None

(* [?profile:true] gives the engine a fresh enabled profiler; its final
   snapshot lands in [result.spans]. Like probes, spans are per-run
   state, never shared across grid cells or domains. *)
let spans_of = function
  | Some sp -> Some (Span.snapshot sp)
  | None -> None

let make_spans profile =
  if profile then Some (Span.create ()) else None

type run_spec = {
  spec_algo : string;
  spec_adv : string;
  p : int;
  t : int;
  d : int;
  seed : int;
  transport : Config.transport;
}

let spec ?(seed = 0) ?(transport = Config.Ptp) ~algo ~adv ~p ~t ~d () =
  { spec_algo = algo; spec_adv = adv; p; t; d; seed; transport }

(* point-to-point names carry no transport suffix, keeping every
   pre-transport golden pin (and the exp memo keys derived from specs)
   byte-identical *)
let transport_suffix = function
  | Config.Ptp -> ""
  | tr -> "@" ^ Config.transport_to_string tr

let spec_name s =
  Printf.sprintf "%s/%s/p%d/t%d/d%d/seed%d%s" s.spec_algo s.spec_adv s.p s.t
    s.d s.seed
    (transport_suffix s.transport)

let pp_spec ppf s =
  Format.fprintf ppf "%s/%s/p=%d/t=%d/d=%d/seed=%d%s" s.spec_algo s.spec_adv
    s.p s.t s.d s.seed
    (transport_suffix s.transport)

exception Run_timeout of { spec : run_spec; metrics : Metrics.t }

let () =
  Printexc.register_printer (function
    | Run_timeout { spec; metrics } ->
      Some
        (Format.asprintf
           "Runner.Run_timeout: %a hit the time cap at time %d (partial \
            metrics: work=%d, messages=%d, executions=%d)"
           pp_spec spec metrics.Metrics.sigma metrics.Metrics.work
           metrics.Metrics.messages metrics.Metrics.executions)
    | _ -> None)

(* Optional beyond-the-model overlay: [faults] replaces the adversary's
   fault policy for this run ([--faults] on the CLI). *)
let overlay ?faults adversary =
  match faults with
  | None -> adversary
  | Some f -> Adversary.with_faults f adversary

(* Process-wide count of engine runs started through the runner — atomic
   because grid cells execute in pool worker domains. The experiment
   subsystem's dedup tests pin deltas of this counter to prove each cell
   simulates exactly once. *)
let sims = Atomic.make 0
let sim_count () = Atomic.get sims

(* Like [run] but reports a capped run through [metrics.completed]
   instead of raising, so [run_grid] can aggregate timeouts. *)
let run_unchecked ?(seed = 0) ?max_time ?probe ?(profile = false) ?check
    ?faults ?(transport = Config.Ptp) ~algo ~adv ~p ~t ~d () =
  Atomic.incr sims;
  let aspec = find_algo algo in
  let vspec = find_adv adv in
  let cfg = Config.make ~seed ~transport ~p ~t () in
  let adversary = overlay ?faults (vspec.instantiate ~p ~t ~d) in
  let sp = make_spans profile in
  let t0 = Unix.gettimeofday () in
  let metrics =
    Engine.run_packed (aspec.make ()) cfg ~d ~adversary ?max_time ?probe
      ?spans:sp ?check ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    metrics; algo; adv; seed; wall_s;
    obs = snapshot_of probe;
    spans = spans_of sp;
  }

let run ?seed ?max_time ?probe ?profile ?check ?faults ?transport ~algo ~adv
    ~p ~t ~d () =
  let r =
    run_unchecked ?seed ?max_time ?probe ?profile ?check ?faults ?transport
      ~algo ~adv ~p ~t ~d ()
  in
  if not r.metrics.Metrics.completed then
    raise
      (Run_timeout
         {
           spec = spec ~seed:r.seed ?transport ~algo ~adv ~p ~t ~d ();
           metrics = r.metrics;
         });
  r

let run_traced ?(seed = 0) ?max_time ?probe ?(profile = false) ?check ?faults
    ?(transport = Config.Ptp) ~algo ~adv ~p ~t ~d () =
  Atomic.incr sims;
  let aspec = find_algo algo in
  let vspec = find_adv adv in
  let cfg = Config.make ~seed ~record_trace:true ~transport ~p ~t () in
  let adversary = overlay ?faults (vspec.instantiate ~p ~t ~d) in
  let sp = make_spans profile in
  let t0 = Unix.gettimeofday () in
  let metrics, trace =
    Engine.run_traced (aspec.make ()) cfg ~d ~adversary ?max_time ?probe
      ?spans:sp ?check ()
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  ( {
      metrics; algo; adv; seed; wall_s;
      obs = snapshot_of probe;
      spans = spans_of sp;
    },
    trace )

(* ------------------------------------------------------------------ *)
(* Parallel grids.                                                     *)

exception Grid_incomplete of run_spec list

let pp_grid_incomplete ppf specs =
  let n = List.length specs in
  Format.fprintf ppf
    "Runner.Grid_incomplete: %d cell(s) hit the time cap without \
     completing:"
    n;
  (* cap the listing so a mostly-capped 252-run grid stays readable *)
  let shown = 12 in
  List.iteri
    (fun i s -> if i < shown then Format.fprintf ppf "@\n  %a" pp_spec s)
    specs;
  if n > shown then Format.fprintf ppf "@\n  ... and %d more" (n - shown)

let () =
  Printexc.register_printer (function
    | Grid_incomplete specs ->
      Some (Format.asprintf "%a" pp_grid_incomplete specs)
    | _ -> None)

let grid ?(seeds = [ 0 ]) ?transport ~algos ~advs ~points () =
  List.concat_map
    (fun algo ->
      List.concat_map
        (fun adv ->
          List.concat_map
            (fun (p, t, d) ->
              List.map
                (fun seed -> spec ~seed ?transport ~algo ~adv ~p ~t ~d ())
                seeds)
            points)
        advs)
    algos

let run_spec ?max_time ?probe ?profile ?check ?faults s =
  run_unchecked ~seed:s.seed ?max_time ?probe ?profile ?check ?faults
    ~transport:s.transport ~algo:s.spec_algo ~adv:s.spec_adv ~p:s.p ~t:s.t
    ~d:s.d ()

let run_grid ?jobs ?pool ?max_time ?(probes = false) ?(profile = false)
    ?check ?faults ?on_cell specs =
  (* Resolve names in the submitting domain so an unknown algorithm or
     adversary fails fast, before any domain is spawned. *)
  List.iter
    (fun s ->
      ignore (find_algo s.spec_algo);
      ignore (find_adv s.spec_adv))
    specs;
  (* [on_cell] fires in completion order, from whichever worker domain
     finished the cell; a private mutex serializes invocations and the
     finished-count increment. *)
  let notify =
    match on_cell with
    | None -> fun _ -> ()
    | Some cb ->
      let m = Mutex.create () in
      let finished = ref 0 in
      let total = List.length specs in
      fun r ->
        Mutex.protect m (fun () ->
            incr finished;
            cb ~finished:!finished ~total r)
  in
  let one s =
    let probe = if probes then Some (Probe.create ()) else None in
    let r = run_spec ?max_time ?probe ~profile ?check ?faults s in
    notify r;
    if r.metrics.Metrics.completed then Ok r else Error s
  in
  let results =
    match pool with
    | Some pool -> Pool.map pool one specs
    | None -> Pool.run ?jobs one specs
  in
  match List.filter_map (function Error s -> Some s | Ok _ -> None) results with
  | [] -> List.map (function Ok r -> r | Error _ -> assert false) results
  | timeouts -> raise (Grid_incomplete timeouts)

let average_work ?(seeds = [ 1; 2; 3; 4; 5 ]) ?jobs ?pool ?transport ~algo
    ~adv ~p ~t ~d () =
  let specs =
    List.map (fun seed -> spec ~seed ?transport ~algo ~adv ~p ~t ~d ()) seeds
  in
  let runs = List.map (fun r -> r.metrics) (run_grid ?jobs ?pool specs) in
  let len = float_of_int (List.length runs) in
  let mean f = List.fold_left (fun acc m -> acc +. f m) 0.0 runs /. len in
  ( mean (fun m -> float_of_int m.Metrics.work),
    mean (fun m -> float_of_int m.Metrics.messages) )
