(** The fuzz suite's whole-run audit, shared between [test/test_fuzz.ml]
    and [doall fuzz --replay]: run an algorithm under an adversary with
    the invariant oracle on, then check the end-state global invariants
    — completion, all tasks performed, accounting identities, and no
    phantom knowledge (no processor believes a task done that the global
    ledger does not). *)

open Doall_sim

val audit :
  ?transport:Config.transport ->
  Algorithm.packed ->
  p:int ->
  t:int ->
  d:int ->
  adversary:Adversary.t ->
  seed:int ->
  (Metrics.t, string) result
(** [Error] carries a one-line diagnosis (an oracle violation rendered
    via {!Oracle.pp_violation}, or which end-state check failed). The
    engine runs with its default safety time cap, so a livelocked case
    surfaces as ["did not complete"] rather than hanging. [?transport]
    (default point-to-point) selects the network backend, matching the
    case's {!Doall_adversary.Fuzz_gen.case} draw. *)

val core_makers : (string * (unit -> Algorithm.packed)) list
(** Label -> constructor for every core algorithm variant the fuzz suite
    covers, in {!Doall_adversary.Fuzz_gen.labels} order. Quorum
    algorithms live outside [doall.core]; callers that cover them (the
    test suite, the CLI) append those entries themselves. *)
