(** Tasks and jobs.

    Tasks are the unit of the Do-All problem: similar (constant-time) and
    idempotent. When [p < t] the paper's algorithms group the [t] tasks
    into [p] jobs of at most [ceil(t/p)] tasks each and schedule jobs
    instead (Sections 5.1.3 and 6); performing a job costs one step per
    member task. A {!partition} fixes the grouping once so every
    processor agrees on it. *)

type partition = private {
  t : int;  (** tasks, ids [0..t-1] *)
  n : int;  (** jobs, ids [0..n-1]; [n = min(p, t)] *)
  job_of_task : int array;
  task_ranges : (int * int) array;
      (** job [j] owns tasks [fst..snd-1] (contiguous ranges) *)
}

val make : p:int -> t:int -> partition
(** Balanced contiguous grouping into [min(p, t)] jobs whose sizes differ
    by at most one (so every size is [<= ceil(t/p)]). *)

val job_size : partition -> int -> int
val tasks_of_job : partition -> int -> int list
val job_of_task : partition -> int -> int

val job_done : partition -> Doall_sim.Bitset.t -> int -> bool
(** Whether every member task of the job is set in the knowledge set. *)

val next_member : partition -> Doall_sim.Bitset.t -> int -> int option
(** First member task of the job not in the knowledge set. *)

val first_unknown : partition -> Doall_sim.Bitset.t -> int -> from:int -> int
(** [first_unknown part know j ~from] is the first member task of job
    [j] at index [>= from] not in [know], or the job's end bound when
    every remaining member is known. Knowledge sets are monotone (bits
    are never cleared), so a caller that scans a job repeatedly can
    carry the returned index as a cursor and make the total scan cost
    O(job size) instead of O(job size) {e per call} — the difference
    between [next_member] and this under a long run is the whole
    known-prefix rescan on every step. *)

val jobs_done_count : partition -> Doall_sim.Bitset.t -> int
