open Doall_sim
open Doall_perms

(* Memo of the searched low-contention list per q. [make] runs from
   Runner.run_grid worker domains, so the table is mutex-guarded; the
   search is a deterministic function of q (fixed seed), so whichever
   domain populates an entry first, every reader sees the same list. *)
let psi_cache : (int, Perm.t list) Hashtbl.t = Hashtbl.create 8
let psi_cache_mutex = Mutex.create ()

let default_psi ~q =
  Mutex.protect psi_cache_mutex (fun () ->
      match Hashtbl.find_opt psi_cache q with
      | Some psi -> psi
      | None ->
        let rng = Rng.create (0xDA5EED + q) in
        let cert = Search.certified ~rng q in
        Hashtbl.replace psi_cache q cert.Search.list;
        cert.Search.list)

(* Each replica component travels either as a full copy ([Know], the
   paper's reading) or, on the engine's delta-wire runs (Config.wire),
   as only the words touched since the sender's previous multicast. *)
type payload = Know of Bitset.t | Delta of Bitset.delta
type msg = { m_tree : payload; m_tasks : payload }

(* Union one epoch's worth of one replica component — the digest half
   of [merge_homomorphic] below, applied to tree and tasks alike. *)
let fold_payloads (ps : payload array) : payload =
  if Array.for_all (function Delta _ -> true | Know _ -> false) ps then
    Delta
      (Bitset.union_many
         (Array.map (function Delta dl -> dl | Know _ -> assert false) ps))
  else begin
    let cap =
      Array.fold_left
        (fun acc -> function
          | Know b -> max acc (Bitset.length b) | Delta _ -> acc)
        0 ps
    in
    let acc = Bitset.create cap in
    Array.iter
      (function
        | Know b -> Bitset.union_into ~dst:acc b
        | Delta dl -> Bitset.apply_delta ~dst:acc dl)
      ps;
    Know acc
  end

type frame = {
  node : int;
  depth : int;
  order : int array;
  mutable idx : int;
}

let make ?(q = 4) ?psi () : Algorithm.packed =
  let psi =
    match psi with
    | Some psi ->
      if List.length psi <> q then
        invalid_arg "Algo_da.make: psi must contain exactly q permutations";
      List.iter
        (fun pi ->
          if Perm.size pi <> q then
            invalid_arg "Algo_da.make: psi permutations must have size q")
        psi;
      psi
    | None ->
      if q < 2 || q > 8 then
        invalid_arg "Algo_da.make: default psi available for 2 <= q <= 8";
      default_psi ~q
  in
  let psi_arr = Array.of_list (List.map Perm.to_array psi) in
  (module struct
    let name = Printf.sprintf "da-q%d" q

    type nonrec msg = msg

    type state = {
      part : Task.partition;
      sh : Progress_tree.t;
      tree : Bitset.t;
      know : Bitset.t;
      trackers : (Bitset.tracker * Bitset.tracker) option;
        (* Some (tree, tasks) on delta-wire runs: words touched since
           the last multicast of each component. *)
      digits : int array;
      mutable stack : frame list;
      mutable current : int option; (* leaf node whose job is in progress *)
      mutable halted : bool;
    }

    let init (cfg : Config.t) ~pid =
      let part = Task.make ~p:cfg.p ~t:cfg.t in
      let sh = Progress_tree.shape ~q ~jobs:part.Task.n in
      let tree = Progress_tree.initial_marks sh in
      let digits = Qary.digits ~q ~width:sh.Progress_tree.h pid in
      let stack, current =
        if Progress_tree.is_leaf sh Progress_tree.root then
          ([], Some Progress_tree.root)
        else
          ( [
              {
                node = Progress_tree.root;
                depth = 0;
                order = psi_arr.(digits.(0));
                idx = 0;
              };
            ],
            None )
      in
      let know = Bitset.create cfg.t in
      let trackers =
        match cfg.Config.wire with
        | Config.Delta -> Some (Bitset.tracker tree, Bitset.tracker know)
        | Config.Full -> None
      in
      {
        part;
        sh;
        tree;
        know;
        trackers;
        digits;
        stack;
        current;
        halted = false;
      }

    let copy st =
      {
        st with
        tree = Bitset.copy st.tree;
        know = Bitset.copy st.know;
        trackers =
          Option.map
            (fun (tt, tk) ->
              (Bitset.tracker_copy tt, Bitset.tracker_copy tk))
            st.trackers;
        stack =
          List.map
            (fun fr ->
              { node = fr.node; depth = fr.depth; order = fr.order; idx = fr.idx })
            st.stack;
      }

    (* All tree/know mutations funnel through these two so the delta
       trackers never miss a touched word. *)
    let mark_tree st node =
      match st.trackers with
      | Some (tt, _) -> Bitset.set_tracked st.tree tt node
      | None -> Bitset.set st.tree node

    let mark_task st z =
      match st.trackers with
      | Some (_, tk) -> Bitset.set_tracked st.know tk z
      | None -> Bitset.set st.know z

    let receive st ~src:_ msg =
      match st.trackers with
      | Some (tt, tk) ->
        (match msg.m_tree with
         | Know b -> Bitset.union_into_tracked ~dst:st.tree tt b
         | Delta dl -> Bitset.apply_delta_tracked ~dst:st.tree tt dl);
        (match msg.m_tasks with
         | Know b -> Bitset.union_into_tracked ~dst:st.know tk b
         | Delta dl -> Bitset.apply_delta_tracked ~dst:st.know tk dl)
      | None ->
        (match msg.m_tree with
         | Know b -> Bitset.union_into ~dst:st.tree b
         | Delta dl -> Bitset.apply_delta ~dst:st.tree dl);
        (match msg.m_tasks with
         | Know b -> Bitset.union_into ~dst:st.know b
         | Delta dl -> Bitset.apply_delta ~dst:st.know dl)

    (* Both components of [receive] are src-independent monotone unions
       into disjoint sets, so folding an epoch componentwise delivers
       exactly what the per-record walk would (algorithm.mli). *)
    let merge_homomorphic =
      Some
        (fun msgs ->
          {
            m_tree = fold_payloads (Array.map (fun m -> m.m_tree) msgs);
            m_tasks = fold_payloads (Array.map (fun m -> m.m_tasks) msgs);
          })

    let is_done st = Bitset.is_full st.know
    let done_tasks st = st.know

    let snapshot st =
      match st.trackers with
      | Some (tt, tk) ->
        Some
          {
            m_tree = Delta (Bitset.delta_flush st.tree tt);
            m_tasks = Delta (Bitset.delta_flush st.know tk);
          }
      | None ->
        Some
          {
            m_tree = Know (Bitset.copy st.tree);
            m_tasks = Know (Bitset.copy st.know);
          }

    let perform_at_leaf st leaf =
      (* One member task of the leaf's job; mark and multicast when the
         whole job is known done. *)
      let j = Progress_tree.job_of_leaf st.sh leaf in
      match Task.next_member st.part st.know j with
      | Some z ->
        mark_task st z;
        if Task.job_done st.part st.know j then begin
          mark_tree st leaf;
          st.current <- None;
          Algorithm.result ~performed:z ?broadcast:(snapshot st) ()
        end
        else begin
          st.current <- Some leaf;
          Algorithm.result ~performed:z ()
        end
      | None ->
        (* The job completed elsewhere while we were heading to it. *)
        mark_tree st leaf;
        st.current <- None;
        Algorithm.result ?broadcast:(snapshot st) ()

    let step st =
      if st.halted then Algorithm.nothing
      else if is_done st && st.current = None then begin
        st.halted <- true;
        Algorithm.result ~halt:true ()
      end
      else
        match st.current with
        | Some leaf -> perform_at_leaf st leaf
        | None -> (
          match st.stack with
          | [] ->
            (* Traversal finished: the root is marked, so all jobs are
               done and [is_done] fires above on the next step. *)
            Algorithm.nothing
          | fr :: rest ->
            if Bitset.mem st.tree fr.node then begin
              (* Subtree known done (learned from a message): prune. *)
              st.stack <- rest;
              Algorithm.nothing
            end
            else if fr.idx >= st.sh.Progress_tree.q then begin
              (* Post-order completion: mark the node and share the news
                 (lines 50-52 of Fig. 3). *)
              mark_tree st fr.node;
              st.stack <- rest;
              Algorithm.result ?broadcast:(snapshot st) ()
            end
            else begin
              let branch = fr.order.(fr.idx) in
              fr.idx <- fr.idx + 1;
              let c = Progress_tree.child st.sh fr.node branch in
              if Bitset.mem st.tree c then Algorithm.nothing
              else if Progress_tree.is_leaf st.sh c then perform_at_leaf st c
              else begin
                st.stack <-
                  {
                    node = c;
                    depth = fr.depth + 1;
                    order = psi_arr.(st.digits.(fr.depth + 1));
                    idx = 0;
                  }
                  :: st.stack;
                Algorithm.nothing
              end
            end)
  end)
