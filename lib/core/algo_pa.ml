open Doall_sim
open Doall_perms

let det_list_seed = 0xD0A11

type variant = Ran1 | Ran2 | Det of Perm.t list option

let variant_name = function
  | Ran1 -> "paran1"
  | Ran2 -> "paran2"
  | Det _ -> "padet"

let make_variant ?(gossip = `Full) ?(broadcast_every = 1) ?fanout variant :
    Algorithm.packed =
  if broadcast_every < 1 then
    invalid_arg "Algo_pa: broadcast_every must be >= 1";
  (match fanout with
   | Some k when k < 1 -> invalid_arg "Algo_pa: fanout must be >= 1"
   | Some _ | None -> ());
  (module struct
    let name =
      variant_name variant
      ^ (match gossip with `Full -> "" | `Single -> "-single")
      ^ (if broadcast_every = 1 then ""
         else Printf.sprintf "-b%d" broadcast_every)
      ^ match fanout with
        | None -> ""
        | Some k -> Printf.sprintf "-f%d" k

    (* [Know]: a full copy of the sender's knowledge (the paper's
       reading, always correct). [Delta]: only the words touched since
       the sender's previous broadcast — exact on the engine's
       delta-wire runs (Config.wire), where channels are FIFO and
       reliable so every receiver already holds the sender's earlier
       flushes. *)
    type msg = Know of Bitset.t | Delta of Bitset.delta

    type state = {
      p : int;
      pid : int;
      part : Task.partition;
      know : Bitset.t;
      tracker : Bitset.tracker option;
        (* Some = delta wire: words of [know] touched since the last
           broadcast. None = full payloads (also for the `Single and
           fanout variants, whose payloads are not whole-knowledge
           snapshots of a FIFO stream). *)
      order : int array;
        (* Ran1/Det: the job schedule; Ran2: the pool, whose first [pos]
           entries are the not-yet-eliminated candidates. *)
      mutable pos : int;
      rng : Rng.t;
      mutable current : int option; (* job in progress *)
      mutable cur_lo : int;
        (* Scan cursor into the current job: every member below it is
           known done. Knowledge is monotone, so the cursor only ever
           advances — [select] keeps it on the job's first unknown
           member, turning the per-step job scan from O(known prefix)
           into O(new gains) amortized. Meaningful only while [current]
           is [Some _]. *)
      mutable performed_steps : int; (* for broadcast throttling *)
      mutable halted : bool;
    }

    let init (cfg : Config.t) ~pid =
      let part = Task.make ~p:cfg.p ~t:cfg.t in
      let n = part.Task.n in
      let rng = Rng.create ((cfg.seed * 0x10001) + (pid * 7919) + 17) in
      let order, pos =
        match variant with
        | Ran1 -> (Rng.permutation rng n, 0)
        | Ran2 -> (Array.init n (fun i -> i), n)
        | Det psi ->
          let psi =
            match psi with
            | Some psi -> psi
            | None -> Gen.seeded_list ~seed:det_list_seed ~n ~count:cfg.p
          in
          let len = List.length psi in
          if len = 0 then invalid_arg "Algo_pa: empty schedule list";
          let pi = List.nth psi (pid mod len) in
          if Perm.size pi <> n then
            invalid_arg "Algo_pa: schedule size must be min(p, t)";
          (Perm.to_array pi, 0)
      in
      let know = Bitset.create cfg.t in
      let tracker =
        match (cfg.wire, gossip, fanout) with
        | Config.Delta, `Full, None -> Some (Bitset.tracker know)
        | _ -> None
      in
      {
        p = cfg.p;
        pid;
        part;
        know;
        tracker;
        order;
        pos;
        rng;
        current = None;
        cur_lo = 0;
        performed_steps = 0;
        halted = false;
      }

    let copy st =
      {
        st with
        know = Bitset.copy st.know;
        tracker = Option.map Bitset.tracker_copy st.tracker;
        order = Array.copy st.order;
        rng = Rng.copy st.rng;
      }

    let receive st ~src:_ msg =
      match (msg, st.tracker) with
      | Know b, None -> Bitset.union_into ~dst:st.know b
      | Know b, Some tk -> Bitset.union_into_tracked ~dst:st.know tk b
      | Delta dl, Some tk -> Bitset.apply_delta_tracked ~dst:st.know tk dl
      | Delta dl, None -> Bitset.apply_delta ~dst:st.know dl

    (* [receive] never reads [src] and only ORs payload bits into
       [know]: a source-independent monotone union for every variant,
       so one epoch of broadcasts may be pre-folded (algorithm.mli). *)
    let merge_homomorphic =
      Some
        (fun msgs ->
          if Array.for_all (function Delta _ -> true | Know _ -> false) msgs
          then
            Delta
              (Bitset.union_many
                 (Array.map
                    (function Delta dl -> dl | Know _ -> assert false)
                    msgs))
          else begin
            (* any [Know] payload (`Single gossip): union into a fresh
               full-capacity set *)
            let cap =
              Array.fold_left
                (fun acc -> function
                  | Know b -> max acc (Bitset.length b) | Delta _ -> acc)
                0 msgs
            in
            let acc = Bitset.create cap in
            Array.iter
              (function
                | Know b -> Bitset.union_into ~dst:acc b
                | Delta dl -> Bitset.apply_delta ~dst:acc dl)
              msgs;
            Know acc
          end)

    let is_done st = Bitset.is_full st.know
    let done_tasks st = st.know

    let job_end st j = snd st.part.Task.task_ranges.(j)

    (* Advance the cursor to job [j]'s first unknown member; false when
       the job is finished. Equivalent to [not (Task.job_done ...)] but
       amortized O(gains) across a job's lifetime instead of a fresh
       known-prefix rescan per step. *)
    let current_pending st j =
      st.cur_lo <- Task.first_unknown st.part st.know j ~from:st.cur_lo;
      st.cur_lo < job_end st j

    (* Select: the next job to work on, or None when everything this
       processor can see is done. Leaves [cur_lo] on the returned job's
       first unknown member. *)
    let select st =
      match st.current with
      | Some j when current_pending st j -> Some j
      | Some _ | None -> (
        st.current <- None;
        let pick j =
          st.cur_lo <-
            Task.first_unknown st.part st.know j
              ~from:(fst st.part.Task.task_ranges.(j));
          Some j
        in
        match variant with
        | Ran1 | Det _ ->
          let n = Array.length st.order in
          while
            st.pos < n && Task.job_done st.part st.know st.order.(st.pos)
          do
            st.pos <- st.pos + 1
          done;
          if st.pos < n then pick st.order.(st.pos) else None
        | Ran2 ->
          (* Uniform among not-known-done jobs: draw from the pool,
             lazily evicting jobs discovered done. *)
          let found = ref None in
          while !found = None && st.pos > 0 do
            let idx = Rng.int st.rng st.pos in
            let j = st.order.(idx) in
            if Task.job_done st.part st.know j then begin
              st.order.(idx) <- st.order.(st.pos - 1);
              st.order.(st.pos - 1) <- j;
              st.pos <- st.pos - 1
            end
            else found := Some j
          done;
          Option.fold ~none:None ~some:pick !found)

    let step st =
      if st.halted then Algorithm.nothing
      else if is_done st then begin
        st.halted <- true;
        Algorithm.result ~halt:true ()
      end
      else
        match select st with
        | None ->
          (* All jobs known done but [is_done] false cannot happen (the
             partition covers every task); defensive no-op. *)
          Algorithm.nothing
        | Some j ->
          if st.cur_lo >= job_end st j then
            Algorithm.nothing (* unreachable: select checked *)
          else begin
            let z = st.cur_lo in
            (match st.tracker with
             | Some tk -> Bitset.set_tracked st.know tk z
             | None -> Bitset.set st.know z);
            st.current <- (if current_pending st j then Some j else None);
            st.performed_steps <- st.performed_steps + 1;
            (* Throttling (extension, cf. the paper's closing open
               problem): broadcast every k-th performing step, plus
               always on local completion so the news spreads. *)
            if
              st.performed_steps mod broadcast_every = 0
              || Bitset.is_full st.know
            then begin
              let payload =
                match gossip with
                | `Full -> (
                  match st.tracker with
                  | Some tk -> Delta (Bitset.delta_flush st.know tk)
                  | None -> Know (Bitset.copy st.know))
                | `Single ->
                  (* Ablation: announce only the task just performed. *)
                  let b = Bitset.create (Bitset.length st.know) in
                  Bitset.set b z;
                  Know b
              in
              match fanout with
              | None -> Algorithm.result ~performed:z ~broadcast:payload ()
              | Some k when k >= st.p - 1 ->
                Algorithm.result ~performed:z ~broadcast:payload ()
              | Some k ->
                (* Gossip extension (cf. [12]): k distinct random
                   destinations instead of all p-1. The payload is fresh
                   and never mutated after this step, so one copy can be
                   shared by all recipients. *)
                let dests =
                  Rng.sample_without_replacement st.rng k (st.p - 1)
                in
                let unicasts =
                  Array.to_list
                    (Array.map
                       (fun i ->
                         ((if i >= st.pid then i + 1 else i), payload))
                       dests)
                in
                Algorithm.result ~performed:z ~unicasts ()
            end
            else Algorithm.result ~performed:z ()
          end
  end)

let make_ran1 ?gossip ?broadcast_every ?fanout () =
  make_variant ?gossip ?broadcast_every ?fanout Ran1

let make_ran2 ?gossip ?broadcast_every ?fanout () =
  make_variant ?gossip ?broadcast_every ?fanout Ran2

let make_det ?gossip ?broadcast_every ?fanout ?psi () =
  make_variant ?gossip ?broadcast_every ?fanout (Det psi)
