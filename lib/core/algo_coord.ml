open Doall_sim

type msg =
  | Assign of { epoch : int; chunk : int array }
  | Report of { epoch : int; know : Bitset.t }
  | Summary of { epoch : int; know : Bitset.t }

let make ?(patience = 8) () : Algorithm.packed =
  if patience < 1 then invalid_arg "Algo_coord.make: patience >= 1";
  (module struct
    let name = "coord"

    type nonrec msg = msg

    type state = {
      p : int;
      pid : int;
      t : int;
      know : Bitset.t;
      mutable epoch : int;
      mutable chunk : int list; (* assigned tasks still to perform *)
      mutable reported : bool; (* Report sent for the current epoch *)
      mutable assigns_sent : bool; (* coordinator: Assigns are out *)
      mutable reports_in : Bitset.t; (* coordinator: who reported this epoch *)
      mutable idle_steps : int;
      fallback_order : int array;
      mutable fallback_pos : int;
      mutable outbox : (int * msg) list;
      mutable halted : bool;
    }

    let init (cfg : Config.t) ~pid =
      let t = cfg.Config.t in
      {
        p = cfg.Config.p;
        pid;
        t;
        know = Bitset.create t;
        epoch = 0;
        chunk = [];
        reported = false;
        assigns_sent = false;
        reports_in = Bitset.create cfg.Config.p;
        idle_steps = 0;
        (* own rotation: spreads uncoordinated fallback work *)
        fallback_order = Array.init t (fun i -> (i + (pid * t / cfg.Config.p)) mod t);
        fallback_pos = 0;
        outbox = [];
        halted = false;
      }

    let copy st =
      {
        st with
        know = Bitset.copy st.know;
        reports_in = Bitset.copy st.reports_in;
        fallback_order = Array.copy st.fallback_order;
      }

    let is_done st = Bitset.is_full st.know
    let done_tasks st = st.know

    (* Not a union: [receive] branches on the message kind, the epoch
       counter, and [src] (coordinator report accounting) — folding an
       epoch of messages would lose Assign/Report semantics. *)
    let merge_homomorphic = None

    let coordinator_of st epoch = epoch mod st.p
    let am_coordinator st = coordinator_of st st.epoch = st.pid

    let reset_epoch_state st =
      st.chunk <- [];
      st.reported <- false;
      st.assigns_sent <- false;
      st.idle_steps <- 0;
      (* bitsets are monotone by design, so a coordinator term gets a
         fresh report ledger instead of a cleared one *)
      st.reports_in <- Bitset.create st.p

    let advance_epoch st epoch =
      st.epoch <- epoch;
      reset_epoch_state st

    let receive st ~src msg =
      match msg with
      | Assign { epoch; chunk } ->
        if epoch >= st.epoch then begin
          if epoch > st.epoch then advance_epoch st epoch;
          st.chunk <-
            List.filter
              (fun z -> not (Bitset.mem st.know z))
              (Array.to_list chunk);
          st.reported <- false;
          st.idle_steps <- 0
        end
      | Report { epoch; know } ->
        Bitset.union_into ~dst:st.know know;
        if epoch = st.epoch && am_coordinator st then
          Bitset.set st.reports_in src
      | Summary { epoch; know } ->
        Bitset.union_into ~dst:st.know know;
        if epoch >= st.epoch then advance_epoch st (epoch + 1)

    let flush st ?performed ?broadcast ?halt () =
      let unicasts = st.outbox in
      st.outbox <- [];
      Algorithm.result ?performed ?broadcast ~unicasts ?halt ()

    (* Perform the next pending chunk task not already known done. *)
    let rec perform_chunk st =
      match st.chunk with
      | [] -> None
      | z :: rest ->
        st.chunk <- rest;
        if Bitset.mem st.know z then perform_chunk st
        else begin
          Bitset.set st.know z;
          Some z
        end

    let fallback_task st =
      let n = Array.length st.fallback_order in
      let rec scan tries =
        if tries >= n then None
        else begin
          let z = st.fallback_order.(st.fallback_pos) in
          st.fallback_pos <- (st.fallback_pos + 1) mod n;
          if Bitset.mem st.know z then scan (tries + 1) else Some z
        end
      in
      scan 0

    let make_chunks st =
      (* Round-robin the tasks we do not know done over all p processors,
         our own chunk first so the coordinator also works. *)
      let undone = Bitset.missing st.know in
      let buckets = Array.make st.p [] in
      List.iteri
        (fun i z -> buckets.(i mod st.p) <- z :: buckets.(i mod st.p))
        undone;
      Array.map List.rev buckets

    let coordinator_step st =
      if not st.assigns_sent then begin
        let buckets = make_chunks st in
        st.chunk <- buckets.(st.pid);
        for i = 0 to st.p - 1 do
          if i <> st.pid then
            st.outbox <-
              ( i,
                Assign
                  { epoch = st.epoch; chunk = Array.of_list buckets.(i) } )
              :: st.outbox
        done;
        st.assigns_sent <- true;
        st.idle_steps <- 0;
        flush st ()
      end
      else
        match perform_chunk st with
        | Some z -> flush st ~performed:z ()
        | None ->
          let all_reported =
            (* everyone but me *)
            Bitset.cardinal st.reports_in >= st.p - 1
          in
          if all_reported || st.idle_steps > patience then begin
            (* close the epoch: share merged knowledge, move on *)
            let epoch = st.epoch in
            advance_epoch st (epoch + 1);
            flush st
              ~broadcast:(Summary { epoch; know = Bitset.copy st.know })
              ()
          end
          else begin
            st.idle_steps <- st.idle_steps + 1;
            (* waiting on reports: work ahead on fallback rather than idle *)
            match fallback_task st with
            | Some z ->
              Bitset.set st.know z;
              flush st ~performed:z ()
            | None -> flush st ()
          end

    let worker_step st =
      match perform_chunk st with
      | Some z -> flush st ~performed:z ()
      | None ->
        if not st.reported then begin
          st.reported <- true;
          st.outbox <-
            ( coordinator_of st st.epoch,
              Report { epoch = st.epoch; know = Bitset.copy st.know } )
            :: st.outbox;
          flush st ()
        end
        else begin
          st.idle_steps <- st.idle_steps + 1;
          if st.idle_steps > 4 * patience then begin
            (* long silence: assume the coordinator is gone *)
            advance_epoch st (st.epoch + 1)
          end;
          if st.idle_steps > patience then
            match fallback_task st with
            | Some z ->
              Bitset.set st.know z;
              flush st ~performed:z ()
            | None -> flush st ()
          else flush st ()
        end

    let step st =
      if st.halted then Algorithm.nothing
      else if is_done st then begin
        st.halted <- true;
        (* last service to the others: share the completed picture *)
        flush st
          ~broadcast:(Summary { epoch = st.epoch; know = Bitset.copy st.know })
          ~halt:true ()
      end
      else if am_coordinator st then coordinator_step st
      else worker_step st
  end)
