open Doall_sim

type partition = {
  t : int;
  n : int;
  job_of_task : int array;
  task_ranges : (int * int) array;
}

let make ~p ~t =
  if p <= 0 || t <= 0 then invalid_arg "Task.make: p and t must be positive";
  let n = min p t in
  let base = t / n and extra = t mod n in
  let task_ranges = Array.make n (0, 0) in
  let job_of_task = Array.make t 0 in
  let start = ref 0 in
  for j = 0 to n - 1 do
    let size = base + if j < extra then 1 else 0 in
    task_ranges.(j) <- (!start, !start + size);
    for z = !start to !start + size - 1 do
      job_of_task.(z) <- j
    done;
    start := !start + size
  done;
  assert (!start = t);
  { t; n; job_of_task; task_ranges }

let check_job part j =
  if j < 0 || j >= part.n then invalid_arg "Task: job id out of range"

let job_size part j =
  check_job part j;
  let lo, hi = part.task_ranges.(j) in
  hi - lo

let tasks_of_job part j =
  check_job part j;
  let lo, hi = part.task_ranges.(j) in
  List.init (hi - lo) (fun k -> lo + k)

let job_of_task part z =
  if z < 0 || z >= part.t then invalid_arg "Task.job_of_task: out of range";
  part.job_of_task.(z)

let job_done part know j =
  check_job part j;
  let lo, hi = part.task_ranges.(j) in
  let rec go z = z >= hi || (Bitset.mem know z && go (z + 1)) in
  go lo

let next_member part know j =
  check_job part j;
  let lo, hi = part.task_ranges.(j) in
  let rec go z =
    if z >= hi then None else if Bitset.mem know z then go (z + 1) else Some z
  in
  go lo

let first_unknown part know j ~from =
  check_job part j;
  let lo, hi = part.task_ranges.(j) in
  let z = ref (max lo from) in
  while !z < hi && Bitset.mem know !z do incr z done;
  !z

let jobs_done_count part know =
  let c = ref 0 in
  for j = 0 to part.n - 1 do
    if job_done part know j then incr c
  done;
  !c
