open Doall_adversary

(* Well above what any liveness-safe strategy needs at experiment scale
   (laggard + max delay completes in O(t + d·t/p) ticks), well below the
   engine's own safety net, so a livelocking candidate is charged a
   bounded, predictable cost. *)
let default_max_time ~p ~t ~d = 4000 + (60 * (t + d)) + (20 * p)

let evaluator ?(check = true) ?max_time ?transport ~algo ~p ~t ~d ~seed () =
  let max_time =
    match max_time with Some m -> m | None -> default_max_time ~p ~t ~d
  in
  fun strategy ->
    let spec =
      Runner.spec ~seed ?transport ~algo
        ~adv:("strategy:" ^ Strategy.to_spec strategy)
        ~p ~t ~d ()
    in
    match Runner.run_spec ~max_time ~check spec with
    | result ->
        let m = result.Runner.metrics in
        {
          Synth.e_work = m.Doall_sim.Metrics.work;
          e_messages = m.messages;
          e_sigma = m.sigma;
          e_completed = m.completed;
          e_violation = None;
          e_wall = result.wall_s;
        }
    | exception Doall_sim.Oracle.Invariant_violation v ->
        {
          Synth.e_work = 0;
          e_messages = 0;
          e_sigma = 0;
          e_completed = false;
          e_violation =
            Some (Format.asprintf "%a" Doall_sim.Oracle.pp_violation v);
          e_wall = 0.;
        }

let default_space ~algo =
  match (Runner.find_algo algo).Runner.liveness with
  | `Needs_quorum -> Strategy.Quorum_safe
  | `Any_survivor -> Strategy.Live

(* Hand specs the search must at least tie: the strongest registry
   adversaries, re-expressed in the DSL. *)
let default_init ~space =
  let specs =
    match space with
    | Strategy.Quorum_safe ->
        [
          "sched=all;delay=max";
          "sched=rr:2;delay=stage:4";
          "sched=harmonic;delay=uniform";
        ]
    | Strategy.In_model ->
        [
          "sched=all;delay=max";
          "sched=laggard;delay=max";
          "sched=all;delay=max;crash=flaky:4:4";
          "sched=laggard;delay=stage:8;crash=staggered:8";
        ]
    | Strategy.Live | Strategy.Full ->
        [
          "sched=all;delay=max;fault=drop:1";
          "sched=laggard;delay=max";
          "sched=laggard;delay=max;fault=drop:1";
          "sched=all;delay=max;crash=flaky:4:4;fault=drop:0.9;fault=dup:0.2:2;fault=reorder:0.3";
          "sched=harmonic;delay=stage:4;crash=staggered:8";
        ]
  in
  List.filter_map
    (fun s -> match Strategy.of_spec s with Ok t -> Some t | Error _ -> None)
    specs

let search ?(seed = 0) ?population ?elite ?fitness ?space ?init ?check
    ?max_time ?transport ?wall_cap_s ?on_generation ?pool ?jobs ~algo ~p ~t
    ~d ~budget () =
  (* channel targets search the chan-rule dimension too; ptp searches
     stay RNG-identical to before the transport axis existed *)
  let chan =
    match transport with
    | Some (Doall_sim.Config.Channel _) -> true
    | Some Doall_sim.Config.Ptp | None -> false
  in
  let space =
    match (space, chan) with
    | Some (Strategy.Live | Strategy.Full), true ->
        (* the channel has its own loss model; the engine rejects
           message-fault policies on it, so a fault space cannot run *)
        invalid_arg
          "Worstcase.search: message-fault spaces (live/full) require the \
           point-to-point transport; use in-model on a channel"
    | Some s, _ -> s
    | None, true -> (
        match default_space ~algo with
        | Strategy.Live | Strategy.Full -> Strategy.In_model
        | s -> s)
    | None, false -> default_space ~algo
  in
  let init = match init with Some l -> l | None -> default_init ~space in
  let eval = evaluator ?check ?max_time ?transport ~algo ~p ~t ~d ~seed () in
  Synth.search ~seed ?population ?elite ~space ~init ?fitness ~chan
    ?wall_cap_s ?on_generation ?pool ?jobs ~eval ~p ~t ~d ~budget ()
