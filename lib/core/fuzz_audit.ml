open Doall_sim

let audit ?(transport = Config.Ptp) (packed : Algorithm.packed) ~p ~t ~d
    ~adversary ~seed =
  let module A = (val packed : Algorithm.S) in
  let module E = Engine.Make (A) in
  let cfg = Config.make ~seed ~transport ~p ~t () in
  let eng = E.create ~check:true cfg ~d ~adversary in
  match E.run eng with
  | exception Oracle.Invariant_violation v ->
      Error (Format.asprintf "oracle: %a" Oracle.pp_violation v)
  | m ->
      let global = E.global_done eng in
      if not m.Metrics.completed then Error "did not complete"
      else if not (Bitset.is_full global) then Error "unperformed tasks"
      else if m.Metrics.executions < t then Error "executions < t"
      else if m.Metrics.work < m.Metrics.executions then
        Error "work below executions"
      else begin
        let phantom = ref false in
        for pid = 0 to p - 1 do
          if not (Bitset.subset (A.done_tasks (E.state eng pid)) global) then
            phantom := true
        done;
        if !phantom then Error "phantom knowledge" else Ok m
      end

let core_makers =
  [
    ("trivial", fun () -> Algo_trivial.make ());
    ("da-q2", fun () -> Algo_da.make ~q:2 ());
    ("da-q5", fun () -> Algo_da.make ~q:5 ());
    ("paran1", fun () -> Algo_pa.make_ran1 ());
    ("paran2", fun () -> Algo_pa.make_ran2 ());
    ("padet", fun () -> Algo_pa.make_det ());
    ("padet-throttled", fun () -> Algo_pa.make_det ~broadcast_every:4 ());
    ("paran1-fanout2", fun () -> Algo_pa.make_ran1 ~fanout:2 ());
    ("coord", fun () -> Algo_coord.make ());
  ]
