(** Wiring: named algorithms x named adversaries x (p, t, d) -> metrics.

    The registries give the CLI, the examples, the tests and the
    benchmark harness one shared vocabulary. Adversary constructors are
    invoked per run because the lower-bound adversaries are stateful.

    {1 Thread-safety contract}

    {!run_grid} fans runs across a {!Doall_sim.Pool} of domains, so
    everything a single run touches must be per-run state:

    - [adv_spec.instantiate] is called once {e per run, from the worker
      domain that executes the run}, and must return an adversary whose
      mutable state is fresh and unshared (stateless adversaries such as
      [Adversary.fair] may be returned shared). All built-in adversaries
      satisfy this; so must registered ones.
    - [algo_spec.make] is likewise called once per run from the worker
      domain and must return a packed module whose [init] builds
      per-processor state only from the run's [Config]. Internal memo
      tables (e.g. the DA(q) searched-list cache) must be guarded — see
      [lib/core/algo_da.ml].
    - {!register_algorithm} is safe to call from any domain, but
      registration racing a live grid would let some runs of that grid
      see the algorithm and others not; register at startup, before
      launching grids (the CLI and the bench harness do).

    Each run builds its own [Config] and derives every [Rng] stream from
    the run's seed, so results are bit-identical for any [?jobs],
    including [1] — pinned by [test/test_pool.ml]. *)

open Doall_sim

type algo_spec = {
  algo_name : string;
  doc : string;
  make : unit -> Algorithm.packed;
  deterministic : bool;
      (** true when the algorithm draws no coins (DA, PaDet, trivial) *)
  liveness : [ `Any_survivor | `Needs_quorum ];
      (** [`Any_survivor]: terminates whenever at least one processor
          keeps taking steps (the paper's standard condition).
          [`Needs_quorum]: additionally requires a quorum of processors
          to keep taking steps (e.g. {!Doall_quorum.Algo_awq}); under
          quorum-killing adversaries such runs honestly fail to
          complete. *)
}

type adv_spec = {
  adv_name : string;
  adv_doc : string;
  instantiate : p:int -> t:int -> d:int -> Adversary.t;
}

val algorithms : algo_spec list
(** The built-ins: trivial, paran1, paran2, padet, da-q2 .. da-q8. *)

val register_algorithm : algo_spec -> unit
(** Add (or replace) an externally provided algorithm; built-in names are
    protected ([Invalid_argument]). Used by [Doall_quorum.Register]. *)

val all_algorithms : unit -> algo_spec list
(** Built-ins plus everything registered so far. *)

val adversaries : adv_spec list
(** fair, max-delay, uniform-delay, batch, solo, round-robin,
    harmonic, random-half, laggard, lb-det, lb-rand, lb-rand-random,
    crash-half, crash-all-but-one, crash-staggered — plus the
    beyond-the-model chaos adversaries of docs/FAULTS.md: lossy-half,
    lossy-all, dup-storm, flaky-restart, chaos. Every chaos adversary
    keeps pid 0 permanently alive, so all registry algorithms terminate
    under them (pinned by [test/test_faults.ml], including at 100%
    message loss). The shared-channel contention adversaries
    chan-ordered, chan-ordered-high, chan-rotor, chan-delayed and
    chan-delayed-ordered ({!Doall_adversary.Chan}) are also registered;
    their contention rules only bite on a channel transport — on
    point-to-point they degenerate to [fair]. *)

val find_algo : string -> algo_spec
(** Raises [Failure] with a message listing known names. *)

val find_adv : string -> adv_spec
(** Registry lookup, plus one dynamic family: a name of the form
    ["strategy:<spec>"] compiles the {!Doall_adversary.Strategy} DSL
    spec into an adversary on the spot — every runner entry point (and
    through them the CLI's [--adv], the experiment contexts and their
    memo caches) accepts synthesized strategies transparently. Raises
    [Failure] on unknown names and unparsable specs. *)

type result = {
  metrics : Metrics.t;
  algo : string;
  adv : string;
  seed : int;
  wall_s : float;
      (** wall-clock of the simulation itself (engine run only, not
          registry lookup or adversary construction) — the per-cell
          timing column of exported grid results. Machine-dependent:
          excluded from all determinism comparisons. *)
  obs : Probe.snapshot option;
      (** final probe snapshot when the run was instrumented (an
          enabled [?probe] was passed, or [run_grid ~probes:true]);
          [None] otherwise. *)
  spans : Span.snapshot option;
      (** final self-profiler snapshot when the run was profiled
          ([?profile:true]): per-phase wall-clock totals and enter
          counts for the engine's [deliver] / [algo_step] / [adversary]
          / [bcast_maint] / [oracle] sections (docs/OBSERVABILITY.md).
          Totals are machine-dependent like [wall_s]; counts are
          deterministic. [None] when not profiled. *)
}

type run_spec = {
  spec_algo : string;
  spec_adv : string;
  p : int;
  t : int;
  d : int;
  seed : int;
  transport : Config.transport;
      (** which network backend the cell runs on; [Config.Ptp] is the
          paper's reliable point-to-point model, the channel variants
          are the shared-medium extension of docs/MODEL.md *)
}
(** One cell of an experiment grid, by registry name. *)

exception Run_timeout of { spec : run_spec; metrics : Metrics.t }
(** Raised by {!run} and {!run_traced} when the run hits its time cap
    without completing. Carries the full partial metrics (work,
    messages, executions, per-processor work so far; [sigma] is the cap
    time and [completed] is false) so callers can report how far the
    run got instead of discarding it. A printable form is installed via
    [Printexc.register_printer]. *)

val sim_count : unit -> int
(** Process-wide number of engine runs started through the runner (any
    entry point, any domain). Deltas of this counter let tests assert
    that memoized experiment cells simulate exactly once. *)

val run :
  ?seed:int ->
  ?max_time:int ->
  ?probe:Probe.t ->
  ?profile:bool ->
  ?check:bool ->
  ?faults:Adversary.faults ->
  ?transport:Config.transport ->
  algo:string ->
  adv:string ->
  p:int ->
  t:int ->
  d:int ->
  unit ->
  result
(** One simulation. Raises {!Run_timeout} (with the partial metrics) if
    the run hits its time cap without completing — under a reliable
    network that would be an algorithm bug, under injected faults it can
    be honest behaviour worth reporting either way.
    [?probe] is handed to {!Doall_sim.Engine.Make.create}; its final
    snapshot is also stored in [result.obs] when enabled.
    [?profile:true] attaches a fresh {!Span.t} self-profiler to the
    engine and stores its snapshot in [result.spans].
    [?check:true] turns on the invariant oracle
    ({!Doall_sim.Oracle}) for the whole run. [?faults] overlays a
    message-fault policy on the named adversary (the CLI's [--faults]).
    [?transport] (default [Config.Ptp]) selects the network backend;
    channel runs reject [?faults] ([Invalid_argument], see
    {!Doall_sim.Engine}). *)

val run_traced :
  ?seed:int ->
  ?max_time:int ->
  ?probe:Probe.t ->
  ?profile:bool ->
  ?check:bool ->
  ?faults:Adversary.faults ->
  ?transport:Config.transport ->
  algo:string ->
  adv:string ->
  p:int ->
  t:int ->
  d:int ->
  unit ->
  result * Trace.t

(** {1 Parallel grids} *)

exception Grid_incomplete of run_spec list
(** Raised by {!run_grid} (and through it {!average_work}) when runs hit
    the [max_time] cap without completing: the full list of capped
    cells, never a silent partial result. A printable form is installed
    via [Printexc.register_printer]. *)

val spec :
  ?seed:int ->
  ?transport:Config.transport ->
  algo:string ->
  adv:string ->
  p:int ->
  t:int ->
  d:int ->
  unit ->
  run_spec

val spec_name : run_spec -> string
(** ["algo/adv/pP/tT/dD/seedS"], for tables and error messages.
    Non-point-to-point cells get an ["@transport"] suffix; [Ptp] cells
    keep the historical unsuffixed form, so pre-transport golden pins
    stay byte-identical. *)

val pp_spec : Format.formatter -> run_spec -> unit
(** Readable ["algo/adv/p=…/t=…/d=…/seed=…"] rendering; what the
    registered {!Grid_incomplete} exception printer lists capped cells
    with (one per line, truncated past 12 cells). *)

val grid :
  ?seeds:int list ->
  ?transport:Config.transport ->
  algos:string list ->
  advs:string list ->
  points:(int * int * int) list ->
  unit ->
  run_spec list
(** Cross product [algos x advs x (p, t, d) points x seeds] (seeds
    default [[0]]), in row-major order: the order {!run_grid} returns
    results in. All cells share the [?transport] (default [Ptp]). *)

val run_spec :
  ?max_time:int ->
  ?probe:Probe.t ->
  ?profile:bool ->
  ?check:bool ->
  ?faults:Adversary.faults ->
  run_spec ->
  result
(** Run one cell in the calling domain. Unlike {!run}, a capped run is
    reported through [metrics.completed = false], not an exception. *)

val run_grid :
  ?jobs:int ->
  ?pool:Pool.t ->
  ?max_time:int ->
  ?probes:bool ->
  ?profile:bool ->
  ?check:bool ->
  ?faults:Adversary.faults ->
  ?on_cell:(finished:int -> total:int -> result -> unit) ->
  run_spec list ->
  result list
(** Runs every cell and returns results in submission order. [?pool]
    reuses an existing pool; otherwise a transient pool of [?jobs]
    domains (default [Pool.default_jobs ()]) is created for the call.
    Results are byte-identical for every [jobs >= 1] because all per-run
    state ([Config], [Rng] streams, algorithm instances, adversary
    state) is built inside the run — see the thread-safety contract
    above. Raises {!Grid_incomplete} if any run hit [max_time].

    [~probes:true] instruments every cell with its own fresh
    {!Probe.t} (never shared across domains) and stores the final
    snapshot in [result.obs]; snapshots are as deterministic as the
    metrics, so they too are identical at every [jobs].

    [~profile:true] likewise attaches a fresh {!Span.t} per cell and
    stores the phase snapshot in [result.spans]; span counts share the
    probes' determinism, span totals do not (wall clock).

    [?check] turns on the invariant oracle in every cell; [?faults]
    overlays one fault policy on every cell's adversary. Both default
    to off, leaving grids bit-identical to before these existed.

    [?on_cell] is a progress callback invoked once per finished cell,
    {e in completion order}, with the number of cells finished so far
    and the grid total; invocations are serialized by an internal
    mutex but may come from any worker domain, so the callback must
    not touch domain-local state. The CLI and the bench harness use it
    to render live [k/n cells, ETA] lines on stderr. *)

val average_work :
  ?seeds:int list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?transport:Config.transport ->
  algo:string ->
  adv:string ->
  p:int ->
  t:int ->
  d:int ->
  unit ->
  float * float
(** Mean work and mean messages over the given seeds (default 5 seeds),
    for estimating expected complexity of the randomized algorithms.
    Seeds run through {!run_grid}, so [?jobs]/[?pool] parallelize them
    and a capped seed raises {!Grid_incomplete}. *)
