open Doall_sim

let make ?(staggered = true) () : Algorithm.packed =
  (module struct
    let name = if staggered then "trivial" else "trivial-lockstep"

    type state = {
      t : int;
      offset : int;
      know : Bitset.t;
      mutable next : int; (* tasks performed so far, in own order *)
      mutable halted : bool;
    }

    type msg = unit

    let init (cfg : Config.t) ~pid =
      let offset = if staggered then pid * cfg.t / cfg.p else 0 in
      { t = cfg.t; offset; know = Bitset.create cfg.t; next = 0; halted = false }

    let copy st = { st with know = Bitset.copy st.know }
    let receive _ ~src:_ () = ()

    (* Silent algorithm: no broadcasts, nothing to digest. *)
    let merge_homomorphic = None
    let is_done st = Bitset.is_full st.know
    let done_tasks st = st.know

    let step st =
      if st.halted then Algorithm.nothing
      else if st.next >= st.t then begin
        st.halted <- true;
        Algorithm.result ~halt:true ()
      end
      else begin
        let task = (st.offset + st.next) mod st.t in
        st.next <- st.next + 1;
        Bitset.set st.know task;
        Algorithm.result ~performed:task ()
      end
  end)
