open Doall_sim
open Doall_perms

type replay_stats = { executions : int; primary : int; rounds_used : int }

let replay ~psi ~rounds =
  let scheds = Array.of_list (List.map Perm.to_array psi) in
  let count = Array.length scheds in
  if count = 0 then invalid_arg "Oblido.replay: empty psi";
  let n = Array.length scheds.(0) in
  Array.iter
    (fun s ->
      if Array.length s <> n then
        invalid_arg "Oblido.replay: schedules of unequal size")
    scheds;
  let pos = Array.make count 0 in
  let completed = Array.make n false in
  let executions = ref 0 in
  let primary = ref 0 in
  let rounds_used = ref 0 in
  let run_round pids =
    incr rounds_used;
    let seen = Hashtbl.create 8 in
    (* Primary status is judged against completions of *earlier* rounds:
       collect this round's executions first, then commit. *)
    let performed_now = ref [] in
    List.iter
      (fun u ->
        if u < 0 || u >= count then invalid_arg "Oblido.replay: bad pid";
        if Hashtbl.mem seen u then
          invalid_arg "Oblido.replay: duplicate pid in round";
        Hashtbl.add seen u ();
        if pos.(u) < n then begin
          let job = scheds.(u).(pos.(u)) in
          pos.(u) <- pos.(u) + 1;
          incr executions;
          if not completed.(job) then incr primary;
          performed_now := job :: !performed_now
        end)
      pids;
    List.iter (fun job -> completed.(job) <- true) !performed_now
  in
  List.iter run_round rounds;
  (* Finish any unfinished processors in lock-step. *)
  let unfinished () =
    let acc = ref [] in
    for u = count - 1 downto 0 do
      if pos.(u) < n then acc := u :: !acc
    done;
    !acc
  in
  let rec drain () =
    match unfinished () with
    | [] -> ()
    | pids ->
      run_round pids;
      drain ()
  in
  drain ();
  { executions = !executions; primary = !primary; rounds_used = !rounds_used }

let lockstep_rounds ~n ~count =
  List.init n (fun _ -> List.init count Fun.id)

let random_rounds ~rng ~n ~count ~prob =
  (* Upper bound on rounds needed: each processor needs n active rounds;
     generate lazily until everyone would have finished, by budgeting the
     slowest processor. *)
  let remaining = Array.make count n in
  let acc = ref [] in
  let anyone_left () = Array.exists (fun r -> r > 0) remaining in
  while anyone_left () do
    let round = ref [] in
    for u = count - 1 downto 0 do
      if remaining.(u) > 0 && Rng.float rng 1.0 < prob then begin
        round := u :: !round;
        remaining.(u) <- remaining.(u) - 1
      end
    done;
    (* Avoid infinite loops at tiny prob: force the first laggard. *)
    if !round = [] then begin
      let rec first u =
        if u >= count then ()
        else if remaining.(u) > 0 then begin
          round := [ u ];
          remaining.(u) <- remaining.(u) - 1
        end
        else first (u + 1)
      in
      first 0
    end;
    acc := !round :: !acc
  done;
  List.rev !acc

let adversarial_rounds ~psi =
  let scheds = Array.of_list (List.map Perm.to_array psi) in
  let count = Array.length scheds in
  let n = if count = 0 then 0 else Array.length scheds.(0) in
  let pos = Array.make count 0 in
  let completed = Array.make n false in
  let acc = ref [] in
  let remaining = ref (count * n) in
  while !remaining > 0 do
    (* Prefer a processor whose next job is already completed (it will
       burn a redundant, secondary execution); otherwise the processor
       with the fewest remaining jobs (finish schedules asap so later
       primaries concentrate). *)
    let pick = ref (-1) in
    for u = count - 1 downto 0 do
      if pos.(u) < n && completed.(scheds.(u).(pos.(u))) then pick := u
    done;
    if !pick < 0 then begin
      let best = ref max_int in
      for u = count - 1 downto 0 do
        if pos.(u) < n && n - pos.(u) < !best then begin
          best := n - pos.(u);
          pick := u
        end
      done
    end;
    let u = !pick in
    completed.(scheds.(u).(pos.(u))) <- true;
    pos.(u) <- pos.(u) + 1;
    decr remaining;
    acc := [ u ] :: !acc
  done;
  List.rev !acc

let make ~psi () : Algorithm.packed =
  let scheds = Array.of_list (List.map Perm.to_array psi) in
  if Array.length scheds = 0 then invalid_arg "Oblido.make: empty psi";
  (module struct
    let name = "oblido"

    type msg = unit

    type state = {
      part : Task.partition;
      sched : int array;
      know : Bitset.t; (* own performances only: no communication *)
      mutable job_idx : int;
      mutable halted : bool;
    }

    let init (cfg : Config.t) ~pid =
      let part = Task.make ~p:cfg.p ~t:cfg.t in
      let sched = scheds.(pid mod Array.length scheds) in
      if Array.length sched <> part.Task.n then
        invalid_arg "Oblido.make: schedule size must be min(p, t)";
      {
        part;
        sched;
        know = Bitset.create cfg.t;
        job_idx = 0;
        halted = false;
      }

    let copy st = { st with know = Bitset.copy st.know }
    let receive _ ~src:_ () = ()

    (* Oblivious: never broadcasts, so there is nothing to digest. *)
    let merge_homomorphic = None
    let is_done st = Bitset.is_full st.know
    let done_tasks st = st.know

    let step st =
      if st.halted then Algorithm.nothing
      else if st.job_idx >= Array.length st.sched then begin
        st.halted <- true;
        Algorithm.result ~halt:true ()
      end
      else begin
        let job = st.sched.(st.job_idx) in
        match Task.next_member st.part st.know job with
        | Some z ->
          Bitset.set st.know z;
          if Task.job_done st.part st.know job then
            st.job_idx <- st.job_idx + 1;
          Algorithm.result ~performed:z ()
        | None ->
          st.job_idx <- st.job_idx + 1;
          Algorithm.nothing
      end
  end)
