(** Live progress for grid runs: overwriting ["label: k/n cells, ETA"]
    lines on stderr.

    Rendering is enabled only when the output channel is a tty (so CI
    logs and redirected output stay clean) and is throttled to at most
    ~20 redraws per second. {!tick} is safe to call from
    {!Doall_core.Runner.run_grid}'s [?on_cell] callback: the runner
    serializes callback invocations under its own mutex. *)

type t

val create :
  ?out:out_channel -> ?force:bool -> total:int -> label:string -> unit -> t
(** [out] defaults to [stderr]; [force] (default [false]) renders even
    when [out] is not a tty (tests). *)

val tick : t -> unit
(** One more cell finished: redraw the [k/n] line with percentage and
    an ETA extrapolated from the elapsed wall-clock. On the final cell,
    prints the total elapsed time and a newline. *)

val finish : t -> unit
(** Clears the line if the grid ended early (exception); idempotent,
    and a no-op after the final {!tick}. *)
