(** Versioned machine-readable artifacts: JSON values and JSONL streams.

    Every JSONL line this module writes is a single-line JSON object
    carrying [{"v": 1, "kind": <string>, ...}]; the per-kind schemas are
    documented in [docs/OBSERVABILITY.md] and validated line-by-line in
    CI. The writers cover the three run-shaped artifacts:

    - {!write_run}: a [run] header, the final {!Doall_sim.Metrics.t},
      and every instrument of a {!Probe.snapshot} (one line each) —
      what [doall run --obs out.jsonl] emits;
    - {!write_trace}: a [trace] header, the metrics, and one [event]
      line per {!Doall_sim.Trace.event} — [doall trace --jsonl];
    - {!Json}: the value type the bench harness builds BENCH_*.json
      from (a whole-file JSON document rather than JSONL). *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line rendering. Strings are escaped per RFC 8259;
      non-finite floats render as [null]. *)

  val to_channel : out_channel -> t -> unit

  val pp_to_channel : out_channel -> t -> unit
  (** Multi-line, 2-space-indented rendering (for whole-file artifacts
      like BENCH_*.json). *)

  val of_string : string -> (t, string) result
  (** Parse one RFC 8259 document. Numeric literals containing ['.'],
      ['e'] or ['E'] parse as {!Float}, bare integers as {!Int} —
      matching what the printers emit, so values round-trip with their
      exact/approximate character intact (what {!Diff} keys on).
      Errors carry a byte offset. *)
end

val version : int
(** Schema version stamped on every JSONL line ([1]). *)

val line : out_channel -> kind:string -> (string * Json.t) list -> unit
(** [line oc ~kind fields] writes one newline-terminated JSONL object
    [{"v": …, "kind": kind, fields…}]. *)

val metrics_fields : Doall_sim.Metrics.t -> (string * Json.t) list
(** The [metrics] line payload: p, t, d, work, messages, sigma,
    executions, redundant, completed, halted, crashed, per_proc_work. *)

val trace_event_fields : Doall_sim.Trace.event -> (string * Json.t) list
(** The [event] line payload: a ["type"] tag plus the event's fields. *)

val snapshot_lines : Probe.snapshot -> (string * (string * Json.t) list) list
(** One [(kind, fields)] pair per instrument: kinds [counter], [gauge],
    [histogram], [vector], [series]. Histogram buckets carry explicit
    inclusive [lo]/[hi] bounds, and every histogram line carries exact
    bucket-certified [p50]/[p90]/[p99] intervals ([[lo, hi]] pairs from
    {!Probe.percentile}). *)

val spans_fields : Span.snapshot -> (string * Json.t) list
(** The [phases] line payload: a ["phases"] list with one
    [{"name", "wall_s", "count"}] object per engine phase. [wall_s] is
    machine-dependent (named so {!Diff} tolerance-gates it); [count] is
    deterministic. *)

val write_run :
  out_channel ->
  meta:(string * Json.t) list ->
  ?snapshot:Probe.snapshot ->
  ?spans:Span.snapshot ->
  Doall_sim.Metrics.t ->
  unit
(** Header line (kind [run], with [meta] inlined), the metrics line,
    then the snapshot's instrument lines, then a [phases] line when a
    span snapshot is given. *)

val write_trace :
  out_channel ->
  meta:(string * Json.t) list ->
  Doall_sim.Metrics.t ->
  Doall_sim.Trace.t ->
  unit
(** Header line (kind [trace]), the metrics line, then one [event] line
    per trace event in recording order (via {!Doall_sim.Trace.fold} —
    no intermediate list). *)

val write_table :
  out_channel -> exp:string -> name:string -> Doall_analysis.Table.t -> unit
(** One [table] header line (experiment id, stable table name, title,
    column list, row count, notes) followed by one [row] line per table
    row with cells keyed by column name — what [doall exp run --jsonl]
    emits for every table an experiment renders. *)

val with_out : string -> (out_channel -> unit) -> unit
(** [with_out path f] opens [path] for writing (["-"] means stdout,
    not closed), runs [f], and always closes/flushes. *)
