(** Structured run-diff: compare two observability artifacts — JSONL
    snapshot streams ([doall run --obs], [doall trace --jsonl]) or
    whole-file JSON documents (BENCH_*.json, [--chrome] traces) — with
    per-metric tolerances ([doall obs diff A B]).

    The determinism contract (docs/OBSERVABILITY.md) says everything in
    these artifacts is bit-stable except wall-clock-derived numbers. The
    diff enforces exactly that split:

    - {e machine-dependent} values — any value under a key whose name
      contains ["wall"], ["speedup"], ["rss"], ["measured"] or
      ["seconds"], or is ["ns"]/[…_ns] — pass when within an absolute
      slack of 1 s {e or} a max/min ratio of at most [?tol]
      (default 1.5, same sign);
    - every other value must be {e exactly} equal, field for field,
      line for line.

    A comparison yields {!finding}s (empty = artifacts agree); loading
    or parse failures are [Error]s. The CLI maps these onto exit codes
    0 (clean) / 1 (findings) / 2 (load error). The bench harness's
    BENCH gate conditions are expressed in the same vocabulary via
    {!gate_metric_pins} and {!gate_wall_ratio}. *)

type finding = {
  path : string;  (** JSONPath-ish locator, prefixed [line N] for JSONL *)
  expected : string;  (** rendered value from the first artifact *)
  actual : string;  (** rendered value from the second artifact *)
  machine : bool;
      (** true when the difference is in a machine-dependent key (it
          exceeded the tolerance, not just differed) *)
}

val pp_finding : Format.formatter -> finding -> unit

val machine_key : string -> bool
(** The key classifier described above. *)

val compare_values :
  ?tol:float -> Export.Json.t -> Export.Json.t -> finding list
(** Structural comparison of two documents; paths rooted at [$]. Object
    fields match by name (missing/extra fields are findings, order is
    ignored); a machine-dependent key puts its whole subtree under the
    tolerance rule. *)

val compare_docs :
  ?tol:float -> Export.Json.t list -> Export.Json.t list -> finding list
(** Pairs documents by position (JSONL writers emit in deterministic
    order); a length mismatch is itself a finding. A single document on
    both sides compares without the [line N] prefix. *)

val load : string -> (Export.Json.t list, string) result
(** Reads a file as one whole JSON document if it parses as one
    (BENCH_*.json, Chrome traces), else as JSONL (one document per
    non-empty line). [Error] carries the failing path/line. *)

val compare_files : ?tol:float -> string -> string -> (finding list, string) result

val gate_metric_pins :
  key:string ->
  pins:(string * int) list ->
  actual:(string * int) list ->
  finding list
(** Exact golden-pin check: one finding per pin that is missing from or
    unequal in [actual]; paths are [key.name]. *)

val gate_wall_ratio :
  key:string ->
  reference_s:float ->
  wall_s:float ->
  min_ratio:float ->
  finding list
(** Perf-regression gate: empty when [reference_s /. wall_s >=
    min_ratio], else one machine-flagged finding describing the miss. *)
