(* See diff.mli. *)

type finding = {
  path : string;
  expected : string;
  actual : string;
  machine : bool;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s: expected %s, got %s%s" f.path f.expected f.actual
    (if f.machine then "  [machine-dependent, tolerance exceeded]" else "")

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let ends_with hay suffix =
  let nh = String.length hay and ns = String.length suffix in
  nh >= ns && String.sub hay (nh - ns) ns = suffix

let machine_key name =
  contains name "wall" || contains name "speedup" || contains name "rss"
  || contains name "measured" || contains name "seconds" || name = "ns"
  || ends_with name "_ns"

let default_tol = 1.5

let within_tol ~tol a b =
  Float.abs (a -. b) <= 1.0
  ||
  let lo = Float.min (Float.abs a) (Float.abs b)
  and hi = Float.max (Float.abs a) (Float.abs b) in
  lo > 0.0 && hi /. lo <= tol && a *. b > 0.0

let number = function
  | Export.Json.Int i -> Some (float_of_int i)
  | Export.Json.Float f -> Some f
  | _ -> None

let compare_values ?(tol = default_tol) a b =
  let open Export.Json in
  let acc = ref [] in
  let found path expected actual machine =
    acc := { path; expected; actual; machine } :: !acc
  in
  let leaf path machine a b =
    if machine then begin
      match (number a, number b) with
      | Some x, Some y ->
        if not (within_tol ~tol x y) then
          found path (to_string a) (to_string b) true
      | _ -> if a <> b then found path (to_string a) (to_string b) true
    end
    else if a <> b then found path (to_string a) (to_string b) false
  in
  let rec go path machine a b =
    match (a, b) with
    | Obj fa, Obj fb ->
      List.iter
        (fun (k, va) ->
          let kpath = path ^ "." ^ k in
          match List.assoc_opt k fb with
          | None -> found kpath (to_string va) "<missing field>" false
          | Some vb -> go kpath (machine || machine_key k) va vb)
        fa;
      List.iter
        (fun (k, vb) ->
          if not (List.mem_assoc k fa) then
            found (path ^ "." ^ k) "<no field>" (to_string vb) false)
        fb
    | List xa, List xb ->
      let la = List.length xa and lb = List.length xb in
      if la <> lb then
        found (path ^ ".length") (string_of_int la) (string_of_int lb) false;
      List.iteri
        (fun i (va, vb) -> go (Printf.sprintf "%s[%d]" path i) machine va vb)
        (List.combine
           (List.filteri (fun i _ -> i < min la lb) xa)
           (List.filteri (fun i _ -> i < min la lb) xb))
    | _ -> leaf path machine a b
  in
  go "$" false a b;
  List.rev !acc

let compare_docs ?tol docs_a docs_b =
  let la = List.length docs_a and lb = List.length docs_b in
  let single = la = 1 && lb = 1 in
  let label i = if single then "$" else Printf.sprintf "line %d $" (i + 1) in
  let rec go i acc a b =
    match (a, b) with
    | [], [] -> List.rev acc
    | [], extra ->
      List.rev acc
      @ [
          {
            path = Printf.sprintf "line %d" (i + 1);
            expected = "<end of file>";
            actual = Printf.sprintf "%d extra line(s)" (List.length extra);
            machine = false;
          };
        ]
    | missing, [] ->
      List.rev acc
      @ [
          {
            path = Printf.sprintf "line %d" (i + 1);
            expected = Printf.sprintf "%d more line(s)" (List.length missing);
            actual = "<end of file>";
            machine = false;
          };
        ]
    | va :: ra, vb :: rb ->
      let fs =
        List.map
          (fun f -> { f with path = label i ^ String.sub f.path 1 (String.length f.path - 1) })
          (compare_values ?tol va vb)
      in
      go (i + 1) (List.rev_append fs acc) ra rb
  in
  go 0 [] docs_a docs_b

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let load path =
  match read_file path with
  | Error e -> Error e
  | Ok content -> (
    (* A whole-file document (BENCH_*.json, --chrome output) parses in
       one piece; otherwise fall back to JSONL, one document per
       non-empty line. *)
    match Export.Json.of_string content with
    | Ok doc -> Ok [ doc ]
    | Error _ ->
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> String.trim l <> "")
      in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | l :: rest -> (
          match Export.Json.of_string l with
          | Ok j -> go (i + 1) (j :: acc) rest
          | Error e -> Error (Printf.sprintf "%s, line %d: %s" path i e))
      in
      go 1 [] lines)

let compare_files ?tol path_a path_b =
  match (load path_a, load path_b) with
  | Error e, _ | _, Error e -> Error e
  | Ok a, Ok b -> Ok (compare_docs ?tol a b)

(* -- gates (the bench harness's pass/fail conditions, as findings) -- *)

let gate_metric_pins ~key ~pins ~actual =
  List.filter_map
    (fun (name, expected) ->
      let mk actual_s =
        Some
          {
            path = key ^ "." ^ name;
            expected = string_of_int expected;
            actual = actual_s;
            machine = false;
          }
      in
      match List.assoc_opt name actual with
      | Some got when got = expected -> None
      | Some got -> mk (string_of_int got)
      | None -> mk "<missing>")
    pins

let gate_wall_ratio ~key ~reference_s ~wall_s ~min_ratio =
  let speedup = reference_s /. wall_s in
  if speedup >= min_ratio then []
  else
    [
      {
        path = key ^ ".speedup";
        expected =
          Printf.sprintf ">=%.2fx (reference %.3fs)" min_ratio reference_s;
        actual = Printf.sprintf "%.2fx (%.3fs)" speedup wall_s;
        machine = true;
      };
    ]
