(* See probe.mli.

   Each instrument caches the probe's immutable [enabled] flag at
   registration, so a record is `if on then <one or two int writes>`,
   with no indirection through the registry. The registry itself is a
   name-keyed hashtable per instrument class, used only at registration
   and snapshot time (never in the hot path). *)

type counter = { c_on : bool; mutable c_v : int }
type gauge = { g_on : bool; mutable g_last : int; mutable g_max : int }

type histogram = {
  h_on : bool;
  h_buckets : int array; (* 64 log2 buckets; count = their sum *)
  mutable h_sum : int;
  mutable h_max : int;
}

type vector = { v_on : bool; v_values : int array }

type series = {
  s_on : bool;
  mutable s_times : int array;
  mutable s_values : int array;
  mutable s_len : int;
}

type t = {
  enabled : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  vectors : (string, vector) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let create ?(enabled = true) () =
  {
    enabled;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    vectors = Hashtbl.create 8;
    series = Hashtbl.create 8;
  }

let enabled t = t.enabled

let register tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some i -> i
  | None ->
    let i = make () in
    Hashtbl.add tbl name i;
    i

(* -- counters -- *)

let counter t name =
  register t.counters name (fun () -> { c_on = t.enabled; c_v = 0 })

let[@inline] incr c = if c.c_on then c.c_v <- c.c_v + 1
let[@inline] add c n = if c.c_on then c.c_v <- c.c_v + n
let[@inline] counter_value c = c.c_v

(* -- gauges -- *)

let gauge t name =
  register t.gauges name (fun () ->
      { g_on = t.enabled; g_last = 0; g_max = 0 })

let set g v =
  if g.g_on then begin
    g.g_last <- v;
    if v > g.g_max then g.g_max <- v
  end

(* -- histograms -- *)

let histogram t name =
  register t.histograms name (fun () ->
      { h_on = t.enabled; h_buckets = Array.make 64 0; h_sum = 0; h_max = 0 })

let bucket_of_slow v =
  if v <= 0 then 0
  else begin
    (* index of the highest set bit, plus one: v in [2^(i-1), 2^i - 1] *)
    let i = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr i;
      x := !x lsr 1
    done;
    !i
  end

(* Hot-path bucket lookup: [observe] runs once per simulated message, so
   the common small values (delivery deltas, fan-outs) resolve with one
   table load instead of a bit-scan loop. *)
let bucket_table = Array.init 1024 bucket_of_slow

let[@inline] bucket_of v =
  if v >= 0 && v < 1024 then Array.unsafe_get bucket_table v
  else bucket_of_slow v

let bucket_bounds i =
  if i <= 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let[@inline] observe h v =
  if h.h_on then begin
    let i = bucket_of v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v
  end

let observe_n h v n =
  if h.h_on && n > 0 then begin
    let i = bucket_of v in
    h.h_buckets.(i) <- h.h_buckets.(i) + n;
    h.h_sum <- h.h_sum + (v * n);
    if v > h.h_max then h.h_max <- v
  end

(* -- vectors -- *)

let vector t name ~len =
  let v =
    register t.vectors name (fun () ->
        { v_on = t.enabled; v_values = Array.make len 0 })
  in
  if Array.length v.v_values <> len then
    invalid_arg
      (Printf.sprintf "Probe.vector: %S re-registered with len %d <> %d" name
         len (Array.length v.v_values));
  v

let[@inline] vincr v i = if v.v_on then v.v_values.(i) <- v.v_values.(i) + 1
let[@inline] vadd v i n = if v.v_on then v.v_values.(i) <- v.v_values.(i) + n

(* -- series -- *)

let series t name =
  register t.series name (fun () ->
      { s_on = t.enabled; s_times = [||]; s_values = [||]; s_len = 0 })

let sample s ~time v =
  if s.s_on then begin
    let cap = Array.length s.s_times in
    if s.s_len = cap then begin
      let cap' = max 64 (2 * cap) in
      let grow a = Array.init cap' (fun i -> if i < cap then a.(i) else 0) in
      s.s_times <- grow s.s_times;
      s.s_values <- grow s.s_values
    end;
    s.s_times.(s.s_len) <- time;
    s.s_values.(s.s_len) <- v;
    s.s_len <- s.s_len + 1
  end

(* -- snapshots -- *)

type histogram_snapshot = {
  count : int;
  sum : int;
  max : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * (int * int)) list;
  histograms : (string * histogram_snapshot) list;
  vectors : (string * int array) list;
  series : (string * (int * int) array) list;
}

let sorted tbl f =
  Hashtbl.fold (fun name i acc -> (name, f i) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let percentile (h : histogram_snapshot) q =
  if h.count = 0 then (0, 0)
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let rec walk seen = function
      | [] -> bucket_bounds 0 (* unreachable: ranks <= count *)
      | (i, n) :: rest ->
          if seen + n >= rank then bucket_bounds i else walk (seen + n) rest
    in
    let lo, hi = walk 0 h.buckets in
    (lo, min hi h.max)
  end

let snapshot (pr : t) =
  {
    counters = sorted pr.counters (fun c -> c.c_v);
    gauges = sorted pr.gauges (fun g -> (g.g_last, g.g_max));
    histograms =
      sorted pr.histograms (fun h ->
          let buckets = ref [] and count = ref 0 in
          for i = 63 downto 0 do
            if h.h_buckets.(i) > 0 then begin
              buckets := (i, h.h_buckets.(i)) :: !buckets;
              count := !count + h.h_buckets.(i)
            end
          done;
          { count = !count; sum = h.h_sum; max = h.h_max;
            buckets = !buckets });
    vectors = sorted pr.vectors (fun v -> Array.copy v.v_values);
    series =
      sorted pr.series (fun s ->
          Array.init s.s_len (fun i -> (s.s_times.(i), s.s_values.(i))));
  }
