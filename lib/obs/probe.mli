(** In-run instrumentation: named counters, gauges, log-bucketed
    histograms, per-pid vectors and per-tick series.

    A probe is a registry of instruments allocated once (typically at
    {!Doall_sim.Engine.Make.create} time) and recorded into from the
    simulation hot path. Every record operation is O(1) and guarded by a
    single branch on the probe's [enabled] flag, fixed at creation:
    recording into a disabled probe is a read of one immutable boolean
    and a conditional jump, nothing else. Probes draw no randomness and
    never feed back into the simulation, so metrics and RNG streams are
    bit-identical with probes on, off, or absent — pinned by
    [test/test_obs.ml].

    Instruments are identified by name within their probe; registering
    the same name twice returns the same instrument. Instruments hold
    plain mutable ints and are {e not} thread-safe: a probe must be
    owned by a single run (the grid runner creates one probe per cell,
    never sharing across domains). *)

type t

val create : ?enabled:bool -> unit -> t
(** A fresh, empty registry. [enabled] defaults to [true]; a probe
    created with [~enabled:false] accepts registrations but drops every
    record, at the cost of one branch. The flag is immutable. *)

val enabled : t -> bool

(** {1 Instruments} *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Current value (0 if the probe is disabled). *)

type gauge
(** Tracks the last value set and the maximum ever set. *)

val gauge : t -> string -> gauge
val set : gauge -> int -> unit

type histogram
(** Power-of-two log-bucketed histogram of non-negative ints: bucket 0
    holds values [<= 0]; bucket [i >= 1] holds values in
    [[2^(i-1), 2^i - 1]]. Also tracks count, sum, and max exactly. *)

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit

val observe_n : histogram -> int -> int -> unit
(** [observe_n h v n] records [n] observations of [v] in one update —
    equivalent to calling [observe h v] [n] times. Record sites that see
    runs of equal values (e.g. per-message delivery deltas under a
    constant-delay adversary) batch them with this to keep the
    per-event cost to a compare-and-count. No-op when [n <= 0]. *)

type vector
(** A named dense [int array], typically indexed by pid. *)

val vector : t -> string -> len:int -> vector
(** Re-registering an existing name with a different [len] raises
    [Invalid_argument]. *)

val vincr : vector -> int -> unit
val vadd : vector -> int -> int -> unit

type series
(** An append-only time series of [(time, value)] samples. *)

val series : t -> string -> series

val sample : series -> time:int -> int -> unit
(** Appends a sample. Amortized O(1) (growable backing array). *)

(** {1 Snapshots} *)

type histogram_snapshot = {
  count : int;
  sum : int;
  max : int;
  buckets : (int * int) list;
      (** [(bucket_index, count)], nonzero buckets only, ascending; see
          {!histogram} for bucket bounds. *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * (int * int)) list;  (** name, (last, max) *)
  histograms : (string * histogram_snapshot) list;
  vectors : (string * int array) list;
  series : (string * (int * int) array) list;
}
(** All association lists sorted by name, so snapshots of identically
    instrumented runs compare with structural equality. *)

val snapshot : t -> snapshot
(** A deep copy: later records do not mutate an earlier snapshot. A
    disabled probe snapshots to registered-but-zero instruments. *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] of a bucket index, inclusive; bucket 0 is [(0, 0)]. *)

val percentile : histogram_snapshot -> float -> int * int
(** [percentile h q] locates the rank-[ceil q*count] observation
    (q clamped to [0,1]) in the log buckets and returns the tightest
    interval the buckets can certify: the containing bucket's
    [bucket_bounds], with the upper bound capped at the observed [max].
    Exact to bucket resolution — deterministic, no interpolation. The
    empty histogram yields [(0, 0)]. *)
