(** Engine self-profiler: named wall-clock phase sections.

    A profiler is a registry of spans allocated once (typically at
    {!Doall_sim.Engine.Make.create} time) and entered/left from the
    simulation hot path. Like {!Probe}, every record operation is O(1)
    and guarded by a single branch on the span's cached [enabled] flag,
    fixed at creation: profiling a disabled span is a read of one
    immutable boolean and a conditional jump — no clock call, no
    allocation. Spans read the clock and never feed back into the
    simulation, so metrics and RNG streams are bit-identical with
    profiling on, off, or absent (pinned by [test/test_span.ml]).

    Totals are seconds of [CLOCK_MONOTONIC] time, read through a
    noalloc untagged C stub ([doall_clock.c]) at ~20ns per read —
    machine-dependent like [Runner.result.wall_s] and excluded from
    every determinism comparison. Counts (enters per span) are
    deterministic: they follow the simulation structure, not the
    clock.

    The engine's span catalogue (docs/OBSERVABILITY.md): [deliver],
    [algo_step], [adversary], [bcast_maint], [oracle]. *)

type t

val create : ?enabled:bool -> unit -> t
(** A fresh, empty registry. [enabled] defaults to [true]; a profiler
    created with [~enabled:false] accepts registrations but drops every
    enter/leave at the cost of one branch. The flag is immutable. *)

val enabled : t -> bool

type span

val span : t -> string -> span
(** Registers (or retrieves) the span named [name]. Registering the
    same name twice returns the same span. *)

val enter : span -> unit
(** Starts timing. Nested enters of the {e same} span are not
    supported: a second [enter] before [leave] restarts the section. *)

val leave : span -> unit
(** Stops timing: adds the elapsed wall-clock to the span's total and
    increments its count. A [leave] without a matching [enter] is
    ignored (the open-timestamp sentinel guards it). *)

val shift : span -> span -> unit
(** [shift a b] is [leave a; enter b] with a single clock read: the
    one timestamp both closes [a] and opens [b], so consecutive phases
    cost one read per transition instead of two. What the engine's
    per-step deliver -> algo_step -> bcast_maint chain uses. *)

val time : span -> (unit -> 'a) -> 'a
(** [time sp f] runs [f ()] inside [enter]/[leave], exception-safe.
    Convenience for call sites off the hot path. *)

type snapshot = (string * (float * int)) list
(** [(name, (total_s, count))], sorted by name — so two snapshots of
    identically phased runs compare structurally once the
    machine-dependent [total_s] fields are projected away. *)

val snapshot : t -> snapshot
(** Totals and counts of every registered span. A disabled profiler
    snapshots to registered-but-zero spans. *)

val names_and_counts : snapshot -> (string * int) list
(** The deterministic projection of a snapshot: span names and enter
    counts, wall fields dropped. What the jobs-1/2/4 determinism tests
    compare. *)

val total : snapshot -> float
(** Sum of every span's [total_s] — the profiled fraction of the run. *)
