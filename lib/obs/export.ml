(* See export.mli. *)

open Doall_sim

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let float_repr f =
    if not (Float.is_finite f) then "null"
    else
      (* shortest representation that is still a valid JSON number *)
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e'
         || String.contains s 'E'
      then s
      else s ^ ".0"

  let rec render ~indent ~level buf j =
    let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ')
    in
    let sep () = if indent then Buffer.add_char buf '\n' in
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      sep ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (level + 1);
          render ~indent ~level:(level + 1) buf x)
        xs;
      sep ();
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      sep ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (level + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          render ~indent ~level:(level + 1) buf v)
        fields;
      sep ();
      pad level;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    render ~indent:false ~level:0 buf j;
    Buffer.contents buf

  let to_channel oc j = output_string oc (to_string j)

  let pp_to_channel oc j =
    let buf = Buffer.create 4096 in
    render ~indent:true ~level:0 buf j;
    Buffer.add_char buf '\n';
    output_string oc (Buffer.contents buf)

  exception Parse_error of string

  (* Recursive-descent parser for everything this module writes (and for
     general RFC 8259 documents). Numeric literals written with '.', 'e'
     or 'E' parse as [Float], bare integers as [Int] — [float_repr]
     guarantees every float we print carries one of those characters, so
     the distinction round-trips and Diff can apply exact-vs-tolerance
     rules from the parsed value alone. *)
  let of_string input =
    let n = String.length input in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some input.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match input.[!pos] with
            | ' ' | '\t' | '\n' | '\r' -> true
            | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && input.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub input !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match input.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents buf
        | '\\' ->
          incr pos;
          if !pos >= n then fail "truncated escape";
          (match input.[!pos] with
           | '"' -> Buffer.add_char buf '"'; incr pos
           | '\\' -> Buffer.add_char buf '\\'; incr pos
           | '/' -> Buffer.add_char buf '/'; incr pos
           | 'b' -> Buffer.add_char buf '\b'; incr pos
           | 'f' -> Buffer.add_char buf '\012'; incr pos
           | 'n' -> Buffer.add_char buf '\n'; incr pos
           | 'r' -> Buffer.add_char buf '\r'; incr pos
           | 't' -> Buffer.add_char buf '\t'; incr pos
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             let code =
               match int_of_string_opt ("0x" ^ String.sub input (!pos + 1) 4)
               with
               | Some c -> c
               | None -> fail "bad \\u escape"
             in
             add_utf8 buf code;
             pos := !pos + 5
           | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      while
        !pos < n
        && (match input.[!pos] with
            | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
            | _ -> false)
      do
        incr pos
      done;
      let tok = String.sub input start (!pos - start) in
      if
        String.contains tok '.' || String.contains tok 'e'
        || String.contains tok 'E'
      then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          (* integer literal overflowing 63 bits: fall back to float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg
end

let version = 1

let line oc ~kind fields =
  Json.to_channel oc
    (Json.Obj (("v", Json.Int version) :: ("kind", Json.Str kind) :: fields));
  output_char oc '\n'

let metrics_fields (m : Metrics.t) =
  Json.
    [
      ("p", Int m.Metrics.p);
      ("t", Int m.Metrics.t);
      ("d", Int m.Metrics.d);
      ("work", Int m.Metrics.work);
      ("messages", Int m.Metrics.messages);
      ("sigma", Int m.Metrics.sigma);
      ("executions", Int m.Metrics.executions);
      ("redundant", Int (Metrics.redundant m));
      ("completed", Bool m.Metrics.completed);
      ("halted", Int m.Metrics.halted);
      ("crashed", Int m.Metrics.crashed);
      ( "per_proc_work",
        List (Array.to_list (Array.map (fun w -> Int w) m.Metrics.per_proc_work))
      );
    ]

let trace_event_fields (ev : Trace.event) =
  let open Json in
  match ev with
  | Trace.Step { time; pid } ->
    [ ("type", Str "step"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Delayed { time; pid } ->
    [ ("type", Str "delayed"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Perform { time; pid; task; fresh } ->
    [
      ("type", Str "perform");
      ("time", Int time);
      ("pid", Int pid);
      ("task", Int task);
      ("fresh", Bool fresh);
    ]
  | Trace.Broadcast { time; src; copies } ->
    [
      ("type", Str "broadcast");
      ("time", Int time);
      ("src", Int src);
      ("copies", Int copies);
    ]
  | Trace.Halt { time; pid } ->
    [ ("type", Str "halt"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Crash { time; pid } ->
    [ ("type", Str "crash"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Restart { time; pid } ->
    [ ("type", Str "restart"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Note { time; text } ->
    [ ("type", Str "note"); ("time", Int time); ("text", Str text) ]

let snapshot_lines (s : Probe.snapshot) =
  let open Json in
  let counters =
    List.map
      (fun (name, v) ->
        ("counter", [ ("name", Str name); ("value", Int v) ]))
      s.Probe.counters
  in
  let gauges =
    List.map
      (fun (name, (last, max)) ->
        ("gauge", [ ("name", Str name); ("last", Int last); ("max", Int max) ]))
      s.Probe.gauges
  in
  let histograms =
    List.map
      (fun (name, (h : Probe.histogram_snapshot)) ->
        let pctl q =
          let lo, hi = Probe.percentile h q in
          List [ Int lo; Int hi ]
        in
        ( "histogram",
          [
            ("name", Str name);
            ("count", Int h.Probe.count);
            ("sum", Int h.Probe.sum);
            ("max", Int h.Probe.max);
            ("p50", pctl 0.50);
            ("p90", pctl 0.90);
            ("p99", pctl 0.99);
            ( "buckets",
              List
                (List.map
                   (fun (i, n) ->
                     let lo, hi = Probe.bucket_bounds i in
                     Obj [ ("lo", Int lo); ("hi", Int hi); ("n", Int n) ])
                   h.Probe.buckets) );
          ] ))
      s.Probe.histograms
  in
  let vectors =
    List.map
      (fun (name, values) ->
        ( "vector",
          [
            ("name", Str name);
            ("values", List (Array.to_list (Array.map (fun v -> Int v) values)));
          ] ))
      s.Probe.vectors
  in
  let series =
    List.map
      (fun (name, points) ->
        ( "series",
          [
            ("name", Str name);
            ( "points",
              List
                (Array.to_list
                   (Array.map
                      (fun (t, v) -> List [ Int t; Int v ])
                      points)) );
          ] ))
      s.Probe.series
  in
  counters @ gauges @ histograms @ vectors @ series

let spans_fields (sp : Span.snapshot) =
  let open Json in
  [
    ( "phases",
      List
        (List.map
           (fun (name, (total, count)) ->
             Obj
               [
                 ("name", Str name);
                 ("wall_s", Float total);
                 ("count", Int count);
               ])
           sp) );
  ]

let write_run oc ~meta ?snapshot ?spans m =
  line oc ~kind:"run" meta;
  line oc ~kind:"metrics" (metrics_fields m);
  (match snapshot with
   | None -> ()
   | Some s ->
     List.iter (fun (kind, fields) -> line oc ~kind fields) (snapshot_lines s));
  match spans with
  | None -> ()
  | Some sp -> line oc ~kind:"phases" (spans_fields sp)

let write_trace oc ~meta m trace =
  line oc ~kind:"trace"
    (meta @ [ ("events", Json.Int (Trace.length trace)) ]);
  line oc ~kind:"metrics" (metrics_fields m);
  Trace.fold trace ~init:() ~f:(fun () ev ->
      line oc ~kind:"event" (trace_event_fields ev))

let write_table oc ~exp ~name tbl =
  let module Table = Doall_analysis.Table in
  let columns = Table.columns tbl in
  line oc ~kind:"table"
    Json.
      [
        ("exp", Str exp);
        ("name", Str name);
        ("title", Str (Table.title tbl));
        ("columns", List (List.map (fun c -> Str c) columns));
        ("rows", Int (List.length (Table.rows tbl)));
        ("notes", List (List.map (fun n -> Str n) (Table.notes tbl)));
      ];
  List.iter
    (fun row ->
      line oc ~kind:"row"
        Json.
          [
            ("exp", Str exp);
            ("name", Str name);
            ( "cells",
              Obj (List.map2 (fun c cell -> (c, Str cell)) columns row) );
          ])
    (Doall_analysis.Table.rows tbl)

let with_out path f =
  if path = "-" then begin
    f stdout;
    flush stdout
  end
  else begin
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  end
