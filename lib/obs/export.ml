(* See export.mli. *)

open Doall_sim

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let float_repr f =
    if not (Float.is_finite f) then "null"
    else
      (* shortest representation that is still a valid JSON number *)
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e'
         || String.contains s 'E'
      then s
      else s ^ ".0"

  let rec render ~indent ~level buf j =
    let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ')
    in
    let sep () = if indent then Buffer.add_char buf '\n' in
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      sep ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (level + 1);
          render ~indent ~level:(level + 1) buf x)
        xs;
      sep ();
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      sep ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (level + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          render ~indent ~level:(level + 1) buf v)
        fields;
      sep ();
      pad level;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    render ~indent:false ~level:0 buf j;
    Buffer.contents buf

  let to_channel oc j = output_string oc (to_string j)

  let pp_to_channel oc j =
    let buf = Buffer.create 4096 in
    render ~indent:true ~level:0 buf j;
    Buffer.add_char buf '\n';
    output_string oc (Buffer.contents buf)
end

let version = 1

let line oc ~kind fields =
  Json.to_channel oc
    (Json.Obj (("v", Json.Int version) :: ("kind", Json.Str kind) :: fields));
  output_char oc '\n'

let metrics_fields (m : Metrics.t) =
  Json.
    [
      ("p", Int m.Metrics.p);
      ("t", Int m.Metrics.t);
      ("d", Int m.Metrics.d);
      ("work", Int m.Metrics.work);
      ("messages", Int m.Metrics.messages);
      ("sigma", Int m.Metrics.sigma);
      ("executions", Int m.Metrics.executions);
      ("redundant", Int (Metrics.redundant m));
      ("completed", Bool m.Metrics.completed);
      ("halted", Int m.Metrics.halted);
      ("crashed", Int m.Metrics.crashed);
      ( "per_proc_work",
        List (Array.to_list (Array.map (fun w -> Int w) m.Metrics.per_proc_work))
      );
    ]

let trace_event_fields (ev : Trace.event) =
  let open Json in
  match ev with
  | Trace.Step { time; pid } ->
    [ ("type", Str "step"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Delayed { time; pid } ->
    [ ("type", Str "delayed"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Perform { time; pid; task; fresh } ->
    [
      ("type", Str "perform");
      ("time", Int time);
      ("pid", Int pid);
      ("task", Int task);
      ("fresh", Bool fresh);
    ]
  | Trace.Broadcast { time; src; copies } ->
    [
      ("type", Str "broadcast");
      ("time", Int time);
      ("src", Int src);
      ("copies", Int copies);
    ]
  | Trace.Halt { time; pid } ->
    [ ("type", Str "halt"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Crash { time; pid } ->
    [ ("type", Str "crash"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Restart { time; pid } ->
    [ ("type", Str "restart"); ("time", Int time); ("pid", Int pid) ]
  | Trace.Note { time; text } ->
    [ ("type", Str "note"); ("time", Int time); ("text", Str text) ]

let snapshot_lines (s : Probe.snapshot) =
  let open Json in
  let counters =
    List.map
      (fun (name, v) ->
        ("counter", [ ("name", Str name); ("value", Int v) ]))
      s.Probe.counters
  in
  let gauges =
    List.map
      (fun (name, (last, max)) ->
        ("gauge", [ ("name", Str name); ("last", Int last); ("max", Int max) ]))
      s.Probe.gauges
  in
  let histograms =
    List.map
      (fun (name, (h : Probe.histogram_snapshot)) ->
        ( "histogram",
          [
            ("name", Str name);
            ("count", Int h.Probe.count);
            ("sum", Int h.Probe.sum);
            ("max", Int h.Probe.max);
            ( "buckets",
              List
                (List.map
                   (fun (i, n) ->
                     let lo, hi = Probe.bucket_bounds i in
                     Obj [ ("lo", Int lo); ("hi", Int hi); ("n", Int n) ])
                   h.Probe.buckets) );
          ] ))
      s.Probe.histograms
  in
  let vectors =
    List.map
      (fun (name, values) ->
        ( "vector",
          [
            ("name", Str name);
            ("values", List (Array.to_list (Array.map (fun v -> Int v) values)));
          ] ))
      s.Probe.vectors
  in
  let series =
    List.map
      (fun (name, points) ->
        ( "series",
          [
            ("name", Str name);
            ( "points",
              List
                (Array.to_list
                   (Array.map
                      (fun (t, v) -> List [ Int t; Int v ])
                      points)) );
          ] ))
      s.Probe.series
  in
  counters @ gauges @ histograms @ vectors @ series

let write_run oc ~meta ?snapshot m =
  line oc ~kind:"run" meta;
  line oc ~kind:"metrics" (metrics_fields m);
  match snapshot with
  | None -> ()
  | Some s ->
    List.iter (fun (kind, fields) -> line oc ~kind fields) (snapshot_lines s)

let write_trace oc ~meta m trace =
  line oc ~kind:"trace"
    (meta @ [ ("events", Json.Int (Trace.length trace)) ]);
  line oc ~kind:"metrics" (metrics_fields m);
  Trace.fold trace ~init:() ~f:(fun () ev ->
      line oc ~kind:"event" (trace_event_fields ev))

let write_table oc ~exp ~name tbl =
  let module Table = Doall_analysis.Table in
  let columns = Table.columns tbl in
  line oc ~kind:"table"
    Json.
      [
        ("exp", Str exp);
        ("name", Str name);
        ("title", Str (Table.title tbl));
        ("columns", List (List.map (fun c -> Str c) columns));
        ("rows", Int (List.length (Table.rows tbl)));
        ("notes", List (List.map (fun n -> Str n) (Table.notes tbl)));
      ];
  List.iter
    (fun row ->
      line oc ~kind:"row"
        Json.
          [
            ("exp", Str exp);
            ("name", Str name);
            ( "cells",
              Obj (List.map2 (fun c cell -> (c, Str cell)) columns row) );
          ])
    (Doall_analysis.Table.rows tbl)

let with_out path f =
  if path = "-" then begin
    f stdout;
    flush stdout
  end
  else begin
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  end
