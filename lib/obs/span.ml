(* See span.mli.

   Same shape as Probe: each span caches the profiler's immutable
   [enabled] flag at registration, so enter/leave on a disabled
   profiler is one branch — the clock is only read when enabled. The
   registry hashtable is touched at registration and snapshot time,
   never between enter and leave.

   The clock is CLOCK_MONOTONIC nanoseconds as an untagged int through
   a noalloc C stub (doall_clock.c): ~20ns and zero allocation per
   read, which is what keeps per-step phase bracketing under the bench
   harness's 5% overhead gate. *)

external mono_ns : unit -> (int[@untagged])
  = "doall_mono_ns_byte" "doall_mono_ns_unboxed"
[@@noalloc]

type span = {
  sp_on : bool;
  mutable sp_total : int; (* accumulated nanoseconds *)
  mutable sp_count : int; (* completed enter/leave pairs *)
  mutable sp_t0 : int; (* enter timestamp; [closed] when idle *)
}

(* Sentinel for "no section open": the monotonic clock never goes
   negative, so a leave without a matching enter is detectable. *)
let closed = -1

type t = { enabled : bool; spans : (string, span) Hashtbl.t }

let create ?(enabled = true) () = { enabled; spans = Hashtbl.create 8 }
let enabled t = t.enabled

let span t name =
  match Hashtbl.find_opt t.spans name with
  | Some sp -> sp
  | None ->
    let sp = { sp_on = t.enabled; sp_total = 0; sp_count = 0; sp_t0 = closed }
    in
    Hashtbl.add t.spans name sp;
    sp

let[@inline] enter sp = if sp.sp_on then sp.sp_t0 <- mono_ns ()

let[@inline] leave sp =
  if sp.sp_on && sp.sp_t0 >= 0 then begin
    sp.sp_total <- sp.sp_total + (mono_ns () - sp.sp_t0);
    sp.sp_count <- sp.sp_count + 1;
    sp.sp_t0 <- closed
  end

let[@inline] shift a b =
  if a.sp_on || b.sp_on then begin
    let now = mono_ns () in
    if a.sp_on && a.sp_t0 >= 0 then begin
      a.sp_total <- a.sp_total + (now - a.sp_t0);
      a.sp_count <- a.sp_count + 1;
      a.sp_t0 <- closed
    end;
    if b.sp_on then b.sp_t0 <- now
  end

let time sp f =
  enter sp;
  Fun.protect ~finally:(fun () -> leave sp) f

type snapshot = (string * (float * int)) list

let snapshot t =
  Hashtbl.fold
    (fun name sp acc ->
      (name, (float_of_int sp.sp_total /. 1e9, sp.sp_count)) :: acc)
    t.spans []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let names_and_counts snap = List.map (fun (name, (_, n)) -> (name, n)) snap
let total snap = List.fold_left (fun acc (_, (s, _)) -> acc +. s) 0.0 snap
