(** Chrome trace-event export: one {!Doall_sim.Trace.t} rendered as a
    [chrome://tracing] / Perfetto document ([doall trace --chrome]).

    The document is a single JSON object
    [{"traceEvents": […], "displayTimeUnit": "ms"}] where one simulated
    time unit maps to 1000 µs. Tracks:

    - process [1] ("simulation"): one thread per processor ([p0]…),
      named via [M] metadata events. Steps are complete ([X]) slices of
      one time unit — [Perform] (a step that executed a task, labelled
      with the task id) and [Step] (a bookkeeping step); [Delayed] /
      [Halt] / [Crash] / [Restart] / [Note] are thread-scoped instants
      ([i]).
    - broadcast flow arrows: for each [Broadcast] and each destination
      whose next step ([Step] or [Perform]) exists in the trace, a
      flow-start ([s]) at the send and a flow-finish ([f], [bp:"e"]) on
      the destination's first step strictly after it — one fresh id per (broadcast, destination)
      pair, so [s]/[f] events always come in matched pairs (the trace
      records no per-destination delivery event; the receiving step is
      the closest observable anchor).
    - process [2] ("engine profile"), only with [?spans]: the phase
      totals laid end to end as [X] slices — a stacked-bar reading of
      engine wall-time, not a timeline (the profiler keeps totals, not
      intervals). Phases never entered (count 0, e.g. [oracle] without
      [--check]) are omitted rather than drawn zero-width.

    Validity (every line parses, flows pair up) is pinned by
    [test/test_span.ml]. *)

val json : ?spans:Span.snapshot -> p:int -> Doall_sim.Trace.t -> Export.Json.t
(** The whole document as a {!Export.Json.t} value. *)

val write :
  out_channel -> ?spans:Span.snapshot -> p:int -> Doall_sim.Trace.t -> unit
(** [json] pretty-printed to the channel
    ({!Export.Json.pp_to_channel}). *)
