/* Monotonic clock for the Span self-profiler (lib/obs/span.ml).

   clock_gettime(CLOCK_MONOTONIC) through an untagged/noalloc external:
   one vDSO call and zero OCaml allocation per read, so bracketing the
   engine's per-step phases stays within the <5% overhead gate
   (bench obs --profile). Nanoseconds since an arbitrary epoch in an
   OCaml 63-bit int: good for ~146 years of uptime. */

#include <time.h>
#include <caml/mlvalues.h>

intnat doall_mono_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec;
}

value doall_mono_ns_byte(value unit)
{
  return Val_long(doall_mono_ns_unboxed(unit));
}
