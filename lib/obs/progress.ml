(* See progress.mli. *)

type t = {
  out : out_channel;
  active : bool;
  total : int;
  label : string;
  start : float;
  mutable done_ : int;
  mutable last_render : float;
  mutable closed : bool;
}

let is_tty oc =
  try Unix.isatty (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> false

let create ?(out = stderr) ?(force = false) ~total ~label () =
  {
    out;
    active = (force || is_tty out) && total > 0;
    total;
    label;
    start = Unix.gettimeofday ();
    done_ = 0;
    last_render = 0.0;
    closed = false;
  }

let eta_string ~elapsed ~done_ ~total =
  if done_ = 0 then "?"
  else
    let remaining =
      elapsed /. float_of_int done_ *. float_of_int (total - done_)
    in
    if remaining >= 3600.0 then
      Printf.sprintf "%dh%02dm"
        (int_of_float remaining / 3600)
        (int_of_float remaining mod 3600 / 60)
    else if remaining >= 60.0 then
      Printf.sprintf "%dm%02ds"
        (int_of_float remaining / 60)
        (int_of_float remaining mod 60)
    else Printf.sprintf "%.0fs" remaining

(* Every overwrite erases to end-of-line (CSI K) before rewriting: a
   shrinking line ("ETA 1m40s" -> "ETA 9s") must not leave the tail of
   the longer previous render on screen. Pinned by test/test_obs.ml. *)
let render t ~final =
  let elapsed = Unix.gettimeofday () -. t.start in
  if final then
    Printf.fprintf t.out "\r\027[K%s: %d/%d cells, %.1fs elapsed\n%!"
      t.label t.done_ t.total elapsed
  else
    Printf.fprintf t.out "\r\027[K%s: %d/%d cells (%.0f%%), ETA %s%!" t.label
      t.done_ t.total
      (100.0 *. float_of_int t.done_ /. float_of_int t.total)
      (eta_string ~elapsed ~done_:t.done_ ~total:t.total)

let tick t =
  if t.active && not t.closed then begin
    t.done_ <- t.done_ + 1;
    if t.done_ >= t.total then begin
      render t ~final:true;
      t.closed <- true
    end
    else begin
      let now = Unix.gettimeofday () in
      if now -. t.last_render >= 0.05 then begin
        t.last_render <- now;
        render t ~final:false
      end
    end
  end

let finish t =
  if t.active && not t.closed then begin
    t.closed <- true;
    Printf.fprintf t.out "\r\027[K%!"
  end
