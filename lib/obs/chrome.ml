(* See chrome.mli. *)

open Doall_sim

(* One simulated time unit renders as 1 ms (1000 µs): long enough that
   Perfetto's default zoom shows structure, and integral so every
   timestamp stays an exact int. *)
let usec t = t * 1000

let sim_pid = 1
let profile_pid = 2

let step_dur = 1000

module J = Export.Json

let meta_event ~pid ~tid key value =
  J.Obj
    [
      ("ph", J.Str "M");
      ("pid", J.Int pid);
      ("tid", J.Int tid);
      ("name", J.Str key);
      ("args", J.Obj [ ("name", J.Str value) ]);
    ]

let complete ~tid ~ts ~dur name args =
  J.Obj
    ([
       ("ph", J.Str "X");
       ("pid", J.Int sim_pid);
       ("tid", J.Int tid);
       ("ts", J.Int ts);
       ("dur", J.Int dur);
       ("name", J.Str name);
     ]
    @ if args = [] then [] else [ ("args", J.Obj args) ])

let instant ~tid ~ts name args =
  J.Obj
    ([
       ("ph", J.Str "i");
       ("s", J.Str "t");
       ("pid", J.Int sim_pid);
       ("tid", J.Int tid);
       ("ts", J.Int ts);
       ("name", J.Str name);
     ]
    @ if args = [] then [] else [ ("args", J.Obj args) ])

let flow ~phase ~id ~tid ~ts =
  J.Obj
    ([
       ("ph", J.Str phase);
       ("cat", J.Str "bcast");
       ("id", J.Int id);
       ("pid", J.Int sim_pid);
       ("tid", J.Int tid);
       ("ts", J.Int ts);
       ("name", J.Str "bcast");
     ]
    @ if phase = "f" then [ ("bp", J.Str "e") ] else [])

let json ?spans ~p trace =
  (* Per-pid ascending step times: the flow-arrow targets. The trace has
     no per-destination delivery event (deliveries are folded into the
     receiving step), so a broadcast's arrow to [dst] lands on [dst]'s
     first step strictly after the send — exactly when the engine first
     hands the message over, modulo adversarial extra delay. *)
  (* A [Perform] is a step that executed a task ([Step] is recorded only
     for bookkeeping steps), so both anchor flow arrows. *)
  let steps = Array.make (max p 1) [] in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Step { time; pid } | Trace.Perform { time; pid; _ } ->
        steps.(pid) <- time :: steps.(pid)
      | _ -> ());
  let steps = Array.map (fun l -> Array.of_list (List.rev l)) steps in
  let first_step_after pid t =
    let a = steps.(pid) in
    let lo = ref 0 and hi = ref (Array.length a) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) > t then hi := mid else lo := mid + 1
    done;
    if !lo < Array.length a then Some a.(!lo) else None
  in
  let evs = ref [] in
  let emit e = evs := e :: !evs in
  emit (meta_event ~pid:sim_pid ~tid:0 "process_name" "simulation");
  for i = 0 to p - 1 do
    emit (meta_event ~pid:sim_pid ~tid:i "thread_name" (Printf.sprintf "p%d" i))
  done;
  let flow_id = ref 0 in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Step { time; pid } ->
        emit (complete ~tid:pid ~ts:(usec time) ~dur:step_dur "step" [])
      | Trace.Delayed { time; pid } ->
        emit (instant ~tid:pid ~ts:(usec time) "delayed" [])
      | Trace.Perform { time; pid; task; fresh } ->
        emit
          (complete ~tid:pid ~ts:(usec time) ~dur:step_dur
             (if fresh then "perform" else "perform (redundant)")
             [ ("task", J.Int task); ("fresh", J.Bool fresh) ])
      | Trace.Broadcast { time; src; copies } ->
        emit
          (instant ~tid:src ~ts:(usec time) "broadcast"
             [ ("copies", J.Int copies) ]);
        (* One flow id per (broadcast, destination): an [s] is emitted
           only when its [f] target exists, so every arrow is a matched
           pair — pinned by test/test_span.ml. *)
        for dst = 0 to p - 1 do
          if dst <> src then
            match first_step_after dst time with
            | None -> ()
            | Some t_arrive ->
              let id = !flow_id in
              incr flow_id;
              emit (flow ~phase:"s" ~id ~tid:src ~ts:(usec time));
              emit (flow ~phase:"f" ~id ~tid:dst ~ts:(usec t_arrive))
        done
      | Trace.Halt { time; pid } -> emit (instant ~tid:pid ~ts:(usec time) "halt" [])
      | Trace.Crash { time; pid } ->
        emit (instant ~tid:pid ~ts:(usec time) "crash" [])
      | Trace.Restart { time; pid } ->
        emit (instant ~tid:pid ~ts:(usec time) "restart" [])
      | Trace.Note { time; text } ->
        emit (instant ~tid:0 ~ts:(usec time) ("note: " ^ text) []));
  (match spans with
   | None -> ()
   | Some sp ->
     (* The self-profiler only keeps per-phase totals, so the profile
        track renders one slice per phase laid end to end: a stacked-bar
        reading of where engine wall-time went. *)
     emit (meta_event ~pid:profile_pid ~tid:0 "process_name" "engine profile");
     emit (meta_event ~pid:profile_pid ~tid:0 "thread_name" "phases");
     let ts = ref 0.0 in
     List.iter
       (fun (name, (total, count)) ->
         (* unentered phases (e.g. [oracle] without --check) would be
            zero-width slices: leave them off the track *)
         if count > 0 then begin
         let dur = total *. 1e6 in
         emit
           (J.Obj
              [
                ("ph", J.Str "X");
                ("pid", J.Int profile_pid);
                ("tid", J.Int 0);
                ("ts", J.Float !ts);
                ("dur", J.Float dur);
                ("name", J.Str name);
                ("args", J.Obj [ ("count", J.Int count) ]);
              ]);
         ts := !ts +. dur
         end)
       sp);
  J.Obj
    [
      ("traceEvents", J.List (List.rev !evs));
      ("displayTimeUnit", J.Str "ms");
    ]

let write oc ?spans ~p trace = Export.Json.pp_to_channel oc (json ?spans ~p trace)
