(** Aligned text tables and CSV export for the experiment harness. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
(** Row length must match the column count. *)

val add_note : t -> string -> unit
(** Free-text line printed under the table. *)

(** Accessors (rows and notes in insertion order) — used by the
    structured exporters in [lib/obs]. *)

val title : t -> string
val columns : t -> string list
val rows : t -> string list list
val notes : t -> string list

val render : t -> string
(** Title, header, separator, aligned rows, notes. *)

val print : t -> unit
(** [render] to stdout. *)

val to_csv : t -> string

val write_csv : t -> path:string -> unit

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ratio : float -> float -> string
(** ["a/b"] as a fixed-point ratio; ["-"] when the denominator is 0. *)
