type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
  mutable notes : string list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes
let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows
let notes t = List.rev t.notes

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad i cell =
    let w = widths.(i) in
    let pad_len = w - String.length cell in
    if i = 0 then cell ^ String.make pad_len ' '
    else String.make pad_len ' ' ^ cell
  in
  let emit_row row =
    Buffer.add_string buf
      (String.concat "  " (List.mapi pad row));
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  List.iter
    (fun n -> Buffer.add_string buf ("  * " ^ n ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 1024 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map csv_escape row));
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let write_csv t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

let cell_int = string_of_int

let cell_float ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x

let cell_ratio a b =
  if Float.abs b < 1e-12 then "-" else Printf.sprintf "%.2f" (a /. b)
