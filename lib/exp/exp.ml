open Doall_sim
module Table = Doall_analysis.Table
module Export = Doall_obs.Export

type axes = {
  algos : string list;
  advs : string list;
  points : (int * int * int) list;
  seeds : int list;
  fault_tags : string list;
  transports : string list;
}

let axes ?(algos = []) ?(advs = []) ?(points = []) ?(seeds = [])
    ?(fault_tags = []) ?(transports = []) () =
  { algos; advs; points; seeds; fault_tags; transports }

type t = {
  id : string;
  doc : string;
  anchor : string;
  axes : axes;
  tables : string list;
  body : Ctx.t -> unit;
}

let make ~id ~doc ~anchor ?(axes = axes ()) ?(tables = []) body =
  { id; doc; anchor; axes; tables; body }

(* ------------------------------------------------------------------ *)
(* Registry. Registration happens at startup (Catalog.install) before
   any grid is launched, mirroring Runner.register_algorithm's
   contract; the mutex makes stray concurrent registration safe. *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []
let registry_mutex = Mutex.create ()

let register e =
  Mutex.protect registry_mutex (fun () ->
      if Hashtbl.mem registry e.id then
        invalid_arg
          (Printf.sprintf "Exp.register: duplicate experiment id %S" e.id);
      Hashtbl.add registry e.id e;
      order := e.id :: !order)

let find id =
  Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt registry id)

let ids () = Mutex.protect registry_mutex (fun () -> List.rev !order)

let all () =
  Mutex.protect registry_mutex (fun () ->
      List.rev_map (Hashtbl.find registry) !order)

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let one_liner e = Printf.sprintf "(%s) %s" e.anchor e.doc

let comma = String.concat ", "

let describe e =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s — %s" e.id e.doc;
  line "  anchor: %s" e.anchor;
  let ax = e.axes in
  if ax.algos <> [] then line "  algos:  %s" (comma ax.algos);
  if ax.advs <> [] then line "  advs:   %s" (comma ax.advs);
  (match ax.points with
   | [] -> ()
   | points ->
     line "  points: %s"
       (comma
          (List.map (fun (p, t, d) -> Printf.sprintf "(p=%d,t=%d,d=%d)" p t d)
             points)));
  if ax.seeds <> [] then
    line "  seeds:  %s" (comma (List.map string_of_int ax.seeds));
  if ax.fault_tags <> [] then line "  faults: %s" (comma ax.fault_tags);
  if ax.transports <> [] then line "  transports: %s" (comma ax.transports);
  (match e.tables with
   | [] -> line "  tables: (text-only output)"
   | tables ->
     line "  tables: %s" (comma tables);
     line "  csv:    %s"
       (comma (List.map (fun n -> Printf.sprintf "%s-%s.csv" e.id n) tables)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Engine. *)

type sink = {
  on_table : name:string -> Table.t -> unit;
  on_text : string -> unit;
}

let stdout_sink =
  { on_table = (fun ~name:_ tbl -> Table.print tbl); on_text = print_string }

let buffer_sink buf =
  {
    on_table = (fun ~name:_ tbl -> Buffer.add_string buf (Table.render tbl));
    on_text = Buffer.add_string buf;
  }

let run ?jobs ?pool ?csv_dir ?jsonl ?(progress = false) ?(sink = stdout_sink)
    e =
  let on_table ~name tbl =
    sink.on_table ~name tbl;
    Option.iter
      (fun dir ->
        Table.write_csv tbl
          ~path:(Filename.concat dir (Printf.sprintf "%s-%s.csv" e.id name)))
      csv_dir;
    Option.iter (fun oc -> Export.write_table oc ~exp:e.id ~name tbl) jsonl
  in
  (* One pool for the whole experiment: a caller-owned one, or a
     transient one sized by ?jobs (never one per grid call). *)
  let owned, pool =
    match (pool, jobs) with
    | (Some _ as p), _ -> (None, p)
    | None, Some j ->
      let p = Pool.create ~jobs:j () in
      (Some p, Some p)
    | None, None -> (None, None)
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown owned)
    (fun () ->
      let ctx =
        Ctx.make ?pool ~progress ~label:e.id ~on_table
          ~on_text:sink.on_text ()
      in
      e.body ctx)
