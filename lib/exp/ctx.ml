open Doall_sim
open Doall_core
module Progress = Doall_obs.Progress

type faults = string * Adversary.faults

(* Memo key: the run spec plus everything else that can change a cell's
   metrics — the invariant oracle is read-only but kept in the key
   anyway (honesty over cleverness), and fault policies are closures, so
   they are identified by their caller-supplied tag. *)
type key = Runner.run_spec * bool * string

type t = {
  pool : Pool.t option;
  jobs : int option;
  progress : bool;
  label : string;
  memo : (key, Runner.result) Hashtbl.t;
  on_table : name:string -> Doall_analysis.Table.t -> unit;
  on_text : string -> unit;
  mutable table_seq : int;
  mutable misses : int;
}

let make ?pool ?jobs ?(progress = false) ~label ~on_table ~on_text () =
  {
    pool;
    jobs;
    progress;
    label;
    memo = Hashtbl.create 64;
    on_table;
    on_text;
    table_seq = 0;
    misses = 0;
  }

let key ?(check = false) ?faults spec : key =
  (spec, check, match faults with None -> "" | Some (tag, _) -> tag)

let grid t ?check ?faults specs =
  let keys = List.map (fun s -> key ?check ?faults s) specs in
  (* first-occurrence dedup of the cache misses, preserving order *)
  let seen = Hashtbl.create 16 in
  let missing =
    List.filter_map
      (fun ((spec, _, _) as k) ->
        if Hashtbl.mem t.memo k || Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (k, spec)
        end)
      keys
  in
  (match missing with
   | [] -> ()
   | _ ->
     t.misses <- t.misses + List.length missing;
     let specs_to_run = List.map snd missing in
     let total = List.length specs_to_run in
     let meter =
       if t.progress && total > 1 then
         Some (Progress.create ~total ~label:t.label ())
       else None
     in
     let on_cell =
       Option.map
         (fun pr ~finished:_ ~total:_ (_ : Runner.result) -> Progress.tick pr)
         meter
     in
     let results =
       Fun.protect
         ~finally:(fun () -> Option.iter Progress.finish meter)
         (fun () ->
           Runner.run_grid ?pool:t.pool ?jobs:t.jobs ?check ?faults:(Option.map snd faults)
             ?on_cell specs_to_run)
     in
     List.iter2
       (fun (k, _) r -> Hashtbl.replace t.memo k r)
       missing results);
  List.map (fun k -> Hashtbl.find t.memo k) keys

let cell t ?check ?faults spec =
  match grid t ?check ?faults [ spec ] with
  | [ r ] -> r
  | _ -> assert false

let mean_work t ?check ?faults ?transport ~seeds ~algo ~adv ~p ~t:tasks ~d ()
    =
  let specs =
    List.map
      (fun seed -> Runner.spec ~seed ?transport ~algo ~adv ~p ~t:tasks ~d ())
      seeds
  in
  let runs = List.map (fun r -> r.Runner.metrics) (grid t ?check ?faults specs) in
  let len = float_of_int (List.length runs) in
  List.fold_left
    (fun acc m -> acc +. float_of_int m.Metrics.work)
    0.0 runs
  /. len

let cells_simulated t = t.misses

let emit t ?name tbl =
  t.table_seq <- t.table_seq + 1;
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "t%d" t.table_seq
  in
  t.on_table ~name tbl

let print t s = t.on_text s
