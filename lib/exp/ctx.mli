(** Execution context handed to an experiment body.

    One [Ctx.t] lives for one {!Exp.run} invocation. It owns

    - the {b cell memo cache}: every simulation cell is keyed by its
      {!Doall_core.Runner.run_spec} (plus the oracle flag and the
      fault-policy tag), so a cell evaluated for a table is never
      re-simulated for a plot or a second table of the same experiment;
    - the {b pool}: uncached cells are fanned across
      {!Doall_core.Runner.run_grid}, inheriting its bit-determinism
      contract — results are identical for any [jobs >= 1];
    - the {b output sinks}: tables and free text emitted through the
      context reach stdout, [--csv], and [--jsonl] uniformly (wired up
      by {!Exp.run}).

    Experiment bodies should do all their simulating through {!cell} /
    {!grid} and all their printing through {!emit} / {!print}; anything
    that bypasses the context (direct [Engine.run_packed] calls for
    non-registry algorithm variants) still works but is neither memoized
    nor parallelized. *)

open Doall_sim
open Doall_core

type t

type faults = string * Adversary.faults
(** A fault-policy overlay with a stable tag naming it (e.g.
    ["drop=0.50"]). The tag is part of the memo key, so two policies
    with the same tag are assumed interchangeable. *)

val make :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?progress:bool ->
  label:string ->
  on_table:(name:string -> Doall_analysis.Table.t -> unit) ->
  on_text:(string -> unit) ->
  unit ->
  t
(** Used by {!Exp.run}; [label] prefixes progress lines. When neither
    [?pool] nor [?jobs] is given, each uncached grid runs on a transient
    default-sized pool. *)

(** {1 Simulation} *)

val cell : t -> ?check:bool -> ?faults:faults -> Runner.run_spec -> Runner.result
(** One memoized cell, simulated in the calling domain on a miss. *)

val grid :
  t ->
  ?check:bool ->
  ?faults:faults ->
  Runner.run_spec list ->
  Runner.result list
(** Memoized batch: cells not in the cache (deduplicated) run through
    {!Doall_core.Runner.run_grid} on the context's pool, with a live
    progress meter when enabled; results come back in argument order.
    Raises {!Doall_core.Runner.Grid_incomplete} like the runner does. *)

val mean_work :
  t ->
  ?check:bool ->
  ?faults:faults ->
  ?transport:Config.transport ->
  seeds:int list ->
  algo:string ->
  adv:string ->
  p:int ->
  t:int ->
  d:int ->
  unit ->
  float
(** Seed-averaged work through {!grid}: the per-seed cells are memoized
    individually, and the mean is folded exactly like
    {!Doall_core.Runner.average_work} so migrated experiments print
    bit-identical numbers. *)

val cells_simulated : t -> int
(** Number of cache misses so far — the count of simulations this
    context actually ran (the dedup tests pin it). *)

(** {1 Output} *)

val emit : t -> ?name:string -> Doall_analysis.Table.t -> unit
(** Route one finished table to the sinks. [name] is the stable
    per-experiment table name used for [<exp-id>-<name>.csv]; it
    defaults to ["t1"], ["t2"], … in emission order. *)

val print : t -> string -> unit
(** Route free text (plots, trace renderings, prose results) to the
    text sink verbatim. *)
