(* The built-in experiment catalog: one spec per theorem/figure of the
   paper (see DESIGN.md section 4 and EXPERIMENTS.md for the
   paper-vs-measured record). Bodies were migrated verbatim from the
   pre-refactor bench/main.ml; all simulating goes through the
   experiment context's memo cache + pool, and all printing through its
   sinks, so `bench e2` and `doall exp run e2` render byte-identical
   tables at any --jobs. *)

open Doall_sim
open Doall_core
open Doall_perms
open Doall_analysis

let wf = float_of_int

let work_of ctx ?(seed = 1) ~algo ~adv ~p ~t ~d () =
  (Ctx.cell ctx (Runner.spec ~seed ~algo ~adv ~p ~t ~d ())).Runner.metrics

let mean_work ctx ?(seeds = [ 1; 2; 3; 4; 5 ]) ~algo ~adv ~p ~t ~d () =
  Ctx.mean_work ctx ~seeds ~algo ~adv ~p ~t ~d ()

(* Run a packed algorithm (for variants not in the registry): these
   bypass the registry-keyed memo cache by construction. *)
let run_packed ?(seed = 1) algo ~adv ~p ~t ~d =
  let adversary = (Runner.find_adv adv).Runner.instantiate ~p ~t ~d in
  let cfg = Config.make ~seed ~p ~t () in
  Engine.run_packed algo cfg ~d ~adversary ()

(* ------------------------------------------------------------------ *)
(* E1. Proposition 2.2: the quadratic wall at d = Theta(t).            *)

let e1 =
  let p = 16 and t = 96 in
  let algos = [ "trivial"; "da-q4"; "paran1"; "padet" ] in
  Exp.make ~id:"e1" ~anchor:"Prop 2.2"
    ~doc:"work under max-delay across d: the quadratic wall at d = Theta(t)"
    ~axes:
      (Exp.axes ~algos ~advs:[ "max-delay" ]
         ~points:(List.map (fun d -> (p, t, d)) [ 1; 2; 4; 8; 16; 24; 48; 96 ])
         ~seeds:[ 1 ] ())
    ~tables:[ "main" ]
    (fun ctx ->
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E1 (Prop 2.2): work under max-delay, p=%d t=%d (oblivious pt=%d)"
               p t (p * t))
          ~columns:("d" :: List.concat_map (fun a -> [ a; a ^ "/pt" ]) algos)
      in
      List.iter
        (fun d ->
          let cells =
            List.concat_map
              (fun algo ->
                let m = work_of ctx ~algo ~adv:"max-delay" ~p ~t ~d () in
                [
                  Table.cell_int m.Metrics.work;
                  Table.cell_ratio (wf m.Metrics.work) (wf (p * t));
                ])
              algos
          in
          Table.add_row tbl (Table.cell_int d :: cells))
        [ 1; 8; 24; 48; 96 ];
      Table.add_note tbl
        "expected shape: coordinated algorithms approach the oblivious p*t as d \
         approaches t; trivial is flat at 1.00";
      Ctx.emit ctx ~name:"main" tbl;
      let series =
        List.map
          (fun algo ->
            {
              Plot.label = algo;
              points =
                List.map
                  (fun d ->
                    let m = work_of ctx ~algo ~adv:"max-delay" ~p ~t ~d () in
                    (wf d, wf m.Metrics.work))
                  [ 1; 2; 4; 8; 16; 24; 48; 96 ];
            })
          algos
      in
      Ctx.print ctx
        (Plot.render ~logx:true ~logy:true
           ~title:"work vs d (log-log); the wall at d = t is the flattening"
           series))

(* ------------------------------------------------------------------ *)
(* E2. Theorem 3.1: deterministic lower-bound adversary.               *)

let e2 =
  let p = 64 and t = 64 in
  Exp.make ~id:"e2" ~anchor:"Thm 3.1"
    ~doc:"work forced by the deterministic stage adversary vs LB(p,t,d)"
    ~axes:
      (Exp.axes ~algos:[ "da-q2"; "da-q4"; "padet" ] ~advs:[ "lb-det" ]
         ~points:(List.map (fun d -> (p, t, d)) [ 1; 2; 4; 8 ])
         ~seeds:[ 1 ] ())
    ~tables:[ "main" ]
    (fun ctx ->
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E2 (Thm 3.1): work forced by the stage adversary, p=t=%d" p)
          ~columns:
            [ "d"; "da-q2"; "da-q4"; "padet"; "LB(p,t,d)"; "da-q4/LB"; "stages" ]
      in
      List.iter
        (fun d ->
          let stagecount = ref 0 in
          (* the stage adversary is interrogated after the run
             (stages_of), so these cells run outside the memo cache *)
          let run algo =
            let adv = Doall_adversary.Lb_deterministic.create () in
            let cfg = Config.make ~seed:1 ~p ~t () in
            let m =
              Engine.run_packed
                ((Runner.find_algo algo).Runner.make ())
                cfg ~d ~adversary:adv ()
            in
            stagecount :=
              List.length (Doall_adversary.Lb_deterministic.stages_of adv);
            m.Metrics.work
          in
          let w2 = run "da-q2" in
          let w4 = run "da-q4" in
          let wd = run "padet" in
          let lb = Bounds.lower_bound ~p ~t ~d in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_int w2;
              Table.cell_int w4;
              Table.cell_int wd;
              Table.cell_float lb;
              Table.cell_ratio (wf w4) lb;
              Table.cell_int !stagecount;
            ])
        [ 1; 2; 4; 8 ];
      Table.add_note tbl
        "expected shape: forced work grows with d and tracks \
         t + p*min(d,t)*log_{d+1}(d+t) within a constant";
      Ctx.emit ctx ~name:"main" tbl)

(* ------------------------------------------------------------------ *)
(* E3. Theorem 3.4: randomized online adversary.                       *)

let e3 =
  let p = 64 and t = 64 in
  Exp.make ~id:"e3" ~anchor:"Thm 3.4"
    ~doc:"expected work under the randomized online adversary + Lemma 3.2 check"
    ~axes:
      (Exp.axes ~algos:[ "paran1"; "paran2" ]
         ~advs:[ "lb-rand"; "lb-rand-random" ]
         ~points:(List.map (fun d -> (p, t, d)) [ 1; 2; 4; 8 ])
         ~seeds:[ 1; 2; 3 ] ())
    ~tables:[ "main" ]
    (fun ctx ->
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E3 (Thm 3.4): expected work under the online adversary, p=t=%d" p)
          ~columns:[ "d"; "paran1 (coverage)"; "paran2 (random J_s)"; "LB(p,t,d)" ]
      in
      List.iter
        (fun d ->
          let mean algo adv =
            mean_work ctx ~seeds:[ 1; 2; 3 ] ~algo ~adv ~p ~t ~d ()
          in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_float (mean "paran1" "lb-rand");
              Table.cell_float (mean "paran2" "lb-rand-random");
              Table.cell_float (Bounds.lower_bound ~p ~t ~d);
            ])
        [ 1; 2; 4; 8 ];
      Table.add_note tbl
        "expected shape: expected work grows with d like the lower bound";
      Ctx.emit ctx ~name:"main" tbl;
      (* The combinatorial pillar of Theorem 3.4, machine-checked: Lemma
         3.2's binomial-ratio bound on every (u, d) pair up to 2000. *)
      match Lemma32.first_counterexample ~u_max:2000 with
      | None ->
        Ctx.print ctx
          "Lemma 3.2 verified numerically: C(u-d,k)/C(u,k) >= 1/4 and the \
           proof's sandwich hold for all u <= 2000, 1 <= d <= sqrt u\n"
      | Some (u, d) ->
        Ctx.print ctx
          (Printf.sprintf "Lemma 3.2 COUNTEREXAMPLE at u=%d d=%d (ratio %.4f)\n"
             u d
             (Lemma32.ratio ~u ~d)))

let fig1 =
  (* The paper's Fig. 1: five processors, d = 5; the online adversary
     delays a processor the moment it selects a J_s task. *)
  let p = 5 and t = 30 and d = 5 in
  Exp.make ~id:"fig1" ~anchor:"Fig. 1"
    ~doc:"the paper's Fig. 1 timeline: the online adversary on PaRan1"
    ~axes:
      (Exp.axes ~algos:[ "paran1" ] ~advs:[ "lb-rand" ] ~points:[ (p, t, d) ]
         ~seeds:[ 3 ] ())
    (fun ctx ->
      let result, trace =
        Runner.run_traced ~seed:3 ~algo:"paran1" ~adv:"lb-rand" ~p ~t ~d ()
      in
      Ctx.print ctx
        (Printf.sprintf
           "== Fig. 1: online adversary on PaRan1, p=%d t=%d d=%d ==\n" p t d);
      Ctx.print ctx
        (Format.asprintf "%a@." Metrics.pp result.Runner.metrics);
      let until = min 72 (result.Runner.metrics.Metrics.sigma + 1) in
      Ctx.print ctx (Format.asprintf "%a" Trace.pp_timeline (trace, p, until));
      Ctx.print ctx
        "legend: # performs a task, o bookkeeping, . delayed by adversary (the \
         moment it selected a J_s task), H halt\n";
      Trace.iter trace (function
        | Trace.Note { time; text } ->
          Ctx.print ctx (Printf.sprintf "  note t=%d: %s\n" time text)
        | _ -> ()))

(* ------------------------------------------------------------------ *)
(* E4. Lemma 4.1: low-contention lists by search.                      *)

let e4 =
  Exp.make ~id:"e4" ~anchor:"Lemma 4.1"
    ~doc:"contention of searched n-permutation lists vs the 3nH_n bound"
    ~tables:[ "main" ]
    (fun ctx ->
      let rng = Rng.create 2024 in
      let tbl =
        Table.create ~title:"E4 (Lemma 4.1): contention of n-permutation lists"
          ~columns:
            [ "n"; "Cont(searched)"; "3nH_n"; "Cont(random)"; "Cont(identity)=n^2" ]
      in
      List.iter
        (fun n ->
          let cert = Search.certified ~rng n in
          let random_cont =
            Contention.contention_exact (Gen.random_list ~rng ~n ~count:n)
          in
          Table.add_row tbl
            [
              Table.cell_int n;
              Table.cell_int cert.Search.contention;
              Table.cell_float cert.Search.bound;
              Table.cell_int random_cont;
              Table.cell_int (n * n);
            ])
        [ 2; 3; 4; 5; 6; 7 ];
      Table.add_note tbl
        "3nH_n exceeds n^2 for n <= 10, so the certificate is loose here; the \
         point is searched < random < identity, and exactness of the Cont \
         computation";
      Ctx.emit ctx ~name:"main" tbl)

(* ------------------------------------------------------------------ *)
(* E5. Theorem 4.4 / Corollary 4.5: d-contention of random lists.      *)

let e5 =
  Exp.make ~id:"e5" ~anchor:"Thm 4.4"
    ~doc:"d-contention of random lists vs the Theorem 4.4 bound"
    ~tables:[ "main"; "concentration" ]
    (fun ctx ->
      let n = 48 in
      let rng = Rng.create 7 in
      let psi = Gen.random_list ~rng ~n ~count:n in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E5 (Thm 4.4): d-contention of a random list, n=p=%d" n)
          ~columns:[ "d"; "(d)-Cont estimate"; "n ln n + 8pd ln(e+n/d)"; "ratio" ]
      in
      List.iter
        (fun d ->
          let est =
            Contention.d_contention_estimate ~restarts:2 ~samples:24 ~rng ~d psi
          in
          let bound = Contention.bound_theorem_4_4 ~n ~p:n ~d in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_int est;
              Table.cell_float bound;
              Table.cell_ratio (wf est) bound;
            ])
        [ 1; 2; 4; 8; 16 ];
      Table.add_note tbl
        "estimate lower-bounds the true max over rho; staying well under the \
         bound confirms the w.h.p. statement";
      Ctx.emit ctx ~name:"main" tbl;
      (* (b) concentration: the w.h.p. statement over many random lists *)
      let n2 = 32 in
      let lists = 40 in
      let tbl2 =
        Table.create
          ~title:
            (Printf.sprintf
               "E5b (Thm 4.4): concentration over %d random lists, n=p=%d" lists
               n2)
          ~columns:[ "d"; "mean est/bound"; "max est/bound"; "lists over bound" ]
      in
      List.iter
        (fun d ->
          let bound = Contention.bound_theorem_4_4 ~n:n2 ~p:n2 ~d in
          let fractions =
            List.map
              (fun i ->
                let rng_i = Rng.create (1000 + i) in
                let psi_i = Gen.random_list ~rng:rng_i ~n:n2 ~count:n2 in
                let est =
                  Contention.d_contention_estimate ~restarts:1 ~samples:12
                    ~rng:rng_i ~d psi_i
                in
                wf est /. bound)
              (List.init lists Fun.id)
          in
          let mean =
            List.fold_left ( +. ) 0.0 fractions /. wf lists
          in
          let worst = List.fold_left Float.max 0.0 fractions in
          let over = List.length (List.filter (fun f -> f > 1.0) fractions) in
          Table.add_row tbl2
            [
              Table.cell_int d;
              Table.cell_float ~decimals:3 mean;
              Table.cell_float ~decimals:3 worst;
              Table.cell_int over;
            ])
        [ 1; 4; 16 ];
      Table.add_note tbl2
        "w.h.p. means the over-bound count should be 0, and it is; the \
         distribution sits tightly around 1/5 of the bound";
      Ctx.emit ctx ~name:"concentration" tbl2)

(* ------------------------------------------------------------------ *)
(* E6. Theorems 5.4/5.5: DA(q) upper bound sweeps.                     *)

let e6 =
  Exp.make ~id:"e6" ~anchor:"Thm 5.4/5.5"
    ~doc:"DA(q) work vs the Theorem 5.5 bound shape in d, p and t"
    ~axes:
      (Exp.axes
         ~algos:[ "da-q2"; "da-q4"; "da-q8" ]
         ~advs:[ "max-delay" ]
         ~points:
           (List.map (fun d -> (32, 256, d)) [ 1; 4; 16; 64; 256 ]
           @ List.map (fun p -> (p, 256, 4)) [ 4; 8; 16; 32; 64 ]
           @ List.map (fun t -> (32, t, 4)) [ 64; 128; 256; 512; 1024 ])
         ~seeds:[ 1 ] ())
    ~tables:[ "d-sweep"; "p-sweep"; "t-sweep" ]
    (fun ctx ->
      (* (a) d sweep. The proof's eps(q) = log_q(4 log q) exceeds 1 for
         the small q we can instantiate (the theorem's q grows like
         2^(log(1/e)/e)); we compare against the bound's *shape* at the
         empirically achieved exponent (~0.3, see the E6b fits below). *)
      let p = 32 and t = 256 in
      let q = 4 in
      let eps = 0.3 in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E6a (Thm 5.5): DA(%d) work vs bound shape, p=%d t=%d (eps=%.2f \
                empirical; proof eps(q)=%.2f)"
               q p t eps (Bounds.epsilon_of_q ~q))
          ~columns:[ "d"; "work"; "t*p^e + p*min(t,d)*ceil(t/d)^e"; "ratio" ]
      in
      List.iter
        (fun d ->
          let m = work_of ctx ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
          let ub = Bounds.da_upper ~p ~t ~d ~epsilon:eps in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_int m.Metrics.work;
              Table.cell_float ub;
              Table.cell_ratio (wf m.Metrics.work) ub;
            ])
        [ 1; 4; 16; 64; 256 ];
      Table.add_note tbl "expected shape: ratio bounded by a constant across d";
      Ctx.emit ctx ~name:"d-sweep" tbl;
      (* (b) p sweep: empirical exponent of W in p *)
      let t = 256 and d = 4 in
      let tbl2 =
        Table.create
          ~title:
            (Printf.sprintf "E6b: DA work scaling in p (t=%d d=%d, max-delay)" t d)
          ~columns:[ "p"; "da-q2"; "da-q4"; "da-q8" ]
      in
      let points = Hashtbl.create 16 in
      List.iter
        (fun p ->
          let row =
            List.map
              (fun q ->
                let algo = Printf.sprintf "da-q%d" q in
                let m = work_of ctx ~algo ~adv:"max-delay" ~p ~t ~d () in
                Hashtbl.replace points (q, p) m.Metrics.work;
                Table.cell_int m.Metrics.work)
              [ 2; 4; 8 ]
          in
          Table.add_row tbl2 (Table.cell_int p :: row))
        [ 4; 8; 16; 32; 64 ];
      List.iter
        (fun q ->
          let pairs =
            List.map
              (fun p -> (wf p, wf (Hashtbl.find points (q, p))))
              [ 4; 8; 16; 32; 64 ]
          in
          let fit = Stats.loglog_fit pairs in
          Table.add_note tbl2
            (Printf.sprintf
               "q=%d: empirical exponent of W in p = %.2f (r2=%.2f); paper \
                predicts a small epsilon plus the additive p*d term" q
               fit.Stats.slope fit.Stats.r2))
        [ 2; 4; 8 ];
      Ctx.emit ctx ~name:"p-sweep" tbl2;
      (* (c) t sweep: W should be near-linear in t *)
      let p = 32 and d = 4 in
      let tbl3 =
        Table.create
          ~title:(Printf.sprintf "E6c: DA(4) work scaling in t (p=%d d=%d)" p d)
          ~columns:[ "t"; "work"; "work/t" ]
      in
      let pairs = ref [] in
      List.iter
        (fun t ->
          let m = work_of ctx ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
          pairs := (wf t, wf m.Metrics.work) :: !pairs;
          Table.add_row tbl3
            [
              Table.cell_int t;
              Table.cell_int m.Metrics.work;
              Table.cell_ratio (wf m.Metrics.work) (wf t);
            ])
        [ 64; 128; 256; 512; 1024 ];
      let fit = Stats.loglog_fit !pairs in
      Table.add_note tbl3
        (Printf.sprintf
           "empirical exponent of W in t = %.2f (r2=%.2f); bound predicts ~1"
           fit.Stats.slope fit.Stats.r2);
      Ctx.emit ctx ~name:"t-sweep" tbl3)

(* ------------------------------------------------------------------ *)
(* E7. Theorem 5.6: DA message complexity M = O(pW).                   *)

let e7 =
  let p = 16 and t = 64 and d = 4 in
  Exp.make ~id:"e7" ~anchor:"Thm 5.6"
    ~doc:"DA message complexity against the M <= p*W ceiling"
    ~axes:
      (Exp.axes
         ~algos:[ "da-q2"; "da-q4"; "da-q6"; "da-q8" ]
         ~advs:[ "fair"; "max-delay" ] ~points:[ (p, t, d) ] ~seeds:[ 1 ] ())
    ~tables:[ "main" ]
    (fun ctx ->
      let tbl =
        Table.create ~title:"E7 (Thm 5.6): DA message complexity, M/(p*W) <= 1"
          ~columns:[ "q"; "adv"; "W"; "M"; "M/(p*W)" ]
      in
      List.iter
        (fun q ->
          List.iter
            (fun adv ->
              let m =
                work_of ctx ~algo:(Printf.sprintf "da-q%d" q) ~adv ~p ~t ~d ()
              in
              Table.add_row tbl
                [
                  Table.cell_int q;
                  adv;
                  Table.cell_int m.Metrics.work;
                  Table.cell_int m.Metrics.messages;
                  Table.cell_ratio (wf m.Metrics.messages)
                    (wf (p * m.Metrics.work));
                ])
            [ "fair"; "max-delay" ])
        [ 2; 4; 6; 8 ];
      Table.add_note tbl
        "DA broadcasts only on node completions, so the measured ratio sits \
         well below the p*W ceiling";
      Ctx.emit ctx ~name:"main" tbl)

(* ------------------------------------------------------------------ *)
(* E8. Theorem 6.2: PaRan1/PaRan2 expected work.                       *)

let e8 =
  Exp.make ~id:"e8" ~anchor:"Thm 6.2"
    ~doc:"PaRan1/PaRan2 expected work vs the Theorem 6.2 bound"
    ~axes:
      (Exp.axes ~algos:[ "paran1"; "paran2" ] ~advs:[ "max-delay" ]
         ~points:
           (List.map (fun d -> (64, 64, d)) [ 1; 2; 4; 8; 16; 32 ]
           @ List.map (fun p -> (p, 256, 8)) [ 4; 8; 16; 32; 64 ])
         ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ] ())
    ~tables:[ "main"; "p-sweep" ]
    (fun ctx ->
      let p = 64 and t = 64 in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E8 (Thm 6.2): randomized PA expected work, p=t=%d (max-delay)" p)
          ~columns:
            [
              "d"; "EW paran1"; "ci95"; "EW paran2"; "t log p + p d log(2+t/d)";
              "ran1/bound";
            ]
      in
      let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
      List.iter
        (fun d ->
          let works algo =
            let specs =
              List.map
                (fun seed ->
                  Runner.spec ~seed ~algo ~adv:"max-delay" ~p ~t ~d ())
                seeds
            in
            List.map
              (fun (r : Runner.result) -> wf r.Runner.metrics.Metrics.work)
              (Ctx.grid ctx specs)
          in
          let s1 = Stats.summarize (works "paran1") in
          let s2 = Stats.summarize (works "paran2") in
          let ub = Bounds.pa_upper ~p ~t ~d in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_float s1.Stats.mean;
              Printf.sprintf "+-%.0f" s1.Stats.ci95;
              Table.cell_float s2.Stats.mean;
              Table.cell_float ub;
              Table.cell_ratio s1.Stats.mean ub;
            ])
        [ 1; 2; 4; 8; 16; 32 ];
      Table.add_note tbl "expected shape: ratio bounded by a constant across d";
      Ctx.emit ctx ~name:"main" tbl;
      (* p sweep at large t *)
      let t = 256 and d = 8 in
      let tbl2 =
        Table.create
          ~title:(Printf.sprintf "E8b: PaRan1 scaling in p (t=%d d=%d)" t d)
          ~columns:[ "p"; "EW"; "bound"; "ratio" ]
      in
      List.iter
        (fun p ->
          let w =
            mean_work ctx ~seeds:[ 1; 2; 3 ] ~algo:"paran1" ~adv:"max-delay" ~p
              ~t ~d ()
          in
          let ub = Bounds.pa_upper ~p ~t ~d in
          Table.add_row tbl2
            [
              Table.cell_int p;
              Table.cell_float w;
              Table.cell_float ub;
              Table.cell_ratio w ub;
            ])
        [ 4; 8; 16; 32; 64 ];
      Ctx.emit ctx ~name:"p-sweep" tbl2)

(* ------------------------------------------------------------------ *)
(* E9. Theorem 6.3 / Corollary 6.5: PaDet + schedule-quality ablation. *)

let e9 =
  let p = 48 and t = 48 in
  Exp.make ~id:"e9" ~anchor:"Thm 6.3/Cor 6.5"
    ~doc:"PaDet schedule-quality and gossip-granularity ablations"
    ~axes:
      (Exp.axes ~algos:[ "padet" ] ~advs:[ "max-delay"; "random-half" ]
         ~points:(List.map (fun d -> (p, t, d)) [ 1; 2; 4; 8; 16 ])
         ~seeds:[ 1 ] ())
    ~tables:[ "schedule-quality"; "gossip" ]
    (fun ctx ->
      let n = min p t in
      (* (a) schedule quality: certified/seeded list vs the worst list. *)
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E9a (Cor 6.5): PaDet schedule quality, p=t=%d (max-delay)" p)
          ~columns:[ "d"; "padet"; "padet-identity-list"; "bound" ]
      in
      let identity_psi = Gen.identity_list ~n ~count:p in
      List.iter
        (fun d ->
          let w_good =
            (run_packed (Algo_pa.make_det ()) ~adv:"max-delay" ~p ~t ~d)
              .Metrics.work
          in
          let w_bad =
            (run_packed
               (Algo_pa.make_det ~psi:identity_psi ())
               ~adv:"max-delay" ~p ~t ~d)
              .Metrics.work
          in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_int w_good;
              Table.cell_int w_bad;
              Table.cell_float (Bounds.pa_upper ~p ~t ~d);
            ])
        [ 1; 2; 4; 8; 16 ];
      Table.add_note tbl
        "the identity list has worst-case contention p*n (every processor \
         shares one schedule), and indeed pays ~p*t regardless of d";
      Ctx.emit ctx ~name:"schedule-quality" tbl;
      (* (b) gossip granularity: full knowledge sets vs single-task
         announcements. Needs a schedule where third-party relay matters —
         under all-to-all lockstep the two coincide, so we use random
         per-unit step subsets with uniform delays. *)
      let tbl2 =
        Table.create
          ~title:
            (Printf.sprintf
               "E9b: gossip granularity ablation, p=t=%d (random-half)" p)
          ~columns:[ "d"; "padet (full sets)"; "padet (single task)" ]
      in
      List.iter
        (fun d ->
          let w_full =
            (run_packed (Algo_pa.make_det ()) ~adv:"random-half" ~p ~t ~d)
              .Metrics.work
          in
          let w_single =
            (run_packed
               (Algo_pa.make_det ~gossip:`Single ())
               ~adv:"random-half" ~p ~t ~d)
              .Metrics.work
          in
          Table.add_row tbl2
            [ Table.cell_int d; Table.cell_int w_full; Table.cell_int w_single ])
        [ 2; 4; 8; 16 ];
      Table.add_note tbl2
        "full knowledge sets (the paper's model, load-bearing in Lemma 6.1) \
         propagate third-party news; single-task gossip loses it and pays \
         more work as d grows";
      Ctx.emit ctx ~name:"gossip" tbl2)

(* ------------------------------------------------------------------ *)
(* E10. Head-to-head and the DA q ablation.                            *)

let e10 =
  Exp.make ~id:"e10" ~anchor:"Sec 1.2"
    ~doc:"head-to-head work under max-delay + the DA(q) ablation"
    ~axes:
      (Exp.axes
         ~algos:[ "trivial"; "da-q2"; "da-q4"; "paran1"; "paran2"; "padet" ]
         ~advs:[ "max-delay" ]
         ~points:
           (List.map (fun d -> (48, 48, d)) [ 1; 4; 16; 48 ]
           @ [ (64, 64, 1); (64, 64, 16) ])
         ~seeds:[ 1; 2; 3 ] ())
    ~tables:[ "main"; "q-ablation" ]
    (fun ctx ->
      let p = 48 and t = 48 in
      let algos = [ "trivial"; "da-q2"; "da-q4"; "paran1"; "paran2"; "padet" ] in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E10: head-to-head work under max-delay, p=t=%d (winner starred)" p)
          ~columns:("d" :: algos)
      in
      List.iter
        (fun d ->
          let results =
            List.map
              (fun algo ->
                let w =
                  if algo = "paran1" || algo = "paran2" then
                    int_of_float
                      (mean_work ctx ~seeds:[ 1; 2; 3 ] ~algo ~adv:"max-delay"
                         ~p ~t ~d ())
                  else
                    (work_of ctx ~algo ~adv:"max-delay" ~p ~t ~d ()).Metrics.work
                in
                (algo, w))
              algos
          in
          let best =
            List.fold_left (fun acc (_, w) -> min acc w) max_int results
          in
          let cells =
            List.map
              (fun (_, w) ->
                if w = best then Table.cell_int w ^ "*" else Table.cell_int w)
              results
          in
          Table.add_row tbl (Table.cell_int d :: cells))
        [ 1; 4; 16; 48 ];
      Table.add_note tbl
        "expected crossover: coordinated algorithms win while d = o(t); at d = t \
         the oblivious baseline is no longer beaten by much (Prop 2.2)";
      Ctx.emit ctx ~name:"main" tbl;
      (* q ablation *)
      let p = 64 and t = 64 in
      let tbl2 =
        Table.create
          ~title:(Printf.sprintf "E10b: DA(q) ablation, p=t=%d (max-delay)" p)
          ~columns:[ "q"; "W at d=1"; "W at d=16" ]
      in
      List.iter
        (fun q ->
          let algo = Printf.sprintf "da-q%d" q in
          let w1 =
            (work_of ctx ~algo ~adv:"max-delay" ~p ~t ~d:1 ()).Metrics.work
          in
          let w16 =
            (work_of ctx ~algo ~adv:"max-delay" ~p ~t ~d:16 ()).Metrics.work
          in
          Table.add_row tbl2
            [ Table.cell_int q; Table.cell_int w1; Table.cell_int w16 ])
        [ 2; 3; 4; 5; 6; 7; 8 ];
      Table.add_note tbl2
        "the q knob trades traversal depth (helps small d) against fan-out \
         redundancy (hurts large d) - the epsilon trade-off of Thm 5.4";
      Ctx.emit ctx ~name:"q-ablation" tbl2)

(* ------------------------------------------------------------------ *)
(* E11. Lemma 4.2: ObliDo primary executions vs contention.            *)

let e11 =
  Exp.make ~id:"e11" ~anchor:"Lemma 4.2"
    ~doc:"ObliDo primary executions bounded by Cont(psi)"
    ~tables:[ "main" ]
    (fun ctx ->
      let rng = Rng.create 91 in
      let tbl =
        Table.create
          ~title:"E11 (Lemma 4.2): ObliDo primary executions <= Cont(psi)"
          ~columns:
            [ "n"; "Cont(psi)"; "max primaries (40 interleavings)"; "bound holds" ]
      in
      List.iter
        (fun n ->
          let psi = Gen.random_list ~rng ~n ~count:n in
          let cont = Contention.contention_exact psi in
          let worst = ref 0 in
          for _ = 1 to 39 do
            let prob = 0.15 +. Rng.float rng 0.8 in
            let rounds = Oblido.random_rounds ~rng ~n ~count:n ~prob in
            let stats = Oblido.replay ~psi ~rounds in
            worst := max !worst stats.Oblido.primary
          done;
          let stats =
            Oblido.replay ~psi ~rounds:(Oblido.adversarial_rounds ~psi)
          in
          worst := max !worst stats.Oblido.primary;
          Table.add_row tbl
            [
              Table.cell_int n;
              Table.cell_int cont;
              Table.cell_int !worst;
              (if !worst <= cont then "yes" else "NO");
            ])
        [ 3; 4; 5; 6; 7 ];
      Ctx.emit ctx ~name:"main" tbl)

(* ------------------------------------------------------------------ *)
(* E12. Proposition 2.1: premature halting breaks Do-All.              *)

module Bad_early_halt : Algorithm.S = struct
  (* Deliberately broken: processors share the identity schedule and halt
     one task early. Every processor performs 0..t-2 and stops; task t-1
     is never performed, so the run cannot complete (Prop 2.1: in the
     paper's unbounded-work sense; here the engine's honest time cap
     reports the non-termination). *)
  let name = "bad-early-halt"

  type state = { t : int; know : Bitset.t; mutable halted : bool }
  type msg = Bitset.t

  let init (cfg : Config.t) ~pid:_ =
    { t = cfg.Config.t; know = Bitset.create cfg.Config.t; halted = false }

  let copy st = { st with know = Bitset.copy st.know }
  let receive st ~src:_ msg = Bitset.union_into ~dst:st.know msg

  (* Keep the buggy exemplar on the per-record path: the oracle test
     pins its exact failure mode. *)
  let merge_homomorphic = None
  let is_done st = Bitset.is_full st.know
  let done_tasks st = st.know

  let step st =
    if st.halted then Algorithm.nothing
    else if Bitset.cardinal st.know >= st.t - 1 then begin
      (* halts while one task may still be unperformed *)
      st.halted <- true;
      Algorithm.nothing
    end
    else
      match Bitset.first_missing st.know with
      | Some z ->
        Bitset.set st.know z;
        Algorithm.result ~performed:z ~broadcast:(Bitset.copy st.know) ()
      | None -> Algorithm.nothing
end

let e12 =
  let p = 4 and t = 12 and d = 2 in
  Exp.make ~id:"e12" ~anchor:"Prop 2.1"
    ~doc:"premature halting breaks Do-All, demonstrated live"
    ~axes:
      (Exp.axes ~algos:[ "padet" ] ~advs:[ "fair" ] ~points:[ (p, t, d) ]
         ~seeds:[ 1 ] ())
    (fun ctx ->
      let cfg = Config.make ~seed:1 ~p ~t () in
      let m =
        Engine.run_packed
          (module Bad_early_halt)
          cfg ~d ~adversary:Adversary.fair ~max_time:2000 ()
      in
      Ctx.print ctx
        "== E12 (Prop 2.1): halting before knowing completion ==\n";
      Ctx.print ctx
        (Printf.sprintf
           "bad-early-halt: completed=%b executions=%d (task %d never \
            performed; work would grow unboundedly, the harness caps at time \
            %d)\n"
           m.Metrics.completed m.Metrics.executions (t - 1) m.Metrics.sigma);
      let good = work_of ctx ~algo:"padet" ~adv:"fair" ~p ~t ~d () in
      Ctx.print ctx
        (Printf.sprintf
           "padet (halts only when informed): completed=%b work=%d\n\n"
           good.Metrics.completed good.Metrics.work))

(* ------------------------------------------------------------------ *)
(* E13. Section 1.1: direct message passing vs quorum emulation.       *)

let e13 =
  let p = 16 and t = 64 in
  Exp.make ~id:"e13" ~anchor:"Sec 1.1"
    ~doc:"direct message passing vs quorum-emulated shared memory"
    ~axes:
      (Exp.axes ~algos:[ "da-q4" ] ~advs:[ "max-delay"; "crash-all-but-one" ]
         ~points:(List.map (fun d -> (p, t, d)) [ 1; 2; 4; 8; 16; 32 ])
         ~seeds:[ 1 ] ())
    ~tables:[ "main" ]
    (fun ctx ->
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E13 (Sec 1.1): DA(4) vs quorum-emulated AW(4), p=%d t=%d \
                (max-delay)"
               p t)
          ~columns:
            [ "d"; "da-q4 W"; "awq-q4 W"; "awq-abd W"; "awq/da"; "abd/awq" ]
      in
      List.iter
        (fun d ->
          let da = work_of ctx ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
          let awq =
            run_packed (Doall_quorum.Algo_awq.make ~q:4 ()) ~adv:"max-delay" ~p
              ~t ~d
          in
          let abd =
            run_packed
              (Doall_quorum.Algo_awq.make ~q:4 ~protocol:`Abd ())
              ~adv:"max-delay" ~p ~t ~d
          in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_int da.Metrics.work;
              Table.cell_int awq.Metrics.work;
              Table.cell_int abd.Metrics.work;
              Table.cell_ratio (wf awq.Metrics.work) (wf da.Metrics.work);
              Table.cell_ratio (wf abd.Metrics.work) (wf awq.Metrics.work);
            ])
        [ 1; 2; 4; 8; 16; 32 ];
      Table.add_note tbl
        "every emulated memory operation waits ~d steps for a quorum, so the \
         emulation's work grows much faster in d than DA's (the paper: \
         subquadratic only while delays are O(K)); the full two-phase ABD \
         protocol of the general constructions [3,18] doubles the per-op \
         round trips, and the measured ~2x confirms the monotone single-phase \
         optimization is what keeps even the emulation competitive";
      Ctx.emit ctx ~name:"main" tbl;
      (* the liveness caveat: quorum damage *)
      let run_crash algo label =
        let adversary =
          (Runner.find_adv "crash-all-but-one").Runner.instantiate ~p ~t ~d:2
        in
        let cfg = Config.make ~seed:1 ~p ~t () in
        let m = Engine.run_packed algo cfg ~d:2 ~adversary ~max_time:20_000 () in
        Ctx.print ctx
          (Printf.sprintf
             "  %-8s under crash-all-but-one: completed=%b work=%d\n" label
             m.Metrics.completed m.Metrics.work)
      in
      Ctx.print ctx
        "quorum-damage caveat (crashes leave 1 < majority processors):\n";
      run_crash ((Runner.find_algo "da-q4").Runner.make ()) "da-q4";
      run_crash (Doall_quorum.Algo_awq.make ~q:4 ()) "awq-q4";
      Ctx.print ctx
        "  (AWQ burns work forever without solving Do-All - the paper's \
         'quorums disabled by failures' failure mode)\n")

(* ------------------------------------------------------------------ *)
(* E14 (extension): trading messages for work by throttling broadcasts. *)

let e14 =
  let p = 48 and t = 48 in
  Exp.make ~id:"e14" ~anchor:"Sec 7 (extension)"
    ~doc:"broadcast throttling: trading messages for work"
    ~axes:
      (Exp.axes ~algos:[ "padet" ] ~advs:[ "max-delay" ]
         ~points:[ (p, t, 2); (p, t, 8) ]
         ~seeds:[ 1 ] ())
    ~tables:[ "d2"; "d8" ]
    (fun ctx ->
      List.iter
        (fun d ->
          let tbl =
            Table.create
              ~title:
                (Printf.sprintf
                   "E14 (extension, Sec 7 open problem): PaDet broadcast \
                    throttling, p=t=%d d=%d (max-delay)"
                   p d)
              ~columns:[ "broadcast every"; "W"; "M"; "effort W+M" ]
          in
          List.iter
            (fun k ->
              let m =
                run_packed
                  (Algo_pa.make_det ~broadcast_every:k ())
                  ~adv:"max-delay" ~p ~t ~d
              in
              Table.add_row tbl
                [
                  Table.cell_int k;
                  Table.cell_int m.Metrics.work;
                  Table.cell_int m.Metrics.messages;
                  Table.cell_int (Metrics.effort m);
                ])
            [ 1; 2; 4; 8; 16 ];
          Table.add_note tbl
            "k divides M by ~k while W rises slowly: the effort-minimizing k \
             is interior - evidence for the paper's open problem that W and M \
             can be balanced";
          Ctx.emit ctx ~name:(Printf.sprintf "d%d" d) tbl)
        [ 2; 8 ])

(* ------------------------------------------------------------------ *)
(* E15. Intro claim: synchronous-style techniques do not adapt.        *)

let e15 =
  let p = 16 and t = 96 in
  Exp.make ~id:"e15" ~anchor:"Sec 1.1 intro"
    ~doc:"synchronous-style coordinator vs delay-sensitive algorithms"
    ~axes:
      (Exp.axes ~algos:[ "coord"; "da-q4"; "padet" ] ~advs:[ "max-delay" ]
         ~points:(List.map (fun d -> (p, t, d)) [ 1; 2; 4; 8; 16; 32; 96 ])
         ~seeds:[ 1 ] ())
    ~tables:[ "main" ]
    (fun ctx ->
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E15 (Sec 1.1 intro): synchronous-style coordinator vs \
                delay-sensitive algorithms, p=%d t=%d (max-delay)"
               p t)
          ~columns:
            [ "d"; "coord W"; "coord M"; "da-q4 W"; "da-q4 M"; "padet W";
              "padet M" ]
      in
      List.iter
        (fun d ->
          let c = work_of ctx ~algo:"coord" ~adv:"max-delay" ~p ~t ~d () in
          let a = work_of ctx ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
          let g = work_of ctx ~algo:"padet" ~adv:"max-delay" ~p ~t ~d () in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_int c.Metrics.work;
              Table.cell_int c.Metrics.messages;
              Table.cell_int a.Metrics.work;
              Table.cell_int a.Metrics.messages;
              Table.cell_int g.Metrics.work;
              Table.cell_int g.Metrics.messages;
            ])
        [ 1; 2; 4; 8; 16; 32; 96 ];
      Table.add_note tbl
        "the coordinator's fixed timeouts make it superbly frugal when the \
         network matches its synchrony assumption (small d) and wasteful once \
         d exceeds the timeout: suspicion is always wrong, epochs thrash, and \
         the uncoordinated fallback does the work - the intro's 'not clear how \
         to adapt' claim, measured";
      Ctx.emit ctx ~name:"main" tbl)

(* ------------------------------------------------------------------ *)
(* E16 (extension): gossip fanout instead of full broadcast.           *)

let e16 =
  let p = 48 and t = 48 and d = 4 in
  Exp.make ~id:"e16" ~anchor:"[12] (extension)"
    ~doc:"gossip fanout instead of full broadcast"
    ~axes:
      (Exp.axes ~algos:[ "paran1" ] ~advs:[ "uniform-delay" ]
         ~points:[ (p, t, d) ]
         ~seeds:[ 1; 2; 3; 4; 5 ] ())
    ~tables:[ "main" ]
    (fun ctx ->
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E16 (extension, cf. [12]): PaRan1 gossip fanout, p=t=%d d=%d \
                (uniform-delay, mean of 5 seeds)"
               p d)
          ~columns:[ "fanout"; "EW"; "EM"; "effort" ]
      in
      let mean_of f seeds =
        List.fold_left (fun acc s -> acc +. f s) 0.0 seeds
        /. wf (List.length seeds)
      in
      List.iter
        (fun fanout ->
          let runs =
            List.map
              (fun seed ->
                run_packed ~seed
                  (Algo_pa.make_ran1 ?fanout ())
                  ~adv:"uniform-delay" ~p ~t ~d)
              [ 1; 2; 3; 4; 5 ]
          in
          let ew = mean_of (fun m -> wf m.Metrics.work) runs in
          let em = mean_of (fun m -> wf m.Metrics.messages) runs in
          Table.add_row tbl
            [
              (match fanout with None -> "all (p-1)" | Some k -> Table.cell_int k);
              Table.cell_float ew;
              Table.cell_float em;
              Table.cell_float (ew +. em);
            ])
        [ Some 1; Some 2; Some 4; Some 8; Some 16; None ];
      Table.add_note tbl
        "random gossip to k recipients: messages scale with k while work decays \
         slowly - small fanouts already realize most of the coordination value";
      Ctx.emit ctx ~name:"main" tbl)

(* ------------------------------------------------------------------ *)
(* E17. Model selection: which theorem explains each algorithm?        *)

let e17 =
  let p = 48 and t = 48 in
  let ds = [ 1; 2; 4; 8; 16; 32; 48 ] in
  let algos = [ "trivial"; "da-q4"; "paran1"; "padet"; "coord" ] in
  Exp.make ~id:"e17" ~anchor:"all bounds"
    ~doc:"which bound shape best fits each algorithm (model selection)"
    ~axes:
      (Exp.axes ~algos ~advs:[ "max-delay" ]
         ~points:(List.map (fun d -> (p, t, d)) ds)
         ~seeds:[ 1; 2; 3 ] ())
    ~tables:[ "main" ]
    (fun ctx ->
      (* The whole sweep as one flat grid fanned across the pool:
         deterministic algorithms contribute one cell (seed 1) per delay,
         randomized ones the mean of seeds 1-3. *)
      let seeds_for algo =
        if (Runner.find_algo algo).Runner.deterministic then [ 1 ]
        else [ 1; 2; 3 ]
      in
      let specs =
        List.concat_map
          (fun algo ->
            List.concat_map
              (fun d ->
                List.map
                  (fun seed ->
                    Runner.spec ~seed ~algo ~adv:"max-delay" ~p ~t ~d ())
                  (seeds_for algo))
              ds)
          algos
      in
      let results = Ctx.grid ctx specs in
      let works : (string * int, float list) Hashtbl.t = Hashtbl.create 64 in
      List.iter2
        (fun (s : Runner.run_spec) (r : Runner.result) ->
          let key = (s.Runner.spec_algo, s.Runner.d) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt works key) in
          Hashtbl.replace works key (wf r.Runner.metrics.Metrics.work :: prev))
        specs results;
      let mean_at algo d =
        let ws = Hashtbl.find works (algo, d) in
        List.fold_left ( +. ) 0.0 ws /. wf (List.length ws)
      in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E17: best-fitting bound shape per algorithm, work-vs-d sweep, \
                p=t=%d (max-delay)"
               p)
          ~columns:[ "algorithm"; "best model"; "r2"; "runner-up"; "r2 " ]
      in
      List.iter
        (fun algo ->
          let points = List.map (fun d -> (d, mean_at algo d)) ds in
          match Fit.rank ~p ~t points with
          | first :: second :: _ ->
            Table.add_row tbl
              [
                algo;
                first.Fit.model.Fit.model_name;
                Table.cell_float ~decimals:3 first.Fit.r2;
                second.Fit.model.Fit.model_name;
                Table.cell_float ~decimals:3 second.Fit.r2;
              ]
          | _ -> assert false)
        algos;
      Table.add_note tbl
        "expected: trivial flat (constant shapes fit exactly); DA/PA best \
         explained by the delay-sensitive shapes at r2 ~0.99 (lower bound / \
         pa upper / linear p*d are near-collinear at p=t); coord fits \
         nothing well (r2 markedly lower) - its timeout cliff follows no \
         delay-sensitive bound, which is the point of E15";
      Ctx.emit ctx ~name:"main" tbl)

(* ------------------------------------------------------------------ *)
(* E18. The three worlds: shared memory, message passing, emulation.   *)

let e18 =
  let p = 16 and t = 64 in
  Exp.make ~id:"e18" ~anchor:"Sec 1.1"
    ~doc:"one algorithm, three worlds: shared memory, messages, quorums"
    ~axes:
      (Exp.axes ~algos:[ "da-q4" ] ~advs:[ "max-delay" ]
         ~points:(List.map (fun d -> (p, t, d)) [ 1; 4; 16; 64 ])
         ~seeds:[ 1 ] ())
    ~tables:[ "main"; "schedules" ]
    (fun ctx ->
      let shm = Doall_sharedmem.Write_all.run ~q:4 ~p ~t () in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E18 (Sec 1.1): one algorithm, three worlds - AW(4) in shared \
                memory vs DA(4) vs quorum emulations, p=%d t=%d"
               p t)
          ~columns:[ "d"; "AW shm"; "DA msg"; "AWQ"; "AWQ-ABD" ]
      in
      List.iter
        (fun d ->
          let da = work_of ctx ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
          let awq =
            run_packed (Doall_quorum.Algo_awq.make ~q:4 ()) ~adv:"max-delay" ~p
              ~t ~d
          in
          let abd =
            run_packed
              (Doall_quorum.Algo_awq.make ~q:4 ~protocol:`Abd ())
              ~adv:"max-delay" ~p ~t ~d
          in
          Table.add_row tbl
            [
              Table.cell_int d;
              Table.cell_int shm.Doall_sharedmem.Write_all.work;
              Table.cell_int da.Metrics.work;
              Table.cell_int awq.Metrics.work;
              Table.cell_int abd.Metrics.work;
            ])
        [ 1; 4; 16; 64 ];
      Table.add_note tbl
        "the shared-memory original has no d: its column is constant. DA \
         beats it at tiny d (multicasts PUSH progress; shared memory must \
         PULL by reading) but pays a delay-sensitive premium as d grows \
         (Thm 5.5); the emulations pay ~d per memory operation on top of \
         that.";
      Ctx.emit ctx ~name:"main" tbl;
      (* and the asynchrony-only degradation of the original, for context *)
      let tbl2 =
        Table.create
          ~title:"E18b: AW(4) shared-memory work under schedule adversaries"
          ~columns:[ "schedule"; "work"; "redundant" ]
      in
      List.iter
        (fun (name, schedule) ->
          let m = Doall_sharedmem.Write_all.run ~q:4 ~p ~t ~schedule () in
          Table.add_row tbl2
            [
              name;
              Table.cell_int m.Doall_sharedmem.Write_all.work;
              Table.cell_int (Doall_sharedmem.Write_all.redundant m);
            ])
        [
          ("fair (all step)", Doall_sharedmem.Write_all.fair);
          ("rotating width 4", Doall_sharedmem.Write_all.rotating ~width:4);
          ("random half",
           Doall_sharedmem.Write_all.random_subset ~seed:3 ~prob:0.5);
          ("solo", Doall_sharedmem.Write_all.solo 0);
        ];
      Table.add_note tbl2
        "pure scheduling adversity barely moves AW's work - with atomic \
         shared state, progress knowledge is never stale; staleness is \
         exactly what message delay buys the adversary in the other worlds";
      Ctx.emit ctx ~name:"schedules" tbl2)

(* ------------------------------------------------------------------ *)
(* E19. Graceful degradation: work vs message-loss rate.

   Outside the paper's model (its network never loses messages), so
   there is no theorem to pin — the claim under test is docs/FAULTS.md's:
   every algorithm stays live at any loss rate, and work degrades
   monotonically toward the oblivious p*t wall as the gossip channel
   closes. At 100% loss the cooperative algorithms ARE the trivial
   algorithm with postage. *)

let e19 =
  let p = 16 and t = 64 and d = 4 in
  let algos = [ "paran1"; "padet"; "da-q4" ] in
  let rates = [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ] in
  Exp.make ~id:"e19" ~anchor:"docs/FAULTS.md"
    ~doc:"graceful degradation: mean work vs message-loss rate"
    ~axes:
      (Exp.axes ~algos ~advs:[ "max-delay" ] ~points:[ (p, t, d) ]
         ~seeds:[ 1; 2; 3 ]
         ~fault_tags:
           (List.filter_map
              (fun r ->
                if r > 0.0 then Some (Printf.sprintf "drop=%.2f" r) else None)
              rates)
         ())
    ~tables:[ "main" ]
    (fun ctx ->
      let seeds = [ 1; 2; 3 ] in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E19 (docs/FAULTS.md): mean work vs message-loss rate, \
                max-delay, p=%d t=%d d=%d (oblivious pt=%d)"
               p t d (p * t))
          ~columns:
            ("loss" :: List.concat_map (fun a -> [ a; a ^ "/pt" ]) algos)
      in
      let mean_work_at ~algo rate =
        (* rate 0.0 passes no policy at all, so the baseline row is the
           reliable network bit-for-bit (the fault branch draws no RNG when
           absent); checked runs keep the oracle on the whole sweep *)
        let faults =
          if rate > 0.0 then
            Some
              ( Printf.sprintf "drop=%.2f" rate,
                Doall_adversary.Fault.drop ~prob:rate )
          else None
        in
        let specs =
          List.map
            (fun seed ->
              Runner.spec ~seed ~algo ~adv:"max-delay" ~p ~t ~d ())
            seeds
        in
        let results = Ctx.grid ctx ~check:true ?faults specs in
        let sum =
          List.fold_left
            (fun acc (r : Runner.result) -> acc + r.Runner.metrics.Metrics.work)
            0 results
        in
        wf sum /. wf (List.length seeds)
      in
      List.iter
        (fun rate ->
          let cells =
            List.concat_map
              (fun algo ->
                let w = mean_work_at ~algo rate in
                [ Table.cell_float w; Table.cell_ratio w (wf (p * t)) ])
              algos
          in
          Table.add_row tbl (Table.cell_float ~decimals:2 rate :: cells))
        rates;
      Table.add_note tbl
        "expected shape: work rises monotonically with loss and saturates at \
         the oblivious p*t wall (ratio ~1) once no gossip survives — DA(q) \
         lands slightly above it because unacknowledged coordinators keep \
         re-executing their phase; no run ever hangs: liveness never depended \
         on delivery (solo fallback)";
      Ctx.emit ctx ~name:"main" tbl)

(* ------------------------------------------------------------------ *)
(* E20. Search-driven worst cases: can an evolutionary search over the
   strategy DSL beat every hand-written adversary — including the
   paper's lower-bound constructions — at its own game?

   Two arenas per (algo, d) cell, each comparing the worst hand-written
   registry adversary against a Worstcase.search of the same cell and
   seed:

   - "model": the paper's arena (scheduling + delay + crash/restart, no
     message faults). Here the search strictly beats the registry by
     composing levers the hand adversaries keep separate (flaky restarts
     paired with max delay, staggered kills under a laggard schedule).
   - "chaos": everything, message faults included. Here full loss
     (lossy-all) is provably work-maximal — knowledge transfer can only
     reduce work, so no schedule beats total silence — and the search's
     job is to rediscover that ceiling, not to pass it.

   The search is seeded by the same integer as the runs, so the whole
   experiment — including the winning specs — is bit-deterministic;
   every winner is printed as a replayable
   `doall run --adv strategy:<spec>` command. *)

let e20 =
  let p = 16 and t = 64 in
  let ds = [ 2; 8 ] in
  let algos = [ "paran1"; "da-q4" ] in
  let seed = 1 in
  let budget = 48 in
  let all_advs = List.map (fun a -> a.Runner.adv_name) Runner.adversaries in
  let beyond_model = [ "lossy-half"; "lossy-all"; "dup-storm"; "chaos" ] in
  let model_advs =
    List.filter (fun a -> not (List.mem a beyond_model)) all_advs
  in
  Exp.make ~id:"e20" ~anchor:"docs/FAULTS.md"
    ~doc:"synthesized worst-case strategies vs the hand-written registry"
    ~axes:
      (Exp.axes ~algos ~advs:all_advs
         ~points:(List.map (fun d -> (p, t, d)) ds)
         ~seeds:[ seed ] ())
    ~tables:[ "model"; "chaos" ]
    (fun ctx ->
      let replays = Buffer.create 256 in
      let arena ~title ~advs ~space ~note =
        let tbl =
          Table.create ~title
            ~columns:
              [
                "algo"; "d"; "worst hand adv"; "hand W"; "synth W";
                "synth/hand"; "LB"; "capped";
              ]
        in
        List.iter
          (fun algo ->
            List.iter
              (fun d ->
                (* (a) the hand-written registry, worst work wins;
                   memoized, oracle on *)
                let specs =
                  List.map
                    (fun adv -> Runner.spec ~seed ~algo ~adv ~p ~t ~d ())
                    advs
                in
                let results = Ctx.grid ctx ~check:true specs in
                let hand_name, hand_w =
                  List.fold_left2
                    (fun (bn, bw) adv (r : Runner.result) ->
                      let w = r.Runner.metrics.Metrics.work in
                      if w > bw then (adv, w) else (bn, bw))
                    ("-", min_int) advs results
                in
                (* (b) same cell, same seed, searched; capped candidates
                   score as honest `completed=false` rows inside the
                   search rather than aborting it *)
                let outcome =
                  Worstcase.search ~seed ~population:10 ~space ~algo ~p ~t
                    ~d ~budget ()
                in
                let synth_w =
                  outcome.Doall_adversary.Synth.best_eval.e_work
                in
                let capped = outcome.Doall_adversary.Synth.capped in
                Table.add_row tbl
                  [
                    algo;
                    Table.cell_int d;
                    hand_name;
                    Table.cell_int hand_w;
                    Table.cell_int synth_w;
                    Table.cell_ratio (wf synth_w) (wf hand_w);
                    Table.cell_float (Bounds.lower_bound ~p ~t ~d);
                    Table.cell_int capped;
                  ];
                Buffer.add_string replays
                  (Printf.sprintf
                     "  [%s] %s d=%d:  doall run --algo %s --adv \
                      'strategy:%s' -p %d -t %d -d %d --seed %d --check\n"
                     (Doall_adversary.Strategy.space_to_string space)
                     algo d algo outcome.Doall_adversary.Synth.best_spec p
                     t d seed))
              ds)
          algos;
        Table.add_note tbl note;
        tbl
      in
      let model_tbl =
        arena
          ~title:
            (Printf.sprintf
               "E20a: searched vs hand-written worst cases in the paper's \
                model (delay+crash+restart), p=%d t=%d, budget=%d \
                runs/cell"
               p t budget)
          ~advs:model_advs
          ~space:Doall_adversary.Strategy.In_model
          ~note:
            "expected shape: synth/hand > 1 on the da rows and >= 1 \
             everywhere — the search composes restart churn with maximal \
             delay (levers the registry's flaky-restart and max-delay \
             keep separate), which the hand set never exceeds; `capped` \
             counts candidate runs that hit the time cap during the \
             search (recorded, not fatal)"
      in
      let chaos_tbl =
        arena
          ~title:
            (Printf.sprintf
               "E20b: searched vs hand-written worst cases, message \
                faults allowed, p=%d t=%d, budget=%d runs/cell"
               p t budget)
          ~advs:all_advs ~space:Doall_adversary.Strategy.Live
          ~note:
            "expected shape: synth/hand = 1 in every row, and that is the \
             interesting result — with message faults allowed, total loss \
             is provably work-maximal (a delivered message can only \
             shrink somebody's remaining work), so the hand-written \
             lossy-all already sits at the oblivious ceiling and the \
             search's job is to rediscover it, not to pass it"
      in
      Ctx.emit ctx ~name:"model" model_tbl;
      Ctx.emit ctx ~name:"chaos" chaos_tbl;
      Ctx.print ctx
        ("replay the winners (bit-identical to the search's evaluation):\n"
        ^ Buffer.contents replays))

(* ------------------------------------------------------------------ *)
(* E21. Beyond the model: the multiple-access shared channel.          *)

let e21 =
  let p = 12 and t = 48 and d = 4 in
  let seed = 1 in
  (* Any_survivor families only: on a silent channel a collision is a
     total loss, and `Needs_quorum` algorithms (awq) can honestly never
     complete under a colliding adversary — that is a liveness result,
     not a work table. *)
  let algos = [ "da-q4"; "paran1"; "padet"; "coord" ] in
  let advs =
    [
      "fair"; "chan-ordered"; "chan-ordered-high"; "chan-rotor";
      "chan-delayed"; "chan-delayed-ordered";
    ]
  in
  Exp.make ~id:"e21" ~anchor:"docs/MODEL.md"
    ~doc:
      "work/messages on point-to-point vs the multiple-access shared \
       channel under ordered/delayed contention adversaries"
    ~axes:
      (Exp.axes ~algos ~advs ~points:[ (p, t, d) ] ~seeds:[ seed ]
         ~transports:[ "ptp"; "channel"; "channel-detect" ] ())
    ~tables:[ "silent"; "detect" ]
    (fun ctx ->
      (* On point-to-point every chan-* adversary degenerates to fair
         (contention rules are inert there), so one fair ptp cell per
         algorithm baselines its whole row block. *)
      let base algo =
        (Ctx.cell ctx (Runner.spec ~seed ~algo ~adv:"fair" ~p ~t ~d ()))
          .Runner.metrics
      in
      let arena ~name ~collision ~title ~note =
        let tbl =
          Table.create ~title
            ~columns:
              [ "algo"; "adversary"; "W"; "M"; "sigma"; "W/ptp"; "M/ptp" ]
        in
        List.iter
          (fun algo ->
            let b = base algo in
            List.iter
              (fun adv ->
                let m =
                  (Ctx.cell ctx
                     (Runner.spec ~seed
                        ~transport:(Config.Channel collision) ~algo ~adv ~p
                        ~t ~d ()))
                    .Runner.metrics
                in
                Table.add_row tbl
                  [
                    algo; adv;
                    Table.cell_int m.Metrics.work;
                    Table.cell_int m.Metrics.messages;
                    Table.cell_int m.Metrics.sigma;
                    Table.cell_ratio (wf m.Metrics.work) (wf b.Metrics.work);
                    Table.cell_ratio
                      (wf m.Metrics.messages)
                      (wf b.Metrics.messages);
                  ])
              advs)
          algos;
        Table.add_note tbl note;
        Ctx.emit ctx ~name tbl
      in
      arena ~name:"silent" ~collision:Config.Silent
        ~title:
          (Printf.sprintf
             "E21a: shared channel, silent collisions, p=%d t=%d d=%d \
              (baseline: same algo under fair on ptp)"
             p t d)
        ~note:
          "expected shape: under fair and chan-delayed every slot with \
           several transmitters collides silently (no arbitration rule), \
           so knowledge never spreads and W climbs toward the oblivious \
           p*t; the ordered adversaries serialize one delivery per slot \
           and land between ptp and total loss. M counts one unit per \
           logical message on the channel vs p-1 per broadcast on ptp \
           (Definition 2.2), so M/ptp is small by construction";
      arena ~name:"detect" ~collision:Config.Detectable
        ~title:
          (Printf.sprintf
             "E21b: shared channel, detectable collisions (deterministic \
              backoff), p=%d t=%d d=%d"
             p t d)
        ~note:
          "expected shape: detection + backoff self-serializes the \
           colliders (distinct sources never re-collide), so even the \
           arbitration-free adversaries deliver and W sits well under \
           the silent table's; the ordered adversaries change who wins \
           a slot, not whether it is won")

(* ------------------------------------------------------------------ *)

(* Registration order is the order a bare `bench` runs everything in —
   keep fig1 right after e3, as before the migration. *)
let all =
  [
    e1; e2; e3; fig1; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15;
    e16; e17; e18; e19; e20; e21;
  ]

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    List.iter Exp.register all
  end
