(** Declarative experiment specs, the registry, and the run engine.

    An experiment is data: an id, a one-line doc, the paper anchor it
    reproduces, its axes (algorithms x adversaries x (p, t, d) points x
    seeds x fault overlays) and the stable names of the tables it emits
    — plus a body that renders those tables through a {!Ctx.t}. The
    engine ({!run}) owns everything the bodies used to hand-roll:
    pool parallelism, progress, seed averaging, the per-experiment cell
    memo cache, and the output sinks (pretty table / [<id>-<name>.csv] /
    versioned JSONL via {!Doall_obs.Export}).

    The built-in specs live in {!Catalog}; [bench] and [doall exp]
    both execute the registry, so adding one spec surfaces it in both. *)

type axes = {
  algos : string list;
  advs : string list;
  points : (int * int * int) list;  (** (p, t, d) grid points *)
  seeds : int list;
  fault_tags : string list;
      (** fault-overlay tags swept (e.g. ["drop=0.50"]); [[]] means the
          paper's reliable network *)
  transports : string list;
      (** transport backends swept (e.g. ["ptp"; "channel"]); [[]]
          means point-to-point only, the paper's model *)
}

val axes :
  ?algos:string list ->
  ?advs:string list ->
  ?points:(int * int * int) list ->
  ?seeds:int list ->
  ?fault_tags:string list ->
  ?transports:string list ->
  unit ->
  axes
(** All components default to [[]]; axes are descriptive metadata for
    [describe] and docs — the body remains the executable truth. *)

type t = {
  id : string;
  doc : string;  (** one line; shown by [list] and unknown-id errors *)
  anchor : string;  (** paper anchor, e.g. ["Prop 2.2"] *)
  axes : axes;
  tables : string list;
      (** stable table names, in emission order; table [n] of experiment
          [id] lands in [<id>-<n>.csv] under [--csv] *)
  body : Ctx.t -> unit;
}

val make :
  id:string ->
  doc:string ->
  anchor:string ->
  ?axes:axes ->
  ?tables:string list ->
  (Ctx.t -> unit) ->
  t

(** {1 Registry} *)

val register : t -> unit
(** Raises [Invalid_argument] on a duplicate id. *)

val find : string -> t option

val all : unit -> t list
(** In registration order — the order a bare [bench] runs them in. *)

val ids : unit -> string list

(** {1 Rendering} *)

val one_liner : t -> string
(** ["(anchor) doc"] — the [list] line body. *)

val describe : t -> string
(** Multi-line spec rendering: id, anchor, doc, axes, tables and their
    CSV artifact names. *)

(** {1 Engine} *)

type sink = {
  on_table : name:string -> Doall_analysis.Table.t -> unit;
  on_text : string -> unit;
}

val stdout_sink : sink
(** [Table.print] / [print_string] — the byte-identical replacement for
    the pre-refactor hand-rolled printing. *)

val buffer_sink : Buffer.t -> sink
(** Captures tables (rendered) and text into one buffer, in emission
    order — what the golden snapshot tests compare across [jobs]. *)

val run :
  ?jobs:int ->
  ?pool:Doall_sim.Pool.t ->
  ?csv_dir:string ->
  ?jsonl:out_channel ->
  ?progress:bool ->
  ?sink:sink ->
  t ->
  unit
(** Execute one experiment through a fresh {!Ctx.t}. [?pool] reuses a
    caller-owned pool; otherwise [?jobs] creates one transient pool for
    the whole experiment (not per grid). [?csv_dir] writes every emitted
    table as [<id>-<name>.csv]; [?jsonl] appends [table]/[row] lines
    (schema in docs/OBSERVABILITY.md). Results are bit-identical for
    every [jobs >= 1]. *)
