(** The built-in experiment catalog: e1–e19 plus the Fig. 1 trace, one
    registered {!Exp.t} per paper anchor (see EXPERIMENTS.md for the
    paper-vs-measured record).

    Bodies migrated from the pre-refactor [bench/main.ml] print
    byte-identical tables — the golden snapshot tests in
    [test/test_exp.ml] pin this at several [--jobs] levels. *)

val install : unit -> unit
(** Register every built-in experiment, in the order a bare [bench] runs
    them (e1, e2, e3, fig1, e4 … e19). Idempotent; call it from every
    entry point before touching the {!Exp} registry. *)
