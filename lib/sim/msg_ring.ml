(* See msg_ring.mli. Layout: [horizon + 1] buckets (slot = due mod
   buckets); each bucket is a circular struct-of-arrays FIFO with
   power-of-two capacity, grown geometrically and reused thereafter —
   zero allocation per message at steady state. The correctness argument
   for bucket FIFOs being due-sorted is the same as Event_queue's. *)

type 'msg bucket = {
  mutable due : int array;
  mutable src : int array;
  mutable seq : int array;
  mutable msg : 'msg array;
  mutable head : int;
  mutable len : int;
}

type 'msg t = {
  slots : 'msg bucket array;
  mutable cursor : int; (* every event due <= cursor has been popped *)
  mutable count : int;
  mutable hd : 'msg bucket; (* bucket found by the last successful peek *)
  mutable filler : 'msg option; (* overwrites popped slots: no payload leak *)
}

let create ~horizon () =
  if horizon < 1 then invalid_arg "Msg_ring.create: horizon must be >= 1";
  let bucket () =
    { due = [||]; src = [||]; seq = [||]; msg = [||]; head = 0; len = 0 }
  in
  let slots = Array.init (horizon + 1) (fun _ -> bucket ()) in
  { slots; cursor = -1; count = 0; hd = slots.(0); filler = None }

let size r = r.count

let push b ~due ~src ~seq msg =
  let cap = Array.length b.due in
  if b.len = cap then begin
    (* full (or never allocated): grow to the next power of two *)
    let cap' = if cap = 0 then 4 else 2 * cap in
    let due' = Array.make cap' 0
    and src' = Array.make cap' 0
    and seq' = Array.make cap' 0
    and msg' = Array.make cap' msg in
    for i = 0 to b.len - 1 do
      let j = (b.head + i) land (cap - 1) in
      due'.(i) <- b.due.(j);
      src'.(i) <- b.src.(j);
      seq'.(i) <- b.seq.(j);
      msg'.(i) <- b.msg.(j)
    done;
    b.due <- due';
    b.src <- src';
    b.seq <- seq';
    b.msg <- msg';
    b.head <- 0
  end;
  let cap = Array.length b.due in
  let at = (b.head + b.len) land (cap - 1) in
  Array.unsafe_set b.due at due;
  Array.unsafe_set b.src at src;
  Array.unsafe_set b.seq at seq;
  Array.unsafe_set b.msg at msg;
  b.len <- b.len + 1

let add r ~due ~src ~seq msg =
  if due <= r.cursor then
    invalid_arg "Msg_ring.add: ring event at or before the cursor";
  (match r.filler with None -> r.filler <- Some msg | Some _ -> ());
  push r.slots.(due mod Array.length r.slots) ~due ~src ~seq msg;
  r.count <- r.count + 1

let peek r ~now =
  if r.count = 0 then begin
    if now > r.cursor then r.cursor <- now;
    false
  end
  else begin
    let s = Array.length r.slots in
    let found = ref false in
    while (not !found) && r.cursor < now do
      let t = r.cursor + 1 in
      let b = Array.unsafe_get r.slots (t mod s) in
      if b.len > 0 && Array.unsafe_get b.due b.head = t then begin
        r.hd <- b;
        found := true
        (* leave [cursor] at [t - 1]: more events due at [t] may remain *)
      end
      else r.cursor <- t
    done;
    !found
  end

let head_due r = Array.unsafe_get r.hd.due r.hd.head
let head_seq r = Array.unsafe_get r.hd.seq r.hd.head
let head_src r = Array.unsafe_get r.hd.src r.hd.head
let head_msg r = Array.unsafe_get r.hd.msg r.hd.head

let pop r =
  let b = r.hd in
  (match r.filler with
   | Some f -> Array.unsafe_set b.msg b.head f
   | None -> assert false (* pop follows a successful peek *));
  b.head <- (b.head + 1) land (Array.length b.due - 1);
  b.len <- b.len - 1;
  r.count <- r.count - 1

let next_time r =
  if r.count = 0 then None
  else
    (* each bucket FIFO is due-sorted, so its front is its minimum *)
    Array.fold_left
      (fun acc b ->
        if b.len = 0 then acc
        else
          let t = Array.unsafe_get b.due b.head in
          match acc with Some u -> Some (min t u) | None -> Some t)
      None r.slots
