(* Two backends behind one interface (see event_queue.mli):

   - a binary heap ordered by (time, seq) for the general, unbounded
     case, and the determinism oracle the ring is tested against;
   - a calendar ring of [horizon + 1] bucket FIFOs for the bounded-delay
     fast path: O(1) add, O(1) amortized per delivered event.

   Ring correctness rests on one invariant: appends to the same bucket
   arrive in non-decreasing due-time order. Two events in bucket [b] have
   due times differing by a multiple of [horizon + 1]; under the stated
   add contract (an event lands at most [horizon] ahead of the instant it
   is added, instants never decreasing), a later add can be earlier-due by
   at most [horizon], so equal buckets force equal-or-later dues. Each
   bucket is therefore a FIFO sorted by due time, and within one due time
   by insertion — exactly the heap's (time, seq) order. *)

type 'a hev = { time : int; seq : int; payload : 'a }

type 'a t =
  | Heap_q of { heap : 'a hev Heap.t; mutable next_seq : int }
  | Ring_q of 'a ring

and 'a ring = {
  slots : (int * 'a) Queue.t array; (* (due, payload); slot = due mod len *)
  mutable cursor : int; (* every event due <= cursor has been delivered *)
  mutable count : int;
}

let cmp a b =
  let c = Stdlib.compare (a.time : int) b.time in
  if c <> 0 then c else Stdlib.compare (a.seq : int) b.seq

let create ?horizon () =
  match horizon with
  | None -> Heap_q { heap = Heap.create ~cmp; next_seq = 0 }
  | Some h ->
    if h < 1 then invalid_arg "Event_queue.create: horizon must be >= 1";
    Ring_q
      {
        slots = Array.init (h + 1) (fun _ -> Queue.create ());
        cursor = -1;
        count = 0;
      }

let add q ~time payload =
  match q with
  | Heap_q h ->
    Heap.add h.heap { time; seq = h.next_seq; payload };
    h.next_seq <- h.next_seq + 1
  | Ring_q r ->
    if time <= r.cursor then
      invalid_arg "Event_queue.add: ring event at or before the cursor";
    Queue.push (time, payload) r.slots.(time mod Array.length r.slots);
    r.count <- r.count + 1

let pop_due q ~now =
  match q with
  | Heap_q h -> (
    match Heap.peek h.heap with
    | Some ev when ev.time <= now ->
      ignore (Heap.pop h.heap);
      Some ev.payload
    | Some _ | None -> None)
  | Ring_q r ->
    if r.count = 0 then begin
      if now > r.cursor then r.cursor <- now;
      None
    end
    else begin
      let s = Array.length r.slots in
      let res = ref None in
      while !res = None && r.cursor < now do
        let t = r.cursor + 1 in
        let slot = Array.unsafe_get r.slots (t mod s) in
        match Queue.peek_opt slot with
        | Some (due, payload) when due = t ->
          ignore (Queue.pop slot);
          r.count <- r.count - 1;
          (* leave [cursor] at [t - 1]: more events due at [t] may remain *)
          res := Some payload
        | _ -> r.cursor <- t
      done;
      !res
    end

let drain_due q ~now f =
  match q with
  | Heap_q h ->
    let continue = ref true in
    while !continue do
      match Heap.peek h.heap with
      | Some ev when ev.time <= now ->
        ignore (Heap.pop h.heap);
        f ev.payload
      | Some _ | None -> continue := false
    done
  | Ring_q r ->
    let s = Array.length r.slots in
    while r.cursor < now do
      if r.count = 0 then r.cursor <- now
      else begin
        let t = r.cursor + 1 in
        let slot = Array.unsafe_get r.slots (t mod s) in
        let continue = ref true in
        while !continue do
          match Queue.peek_opt slot with
          | Some (due, payload) when due = t ->
            ignore (Queue.pop slot);
            r.count <- r.count - 1;
            f payload
          | _ -> continue := false
        done;
        r.cursor <- t
      end
    done

let pop_all_due q ~now =
  let acc = ref [] in
  drain_due q ~now (fun x -> acc := x :: !acc);
  List.rev !acc

let next_time = function
  | Heap_q h -> Option.map (fun ev -> ev.time) (Heap.peek h.heap)
  | Ring_q r ->
    if r.count = 0 then None
    else
      (* each bucket FIFO is due-sorted, so its front is its minimum *)
      Array.fold_left
        (fun acc slot ->
          match (Queue.peek_opt slot, acc) with
          | Some (t, _), Some u -> Some (min t u)
          | Some (t, _), None -> Some t
          | None, _ -> acc)
        None r.slots

let size = function Heap_q h -> Heap.size h.heap | Ring_q r -> r.count
let is_empty q = size q = 0
