(** Time-ordered event queues with stable tie-breaking.

    Orders events by due time, breaking ties by insertion order.
    Determinism of the whole simulation depends on this tie-break: two
    messages delivered at the same instant are always processed in the
    order they were sent.

    Two interchangeable backends produce identical delivery orders:

    - {b Heap} (default): a binary heap over (time, seq). O(log n) per
      add/pop, no restrictions on scheduling times. Also the oracle the
      ring is property-tested against.
    - {b Calendar ring} ([create ~horizon:h]): [h + 1] bucket FIFOs
      indexed by [time mod (h + 1)]. O(1) add, O(1) amortized per
      delivered event — the fast path for the engine, whose delay clamp
      guarantees every message lands within [d] of the instant it was
      sent. *)

type 'a t

val create : ?horizon:int -> unit -> 'a t
(** [create ()] is a heap-backed queue; [create ~horizon:h ()] ([h >= 1])
    is a calendar ring. A ring queue requires of its caller (the engine's
    bounded-delay discipline): each [add ~time] satisfies
    [now < time <= now + h], where [now] is the caller's clock at the
    moment of the add — non-decreasing, and never behind a previous
    poll. Adds at or before the last poll raise [Invalid_argument];
    violating the upper bound is not detectable locally and forfeits
    delivery-order guarantees. *)

val add : 'a t -> time:int -> 'a -> unit
(** Schedule an event at absolute time [time]. Heap backend: times may be
    scheduled in any order, including in the past (delivered on the next
    poll). Ring backend: see {!create} for the contract. *)

val pop_due : 'a t -> now:int -> 'a option
(** Removes and returns the earliest event with due time [<= now], or
    [None] when nothing is due. Ties resolve in insertion order. *)

val pop_all_due : 'a t -> now:int -> 'a list
(** All due events, in delivery order. *)

val drain_due : 'a t -> now:int -> ('a -> unit) -> unit
(** [drain_due q ~now f] applies [f] to every due event, in delivery
    order, without materializing a list — the engine's per-step receive
    path. Events the callback adds for strictly later times are not
    delivered by this drain. *)

val next_time : 'a t -> int option
(** Due time of the earliest pending event. O(1) on the heap backend,
    O(horizon) on the ring. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
