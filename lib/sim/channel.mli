(** A multiple-access shared channel (beyond the paper's model; see
    docs/MODEL.md and the Klonowski–Kowalski–Mirek paper in PAPERS.md).

    Time is slotted: one transmission slot per engine time unit. All
    outbound traffic of one processor's step — its broadcast and/or
    unicasts — forms one {e frame}, queued locally at the transmitter.
    At the end of each tick the channel resolves the slot:

    - exactly one live contender → its frame is delivered, due at the
      next time unit (the broadcast part to every other processor, each
      unicast to its destination);
    - two or more contenders → a collision, unless an arbitration order
      was supplied (the {e ordered} adversary), in which case the head
      of the order transmits alone and the rest are deferred one slot.

    Collision semantics are configured at creation
    ({!Config.collision}): [Silent] loses every colliding frame;
    [Detectable] re-queues each colliding frame under a deterministic
    per-pid TDMA backoff (retry at the next slot [u > now] with [u mod p
    = src]), so distinct transmitters never re-collide with each other
    and every frame is eventually delivered.

    Message complexity on a broadcast medium: {!sent} counts one unit
    per {e logical message in a transmission attempt} — a broadcast
    costs 1 (not [p - 1]: the medium is shared), a unicast costs 1, and
    attempts lost to collisions still count (the transmitter paid for
    the slot). This is deliberately a different measure from the
    point-to-point [M] of Definition 2.2 — see docs/MODEL.md.

    Everything is deterministic: contenders are resolved in ascending
    pid order, per-destination deliveries are enqueued in slot order,
    and no randomness is drawn. *)

type 'msg t

val create : p:int -> collision:Config.collision -> unit -> 'msg t
(** A channel shared by processors [0..p-1]. *)

val p : 'msg t -> int
val collision : 'msg t -> Config.collision

val transmit :
  'msg t ->
  src:int ->
  release:int ->
  ?bcast:'msg ->
  unis:(int * 'msg) list ->
  unit ->
  unit
(** Queue one frame at [src]'s station. [release] is the first slot at
    which it may contend (the engine derives it from the adversary's
    [hold] policy; [release = now] contends this very slot). A station
    transmits at most one frame per slot, oldest first. Frames with
    neither a broadcast nor unicasts are rejected ([Invalid_argument]),
    as are self-addressed unicasts. {!sent} advances by the frame's
    logical message count at submission time. *)

val silence : 'msg t -> pid:int -> unit
(** Drop every frame still queued at [pid]'s station (a crash: the
    transmit buffer died with the volatile state). Messages counted in
    {!sent} stay counted; {!lost} records the discarded payload.
    Already-delivered traffic is unaffected. *)

type slot = {
  slot_busy : bool;  (** at least one frame contended *)
  slot_collided : bool;  (** two or more contended with no arbitration *)
  slot_delivered : int;  (** logical messages delivered this slot *)
}

val resolve :
  'msg t -> now:int -> ?arbitrate:(int array -> int array option) -> unit ->
  slot
(** Resolve slot [now]; the engine calls this once per tick, after the
    stepping loop. [?arbitrate] is the ordered adversary's permutation
    over the contending pids (ascending); it must return a permutation
    of its argument ([Invalid_argument] otherwise) or [None] to decline
    — declining (or omitting [?arbitrate]) lets two or more contenders
    collide. Slots must be resolved in strictly increasing [now]
    order. *)

val receive_iter : 'msg t -> dst:int -> now:int -> (int -> 'msg -> unit) -> int
(** Deliver every message owed to [dst] with due time [<= now], oldest
    first, as [f src msg]; returns the delivery count. *)

val pending : 'msg t -> int
(** Deliveries owed but not yet received: queued frames count their
    eventual fan-out (a broadcast frame counts [p - 1]), resolved
    deliveries count individually until received. *)

val pending_for : 'msg t -> dst:int -> int
(** Resolved deliveries waiting in [dst]'s inbox (queued frames are not
    yet addressed to anyone). *)

val next_due : 'msg t -> dst:int -> int option

val sent : 'msg t -> int
(** Logical messages across all transmission attempts so far — the
    shared-channel message complexity (see module doc). *)

val collisions : 'msg t -> int
(** Slots that ended in a collision. *)

val busy_slots : 'msg t -> int
(** Slots with at least one contender. *)

val successes : 'msg t -> int
(** Slots in which a frame was delivered. *)

val lost : 'msg t -> int
(** Logical messages lost to silent collisions or {!silence}. *)
