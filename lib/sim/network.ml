(* See network.mli. Two backends: the general heap-backed queues (no
   horizon), and the bounded-delay fast path — per-destination
   struct-of-arrays calendar rings (Msg_ring) merged with the shared
   broadcast stream (Bcast) under one total (due, seq) key. [seq] is a
   single network-wide send counter, so relative order per destination
   is exactly what per-queue insertion order used to give. *)

type 'msg backend =
  | Heap of (int * 'msg) Event_queue.t array (* per dst; payload = (src, msg) *)
  | Ring of {
      rings : 'msg Msg_ring.t option array; (* per dst, made on first send *)
      horizon : int;
      bcast : 'msg Bcast.t;
    }

type 'msg t = {
  p : int;
  backend : 'msg backend;
  mutable sent : int;
  mutable in_flight : int; (* queued but not yet received, O(1) pending *)
  mutable seq : int;
}

let create ?digest ?horizon ~p () =
  if p <= 0 then invalid_arg "Network.create: need at least one processor";
  let backend =
    match horizon with
    | None ->
      if digest <> None then
        invalid_arg
          "Network.create: ?digest requires ~horizon (heap backends have no \
           shared broadcast stream to fold)";
      Heap (Array.init p (fun _ -> Event_queue.create ()))
    | Some h ->
      if h < 1 then invalid_arg "Network.create: horizon must be >= 1";
      Ring
        {
          rings = Array.make p None;
          horizon = h;
          bcast = Bcast.create ?fold:digest ~p ();
        }
  in
  { p; backend; sent = 0; in_flight = 0; seq = 0 }

let p t = t.p

let check_pid t pid name =
  if pid < 0 || pid >= t.p then invalid_arg (name ^ ": pid out of range")

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let ring_for rings ~horizon dst =
  match Array.unsafe_get rings dst with
  | Some r -> r
  | None ->
    let r = Msg_ring.create ~horizon () in
    rings.(dst) <- Some r;
    r

let enqueue t ~src ~dst ~due msg name =
  check_pid t src (name ^ " src");
  check_pid t dst (name ^ " dst");
  if src = dst then invalid_arg (name ^ ": self-send");
  (match t.backend with
   | Heap queues -> Event_queue.add queues.(dst) ~time:due (src, msg)
   | Ring { rings; horizon; _ } ->
     Msg_ring.add (ring_for rings ~horizon dst) ~due ~src ~seq:(next_seq t) msg);
  t.in_flight <- t.in_flight + 1

let send t ~src ~dst ~due msg =
  enqueue t ~src ~dst ~due msg "Network.send";
  t.sent <- t.sent + 1

let send_replica t ~src ~dst ~due msg =
  enqueue t ~src ~dst ~due msg "Network.send_replica"

let count_lost t = t.sent <- t.sent + 1

let broadcast t ~src ~due msg =
  check_pid t src "Network.broadcast src";
  (match t.backend with
   | Heap queues ->
     (* no shared stream without a horizon: fall back to p - 1 sends *)
     for dst = 0 to t.p - 1 do
       if dst <> src then
         Event_queue.add queues.(dst) ~time:due (src, msg)
     done
   | Ring { bcast; _ } ->
     if t.p > 1 then Bcast.add bcast ~due ~src ~seq:(next_seq t) msg);
  (* one multicast = p - 1 point-to-point messages (Definition 2.2),
     however it is stored *)
  t.sent <- t.sent + (t.p - 1);
  t.in_flight <- t.in_flight + (t.p - 1)

let deactivate t ~pid =
  check_pid t pid "Network.deactivate";
  match t.backend with
  | Heap _ -> ()
  | Ring { bcast; _ } -> Bcast.deactivate bcast ~pid

let receive_iter t ~dst ~now f =
  check_pid t dst "Network.receive_iter";
  match t.backend with
  | Heap queues ->
    let n = ref 0 in
    Event_queue.drain_due queues.(dst) ~now (fun (src, msg) ->
        t.in_flight <- t.in_flight - 1;
        incr n;
        f src msg);
    !n
  | Ring { rings; bcast; _ } -> (
    match Array.unsafe_get rings dst with
    | None ->
      (* the common broadcast-only case: one stream, no merge; with a
         digest fold this is the epoch fast path — [n] counts logical
         deliveries even when whole epochs collapse to one callback *)
      let n = Bcast.drain bcast ~dst ~now f in
      t.in_flight <- t.in_flight - n;
      n
    | Some ring ->
      let n = ref 0 in
      let continue = ref true in
      while !continue do
        let has_u = Msg_ring.peek ring ~now in
        let has_b = Bcast.peek bcast ~dst ~now in
        let take_unicast =
          has_u
          && ((not has_b)
              ||
              let ud = Msg_ring.head_due ring
              and bd = Bcast.head_due bcast ~dst in
              ud < bd
              || (ud = bd && Msg_ring.head_seq ring < Bcast.head_seq bcast ~dst)
             )
        in
        if take_unicast then begin
          let src = Msg_ring.head_src ring and msg = Msg_ring.head_msg ring in
          Msg_ring.pop ring;
          t.in_flight <- t.in_flight - 1;
          incr n;
          f src msg
        end
        else if has_b then begin
          let src = Bcast.head_src bcast ~dst
          and msg = Bcast.head_msg bcast ~dst in
          Bcast.pop bcast ~dst;
          t.in_flight <- t.in_flight - 1;
          incr n;
          f src msg
        end
        else continue := false
      done;
      !n)

let receive t ~dst ~now =
  let acc = ref [] in
  let _ : int = receive_iter t ~dst ~now (fun src msg -> acc := (src, msg) :: !acc) in
  List.rev !acc

let stream_stats t =
  match t.backend with
  | Heap _ -> None
  | Ring { bcast; _ } -> Some (Bcast.stats bcast)

let pending t = t.in_flight

let pending_for t ~dst =
  check_pid t dst "Network.pending_for";
  match t.backend with
  | Heap queues -> Event_queue.size queues.(dst)
  | Ring { rings; bcast; _ } ->
    (match rings.(dst) with Some r -> Msg_ring.size r | None -> 0)
    + Bcast.pending_for bcast ~dst

let next_due t ~dst =
  check_pid t dst "Network.next_due";
  match t.backend with
  | Heap queues -> Event_queue.next_time queues.(dst)
  | Ring { rings; bcast; _ } -> (
    let u = match rings.(dst) with Some r -> Msg_ring.next_time r | None -> None in
    let b = Bcast.next_due bcast ~dst in
    match (u, b) with
    | Some a, Some c -> Some (min a c)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None)

let sent t = t.sent
