type 'msg t = {
  p : int;
  queues : (int * 'msg) Event_queue.t array; (* per destination; payload = (src, msg) *)
  mutable sent : int;
}

let create ?horizon ~p () =
  if p <= 0 then invalid_arg "Network.create: need at least one processor";
  { p; queues = Array.init p (fun _ -> Event_queue.create ?horizon ()); sent = 0 }

let p t = t.p

let check_pid t pid name =
  if pid < 0 || pid >= t.p then invalid_arg (name ^ ": pid out of range")

let send t ~src ~dst ~due msg =
  check_pid t src "Network.send src";
  check_pid t dst "Network.send dst";
  if src = dst then invalid_arg "Network.send: self-send";
  Event_queue.add t.queues.(dst) ~time:due (src, msg);
  t.sent <- t.sent + 1

let send_replica t ~src ~dst ~due msg =
  check_pid t src "Network.send_replica src";
  check_pid t dst "Network.send_replica dst";
  if src = dst then invalid_arg "Network.send_replica: self-send";
  Event_queue.add t.queues.(dst) ~time:due (src, msg)

let count_lost t = t.sent <- t.sent + 1

let receive t ~dst ~now =
  check_pid t dst "Network.receive";
  Event_queue.pop_all_due t.queues.(dst) ~now

let receive_iter t ~dst ~now f =
  check_pid t dst "Network.receive_iter";
  Event_queue.drain_due t.queues.(dst) ~now (fun (src, msg) -> f src msg)

let pending t =
  Array.fold_left (fun acc q -> acc + Event_queue.size q) 0 t.queues

let pending_for t ~dst =
  check_pid t dst "Network.pending_for";
  Event_queue.size t.queues.(dst)

let next_due t ~dst =
  check_pid t dst "Network.next_due";
  Event_queue.next_time t.queues.(dst)

let sent t = t.sent
