(** The always-on invariant oracle.

    The engine's safety properties are assumed everywhere — by the
    metrics, by the lower-bound adversaries, by the termination rule.
    Under hostile schedules (and especially under the beyond-the-model
    fault injection of docs/FAULTS.md: lossy networks, duplication,
    crash-recovery) "assumed" is not good enough. This checker restates
    them as executable predicates and verifies them {e on every tick}
    when the engine is created with [~check:true] (the CLI's [--check]):

    - {b monotone-global-done} — the set of globally performed tasks
      never shrinks (task execution is irrevocable, §2.4).
    - {b local-within-global} — no processor believes a task done that
      has not been performed somewhere: every local knowledge set is a
      subset of the engine's ground-truth ledger. Message loss,
      duplication and state resets may starve knowledge, never fabricate
      it.
    - {b survivor} — at least one processor is alive (the model's
      one-survivor rule, §2.2), even with crash-recovery in play.
    - {b halted-knows-all} — a halted processor locally knows every task
      is done (halting is a terminal claim of completion).
    - {b termination-complete} — when the run reports completion, every
      task has been performed and a live processor knows it
      (Definition 2.1).
    - {b step-by-crashed} — checked at each step site: a crashed
      processor takes no steps (crashes are infinite delays).

    A violated invariant raises {!Invariant_violation} with tick and pid
    context; a registered exception printer renders it readably. The
    checker reads engine state and never writes, so a checked run's
    metrics, trace and RNG streams are bit-identical to an unchecked
    one — pinned by [test/test_golden_grid.ml], which runs the full
    golden grid with the oracle on. *)

type violation = {
  time : int;
  pid : int option;  (** the offending processor, when one is implicated *)
  invariant : string;  (** short stable name, e.g. ["monotone-global-done"] *)
  detail : string;
}

exception Invariant_violation of violation

val pp_violation : Format.formatter -> violation -> unit

type view = {
  time : int;
  p : int;
  t : int;
  global_done : Bitset.t;  (** ground truth: tasks performed anywhere *)
  local_done : int -> Bitset.t;  (** a processor's knowledge *)
  alive : int -> bool;
  halted : int -> bool;
  live : int;
  finished : bool;
}
(** A read-only window onto the engine, rebuilt per check. *)

type t
(** Checker state (the monotonicity watermark and a tick count). *)

val create : unit -> t

val check_tick : t -> view -> unit
(** Verify every per-tick invariant; raises {!Invariant_violation} on
    the first failure. *)

val check_step : view -> pid:int -> unit
(** Verify that [pid], about to take a step, is alive. *)

val ticks_checked : t -> int
(** How many ticks this checker has audited — lets tests assert the
    oracle actually ran. *)
