type event =
  | Step of { time : int; pid : int }
  | Delayed of { time : int; pid : int }
  | Perform of { time : int; pid : int; task : int; fresh : bool }
  | Broadcast of { time : int; src : int; copies : int }
  | Halt of { time : int; pid : int }
  | Crash of { time : int; pid : int }
  | Restart of { time : int; pid : int }
  | Note of { time : int; text : string }

(* Growable array in recording order: O(1) amortized add, and the
   consumers (fold/iter/timeline, JSONL export) traverse in place —
   the old list representation forced an O(n) reversal copy at every
   traversal. *)
type t = { mutable events : event array; mutable length : int }

let create () = { events = [||]; length = 0 }

let dummy = Step { time = 0; pid = 0 }

let add t ev =
  let cap = Array.length t.events in
  if t.length = cap then begin
    let grown = Array.make (max 256 (2 * cap)) dummy in
    Array.blit t.events 0 grown 0 t.length;
    t.events <- grown
  end;
  t.events.(t.length) <- ev;
  t.length <- t.length + 1

let length t = t.length

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.length - 1 do
    acc := f !acc t.events.(i)
  done;
  !acc

let iter t f = fold t ~init:() ~f:(fun () ev -> f ev)
let events t = List.init t.length (fun i -> t.events.(i))

let time_of = function
  | Step { time; _ }
  | Delayed { time; _ }
  | Perform { time; _ }
  | Broadcast { time; src = _; copies = _ }
  | Halt { time; _ }
  | Crash { time; _ }
  | Restart { time; _ }
  | Note { time; _ } -> time

let timeline t ~p ~until =
  let grid = Array.init p (fun _ -> Bytes.make until ' ') in
  let put time pid c =
    if time >= 0 && time < until && pid >= 0 && pid < p then
      Bytes.set grid.(pid) time c
  in
  let crashed_at = Array.make p max_int in
  let halted_at = Array.make p max_int in
  (* a restart mark survives the same-tick step that follows it: the
     engine restarts at tick start, so the pid usually also steps at
     that very time, and 'R' is the rarer, more informative mark *)
  let put_unless_restart time pid c =
    if
      not
        (time >= 0 && time < until && pid >= 0 && pid < p
        && Bytes.get grid.(pid) time = 'R')
    then put time pid c
  in
  iter t (fun ev ->
      match ev with
      | Step { time; pid } ->
        (* only mark if no richer mark present *)
        if time < until && Bytes.get grid.(pid) time = ' ' then put time pid 'o'
      | Perform { time; pid; _ } -> put_unless_restart time pid '#'
      | Delayed { time; pid } -> put_unless_restart time pid '.'
      | Halt { time; pid } ->
        put time pid 'H';
        if time < halted_at.(pid) then halted_at.(pid) <- time
      | Crash { time; pid } ->
        put time pid 'X';
        if time < crashed_at.(pid) then crashed_at.(pid) <- time
      | Restart { time; pid } ->
        put time pid 'R';
        (* back from the dead: stop extending the crash marker *)
        crashed_at.(pid) <- max_int
      | Broadcast _ | Note _ -> ());
  (* Extend crash / halt markers to the right for readability. *)
  Array.iteri (fun pid row ->
      let from = min crashed_at.(pid) halted_at.(pid) in
      if from < until then
        for time = from + 1 to until - 1 do
          if Bytes.get row time = ' ' then
            Bytes.set row time (if crashed_at.(pid) <= time then 'x' else 'h')
        done)
    grid;
  Array.map Bytes.to_string grid

let pp_timeline ppf (t, p, until) =
  let rows = timeline t ~p ~until in
  Array.iteri
    (fun pid row -> Format.fprintf ppf "p%-3d |%s|@." pid row)
    rows
