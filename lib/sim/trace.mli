(** Execution traces.

    When [Config.record_trace] is set, the engine records one event per
    observable action. Traces power the reproduction of the paper's Fig. 1
    (the adversary's stage strategy rendered as a per-processor timeline)
    and make failed property tests diagnosable. *)

type event =
  | Step of { time : int; pid : int }
      (** [pid] completed a local step at [time]. *)
  | Delayed of { time : int; pid : int }
      (** the adversary withheld [pid]'s step at [time]. *)
  | Perform of { time : int; pid : int; task : int; fresh : bool }
      (** [pid] performed [task]; [fresh] iff this was the first execution
          of the task anywhere in the system. *)
  | Broadcast of { time : int; src : int; copies : int }
      (** [src] multicast to [copies] destinations. *)
  | Halt of { time : int; pid : int }
  | Crash of { time : int; pid : int }
  | Restart of { time : int; pid : int }
      (** [pid] restarted after a crash with reset local state — only
          under a beyond-the-model recovering adversary
          ([Adversary.restart]; see docs/FAULTS.md). *)
  | Note of { time : int; text : string }
      (** free-form annotations (adversaries mark stage boundaries etc.). *)

type t

val create : unit -> t
val add : t -> event -> unit
val length : t -> int

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Folds over the events in recording order, in place — the traversal
    primitive {!iter}, {!events} and {!timeline} are built on. O(1)
    space beyond the accumulator (no copy of the event log). *)

val iter : t -> (event -> unit) -> unit

val events : t -> event list
(** In recording order, as a fresh list. O(n) copy — kept for tests and
    small-trace pattern matching; bulk consumers should use {!fold}. *)

val time_of : event -> int

val timeline : t -> p:int -> until:int -> string array
(** [timeline tr ~p ~until] renders one row per processor over times
    [0..until-1]:
    ['#'] a step that performed a task, ['o'] a step without a task,
    ['.'] a step withheld by the adversary, ['X'] crashed, ['R']
    restarted, ['H'] halted, [' '] before/after activity. This is the
    rendering used to reproduce Fig. 1 of the paper. *)

val pp_timeline : Format.formatter -> t * int * int -> unit
(** [pp_timeline ppf (tr, p, until)] prints the {!timeline} rows with pid
    labels. *)
