(* Word-packed bitsets: 63 bits per native int. See bitset.mli. *)

type t = { words : int array; n : int; mutable count : int }

let bits_per_word = 63

let () =
  if Sys.int_size < bits_per_word then
    failwith "Bitset: requires 63-bit native ints (a 64-bit platform)"

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (words_for n) 0; n; count = 0 }

let length b = b.n

let copy b =
  (* an empty set has nothing worth memcpy-ing: a fresh zero block is
     cheaper and yields the same value *)
  if b.count = 0 then { words = Array.make (Array.length b.words) 0; n = b.n; count = 0 }
  else { words = Array.copy b.words; n = b.n; count = b.count }

let check b i =
  if i < 0 || i >= b.n then invalid_arg "Bitset: index out of range"

let mem b i =
  check b i;
  Array.unsafe_get b.words (i / 63) land (1 lsl (i mod 63)) <> 0

let set b i =
  check b i;
  let w = i / 63 in
  let bit = 1 lsl (i mod 63) in
  let v = Array.unsafe_get b.words w in
  if v land bit = 0 then begin
    Array.unsafe_set b.words w (v lor bit);
    b.count <- b.count + 1
  end

let cardinal b = b.count
let is_full b = b.count = b.n
let is_empty b = b.count = 0

(* Branch-free SWAR popcount. The classic 64-bit ladder, adapted to
   OCaml's 63-bit ints by peeling the top bit first so the remaining 62
   bits fit the byte-lane masks (which must stay below [max_int] to be
   writable as literals). Constant ~10 ops per word regardless of
   density — the Kernighan loop this replaces was O(set bits), which is
   the worst case exactly when words saturate late in a run. *)
let popcount w =
  let top = (w lsr 62) land 1 in
  let x = w land 0x3FFFFFFFFFFFFFFF in
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  top + ((x * 0x0101010101010101) lsr 56)

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  if src.count = 0 || dst.count = dst.n then ()
  else begin
    let dw = dst.words and sw = src.words in
    let added = ref 0 in
    for i = 0 to Array.length dw - 1 do
      let a = Array.unsafe_get dw i in
      let v = a lor Array.unsafe_get sw i in
      if v <> a then begin
        Array.unsafe_set dw i v;
        added := !added + popcount (v lxor a)
      end
    done;
    dst.count <- dst.count + !added
  end

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset.subset: capacity mismatch";
  let len = Array.length a.words in
  let rec go i =
    i >= len
    || (Array.unsafe_get a.words i land lnot (Array.unsafe_get b.words i) = 0
        && go (i + 1))
  in
  go 0

let equal a b =
  a.n = b.n && a.count = b.count
  &&
  let rec go i =
    i < 0
    || (Array.unsafe_get a.words i = Array.unsafe_get b.words i && go (i - 1))
  in
  go (Array.length a.words - 1)

(* Mask selecting the valid bits of the word at [base] (the last word of a
   capacity not divisible by 63 is partial). All 63 bits of an int set is
   [-1]; [1 lsl 63] would be out of range. *)
let valid_mask b base =
  let valid = b.n - base in
  if valid >= bits_per_word then -1 else (1 lsl valid) - 1

let iter_set b f =
  let nw = Array.length b.words in
  for wi = 0 to nw - 1 do
    let w = ref (Array.unsafe_get b.words wi) in
    if !w <> 0 then begin
      let i = ref (wi * bits_per_word) in
      while !w <> 0 do
        if !w land 1 = 1 then f !i;
        incr i;
        w := !w lsr 1
      done
    end
  done

let iter_missing b f =
  let nw = Array.length b.words in
  for wi = 0 to nw - 1 do
    let base = wi * bits_per_word in
    let w = ref (lnot (Array.unsafe_get b.words wi) land valid_mask b base) in
    if !w <> 0 then begin
      let i = ref base in
      while !w <> 0 do
        if !w land 1 = 1 then f !i;
        incr i;
        w := !w lsr 1
      done
    end
  done

let to_list b =
  let acc = ref [] in
  iter_set b (fun i -> acc := i :: !acc);
  List.rev !acc

let missing b =
  let acc = ref [] in
  iter_missing b (fun i -> acc := i :: !acc);
  List.rev !acc

let first_missing b =
  if b.count = b.n then None
  else begin
    let nw = Array.length b.words in
    let res = ref None in
    let wi = ref 0 in
    while !res = None && !wi < nw do
      let base = !wi * bits_per_word in
      let m = lnot (Array.unsafe_get b.words !wi) land valid_mask b base in
      if m <> 0 then begin
        let i = ref base and v = ref m in
        while !v land 1 = 0 do
          incr i;
          v := !v lsr 1
        done;
        res := Some !i
      end;
      incr wi
    done;
    !res
  end

let of_list n is =
  let b = create n in
  List.iter (set b) is;
  b

(* ---- Delta wire encoding (see bitset.mli and docs/PERFORMANCE.md) ----

   A [tracker] remembers which words of a set were touched since its last
   [delta_flush]; a [delta] is the flat [|w0; v0; w1; v1; ...|] array of
   those words' current values. Merging a delta ORs the pairs in —
   O(touched words) instead of O(capacity words). *)

type delta = int array

module Tracker = struct
  type bitset = t

  type t = {
    mutable idx : int array; (* touched word indices, in mark order *)
    mutable len : int;
    seen : Bytes.t; (* per-word touched flag *)
  }

  let create (b : bitset) =
    let words = Array.length b.words in
    { idx = Array.make 8 0; len = 0; seen = Bytes.make (max 1 words) '\000' }

  let copy tk =
    { idx = Array.copy tk.idx; len = tk.len; seen = Bytes.copy tk.seen }

  let mark tk w =
    if Bytes.unsafe_get tk.seen w = '\000' then begin
      Bytes.unsafe_set tk.seen w '\001';
      let cap = Array.length tk.idx in
      if tk.len = cap then begin
        let bigger = Array.make (2 * cap) 0 in
        Array.blit tk.idx 0 bigger 0 cap;
        tk.idx <- bigger
      end;
      Array.unsafe_set tk.idx tk.len w;
      tk.len <- tk.len + 1
    end
end

type tracker = Tracker.t

let tracker b = Tracker.create b
let tracker_copy = Tracker.copy
let tracker_pending (tk : tracker) = tk.Tracker.len

let set_tracked b tk i =
  check b i;
  let w = i / 63 in
  let bit = 1 lsl (i mod 63) in
  let v = Array.unsafe_get b.words w in
  if v land bit = 0 then begin
    Array.unsafe_set b.words w (v lor bit);
    b.count <- b.count + 1;
    Tracker.mark tk w
  end

let union_into_tracked ~dst tk src =
  if dst.n <> src.n then
    invalid_arg "Bitset.union_into_tracked: capacity mismatch";
  if src.count = 0 || dst.count = dst.n then ()
  else begin
    let dw = dst.words and sw = src.words in
    let added = ref 0 in
    for i = 0 to Array.length dw - 1 do
      let a = Array.unsafe_get dw i in
      let v = a lor Array.unsafe_get sw i in
      if v <> a then begin
        Array.unsafe_set dw i v;
        added := !added + popcount (v lxor a);
        Tracker.mark tk i
      end
    done;
    dst.count <- dst.count + !added
  end

let empty_delta : delta = [||]

let delta_flush b tk =
  let open Tracker in
  if tk.len = 0 then empty_delta
  else begin
    let d = Array.make (2 * tk.len) 0 in
    for k = 0 to tk.len - 1 do
      let w = Array.unsafe_get tk.idx k in
      Array.unsafe_set d (2 * k) w;
      Array.unsafe_set d ((2 * k) + 1) (Array.unsafe_get b.words w);
      Bytes.unsafe_set tk.seen w '\000'
    done;
    tk.len <- 0;
    d
  end

let delta_words (dl : delta) = Array.length dl / 2

let apply_delta_gen ~dst (dl : delta) tk =
  let dw = dst.words in
  let nw = Array.length dw in
  let added = ref 0 in
  let k = ref 0 in
  let len = Array.length dl in
  while !k < len do
    let w = Array.unsafe_get dl !k in
    if w < 0 || w >= nw then invalid_arg "Bitset.apply_delta: word out of range";
    let v = Array.unsafe_get dl (!k + 1) in
    let a = Array.unsafe_get dw w in
    let nv = a lor v in
    if nv <> a then begin
      Array.unsafe_set dw w nv;
      added := !added + popcount (nv lxor a);
      match tk with Some tk -> Tracker.mark tk w | None -> ()
    end;
    k := !k + 2
  done;
  dst.count <- dst.count + !added

let apply_delta ~dst dl = apply_delta_gen ~dst dl None
let apply_delta_tracked ~dst tk dl = apply_delta_gen ~dst dl (Some tk)

let union_many (ds : delta array) : delta =
  let total = Array.fold_left (fun acc d -> acc + Array.length d) 0 ds in
  if total = 0 then empty_delta
  else begin
    (* Word order is first-seen across the inputs; repeated words OR their
       values into the already-emitted slot, so the result stays one pair
       per distinct word and application order cannot matter. Word indices
       are bounded by the source sets' word counts (n / 63), so a flat
       direct-indexed slot table beats any hash: one extra O(total) pass
       to size it, then every dedup probe is a single array read. *)
    let maxw = ref 0 in
    Array.iter
      (fun (d : delta) ->
        let k = ref 0 in
        let dl = Array.length d in
        while !k < dl do
          let w = Array.unsafe_get d !k in
          if w > !maxw then maxw := w;
          k := !k + 2
        done)
      ds;
    (* One fold per epoch feeds p digest applies, so the result must be
       sized exactly: count distinct words first (overlap across senders
       is the common case — every sender re-broadcasts what it just
       learned), then emit into a right-sized array. The extra counting
       pass is linear reads; the alternative — allocating [total] pairs
       and shrinking — churns the major heap once per epoch. *)
    let slot_of_word = Array.make (!maxw + 1) 0 in
    let distinct = ref 0 in
    Array.iter
      (fun (d : delta) ->
        let k = ref 0 in
        let dl = Array.length d in
        while !k < dl do
          let w = Array.unsafe_get d !k in
          if Array.unsafe_get slot_of_word w = 0 then begin
            Array.unsafe_set slot_of_word w (-1);
            incr distinct
          end;
          k := !k + 2
        done)
      ds;
    let out = Array.make (2 * !distinct) 0 in
    let len = ref 0 in
    Array.iter
      (fun (d : delta) ->
        let k = ref 0 in
        let dl = Array.length d in
        while !k < dl do
          let w = Array.unsafe_get d !k in
          let v = Array.unsafe_get d (!k + 1) in
          let s = Array.unsafe_get slot_of_word w in
          if s < 0 then begin
            (* first sighting: claim the next pair slot, first-seen order *)
            Array.unsafe_set out !len w;
            Array.unsafe_set out (!len + 1) v;
            Array.unsafe_set slot_of_word w (!len + 2);
            len := !len + 2
          end
          else
            Array.unsafe_set out (s - 1) (Array.unsafe_get out (s - 1) lor v);
          k := !k + 2
        done)
      ds;
    out
  end

let pp ppf b =
  Format.fprintf ppf "{%a}/%d"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (to_list b) b.n
