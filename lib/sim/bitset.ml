(* Word-packed bitsets: 63 bits per native int. See bitset.mli. *)

type t = { words : int array; n : int; mutable count : int }

let bits_per_word = 63

let () =
  if Sys.int_size < bits_per_word then
    failwith "Bitset: requires 63-bit native ints (a 64-bit platform)"

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (words_for n) 0; n; count = 0 }

let length b = b.n
let copy b = { words = Array.copy b.words; n = b.n; count = b.count }

let check b i =
  if i < 0 || i >= b.n then invalid_arg "Bitset: index out of range"

let mem b i =
  check b i;
  Array.unsafe_get b.words (i / 63) land (1 lsl (i mod 63)) <> 0

let set b i =
  check b i;
  let w = i / 63 in
  let bit = 1 lsl (i mod 63) in
  let v = Array.unsafe_get b.words w in
  if v land bit = 0 then begin
    Array.unsafe_set b.words w (v lor bit);
    b.count <- b.count + 1
  end

let cardinal b = b.count
let is_full b = b.count = b.n
let is_empty b = b.count = 0

(* Kernighan popcount: O(set bits). [union_into] only ever runs it over
   newly-acquired bits, and knowledge is monotone, so the total popcount
   work over a whole run is O(n) per destination set. *)
let popcount w =
  let c = ref 0 and v = ref w in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr c
  done;
  !c

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  if src.count = 0 || dst.count = dst.n then ()
  else begin
    let dw = dst.words and sw = src.words in
    let added = ref 0 in
    for i = 0 to Array.length dw - 1 do
      let a = Array.unsafe_get dw i in
      let v = a lor Array.unsafe_get sw i in
      if v <> a then begin
        Array.unsafe_set dw i v;
        added := !added + popcount (v lxor a)
      end
    done;
    dst.count <- dst.count + !added
  end

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset.subset: capacity mismatch";
  let len = Array.length a.words in
  let rec go i =
    i >= len
    || (Array.unsafe_get a.words i land lnot (Array.unsafe_get b.words i) = 0
        && go (i + 1))
  in
  go 0

let equal a b =
  a.n = b.n && a.count = b.count
  &&
  let rec go i =
    i < 0
    || (Array.unsafe_get a.words i = Array.unsafe_get b.words i && go (i - 1))
  in
  go (Array.length a.words - 1)

(* Mask selecting the valid bits of the word at [base] (the last word of a
   capacity not divisible by 63 is partial). All 63 bits of an int set is
   [-1]; [1 lsl 63] would be out of range. *)
let valid_mask b base =
  let valid = b.n - base in
  if valid >= bits_per_word then -1 else (1 lsl valid) - 1

let iter_set b f =
  let nw = Array.length b.words in
  for wi = 0 to nw - 1 do
    let w = ref (Array.unsafe_get b.words wi) in
    if !w <> 0 then begin
      let i = ref (wi * bits_per_word) in
      while !w <> 0 do
        if !w land 1 = 1 then f !i;
        incr i;
        w := !w lsr 1
      done
    end
  done

let iter_missing b f =
  let nw = Array.length b.words in
  for wi = 0 to nw - 1 do
    let base = wi * bits_per_word in
    let w = ref (lnot (Array.unsafe_get b.words wi) land valid_mask b base) in
    if !w <> 0 then begin
      let i = ref base in
      while !w <> 0 do
        if !w land 1 = 1 then f !i;
        incr i;
        w := !w lsr 1
      done
    end
  done

let to_list b =
  let acc = ref [] in
  iter_set b (fun i -> acc := i :: !acc);
  List.rev !acc

let missing b =
  let acc = ref [] in
  iter_missing b (fun i -> acc := i :: !acc);
  List.rev !acc

let first_missing b =
  if b.count = b.n then None
  else begin
    let nw = Array.length b.words in
    let res = ref None in
    let wi = ref 0 in
    while !res = None && !wi < nw do
      let base = !wi * bits_per_word in
      let m = lnot (Array.unsafe_get b.words !wi) land valid_mask b base in
      if m <> 0 then begin
        let i = ref base and v = ref m in
        while !v land 1 = 0 do
          incr i;
          v := !v lsr 1
        done;
        res := Some !i
      end;
      incr wi
    done;
    !res
  end

let of_list n is =
  let b = create n in
  List.iter (set b) is;
  b

let pp ppf b =
  Format.fprintf ppf "{%a}/%d"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (to_list b) b.n
