(** Run configuration visible to the algorithms.

    Deliberately, the message-delay bound [d] is {e not} part of this
    record: the paper's central modelling assumption is that algorithms
    have no knowledge of [d] and may not rely on any bound on it
    (Section 1). [d] is therefore a parameter of the adversarial
    environment, supplied to {!Engine.run} alongside the adversary — the
    type system makes it impossible for an algorithm to peek at it. *)

(** Wire encoding of knowledge payloads — a transport optimization the
    {e engine} selects, not an algorithm choice. [Full]: every broadcast
    carries a complete copy of the sender's knowledge sets (the paper's
    reading, always correct). [Delta]: a broadcast carries only the
    words touched since the sender's previous broadcast
    ({!Bitset.delta_flush}). The two are observationally identical —
    every receiver ends each step with exactly the same knowledge — but
    only when every earlier broadcast of the same sender has already
    been merged, which holds on reliable FIFO runs: constant declared
    latency ({!Adversary.latency}), no fault injection, no crash
    recovery. The engine enables [Delta] exactly under those conditions;
    algorithms just honour whichever encoding the config carries. *)
type wire = Full | Delta

(** What happens when several processors transmit on a shared channel in
    the same slot (docs/MODEL.md "beyond the model"). [Silent]: the slot
    is wasted and every colliding transmission is lost without the
    transmitters learning of it. [Detectable]: transmitters detect the
    collision and re-contend in later slots under a deterministic
    per-pid backoff, so every transmission is eventually delivered. *)
type collision = Silent | Detectable

(** Which communication medium carries messages. [Ptp]: the paper's
    reliable fully connected point-to-point network with adversarial
    per-message delay ({!Network}). [Channel c]: a single multiple-access
    shared channel with one transmission slot per time unit and collision
    semantics [c] ({!Channel}) — beyond the paper's model, after
    Klonowski–Kowalski–Mirek (PAPERS.md). *)
type transport = Ptp | Channel of collision

type t = private {
  p : int;  (** number of processors, with pids [0..p-1] *)
  t : int;  (** number of tasks, with ids [0..t-1] *)
  seed : int;  (** master seed; all randomness in a run derives from it *)
  record_trace : bool;  (** record per-event traces (costs memory) *)
  wire : wire;  (** knowledge payload encoding (engine-managed) *)
  transport : transport;  (** communication medium (default [Ptp]) *)
}

val make :
  ?seed:int ->
  ?record_trace:bool ->
  ?wire:wire ->
  ?transport:transport ->
  p:int ->
  t:int ->
  unit ->
  t
(** Validates [p >= 1] and [t >= 1]. [wire] defaults to [Full],
    [transport] to [Ptp]. *)

val with_seed : t -> int -> t

val with_wire : t -> wire -> t
(** Used by the engine to switch delta-safe runs to the sparse
    encoding; see {!type-wire} for when that is sound. *)

val with_transport : t -> transport -> t

val transport_to_string : transport -> string
(** ["ptp"], ["channel"] (silent collisions) or ["channel-detect"] —
    the vocabulary of the CLIs' [--transport] flag and of
    {!Doall_core.Runner.run_spec} names. *)

val transport_of_string : string -> (transport, string) result

val pp : Format.formatter -> t -> unit
