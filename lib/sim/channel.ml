(* See channel.mli. One frame queue per station (a station transmits at
   most one frame per slot, oldest first), one delivery queue per
   destination. Resolution happens once per slot in ascending slot
   order, so inbox queues are enqueued with non-decreasing due times and
   receive_iter only ever inspects the head. *)

type 'msg frame = {
  f_bcast : 'msg option;
  f_unis : (int * 'msg) list;
  f_sent : int; (* logical messages (the M units paid at submission) *)
  f_fan : int; (* deliveries on success: (p - 1 if broadcast) + unicasts *)
  mutable f_release : int; (* first slot at which the frame contends *)
}

type 'msg delivery = { due : int; d_src : int; d_msg : 'msg }

type 'msg t = {
  p : int;
  collision : Config.collision;
  stations : 'msg frame Queue.t array; (* per src: local transmit queue *)
  inbox : 'msg delivery Queue.t array; (* per dst: resolved deliveries *)
  mutable sent : int;
  mutable in_flight : int; (* deliveries owed, O(1) pending *)
  mutable n_collisions : int;
  mutable n_busy : int;
  mutable n_success : int;
  mutable n_lost : int;
  mutable last_slot : int; (* slots resolve in strictly increasing order *)
}

let create ~p ~collision () =
  if p <= 0 then invalid_arg "Channel.create: need at least one processor";
  {
    p;
    collision;
    stations = Array.init p (fun _ -> Queue.create ());
    inbox = Array.init p (fun _ -> Queue.create ());
    sent = 0;
    in_flight = 0;
    n_collisions = 0;
    n_busy = 0;
    n_success = 0;
    n_lost = 0;
    last_slot = min_int;
  }

let p t = t.p
let collision t = t.collision

let check_pid t pid name =
  if pid < 0 || pid >= t.p then invalid_arg (name ^ ": pid out of range")

let transmit t ~src ~release ?bcast ~unis () =
  check_pid t src "Channel.transmit src";
  List.iter
    (fun (dst, _) ->
      check_pid t dst "Channel.transmit dst";
      if dst = src then invalid_arg "Channel.transmit: self-send")
    unis;
  let n_unis = List.length unis in
  let logical = (match bcast with Some _ -> 1 | None -> 0) + n_unis in
  if logical = 0 then invalid_arg "Channel.transmit: empty frame";
  let fan =
    (match bcast with Some _ -> t.p - 1 | None -> 0) + n_unis
  in
  Queue.add
    { f_bcast = bcast; f_unis = unis; f_sent = logical; f_fan = fan;
      f_release = release }
    t.stations.(src);
  t.sent <- t.sent + logical;
  t.in_flight <- t.in_flight + fan

let silence t ~pid =
  check_pid t pid "Channel.silence";
  let q = t.stations.(pid) in
  Queue.iter
    (fun f ->
      t.n_lost <- t.n_lost + f.f_sent;
      t.in_flight <- t.in_flight - f.f_fan)
    q;
  Queue.clear q

type slot = {
  slot_busy : bool;
  slot_collided : bool;
  slot_delivered : int;
}

let deliver t ~now ~src f =
  let due = now + 1 in
  (match f.f_bcast with
   | Some m ->
     for dst = 0 to t.p - 1 do
       if dst <> src then Queue.add { due; d_src = src; d_msg = m } t.inbox.(dst)
     done
   | None -> ());
  List.iter
    (fun (dst, m) -> Queue.add { due; d_src = src; d_msg = m } t.inbox.(dst))
    f.f_unis;
  (* logical messages, matching the channel's M measure: a delivered
     broadcast counts 1 even though it fans out to p - 1 inboxes *)
  f.f_sent

(* the deterministic TDMA backoff: the next slot u > now in [src]'s
   residue class mod p — distinct transmitters land in distinct slots *)
let backoff_slot ~p ~now ~src =
  let r = (src - (now + 1)) mod p in
  now + 1 + (if r < 0 then r + p else r)

let resolve t ~now ?arbitrate () =
  if now <= t.last_slot then
    invalid_arg "Channel.resolve: slots must resolve in increasing order";
  t.last_slot <- now;
  let contenders = ref [] in
  for src = t.p - 1 downto 0 do
    match Queue.peek_opt t.stations.(src) with
    | Some f when f.f_release <= now -> contenders := src :: !contenders
    | Some _ | None -> ()
  done;
  match !contenders with
  | [] -> { slot_busy = false; slot_collided = false; slot_delivered = 0 }
  | [ src ] ->
    let f = Queue.pop t.stations.(src) in
    t.n_busy <- t.n_busy + 1;
    t.n_success <- t.n_success + 1;
    let delivered = deliver t ~now ~src f in
    { slot_busy = true; slot_collided = false; slot_delivered = delivered }
  | contenders -> (
    t.n_busy <- t.n_busy + 1;
    let order =
      match arbitrate with
      | None -> None
      | Some f -> (
        let arr = Array.of_list contenders in
        match f (Array.copy arr) with
        | None -> None (* the adversary declines: let this slot collide *)
        | Some perm ->
          (* the order must be a permutation of the contenders: same
             length, same members ([arr] is ascending, so sorting a copy
             of [perm] must reproduce it) *)
          let sorted = Array.copy perm in
          Array.sort compare sorted;
          if sorted <> arr then
            invalid_arg
              "Channel.resolve: arbitration did not return a permutation of \
               the contenders";
          Some perm)
    in
    match order with
    | Some perm ->
      (* ordered adversary: the head transmits alone, the rest are
         deferred to the next slot (where they contend again) *)
      let winner = perm.(0) in
      let f = Queue.pop t.stations.(winner) in
      for i = 1 to Array.length perm - 1 do
        (Queue.peek t.stations.(perm.(i))).f_release <- now + 1
      done;
      t.n_success <- t.n_success + 1;
      let delivered = deliver t ~now ~src:winner f in
      { slot_busy = true; slot_collided = false; slot_delivered = delivered }
    | None ->
      (* a genuine collision *)
      t.n_collisions <- t.n_collisions + 1;
      (match t.collision with
       | Config.Silent ->
         List.iter
           (fun src ->
             let f = Queue.pop t.stations.(src) in
             t.n_lost <- t.n_lost + f.f_sent;
             t.in_flight <- t.in_flight - f.f_fan)
           contenders
       | Config.Detectable ->
         List.iter
           (fun src ->
             (Queue.peek t.stations.(src)).f_release <-
               backoff_slot ~p:t.p ~now ~src)
           contenders);
      { slot_busy = true; slot_collided = true; slot_delivered = 0 })

let receive_iter t ~dst ~now f =
  check_pid t dst "Channel.receive_iter";
  let q = t.inbox.(dst) in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt q with
    | Some dv when dv.due <= now ->
      ignore (Queue.pop q);
      t.in_flight <- t.in_flight - 1;
      incr n;
      f dv.d_src dv.d_msg
    | Some _ | None -> continue := false
  done;
  !n

let pending t = t.in_flight

let pending_for t ~dst =
  check_pid t dst "Channel.pending_for";
  Queue.length t.inbox.(dst)

let next_due t ~dst =
  check_pid t dst "Channel.next_due";
  match Queue.peek_opt t.inbox.(dst) with
  | Some dv -> Some dv.due
  | None -> None

let sent t = t.sent
let collisions t = t.n_collisions
let busy_slots t = t.n_busy
let successes t = t.n_success
let lost t = t.n_lost
