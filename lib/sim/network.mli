(** The reliable asynchronous point-to-point network of Section 2.1.

    Processors communicate over a fully connected network of reliable
    channels: messages are never lost or corrupted, only delayed. The
    adversary picks each message's delivery time; the network records it
    and hands messages to a destination when that destination takes a local
    step at or after the due time (a delayed processor does not process
    messages — it is not ticking).

    A multicast is modelled, exactly as in the paper's complexity measure
    (Definition 2.2), as [p - 1] point-to-point messages: {!sent} counts
    every point-to-point send. *)

type 'msg t

val create :
  ?digest:('msg array -> 'msg) -> ?horizon:int -> p:int -> unit -> 'msg t
(** A network connecting processors [0..p-1]. With [~horizon:h], each
    per-destination queue is a calendar ring (see {!Event_queue.create}):
    O(1) sends instead of O(log pending), valid when every send's due
    time is at most [h] ahead of the sender's (non-decreasing) clock —
    the engine's delay clamp guarantees exactly this with [h = d].

    [?digest] (horizon networks only; [Invalid_argument] if supplied
    without [~horizon] — heap backends have no shared broadcast stream
    to fold, and silently dropping the witness would hide a
    misconfiguration) is the algorithm's merge-homomorphism witness
    ({!Algorithm.S.merge_homomorphic}): broadcasts due at the same
    instant are pre-folded once and delivered to each receiver as a
    single epoch-digest message with source [-1] (see {!Bcast.create}).
    Counters — {!sent}, {!pending}, and the delivery count returned by
    {!receive_iter} — are unchanged: they account logical [p - 1]-way
    multicasts regardless of how deliveries are materialized. *)

val p : 'msg t -> int

val send : 'msg t -> src:int -> dst:int -> due:int -> 'msg -> unit
(** Queue one point-to-point message for delivery at absolute time [due].
    [src] is recorded for tracing; self-sends are rejected
    ([Invalid_argument]) — a processor already knows its own state. *)

val broadcast : 'msg t -> src:int -> due:int -> 'msg -> unit
(** Queue one multicast from [src] to every other processor, all due at
    the same absolute time — [p - 1] logical point-to-point messages
    ({!sent} and {!pending} advance by [p - 1]), but stored as {e one}
    shared record on horizon networks ({!Bcast}). Only valid when every
    copy is genuinely due at once, i.e. under a declared-constant-latency
    adversary; the engine's per-destination send loop remains the
    general path. Delivery order is identical to [p - 1] individual
    {!send}s issued at the same instant. *)

val deactivate : 'msg t -> pid:int -> unit
(** Declare that [pid] will never take another step (halted, or crashed
    with no recovery adversary): shared broadcast storage stops waiting
    for it. Messages already owed to [pid] still count in {!pending} —
    exactly like undeliverable messages rotting in a per-destination
    queue. No-op on heap-backed networks. *)

val send_replica : 'msg t -> src:int -> dst:int -> due:int -> 'msg -> unit
(** Like {!send} but without incrementing {!sent}: a network-level copy
    injected by a duplicating fault policy. The algorithm paid for one
    message (Definition 2.2); the unreliable network delivering it twice
    must not inflate [M]. *)

val count_lost : 'msg t -> unit
(** Count one send that the fault layer dropped: the algorithm paid for
    the message, so it contributes to {!sent} ([M]) even though it is
    never enqueued. *)

val receive : 'msg t -> dst:int -> now:int -> (int * 'msg) list
(** [(sender, message)] pairs due at or before [now], removed from the
    queue, in (due time, send order) order. *)

val receive_iter : 'msg t -> dst:int -> now:int -> (int -> 'msg -> unit) -> int
(** [receive_iter t ~dst ~now f] calls [f sender message] for each due
    message, in the same order as {!receive}, without materializing the
    intermediate list — the engine's per-step delivery path. Returns
    the number of logical deliveries: on the digest fast path one
    callback can stand for a whole epoch ([f (-1) digest]), but the
    count still reflects the individual messages consumed, so
    [net.deliveries] accounting is backend-independent. *)

val pending : 'msg t -> int
(** Messages queued but not yet received. O(1): maintained as an
    incremental in-flight counter on send/broadcast/delivery, so the
    engine's per-tick gauge sample no longer folds over all [p]
    queues. *)

val pending_for : 'msg t -> dst:int -> int

val next_due : 'msg t -> dst:int -> int option
(** Earliest due time among messages queued for [dst]. *)

val sent : 'msg t -> int
(** Total point-to-point messages sent so far — the message complexity
    [M] of Definition 2.2, counted incrementally. *)

val stream_stats : 'msg t -> (int * int) option
(** [Some (pending_records, digest_words)] for horizon networks — the
    shared broadcast stream's occupancy ({!Bcast.stats}); [None] on
    heap backends, which have no shared storage to report. *)
