(* The interface every Do-All algorithm implements; see algorithm.mli. *)

type 'msg step_result = {
  performed : int option;
  broadcast : 'msg option;
  unicasts : (int * 'msg) list;
  halt : bool;
}

let nothing =
  { performed = None; broadcast = None; unicasts = []; halt = false }

let result ?performed ?broadcast ?(unicasts = []) ?(halt = false) () =
  { performed; broadcast; unicasts; halt }

module type S = sig
  val name : string

  type state
  type msg

  val init : Config.t -> pid:int -> state
  val copy : state -> state
  val receive : state -> src:int -> msg -> unit
  val merge_homomorphic : (msg array -> msg) option
  val step : state -> msg step_result
  val is_done : state -> bool
  val done_tasks : state -> Bitset.t
end

type packed = (module S)

let name (module A : S) = A.name
