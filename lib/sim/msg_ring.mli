(** A calendar ring of point-to-point messages, specialized for the
    engine's per-destination delivery path.

    Same contract as {!Event_queue.create} with a horizon — O(1) add and
    O(1) amortized delivery for events due at most [horizon] ahead of a
    non-decreasing clock — but stored as struct-of-arrays bucket FIFOs
    of (due, src, seq, msg) columns, so the steady-state hot path
    allocates nothing per message (the generic queue paid a tuple, a
    payload pair, and a FIFO cell per send).

    Delivery order is (due, seq): [seq] is caller-supplied and must be
    strictly increasing across adds (the network's global send counter),
    which makes the order mergeable with the shared broadcast stream
    ({!Bcast}) under one total (due, seq) key.

    The peek/pop split exists for that merge: [peek] positions the head
    at the earliest due event without removing it, the [head_*]
    accessors read its columns without allocating, and [pop] removes
    it. *)

type 'msg t

val create : horizon:int -> unit -> 'msg t
(** [horizon >= 1]; events may be added at most [horizon] ahead. *)

val add : 'msg t -> due:int -> src:int -> seq:int -> 'msg -> unit
(** Raises [Invalid_argument] if [due] is at or before the delivery
    cursor (the ring invariant — see {!Event_queue.add}). *)

val size : 'msg t -> int
(** Messages added but not yet popped. *)

val next_time : 'msg t -> int option
(** Earliest due time among pending messages. Read-only. *)

val peek : 'msg t -> now:int -> bool
(** Position the head at the earliest (due, seq) message with
    [due <= now]; false if there is none (the cursor still advances to
    [now], so later adds must be due after [now]). After [true], the
    [head_*] accessors are valid until the next [pop] or [add]. *)

val head_due : 'msg t -> int
val head_seq : 'msg t -> int
val head_src : 'msg t -> int
val head_msg : 'msg t -> 'msg

val pop : 'msg t -> unit
(** Remove the head message located by the last successful {!peek}. *)
