let default_max_time ~p ~t ~d =
  (* A single processor can solve Do-All alone in O(q * t) steps for every
     algorithm in this library (full solo traversal); with the engine
     forcing at least one step per time unit, p * that is an absolute
     bound. Add slack for delays and tiny instances. *)
  10_000 + (48 * t * p) + (64 * d)

(* The engine's probe catalogue (docs/OBSERVABILITY.md). Instruments are
   registered once at [create]; every record site below is guarded by a
   single branch on [obs_on], so a disabled probe costs one predictable
   conditional per site and cannot perturb metrics or RNG streams. *)
type instruments = {
  obs_on : bool;
  i_fresh : Probe.counter; (* engine.fresh_executions *)
  i_redundant : Probe.counter; (* engine.redundant_executions *)
  i_sends : Probe.counter; (* net.sends *)
  i_deliveries : Probe.counter; (* net.deliveries *)
  i_latency : Probe.histogram; (* net.delivery_latency *)
  i_fanout : Probe.histogram; (* net.fanout *)
  i_inflight : Probe.gauge; (* net.in_flight *)
  i_stream_pending : Probe.gauge; (* net.stream_pending *)
  i_stream_digest : Probe.gauge; (* net.stream_digest_bytes *)
  i_drops : Probe.counter; (* net.drops *)
  i_dups : Probe.counter; (* net.dups *)
  i_collisions : Probe.counter; (* net.collisions *)
  i_busy : Probe.counter; (* net.channel_busy *)
  i_delayed : Probe.vector; (* proc.delayed_steps *)
  i_idle : Probe.vector; (* proc.idle_steps *)
  s_fresh : Probe.series; (* engine.fresh_executions per tick *)
  s_redundant : Probe.series; (* engine.redundant_executions per tick *)
  s_inflight : Probe.series; (* net.in_flight per tick *)
}

(* The engine's span catalogue (docs/OBSERVABILITY.md): wall-clock
   phase sections recorded behind the same cached-enabled-flag trick as
   the probes. Spans only read the clock, so metrics and RNG streams
   are bit-identical with profiling on, off, or absent. *)
type phases = {
  ph_on : bool;
  ph_deliver : Span.span; (* message delivery into a stepping pid *)
  ph_algo : Span.span; (* A.step: the algorithm's local transition *)
  ph_adv : Span.span; (* adversary decisions: restart/crash/schedule *)
  ph_bcast : Span.span; (* outbound traffic + step-result bookkeeping *)
  ph_oracle : Span.span; (* invariant-oracle audits (0 unless ~check) *)
}

let phases spans =
  {
    ph_on = Span.enabled spans;
    ph_deliver = Span.span spans "deliver";
    ph_algo = Span.span spans "algo_step";
    ph_adv = Span.span spans "adversary";
    ph_bcast = Span.span spans "bcast_maint";
    ph_oracle = Span.span spans "oracle";
  }

let instruments probe ~p =
  {
    obs_on = Probe.enabled probe;
    i_fresh = Probe.counter probe "engine.fresh_executions";
    i_redundant = Probe.counter probe "engine.redundant_executions";
    i_sends = Probe.counter probe "net.sends";
    i_deliveries = Probe.counter probe "net.deliveries";
    i_latency = Probe.histogram probe "net.delivery_latency";
    i_fanout = Probe.histogram probe "net.fanout";
    i_inflight = Probe.gauge probe "net.in_flight";
    i_stream_pending = Probe.gauge probe "net.stream_pending";
    i_stream_digest = Probe.gauge probe "net.stream_digest_bytes";
    i_drops = Probe.counter probe "net.drops";
    i_dups = Probe.counter probe "net.dups";
    i_collisions = Probe.counter probe "net.collisions";
    i_busy = Probe.counter probe "net.channel_busy";
    i_delayed = Probe.vector probe "proc.delayed_steps" ~len:p;
    i_idle = Probe.vector probe "proc.idle_steps" ~len:p;
    s_fresh = Probe.series probe "engine.fresh_executions";
    s_redundant = Probe.series probe "engine.redundant_executions";
    s_inflight = Probe.series probe "net.in_flight";
  }

module Make (A : Algorithm.S) = struct
  type t = {
    cfg : Config.t;
    d : int;
    adv : Adversary.t;
    stream : bool;
        (* constant-latency fast path: declared Fixed/Maximal latency, no
           fault injection, no crash recovery. Broadcasts become one
           shared Bcast record instead of p-1 sends, knowledge payloads
           ride the Delta wire, and permanently-stopped pids are
           deactivated so shared storage is reclaimed. Bit-identical to
           the general path by construction (pinned by the golden grid
           and the stream equivalence tests). *)
    stream_delta : int; (* the declared constant, clamped into [1..d] *)
    chan : bool;
        (* the run's transport is the multiple-access shared channel:
           each step's outbound traffic becomes one frame, the slot is
           resolved at the end of every tick, and the stream fast path
           is off (its FIFO constant-latency promise cannot survive
           contention). *)
    states : A.state array;
    net : A.msg Transport.t;
    global_done : Bitset.t;
    alive : bool array;
    halted : bool array;
    (* The eligible (alive and not halted) pids as a sorted intrusive
       doubly-linked list over [0..p], with index [p] as the sentinel.
       Eligibility is monotone decreasing, so unlinking is the only
       mutation and ascending pid order is preserved for free. This is
       what lets a tick cost O(eligible) instead of O(p). *)
    next_eligible : int array;
    prev_eligible : int array;
    done_seen : bool array; (* pids counted in [done_alive] *)
    per_proc_work : int array;
    ins : instruments;
    ph : phases;
    trace : Trace.t;
    check : Oracle.t option; (* the invariant oracle, when [~check:true] *)
    mutable oracle : Adversary.oracle option;
    mutable time : int;
    mutable work : int;
    mutable executions : int;
    mutable finished : bool;
    mutable sigma : int;
    mutable live : int;
    mutable halted_count : int;
    mutable done_alive : int; (* live pids observed with [A.is_done] *)
  }

  (* Lookahead used by the omniscient adversary: clone [pid]'s state and
     step the clone in isolation (no deliveries), collecting the distinct
     tasks it performs. [step_cap] bounds bookkeeping-only steps so a
     clone that has halted (or spins on a finished tree) cannot loop. *)
  let isolated_plan states ~pid ~horizon ~step_cap =
    let clone = A.copy states.(pid) in
    let performed = ref [] in
    let count = ref 0 in
    let seen = Hashtbl.create 16 in
    let steps = ref 0 in
    (try
       while !steps < step_cap && !count < horizon do
         incr steps;
         let r = A.step clone in
         (match r.Algorithm.performed with
          | Some task when not (Hashtbl.mem seen task) ->
            Hashtbl.add seen task ();
            performed := task :: !performed;
            incr count
          | Some _ -> incr count
          | None -> ());
         if r.Algorithm.halt then raise Exit
       done
     with Exit -> ());
    List.rev !performed

  let create ?probe ?spans ?(check = false) cfg ~d ~adversary =
    if d < 0 then invalid_arg "Engine.create: d must be non-negative";
    let d = max 1 d in
    let p = cfg.Config.p in
    let probe =
      match probe with Some pr -> pr | None -> Probe.create ~enabled:false ()
    in
    let spans =
      match spans with Some sp -> sp | None -> Span.create ~enabled:false ()
    in
    let chan =
      match cfg.Config.transport with
      | Config.Channel _ -> true
      | Config.Ptp -> false
    in
    (* message-level fault injection (drop/duplicate/reorder) is defined
       per point-to-point copy; a shared medium has no per-copy channel
       to corrupt, so the combination is rejected rather than silently
       ignored *)
    if chan && (match adversary.Adversary.faults with Some _ -> true | None -> false)
    then
      invalid_arg
        "Engine.create: fault injection requires the point-to-point \
         transport";
    let stream_delta =
      let constant =
        match adversary.Adversary.latency with
        | Adversary.Fixed k -> Some (max 1 (min d k))
        | Adversary.Maximal -> Some d
        | Adversary.Variable -> None
      in
      let reliable =
        (match adversary.Adversary.faults with None -> true | Some _ -> false)
        && match adversary.Adversary.restart with
           | None -> true
           | Some _ -> false
      in
      match constant with Some k when reliable -> k | _ -> -1
    in
    (* the stream fast path is a point-to-point construct: shared Bcast
       records assume every copy of a multicast is individually due at a
       constant offset, which a contended slotted medium cannot honour *)
    let stream = (not chan) && stream_delta >= 0 in
    (* Constant latency + reliable FIFO channels is exactly when delta
       payloads are exact (config.mli); switch the wire before states
       are built so algorithms encode accordingly. *)
    let cfg = if stream then Config.with_wire cfg Config.Delta else cfg in
    let eng =
      {
        cfg;
        d;
        adv = adversary;
        stream;
        stream_delta;
        chan;
        states = Array.init p (fun pid -> A.init cfg ~pid);
        net =
          (* the digest witness only applies on the stream fast path:
             elsewhere broadcasts fan out as per-destination sends and
             the shared stream never sees a record *)
          (match cfg.Config.transport with
           | Config.Ptp ->
             Transport.create ~transport:Config.Ptp
               ?digest:(if stream then A.merge_homomorphic else None)
               ~horizon:d ~p ()
           | Config.Channel _ as tr -> Transport.create ~transport:tr ~p ());
        global_done = Bitset.create cfg.Config.t;
        alive = Array.make p true;
        halted = Array.make p false;
        next_eligible = Array.init (p + 1) (fun i -> if i = p then 0 else i + 1);
        prev_eligible = Array.init (p + 1) (fun i -> if i = 0 then p else i - 1);
        done_seen = Array.make p false;
        per_proc_work = Array.make p 0;
        ins = instruments probe ~p;
        ph = phases spans;
        trace = Trace.create ();
        check = (if check then Some (Oracle.create ()) else None);
        oracle = None;
        time = 0;
        work = 0;
        executions = 0;
        finished = false;
        sigma = -1;
        live = p;
        halted_count = 0;
        done_alive = 0;
      }
    in
    let plan_step_cap = 16 * (cfg.Config.t + 8) in
    eng.oracle <-
      Some
        {
          Adversary.time = (fun () -> eng.time);
          p;
          t = cfg.Config.t;
          d;
          undone_count =
            (fun () -> cfg.Config.t - Bitset.cardinal eng.global_done);
          undone = (fun () -> Bitset.missing eng.global_done);
          task_done = (fun task -> Bitset.mem eng.global_done task);
          would_perform =
            (fun pid ->
              match
                isolated_plan eng.states ~pid ~horizon:1
                  ~step_cap:plan_step_cap
              with
              | [] -> None
              | task :: _ -> Some task);
          plan =
            (fun ~pid ~horizon ->
              isolated_plan eng.states ~pid ~horizon ~step_cap:plan_step_cap);
          alive = (fun pid -> eng.alive.(pid));
          halted = (fun pid -> eng.halted.(pid));
          note =
            (fun text ->
              if cfg.Config.record_trace then
                Trace.add eng.trace (Trace.Note { time = eng.time; text }));
          rng = Rng.create (cfg.Config.seed lxor 0x5adbeef);
        };
    eng

  let oracle eng =
    match eng.oracle with Some o -> o | None -> assert false

  let unlink_eligible eng pid =
    let nxt = eng.next_eligible.(pid) and prv = eng.prev_eligible.(pid) in
    eng.next_eligible.(prv) <- nxt;
    eng.prev_eligible.(nxt) <- prv

  (* Re-insert [pid] keeping the list sorted. Eligibility stopped being
     monotone the day crash-recovery arrived, so insertion needs a
     predecessor: scan downwards for the nearest eligible pid — O(p),
     but only paid on the (rare) restart path, never per tick. *)
  let link_eligible eng pid =
    let p = eng.cfg.Config.p in
    let prv = ref p (* sentinel *) in
    (try
       for j = pid - 1 downto 0 do
         if eng.alive.(j) && not eng.halted.(j) then begin
           prv := j;
           raise Exit
         end
       done
     with Exit -> ());
    let nxt = eng.next_eligible.(!prv) in
    eng.next_eligible.(!prv) <- pid;
    eng.prev_eligible.(pid) <- !prv;
    eng.next_eligible.(pid) <- nxt;
    eng.prev_eligible.(nxt) <- pid

  (* A read-only window for the invariant oracle; built only on checked
     runs, so the closures cost nothing in the default configuration. *)
  let oracle_view eng =
    {
      Oracle.time = eng.time;
      p = eng.cfg.Config.p;
      t = eng.cfg.Config.t;
      global_done = eng.global_done;
      local_done = (fun pid -> A.done_tasks eng.states.(pid));
      alive = (fun pid -> eng.alive.(pid));
      halted = (fun pid -> eng.halted.(pid));
      live = eng.live;
      finished = eng.finished;
    }

  (* Crash-recovery (docs/FAULTS.md): a restarted processor comes back
     with {e reset} local state — `A.init` run afresh, all knowledge
     lost — modelling a node that lost volatile memory. Messages queued
     to it while it was down survive (the network is a separate entity)
     and are delivered on its next step. *)
  let apply_restarts eng pids =
    List.iter
      (fun pid ->
        if pid >= 0 && pid < eng.cfg.Config.p && not eng.alive.(pid) then begin
          eng.alive.(pid) <- true;
          eng.live <- eng.live + 1;
          eng.states.(pid) <- A.init eng.cfg ~pid;
          if eng.halted.(pid) then begin
            (* halted-then-crashed: the halt claim died with the state *)
            eng.halted.(pid) <- false;
            eng.halted_count <- eng.halted_count - 1
          end;
          (* the fresh state knows nothing, so it no longer counts as
             informed; step_processor re-detects it incrementally *)
          eng.done_seen.(pid) <- false;
          link_eligible eng pid;
          if eng.cfg.Config.record_trace then
            Trace.add eng.trace (Trace.Restart { time = eng.time; pid })
        end)
      pids

  let apply_crashes eng pids =
    List.iter
      (fun pid ->
        if pid >= 0 && pid < eng.cfg.Config.p && eng.alive.(pid) && eng.live > 1
        then begin
          eng.alive.(pid) <- false;
          eng.live <- eng.live - 1;
          if not eng.halted.(pid) then unlink_eligible eng pid;
          (* stream implies no restart policy: the crash is permanent *)
          if eng.stream then Transport.deactivate eng.net ~pid;
          (* on a shared channel the transmit buffer dies with the
             volatile state; no-op on point-to-point (§2.1: in-flight
             messages outlive their sender) *)
          Transport.silence eng.net ~pid;
          if eng.done_seen.(pid) then eng.done_alive <- eng.done_alive - 1;
          if eng.cfg.Config.record_trace then
            Trace.add eng.trace (Trace.Crash { time = eng.time; pid })
        end)
      pids

  let step_processor eng pid =
    (match eng.check with
     | Some _ ->
       Span.enter eng.ph.ph_oracle;
       Oracle.check_step (oracle_view eng) ~pid;
       Span.leave eng.ph.ph_oracle
     | None -> ());
    (* Deliver due messages, then take the local step. *)
    let st = eng.states.(pid) in
    (* receive_iter returns the logical delivery count itself (a digest
       callback can stand for a whole epoch), so probed and unprobed
       runs share one delivery loop *)
    (* The three hot phases run back to back, so each transition is one
       clock read ({!Span.shift}); the whole step costs four reads. *)
    Span.enter eng.ph.ph_deliver;
    let delivered =
      Transport.receive_iter eng.net ~dst:pid ~now:eng.time (fun src msg ->
          A.receive st ~src msg)
    in
    if eng.ins.obs_on && delivered > 0 then
      Probe.add eng.ins.i_deliveries delivered;
    Span.shift eng.ph.ph_deliver eng.ph.ph_algo;
    let r = A.step st in
    Span.shift eng.ph.ph_algo eng.ph.ph_bcast;
    eng.work <- eng.work + 1;
    eng.per_proc_work.(pid) <- eng.per_proc_work.(pid) + 1;
    (match r.Algorithm.performed with
     | Some task ->
       let fresh = not (Bitset.mem eng.global_done task) in
       Bitset.set eng.global_done task;
       eng.executions <- eng.executions + 1;
       if eng.ins.obs_on then
         Probe.incr
           (if fresh then eng.ins.i_fresh else eng.ins.i_redundant);
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace
           (Trace.Perform { time = eng.time; pid; task; fresh })
     | None ->
       if eng.ins.obs_on then Probe.vincr eng.ins.i_idle pid;
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace (Trace.Step { time = eng.time; pid }));
    if eng.chan then begin
      (* Shared channel: the step's whole outbound — broadcast and/or
         unicasts — is one frame queued at [pid]'s station. The delayed
         adversary may hold it back (clamped into [0 .. d-1], so the
         per-round cap never exceeds the run's delay bound) before it
         first contends. No per-copy [delay] consultation and no
         latency histogram: delivery timing is decided by slot
         contention, not by a per-message adversary pick. *)
      let bcast = r.Algorithm.broadcast in
      let unis =
        List.filter (fun (dst, _) -> dst <> pid) r.Algorithm.unicasts
      in
      let logical =
        (match bcast with Some _ -> 1 | None -> 0) + List.length unis
      in
      if logical > 0 then begin
        let hold =
          match eng.adv.Adversary.channel with
          | Some { Adversary.hold = Some h; _ } ->
            let o = oracle eng in
            max 0 (min (eng.d - 1) (h o ~src:pid))
          | _ -> 0
        in
        Transport.transmit eng.net ~src:pid ~release:(eng.time + hold) ?bcast
          ~unis ();
        if eng.ins.obs_on then begin
          (* net.sends counts logical messages; on the shared medium a
             broadcast is one (see Channel's module doc on M) *)
          Probe.add eng.ins.i_sends logical;
          Probe.observe eng.ins.i_fanout logical
        end
      end;
      if r.Algorithm.broadcast <> None && eng.cfg.Config.record_trace then
        Trace.add eng.trace
          (Trace.Broadcast
             { time = eng.time; src = pid; copies = eng.cfg.Config.p - 1 })
    end
    else begin
    (* Per-message delivery deltas feed net.delivery_latency, but paying
       a histogram update per send costs ~10% on broadcast-heavy runs.
       Deltas arrive in runs of equal values (constant for max-delay,
       the common case), so batch by run length: per send, one compare
       and a register increment; one histogram flush per distinct run. *)
    let lat_v = ref (-1) and lat_n = ref 0 in
    let observe_latency delta =
      if eng.ins.obs_on then begin
        if delta = !lat_v then incr lat_n
        else begin
          Probe.observe_n eng.ins.i_latency !lat_v !lat_n;
          lat_v := delta;
          lat_n := 1
        end
      end
    in
    let send_one dst msg =
      let o = oracle eng in
      let raw = eng.adv.Adversary.delay o ~src:pid ~dst in
      let delta = max 1 (min eng.d raw) in
      match eng.adv.Adversary.faults with
      | None ->
        (* the reliable network of the paper's model: one branch, no
           extra RNG draws — fault-free runs stay bit-identical *)
        observe_latency delta;
        Transport.send eng.net ~src:pid ~dst ~due:(eng.time + delta) msg
      | Some f -> (
        match f o ~src:pid ~dst with
        | Adversary.Deliver ->
          observe_latency delta;
          Transport.send eng.net ~src:pid ~dst ~due:(eng.time + delta) msg
        | Adversary.Drop ->
          (* the algorithm paid for the send: it counts toward M even
             though nothing is enqueued; no latency sample (no delivery) *)
          Transport.count_lost eng.net;
          if eng.ins.obs_on then Probe.incr eng.ins.i_drops
        | Adversary.Duplicate n ->
          observe_latency delta;
          Transport.send eng.net ~src:pid ~dst ~due:(eng.time + delta) msg;
          (* replicas re-draw their latency (a resend travels a fresh
             path) and do not count toward M — the algorithm sent once *)
          for _ = 1 to n do
            let raw' = eng.adv.Adversary.delay o ~src:pid ~dst in
            let delta' = max 1 (min eng.d raw') in
            Transport.send_replica eng.net ~src:pid ~dst
              ~due:(eng.time + delta') msg
          done;
          if eng.ins.obs_on then Probe.add eng.ins.i_dups (max 0 n)
        | Adversary.Reorder j ->
          (* extra latency on top of the adversary's delay, re-clamped
             into [1..d] so the calendar-ring horizon still holds *)
          let delta' = max 1 (min eng.d (delta + max 0 j)) in
          observe_latency delta';
          Transport.send eng.net ~src:pid ~dst ~due:(eng.time + delta') msg)
    in
    (* ph_bcast has been open since the post-[A.step] shift: it covers
       the step's outbound traffic plus its result bookkeeping. *)
    (match r.Algorithm.broadcast with
     | Some msg ->
       let p = eng.cfg.Config.p in
       if eng.stream && p > 1 then begin
         let delta = eng.stream_delta in
         (* one shared record replaces the p-1 send_one calls; the
            latency probe still sees p-1 samples of [delta], batched
            through the same run-length registers *)
         if eng.ins.obs_on then
           if delta = !lat_v then lat_n := !lat_n + (p - 1)
           else begin
             Probe.observe_n eng.ins.i_latency !lat_v !lat_n;
             lat_v := delta;
             lat_n := p - 1
           end;
         Transport.broadcast eng.net ~src:pid ~due:(eng.time + delta) msg
       end
       else
         for dst = 0 to p - 1 do
           if dst <> pid then send_one dst msg
         done;
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace
           (Trace.Broadcast { time = eng.time; src = pid; copies = p - 1 })
     | None -> ());
    List.iter
      (fun (dst, msg) -> if dst <> pid then send_one dst msg)
      r.Algorithm.unicasts;
    if eng.ins.obs_on then begin
      Probe.observe_n eng.ins.i_latency !lat_v !lat_n;
      (* multicast fan-out of this step: point-to-point copies sent.
         [fan] equals the number of [send_one] calls above, so one
         [add] also maintains net.sends without per-send increments. *)
      let fan =
        List.fold_left
          (fun acc (dst, _) -> if dst <> pid then acc + 1 else acc)
          (match r.Algorithm.broadcast with
           | Some _ -> eng.cfg.Config.p - 1
           | None -> 0)
          r.Algorithm.unicasts
      in
      if fan > 0 then begin
        Probe.add eng.ins.i_sends fan;
        Probe.observe eng.ins.i_fanout fan
      end
    end
    end;
    Span.leave eng.ph.ph_bcast;
    if r.Algorithm.halt then begin
      assert (A.is_done st);
      eng.halted.(pid) <- true;
      eng.halted_count <- eng.halted_count + 1;
      unlink_eligible eng pid;
      (* a stream run has no restart policy, so the halt is permanent *)
      if eng.stream then Transport.deactivate eng.net ~pid;
      if eng.cfg.Config.record_trace then
        Trace.add eng.trace (Trace.Halt { time = eng.time; pid })
    end;
    (* Track "informed" incrementally: a pid's knowledge only changes
       during its own step (receive + step above), and is monotone, so
       checking here is exhaustive and counts each pid once. *)
    if (not (Array.unsafe_get eng.done_seen pid)) && A.is_done st then begin
      eng.done_seen.(pid) <- true;
      eng.done_alive <- eng.done_alive + 1
    end

  let tick eng =
    let o = oracle eng in
    (* adversary decisions for the tick: restart, crash, and schedule
       calls (restarts before crashes: a pid both restarted and
       re-crashed in the same tick ends the tick down, but its reset is
       visible) *)
    Span.enter eng.ph.ph_adv;
    (match eng.adv.Adversary.restart with
     | None -> ()
     | Some r -> apply_restarts eng (r o));
    apply_crashes eng (eng.adv.Adversary.crash o);
    let p = eng.cfg.Config.p in
    let active = eng.adv.Adversary.schedule o in
    Span.leave eng.ph.ph_adv;
    if Array.length active <> p then
      invalid_arg "Adversary.schedule: wrong array length";
    (* Time units are defined by the fastest processor: force someone to
       step if the adversary tried to delay every eligible processor.
       The eligible list is ascending, so its head is the lowest pid. *)
    let sentinel = p in
    let head = eng.next_eligible.(sentinel) in
    let rec any_active pid =
      pid <> sentinel
      && (Array.unsafe_get active pid || any_active eng.next_eligible.(pid))
    in
    if head <> sentinel && not (any_active head) then active.(head) <- true;
    let pid = ref head in
    while !pid <> sentinel do
      (* capture the successor first: a step may halt (unlink) [!pid] *)
      let next = eng.next_eligible.(!pid) in
      if active.(!pid) then step_processor eng !pid
      else begin
        if eng.ins.obs_on then Probe.vincr eng.ins.i_delayed !pid;
        if eng.cfg.Config.record_trace then
          Trace.add eng.trace (Trace.Delayed { time = eng.time; pid = !pid })
      end;
      pid := next
    done;
    if eng.chan then begin
      (* resolve this time unit's transmission slot: the ordered
         adversary (if any) permutes the contenders, serializing the
         medium in an order of its choosing; otherwise two or more
         contenders collide *)
      let arbitrate =
        match eng.adv.Adversary.channel with
        | Some { Adversary.order = Some f; _ } ->
          let o = oracle eng in
          Some (fun contenders -> f o contenders)
        | _ -> None
      in
      let slot = Transport.resolve eng.net ~now:eng.time ?arbitrate () in
      if eng.ins.obs_on then begin
        if slot.Channel.slot_busy then Probe.incr eng.ins.i_busy;
        if slot.Channel.slot_collided then Probe.incr eng.ins.i_collisions
      end
    end;
    if eng.ins.obs_on then begin
      (* per-tick trajectories: cumulative executions and the in-flight
         message backlog (sends minus deliveries so far) *)
      let time = eng.time in
      Probe.sample eng.ins.s_fresh ~time
        (Probe.counter_value eng.ins.i_fresh);
      Probe.sample eng.ins.s_redundant ~time
        (Probe.counter_value eng.ins.i_redundant);
      (* the queue's own size, not sends - deliveries: drops never
         enter the queue and duplicate replicas are not sends, so the
         arithmetic lies under a faulty network; identical values on a
         reliable one *)
      let inflight = Transport.pending eng.net in
      Probe.set eng.ins.i_inflight inflight;
      Probe.sample eng.ins.s_inflight ~time inflight;
      (* shared-stream occupancy: retained broadcast records and bytes
         held by cached epoch digests (0 outside the digest path) *)
      match Transport.stream_stats eng.net with
      | Some (records, digest_words) ->
        Probe.set eng.ins.i_stream_pending records;
        Probe.set eng.ins.i_stream_digest (digest_words * (Sys.word_size / 8))
      | None -> ()
    end;
    if eng.done_alive > 0 && Bitset.is_full eng.global_done then begin
      eng.finished <- true;
      eng.sigma <- eng.time
    end;
    (match eng.check with
     | Some oc ->
       Span.enter eng.ph.ph_oracle;
       Oracle.check_tick oc (oracle_view eng);
       Span.leave eng.ph.ph_oracle
     | None -> ());
    eng.time <- eng.time + 1

  let run ?max_time eng =
    let cap =
      match max_time with
      | Some m -> m
      | None ->
        default_max_time ~p:eng.cfg.Config.p ~t:eng.cfg.Config.t ~d:eng.d
    in
    while (not eng.finished) && eng.time < cap do
      tick eng
    done;
    {
      Metrics.p = eng.cfg.Config.p;
      t = eng.cfg.Config.t;
      d = eng.d;
      work = eng.work;
      messages = Transport.sent eng.net;
      sigma = (if eng.finished then eng.sigma else eng.time);
      executions = eng.executions;
      completed = eng.finished;
      halted = eng.halted_count;
      crashed = eng.cfg.Config.p - eng.live;
      per_proc_work = Array.copy eng.per_proc_work;
    }

  let state eng pid = eng.states.(pid)
  let trace eng = eng.trace
  let global_done eng = eng.global_done
  let checker eng = eng.check
end

let run_packed (module A : Algorithm.S) cfg ~d ~adversary ?max_time ?probe
    ?spans ?check () =
  let module E = Make (A) in
  let eng = E.create ?probe ?spans ?check cfg ~d ~adversary in
  E.run ?max_time eng

let run_traced (module A : Algorithm.S) cfg ~d ~adversary ?max_time ?probe
    ?spans ?check () =
  let cfg =
    Config.make ~seed:cfg.Config.seed ~record_trace:true
      ~transport:cfg.Config.transport ~p:cfg.Config.p ~t:cfg.Config.t ()
  in
  let module E = Make (A) in
  let eng = E.create ?probe ?spans ?check cfg ~d ~adversary in
  let m = E.run ?max_time eng in
  (m, E.trace eng)
