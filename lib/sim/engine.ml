let default_max_time ~p ~t ~d =
  (* A single processor can solve Do-All alone in O(q * t) steps for every
     algorithm in this library (full solo traversal); with the engine
     forcing at least one step per time unit, p * that is an absolute
     bound. Add slack for delays and tiny instances. *)
  10_000 + (48 * t * p) + (64 * d)

module Make (A : Algorithm.S) = struct
  type t = {
    cfg : Config.t;
    d : int;
    adv : Adversary.t;
    states : A.state array;
    net : A.msg Network.t;
    global_done : Bitset.t;
    alive : bool array;
    halted : bool array;
    (* The eligible (alive and not halted) pids as a sorted intrusive
       doubly-linked list over [0..p], with index [p] as the sentinel.
       Eligibility is monotone decreasing, so unlinking is the only
       mutation and ascending pid order is preserved for free. This is
       what lets a tick cost O(eligible) instead of O(p). *)
    next_eligible : int array;
    prev_eligible : int array;
    done_seen : bool array; (* pids counted in [done_alive] *)
    per_proc_work : int array;
    trace : Trace.t;
    mutable oracle : Adversary.oracle option;
    mutable time : int;
    mutable work : int;
    mutable executions : int;
    mutable finished : bool;
    mutable sigma : int;
    mutable live : int;
    mutable halted_count : int;
    mutable done_alive : int; (* live pids observed with [A.is_done] *)
  }

  (* Lookahead used by the omniscient adversary: clone [pid]'s state and
     step the clone in isolation (no deliveries), collecting the distinct
     tasks it performs. [step_cap] bounds bookkeeping-only steps so a
     clone that has halted (or spins on a finished tree) cannot loop. *)
  let isolated_plan states ~pid ~horizon ~step_cap =
    let clone = A.copy states.(pid) in
    let performed = ref [] in
    let count = ref 0 in
    let seen = Hashtbl.create 16 in
    let steps = ref 0 in
    (try
       while !steps < step_cap && !count < horizon do
         incr steps;
         let r = A.step clone in
         (match r.Algorithm.performed with
          | Some task when not (Hashtbl.mem seen task) ->
            Hashtbl.add seen task ();
            performed := task :: !performed;
            incr count
          | Some _ -> incr count
          | None -> ());
         if r.Algorithm.halt then raise Exit
       done
     with Exit -> ());
    List.rev !performed

  let create cfg ~d ~adversary =
    if d < 0 then invalid_arg "Engine.create: d must be non-negative";
    let d = max 1 d in
    let p = cfg.Config.p in
    let eng =
      {
        cfg;
        d;
        adv = adversary;
        states = Array.init p (fun pid -> A.init cfg ~pid);
        net = Network.create ~horizon:d ~p ();
        global_done = Bitset.create cfg.Config.t;
        alive = Array.make p true;
        halted = Array.make p false;
        next_eligible = Array.init (p + 1) (fun i -> if i = p then 0 else i + 1);
        prev_eligible = Array.init (p + 1) (fun i -> if i = 0 then p else i - 1);
        done_seen = Array.make p false;
        per_proc_work = Array.make p 0;
        trace = Trace.create ();
        oracle = None;
        time = 0;
        work = 0;
        executions = 0;
        finished = false;
        sigma = -1;
        live = p;
        halted_count = 0;
        done_alive = 0;
      }
    in
    let plan_step_cap = 16 * (cfg.Config.t + 8) in
    eng.oracle <-
      Some
        {
          Adversary.time = (fun () -> eng.time);
          p;
          t = cfg.Config.t;
          d;
          undone_count =
            (fun () -> cfg.Config.t - Bitset.cardinal eng.global_done);
          undone = (fun () -> Bitset.missing eng.global_done);
          task_done = (fun task -> Bitset.mem eng.global_done task);
          would_perform =
            (fun pid ->
              match
                isolated_plan eng.states ~pid ~horizon:1
                  ~step_cap:plan_step_cap
              with
              | [] -> None
              | task :: _ -> Some task);
          plan =
            (fun ~pid ~horizon ->
              isolated_plan eng.states ~pid ~horizon ~step_cap:plan_step_cap);
          alive = (fun pid -> eng.alive.(pid));
          halted = (fun pid -> eng.halted.(pid));
          note =
            (fun text ->
              if cfg.Config.record_trace then
                Trace.add eng.trace (Trace.Note { time = eng.time; text }));
          rng = Rng.create (cfg.Config.seed lxor 0x5adbeef);
        };
    eng

  let oracle eng =
    match eng.oracle with Some o -> o | None -> assert false

  let unlink_eligible eng pid =
    let nxt = eng.next_eligible.(pid) and prv = eng.prev_eligible.(pid) in
    eng.next_eligible.(prv) <- nxt;
    eng.prev_eligible.(nxt) <- prv

  let apply_crashes eng pids =
    List.iter
      (fun pid ->
        if pid >= 0 && pid < eng.cfg.Config.p && eng.alive.(pid) && eng.live > 1
        then begin
          eng.alive.(pid) <- false;
          eng.live <- eng.live - 1;
          if not eng.halted.(pid) then unlink_eligible eng pid;
          if eng.done_seen.(pid) then eng.done_alive <- eng.done_alive - 1;
          if eng.cfg.Config.record_trace then
            Trace.add eng.trace (Trace.Crash { time = eng.time; pid })
        end)
      pids

  let step_processor eng pid =
    (* Deliver due messages, then take the local step. *)
    let st = eng.states.(pid) in
    Network.receive_iter eng.net ~dst:pid ~now:eng.time (fun src msg ->
        A.receive st ~src msg);
    let r = A.step st in
    eng.work <- eng.work + 1;
    eng.per_proc_work.(pid) <- eng.per_proc_work.(pid) + 1;
    (match r.Algorithm.performed with
     | Some task ->
       let fresh = not (Bitset.mem eng.global_done task) in
       Bitset.set eng.global_done task;
       eng.executions <- eng.executions + 1;
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace
           (Trace.Perform { time = eng.time; pid; task; fresh })
     | None ->
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace (Trace.Step { time = eng.time; pid }));
    let send_one dst msg =
      let o = oracle eng in
      let raw = eng.adv.Adversary.delay o ~src:pid ~dst in
      let delta = max 1 (min eng.d raw) in
      Network.send eng.net ~src:pid ~dst ~due:(eng.time + delta) msg
    in
    (match r.Algorithm.broadcast with
     | Some msg ->
       let p = eng.cfg.Config.p in
       for dst = 0 to p - 1 do
         if dst <> pid then send_one dst msg
       done;
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace
           (Trace.Broadcast { time = eng.time; src = pid; copies = p - 1 })
     | None -> ());
    List.iter
      (fun (dst, msg) -> if dst <> pid then send_one dst msg)
      r.Algorithm.unicasts;
    if r.Algorithm.halt then begin
      assert (A.is_done st);
      eng.halted.(pid) <- true;
      eng.halted_count <- eng.halted_count + 1;
      unlink_eligible eng pid;
      if eng.cfg.Config.record_trace then
        Trace.add eng.trace (Trace.Halt { time = eng.time; pid })
    end;
    (* Track "informed" incrementally: a pid's knowledge only changes
       during its own step (receive + step above), and is monotone, so
       checking here is exhaustive and counts each pid once. *)
    if (not (Array.unsafe_get eng.done_seen pid)) && A.is_done st then begin
      eng.done_seen.(pid) <- true;
      eng.done_alive <- eng.done_alive + 1
    end

  let tick eng =
    let o = oracle eng in
    apply_crashes eng (eng.adv.Adversary.crash o);
    let p = eng.cfg.Config.p in
    let active = eng.adv.Adversary.schedule o in
    if Array.length active <> p then
      invalid_arg "Adversary.schedule: wrong array length";
    (* Time units are defined by the fastest processor: force someone to
       step if the adversary tried to delay every eligible processor.
       The eligible list is ascending, so its head is the lowest pid. *)
    let sentinel = p in
    let head = eng.next_eligible.(sentinel) in
    let rec any_active pid =
      pid <> sentinel
      && (Array.unsafe_get active pid || any_active eng.next_eligible.(pid))
    in
    if head <> sentinel && not (any_active head) then active.(head) <- true;
    let pid = ref head in
    while !pid <> sentinel do
      (* capture the successor first: a step may halt (unlink) [!pid] *)
      let next = eng.next_eligible.(!pid) in
      if active.(!pid) then step_processor eng !pid
      else if eng.cfg.Config.record_trace then
        Trace.add eng.trace (Trace.Delayed { time = eng.time; pid = !pid });
      pid := next
    done;
    if eng.done_alive > 0 && Bitset.is_full eng.global_done then begin
      eng.finished <- true;
      eng.sigma <- eng.time
    end;
    eng.time <- eng.time + 1

  let run ?max_time eng =
    let cap =
      match max_time with
      | Some m -> m
      | None ->
        default_max_time ~p:eng.cfg.Config.p ~t:eng.cfg.Config.t ~d:eng.d
    in
    while (not eng.finished) && eng.time < cap do
      tick eng
    done;
    {
      Metrics.p = eng.cfg.Config.p;
      t = eng.cfg.Config.t;
      d = eng.d;
      work = eng.work;
      messages = Network.sent eng.net;
      sigma = (if eng.finished then eng.sigma else eng.time);
      executions = eng.executions;
      completed = eng.finished;
      halted = eng.halted_count;
      crashed = eng.cfg.Config.p - eng.live;
      per_proc_work = Array.copy eng.per_proc_work;
    }

  let state eng pid = eng.states.(pid)
  let trace eng = eng.trace
  let global_done eng = eng.global_done
end

let run_packed (module A : Algorithm.S) cfg ~d ~adversary ?max_time () =
  let module E = Make (A) in
  let eng = E.create cfg ~d ~adversary in
  E.run ?max_time eng

let run_traced (module A : Algorithm.S) cfg ~d ~adversary ?max_time () =
  let cfg =
    Config.make ~seed:cfg.Config.seed ~record_trace:true ~p:cfg.Config.p
      ~t:cfg.Config.t ()
  in
  let module E = Make (A) in
  let eng = E.create cfg ~d ~adversary in
  let m = E.run ?max_time eng in
  (m, E.trace eng)
