(* See config.mli. *)

type wire = Full | Delta

type t = {
  p : int;
  t : int;
  seed : int;
  record_trace : bool;
  wire : wire;
}

let make ?(seed = 0) ?(record_trace = false) ?(wire = Full) ~p ~t () =
  if p <= 0 then invalid_arg "Config.make: p must be positive";
  if t <= 0 then invalid_arg "Config.make: t must be positive";
  { p; t; seed; record_trace; wire }

let with_seed cfg seed = { cfg with seed }
let with_wire cfg wire = { cfg with wire }

let pp ppf cfg =
  Format.fprintf ppf "p=%d t=%d seed=%d" cfg.p cfg.t cfg.seed
