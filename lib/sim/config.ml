(* See config.mli. *)

type wire = Full | Delta
type collision = Silent | Detectable
type transport = Ptp | Channel of collision

type t = {
  p : int;
  t : int;
  seed : int;
  record_trace : bool;
  wire : wire;
  transport : transport;
}

let make ?(seed = 0) ?(record_trace = false) ?(wire = Full) ?(transport = Ptp)
    ~p ~t () =
  if p <= 0 then invalid_arg "Config.make: p must be positive";
  if t <= 0 then invalid_arg "Config.make: t must be positive";
  { p; t; seed; record_trace; wire; transport }

let with_seed cfg seed = { cfg with seed }
let with_wire cfg wire = { cfg with wire }
let with_transport cfg transport = { cfg with transport }

let transport_to_string = function
  | Ptp -> "ptp"
  | Channel Silent -> "channel"
  | Channel Detectable -> "channel-detect"

let transport_of_string = function
  | "ptp" -> Ok Ptp
  | "channel" | "channel-silent" -> Ok (Channel Silent)
  | "channel-detect" | "channel-detectable" -> Ok (Channel Detectable)
  | s ->
    Error
      (Printf.sprintf "unknown transport %S (ptp|channel|channel-detect)" s)

let pp ppf cfg =
  Format.fprintf ppf "p=%d t=%d seed=%d" cfg.p cfg.t cfg.seed
