(** The simulation loop: algorithm instances x network x adversary.

    Implements the model of computation of Section 2 faithfully:

    - Global time advances in units equal to the smallest possible gap
      between consecutive clock ticks of any processor; within one unit,
      each scheduled processor completes exactly one local step, so a
      processor takes at most [d] local steps during any window of
      duration [d] — the property the lower-bound stages rely on.
    - A step costs one unit of work whether or not it performs a task
      (the charged measure of [10,14], adopted by the paper).
    - Message deliveries land in a processor's hands when that processor
      next steps at or after the adversarial due time; a delayed
      processor processes nothing.
    - The run ends at [sigma]: the first instant at which every task has
      been performed and at least one live processor locally knows it
      (Definition 2.1). A safety cap guards against non-terminating
      combinations; hitting it is reported, never masked.
    - Beyond the paper's model, an adversary may carry a fault policy
      (message drop / duplication / reorder) and a restart policy
      (crash-recovery with reset state) — see docs/FAULTS.md. Both are
      optional fields costing one branch when absent, so the faithful
      reliable-network mode is bit-identical to before they existed.

    Use {!Make} for a statically-known algorithm, or {!run_packed} with a
    first-class module (how the benchmark harness instantiates algorithm
    families parameterized by permutation lists). *)

module Make (A : Algorithm.S) : sig
  type t

  val create :
    ?probe:Probe.t ->
    ?spans:Span.t ->
    ?check:bool ->
    Config.t ->
    d:int ->
    adversary:Adversary.t ->
    t
  (** Builds initial states for all [p] processors. [d >= 0]; [d = 0] is
      treated as [d = 1] (a message needs at least one time unit).

      [?probe] attaches an observability probe (default: a private
      disabled one). The engine registers its instrument catalogue —
      fresh/redundant execution counters and per-tick series, the
      in-flight message gauge/series, the delivery-latency and
      multicast-fan-out histograms, the drop/duplicate fault counters,
      and per-pid delayed/idle step vectors (see docs/OBSERVABILITY.md)
      — and records into them only behind a single branch per site, so
      a disabled or absent probe leaves metrics and RNG streams
      bit-identical (pinned by [test/test_obs.ml]).

      [?spans] attaches a wall-clock self-profiler (default: a private
      disabled one). The engine registers its phase catalogue —
      [deliver], [algo_step], [adversary], [bcast_maint], [oracle] —
      and brackets each section with {!Span.enter}/{!Span.leave} behind
      the same cached-enabled-flag trick, so a disabled or absent
      profiler costs one branch per site and never reads the clock.
      Span totals are machine-dependent; span {e counts} are
      deterministic (pinned by [test/test_span.ml]).

      [?check:true] attaches the invariant oracle ({!Oracle}): every
      tick and every step are audited and the first violated invariant
      raises {!Oracle.Invariant_violation}. The oracle only reads, so
      checked runs produce bit-identical metrics — the golden grid runs
      entirely with [check:true]. *)

  val run : ?max_time:int -> t -> Metrics.t
  (** Runs to [sigma] or to [max_time]. The default cap is generous
      enough for any of the paper's algorithms to finish solo. *)

  val state : t -> int -> A.state
  (** Direct access to a processor's live state (tests, adversaries). *)

  val trace : t -> Trace.t
  (** Empty unless the config set [record_trace]. *)

  val global_done : t -> Bitset.t
  (** The engine's ledger of globally performed tasks. *)

  val checker : t -> Oracle.t option
  (** The attached invariant oracle, when created with [~check:true] —
      lets tests assert (via {!Oracle.ticks_checked}) that auditing
      actually happened. *)
end

val run_packed :
  Algorithm.packed ->
  Config.t ->
  d:int ->
  adversary:Adversary.t ->
  ?max_time:int ->
  ?probe:Probe.t ->
  ?spans:Span.t ->
  ?check:bool ->
  unit ->
  Metrics.t
(** One-shot convenience around {!Make}. *)

val run_traced :
  Algorithm.packed ->
  Config.t ->
  d:int ->
  adversary:Adversary.t ->
  ?max_time:int ->
  ?probe:Probe.t ->
  ?spans:Span.t ->
  ?check:bool ->
  unit ->
  Metrics.t * Trace.t
(** Like {!run_packed} but also returns the trace (forces recording). *)

val default_max_time : p:int -> t:int -> d:int -> int
(** The default safety cap used by [run]. *)
