(** The engine's message fabric, abstracted over two backends:

    - {b point-to-point} ({!Network}) — the paper's model (§2.1): a
      fully connected network of reliable channels, each message
      individually delayed by the adversary;
    - {b shared channel} ({!Channel}) — a multiple-access broadcast
      medium beyond the model: one transmission slot per time unit,
      simultaneous transmissions collide (see docs/MODEL.md).

    The dispatch is a plain variant, not a record of closures: the
    engine matches once per call site, the point-to-point path compiles
    to the same code it was before the abstraction existed (the golden
    grid and BENCH_4 gates pin this), and backend-specific operations
    fail loudly ([Invalid_argument]) instead of silently doing the wrong
    thing on the other backend.

    {!type-caps} makes each backend's capabilities explicit — what used
    to be folklore ("[?digest] only works with a horizon") is now a
    record the engine and the CLIs can consult. *)

type caps = {
  cap_name : string;  (** display name, e.g. ["ptp"] or ["channel"] *)
  cap_digest : bool;
      (** epoch-digest folding of broadcasts ({!Bcast}) is available *)
  cap_horizon : bool;
      (** bounded-delay calendar-ring storage is in effect *)
  cap_collisions : Config.collision option;
      (** [Some _] iff the medium is shared and transmissions can
          collide; the payload is the collision semantics *)
}

type 'msg t =
  | Ptp of 'msg Network.t
  | Shared of 'msg Channel.t

val create :
  transport:Config.transport ->
  ?digest:('msg array -> 'msg) ->
  ?horizon:int ->
  p:int ->
  unit ->
  'msg t
(** [?digest] and [?horizon] configure the point-to-point fast path
    exactly as in {!Network.create}; both are rejected
    ([Invalid_argument]) on a shared channel, which has neither a
    per-message delay horizon nor a broadcast stream to fold. *)

val caps : 'msg t -> caps

val p : 'msg t -> int

(** {1 Common operations} — defined on both backends *)

val receive_iter : 'msg t -> dst:int -> now:int -> (int -> 'msg -> unit) -> int
(** Deliver every message owed to [dst] due at or before [now], oldest
    first; returns the logical delivery count. *)

val pending : 'msg t -> int
(** Messages/deliveries owed but not yet received (O(1) on both
    backends). *)

val pending_for : 'msg t -> dst:int -> int

val next_due : 'msg t -> dst:int -> int option

val sent : 'msg t -> int
(** The run's message complexity [M] — point-to-point counts every
    point-to-point message (a multicast is [p - 1], Definition 2.2);
    the shared channel counts one unit per logical message in a
    transmission attempt (a broadcast is 1 — the medium is shared). *)

val silence : 'msg t -> pid:int -> unit
(** A crash notification: on a shared channel, drop [pid]'s queued
    transmit frames ({!Channel.silence}); no-op on point-to-point,
    where in-flight messages outlive their sender (§2.1). *)

val stream_stats : 'msg t -> (int * int) option
(** {!Network.stream_stats} on point-to-point; [None] on a channel. *)

(** {1 Point-to-point operations} — [Invalid_argument] on a channel *)

val send : 'msg t -> src:int -> dst:int -> due:int -> 'msg -> unit
val broadcast : 'msg t -> src:int -> due:int -> 'msg -> unit
val send_replica : 'msg t -> src:int -> dst:int -> due:int -> 'msg -> unit
val count_lost : 'msg t -> unit
val deactivate : 'msg t -> pid:int -> unit

(** {1 Shared-channel operations} — [Invalid_argument] on point-to-point *)

val transmit :
  'msg t ->
  src:int ->
  release:int ->
  ?bcast:'msg ->
  unis:(int * 'msg) list ->
  unit ->
  unit

val resolve :
  'msg t -> now:int -> ?arbitrate:(int array -> int array option) -> unit ->
  Channel.slot

(** {1 Channel statistics} — 0 on point-to-point (the counters simply
    never move there), so per-tick gauges need no backend branch *)

val collisions : 'msg t -> int
val busy_slots : 'msg t -> int
val channel_lost : 'msg t -> int
