(* See pool.mli.

   One shared FIFO of erased thunks guarded by a Mutex/Condition pair.
   Each batch writes into its own slot array, so the only cross-domain
   state is the queue and the per-batch remaining counter, both touched
   under [mutex]. A worker publishes a slot before taking the mutex to
   decrement [remaining]; the submitter reads slots only after observing
   [remaining = 0] under the same mutex, so the mutex's release/acquire
   ordering makes every slot write visible (no data race). *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : task Queue.t;
  completed : int array;
      (* tasks completed per domain slot: 0 = the submitting domain,
         1..jobs-1 = spawned workers. Each slot is written by exactly
         one domain (ints are immediate, so a concurrent read from
         [jobs_completed] observes a momentarily stale but well-formed
         count — fine for observability). *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mutable shut : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop pool slot =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.work_available pool.mutex
  done;
  match Queue.take_opt pool.queue with
  | None ->
    (* stop requested and the queue is drained *)
    Mutex.unlock pool.mutex
  | Some task ->
    Mutex.unlock pool.mutex;
    task ();
    pool.completed.(slot) <- pool.completed.(slot) + 1;
    worker_loop pool slot

let create ?jobs () =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      completed = Array.make jobs 0;
      stop = false;
      workers = [||];
      shut = false;
    }
  in
  pool.workers <-
    Array.init (jobs - 1)
      (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let jobs pool = pool.jobs

let queue_depth pool =
  Mutex.protect pool.mutex (fun () -> Queue.length pool.queue)

let jobs_completed pool = Array.copy pool.completed

(* Deterministic failure discipline: every element ran; re-raise the
   exception of the lowest-indexed failure, with its backtrace. *)
let collect results =
  let n = Array.length results in
  let rec first_error i =
    if i >= n then None
    else
      match results.(i) with
      | Error (e, bt) -> Some (e, bt)
      | Ok _ -> first_error (i + 1)
  in
  match first_error 0 with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    Array.map (function Ok v -> v | Error _ -> assert false) results

let guarded f x =
  try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())

let map_array pool f xs =
  if pool.shut then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.jobs = 1 then
    collect
      (Array.map
         (fun x ->
           let r = guarded f x in
           pool.completed.(0) <- pool.completed.(0) + 1;
           r)
         xs)
  else begin
    let results = Array.make n None in
    (* batch-local; read and written only under [pool.mutex] *)
    let remaining = ref n in
    let batch_done = Condition.create () in
    let make_task i () =
      let r = guarded f xs.(i) in
      results.(i) <- Some r;
      Mutex.lock pool.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.add (make_task i) pool.queue
    done;
    Condition.broadcast pool.work_available;
    (* The submitter works the queue too (it may also pick up elements
       of a concurrent batch; they never block, so that is harmless). *)
    while !remaining > 0 do
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        pool.completed.(0) <- pool.completed.(0) + 1;
        Mutex.lock pool.mutex
      | None -> if !remaining > 0 then Condition.wait batch_done pool.mutex
    done;
    Mutex.unlock pool.mutex;
    collect (Array.map Option.get results)
  end

let map pool f xs = Array.to_list (map_array pool f (Array.of_list xs))

let shutdown pool =
  if not pool.shut then begin
    pool.shut <- true;
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?jobs f xs = with_pool ?jobs (fun pool -> map pool f xs)
