(** The contract between a Do-All algorithm and the simulation engine.

    An algorithm is a per-processor state machine. The engine drives it
    one {e local step} at a time — the unit in which work is charged
    (Definition 2.1). On each step a processor may perform at most one
    constant-time task, submit at most one broadcast (delivered to the
    other [p-1] processors after adversarial delays), and may halt, but
    only once it knows every task is done (Proposition 2.1 shows halting
    earlier breaks any algorithm).

    Message processing is free at step boundaries: the engine feeds all
    due messages through {!S.receive} before the step, matching the
    paper's convention that "it takes a unit of work to process multiple
    received messages" — the unit is the step that follows.

    [copy] must produce a deep copy (including any private generator
    state). The engine uses copies to implement the omniscient
    adversary's lookahead: cloning a processor and stepping the clone in
    isolation reveals which tasks the processor would perform if the
    adversary left it alone and withheld all messages — exactly the
    [J_s(i)] sets of the lower-bound constructions (Sections 3.1-3.2). *)

type 'msg step_result = {
  performed : int option;  (** task id executed during this step *)
  broadcast : 'msg option;  (** multicast submitted during this step *)
  unicasts : (int * 'msg) list;
      (** point-to-point sends [(dst, msg)] — used by protocols with
          directed replies, e.g. the quorum-replicated memory of
          {!Doall_quorum}; a multicast counts [p-1] messages, each
          unicast counts 1 *)
  halt : bool;  (** voluntary halt; legal only when all-done is known *)
}

val nothing : 'msg step_result
(** A step that only advances internal bookkeeping. *)

val result :
  ?performed:int ->
  ?broadcast:'msg ->
  ?unicasts:(int * 'msg) list ->
  ?halt:bool ->
  unit ->
  'msg step_result
(** Labelled constructor; omitted fields default to "nothing". *)

module type S = sig
  val name : string

  type state
  type msg

  val init : Config.t -> pid:int -> state
  (** Fresh local state for processor [pid]. Note [Config.t] does not
      carry the delay bound [d]: algorithms cannot depend on it. *)

  val copy : state -> state
  (** Deep copy; the clone's future behaviour must equal the original's
      (same pending coins included). *)

  val receive : state -> src:int -> msg -> unit
  (** Merge one received message into local knowledge. Must be monotone:
      receiving can only add knowledge. *)

  val merge_homomorphic : (msg array -> msg) option
  (** The merge-homomorphism capability behind the engine's epoch-digest
      delivery fast path (docs/PERFORMANCE.md). [Some fold] declares
      that {!receive} is a {e source-independent monotone union}: for
      any state [st] and any batch [ms] of messages published in one
      engine step, delivering [fold ms] once leaves [st] exactly as
      delivering every element of [ms] would, in any order, under any
      [src] values — and [receive] never reads [src]. Under that
      contract the engine pre-folds all broadcasts of an epoch into one
      digest and applies it once per receiver (O(p + digest words) per
      tick instead of O(p²) payload applies); the digest is delivered
      with [src = -1], and a receiver's own epoch contribution may be
      included (it is a subset of its own knowledge, so union-only
      algorithms need no correction). Algorithms whose receive handler
      is not a pure union — coordinator rounds, view-dependent replies,
      anything that branches on [src] — must declare [None] and keep
      the per-record path. [fold] is only ever called with at least one
      message, all published at the same send step of one stream run. *)

  val step : state -> msg step_result
  (** One local step. Must eventually reach [is_done] in any fair
      execution where all tasks get performed and all messages arrive. *)

  val is_done : state -> bool
  (** The processor locally knows that every task has been performed. *)

  val done_tasks : state -> Bitset.t
  (** Local knowledge: the set of tasks this processor knows to be done.
      Capacity is the configured number of tasks. *)
end

type packed = (module S)

val name : packed -> string
