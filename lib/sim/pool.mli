(** Fixed-size domain pool for embarrassingly parallel experiment grids.

    A pool owns [jobs - 1] worker {!Domain}s pulling thunks from one
    shared queue guarded by a [Mutex]/[Condition] pair; the submitting
    domain works the queue too while it waits, so a pool of size [jobs]
    applies [jobs] cores to a batch. Batches return their results in
    {e submission order}, regardless of which worker ran which element
    or in what order they finished — the property that lets
    [Doall_core.Runner.run_grid] stay bit-deterministic under any level
    of parallelism.

    Exception semantics are deterministic as well: every element of a
    batch is always run to completion (a failure does not cancel its
    siblings), and if any elements raised, the exception of the
    {e lowest-indexed} failing element is re-raised — so a batch either
    returns all results or fails identically no matter how many domains
    served it.

    Thread-safety contract for callers: the function passed to
    {!map} / {!map_array} is called from worker domains, possibly
    concurrently with itself. It must only touch state it owns (per-call
    state, or data it was handed in its argument). All of
    [Doall_core.Runner]'s run descriptors satisfy this: each run builds
    its own [Config], [Rng] streams, algorithm instances and adversary
    state from scratch. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the parallelism the runtime
    suggests for this machine. *)

val create : ?jobs:int -> unit -> t
(** A pool of [jobs] (default {!default_jobs}; clamped to [>= 1])
    domains' worth of parallelism: [jobs - 1] spawned workers plus the
    submitting domain. [~jobs:1] spawns nothing and runs every batch
    inline, sequentially — useful as the baseline arm of speedup
    measurements. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

(** {1 Observability}

    Live counters for progress displays and the grid runner's
    instrumentation; neither affects scheduling. *)

val queue_depth : t -> int
(** Tasks submitted but not yet picked up by any domain (taken under
    the pool's mutex, so exact at the instant of the call). *)

val jobs_completed : t -> int array
(** Per-domain-slot completed-task counts, length {!jobs}: slot [0] is
    the submitting domain, slots [1..jobs-1] the spawned workers. Each
    slot has a single writer; reading concurrently with a running batch
    may observe counts mid-update (momentarily stale, never torn). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs] across the
    pool and returns the results in the order of [xs]. Safe to call
    repeatedly; concurrent batches from different domains are also safe
    (their elements interleave in the queue). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val shutdown : t -> unit
(** Signals the workers to exit and joins them. Idempotent. Calling
    {!map} after [shutdown] raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ?jobs f] = create, run [f], always shutdown. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot [with_pool]: spin up, map, tear down. *)
