type violation = {
  time : int;
  pid : int option;
  invariant : string;
  detail : string;
}

exception Invariant_violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "invariant %S violated at t=%d%s: %s" v.invariant v.time
    (match v.pid with None -> "" | Some pid -> Printf.sprintf " (pid %d)" pid)
    v.detail

let () =
  Printexc.register_printer (function
    | Invariant_violation v ->
      Some (Format.asprintf "Oracle.Invariant_violation: %a" pp_violation v)
    | _ -> None)

type view = {
  time : int;
  p : int;
  t : int;
  global_done : Bitset.t;
  local_done : int -> Bitset.t;
  alive : int -> bool;
  halted : int -> bool;
  live : int;
  finished : bool;
}

type t = {
  (* Monotonicity watermark: |global_done| last tick. Comparing cardinals
     suffices because tasks are only ever set, never cleared — a cleared
     bit with an equal cardinal would require a set bit elsewhere, i.e. a
     fresh perform, which also grows local_done ⊆ global_done checks. To
     be airtight we keep the previous set itself. *)
  mutable prev_done : Bitset.t;
  mutable ticks : int;
}

let create () = { prev_done = Bitset.create 0; ticks = 0 }

let fail ~time ?pid ~invariant detail =
  raise (Invariant_violation { time; pid; invariant; detail })

exception Offender of int

(* First bit set in [sub] but not [super] — only on the failure path, so
   the O(t) scan never runs in a healthy check ({!Bitset.subset} is the
   word-at-a-time fast path). *)
let first_offender ~sub ~super =
  try
    Bitset.iter_set sub (fun i -> if not (Bitset.mem super i) then raise (Offender i));
    None
  with Offender i -> Some i

let check_subset ~time ?pid ~invariant ~sub ~super ~what ~ledger () =
  if not (Bitset.subset sub super) then
    let task = match first_offender ~sub ~super with Some i -> i | None -> -1 in
    fail ~time ?pid ~invariant
      (Printf.sprintf "%s claims task %d done but it is not in %s" what task
         ledger)

let check_tick t view =
  t.ticks <- t.ticks + 1;
  (* survivor: the model guarantees at least one live processor. *)
  if view.live < 1 then
    fail ~time:view.time ~invariant:"survivor"
      (Printf.sprintf "no processor alive (live=%d)" view.live);
  (* monotone-global-done: performed tasks are never un-performed. *)
  if Bitset.length t.prev_done > 0 then
    check_subset ~time:view.time ~invariant:"monotone-global-done"
      ~sub:t.prev_done ~super:view.global_done ~what:"previous tick"
      ~ledger:"the current ledger (a done task was un-done)" ();
  t.prev_done <- Bitset.copy view.global_done;
  (* local-within-global: knowledge may lag reality, never outrun it. *)
  for pid = 0 to view.p - 1 do
    check_subset ~time:view.time ~pid ~invariant:"local-within-global"
      ~sub:(view.local_done pid) ~super:view.global_done
      ~what:(Printf.sprintf "pid %d" pid) ~ledger:"the global ledger" ();
    (* halted-knows-all: halting is a terminal claim of completion. *)
    if view.halted pid && not (Bitset.is_full (view.local_done pid)) then
      fail ~time:view.time ~pid ~invariant:"halted-knows-all"
        (Printf.sprintf "halted with only %d/%d tasks known done"
           (Bitset.cardinal (view.local_done pid))
           view.t)
  done;
  (* termination-complete: Definition 2.1. *)
  if view.finished && not (Bitset.is_full view.global_done) then
    fail ~time:view.time ~invariant:"termination-complete"
      (Printf.sprintf "run reported finished with %d/%d tasks done"
         (Bitset.cardinal view.global_done)
         view.t)

let check_step view ~pid =
  if not (view.alive pid) then
    fail ~time:view.time ~pid ~invariant:"step-by-crashed"
      "a crashed processor took a step"

let ticks_checked t = t.ticks
