(* See transport.mli. *)

type caps = {
  cap_name : string;
  cap_digest : bool;
  cap_horizon : bool;
  cap_collisions : Config.collision option;
}

type 'msg t =
  | Ptp of 'msg Network.t
  | Shared of 'msg Channel.t

let create ~transport ?digest ?horizon ~p () =
  match (transport : Config.transport) with
  | Config.Ptp -> Ptp (Network.create ?digest ?horizon ~p ())
  | Config.Channel collision ->
    if digest <> None then
      invalid_arg "Transport.create: ?digest is point-to-point only";
    if horizon <> None then
      invalid_arg "Transport.create: ?horizon is point-to-point only";
    Shared (Channel.create ~p ~collision ())

let caps = function
  | Ptp net ->
    let horizon = Network.stream_stats net <> None in
    { cap_name = "ptp"; cap_digest = horizon; cap_horizon = horizon;
      cap_collisions = None }
  | Shared ch ->
    { cap_name = "channel"; cap_digest = false; cap_horizon = false;
      cap_collisions = Some (Channel.collision ch) }

let p = function Ptp net -> Network.p net | Shared ch -> Channel.p ch

let receive_iter t ~dst ~now f =
  match t with
  | Ptp net -> Network.receive_iter net ~dst ~now f
  | Shared ch -> Channel.receive_iter ch ~dst ~now f

let pending = function
  | Ptp net -> Network.pending net
  | Shared ch -> Channel.pending ch

let pending_for t ~dst =
  match t with
  | Ptp net -> Network.pending_for net ~dst
  | Shared ch -> Channel.pending_for ch ~dst

let next_due t ~dst =
  match t with
  | Ptp net -> Network.next_due net ~dst
  | Shared ch -> Channel.next_due ch ~dst

let sent = function
  | Ptp net -> Network.sent net
  | Shared ch -> Channel.sent ch

let silence t ~pid =
  match t with Ptp _ -> () | Shared ch -> Channel.silence ch ~pid

let stream_stats = function
  | Ptp net -> Network.stream_stats net
  | Shared _ -> None

let ptp_only name = function
  | Ptp net -> net
  | Shared _ -> invalid_arg ("Transport." ^ name ^ ": point-to-point only")

let chan_only name = function
  | Shared ch -> ch
  | Ptp _ -> invalid_arg ("Transport." ^ name ^ ": shared channel only")

let send t ~src ~dst ~due msg = Network.send (ptp_only "send" t) ~src ~dst ~due msg

let broadcast t ~src ~due msg =
  Network.broadcast (ptp_only "broadcast" t) ~src ~due msg

let send_replica t ~src ~dst ~due msg =
  Network.send_replica (ptp_only "send_replica" t) ~src ~dst ~due msg

let count_lost t = Network.count_lost (ptp_only "count_lost" t)

let deactivate t ~pid = Network.deactivate (ptp_only "deactivate" t) ~pid

let transmit t ~src ~release ?bcast ~unis () =
  Channel.transmit (chan_only "transmit" t) ~src ~release ?bcast ~unis ()

let resolve t ~now ?arbitrate () =
  Channel.resolve (chan_only "resolve" t) ~now ?arbitrate ()

let collisions = function Ptp _ -> 0 | Shared ch -> Channel.collisions ch
let busy_slots = function Ptp _ -> 0 | Shared ch -> Channel.busy_slots ch
let channel_lost = function Ptp _ -> 0 | Shared ch -> Channel.lost ch
