(** Shared broadcast records: the O(1)-amortized multicast stream.

    Under an adversary whose latency is a declared constant
    ({!Adversary.latency}), every copy of a multicast is due at the same
    instant, and successive multicasts have non-decreasing dues. A
    broadcast can then be enqueued {e once} — payload, source, due, seq
    and a refcount of undelivered recipients — instead of [p - 1]
    per-destination queue insertions, and expanded lazily as each
    destination's delivery cursor walks over it. This is what collapses
    the engine's O(p) multicast cost and lets p = 16384 runs fit in
    memory (p - 1 queued copies per broadcast would not).

    Records must be added in non-decreasing due order (checked); [seq]
    must be strictly increasing across adds — the same counter the
    per-destination {!Msg_ring}s use, so the two streams merge under one
    total (due, seq) delivery key, preserving the exact delivery order
    of the per-destination path.

    A destination that halts or crashes for good is {!deactivate}d: its
    cursor stops holding records alive, so a broadcast's storage is
    reclaimed once every still-active destination has passed it. The
    logical messages owed to inactive destinations are {e not} forgotten
    by the network's in-flight accounting — matching the
    per-destination path, where such messages rot in the queue. *)

type 'msg t

val create : ?fold:('msg array -> 'msg) -> p:int -> unit -> 'msg t
(** A stream for destinations [0..p-1], all initially active.

    [?fold] enables the {e epoch-digest} delivery fast path. An epoch
    is a maximal run of equal-due records — under a constant declared
    delay, exactly the broadcasts of one send step. With [fold] given
    (the algorithm's {!Algorithm.S.merge_homomorphic} witness),
    {!drain} collapses each fully-due epoch into one cached
    [fold msgs] digest applied once per receiver, instead of walking
    its records individually: per-tick delivery cost drops from
    O(p{^ 2}) payload applies to O(p + digest size). Epochs are sealed
    before they become deliverable (records due at [T] were added at
    [T - delta], [delta >= 1]), so the cache can never go stale. *)

val add : 'msg t -> due:int -> src:int -> seq:int -> 'msg -> unit
(** Append one shared record with refcount = current active count.
    Raises [Invalid_argument] if [due] decreases. *)

val peek : 'msg t -> dst:int -> now:int -> bool
(** Position [dst]'s cursor at its earliest undelivered record with
    [due <= now]; false if there is none or [dst] is inactive. Records
    from [dst] itself are passed over (never delivered to their sender).
    After [true], the [head_*] accessors are valid until the next
    {!pop}. *)

val head_due : 'msg t -> dst:int -> int
val head_seq : 'msg t -> dst:int -> int
val head_src : 'msg t -> dst:int -> int
val head_msg : 'msg t -> dst:int -> 'msg

val pop : 'msg t -> dst:int -> unit
(** Consume the record located by the last successful {!peek} for
    [dst]: advance the cursor and drop one refcount. *)

val deactivate : 'msg t -> pid:int -> unit
(** Permanently remove [pid] as a recipient (halted, or crashed with no
    recovery): undelivered records stop waiting for it and future
    records exclude it. Idempotent. *)

val pending_for : 'msg t -> dst:int -> int
(** Undelivered records addressed to [dst] (0 if inactive). Read-only. *)

val next_due : 'msg t -> dst:int -> int option
(** Earliest due among records still addressed to [dst]. Read-only. *)

val drain : 'msg t -> dst:int -> now:int -> (int -> 'msg -> unit) -> int
(** Deliver every record due for [dst] by [now] and return the number
    of {e logical} deliveries (records from other sources consumed),
    matching what a {!peek}/{!pop} loop would count. Without [fold]
    this {e is} a peek/pop loop, invoking the callback once per record
    with its true source. With [fold], each whole due epoch is
    delivered as a single callback invocation carrying the epoch digest
    and source [-1] (the digest has no single source); the receiver's
    own contribution may be folded in — harmless under the
    merge-homomorphism contract — while the count still excludes its
    own records. A cursor left mid-epoch by the per-record path falls
    back to single-record delivery until the next epoch boundary. *)

val stats : 'msg t -> int * int
(** [(pending, digest_words)]: retained records ([tail - head]) and the
    total heap words reachable from currently cached epoch digests —
    the occupancy feed for the [net.stream_pending] /
    [net.stream_digest_bytes] gauges. Read-only. *)
