(** Shared broadcast records: the O(1)-amortized multicast stream.

    Under an adversary whose latency is a declared constant
    ({!Adversary.latency}), every copy of a multicast is due at the same
    instant, and successive multicasts have non-decreasing dues. A
    broadcast can then be enqueued {e once} — payload, source, due, seq
    and a refcount of undelivered recipients — instead of [p - 1]
    per-destination queue insertions, and expanded lazily as each
    destination's delivery cursor walks over it. This is what collapses
    the engine's O(p) multicast cost and lets p = 16384 runs fit in
    memory (p - 1 queued copies per broadcast would not).

    Records must be added in non-decreasing due order (checked); [seq]
    must be strictly increasing across adds — the same counter the
    per-destination {!Msg_ring}s use, so the two streams merge under one
    total (due, seq) delivery key, preserving the exact delivery order
    of the per-destination path.

    A destination that halts or crashes for good is {!deactivate}d: its
    cursor stops holding records alive, so a broadcast's storage is
    reclaimed once every still-active destination has passed it. The
    logical messages owed to inactive destinations are {e not} forgotten
    by the network's in-flight accounting — matching the
    per-destination path, where such messages rot in the queue. *)

type 'msg t

val create : p:int -> unit -> 'msg t
(** A stream for destinations [0..p-1], all initially active. *)

val add : 'msg t -> due:int -> src:int -> seq:int -> 'msg -> unit
(** Append one shared record with refcount = current active count.
    Raises [Invalid_argument] if [due] decreases. *)

val peek : 'msg t -> dst:int -> now:int -> bool
(** Position [dst]'s cursor at its earliest undelivered record with
    [due <= now]; false if there is none or [dst] is inactive. Records
    from [dst] itself are passed over (never delivered to their sender).
    After [true], the [head_*] accessors are valid until the next
    {!pop}. *)

val head_due : 'msg t -> dst:int -> int
val head_seq : 'msg t -> dst:int -> int
val head_src : 'msg t -> dst:int -> int
val head_msg : 'msg t -> dst:int -> 'msg

val pop : 'msg t -> dst:int -> unit
(** Consume the record located by the last successful {!peek} for
    [dst]: advance the cursor and drop one refcount. *)

val deactivate : 'msg t -> pid:int -> unit
(** Permanently remove [pid] as a recipient (halted, or crashed with no
    recovery): undelivered records stop waiting for it and future
    records exclude it. Idempotent. *)

val pending_for : 'msg t -> dst:int -> int
(** Undelivered records addressed to [dst] (0 if inactive). Read-only. *)

val next_due : 'msg t -> dst:int -> int option
(** Earliest due among records still addressed to [dst]. Read-only. *)
