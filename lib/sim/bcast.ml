(* See bcast.mli. One broadcast = one record in a growable circular
   struct-of-arrays buffer, globally sorted by (due, seq) because the
   engine only streams broadcasts whose delay is a declared constant:
   send instants never decrease, so dues never decrease, and seq breaks
   ties in send order. Each destination keeps a cursor (absolute record
   index); delivery walks the cursor over records due by now. A record's
   [rc] counts the active destinations whose cursors have not passed it
   yet (the sender included — it passes its own record without a
   delivery); storage is reclaimed from the head once [rc] hits zero. *)

type 'msg t = {
  p : int;
  mutable due : int array; (* columns, circular: slot = index land mask *)
  mutable src : int array;
  mutable seq : int array;
  mutable rc : int array;
  mutable msg : 'msg array;
  mutable head : int; (* absolute index of the first retained record *)
  mutable tail : int; (* absolute index one past the last record *)
  mutable last_due : int;
  cursor : int array; (* per pid: absolute index of the next record *)
  active : bool array;
  mutable n_active : int;
  mutable filler : 'msg option; (* overwrites reclaimed slots *)
  (* Epoch index for the digest fast path (None fold = disabled). An
     epoch is a maximal run of equal-due records; since dues never
     decrease, epochs are contiguous [e_start(e), e_start(e+1)) slices
     of the record stream, themselves kept in a circular deque indexed
     by absolute epoch number. [e_digest] caches fold(all msgs of the
     epoch), computed at the first whole-epoch drain and shared by
     every later receiver; sound because a record due at T was added at
     T - delta < T (delta >= 1), so a deliverable epoch can no longer
     grow. *)
  fold : ('msg array -> 'msg) option;
  mutable e_start : int array; (* absolute record index opening epoch e *)
  mutable e_due : int array;
  mutable e_digest : 'msg option array;
  mutable e_head : int; (* absolute index of first retained epoch *)
  mutable e_tail : int; (* one past the last epoch *)
}

let create ?fold ~p () =
  if p <= 0 then invalid_arg "Bcast.create: need at least one processor";
  {
    p;
    due = [||];
    src = [||];
    seq = [||];
    rc = [||];
    msg = [||];
    head = 0;
    tail = 0;
    last_due = min_int;
    cursor = Array.make p 0;
    active = Array.make p true;
    n_active = p;
    filler = None;
    fold;
    e_start = [||];
    e_due = [||];
    e_digest = [||];
    e_head = 0;
    e_tail = 0;
  }

let check_pid s pid name =
  if pid < 0 || pid >= s.p then invalid_arg (name ^ ": pid out of range")

let grow s msg0 =
  let cap = Array.length s.due in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let due' = Array.make cap' 0
  and src' = Array.make cap' 0
  and seq' = Array.make cap' 0
  and rc' = Array.make cap' 0
  and msg' = Array.make cap' msg0 in
  let mask = cap - 1 and mask' = cap' - 1 in
  for k = s.head to s.tail - 1 do
    let j = k land mask and j' = k land mask' in
    due'.(j') <- s.due.(j);
    src'.(j') <- s.src.(j);
    seq'.(j') <- s.seq.(j);
    rc'.(j') <- s.rc.(j);
    msg'.(j') <- s.msg.(j)
  done;
  s.due <- due';
  s.src <- src';
  s.seq <- seq';
  s.rc <- rc';
  s.msg <- msg'

(* -- epoch deque (digest fast path only) -------------------------- *)

let epoch_end s e =
  if e + 1 < s.e_tail then s.e_start.((e + 1) land (Array.length s.e_start - 1))
  else s.tail

let epoch_grow s =
  let cap = Array.length s.e_start in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let start' = Array.make cap' 0
  and due' = Array.make cap' 0
  and digest' = Array.make cap' None in
  let mask = cap - 1 and mask' = cap' - 1 in
  for e = s.e_head to s.e_tail - 1 do
    let j = e land mask and j' = e land mask' in
    start'.(j') <- s.e_start.(j);
    due'.(j') <- s.e_due.(j);
    digest'.(j') <- s.e_digest.(j)
  done;
  s.e_start <- start';
  s.e_due <- due';
  s.e_digest <- digest'

let epoch_push s ~due =
  let emask = Array.length s.e_start - 1 in
  if
    s.e_tail = s.e_head
    || due > Array.unsafe_get s.e_due ((s.e_tail - 1) land emask)
  then begin
    if s.e_tail - s.e_head = Array.length s.e_start then epoch_grow s;
    let j = s.e_tail land (Array.length s.e_start - 1) in
    Array.unsafe_set s.e_start j s.tail;
    Array.unsafe_set s.e_due j due;
    Array.unsafe_set s.e_digest j None;
    s.e_tail <- s.e_tail + 1
  end

(* Greatest retained epoch whose start is <= c (binary search; the
   in-flight window holds at most delta + 1 epochs, but stay O(log)). *)
let epoch_of s c =
  let emask = Array.length s.e_start - 1 in
  let lo = ref s.e_head and hi = ref (s.e_tail - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if Array.unsafe_get s.e_start (mid land emask) <= c then lo := mid
    else hi := mid - 1
  done;
  !lo

let epoch_reclaim s =
  while s.e_head < s.e_tail && epoch_end s s.e_head <= s.head do
    let j = s.e_head land (Array.length s.e_start - 1) in
    Array.unsafe_set s.e_digest j None;
    s.e_head <- s.e_head + 1
  done

let reclaim s =
  let mask = Array.length s.due - 1 in
  let moved = ref false in
  while s.head < s.tail && Array.unsafe_get s.rc (s.head land mask) = 0 do
    (* drop the payload reference so reclaimed records don't retain it *)
    (match s.filler with
     | Some f -> Array.unsafe_set s.msg (s.head land mask) f
     | None -> ());
    s.head <- s.head + 1;
    moved := true
  done;
  if !moved && s.e_tail > s.e_head then epoch_reclaim s

let add s ~due ~src ~seq msg =
  check_pid s src "Bcast.add src";
  if due < s.last_due then
    invalid_arg "Bcast.add: due times must be non-decreasing";
  s.last_due <- due;
  (match s.filler with None -> s.filler <- Some msg | Some _ -> ());
  if s.tail - s.head = Array.length s.due then grow s msg;
  (match s.fold with Some _ -> epoch_push s ~due | None -> ());
  let i = s.tail land (Array.length s.due - 1) in
  Array.unsafe_set s.due i due;
  Array.unsafe_set s.src i src;
  Array.unsafe_set s.seq i seq;
  Array.unsafe_set s.rc i s.n_active;
  Array.unsafe_set s.msg i msg;
  s.tail <- s.tail + 1

let peek s ~dst ~now =
  check_pid s dst "Bcast.peek";
  if not (Array.unsafe_get s.active dst) then false
  else begin
    let mask = Array.length s.due - 1 in
    let c = ref (Array.unsafe_get s.cursor dst) in
    let passed_own = ref false in
    (* pass (without delivering) our own due records: they keep global
       (due, seq) order but a processor never receives from itself *)
    while
      !c < s.tail
      && Array.unsafe_get s.due (!c land mask) <= now
      && Array.unsafe_get s.src (!c land mask) = dst
    do
      let i = !c land mask in
      Array.unsafe_set s.rc i (Array.unsafe_get s.rc i - 1);
      incr c;
      passed_own := true
    done;
    if !passed_own then begin
      Array.unsafe_set s.cursor dst !c;
      reclaim s
    end;
    !c < s.tail && Array.unsafe_get s.due (!c land mask) <= now
  end

let idx s dst = Array.unsafe_get s.cursor dst land (Array.length s.due - 1)
let head_due s ~dst = Array.unsafe_get s.due (idx s dst)
let head_seq s ~dst = Array.unsafe_get s.seq (idx s dst)
let head_src s ~dst = Array.unsafe_get s.src (idx s dst)
let head_msg s ~dst = Array.unsafe_get s.msg (idx s dst)

let pop s ~dst =
  let i = idx s dst in
  Array.unsafe_set s.rc i (Array.unsafe_get s.rc i - 1);
  Array.unsafe_set s.cursor dst (Array.unsafe_get s.cursor dst + 1);
  reclaim s

(* fold(all msgs of epoch [e]), cached so only the first receiver pays.
   Safe to compute at any drain: [head <= cursor(dst) = e_start(e)]
   keeps every record of the epoch un-reclaimed, and a deliverable
   epoch is sealed (see the type comment). *)
let digest s e fold =
  let j = e land (Array.length s.e_start - 1) in
  match Array.unsafe_get s.e_digest j with
  | Some d -> d
  | None ->
      let start = Array.unsafe_get s.e_start j in
      let stop = epoch_end s e in
      let mask = Array.length s.due - 1 in
      let d =
        if stop - start = 1 then Array.unsafe_get s.msg (start land mask)
        else
          fold
            (Array.init (stop - start) (fun i ->
                 Array.unsafe_get s.msg ((start + i) land mask)))
      in
      Array.unsafe_set s.e_digest j (Some d);
      d

let drain s ~dst ~now f =
  check_pid s dst "Bcast.drain";
  match s.fold with
  | None ->
      let n = ref 0 in
      while peek s ~dst ~now do
        f (head_src s ~dst) (head_msg s ~dst);
        incr n;
        pop s ~dst
      done;
      !n
  | Some fold ->
      if not (Array.unsafe_get s.active dst) then 0
      else begin
        let delivered = ref 0 in
        let running = ref true in
        while !running do
          let c = Array.unsafe_get s.cursor dst in
          if c >= s.tail then running := false
          else begin
            let mask = Array.length s.due - 1 in
            if Array.unsafe_get s.due (c land mask) > now then
              running := false
            else begin
              let e = epoch_of s c in
              if Array.unsafe_get s.e_start (e land (Array.length s.e_start - 1)) = c
              then begin
                (* whole due epoch: one digest apply replaces the
                   per-record walk; own records are passed inside the
                   same scan (their contribution to the digest is a
                   subset of the receiver's own knowledge) *)
                let stop = epoch_end s e in
                let dmsg = digest s e fold in
                let own = ref 0 in
                for k = c to stop - 1 do
                  let i = k land mask in
                  Array.unsafe_set s.rc i (Array.unsafe_get s.rc i - 1);
                  if Array.unsafe_get s.src i = dst then incr own
                done;
                Array.unsafe_set s.cursor dst stop;
                reclaim s;
                let n = stop - c - !own in
                if n > 0 then begin
                  delivered := !delivered + n;
                  f (-1) dmsg
                end
              end
              else if peek s ~dst ~now then begin
                (* mid-epoch cursor (left by the per-record merge path):
                   single-record step, then retry the fast path *)
                f (head_src s ~dst) (head_msg s ~dst);
                incr delivered;
                pop s ~dst
              end
              else running := false
            end
          end
        done;
        !delivered
      end

let stats s =
  let pending = s.tail - s.head in
  let words = ref 0 in
  if s.e_tail > s.e_head then begin
    let emask = Array.length s.e_start - 1 in
    for e = s.e_head to s.e_tail - 1 do
      match Array.unsafe_get s.e_digest (e land emask) with
      | Some d -> words := !words + Obj.reachable_words (Obj.repr d)
      | None -> ()
    done
  end;
  (pending, !words)

let deactivate s ~pid =
  check_pid s pid "Bcast.deactivate";
  if Array.unsafe_get s.active pid then begin
    s.active.(pid) <- false;
    s.n_active <- s.n_active - 1;
    let mask = Array.length s.due - 1 in
    for k = s.cursor.(pid) to s.tail - 1 do
      let i = k land mask in
      Array.unsafe_set s.rc i (Array.unsafe_get s.rc i - 1)
    done;
    s.cursor.(pid) <- s.tail;
    if s.head < s.tail then reclaim s
  end

let pending_for s ~dst =
  check_pid s dst "Bcast.pending_for";
  if not s.active.(dst) then 0
  else begin
    let mask = Array.length s.due - 1 in
    let n = ref 0 in
    for k = s.cursor.(dst) to s.tail - 1 do
      if Array.unsafe_get s.src (k land mask) <> dst then incr n
    done;
    !n
  end

let next_due s ~dst =
  check_pid s dst "Bcast.next_due";
  if not s.active.(dst) then None
  else begin
    let mask = Array.length s.due - 1 in
    let res = ref None in
    let k = ref s.cursor.(dst) in
    while !res = None && !k < s.tail do
      if Array.unsafe_get s.src (!k land mask) <> dst then
        res := Some (Array.unsafe_get s.due (!k land mask));
      incr k
    done;
    !res
  end
