(* See bcast.mli. One broadcast = one record in a growable circular
   struct-of-arrays buffer, globally sorted by (due, seq) because the
   engine only streams broadcasts whose delay is a declared constant:
   send instants never decrease, so dues never decrease, and seq breaks
   ties in send order. Each destination keeps a cursor (absolute record
   index); delivery walks the cursor over records due by now. A record's
   [rc] counts the active destinations whose cursors have not passed it
   yet (the sender included — it passes its own record without a
   delivery); storage is reclaimed from the head once [rc] hits zero. *)

type 'msg t = {
  p : int;
  mutable due : int array; (* columns, circular: slot = index land mask *)
  mutable src : int array;
  mutable seq : int array;
  mutable rc : int array;
  mutable msg : 'msg array;
  mutable head : int; (* absolute index of the first retained record *)
  mutable tail : int; (* absolute index one past the last record *)
  mutable last_due : int;
  cursor : int array; (* per pid: absolute index of the next record *)
  active : bool array;
  mutable n_active : int;
  mutable filler : 'msg option; (* overwrites reclaimed slots *)
}

let create ~p () =
  if p <= 0 then invalid_arg "Bcast.create: need at least one processor";
  {
    p;
    due = [||];
    src = [||];
    seq = [||];
    rc = [||];
    msg = [||];
    head = 0;
    tail = 0;
    last_due = min_int;
    cursor = Array.make p 0;
    active = Array.make p true;
    n_active = p;
    filler = None;
  }

let check_pid s pid name =
  if pid < 0 || pid >= s.p then invalid_arg (name ^ ": pid out of range")

let grow s msg0 =
  let cap = Array.length s.due in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let due' = Array.make cap' 0
  and src' = Array.make cap' 0
  and seq' = Array.make cap' 0
  and rc' = Array.make cap' 0
  and msg' = Array.make cap' msg0 in
  let mask = cap - 1 and mask' = cap' - 1 in
  for k = s.head to s.tail - 1 do
    let j = k land mask and j' = k land mask' in
    due'.(j') <- s.due.(j);
    src'.(j') <- s.src.(j);
    seq'.(j') <- s.seq.(j);
    rc'.(j') <- s.rc.(j);
    msg'.(j') <- s.msg.(j)
  done;
  s.due <- due';
  s.src <- src';
  s.seq <- seq';
  s.rc <- rc';
  s.msg <- msg'

let reclaim s =
  let mask = Array.length s.due - 1 in
  while s.head < s.tail && Array.unsafe_get s.rc (s.head land mask) = 0 do
    (* drop the payload reference so reclaimed records don't retain it *)
    (match s.filler with
     | Some f -> Array.unsafe_set s.msg (s.head land mask) f
     | None -> ());
    s.head <- s.head + 1
  done

let add s ~due ~src ~seq msg =
  check_pid s src "Bcast.add src";
  if due < s.last_due then
    invalid_arg "Bcast.add: due times must be non-decreasing";
  s.last_due <- due;
  (match s.filler with None -> s.filler <- Some msg | Some _ -> ());
  if s.tail - s.head = Array.length s.due then grow s msg;
  let i = s.tail land (Array.length s.due - 1) in
  Array.unsafe_set s.due i due;
  Array.unsafe_set s.src i src;
  Array.unsafe_set s.seq i seq;
  Array.unsafe_set s.rc i s.n_active;
  Array.unsafe_set s.msg i msg;
  s.tail <- s.tail + 1

let peek s ~dst ~now =
  check_pid s dst "Bcast.peek";
  if not (Array.unsafe_get s.active dst) then false
  else begin
    let mask = Array.length s.due - 1 in
    let c = ref (Array.unsafe_get s.cursor dst) in
    let passed_own = ref false in
    (* pass (without delivering) our own due records: they keep global
       (due, seq) order but a processor never receives from itself *)
    while
      !c < s.tail
      && Array.unsafe_get s.due (!c land mask) <= now
      && Array.unsafe_get s.src (!c land mask) = dst
    do
      let i = !c land mask in
      Array.unsafe_set s.rc i (Array.unsafe_get s.rc i - 1);
      incr c;
      passed_own := true
    done;
    if !passed_own then begin
      Array.unsafe_set s.cursor dst !c;
      reclaim s
    end;
    !c < s.tail && Array.unsafe_get s.due (!c land mask) <= now
  end

let idx s dst = Array.unsafe_get s.cursor dst land (Array.length s.due - 1)
let head_due s ~dst = Array.unsafe_get s.due (idx s dst)
let head_seq s ~dst = Array.unsafe_get s.seq (idx s dst)
let head_src s ~dst = Array.unsafe_get s.src (idx s dst)
let head_msg s ~dst = Array.unsafe_get s.msg (idx s dst)

let pop s ~dst =
  let i = idx s dst in
  Array.unsafe_set s.rc i (Array.unsafe_get s.rc i - 1);
  Array.unsafe_set s.cursor dst (Array.unsafe_get s.cursor dst + 1);
  reclaim s

let deactivate s ~pid =
  check_pid s pid "Bcast.deactivate";
  if Array.unsafe_get s.active pid then begin
    s.active.(pid) <- false;
    s.n_active <- s.n_active - 1;
    let mask = Array.length s.due - 1 in
    for k = s.cursor.(pid) to s.tail - 1 do
      let i = k land mask in
      Array.unsafe_set s.rc i (Array.unsafe_get s.rc i - 1)
    done;
    s.cursor.(pid) <- s.tail;
    if s.head < s.tail then reclaim s
  end

let pending_for s ~dst =
  check_pid s dst "Bcast.pending_for";
  if not s.active.(dst) then 0
  else begin
    let mask = Array.length s.due - 1 in
    let n = ref 0 in
    for k = s.cursor.(dst) to s.tail - 1 do
      if Array.unsafe_get s.src (k land mask) <> dst then incr n
    done;
    !n
  end

let next_due s ~dst =
  check_pid s dst "Bcast.next_due";
  if not s.active.(dst) then None
  else begin
    let mask = Array.length s.due - 1 in
    let res = ref None in
    let k = ref s.cursor.(dst) in
    while !res = None && !k < s.tail do
      if Array.unsafe_get s.src (!k land mask) <> dst then
        res := Some (Array.unsafe_get s.due (!k land mask));
      incr k
    done;
    !res
  end
