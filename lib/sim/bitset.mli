(** Fixed-capacity mutable bitsets, packed 63 bits per native int word.

    The workhorse data structure of the whole library: Do-All knowledge
    ("which tasks do I know to be done?"), progress-tree node markings, and
    the engine's global completion ledger are all bitsets. Operations the
    algorithms perform on every simulated step ([set], [mem], [union_into],
    [cardinal]) are O(1) or O(words) with no allocation. [union_into] is
    the per-message receive cost of every algorithm here, so it works a
    word at a time and counts newly-acquired bits only — monotonicity
    makes that O(n) total over a whole run per destination set.
    Iteration skips all-zero (or all-one) words. *)

type t

val create : int -> t
(** [create n] is an all-zero bitset of capacity [n] (indices [0..n-1]). *)

val length : t -> int
(** Capacity, as given to {!create}. *)

val copy : t -> t
(** An independent duplicate. *)

val set : t -> int -> unit
(** [set b i] turns bit [i] on. Out-of-range indices raise
    [Invalid_argument]. Bits are never turned off: all knowledge in the
    Do-All model is monotone, and the API enforces it. *)

val mem : t -> int -> bool
(** [mem b i] is the value of bit [i]. *)

val cardinal : t -> int
(** Number of set bits. O(1): maintained incrementally. *)

val is_full : t -> bool
(** All [length b] bits set. *)

val is_empty : t -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ORs [src] into [dst]. The two must have equal
    capacity. This is the receive-side "merge the sender's knowledge"
    operation of every algorithm in the paper. *)

val subset : t -> t -> bool
(** [subset a b] iff every bit of [a] is set in [b]. *)

val equal : t -> t -> bool

val iter_missing : t -> (int -> unit) -> unit
(** [iter_missing b f] applies [f] to every index whose bit is clear, in
    increasing order. *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set b f] applies [f] to every set index, in increasing order. *)

val to_list : t -> int list
(** Set indices, increasing. *)

val missing : t -> int list
(** Clear indices, increasing. *)

val first_missing : t -> int option
(** Smallest clear index, if any. *)

val of_list : int -> int list -> t
(** [of_list n is] is a capacity-[n] bitset with exactly the bits [is] set. *)

val pp : Format.formatter -> t -> unit
(** Renders as e.g. [{0,3,7}/16] (set indices / capacity). *)

(** {2 Delta wire encoding}

    The sparse payload format of the engine's delta-wire optimization
    (docs/PERFORMANCE.md): instead of broadcasting a full O(t/63)-word
    copy of a knowledge set, a sender broadcasts only the words touched
    since its previous broadcast. A {!tracker} records touched word
    indices as the set mutates; {!delta_flush} snapshots their current
    values into a {!type-delta} and resets the tracker; {!apply_delta}
    ORs a delta into a receiver's set in O(touched words).

    Merging a delta equals merging a full copy {e only when} the
    receiver has already merged every earlier flush from the same
    sender — a protocol property the engine guarantees on reliable
    FIFO constant-latency runs (see {!Config.wire}), never checked
    here. *)

type delta
(** A flushed set of touched words: pairs of (word index, word value). *)

type tracker
(** Mutable record of which words of one bitset were touched since the
    last flush. A tracker is bound to the capacity of the set it was
    created from; using it with a different-capacity set is unchecked. *)

val tracker : t -> tracker
(** A fresh tracker for [b], with nothing marked. *)

val tracker_copy : tracker -> tracker
(** Independent duplicate — required by [Algorithm.S.copy] so adversary
    lookahead clones cannot consume the original's pending delta. *)

val tracker_pending : tracker -> int
(** Words currently marked (0 after a flush). *)

val set_tracked : t -> tracker -> int -> unit
(** {!set}, also marking the touched word in the tracker. *)

val union_into_tracked : dst:t -> tracker -> t -> unit
(** {!union_into}, also marking every word that gained a bit. *)

val delta_flush : t -> tracker -> delta
(** Snapshot the marked words' current values of [b] and reset the
    tracker. Flushing with nothing marked returns an empty delta. *)

val delta_words : delta -> int
(** Number of (index, value) pairs carried. *)

val apply_delta : dst:t -> delta -> unit
(** OR the delta's words into [dst], maintaining {!cardinal}. Word
    indices beyond [dst]'s capacity raise [Invalid_argument]. *)

val apply_delta_tracked : dst:t -> tracker -> delta -> unit
(** {!apply_delta}, also marking every word that gained a bit — the
    receive path of a processor that itself re-broadcasts deltas. *)

val union_many : delta array -> delta
(** Fold [k] deltas into one digest delta in a single pass: one
    [|w; v|] pair per distinct word, values OR-combined, words in
    first-seen order. Applying the result once is equivalent to
    applying every input (in any order), because OR is associative,
    commutative, and idempotent. O(total input pairs); the engine's
    epoch-digest delivery path leans on this to turn [p-1] per-receiver
    applies into one. *)
