(* See adversary.mli. *)

type oracle = {
  time : unit -> int;
  p : int;
  t : int;
  d : int;
  undone_count : unit -> int;
  undone : unit -> int list;
  task_done : int -> bool;
  would_perform : int -> int option;
  plan : pid:int -> horizon:int -> int list;
  alive : int -> bool;
  halted : int -> bool;
  note : string -> unit;
  rng : Rng.t;
}

type fault_action = Deliver | Drop | Duplicate of int | Reorder of int
type faults = oracle -> src:int -> dst:int -> fault_action

type latency = Variable | Fixed of int | Maximal

type channel_policy = {
  chan_name : string;
  order : (oracle -> int array -> int array option) option;
  hold : (oracle -> src:int -> int) option;
}

type t = {
  name : string;
  schedule : oracle -> bool array;
  delay : oracle -> src:int -> dst:int -> int;
  latency : latency;
  crash : oracle -> int list;
  faults : faults option;
  restart : (oracle -> int list) option;
  channel : channel_policy option;
}

let no_crash (_ : oracle) = []
let all_active o = Array.make o.p true

let make ~name ~schedule ~delay ~crash =
  { name; schedule; delay; latency = Variable; crash; faults = None;
    restart = None; channel = None }

let with_faults f adv = { adv with faults = Some f }
let with_restart r adv = { adv with restart = Some r }
let with_latency l adv = { adv with latency = l }
let with_channel c adv = { adv with channel = Some c }

let fair =
  with_latency (Fixed 1)
    (make ~name:"fair" ~schedule:all_active
       ~delay:(fun _ ~src:_ ~dst:_ -> 1)
       ~crash:no_crash)

let fixed_delay delta =
  with_latency (Fixed delta)
    (make
       ~name:(Printf.sprintf "fixed-delay-%d" delta)
       ~schedule:all_active
       ~delay:(fun _ ~src:_ ~dst:_ -> delta)
       ~crash:no_crash)

let max_delay =
  with_latency Maximal
    (make ~name:"max-delay" ~schedule:all_active
       ~delay:(fun o ~src:_ ~dst:_ -> o.d)
       ~crash:no_crash)

let uniform_delay =
  make ~name:"uniform-delay" ~schedule:all_active
    ~delay:(fun o ~src:_ ~dst:_ -> 1 + Rng.int o.rng (max 1 o.d))
    ~crash:no_crash
