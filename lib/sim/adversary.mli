(** The omniscient adaptive adversary of Section 2.2.

    An adversary controls three things, each per global time unit:
    which processors advance (arbitrary delays between local clock
    ticks), each message's delivery latency (up to the bound [d]), and
    crash failures (with the engine enforcing the model's one-survivor
    rule). Decisions are made {e online} against the live execution
    through an {!oracle} — a read-only window the engine exposes.

    The oracle's [would_perform] and [plan] queries implement
    omniscience: they clone a processor's state and run the clone in
    isolation (no message deliveries) to learn which tasks it is about to
    perform. For deterministic algorithms this equals full off-line
    knowledge. For randomized algorithms, one-step lookahead corresponds
    to the paper's Fig. 1 rule "delay a processor from the moment it
    {e selects} a task in [J_s]": the selection (the coin flip) is
    observable before the task completes, and the adversary reacts to
    it — it never predicts coins it could not have seen. *)

type oracle = {
  time : unit -> int;  (** current global time (hidden from processors) *)
  p : int;
  t : int;
  d : int;  (** this run's delay bound *)
  undone_count : unit -> int;  (** tasks not yet performed by anyone *)
  undone : unit -> int list;
  task_done : int -> bool;
  would_perform : int -> int option;
      (** next task [pid] would perform if stepped in isolation *)
  plan : pid:int -> horizon:int -> int list;
      (** distinct tasks [pid] would perform within [horizon] isolated
          steps — the set [J_s(i)] of the lower-bound proofs *)
  alive : int -> bool;
  halted : int -> bool;
  note : string -> unit;  (** annotate the trace *)
  rng : Rng.t;  (** adversary's private random stream *)
}

(** Verdict of a fault policy on one point-to-point message, decided at
    send time. Anything other than {!Deliver} steps outside the paper's
    reliable-channel model (§2.1) — see docs/FAULTS.md. *)
type fault_action =
  | Deliver  (** the paper's model: delayed but reliable *)
  | Drop  (** the message is lost; it still counts toward [M] *)
  | Duplicate of int
      (** deliver the message plus [n >= 1] extra copies; each extra
          copy's latency is re-drawn from the adversary's [delay]
          policy, so copies may arrive out of order. Network-level
          replicas do not count toward [M]. *)
  | Reorder of int
      (** deliver, but add [j >= 0] extra latency units on top of the
          [delay] policy's pick (the sum is still clamped into
          [1 .. d]) — pushes the message behind later traffic. *)

type faults = oracle -> src:int -> dst:int -> fault_action
(** Invoked once per point-to-point send (after the [delay] policy). *)

type latency =
  | Variable
      (** no promise: the engine consults [delay] once per
          point-to-point copy — the general case. *)
  | Fixed of int
      (** a declaration that [delay] always returns exactly this value:
          it ignores [src]/[dst], draws no randomness, and reads no
          mutable oracle state. *)
  | Maximal
      (** a declaration that [delay] always returns the bound [d]
          (equivalent to [Fixed d], stated without knowing [d]). *)
(** A {e declared} latency profile. Declaring [Fixed]/[Maximal] is a
    promise, not a measurement: the engine trusts it to skip the
    per-destination [delay] consultations of a multicast and enqueue one
    shared broadcast record for all [p - 1] recipients (the
    constant-delay fast path; see docs/PERFORMANCE.md). A declaration
    that does not match the [delay] function's behaviour changes run
    results. Profiles where latency varies per message, per destination,
    or per tick must stay [Variable]. *)

type channel_policy = {
  chan_name : string;  (** for display and registry names *)
  order : (oracle -> int array -> int array option) option;
      (** The {e ordered} adversary class (Klonowski–Kowalski–Mirek, see
          docs/MODEL.md): given this slot's contenders in ascending pid
          order, return a permutation of them — the channel grants the
          slot to the head and defers the rest to the next slot, so the
          adversary serializes the channel in an order of its choosing.
          Returning [None] declines to arbitrate {e this slot}: the
          contenders transmit simultaneously and collide (used by
          phase-structured strategies whose ordering rule is only active
          part of the time). A [None] field: never arbitrate. *)
  hold : (oracle -> src:int -> int) option;
      (** The {e delayed} adversary class: extra slots a transmission
          submitted now by [src] is held back before it first contends.
          The engine clamps the result into [0 .. d - 1], so the
          per-round delay cap never exceeds the run's delay bound.
          [None]: transmissions contend in their submission slot. *)
}
(** How an adversary exercises a shared-channel transport
    ({!Config.transport} = [Channel _]). Both fields are inert on
    point-to-point runs — the engine only consults them when the run's
    transport is the shared channel. *)

type t = {
  name : string;
  schedule : oracle -> bool array;
      (** invoked once per time unit; [true] = the processor takes a step.
          The engine keeps the model well-defined by forcing the
          lowest-pid live processor to step if the adversary delays
          everyone (time units are defined by the fastest processor). *)
  delay : oracle -> src:int -> dst:int -> int;
      (** latency for a message submitted now; the engine clamps the
          result into [1 .. max 1 d]. *)
  latency : latency;
      (** declared profile of [delay]; [Variable] unless a constructor
          or {!with_latency} promises otherwise. *)
  crash : oracle -> int list;
      (** pids to crash at this instant; the engine refuses to crash the
          last live processor. *)
  faults : faults option;
      (** [None] — the paper's reliable network; the engine's send path
          pays exactly one branch and no RNG stream moves (pinned by the
          golden grid). [Some f] — per-message drop / duplication /
          reordering beyond the model; see {!Doall_adversary.Fault}. *)
  restart : (oracle -> int list) option;
      (** [None] — the paper's model: crashes are permanent. [Some r] —
          pids to restart at this instant; a restarted processor comes
          back {e with reset local state} ([Algorithm.S.init] is re-run,
          so it has forgotten everything it knew). Restarting a live pid
          is a no-op. Applied at the start of each tick, before
          [crash]. *)
  channel : channel_policy option;
      (** [None] — on a shared-channel transport, contenders transmit
          simultaneously (colliding when two or more contend) and
          transmissions contend in their submission slot. [Some c] —
          the ordered/delayed adversary classes of
          {!type-channel_policy}. Ignored on point-to-point runs. *)
}

val fair : t
(** Everyone steps every unit; all messages arrive after one unit; no
    crashes. The best case against which adversarial runs are compared. *)

val fixed_delay : int -> t
(** Fair scheduling, constant latency (clamped to the run's [d]). *)

val max_delay : t
(** Fair scheduling, every message takes the full [d]. *)

val uniform_delay : t
(** Fair scheduling, latency uniform in [1..d]. *)

val no_crash : oracle -> int list
val all_active : oracle -> bool array
(** Building blocks for custom adversaries. *)

val make :
  name:string ->
  schedule:(oracle -> bool array) ->
  delay:(oracle -> src:int -> dst:int -> int) ->
  crash:(oracle -> int list) ->
  t
(** An adversary inside the paper's model: no faults, no restarts, and a
    [Variable] latency declaration (always safe). The constructor all
    paper-mode builders go through, so adding beyond-the-model
    capabilities never touches them. *)

val with_latency : latency -> t -> t
(** Overlay a latency declaration (see {!type-latency} for the promise it
    makes). [with_latency Variable] strips a declaration, forcing the
    engine's general per-destination path — useful for differential
    tests of the fast path. *)

val with_faults : faults -> t -> t
(** Overlay a fault policy (replacing any existing one); the name is
    kept. Compose several policies first with
    {!Doall_adversary.Fault.all}. *)

val with_restart : (oracle -> int list) -> t -> t
(** Overlay a restart policy (replacing any existing one). *)

val with_channel : channel_policy -> t -> t
(** Overlay a shared-channel contention policy (replacing any existing
    one); inert unless the run's transport is a shared channel. Rule
    builders live in {!Doall_adversary.Chan}. *)
