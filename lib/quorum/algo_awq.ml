open Doall_sim
open Doall_perms
open Doall_core

type phase = Query | Store

type msg =
  | Req of { op : int; node : int; phase : phase; ts : int; value : bool }
  | Resp of { op : int; phase : phase; ts : int; value : bool }

type cont =
  | After_child_read of { child : int; depth : int }
  | After_leaf_write
  | After_node_write

type pending = {
  op : int;
  write : bool;
  node : int;
  cont : cont;
  mutable phase : phase;
  mutable responders : Bitset.t;
  mutable best_ts : int;
  mutable value : bool;
  mutable phase_complete : bool;
  mutable complete : bool;
}

type frame = { node : int; depth : int; order : int array; mutable idx : int }

let make ?(q = 4) ?psi ?(quorum = fun ~p -> Quorum.majority ~p)
    ?(protocol = `Monotone) () : Algorithm.packed =
  let psi =
    match psi with
    | Some psi ->
      if List.length psi <> q then
        invalid_arg "Algo_awq.make: psi must contain exactly q permutations";
      List.iter
        (fun pi ->
          if Perm.size pi <> q then
            invalid_arg "Algo_awq.make: psi permutations must have size q")
        psi;
      psi
    | None -> Algo_da.default_psi ~q
  in
  let psi_arr = Array.of_list (List.map Perm.to_array psi) in
  (module struct
    let name =
      Printf.sprintf "awq%s-q%d"
        (match protocol with `Monotone -> "" | `Abd -> "-abd")
        q

    type nonrec msg = msg

    type state = {
      p : int;
      pid : int;
      part : Task.partition;
      sh : Progress_tree.t;
      qs : Quorum.t;
      replica : Bitset.t; (* server role: authoritative tree bits *)
      replica_ts : int array; (* server role: per-node timestamps (ABD) *)
      cache : Bitset.t; (* client role: node bits ever seen at 1 *)
      know : Bitset.t; (* tasks known done *)
      digits : int array;
      mutable stack : frame list;
      mutable current : int option; (* leaf whose job is being performed *)
      mutable pending : pending option;
      mutable outbox : (int * msg) list; (* server replies, flushed per step *)
      mutable opseq : int;
      mutable halted : bool;
    }

    let init (cfg : Config.t) ~pid =
      let part = Task.make ~p:cfg.p ~t:cfg.t in
      let sh = Progress_tree.shape ~q ~jobs:part.Task.n in
      let qs = quorum ~p:cfg.p in
      let digits = Qary.digits ~q ~width:sh.Progress_tree.h pid in
      let stack, current =
        if Progress_tree.is_leaf sh Progress_tree.root then
          ([], Some Progress_tree.root)
        else
          ( [
              {
                node = Progress_tree.root;
                depth = 0;
                order = psi_arr.(digits.(0));
                idx = 0;
              };
            ],
            None )
      in
      {
        p = cfg.p;
        pid;
        part;
        sh;
        qs;
        replica = Progress_tree.initial_marks sh;
        replica_ts = Array.make sh.Progress_tree.size 0;
        cache = Progress_tree.initial_marks sh;
        know = Bitset.create cfg.t;
        digits;
        stack;
        current;
        pending = None;
        outbox = [];
        opseq = 0;
        halted = false;
      }

    let copy st =
      {
        st with
        replica = Bitset.copy st.replica;
        replica_ts = Array.copy st.replica_ts;
        cache = Bitset.copy st.cache;
        know = Bitset.copy st.know;
        stack =
          List.map
            (fun fr ->
              {
                node = fr.node;
                depth = fr.depth;
                order = fr.order;
                idx = fr.idx;
              })
            st.stack;
        pending =
          Option.map
            (fun pnd -> { pnd with responders = Bitset.copy pnd.responders })
            st.pending;
      }

    let is_done st = Bitset.is_full st.know
    let done_tasks st = st.know

    (* Request/response protocol: [receive] generates directed replies
       keyed by [src] and per-operation timestamps — not a union. *)
    let merge_homomorphic = None

    (* A node bit at 1 proves every task in its subtree performed (the
       writer completed the subtree before writing); fold that proof into
       local knowledge. *)
    let learn_node_done st node =
      if not (Bitset.mem st.cache node) then begin
        Bitset.set st.cache node;
        List.iter
          (fun job ->
            List.iter (Bitset.set st.know) (Task.tasks_of_job st.part job))
          (Progress_tree.subtree_jobs st.sh node)
      end

    let known_done st node =
      Bitset.mem st.cache node || Bitset.mem st.replica node

    (* Server role: apply a Store to the replica. Only [true] is ever
       stored (initial state is the only false), so the value lattice
       stays monotone even under ABD's timestamp rule. *)
    let server_store st ~node ~ts ~value =
      if ts > st.replica_ts.(node) then st.replica_ts.(node) <- ts;
      if value then begin
        Bitset.set st.replica node;
        learn_node_done st node
      end

    let receive st ~src msg =
      match msg with
      | Req { op; node; phase; ts; value } ->
        (match phase with
         | Query -> ()
         | Store -> server_store st ~node ~ts ~value);
        let reply =
          match phase with
          | Query ->
            Resp
              {
                op;
                phase = Query;
                ts = st.replica_ts.(node);
                value = known_done st node;
              }
          | Store -> Resp { op; phase = Store; ts; value }
        in
        st.outbox <- (src, reply) :: st.outbox
      | Resp { op; phase; ts; value } -> (
        match st.pending with
        | Some pnd
          when pnd.op = op && pnd.phase = phase
               && (not pnd.phase_complete)
               && not (Bitset.mem pnd.responders src) ->
          Bitset.set pnd.responders src;
          if ts > pnd.best_ts then pnd.best_ts <- ts;
          if value then pnd.value <- true;
          let quorum_in = Quorum.satisfied st.qs pnd.responders in
          (match (protocol, pnd.phase) with
           | `Monotone, _ ->
             (* single-phase protocol: a read completes early on one
                value-1 witness, otherwise on a quorum; a write on a
                quorum of acks *)
             if (not pnd.write) && pnd.value then begin
               pnd.phase_complete <- true;
               pnd.complete <- true
             end
             else if quorum_in then begin
               pnd.phase_complete <- true;
               pnd.complete <- true
             end
           | `Abd, Query ->
             if quorum_in then pnd.phase_complete <- true
           | `Abd, Store ->
             if quorum_in then begin
               pnd.phase_complete <- true;
               pnd.complete <- true
             end)
        | Some _ | None -> ())

    (* Client role: begin a phase. The issuer's own replica is the first
       responder. Returns the request to broadcast. *)
    let fresh_responders st =
      let responders = Bitset.create st.p in
      Bitset.set responders st.pid;
      responders

    let begin_phase st pnd ~phase ~ts ~value =
      pnd.phase <- phase;
      pnd.responders <- fresh_responders st;
      pnd.phase_complete <- false;
      (match phase with
       | Query ->
         let own_ts = st.replica_ts.(pnd.node) in
         if own_ts > pnd.best_ts then pnd.best_ts <- own_ts;
         if known_done st pnd.node then pnd.value <- true
       | Store -> server_store st ~node:pnd.node ~ts ~value);
      let quorum_in = Quorum.satisfied st.qs pnd.responders in
      (match (protocol, phase) with
       | `Monotone, _ ->
         if ((not pnd.write) && pnd.value) || quorum_in then begin
           pnd.phase_complete <- true;
           pnd.complete <- true
         end
       | `Abd, Query -> if quorum_in then pnd.phase_complete <- true
       | `Abd, Store ->
         if quorum_in then begin
           pnd.phase_complete <- true;
           pnd.complete <- true
         end);
      Req { op = pnd.op; node = pnd.node; phase; ts; value }

    (* Timestamps are (counter, pid) pairs encoded as counter * p + pid
       so concurrent writers never tie. *)
    let next_ts st best = (((best / st.p) + 1) * st.p) + st.pid

    let issue st ~write ~node ~cont =
      st.opseq <- st.opseq + 1;
      let pnd =
        {
          op = st.opseq;
          write;
          node;
          cont;
          phase = Query;
          responders = fresh_responders st;
          best_ts = 0;
          value = false;
          phase_complete = false;
          complete = false;
        }
      in
      st.pending <- Some pnd;
      match protocol with
      | `Monotone ->
        if write then begin_phase st pnd ~phase:Store ~ts:0 ~value:true
        else begin_phase st pnd ~phase:Query ~ts:0 ~value:false
      | `Abd ->
        (* both reads and writes start with a timestamp-discovery query *)
        begin_phase st pnd ~phase:Query ~ts:0 ~value:false

    (* Advance a completed Query phase into the ABD Store phase:
       writers propagate (best+1, true); readers write back what they
       read, guaranteeing atomicity for later readers. *)
    let start_store_phase st pnd =
      let ts, value =
        if pnd.write then (next_ts st pnd.best_ts, true)
        else (pnd.best_ts, pnd.value)
      in
      begin_phase st pnd ~phase:Store ~ts ~value

    let result st ?performed ?broadcast ?halt () =
      let unicasts = st.outbox in
      st.outbox <- [];
      Algorithm.result ?performed ?broadcast ~unicasts ?halt ()

    let start_or_finish_leaf st leaf =
      (* Perform one member of the leaf's job, or write the leaf if the
         job turns out fully known. *)
      let job = Progress_tree.job_of_leaf st.sh leaf in
      match Task.next_member st.part st.know job with
      | Some z ->
        Bitset.set st.know z;
        if Task.job_done st.part st.know job then begin
          st.current <- None;
          let req = issue st ~write:true ~node:leaf ~cont:After_leaf_write in
          result st ~performed:z ~broadcast:req ()
        end
        else begin
          st.current <- Some leaf;
          result st ~performed:z ()
        end
      | None ->
        st.current <- None;
        let req = issue st ~write:true ~node:leaf ~cont:After_leaf_write in
        result st ~broadcast:req ()

    let continue_after st pnd =
      match pnd.cont with
      | After_child_read { child; depth } ->
        if pnd.value then begin
          learn_node_done st child;
          result st ()
        end
        else if Progress_tree.is_leaf st.sh child then
          start_or_finish_leaf st child
        else begin
          st.stack <-
            {
              node = child;
              depth;
              order = psi_arr.(st.digits.(depth));
              idx = 0;
            }
            :: st.stack;
          result st ()
        end
      | After_leaf_write | After_node_write ->
        learn_node_done st pnd.node;
        result st ()

    let step st =
      if st.halted then Algorithm.nothing
      else if is_done st && st.current = None then begin
        st.halted <- true;
        result st ~halt:true ()
      end
      else
        match st.pending with
        | Some pnd ->
          if pnd.complete then begin
            st.pending <- None;
            continue_after st pnd
          end
          else if pnd.phase_complete && pnd.phase = Query then
            (* ABD phase transition costs (at least) one step and one
               broadcast, as a real round trip would *)
            let req = start_store_phase st pnd in
            result st ~broadcast:req ()
          else result st () (* waiting on the quorum: an idle, charged step *)
        | None -> (
          match st.current with
          | Some leaf -> start_or_finish_leaf st leaf
          | None -> (
            match st.stack with
            | [] -> result st ()
            | fr :: rest ->
              if known_done st fr.node then begin
                st.stack <- rest;
                result st ()
              end
              else if fr.idx >= st.sh.Progress_tree.q then begin
                st.stack <- rest;
                let req =
                  issue st ~write:true ~node:fr.node ~cont:After_node_write
                in
                result st ~broadcast:req ()
              end
              else begin
                let branch = fr.order.(fr.idx) in
                fr.idx <- fr.idx + 1;
                let child = Progress_tree.child st.sh fr.node branch in
                if known_done st child then result st ()
                else
                  let req =
                    issue st ~write:false ~node:child
                      ~cont:
                        (After_child_read { child; depth = fr.depth + 1 })
                  in
                  result st ~broadcast:req ()
              end))
  end)
