open Doall_sim

type order = Adversary.oracle -> int array -> int array option
type hold = Adversary.oracle -> src:int -> int

let ordered_low _ contenders = Some contenders

let ordered_high _ contenders =
  let n = Array.length contenders in
  Some (Array.init n (fun i -> contenders.(n - 1 - i)))

let rotor k (o : Adversary.oracle) contenders =
  let n = Array.length contenders in
  let w = (((o.time () + k) mod n) + n) mod n in
  Some
    (Array.init n (fun i ->
         if i = 0 then contenders.(w)
         else if i <= w then contenders.(i - 1)
         else contenders.(i)))

let most_informed_last (o : Adversary.oracle) contenders =
  let novelty pid =
    match o.would_perform pid with
    | Some task when not (o.task_done task) -> 1
    | Some _ | None -> 0
  in
  let keyed = Array.map (fun pid -> (novelty pid, pid)) contenders in
  (* redundant transmitters first; ties stay in ascending pid order *)
  Array.sort compare keyed;
  Some (Array.map snd keyed)

let collide (_ : Adversary.oracle) (_ : int array) = None

let batched ~cap (o : Adversary.oracle) ~src:_ =
  if cap < 1 then invalid_arg "Chan.batched: cap >= 1";
  let now = o.time () in
  (cap - (now mod cap)) mod cap

let stagger (o : Adversary.oracle) ~src = src mod max 1 o.d

let policy ~name ?order ?hold () =
  { Adversary.chan_name = name; order; hold }

let into ~name p =
  Adversary.with_channel p { Adversary.fair with name }
