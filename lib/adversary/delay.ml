open Doall_sim

type t = Adversary.oracle -> src:int -> dst:int -> int

let immediate _ ~src:_ ~dst:_ = 1
let constant k _ ~src:_ ~dst:_ = k
let maximal (o : Adversary.oracle) ~src:_ ~dst:_ = o.d

let uniform (o : Adversary.oracle) ~src:_ ~dst:_ =
  1 + Rng.int o.rng (max 1 o.d)

let bimodal ~slow_fraction (o : Adversary.oracle) ~src:_ ~dst:_ =
  if Rng.float o.rng 1.0 < slow_fraction then o.d else 1

let per_destination f _ ~src:_ ~dst = f dst

let stage_batched ~stage_len (o : Adversary.oracle) ~src:_ ~dst:_ =
  if stage_len < 1 then invalid_arg "Delay.stage_batched: stage_len >= 1";
  let now = o.time () in
  let next_boundary = ((now / stage_len) + 1) * stage_len in
  next_boundary - now

let partition ~split (o : Adversary.oracle) ~src ~dst =
  let side pid = pid < split in
  if side src = side dst then 1 else o.d

let churn ~calm ~storm (o : Adversary.oracle) ~src:_ ~dst:_ =
  if calm < 1 || storm < 1 then invalid_arg "Delay.churn: periods >= 1";
  let phase = o.time () mod (calm + storm) in
  if phase < calm then 1 else o.d

let targeted ~victims (o : Adversary.oracle) ~src:_ ~dst =
  if victims dst then o.d else 1

let into ?latency ~name delay =
  let adv =
    Adversary.make ~name ~schedule:Adversary.all_active ~delay
      ~crash:Adversary.no_crash
  in
  match latency with
  | None -> adv
  | Some l -> Adversary.with_latency l adv
