open Doall_sim

type t = Adversary.faults

(* Policies are closures, so [to_spec] cannot introspect them; instead
   every spec-expressible constructor remembers its normalized spec in a
   bounded registry keyed by physical equality. Combinators that a spec
   cannot express (window, drop_all) stay unregistered and invert to
   [None]. *)
let spec_mutex = Mutex.create ()
let spec_names : (t * string) list ref = ref []
let max_remembered = 1024

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let remember name (policy : t) : t =
  Mutex.protect spec_mutex (fun () ->
      spec_names := (policy, name) :: take (max_remembered - 1) !spec_names);
  policy

let to_spec policy =
  Mutex.protect spec_mutex (fun () ->
      List.find_map
        (fun (q, name) -> if q == policy then Some name else None)
        !spec_names)

let none (_ : Adversary.oracle) ~src:_ ~dst:_ = Adversary.Deliver

let check_prob name prob =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.%s: prob must be in [0,1]" name)

let drop ~prob =
  check_prob "drop" prob;
  remember
    (Printf.sprintf "drop=%g" prob)
    (fun (o : Adversary.oracle) ~src:_ ~dst:_ ->
      if Rng.float o.rng 1.0 < prob then Adversary.Drop else Adversary.Deliver)

let drop_all (_ : Adversary.oracle) ~src:_ ~dst:_ = Adversary.Drop

let duplicate ?(copies = 1) ~prob =
  check_prob "duplicate" prob;
  if copies < 1 then invalid_arg "Fault.duplicate: copies >= 1";
  remember
    (if copies = 1 then Printf.sprintf "dup=%g" prob
     else Printf.sprintf "dup=%gx%d" prob copies)
    (fun (o : Adversary.oracle) ~src:_ ~dst:_ ->
      if Rng.float o.rng 1.0 < prob then Adversary.Duplicate copies
      else Adversary.Deliver)

let reorder ~prob =
  check_prob "reorder" prob;
  remember
    (Printf.sprintf "reorder=%g" prob)
    (fun (o : Adversary.oracle) ~src:_ ~dst:_ ->
      if Rng.float o.rng 1.0 < prob then
        Adversary.Reorder (1 + Rng.int o.rng (max 1 o.d))
      else Adversary.Deliver)

let window ~from_ ~until policy : t =
 fun o ~src ~dst ->
  let now = o.time () in
  if now >= from_ && now < until then policy o ~src ~dst
  else Adversary.Deliver

let all policies : t =
  let chained : t =
   fun o ~src ~dst ->
    let rec first = function
      | [] -> Adversary.Deliver
      | policy :: rest -> (
        match policy o ~src ~dst with
        | Adversary.Deliver -> first rest
        | decision -> decision)
    in
    first policies
  in
  (* the chain serializes iff every component does *)
  let names = List.map to_spec policies in
  if policies <> [] && List.for_all Option.is_some names then
    remember (String.concat "," (List.filter_map Fun.id names)) chained
  else chained

let into ~name policy =
  Adversary.with_faults policy
    (Adversary.with_latency (Adversary.Fixed 1)
       (Adversary.make ~name ~schedule:Adversary.all_active
          ~delay:Delay.immediate ~crash:Adversary.no_crash))

(* ---- CLI spec parsing: "drop=0.3,dup=0.2x2,reorder=0.1" ---- *)

let usage =
  "fault spec is comma-separated drop=P | dup=P | dup=PxN | reorder=P with \
   P in [0,1], N >= 1 (e.g. \"drop=0.3,dup=0.2x2,reorder=0.1\")"

let parse_prob s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> Ok p
  | Some _ | None -> Error usage

let parse_field field =
  match String.index_opt field '=' with
  | None -> Error usage
  | Some i -> (
    let key = String.sub field 0 i in
    let v = String.sub field (i + 1) (String.length field - i - 1) in
    match key with
    | "drop" ->
      Result.map (fun p -> (drop ~prob:p, Printf.sprintf "drop=%g" p))
        (parse_prob v)
    | "dup" -> (
      match String.index_opt v 'x' with
      | None ->
        Result.map
          (fun p -> (duplicate ~copies:1 ~prob:p, Printf.sprintf "dup=%g" p))
          (parse_prob v)
      | Some j -> (
        let pv = String.sub v 0 j in
        let nv = String.sub v (j + 1) (String.length v - j - 1) in
        match (parse_prob pv, int_of_string_opt nv) with
        | Ok p, Some n when n >= 1 ->
          Ok (duplicate ~copies:n ~prob:p, Printf.sprintf "dup=%gx%d" p n)
        | _ -> Error usage))
    | "reorder" ->
      Result.map (fun p -> (reorder ~prob:p, Printf.sprintf "reorder=%g" p))
        (parse_prob v)
    | _ -> Error usage)

let of_spec spec =
  let fields =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if fields = [] then Error usage
  else
    let rec parse acc names = function
      | [] -> Ok (all (List.rev acc), String.concat "," (List.rev names))
      | field :: rest -> (
        match parse_field field with
        | Ok (policy, name) -> parse (policy :: acc) (name :: names) rest
        | Error _ as e -> e)
    in
    parse [] [] fields
