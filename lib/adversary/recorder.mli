(** Record and replay adversary decisions.

    An adversary is three streams of decisions — schedule masks, message
    delays, crash lists. {!wrap} taps those streams into a {!tape} while
    delegating to the original adversary; {!replay} turns a tape back
    into an adversary that deals the identical decisions without needing
    the original (or its lookahead oracle queries, which can be
    expensive — a replayed lower-bound run costs no clone lookaheads).

    Uses: forensics on adversarially-found failures (capture the exact
    execution a fuzzer or lower-bound adversary produced, then re-run it
    under a debugger or with tracing on), decision-level regression
    pinning, and cheap re-measurement of expensive adversaries.

    Replay fidelity requires the replayed run to issue the same
    {e sequence} of decisions queries — same algorithm, same seed, same
    (p, t, d). Exhausting the tape (e.g. replaying against a different
    algorithm) falls back to fair defaults rather than failing, so
    replay is always safe, just no longer faithful.

    Fault and restart policies (docs/FAULTS.md) are {e not} taped:
    {!wrap} passes them through unchanged and {!replay} produces a
    reliable, non-recovering adversary, so the exact-replay guarantee
    holds for fault-free adversaries only. *)

open Doall_sim

type tape

val wrap : Adversary.t -> Adversary.t * tape
(** [wrap adv] is a recording adversary behaving exactly like [adv], and
    the (live) tape it writes. Read the tape only after the run. *)

val replay : tape -> Adversary.t
(** A fresh adversary dealing the tape's decisions in order. Each call
    to [replay] produces an independent cursor, so one tape can be
    replayed many times. *)

val decisions : tape -> int
(** Total recorded decisions (schedule + delay + crash calls). *)
