open Doall_sim

type internal = {
  mutable stage_end : int;
  mutable stage_len : int;
  mutable delayed : bool array;
  mutable history : (int * int * int list) list;
}

let stage_length (o : Adversary.oracle) = max 1 (min o.d (o.t / 6))

let begin_stage st (o : Adversary.oracle) =
  let now = o.time () in
  let delta = stage_length o in
  st.stage_len <- delta;
  st.stage_end <- now + delta;
  let undone = o.undone () in
  let us = List.length undone in
  if us = 0 then st.delayed <- Array.make o.p false
  else begin
    (* J_s(i): tasks from U_s processor i would perform this stage in
       isolation. *)
    let plans =
      Array.init o.p (fun pid ->
          if o.alive pid && not (o.halted pid) then
            List.filter (fun z -> not (o.task_done z)) (o.plan ~pid ~horizon:delta)
          else [])
    in
    let coverage = Hashtbl.create (2 * us) in
    List.iter (fun z -> Hashtbl.replace coverage z 0) undone;
    Array.iter
      (List.iter (fun z ->
           match Hashtbl.find_opt coverage z with
           | Some c -> Hashtbl.replace coverage z (c + 1)
           | None -> ()))
      plans;
    let js_size = max 1 (us / (3 * delta)) in
    let by_coverage =
      List.sort
        (fun a b ->
          compare (Hashtbl.find coverage a, a) (Hashtbl.find coverage b, b))
        undone
    in
    let js = List.filteri (fun i _ -> i < js_size) by_coverage in
    let js_tbl = Hashtbl.create 16 in
    List.iter (fun z -> Hashtbl.replace js_tbl z ()) js;
    let delayed =
      Array.init o.p (fun pid ->
          List.exists (fun z -> Hashtbl.mem js_tbl z) plans.(pid))
    in
    st.delayed <- delayed;
    st.history <- (now, us, js) :: st.history;
    o.note
      (Printf.sprintf "stage@%d: u_s=%d delta=%d |J_s|=%d delayed=%d" now us
         delta (List.length js)
         (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 delayed))
  end

(* Keyed on the adversary value so [stages_of] can retrieve diagnostics.
   [create] runs from Runner.run_grid worker domains (one instantiation
   per run), so the registry and its id counter are mutex-guarded; the
   [internal] state itself is only ever touched by the one run that owns
   the adversary. The id only names the instance for [stages_of] lookup
   and never reaches any metric, so its allocation order is free to vary
   across parallel schedules. *)
let registry : (string, internal) Hashtbl.t = Hashtbl.create 8
let next_id = ref 0
let registry_mutex = Mutex.create ()

let create () =
  let st =
    { stage_end = 0; stage_len = 1; delayed = [||]; history = [] }
  in
  let key =
    Mutex.protect registry_mutex (fun () ->
        incr next_id;
        let key = Printf.sprintf "lb-det-%d" !next_id in
        Hashtbl.replace registry key st;
        key)
  in
  let schedule (o : Adversary.oracle) =
    if o.time () >= st.stage_end then begin
      if o.time () = 0 then st.history <- [];
      begin_stage st o
    end;
    if Array.length st.delayed <> o.p then st.delayed <- Array.make o.p false;
    Array.map not st.delayed
  in
  let delay (o : Adversary.oracle) ~src:_ ~dst:_ =
    (* Deliver at the end of the current stage. *)
    max 1 (st.stage_end - o.time ())
  in
  Adversary.make ~name:key ~schedule ~delay ~crash:Adversary.no_crash

let stages_of (adv : Adversary.t) =
  match
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.find_opt registry adv.Adversary.name)
  with
  | Some st -> List.rev st.history
  | None -> []
