open Doall_sim

type tape = {
  mutable schedules : bool array list; (* reversed *)
  mutable delays : int list; (* reversed *)
  mutable crashes : int list list; (* reversed *)
}

let wrap (adv : Adversary.t) =
  let tape = { schedules = []; delays = []; crashes = [] } in
  (* faults/restart pass through untaped: the exact-replay guarantee
     below holds for fault-free, non-recovering adversaries only. *)
  let recording =
    {
      adv with
      Adversary.name = adv.Adversary.name ^ "+rec";
      (* Strip any latency declaration: taping must observe every
         per-destination delay call, which the engine's declared-latency
         fast path would skip. Replay is unaffected — fast and slow
         paths agree on all observable metrics. *)
      latency = Adversary.Variable;
      schedule =
        (fun o ->
          let mask = adv.Adversary.schedule o in
          tape.schedules <- Array.copy mask :: tape.schedules;
          mask);
      delay =
        (fun o ~src ~dst ->
          let delta = adv.Adversary.delay o ~src ~dst in
          tape.delays <- delta :: tape.delays;
          delta);
      crash =
        (fun o ->
          let pids = adv.Adversary.crash o in
          tape.crashes <- pids :: tape.crashes;
          pids);
    }
  in
  (recording, tape)

let replay tape =
  let schedules = Array.of_list (List.rev tape.schedules) in
  let delays = Array.of_list (List.rev tape.delays) in
  let crashes = Array.of_list (List.rev tape.crashes) in
  let si = ref 0 and di = ref 0 and ci = ref 0 in
  Adversary.make ~name:"replay"
    ~schedule:(fun o ->
      if !si < Array.length schedules then begin
        let mask = schedules.(!si) in
        incr si;
        if Array.length mask = o.Adversary.p then Array.copy mask
        else Array.make o.Adversary.p true
      end
      else Array.make o.Adversary.p true)
    ~delay:(fun _ ~src:_ ~dst:_ ->
      if !di < Array.length delays then begin
        let d = delays.(!di) in
        incr di;
        d
      end
      else 1)
    ~crash:(fun _ ->
      if !ci < Array.length crashes then begin
        let pids = crashes.(!ci) in
        incr ci;
        pids
      end
      else [])

let decisions tape =
  List.length tape.schedules + List.length tape.delays
  + List.length tape.crashes
