(** Message-fault policies: lossy, duplicating, reordering networks.

    The paper's network is reliable — messages are delayed, never lost
    (Section 2.1). These policies deliberately step outside that model
    (docs/FAULTS.md) to probe algorithm robustness: each send is run
    through a policy that may drop it, duplicate it, or add latency
    beyond what the delay adversary chose (still clamped into [1..d]).

    Accounting: a dropped send still counts toward the message
    complexity [M] (the algorithm paid for it); duplicate replicas do
    not (the network, not the algorithm, created them). Drops and
    replicas are visible as the [net.drops] / [net.dups] probe counters.

    Randomized policies draw from the oracle's RNG, so fault decisions
    are deterministic in the run's seed like every other adversary
    choice. *)

open Doall_sim

type t = Adversary.faults

val none : t
(** Deliver everything — the reliable network, as a policy. *)

val drop : prob:float -> t
(** Drop each send independently with probability [prob]. *)

val drop_all : t
(** Drop every message: the harshest network. Every algorithm in the
    registry still terminates under it via solo fallback — pinned by
    [test/test_faults.ml]. *)

val duplicate : ?copies:int -> prob:float -> t
(** With probability [prob], deliver [copies] (default 1) extra replicas
    of the send, each with independently re-drawn latency. *)

val reorder : prob:float -> t
(** With probability [prob], add uniform extra latency (1..d) to the
    send — overtaking later traffic becomes likely, i.e. reordering. *)

val window : from_:int -> until:int -> t -> t
(** Apply a policy only while [from_ <= time < until]; deliver
    faithfully outside the window. *)

val all : t list -> t
(** Chain policies: the first non-[Deliver] decision wins. *)

val into : name:string -> t -> Adversary.t
(** Fair scheduling, immediate delivery, no crashes — plus the faults. *)

val of_spec : string -> (t * string, string) result
(** Parse a CLI fault spec: comma-separated [drop=P], [dup=PxN] (or
    [dup=P], one copy), [reorder=P], e.g.
    ["drop=0.3,dup=0.2x2,reorder=0.1"]. Returns the policy and a
    normalized human-readable name, or [Error] with a usage message. *)

val to_spec : t -> string option
(** The normalized spec string a policy was built from — the inverse of
    {!of_spec}: policies built by {!drop} / {!duplicate} / {!reorder},
    by an {!all} of such policies, or by {!of_spec} itself serialize
    back to the spec that rebuilds them ([of_spec] on the result returns
    a policy with the same [to_spec]). Policies a spec cannot express
    ({!none}, {!drop_all}, {!window}, hand-written closures) return
    [None]. Implemented as a bounded physical-equality registry
    populated by the constructors, so only the policy value originally
    returned — not a copy — can be inverted. *)
