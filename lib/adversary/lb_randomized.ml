open Doall_sim

type internal = {
  mutable stage_end : int;
  mutable js : (int, unit) Hashtbl.t;
  mutable delayed : bool array; (* delayed-until-stage-end flags *)
  mutable history : (int * int * int list) list;
}

let stage_length (o : Adversary.oracle) = max 1 (min o.d (max 1 (o.t / 6)))

let pick_js selection st (o : Adversary.oracle) =
  let now = o.time () in
  let delta = stage_length o in
  st.stage_end <- now + delta;
  st.delayed <- Array.make o.p false;
  let undone = o.undone () in
  let us = List.length undone in
  let js_size = max 1 (us / (delta + 1)) in
  let js_list =
    if us = 0 then []
    else
      match selection with
      | `Random ->
        let arr = Array.of_list undone in
        Rng.shuffle o.rng arr;
        Array.to_list (Array.sub arr 0 (min js_size (Array.length arr)))
      | `Coverage ->
        let coverage = Hashtbl.create (2 * us) in
        List.iter (fun z -> Hashtbl.replace coverage z 0) undone;
        for pid = 0 to o.p - 1 do
          if o.alive pid && not (o.halted pid) then
            List.iter
              (fun z ->
                match Hashtbl.find_opt coverage z with
                | Some c -> Hashtbl.replace coverage z (c + 1)
                | None -> ())
              (o.plan ~pid ~horizon:delta)
        done;
        let by_coverage =
          List.sort
            (fun a b ->
              compare
                (Hashtbl.find coverage a, a)
                (Hashtbl.find coverage b, b))
            undone
        in
        List.filteri (fun i _ -> i < js_size) by_coverage
  in
  let tbl = Hashtbl.create 16 in
  List.iter (fun z -> Hashtbl.replace tbl z ()) js_list;
  st.js <- tbl;
  if us > 0 then begin
    st.history <- (now, us, js_list) :: st.history;
    o.note
      (Printf.sprintf "stage@%d: u_s=%d delta=%d |J_s|=%d" now us delta
         (List.length js_list))
  end

(* Mutex-guarded like Lb_deterministic's registry: [create] is called
   from Runner.run_grid worker domains. The per-instance [internal]
   state stays single-owner; the id never reaches a metric. *)
let registry : (string, internal) Hashtbl.t = Hashtbl.create 8
let next_id = ref 0
let registry_mutex = Mutex.create ()

let create ?(selection = `Coverage) () =
  let st =
    { stage_end = 0; js = Hashtbl.create 1; delayed = [||]; history = [] }
  in
  let key =
    Mutex.protect registry_mutex (fun () ->
        incr next_id;
        let key = Printf.sprintf "lb-rand-%d" !next_id in
        Hashtbl.replace registry key st;
        key)
  in
  let schedule (o : Adversary.oracle) =
    if o.time () >= st.stage_end then begin
      if o.time () = 0 then st.history <- [];
      pick_js selection st o
    end;
    if Array.length st.delayed <> o.p then st.delayed <- Array.make o.p false;
    (* Online rule: the moment a processor selects a J_s task, delay it
       for the rest of the stage. *)
    Array.init o.p (fun pid ->
        if st.delayed.(pid) then false
        else if not (o.alive pid) || o.halted pid then false
        else
          match o.would_perform pid with
          | Some task when Hashtbl.mem st.js task ->
            st.delayed.(pid) <- true;
            false
          | Some _ | None -> true)
  in
  let delay (o : Adversary.oracle) ~src:_ ~dst:_ =
    max 1 (st.stage_end - o.time ())
  in
  Adversary.make ~name:key ~schedule ~delay ~crash:Adversary.no_crash

let stages_of (adv : Adversary.t) =
  match
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.find_opt registry adv.Adversary.name)
  with
  | Some st -> List.rev st.history
  | None -> []
