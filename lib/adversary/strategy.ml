open Doall_sim

type sched =
  | S_all
  | S_solo of int
  | S_rr of int
  | S_random of float
  | S_harmonic
  | S_laggard

type delay =
  | D_const of int
  | D_max
  | D_uniform
  | D_bimodal of float
  | D_stage of int
  | D_partition of int
  | D_target of int
  | D_churn of int * int

type crash =
  | C_none
  | C_at of int * int * int
  | C_staggered of int
  | C_poisson of float
  | C_flaky of int * int

type fault = F_drop of float | F_dup of float * int | F_reorder of float

type chan =
  | Ch_none
  | Ch_ordered of int
  | Ch_delayed of int
  | Ch_both of int * int

type phase = {
  sched : sched;
  delay : delay;
  crash : crash;
  faults : fault list;
  chan : chan;
  lasts : int option;
}

type t = phase list

type space = Full | Live | In_model | Quorum_safe

let space_to_string = function
  | Full -> "full"
  | Live -> "live"
  | In_model -> "in-model"
  | Quorum_safe -> "quorum-safe"

let space_of_string = function
  | "full" -> Ok Full
  | "live" -> Ok Live
  | "in-model" | "in_model" | "model" -> Ok In_model
  | "quorum-safe" | "quorum_safe" -> Ok Quorum_safe
  | s ->
    Error
      (Printf.sprintf "unknown space %S (full|live|in-model|quorum-safe)" s)

(* map with a guaranteed left-to-right application order (List.map's is
   unspecified); gene walking and RNG-drawing rewrites depend on it *)
let rec map_seq f = function
  | [] -> []
  | x :: rest ->
    let y = f x in
    y :: map_seq f rest

let mapi_seq f l =
  let i = ref (-1) in
  map_seq (fun x -> incr i; f !i x) l

let rec init_seq n f i = if i >= n then [] else
  let x = f i in
  x :: init_seq n f (i + 1)

let init_seq n f = init_seq n f 0

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* ---- normalization ---- *)

let max_phases = 4
let max_faults = 3

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

(* quantize to 3 decimals so that %g printing round-trips exactly *)
let quant3 x = Float.of_int (int_of_float ((x *. 1000.) +. 0.5)) /. 1000.
let norm_prob x = quant3 (clamp 0.0 1.0 x)

let norm_sched = function
  | S_all -> S_all
  | S_solo pid -> S_solo (clamp 0 4095 pid)
  | S_rr w -> S_rr (clamp 1 4096 w)
  | S_random pr -> S_random (norm_prob pr)
  | S_harmonic -> S_harmonic
  | S_laggard -> S_laggard

let norm_delay = function
  | D_const k -> D_const (clamp 1 4096 k)
  | D_max -> D_max
  | D_uniform -> D_uniform
  | D_bimodal pr -> D_bimodal (norm_prob pr)
  | D_stage k -> D_stage (clamp 1 4096 k)
  | D_partition k -> D_partition (clamp 2 64 k)
  | D_target m -> D_target (clamp 2 64 m)
  | D_churn (a, b) -> D_churn (clamp 1 4096 a, clamp 1 4096 b)

let norm_crash = function
  | C_none -> C_none
  | C_at (tm, n, s) ->
    C_at (clamp 0 1_000_000 tm, clamp 0 4096 n, clamp 1 64 s)
  | C_staggered e -> C_staggered (clamp 1 1_000_000 e)
  | C_poisson r -> C_poisson (quant3 (clamp 0.0 0.5 r))
  | C_flaky (u, dn) -> C_flaky (clamp 1 1_000_000 u, clamp 1 1_000_000 dn)

let norm_fault = function
  | F_drop pr -> F_drop (norm_prob pr)
  | F_dup (pr, n) -> F_dup (norm_prob pr, clamp 1 8 n)
  | F_reorder pr -> F_reorder (norm_prob pr)

let norm_chan = function
  | Ch_none -> Ch_none
  | Ch_ordered k -> Ch_ordered (clamp 0 4095 k)
  | Ch_delayed cap -> Ch_delayed (clamp 1 4096 cap)
  | Ch_both (cap, k) -> Ch_both (clamp 1 4096 cap, clamp 0 4095 k)

let fair_phase =
  { sched = S_all; delay = D_const 1; crash = C_none; faults = [];
    chan = Ch_none; lasts = None }

let norm_phase ~last ph =
  {
    sched = norm_sched ph.sched;
    delay = norm_delay ph.delay;
    crash = norm_crash ph.crash;
    faults = map_seq norm_fault (take max_faults ph.faults);
    chan = norm_chan ph.chan;
    lasts =
      (if last then None
       else
         Some
           (match ph.lasts with
           | None -> 1
           | Some n -> clamp 1 1_000_000 n));
  }

let make phases =
  match take max_phases phases with
  | [] -> [ fair_phase ]
  | phases ->
    let n = List.length phases in
    mapi_seq (fun i ph -> norm_phase ~last:(i = n - 1) ph) phases

let phase ?(sched = S_all) ?(delay = D_const 1) ?(crash = C_none)
    ?(faults = []) ?(chan = Ch_none) ?lasts () =
  { sched; delay; crash; faults; chan; lasts }

(* ---- printing ---- *)

let fg = Printf.sprintf "%g"

let sched_to_string = function
  | S_all -> "all"
  | S_solo pid -> Printf.sprintf "solo:%d" pid
  | S_rr w -> Printf.sprintf "rr:%d" w
  | S_random pr -> "random:" ^ fg pr
  | S_harmonic -> "harmonic"
  | S_laggard -> "laggard"

let delay_to_string = function
  | D_const k -> Printf.sprintf "const:%d" k
  | D_max -> "max"
  | D_uniform -> "uniform"
  | D_bimodal pr -> "bimodal:" ^ fg pr
  | D_stage k -> Printf.sprintf "stage:%d" k
  | D_partition k -> Printf.sprintf "partition:%d" k
  | D_target m -> Printf.sprintf "target:%d" m
  | D_churn (a, b) -> Printf.sprintf "churn:%d:%d" a b

let crash_to_string = function
  | C_none -> "none"
  | C_at (tm, n, s) -> Printf.sprintf "at:%d:%d:%d" tm n s
  | C_staggered e -> Printf.sprintf "staggered:%d" e
  | C_poisson r -> "poisson:" ^ fg r
  | C_flaky (u, dn) -> Printf.sprintf "flaky:%d:%d" u dn

let fault_to_string = function
  | F_drop pr -> "drop:" ^ fg pr
  | F_dup (pr, n) -> Printf.sprintf "dup:%s:%d" (fg pr) n
  | F_reorder pr -> "reorder:" ^ fg pr

let chan_to_string = function
  | Ch_none -> "none"
  | Ch_ordered k -> Printf.sprintf "ordered:%d" k
  | Ch_delayed cap -> Printf.sprintf "delayed:%d" cap
  | Ch_both (cap, k) -> Printf.sprintf "both:%d:%d" cap k

let phase_to_string ph =
  String.concat ";"
    (("sched=" ^ sched_to_string ph.sched)
     :: ("delay=" ^ delay_to_string ph.delay)
     :: ((match ph.crash with
         | C_none -> []
         | c -> [ "crash=" ^ crash_to_string c ])
        @ map_seq (fun f -> "fault=" ^ fault_to_string f) ph.faults
        @ (match ph.chan with
          | Ch_none -> []
          | c -> [ "chan=" ^ chan_to_string c ])
        @ match ph.lasts with
          | None -> []
          | Some n -> [ Printf.sprintf "for=%d" n ]))

let to_spec t = String.concat "|" (List.map phase_to_string (make t))

(* ---- parsing ---- *)

let usage =
  "strategy spec is up to 4 phases separated by '|'; each phase is \
   ';'-separated fields: sched=all|solo:PID|rr:WIDTH|random:PROB|harmonic\
   |laggard, delay=const:K|max|uniform|bimodal:PROB|stage:K|partition:N\
   |target:M|churn:CALM:STORM, crash=none|at:TIME:COUNT:STRIDE\
   |staggered:EVERY|poisson:RATE|flaky:UP:DOWN, fault=drop:PROB\
   |dup:PROB:COPIES|reorder:PROB (repeatable), \
   chan=ordered:K|delayed:CAP|both:CAP:K (shared-channel contention \
   rules; inert on point-to-point runs), for=TICKS (phase duration; the \
   last phase runs forever). Example: \
   \"sched=laggard;delay=max;fault=drop:0.5;for=64|sched=all;delay=const:1\""

let err fmt = Printf.ksprintf (fun m -> Error m) fmt
let ( let* ) = Result.bind

let parse_int s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> err "bad integer %S" s

let parse_float s =
  match float_of_string_opt s with
  | Some x -> Ok x
  | None -> err "bad number %S" s

let parse_sched v =
  match String.split_on_char ':' v with
  | [ "all" ] -> Ok S_all
  | [ "solo"; k ] ->
    let* k = parse_int k in
    Ok (S_solo k)
  | [ "rr"; w ] ->
    let* w = parse_int w in
    Ok (S_rr w)
  | [ "random"; pr ] ->
    let* pr = parse_float pr in
    Ok (S_random pr)
  | [ "harmonic" ] -> Ok S_harmonic
  | [ "laggard" ] -> Ok S_laggard
  | _ -> err "bad sched rule %S" v

let parse_delay v =
  match String.split_on_char ':' v with
  | [ "const"; k ] ->
    let* k = parse_int k in
    Ok (D_const k)
  | [ "max" ] -> Ok D_max
  | [ "uniform" ] -> Ok D_uniform
  | [ "bimodal"; pr ] ->
    let* pr = parse_float pr in
    Ok (D_bimodal pr)
  | [ "stage"; k ] ->
    let* k = parse_int k in
    Ok (D_stage k)
  | [ "partition"; k ] ->
    let* k = parse_int k in
    Ok (D_partition k)
  | [ "target"; m ] ->
    let* m = parse_int m in
    Ok (D_target m)
  | [ "churn"; a; b ] ->
    let* a = parse_int a in
    let* b = parse_int b in
    Ok (D_churn (a, b))
  | _ -> err "bad delay rule %S" v

let parse_crash v =
  match String.split_on_char ':' v with
  | [ "none" ] -> Ok C_none
  | [ "at"; tm; n; s ] ->
    let* tm = parse_int tm in
    let* n = parse_int n in
    let* s = parse_int s in
    Ok (C_at (tm, n, s))
  | [ "staggered"; e ] ->
    let* e = parse_int e in
    Ok (C_staggered e)
  | [ "poisson"; r ] ->
    let* r = parse_float r in
    Ok (C_poisson r)
  | [ "flaky"; u; dn ] ->
    let* u = parse_int u in
    let* dn = parse_int dn in
    Ok (C_flaky (u, dn))
  | _ -> err "bad crash rule %S" v

let parse_fault v =
  match String.split_on_char ':' v with
  | [ "drop"; pr ] ->
    let* pr = parse_float pr in
    Ok (F_drop pr)
  | [ "dup"; pr; n ] ->
    let* pr = parse_float pr in
    let* n = parse_int n in
    Ok (F_dup (pr, n))
  | [ "reorder"; pr ] ->
    let* pr = parse_float pr in
    Ok (F_reorder pr)
  | _ -> err "bad fault rule %S" v

let parse_chan v =
  match String.split_on_char ':' v with
  | [ "none" ] -> Ok Ch_none
  | [ "ordered"; k ] ->
    let* k = parse_int k in
    Ok (Ch_ordered k)
  | [ "delayed"; cap ] ->
    let* cap = parse_int cap in
    Ok (Ch_delayed cap)
  | [ "both"; cap; k ] ->
    let* cap = parse_int cap in
    let* k = parse_int k in
    Ok (Ch_both (cap, k))
  | _ -> err "bad chan rule %S" v

let parse_phase s =
  let fields =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  if fields = [] then err "empty phase"
  else
    let rec go sched delay crash faults chan lasts = function
      | [] ->
        Ok
          {
            sched = Option.value sched ~default:S_all;
            delay = Option.value delay ~default:(D_const 1);
            crash = Option.value crash ~default:C_none;
            faults = List.rev faults;
            chan = Option.value chan ~default:Ch_none;
            lasts;
          }
      | f :: rest -> (
        match String.index_opt f '=' with
        | None -> err "field %S is not key=value" f
        | Some i -> (
          let key = String.sub f 0 i in
          let v = String.sub f (i + 1) (String.length f - i - 1) in
          match key with
          | "sched" ->
            if sched <> None then err "duplicate sched field"
            else
              let* r = parse_sched v in
              go (Some r) delay crash faults chan lasts rest
          | "delay" ->
            if delay <> None then err "duplicate delay field"
            else
              let* r = parse_delay v in
              go sched (Some r) crash faults chan lasts rest
          | "crash" ->
            if crash <> None then err "duplicate crash field"
            else
              let* r = parse_crash v in
              go sched delay (Some r) faults chan lasts rest
          | "fault" ->
            let* r = parse_fault v in
            go sched delay crash (r :: faults) chan lasts rest
          | "chan" ->
            if chan <> None then err "duplicate chan field"
            else
              let* r = parse_chan v in
              go sched delay crash faults (Some r) lasts rest
          | "for" ->
            if lasts <> None then err "duplicate for field"
            else
              let* n = parse_int v in
              if n < 1 then err "for=%d: duration must be >= 1" n
              else go sched delay crash faults chan (Some n) rest
          | _ -> err "unknown field %S" key))
    in
    go None None None [] None None fields

let of_spec spec =
  let phases = String.split_on_char '|' spec |> List.map String.trim in
  let rec go acc = function
    | [] -> Ok (make (List.rev acc))
    | s :: rest ->
      let* ph = parse_phase s in
      go (ph :: acc) rest
  in
  if phases = [] || List.exists (fun s -> s = "") phases then
    Error "empty phase in spec"
  else go [] phases

(* ---- compilation ---- *)

let has_faults t = List.exists (fun ph -> ph.faults <> []) t

let has_restart t =
  List.exists (fun ph -> match ph.crash with C_flaky _ -> true | _ -> false) t

let has_chan t = List.exists (fun ph -> ph.chan <> Ch_none) t

let latency_of t =
  let t = make t in
  if has_faults t then Adversary.Variable
  else
    match t with
    | [ { delay = D_const k; _ } ] -> Adversary.Fixed k
    | [ { delay = D_max; _ } ] -> Adversary.Maximal
    | _ -> Adversary.Variable

let compile_sched = function
  | S_all -> Schedule.all
  | S_solo pid -> fun (o : Adversary.oracle) -> Schedule.solo (pid mod o.p) o
  | S_rr w -> Schedule.round_robin ~width:w
  | S_random pr -> Schedule.random_subset ~prob:pr
  | S_harmonic -> Schedule.harmonic_speeds
  | S_laggard -> Schedule.adaptive_laggard

let compile_delay = function
  | D_const k -> fun (_ : Adversary.oracle) ~src:_ ~dst:_ -> k
  | D_max -> Delay.maximal
  | D_uniform -> Delay.uniform
  | D_bimodal pr -> Delay.bimodal ~slow_fraction:pr
  | D_stage k -> Delay.stage_batched ~stage_len:k
  | D_partition k ->
    fun (o : Adversary.oracle) ~src ~dst ->
      Delay.partition ~split:(max 1 (o.p / k)) o ~src ~dst
  | D_target m -> Delay.targeted ~victims:(fun pid -> pid mod m = 0)
  | D_churn (a, b) -> Delay.churn ~calm:a ~storm:b

let compile_crash ~start = function
  | C_none -> fun (_ : Adversary.oracle) -> []
  | C_at (tm, cnt, stride) ->
    fun (o : Adversary.oracle) ->
      if o.time () = start + tm then
        List.filter
          (fun pid -> pid < o.p)
          (List.init cnt (fun i -> 1 + (i * stride)))
      else []
  | C_staggered every ->
    (* like Crash.staggered, but sparing the designated survivor pid 0 *)
    fun (o : Adversary.oracle) ->
      let now = o.time () in
      if now > start && (now - start) mod every = 0 then begin
        let rec lowest pid =
          if pid >= o.p then []
          else if o.alive pid then [ pid ]
          else lowest (pid + 1)
        in
        lowest 1
      end
      else []
  | C_poisson rate -> Crash.poisson ~survivor:0 ~rate
  | C_flaky (up, down) -> fst (Crash.flaky ~survivor:0 ~up ~down ())

let compile_restart = function
  | C_flaky (up, down) -> Some (snd (Crash.flaky ~survivor:0 ~up ~down ()))
  | _ -> None

(* [K] indexes the ordering-rule family so one integer gene spans the
   whole spectrum: 0 lowest-first, 1 highest-first, 2 defer-the-informed,
   and any larger K a rotating grant with offset K. *)
let compile_chan_order k =
  match k mod 4 with
  | 0 -> Chan.ordered_low
  | 1 -> Chan.ordered_high
  | 2 -> Chan.most_informed_last
  | _ -> Chan.rotor k

let compile_chan = function
  | Ch_none -> (None, None)
  | Ch_ordered k -> (Some (compile_chan_order k), None)
  | Ch_delayed cap -> (None, Some (Chan.batched ~cap))
  | Ch_both (cap, k) ->
    (Some (compile_chan_order k), Some (Chan.batched ~cap))

let compile_faults = function
  | [] -> None
  | faults ->
    Some
      (Fault.all
         (map_seq
            (function
              | F_drop pr -> Fault.drop ~prob:pr
              | F_dup (pr, n) -> Fault.duplicate ~copies:n ~prob:pr
              | F_reorder pr -> Fault.reorder ~prob:pr)
            faults))

let into t =
  let t = make t in
  let name = "strategy:" ^ to_spec t in
  let arr = Array.of_list t in
  let n = Array.length arr in
  let starts = Array.make n 0 in
  for i = 1 to n - 1 do
    starts.(i) <-
      starts.(i - 1)
      + (match arr.(i - 1).lasts with Some k -> k | None -> 0)
  done;
  let phase_at now =
    let i = ref (n - 1) in
    while !i > 0 && starts.(!i) > now do
      decr i
    done;
    !i
  in
  let scheds = Array.map (fun ph -> compile_sched ph.sched) arr in
  let delays = Array.map (fun ph -> compile_delay ph.delay) arr in
  let crashes =
    Array.mapi (fun i ph -> compile_crash ~start:starts.(i) ph.crash) arr
  in
  let restarts = Array.map (fun ph -> compile_restart ph.crash) arr in
  let faults = Array.map (fun ph -> compile_faults ph.faults) arr in
  let schedule (o : Adversary.oracle) = scheds.(phase_at (o.time ())) o in
  let delay (o : Adversary.oracle) ~src ~dst =
    delays.(phase_at (o.time ())) o ~src ~dst
  in
  let crash (o : Adversary.oracle) = crashes.(phase_at (o.time ())) o in
  let adv =
    Adversary.with_latency (latency_of t)
      (Adversary.make ~name ~schedule ~delay ~crash)
  in
  let adv =
    if has_faults t then
      Adversary.with_faults
        (fun (o : Adversary.oracle) ~src ~dst ->
          match faults.(phase_at (o.time ())) with
          | None -> Adversary.Deliver
          | Some f -> f o ~src ~dst)
        adv
    else adv
  in
  let adv =
    if has_restart t then
      Adversary.with_restart
        (fun (o : Adversary.oracle) ->
          match restarts.(phase_at (o.time ())) with
          | None -> []
          | Some r -> r o)
        adv
    else adv
  in
  if has_chan t then begin
    let chans = Array.map (fun ph -> compile_chan ph.chan) arr in
    (* a phase without an ordering rule declines arbitration (collide);
       one without a hold rule releases in the submission slot *)
    Adversary.with_channel
      {
        Adversary.chan_name = "strategy";
        order =
          Some
            (fun (o : Adversary.oracle) contenders ->
              match fst chans.(phase_at (o.time ())) with
              | Some f -> f o contenders
              | None -> None);
        hold =
          Some
            (fun (o : Adversary.oracle) ~src ->
              match snd chans.(phase_at (o.time ())) with
              | Some h -> h o ~src
              | None -> 0);
      }
      adv
  end
  else adv

(* ---- genes ---- *)

let genes t =
  let acc = ref [] in
  let push x = acc := x :: !acc in
  let pushi x = push (float_of_int x) in
  List.iter
    (fun ph ->
      (match ph.sched with
      | S_all | S_harmonic | S_laggard -> ()
      | S_solo k | S_rr k -> pushi k
      | S_random pr -> push pr);
      (match ph.delay with
      | D_max | D_uniform -> ()
      | D_const k | D_stage k | D_partition k | D_target k -> pushi k
      | D_bimodal pr -> push pr
      | D_churn (a, b) ->
        pushi a;
        pushi b);
      (match ph.crash with
      | C_none -> ()
      | C_at (tm, n, s) ->
        pushi tm;
        pushi n;
        pushi s
      | C_staggered e -> pushi e
      | C_poisson r -> push r
      | C_flaky (u, dn) ->
        pushi u;
        pushi dn);
      List.iter
        (function
          | F_drop pr | F_reorder pr -> push pr
          | F_dup (pr, n) ->
            push pr;
            pushi n)
        ph.faults;
      (match ph.chan with
      | Ch_none -> ()
      | Ch_ordered k -> pushi k
      | Ch_delayed cap -> pushi cap
      | Ch_both (cap, k) ->
        pushi cap;
        pushi k);
      match ph.lasts with None -> () | Some k -> pushi k)
    (make t);
  Array.of_list (List.rev !acc)

let with_genes t g =
  let i = ref 0 in
  let next old =
    if !i < Array.length g then begin
      let v = g.(!i) in
      incr i;
      v
    end
    else old
  in
  let nexti old = int_of_float (Float.round (next (float_of_int old))) in
  let map_ph ph =
    let sched =
      match ph.sched with
      | (S_all | S_harmonic | S_laggard) as s -> s
      | S_solo k -> S_solo (nexti k)
      | S_rr w -> S_rr (nexti w)
      | S_random pr -> S_random (next pr)
    in
    let delay =
      match ph.delay with
      | (D_max | D_uniform) as d -> d
      | D_const k -> D_const (nexti k)
      | D_stage k -> D_stage (nexti k)
      | D_partition k -> D_partition (nexti k)
      | D_target k -> D_target (nexti k)
      | D_bimodal pr -> D_bimodal (next pr)
      | D_churn (a, b) ->
        let a = nexti a in
        let b = nexti b in
        D_churn (a, b)
    in
    let crash =
      match ph.crash with
      | C_none -> C_none
      | C_at (tm, n, s) ->
        let tm = nexti tm in
        let n = nexti n in
        let s = nexti s in
        C_at (tm, n, s)
      | C_staggered e -> C_staggered (nexti e)
      | C_poisson r -> C_poisson (next r)
      | C_flaky (u, dn) ->
        let u = nexti u in
        let dn = nexti dn in
        C_flaky (u, dn)
    in
    let faults =
      map_seq
        (function
          | F_drop pr -> F_drop (next pr)
          | F_reorder pr -> F_reorder (next pr)
          | F_dup (pr, n) ->
            let pr = next pr in
            let n = nexti n in
            F_dup (pr, n))
        ph.faults
    in
    let chan =
      match ph.chan with
      | Ch_none -> Ch_none
      | Ch_ordered k -> Ch_ordered (nexti k)
      | Ch_delayed cap -> Ch_delayed (nexti cap)
      | Ch_both (cap, k) ->
        let cap = nexti cap in
        let k = nexti k in
        Ch_both (cap, k)
    in
    let lasts = Option.map (fun k -> nexti k) ph.lasts in
    { sched; delay; crash; faults; chan; lasts }
  in
  make (map_seq map_ph (make t))

(* ---- search support ---- *)

let repair ~space ~p t =
  let t = make t in
  let delaggard t =
    (* restarts reset local progress, so completion rests entirely on
       the never-crashed pid 0 — which solo/laggard scheduling is free
       to starve forever (the fuzz suite's livelock-exclusion rule) *)
    if has_restart t then
      map_seq
        (fun ph ->
          match ph.sched with
          | S_laggard | S_solo _ -> { ph with sched = S_all }
          | _ -> ph)
        t
    else t
  in
  match space with
  | Full -> t
  | Live -> delaggard t
  | In_model ->
    (* the paper's arena: delay + crash/restart adversity only — message
       faults (loss, duplication, reordering) are beyond the model *)
    delaggard (map_seq (fun ph -> { ph with faults = [] }) t)
  | Quorum_safe ->
    (* keep a majority alive and every pid stepping infinitely often;
       faults off (lossy networks can stall quorum emulation forever) *)
    let minority = max 0 ((p - 1) / 2) in
    mapi_seq
      (fun i ph ->
        let sched =
          match ph.sched with
          | S_laggard | S_solo _ -> S_all
          | S_random pr when pr < 0.2 -> S_random 0.2
          | s -> s
        in
        let crash =
          (* crashes in the first phase only, so phases cannot
             cumulatively kill a majority *)
          match ph.crash with
          | C_at (tm, n, s) when i = 0 -> C_at (tm, min n minority, s)
          | _ -> C_none
        in
        (* contention rules stay off: on a silent channel they can
           starve quorum-dependent algorithms forever *)
        { ph with sched; crash; faults = []; chan = Ch_none })
      t

let pick rng l = List.nth l (Rng.int rng (List.length l))

let random_prob rng = norm_prob (Rng.float rng 1.0)

let random_sched rng ~space ~p =
  match space with
  | Quorum_safe ->
    pick rng
      [
        S_all;
        S_rr (1 + Rng.int rng (max 1 p));
        S_random (norm_prob (0.2 +. Rng.float rng 0.8));
        S_harmonic;
      ]
  | Full | Live | In_model ->
    pick rng
      [
        S_all;
        S_solo (Rng.int rng (max 1 p));
        S_rr (1 + Rng.int rng (max 1 p));
        S_random (random_prob rng);
        S_harmonic;
        S_laggard;
      ]

let random_delay rng ~d ~tsk =
  pick rng
    [
      D_const (1 + Rng.int rng (max 1 (2 * d)));
      D_max;
      D_uniform;
      D_bimodal (random_prob rng);
      D_stage (1 + Rng.int rng (max 1 d));
      D_partition (2 + Rng.int rng 7);
      D_target (2 + Rng.int rng 7);
      D_churn (1 + Rng.int rng (max 1 (tsk / 2)), 1 + Rng.int rng (max 1 d));
    ]

let random_crash rng ~space ~p ~tsk =
  match space with
  | Quorum_safe ->
    pick rng
      [
        C_none;
        C_at (Rng.int rng (max 1 tsk), Rng.int rng (max 1 ((p + 1) / 2)), 1);
      ]
  | Full | Live | In_model ->
    pick rng
      [
        C_none;
        C_at
          ( Rng.int rng (max 1 tsk),
            Rng.int rng (max 1 p),
            1 + Rng.int rng 3 );
        C_staggered (1 + Rng.int rng (max 1 (tsk / 4 + 1)));
        C_poisson (quant3 (0.005 +. Rng.float rng 0.05));
        C_flaky
          (1 + Rng.int rng (max 1 (tsk / 2)), 1 + Rng.int rng (max 1 (tsk / 4)));
      ]

let random_fault rng =
  pick rng
    [
      F_drop (random_prob rng);
      F_dup (norm_prob (Rng.float rng 0.5), 1 + Rng.int rng 3);
      F_reorder (random_prob rng);
    ]

let random_faults rng ~space =
  match space with
  | Quorum_safe | In_model -> []
  | Full | Live -> (
    match Rng.int rng 4 with
    | 0 | 1 -> []
    | 2 -> [ random_fault rng ]
    | _ ->
      let a = random_fault rng in
      let b = random_fault rng in
      [ a; b ])

let random_chan rng ~space ~d =
  match space with
  | Quorum_safe -> Ch_none
  | Full | Live | In_model -> (
    match Rng.int rng 4 with
    | 0 -> Ch_none
    | 1 -> Ch_ordered (Rng.int rng 8)
    | 2 -> Ch_delayed (1 + Rng.int rng (max 1 d))
    | _ -> Ch_both (1 + Rng.int rng (max 1 d), Rng.int rng 8))

let random_phase rng ~space ~chan ~p ~tsk ~d =
  let sched = random_sched rng ~space ~p in
  let delay = random_delay rng ~d ~tsk in
  let crash = random_crash rng ~space ~p ~tsk in
  let faults = random_faults rng ~space in
  (* only drawn when the caller targets a shared-channel run: keeping
     the default path free of extra draws preserves the RNG sequence of
     every existing point-to-point search *)
  let chan = if chan then random_chan rng ~space ~d else Ch_none in
  let lasts = Some (1 + Rng.int rng (max 1 tsk)) in
  { sched; delay; crash; faults; chan; lasts }

let random ?(chan = false) ~rng ~space ~p ~t:tsk ~d () =
  let n = if Rng.int rng 10 < 3 then 2 else 1 in
  repair ~space ~p
    (init_seq n (fun _ -> random_phase rng ~space ~chan ~p ~tsk ~d))

let nudge_int rng v =
  match Rng.int rng 4 with
  | 0 -> v + 1
  | 1 -> max 1 (v - 1)
  | 2 -> v * 2
  | _ -> max 1 (v / 2)

let nudge_prob rng v = norm_prob (v +. Rng.float rng 0.5 -. 0.25)

let nudge_sched rng = function
  | S_solo k -> S_solo (max 0 (nudge_int rng k))
  | S_rr w -> S_rr (nudge_int rng w)
  | S_random pr -> S_random (nudge_prob rng pr)
  | s -> s

let nudge_delay rng = function
  | D_const k -> D_const (nudge_int rng k)
  | D_stage k -> D_stage (nudge_int rng k)
  | D_partition k -> D_partition (nudge_int rng k)
  | D_target m -> D_target (nudge_int rng m)
  | D_bimodal pr -> D_bimodal (nudge_prob rng pr)
  | D_churn (a, b) ->
    if Rng.bool rng then
      let a = nudge_int rng a in
      D_churn (a, b)
    else
      let b = nudge_int rng b in
      D_churn (a, b)
  | d -> d

let nudge_crash rng = function
  | C_at (tm, n, s) -> (
    match Rng.int rng 3 with
    | 0 -> C_at (max 0 (nudge_int rng tm), n, s)
    | 1 -> C_at (tm, max 0 (nudge_int rng n), s)
    | _ -> C_at (tm, n, nudge_int rng s))
  | C_staggered e -> C_staggered (nudge_int rng e)
  | C_poisson r -> C_poisson (norm_prob (r +. Rng.float rng 0.04 -. 0.02))
  | C_flaky (u, dn) ->
    if Rng.bool rng then
      let u = nudge_int rng u in
      C_flaky (u, dn)
    else
      let dn = nudge_int rng dn in
      C_flaky (u, dn)
  | C_none -> C_none

let nudge_fault rng = function
  | F_drop pr -> F_drop (nudge_prob rng pr)
  | F_reorder pr -> F_reorder (nudge_prob rng pr)
  | F_dup (pr, n) ->
    if Rng.bool rng then F_dup (nudge_prob rng pr, n)
    else F_dup (pr, clamp 1 8 (nudge_int rng n))

let nudge_faults rng ~space = function
  | [] -> random_faults rng ~space
  | faults ->
    let idx = Rng.int rng (List.length faults) in
    mapi_seq (fun i f -> if i = idx then nudge_fault rng f else f) faults

let mutate ?(chan = false) ~rng ~space ~p ~t:tsk ~d str =
  let str = make str in
  let n = List.length str in
  let idx = Rng.int rng n in
  let apply f = mapi_seq (fun i ph -> if i = idx then f ph else ph) str in
  let str' =
    (* the chan arm only exists when the caller targets a channel run,
       so point-to-point searches keep their exact draw sequence *)
    match Rng.int rng (if chan then 11 else 10) with
    | 10 -> apply (fun ph -> { ph with chan = random_chan rng ~space ~d })
    | 0 | 1 -> apply (fun ph -> { ph with sched = nudge_sched rng ph.sched })
    | 2 | 3 -> apply (fun ph -> { ph with delay = nudge_delay rng ph.delay })
    | 4 -> apply (fun ph -> { ph with crash = nudge_crash rng ph.crash })
    | 5 ->
      apply (fun ph -> { ph with faults = nudge_faults rng ~space ph.faults })
    | 6 -> apply (fun ph -> { ph with sched = random_sched rng ~space ~p })
    | 7 -> apply (fun ph -> { ph with delay = random_delay rng ~d ~tsk })
    | 8 ->
      apply (fun ph -> { ph with crash = random_crash rng ~space ~p ~tsk })
    | _ -> (
      (* phase surgery *)
      match Rng.int rng 3 with
      | 0 when n > 1 -> List.filteri (fun i _ -> i <> idx) str
      | 1 when n < max_phases ->
        List.concat
          (mapi_seq
             (fun i ph ->
               if i = idx then
                 [ { ph with lasts = Some (1 + Rng.int rng (max 1 tsk)) }; ph ]
               else [ ph ])
             str)
      | _ ->
        apply (fun ph ->
            { ph with lasts = Option.map (nudge_int rng) ph.lasts }))
  in
  repair ~space ~p str'

let crossover ~rng ~space ~p a b =
  let aa = Array.of_list (make a) in
  let ba = Array.of_list (make b) in
  let n = Array.length (if Rng.bool rng then aa else ba) in
  let phs =
    init_seq n (fun i ->
        let av = if i < Array.length aa then Some aa.(i) else None in
        let bv = if i < Array.length ba then Some ba.(i) else None in
        match (av, bv) with
        | Some x, Some y ->
          let sched = (if Rng.bool rng then x else y).sched in
          let delay = (if Rng.bool rng then x else y).delay in
          let crash = (if Rng.bool rng then x else y).crash in
          let faults = (if Rng.bool rng then x else y).faults in
          let chan =
            (* no extra draw unless a parent carries a chan rule:
               point-to-point crossovers keep their RNG sequence *)
            if x.chan = Ch_none && y.chan = Ch_none then Ch_none
            else (if Rng.bool rng then x else y).chan
          in
          let lasts = (if Rng.bool rng then x else y).lasts in
          { sched; delay; crash; faults; chan; lasts }
        | Some x, None | None, Some x -> x
        | None, None -> assert false)
  in
  repair ~space ~p phs
