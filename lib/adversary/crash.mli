(** Crash-failure patterns, and (beyond the paper's model) recovery.

    The model admits any pattern of crash failures with at least one
    surviving processor (the engine enforces the survivor rule). Crashes
    can be seen as infinite delays; algorithms must remain correct and
    their work bounds hold regardless.

    Recovery is a docs/FAULTS.md extension: a {!restart} policy names
    crashed pids to bring back {e with reset local state} (the engine
    re-runs the algorithm's [init]). Restart policies ride on
    [Adversary.restart] and cost nothing when absent. *)

open Doall_sim

type t = Adversary.oracle -> int list

type restart = Adversary.oracle -> int list
(** Called once per tick (before {!t}); returns crashed pids to revive. *)

val none : t
val no_restart : restart

val at_time : time:int -> pids:int list -> t
(** Crash exactly [pids] at [time]. *)

val all_but_one : survivor:int -> time:int -> t
(** At [time], crash every processor except [survivor] — the adversary's
    strongest legal crash pattern. *)

val poisson : ?survivor:int -> rate:float -> t
(** Each unit, each live processor crashes independently with probability
    [rate] — except [survivor] (default pid 0), which is never listed, so
    liveness is deterministic rather than left to the engine's
    last-one-alive guard. One RNG draw per pid is consumed regardless of
    the filter, so the survivor choice never shifts later draws. *)

val staggered : every:int -> t
(** Crash the lowest live pid every [every] time units. *)

val restart_after : delay:int -> restart
(** Revive each crashed processor [delay] ticks after it is first seen
    down. Stateful (remembers sightings) — build a fresh policy per run. *)

val flaky : ?survivor:int -> up:int -> down:int -> unit -> t * restart
(** A deterministic churn cycle: every processor except [survivor]
    (default pid 0) repeats [up] ticks alive, [down] ticks crashed, with
    per-pid phase offsets so outages stagger. Returns the matching
    (crash, restart) pair — wire both, e.g. via {!into_recovering}. *)

val into : name:string -> t -> Adversary.t
(** Wrap with fair scheduling and immediate delivery. *)

val into_recovering : name:string -> crash:t -> restart:restart -> Adversary.t
(** Like {!into} but with a recovery policy attached. *)
