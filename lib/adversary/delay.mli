(** Message-delay policies.

    Each value is a function suitable for the [delay] field of
    {!Doall_sim.Adversary.t}: it picks a latency for one point-to-point
    message submitted now. The engine clamps results into [1 .. d], so a
    policy may be written for "any d" and stays legal under every bound. *)

open Doall_sim

type t = Adversary.oracle -> src:int -> dst:int -> int

val immediate : t
(** Every message arrives after one time unit — the fastest legal
    network. *)

val constant : int -> t
(** Fixed latency (clamped to the run's [d] by the engine). *)

val maximal : t
(** Every message takes the full bound [d]. *)

val uniform : t
(** Latency uniform on [1..d], drawn from the adversary's stream. *)

val bimodal : slow_fraction:float -> t
(** Mostly-fast network with a fraction of worst-case stragglers:
    latency 1 with probability [1 - slow_fraction], else [d]. *)

val per_destination : (int -> int) -> t
(** [per_destination f] delays every message to [dst] by [f dst] —
    models heterogeneous links (e.g. half the cluster behind a slow
    switch). *)

val stage_batched : stage_len:int -> t
(** Deliver at the next multiple of [stage_len] strictly after now — the
    delivery rule of the lower-bound constructions (all messages sent
    during a stage arrive at its end). Requires [stage_len >= 1]; legal
    whenever [stage_len <= d]. *)

val partition : split:int -> t
(** A soft network partition: latency 1 within each side of the cut
    ([pid < split] vs [pid >= split]), the full [d] across it. Models a
    cluster split across two slow-linked sites. *)

val churn : calm:int -> storm:int -> t
(** Alternating regimes: [calm] time units of latency 1, then [storm]
    units where everything takes the full [d], repeating. Models
    congestion waves. *)

val targeted : victims:(int -> bool) -> t
(** Every message {e to} a victim takes the full [d]; all other traffic
    is fast. Models a fixed set of processors behind a bad link. *)

val into : ?latency:Adversary.latency -> name:string -> t -> Adversary.t
(** Wrap a delay policy into a full adversary with fair scheduling and no
    crashes. Pass [latency] when the policy's behaviour matches one of
    the constant declarations ({!Adversary.latency}) — e.g.
    [~latency:Adversary.Maximal] for {!maximal} — to unlock the engine's
    shared-broadcast fast path. Defaults to [Variable] (always sound). *)
