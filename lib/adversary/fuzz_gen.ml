open Doall_sim

type case = {
  p : int;
  t : int;
  d : int;
  transport : Config.transport;
  strategy : Strategy.t;
}

let case ~seed ~quorum_safe =
  let rng = Rng.create seed in
  let p = (if quorum_safe then 3 else 1) + Rng.int rng 12 in
  let t = 1 + Rng.int rng 48 in
  let d = 1 + Rng.int rng 12 in
  (* roughly a quarter of the non-quorum cases exercise the shared
     channel; quorum algorithms stay point-to-point because silent
     collisions can starve a quorum indefinitely. Channel strategies
     draw from In_model (the engine rejects fault injection on the
     channel) with the contention-rule dimension open. *)
  let transport =
    if (not quorum_safe) && Rng.int rng 4 = 0 then
      Config.Channel (if Rng.bool rng then Config.Detectable else Config.Silent)
    else Config.Ptp
  in
  let chan = transport <> Config.Ptp in
  let space =
    if quorum_safe then Strategy.Quorum_safe
    else if chan then Strategy.In_model
    else Strategy.Live
  in
  let strategy = Strategy.random ~chan ~rng ~space ~p ~t ~d () in
  { p; t; d; transport; strategy }

let labels =
  [
    "trivial"; "da-q2"; "da-q5"; "paran1"; "paran2"; "padet";
    "padet-throttled"; "paran1-fanout2"; "coord"; "awq-q4";
  ]
