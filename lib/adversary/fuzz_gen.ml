open Doall_sim

type case = { p : int; t : int; d : int; strategy : Strategy.t }

let case ~seed ~quorum_safe =
  let rng = Rng.create seed in
  let p = (if quorum_safe then 3 else 1) + Rng.int rng 12 in
  let t = 1 + Rng.int rng 48 in
  let d = 1 + Rng.int rng 12 in
  let space = if quorum_safe then Strategy.Quorum_safe else Strategy.Live in
  let strategy = Strategy.random ~rng ~space ~p ~t ~d () in
  { p; t; d; strategy }

let labels =
  [
    "trivial"; "da-q2"; "da-q5"; "paran1"; "paran2"; "padet";
    "padet-throttled"; "paran1-fanout2"; "coord"; "awq-q4";
  ]
