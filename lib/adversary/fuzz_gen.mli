(** The fuzz suite's seed -> failing-case derivation, shared with the
    CLI so a printed reproducer seed replays the exact run.

    One integer seed deterministically yields the instance dimensions
    and a random {!Strategy} drawn from the [Live] space (or
    [Quorum_safe] for quorum algorithms): [test/test_fuzz.ml] fuzzes
    with it, and [doall fuzz --replay <seed>] rebuilds the identical
    case from the same seed. *)

type case = {
  p : int;
  t : int;
  d : int;
  transport : Doall_sim.Config.transport;
  strategy : Strategy.t;
}

val case : seed:int -> quorum_safe:bool -> case
(** Everything about the fuzz run except the algorithm under test (named
    separately by its label). The run itself also uses [seed] as its
    engine seed. About a quarter of non-quorum cases land on a shared
    channel (silent or detectable collisions, strategies drawn from
    [In_model] with the contention-rule dimension open); [quorum_safe]
    cases are always point-to-point. *)

val labels : string list
(** The algorithm labels the fuzz suite covers — the legal values of
    [doall fuzz --algo] (includes non-registry variants such as
    ["padet-throttled"]). *)
