(** Adversary strategies as data: a combinator DSL over scheduling,
    delay, crash/restart and message-fault rules.

    A strategy is a non-empty sequence of {e phases}; each phase names
    one rule per adversary dimension plus an optional duration, and the
    compiled adversary switches phases as global time crosses the
    cumulative phase boundaries (the last phase runs forever). Every
    rule is parameterized by small integer/float {e genes}, so whole
    strategies round-trip through a compact spec string
    ({!to_spec}/{!of_spec}, in the style of {!Fault.of_spec}) and can be
    mutated/crossed over by the search in {!Synth}.

    Strategies compile ({!into}) to a plain {!Doall_sim.Adversary.t}
    that declares the correct {!Doall_sim.Adversary.latency} class: a
    strategy with any fault rule always compiles to [Variable], and only
    a single-phase constant/maximal delay may declare [Fixed]/[Maximal]
    — so the engine's shared-broadcast stream gate stays sound
    (docs/PERFORMANCE.md).

    Determinism: compilation is pure, every random rule draws from the
    run's oracle RNG, and {!random}/{!mutate}/{!crossover} draw only
    from the [rng] they are handed — a strategy spec plus a run seed
    replays bit-identically at any pool size. *)

open Doall_sim

(** Who advances each tick (see {!Schedule}). *)
type sched =
  | S_all
  | S_solo of int  (** only pid [k mod p] ever steps *)
  | S_rr of int  (** rotating window of this width *)
  | S_random of float  (** each pid steps with this probability *)
  | S_harmonic
  | S_laggard  (** {!Schedule.adaptive_laggard} *)

(** Per-message latency (see {!Delay}); the engine clamps into [1..d]. *)
type delay =
  | D_const of int
  | D_max
  | D_uniform
  | D_bimodal of float  (** slow fraction *)
  | D_stage of int  (** {!Delay.stage_batched} stage length *)
  | D_partition of int  (** soft partition at [p / k] *)
  | D_target of int  (** full delay to every pid with [pid mod k = 0] *)
  | D_churn of int * int  (** calm, storm *)

(** Crash (and, for [C_flaky], restart) rules. Every rule spares pid 0,
    the designated survivor — matching the chaos-registry convention,
    so liveness never rests on the engine's last-one-alive guard. Rules
    fire relative to their phase's start time. *)
type crash =
  | C_none
  | C_at of int * int * int
      (** [C_at (time, count, stride)]: at phase-relative [time], crash
          the [count] pids [1, 1+stride, 1+2*stride, ...] (those < p) *)
  | C_staggered of int  (** lowest live pid >= 1, every [k] ticks *)
  | C_poisson of float  (** per-pid crash probability per tick *)
  | C_flaky of int * int
      (** [up]/[down] churn cycle with restarts ({!Crash.flaky}) *)

(** Message faults (see {!Fault}); beyond the paper's model. *)
type fault =
  | F_drop of float
  | F_dup of float * int  (** prob, extra copies *)
  | F_reorder of float

(** Shared-channel contention rules (see {!Chan}); inert on
    point-to-point runs, so a strategy with a chan rule is still a valid
    adversary everywhere. [Ch_ordered k] picks an ordering-rule family
    member by [k] (0 lowest-first, 1 highest-first, 2
    defer-the-informed, else a rotating grant with offset [k]);
    [Ch_delayed cap] batches transmission releases to multiples of
    [cap] slots (engine-clamped to the delay bound); [Ch_both] combines
    the two. *)
type chan =
  | Ch_none
  | Ch_ordered of int
  | Ch_delayed of int
  | Ch_both of int * int  (** cap, ordering k *)

type phase = {
  sched : sched;
  delay : delay;
  crash : crash;
  faults : fault list;  (** chained first-decision-wins, as {!Fault.all} *)
  chan : chan;  (** shared-channel contention rule for this phase *)
  lasts : int option;
      (** phase duration in ticks; [None] = runs forever (final phase) *)
}

type t = phase list
(** Non-empty once normalized by {!make} (which every API entry point
    applies): at most 4 phases, every numeric gene clamped to its legal
    range, probabilities quantized to 3 decimals (so [%g] printing
    round-trips exactly), every non-final phase given a duration and the
    final phase's duration dropped. *)

(** Search spaces: which strategies a search may generate.
    [Full] is unrestricted (may livelock honest algorithms — runs then
    hit the time cap). [Live] guarantees every [`Any_survivor] algorithm
    completes: pid 0 is never crashed, and whenever restarts (flaky) are
    present anywhere, starvation-prone schedules (solo, laggard) are
    replaced — the fuzz suite's liveness rule. [In_model] is [Live]
    further restricted to the paper's model: scheduling, delay and
    crash/restart adversity only, no message faults (loss, duplication
    and reordering are beyond the model). [Quorum_safe]
    additionally keeps a majority alive (minority [C_at] crashes in the
    first phase only), drops faults, and keeps every pid stepping
    infinitely often — what [`Needs_quorum] algorithms require. *)
type space = Full | Live | In_model | Quorum_safe

val space_to_string : space -> string
val space_of_string : string -> (space, string) result

val phase :
  ?sched:sched ->
  ?delay:delay ->
  ?crash:crash ->
  ?faults:fault list ->
  ?chan:chan ->
  ?lasts:int ->
  unit ->
  phase
(** Phase builder; defaults are fair: everyone steps, latency 1, no
    crashes, no faults, no contention rules. *)

val make : phase list -> t
(** Normalize (see {!t}). [make [] ] yields the fair single phase. *)

val usage : string
(** One-paragraph grammar description for CLI errors. *)

val to_spec : t -> string
(** Canonical spec string: phases joined by ['|'], fields by [';'], rule
    arguments by [':'] — e.g.
    ["sched=laggard;delay=max;fault=drop:0.5;for=64|sched=all;delay=const:1"]. *)

val of_spec : string -> (t, string) result
(** Parse a spec (inverse of {!to_spec} up to normalization):
    [of_spec s] followed by {!to_spec} is a fixpoint. *)

val has_faults : t -> bool
val has_restart : t -> bool

val has_chan : t -> bool
(** Any phase carries a shared-channel contention rule. *)

val latency_of : t -> Adversary.latency
(** The declaration {!into} makes: [Variable] if any fault rule is
    present or the strategy has several phases; [Fixed k] / [Maximal]
    only for a fault-free single phase with [D_const k] / [D_max]. *)

val into : t -> Adversary.t
(** Compile to a runnable adversary named ["strategy:" ^ to_spec].
    Pure and stateless: safe to call once per run from worker domains
    ({!Doall_core.Runner}'s thread-safety contract). *)

(** {1 Search support} *)

val repair : space:space -> p:int -> t -> t
(** Enforce a space's liveness rules (see {!space}), deterministically
    replacing offending rules; applied by {!random}, {!mutate} and
    {!crossover} to their results. *)

val random :
  ?chan:bool -> rng:Rng.t -> space:space -> p:int -> t:int -> d:int -> unit ->
  t
(** A random strategy scaled to the instance (durations ~ [t], delays ~
    [d], window widths ~ [p]). [~chan:true] additionally draws
    shared-channel contention rules (for searches targeting a channel
    transport); the default [false] draws none and keeps the RNG
    sequence of point-to-point searches unchanged. *)

val mutate :
  ?chan:bool -> rng:Rng.t -> space:space -> p:int -> t:int -> d:int -> t -> t
(** One mutation step: mostly numeric-gene nudges, sometimes structural
    (replace a rule, add/drop a fault, split/drop a phase).
    [~chan:true] adds a replace-the-chan-rule move, as in {!random}. *)

val crossover : rng:Rng.t -> space:space -> p:int -> t -> t -> t
(** Field-wise uniform crossover of two parents, phase by phase. *)

val genes : t -> float array
(** The numeric genes in canonical AST order (ints as floats). *)

val with_genes : t -> float array -> t
(** Replace genes in the same order (extra entries ignored, missing ones
    keep their value), then normalize. *)
