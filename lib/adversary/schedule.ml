open Doall_sim

type t = Adversary.oracle -> bool array

let all = Adversary.all_active

let solo pid (o : Adversary.oracle) =
  Array.init o.p (fun i -> i = pid)

let round_robin ~width (o : Adversary.oracle) =
  if width < 1 then invalid_arg "Schedule.round_robin: width >= 1";
  let start = o.time () mod o.p in
  let active = Array.make o.p false in
  for k = 0 to min width o.p - 1 do
    active.((start + k) mod o.p) <- true
  done;
  active

let random_subset ~prob (o : Adversary.oracle) =
  Array.init o.p (fun _ -> Rng.float o.rng 1.0 < prob)

let harmonic_speeds (o : Adversary.oracle) =
  let now = o.time () in
  Array.init o.p (fun i -> now mod (i + 1) = 0)

let adaptive_laggard (o : Adversary.oracle) =
  let active = Array.make o.p true in
  let delayed = ref 0 in
  let budget = o.p / 2 in
  (try
     for pid = 0 to o.p - 1 do
       if !delayed >= budget then raise Exit;
       if o.alive pid && not (o.halted pid) then
         match o.would_perform pid with
         | Some task when not (o.task_done task) ->
           active.(pid) <- false;
           incr delayed
         | Some _ | None -> ()
     done
   with Exit -> ());
  active

let into ~name schedule =
  Adversary.with_latency (Adversary.Fixed 1)
    (Adversary.make ~name ~schedule ~delay:Delay.immediate
       ~crash:Adversary.no_crash)

let combine ~name ?schedule ?delay ?latency ?(crash = Adversary.no_crash)
    ?faults ?restart () =
  let schedule = Option.value schedule ~default:all in
  (* The implicit default delay is [immediate], a constant the engine may
     rely on; an explicit [delay] is opaque unless the caller also
     declares its latency. *)
  let delay, latency =
    match (delay, latency) with
    | None, None -> (Delay.immediate, Adversary.Fixed 1)
    | None, Some l -> (Delay.immediate, l)
    | Some f, None -> (f, Adversary.Variable)
    | Some f, Some l -> (f, l)
  in
  let adv =
    Adversary.with_latency latency
      (Adversary.make ~name ~schedule ~delay ~crash)
  in
  let adv =
    match faults with None -> adv | Some f -> Adversary.with_faults f adv
  in
  match restart with None -> adv | Some r -> Adversary.with_restart r adv
