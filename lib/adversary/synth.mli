(** Search-driven worst-case synthesis over the {!Strategy} DSL.

    A population evolutionary search (elitism + mutation + crossover,
    prior art [lib/perms/search.ml]) with a per-generation hill-climb of
    the incumbent best. Candidates are evaluated through a caller-
    supplied evaluator — {!Doall_core.Worstcase.evaluator} wires in
    {!Doall_core.Runner.run_spec} — fanned across a {!Doall_sim.Pool}
    (embarrassingly parallel, results in submission order).

    Determinism: all search randomness comes from [seed] and is drawn in
    the submitting domain only; duplicate candidates are deduplicated by
    spec string; the best-so-far comparison breaks score ties by the
    lexicographically smaller spec. With a deterministic evaluator the
    outcome is bit-identical for every [jobs >= 1] and across repeated
    runs. ([Wall_per_work] fitness and [?wall_cap_s] read the wall
    clock and are the documented exceptions.) *)

type eval = {
  e_work : int;
  e_messages : int;
  e_sigma : int;
  e_completed : bool;  (** false = the run hit its time cap *)
  e_violation : string option;
      (** an oracle-audited invariant violation: scores as an instant
          maximum under every fitness *)
  e_wall : float;  (** machine-dependent; used only by [Wall_per_work] *)
}
(** What one candidate run measured. *)

type fitness =
  | Work  (** maximize total work W *)
  | Effort  (** maximize W + M *)
  | Sigma  (** maximize completion time *)
  | Cap_hits
      (** hunt liveness stalls: a capped (incomplete) run dominates
          every completed one; ties broken by partial work *)
  | Wall_per_work
      (** maximize wall-clock seconds per unit of work — a performance-
          adversary; machine-dependent, hence never deterministic *)

val fitness_to_string : fitness -> string
val fitness_of_string : string -> (fitness, string) result

val score : fitness -> eval -> float
(** Higher is worse-for-the-algorithm, i.e. better for the search. Any
    invariant violation scores [infinity]. *)

type progress = {
  gen : int;
  evals : int;  (** evaluations spent so far *)
  best_score : float;
  best_spec : string;
  capped : int;  (** capped (incomplete) runs so far *)
  violations : int;
}
(** One generation's summary, also the best-so-far curve. *)

type outcome = {
  best : Strategy.t;
  best_spec : string;
  best_score : float;
  best_eval : eval;
  evals : int;
  capped : int;
  violations : (string * string) list;  (** (spec, violation) pairs *)
  history : progress list;  (** oldest first *)
}

val search :
  ?seed:int ->
  ?population:int ->
  ?elite:int ->
  ?space:Strategy.space ->
  ?init:Strategy.t list ->
  ?fitness:fitness ->
  ?chan:bool ->
  ?wall_cap_s:float ->
  ?on_generation:(progress -> unit) ->
  ?pool:Doall_sim.Pool.t ->
  ?jobs:int ->
  eval:(Strategy.t -> eval) ->
  p:int ->
  t:int ->
  d:int ->
  budget:int ->
  unit ->
  outcome
(** Spend up to [budget] unique evaluations looking for the worst
    strategy. [?init] seeds the first population (evaluated first, so
    even [budget < population] measures them); the rest is filled with
    {!Strategy.random} draws from [?space] (default [Live]). [?pool]
    reuses a caller-owned pool, else a transient one of [?jobs] domains
    is created. [?chan] (default false) is forwarded to
    {!Strategy.random} and {!Strategy.mutate}, letting the search draw
    shared-channel contention rules — set it when the evaluator runs
    candidates on a channel transport; leaving it off keeps every
    point-to-point search's RNG sequence (and thus its outcome)
    unchanged. [?wall_cap_s] stops launching new generations once the
    wall clock has run for that long (nondeterministic by nature —
    meant for CI smokes). [?on_generation] observes each generation's
    {!progress} as it completes. Raises [Invalid_argument] if
    [budget < 1]. *)
