(** Processor-scheduling policies: who advances at each time unit.

    Asynchrony in the model is exactly the adversary's freedom to insert
    arbitrary gaps between a processor's clock ticks. Each value here is
    a [schedule] function for {!Doall_sim.Adversary.t}. The engine
    guarantees at least one eligible processor steps per unit (time is
    defined by the fastest processor), so policies need not worry about
    deadlocking the clock. *)

open Doall_sim

type t = Adversary.oracle -> bool array

val all : t
(** Everyone steps — the synchronous-speed special case. *)

val solo : int -> t
(** Only one processor ever advances: the maximal-asynchrony execution in
    which a single survivor does all the work. *)

val round_robin : width:int -> t
(** A rotating window of [width] consecutive pids steps each unit. *)

val random_subset : prob:float -> t
(** Each processor independently steps with probability [prob]. *)

val harmonic_speeds : t
(** Processor [i] steps only when [time mod (i + 1) = 0]: a spread of
    relative speeds from full speed (pid 0) to [p] times slower. *)

val adaptive_laggard : t
(** Omniscient spite without stages: each unit, delay the (at most half
    of the) processors whose next intended task is still undone — i.e.
    always favour processors about to do redundant work. A cheap
    adversary that noticeably inflates work for schedule-based
    algorithms; the stage adversaries in {!Lb_deterministic} and
    {!Lb_randomized} are the principled versions. *)

val into : name:string -> t -> Adversary.t
(** Wrap with immediate delivery and no crashes. Declares
    [Adversary.Fixed 1] latency (immediate delivery is constant). *)

val combine :
  name:string ->
  ?schedule:t ->
  ?delay:Delay.t ->
  ?latency:Adversary.latency ->
  ?crash:(Adversary.oracle -> int list) ->
  ?faults:Adversary.faults ->
  ?restart:(Adversary.oracle -> int list) ->
  unit ->
  Adversary.t
(** Assemble an adversary from parts; omitted parts are fair (and the
    network reliable, crashes permanent). Latency declaration: when
    [delay] is omitted the default immediate delivery is declared
    [Fixed 1]; a supplied [delay] is treated as [Variable] unless
    [latency] vouches for it. *)
