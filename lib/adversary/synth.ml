open Doall_sim

type eval = {
  e_work : int;
  e_messages : int;
  e_sigma : int;
  e_completed : bool;
  e_violation : string option;
  e_wall : float;
}

type fitness = Work | Effort | Sigma | Cap_hits | Wall_per_work

let fitness_to_string = function
  | Work -> "work"
  | Effort -> "effort"
  | Sigma -> "sigma"
  | Cap_hits -> "cap-hits"
  | Wall_per_work -> "wall-per-work"

let fitness_of_string = function
  | "work" -> Ok Work
  | "effort" -> Ok Effort
  | "sigma" -> Ok Sigma
  | "cap-hits" -> Ok Cap_hits
  | "wall-per-work" -> Ok Wall_per_work
  | s ->
    Error
      (Printf.sprintf
         "unknown fitness %S (work|effort|sigma|cap-hits|wall-per-work)" s)

let score fitness e =
  match e.e_violation with
  | Some _ -> infinity
  | None -> (
    match fitness with
    | Work -> float_of_int e.e_work
    | Effort -> float_of_int (e.e_work + e.e_messages)
    | Sigma -> float_of_int e.e_sigma
    | Cap_hits ->
      (if e.e_completed then 0.0 else 1.0e15) +. float_of_int e.e_work
    | Wall_per_work -> e.e_wall /. float_of_int (max 1 e.e_work))

type progress = {
  gen : int;
  evals : int;
  best_score : float;
  best_spec : string;
  capped : int;
  violations : int;
}

type outcome = {
  best : Strategy.t;
  best_spec : string;
  best_score : float;
  best_eval : eval;
  evals : int;
  capped : int;
  violations : (string * string) list;
  history : progress list;
}

let rec map_seq f = function
  | [] -> []
  | x :: rest ->
    let y = f x in
    y :: map_seq f rest

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let dedup_by_spec cands =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> []
    | ((spec, _) as c) :: rest ->
      if Hashtbl.mem seen spec then go rest
      else begin
        Hashtbl.add seen spec ();
        c :: go rest
      end
  in
  go cands

let search ?(seed = 0) ?(population = 12) ?(elite = 2)
    ?(space = Strategy.Live) ?(init = []) ?(fitness = Work) ?(chan = false)
    ?wall_cap_s ?on_generation ?pool ?jobs ~eval ~p ~t:tsk ~d ~budget () =
  if budget < 1 then invalid_arg "Synth.search: budget must be >= 1";
  let population = max 2 population in
  let elite = max 1 (min elite (population - 1)) in
  let rng = Rng.create seed in
  let owned_pool = pool = None in
  let pool = match pool with Some pl -> pl | None -> Pool.create ?jobs () in
  Fun.protect ~finally:(fun () -> if owned_pool then Pool.shutdown pool)
  @@ fun () ->
  let deadline =
    match wall_cap_s with
    | None -> Float.max_float
    | Some s -> Unix.gettimeofday () +. s
  in
  let cache : (string, eval) Hashtbl.t = Hashtbl.create 64 in
  let n_evals = ref 0 in
  let n_capped = ref 0 in
  let violations = ref [] in
  let history = ref [] in
  let best = ref None in
  let consider spec st e =
    let s = score fitness e in
    let better =
      match !best with
      | None -> true
      | Some (bs, bspec, _, _) -> s > bs || (s = bs && spec < bspec)
    in
    if better then best := Some (s, spec, st, e)
  in
  (* Evaluate the not-yet-seen candidates (up to the remaining budget) on
     the pool, then return the sublist of [cands] that now has a cached
     eval — the members usable in the next population. *)
  let evaluate cands =
    let cands = dedup_by_spec cands in
    let fresh =
      take (budget - !n_evals)
        (List.filter (fun (spec, _) -> not (Hashtbl.mem cache spec)) cands)
    in
    let results = Pool.map pool (fun (_, st) -> eval st) fresh in
    List.iter2
      (fun (spec, st) e ->
        Hashtbl.replace cache spec e;
        incr n_evals;
        if not e.e_completed then incr n_capped;
        (match e.e_violation with
        | Some v -> violations := (spec, v) :: !violations
        | None -> ());
        consider spec st e)
      fresh results;
    List.filter (fun (spec, _) -> Hashtbl.mem cache spec) cands
  in
  let norm st =
    let st = Strategy.make st in
    (Strategy.to_spec st, st)
  in
  let gen = ref 0 in
  let record () =
    match !best with
    | None -> ()
    | Some (bs, bspec, _, _) ->
      let pr =
        {
          gen = !gen;
          evals = !n_evals;
          best_score = bs;
          best_spec = bspec;
          capped = !n_capped;
          violations = List.length !violations;
        }
      in
      history := pr :: !history;
      Option.iter (fun f -> f pr) on_generation
  in
  (* generation 0: the seeded strategies first, then random fill *)
  let seeds = map_seq norm init in
  let rec fill acc attempts =
    if List.length (dedup_by_spec acc) >= population || attempts <= 0 then acc
    else
      fill
        (acc @ [ norm (Strategy.random ~chan ~rng ~space ~p ~t:tsk ~d ()) ])
        (attempts - 1)
  in
  let pop = ref (take population (dedup_by_spec (fill seeds (4 * population)))) in
  pop := evaluate !pop;
  record ();
  let stalled = ref 0 in
  while
    !n_evals < budget && !stalled < 50 && Unix.gettimeofday () < deadline
  do
    incr gen;
    let before = !n_evals in
    let scored =
      map_seq
        (fun (spec, st) -> (score fitness (Hashtbl.find cache spec), spec, st))
        !pop
    in
    let ranked =
      List.sort
        (fun (s1, sp1, _) (s2, sp2, _) ->
          match compare s2 s1 with 0 -> compare sp1 sp2 | c -> c)
        scored
    in
    let elites = map_seq (fun (_, sp, st) -> (sp, st)) (take elite ranked) in
    let parents =
      Array.of_list
        (map_seq (fun (_, _, st) -> st)
           (take (max 2 (population / 2)) ranked))
    in
    let pick_parent () = parents.(Rng.int rng (Array.length parents)) in
    let children = ref [] in
    for _ = 1 to max 1 (population - elite) do
      let child =
        if Rng.int rng 100 < 30 && Array.length parents >= 2 then begin
          let a = pick_parent () in
          let b = pick_parent () in
          Strategy.crossover ~rng ~space ~p a b
        end
        else Strategy.mutate ~chan ~rng ~space ~p ~t:tsk ~d (pick_parent ())
      in
      children := norm child :: !children
    done;
    let children = List.rev !children in
    (* hill-climb the incumbent: two fresh single-step mutants of best *)
    let hill =
      match !best with
      | None -> []
      | Some (_, _, bst, _) ->
        let m1 = norm (Strategy.mutate ~chan ~rng ~space ~p ~t:tsk ~d bst) in
        let m2 = norm (Strategy.mutate ~chan ~rng ~space ~p ~t:tsk ~d bst) in
        [ m1; m2 ]
    in
    let evaluated = evaluate (children @ hill) in
    pop := take population (dedup_by_spec (elites @ evaluated));
    (* a generation that found nothing new (all duplicates) must not spin
       forever when the spec space is tiny *)
    if !n_evals = before then incr stalled else stalled := 0;
    record ()
  done;
  match !best with
  | None -> failwith "Synth.search: no candidate was evaluated"
  | Some (bs, bspec, bst, be) ->
    {
      best = bst;
      best_spec = bspec;
      best_score = bs;
      best_eval = be;
      evals = !n_evals;
      capped = !n_capped;
      violations = List.rev !violations;
      history = List.rev !history;
    }
