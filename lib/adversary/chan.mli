(** Shared-channel contention policies: the {e ordered} and {e delayed}
    adversary classes (Klonowski–Kowalski–Mirek; see PAPERS.md and
    docs/MODEL.md).

    Each builder produces pieces of a
    {!Doall_sim.Adversary.channel_policy}: an [order] rule permutes each
    slot's contenders (the channel grants the slot to the head and
    defers the rest), a [hold] rule delays a submitted transmission
    before it first contends (the engine clamps the result into
    [0 .. d - 1], keeping the per-round delay cap inside the run's delay
    bound). Policies are inert on point-to-point runs.

    All builders here are deterministic — worst-case orderings, not
    random ones — so channel runs stay bit-reproducible across job
    counts. *)

open Doall_sim

type order = Adversary.oracle -> int array -> int array option
(** Contenders arrive in ascending pid order; return a permutation, or
    [None] to decline arbitration and let this slot collide. *)

type hold = Adversary.oracle -> src:int -> int
(** Extra slots to hold back a transmission submitted now by [src]. *)

(** {1 Ordering rules} *)

val ordered_low : order
(** Grant lowest pid first — serializes the channel, favouring the
    processors that also win the engine's forced-step rule. *)

val ordered_high : order
(** Grant highest pid first. Against balanced algorithms this is the
    mirror of {!ordered_low}; against coordinator-style algorithms it
    starves the natural leader. *)

val rotor : int -> order
(** [rotor k]: grant contender number [(now + k) mod n] of the [n]
    contenders, keeping the rest in ascending order — a rotating grant
    that spreads slots across contenders without ever colliding. *)

val most_informed_last : order
(** Grant the contender that would perform the {e fewest} new tasks
    first (ties by pid): the adversary lets redundant traffic through
    and defers the messages that would actually spread knowledge. *)

val collide : order
(** Always decline: every multi-contender slot collides. Useful as the
    explicit worst case of the collision spectrum. *)

(** {1 Hold rules} *)

val batched : cap:int -> hold
(** Release every transmission at the next multiple of [cap] (at most
    [cap - 1] extra slots, further clamped by the engine to [d - 1]):
    submissions from different slots pile up on the same release slot,
    manufacturing collisions that honest timing would have avoided. *)

val stagger : hold
(** Hold [src]'s transmission [src mod d] slots — a per-source skew
    that spreads (or, combined with {!batched}-like timing in the
    algorithm, re-aligns) contention deterministically. *)

(** {1 Assembly} *)

val policy : name:string -> ?order:order -> ?hold:hold -> unit ->
  Adversary.channel_policy

val into : name:string -> Adversary.channel_policy -> Adversary.t
(** Wrap a channel policy into a full adversary: fair scheduling,
    latency 1, no crashes — on a channel run the contention rules are
    the whole adversary. The [Fixed 1] latency declaration is kept so
    the same adversary still triggers the stream fast path when run on
    point-to-point (where the policy is inert), making ptp-vs-channel
    comparisons use one adversary value. *)
