open Doall_sim

type t = Adversary.oracle -> int list
type restart = Adversary.oracle -> int list

let none = Adversary.no_crash
let no_restart (_ : Adversary.oracle) = []

let at_time ~time ~pids (o : Adversary.oracle) =
  if o.time () = time then pids else []

let all_but_one ~survivor ~time (o : Adversary.oracle) =
  if o.time () = time then
    List.filter (fun pid -> pid <> survivor) (List.init o.p Fun.id)
  else []

let poisson ?(survivor = 0) ~rate (o : Adversary.oracle) =
  (* One draw per pid regardless of the survivor filter, so changing
     [survivor] never shifts the RNG stream of later draws. *)
  List.filter
    (fun pid ->
      let doomed = o.alive pid && Rng.float o.rng 1.0 < rate in
      doomed && pid <> survivor)
    (List.init o.p Fun.id)

let staggered ~every (o : Adversary.oracle) =
  if every < 1 then invalid_arg "Crash.staggered: every >= 1";
  if o.time () mod every = 0 && o.time () > 0 then begin
    let rec lowest pid =
      if pid >= o.p then []
      else if o.alive pid then [ pid ]
      else lowest (pid + 1)
    in
    lowest 0
  end
  else []

let restart_after ~delay =
  if delay < 1 then invalid_arg "Crash.restart_after: delay >= 1";
  (* Stateful: remembers when each pid was first seen down. Single-run
     only — instantiate a fresh policy per run, as Runner does. *)
  let down_since : (int, int) Hashtbl.t = Hashtbl.create 16 in
  fun (o : Adversary.oracle) ->
    let now = o.time () in
    let back = ref [] in
    for pid = o.p - 1 downto 0 do
      if o.alive pid then Hashtbl.remove down_since pid
      else
        match Hashtbl.find_opt down_since pid with
        | None -> Hashtbl.replace down_since pid now
        | Some since ->
          if now - since >= delay then begin
            Hashtbl.remove down_since pid;
            back := pid :: !back
          end
    done;
    !back

let flaky ?(survivor = 0) ~up ~down () =
  if up < 1 || down < 1 then invalid_arg "Crash.flaky: up, down >= 1";
  let cycle = up + down in
  (* pid offsets stagger the phases so the system is never all-down;
     [survivor] opts out of the cycle entirely, keeping liveness
     trivially intact whatever [up]/[down] are. *)
  let should_be_up (o : Adversary.oracle) pid =
    pid = survivor || (o.time () + (pid * down)) mod cycle < up
  in
  let crash (o : Adversary.oracle) =
    List.filter
      (fun pid ->
        pid <> survivor && o.alive pid && not (should_be_up o pid))
      (List.init o.p Fun.id)
  in
  let restart (o : Adversary.oracle) =
    List.filter
      (fun pid -> (not (o.alive pid)) && should_be_up o pid)
      (List.init o.p Fun.id)
  in
  (crash, restart)

let into ~name crash =
  Adversary.with_latency (Adversary.Fixed 1)
    (Adversary.make ~name ~schedule:Adversary.all_active
       ~delay:Delay.immediate ~crash)

let into_recovering ~name ~crash ~restart =
  Adversary.with_restart restart (into ~name crash)
