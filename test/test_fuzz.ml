(* Adversary fuzzing: derive a random strategy-DSL adversary from a seed
   and check the system-wide invariants on every algorithm — completion,
   no phantom knowledge, accounting identities — with the invariant
   oracle auditing every tick (docs/FAULTS.md).

   The seed -> case derivation and the whole-run audit live in the
   library (Doall_adversary.Fuzz_gen, Doall_core.Fuzz_audit) and are
   shared with `doall fuzz --replay <seed>`: every failure printed here
   is a ready-to-run CLI command, not a hint.

   Livelock exclusion is the Strategy space rule: the [Live] space never
   pairs restarts with starvation-prone schedules (a starved survivor
   plus state-resetting peers is the adversary's livelock, not the
   algorithm's), and the quorum arm draws from [Quorum_safe] — majority
   alive, no faults, every pid stepping infinitely often. *)

open Doall_core
open Doall_adversary

let fuzz_property ~label ~quorum_safe maker (seed : int) =
  let case = Fuzz_gen.case ~seed ~quorum_safe in
  let { Fuzz_gen.p; t; d; transport; strategy } = case in
  let adversary = Strategy.into strategy in
  match Fuzz_audit.audit ~transport (maker ()) ~p ~t ~d ~adversary ~seed with
  | Ok _ -> true
  | Error e ->
    (* ready-to-run reproducers: the library derivation is shared with
       the CLI, so these rebuild the identical run *)
    let spec = Strategy.to_spec strategy in
    let tr = Doall_sim.Config.transport_to_string transport in
    Printf.eprintf "fuzz reproducer: doall fuzz --replay %d --algo %s%s\n"
      seed label
      (if quorum_safe && label <> "awq-q4" then " --quorum-safe" else "");
    (match Runner.find_algo label with
    | exception Failure _ -> ()
    | _ ->
      Printf.eprintf
        "            or: doall run --algo %s --adv 'strategy:%s' -p %d \
         -t %d -d %d --seed %d --transport %s --check\n"
        label spec p t d seed tr);
    QCheck2.Test.fail_reportf
      "p=%d t=%d d=%d seed=%d transport=%s strategy:%s: %s" p t d seed tr
      spec e

let fuzz_test ~label ~quorum_safe maker =
  QCheck2.Test.make
    ~name:(Printf.sprintf "fuzz: %s" label)
    ~count:120
    QCheck2.Gen.(int_range 0 1_000_000)
    (fuzz_property ~label ~quorum_safe maker)

let makers =
  Fuzz_audit.core_makers
  @ [ ("awq-q4", fun () -> Doall_quorum.Algo_awq.make ~q:4 ()) ]

let suite =
  List.map
    (fun label ->
      let maker =
        match List.assoc_opt label makers with
        | Some m -> m
        | None -> Alcotest.failf "fuzz label %S has no maker" label
      in
      QCheck_alcotest.to_alcotest
        (fuzz_test ~label ~quorum_safe:(label = "awq-q4") maker))
    Fuzz_gen.labels
