(* Adversary fuzzing: compose random scheduling, delay, crash, restart
   and message-fault policies from a seed and check the system-wide
   invariants on every algorithm — completion, no phantom knowledge,
   accounting identities — with the invariant oracle auditing every tick
   (docs/FAULTS.md). This is the failure-injection counterpart of the
   hand-written adversary tests. *)

open Doall_sim
open Doall_core
open Doall_adversary

let build_adversary rng ~p ~quorum_safe =
  let pickl l = List.nth l (Rng.int rng (List.length l)) in
  let starvation_free =
    (* every processor steps infinitely often — what quorum liveness
       needs on top of crash-minority (adaptive_laggard can starve a
       chosen processor forever, which is legal in the model and kills
       the emulation: see test_awq's majority-crash test for the crash
       flavour of the same caveat) *)
    [
      Schedule.all;
      Schedule.round_robin ~width:(1 + Rng.int rng (max 1 p));
      Schedule.random_subset ~prob:(0.3 +. Rng.float rng 0.7);
      Schedule.harmonic_speeds;
    ]
  in
  (* crash-recovery churn resets local progress, so completion rests
     entirely on the never-crashed survivor — which adaptive_laggard is
     free to starve forever (each other processor then loses its state
     before accumulating t tasks: a livelock that is the adversary's
     fault, not the algorithm's). Restart runs therefore draw from the
     starvation-free schedules only. *)
  let use_restart = (not quorum_safe) && Rng.int rng 10 < 3 in
  let schedule =
    pickl
      (if quorum_safe || use_restart then starvation_free
       else Schedule.adaptive_laggard :: starvation_free)
  in
  let delay =
    pickl
      [
        Delay.immediate;
        Delay.constant (1 + Rng.int rng 8);
        Delay.maximal;
        Delay.uniform;
        Delay.bimodal ~slow_fraction:(Rng.float rng 1.0);
        Delay.stage_batched ~stage_len:(1 + Rng.int rng 6);
        Delay.per_destination (fun dst -> 1 + (dst mod 4));
      ]
  in
  let crash, restart =
    if quorum_safe then
      (* lose strictly less than half: quorums stay viable *)
      let victims = List.init (max 0 (((p + 1) / 2) - 1)) (fun i -> i * 2) in
      ( pickl
          [
            Crash.none;
            Crash.at_time ~time:(Rng.int rng 40) ~pids:victims;
          ],
        None )
    else if use_restart then
      (* crash-recovery: revive rules are paired only with
         survivor-preserving crash patterns, so every run keeps one
         processor that never goes down (the engine's survivor rule
         is then an invariant, not luck) *)
      (match Rng.int rng 2 with
       | 0 ->
         let crash, revive =
           Crash.flaky ~survivor:0 ~up:(1 + Rng.int rng 8)
             ~down:(1 + Rng.int rng 4) ()
         in
         (crash, Some revive)
       | _ ->
         ( Crash.poisson ~survivor:0 ~rate:(0.005 +. Rng.float rng 0.05),
           Some (Crash.restart_after ~delay:(1 + Rng.int rng 6)) ))
    else
      ( pickl
          [
            Crash.none;
            Crash.at_time ~time:(Rng.int rng 40)
              ~pids:(List.init (Rng.int rng p) Fun.id);
            Crash.poisson ~rate:0.01;
            Crash.staggered ~every:(1 + Rng.int rng 10);
          ],
        None )
  in
  let faults =
    (* quorum algorithms honestly need delivery: lossy networks can
       stall their memory emulation forever, so faults stay off the
       quorum-safe arm (see Runner.algo_spec.liveness) *)
    if quorum_safe then None
    else
      pickl
        [
          None;
          Some (Fault.drop ~prob:(Rng.float rng 1.0));
          Some Fault.drop_all;
          Some
            (Fault.duplicate ~copies:(1 + Rng.int rng 3)
               ~prob:(Rng.float rng 0.5));
          Some (Fault.reorder ~prob:(Rng.float rng 1.0));
          Some
            (Fault.all
               [
                 Fault.drop ~prob:(Rng.float rng 0.4);
                 Fault.duplicate ~copies:1 ~prob:(Rng.float rng 0.3);
                 Fault.reorder ~prob:(Rng.float rng 0.4);
               ]);
        ]
  in
  Schedule.combine ~name:"fuzz" ~schedule ~delay ~crash ?faults ?restart ()

let audit_run (module A : Algorithm.S) ~p ~t ~d ~adversary ~seed =
  let module E = Engine.Make (A) in
  let cfg = Config.make ~seed ~p ~t () in
  let eng = E.create ~check:true cfg ~d ~adversary in
  match E.run eng with
  | exception Oracle.Invariant_violation v ->
    Error (Format.asprintf "oracle: %a" Oracle.pp_violation v)
  | m ->
  let global = E.global_done eng in
  if not m.Metrics.completed then Error "did not complete"
  else if not (Bitset.is_full global) then Error "unperformed tasks"
  else if m.Metrics.executions < t then Error "executions < t"
  else if m.Metrics.work < m.Metrics.executions then
    Error "work below executions"
  else begin
    let phantom = ref false in
    for pid = 0 to p - 1 do
      if not (Bitset.subset (A.done_tasks (E.state eng pid)) global) then
        phantom := true
    done;
    if !phantom then Error "phantom knowledge" else Ok m
  end

let fuzz_property ~quorum_safe maker (seed : int) =
  let rng = Rng.create seed in
  let p = 1 + Rng.int rng 12 in
  let t = 1 + Rng.int rng 48 in
  let d = 1 + Rng.int rng 12 in
  let adversary = build_adversary rng ~p ~quorum_safe in
  match audit_run (maker ()) ~p ~t ~d ~adversary ~seed with
  | Ok _ -> true
  | Error e ->
    (* the seed alone rebuilds the whole run (dimensions, policies,
       engine streams): print a copy-pasteable reproducer before the
       QCheck report *)
    Printf.eprintf
      "fuzz reproducer: fuzz_property ~quorum_safe:%b maker %d  (p=%d t=%d \
       d=%d): %s\n\
       %!"
      quorum_safe seed p t d e;
    QCheck2.Test.fail_reportf "p=%d t=%d d=%d seed=%d: %s" p t d seed e

let fuzz_test ~name ~quorum_safe maker =
  QCheck2.Test.make ~name ~count:120 QCheck2.Gen.(int_range 0 1_000_000)
    (fuzz_property ~quorum_safe maker)

let suite =
  [
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: trivial" ~quorum_safe:false (fun () ->
           Algo_trivial.make ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: da-q2" ~quorum_safe:false (fun () ->
           Algo_da.make ~q:2 ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: da-q5" ~quorum_safe:false (fun () ->
           Algo_da.make ~q:5 ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: paran1" ~quorum_safe:false (fun () ->
           Algo_pa.make_ran1 ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: paran2" ~quorum_safe:false (fun () ->
           Algo_pa.make_ran2 ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: padet" ~quorum_safe:false (fun () ->
           Algo_pa.make_det ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: padet throttled" ~quorum_safe:false (fun () ->
           Algo_pa.make_det ~broadcast_every:4 ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: paran1 fanout 2" ~quorum_safe:false (fun () ->
           Algo_pa.make_ran1 ~fanout:2 ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: coord" ~quorum_safe:false (fun () ->
           Algo_coord.make ()));
    QCheck_alcotest.to_alcotest
      (fuzz_test ~name:"fuzz: awq-q4 (quorum-safe crashes)" ~quorum_safe:true
         (fun () -> Doall_quorum.Algo_awq.make ~q:4 ()));
  ]
