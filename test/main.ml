let () =
  Alcotest.run "doall"
    [
      ("rng", Test_rng.suite);
      ("bitset", Test_bitset.suite);
      ("heap", Test_heap.suite);
      ("event-queue", Test_event_queue.suite);
      ("network", Test_network.suite);
      ("trace", Test_trace.suite);
      ("perm", Test_perm.suite);
      ("lrm", Test_lrm.suite);
      ("contention", Test_contention.suite);
      ("qary", Test_qary.suite);
      ("gen-search", Test_gen_search.suite);
      ("task", Test_task.suite);
      ("progress-tree", Test_progress_tree.suite);
      ("engine", Test_engine.suite);
      ("config-metrics", Test_config_metrics.suite);
      ("algorithms", Test_algorithms.suite);
      ("oblido", Test_oblido.suite);
      ("adversary", Test_adversary.suite);
      ("recorder", Test_recorder.suite);
      ("analysis", Test_analysis.suite);
      ("runner", Test_runner.suite);
      ("faults", Test_faults.suite);
      ("pool", Test_pool.suite);
      ("awq", Test_awq.suite);
      ("coord", Test_coord.suite);
      ("workload", Test_workload.suite);
      ("sharedmem", Test_sharedmem.suite);
      ("obs", Test_obs.suite);
      ("exp", Test_exp.suite);
      ("golden", Test_golden.suite);
      ("golden-grid", Test_golden_grid.suite);
      ("docs", Test_docs.suite);
      ("fuzz", Test_fuzz.suite);
      ("integration", Test_integration.suite);
    ]
