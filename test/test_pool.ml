(* The domain pool and the parallel grid runner.

   The load-bearing property is bit-determinism: Runner.run_grid must
   return byte-identical results for every jobs count, because BENCH
   speedups are only honest if the parallel arm computes the same thing
   as the sequential one, and the golden pins only protect the
   sequential path. *)

open Doall_sim
open Doall_core

(* Deterministic busy-work with data-dependent duration, so tasks finish
   out of submission order under any multi-domain schedule. *)
let churn seed =
  let x = ref seed in
  for _ = 1 to 1_000 + (seed * 7919 mod 9_000) do
    x := (!x * 1_103_515_245) + 12_345
  done;
  !x

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 200 Fun.id in
      let expected = List.map churn xs in
      for _ = 1 to 5 do
        Alcotest.(check (list int))
          "map preserves submission order" expected
          (Pool.map pool churn xs)
      done)

let test_map_sizes () =
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun n ->
          let xs = List.init n Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "size %d" n)
            (List.map succ xs)
            (Pool.map pool succ xs))
        [ 0; 1; 2; 3; 7; 64 ])

let test_jobs_one_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs clamped" 1 (Pool.jobs pool);
      Alcotest.(check (list int))
        "inline path" [ 2; 3; 4 ]
        (Pool.map pool succ [ 1; 2; 3 ]))

exception Boom of int

let test_exception_propagation () =
  (* The lowest-indexed failure wins, deterministically, at every jobs
     count — and the pool survives the failed batch. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let f i = if i mod 10 = 3 then raise (Boom i) else churn i in
          let got =
            try
              ignore (Pool.map pool f (List.init 100 Fun.id));
              None
            with Boom i -> Some i
          in
          Alcotest.(check (option int))
            (Printf.sprintf "first failure by index, jobs=%d" jobs)
            (Some 3) got;
          Alcotest.(check (list int))
            "pool usable after a failed batch" [ 1; 2 ]
            (Pool.map pool succ [ 0; 1 ])))
    [ 1; 2; 4 ]

let test_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  ignore (Pool.map pool succ [ 1; 2; 3 ]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool succ [ 1 ]))

(* A mixed grid: deterministic and randomized algorithms, delay-bound
   and randomized adversaries, several seeds. *)
let mixed_specs =
  Runner.grid
    ~seeds:[ 0; 1; 2 ]
    ~algos:[ "trivial"; "da-q4"; "paran1"; "paran2"; "padet" ]
    ~advs:[ "fair"; "max-delay"; "lb-rand" ]
    ~points:[ (8, 32, 3); (5, 40, 7) ]
    ()

let result_key (r : Runner.result) =
  ( (r.Runner.algo, r.Runner.adv, r.Runner.seed),
    ( r.Runner.metrics.Metrics.work,
      r.Runner.metrics.Metrics.messages,
      r.Runner.metrics.Metrics.sigma,
      r.Runner.metrics.Metrics.executions,
      Array.to_list r.Runner.metrics.Metrics.per_proc_work ) )

let test_grid_determinism () =
  (* run_grid at jobs=1/2/4 vs a sequential Runner.run fold: identical
     work, messages, sigma, executions and per-processor work. *)
  let sequential =
    List.map
      (fun (s : Runner.run_spec) ->
        Runner.run ~seed:s.Runner.seed ~algo:s.Runner.spec_algo
          ~adv:s.Runner.spec_adv ~p:s.Runner.p ~t:s.Runner.t ~d:s.Runner.d ())
      mixed_specs
  in
  let expected = List.map result_key sequential in
  List.iter
    (fun jobs ->
      let got = List.map result_key (Runner.run_grid ~jobs mixed_specs) in
      if got <> expected then
        Alcotest.failf "grid results differ from sequential at jobs=%d" jobs)
    [ 1; 2; 4 ]

let test_grid_pool_reuse () =
  (* One pool across several grids, including interleaved shapes. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let expected = List.map result_key (Runner.run_grid ~jobs:1 mixed_specs) in
      for _ = 1 to 3 do
        let got =
          List.map result_key (Runner.run_grid ~pool mixed_specs)
        in
        if got <> expected then Alcotest.fail "pooled grid diverged"
      done)

let test_grid_incomplete () =
  (* A capped run must raise with the offending cells, not return a
     silent partial result — at any jobs count. *)
  let specs =
    Runner.grid ~seeds:[ 0 ] ~algos:[ "paran1" ] ~advs:[ "max-delay" ]
      ~points:[ (8, 64, 4) ] ()
  in
  List.iter
    (fun jobs ->
      match Runner.run_grid ~jobs ~max_time:1 specs with
      | _ -> Alcotest.fail "expected Grid_incomplete"
      | exception Runner.Grid_incomplete [ s ] ->
        Alcotest.(check string)
          "failing cell named" "paran1/max-delay/p8/t64/d4/seed0"
          (Runner.spec_name s)
      | exception Runner.Grid_incomplete _ ->
        Alcotest.fail "expected exactly one capped cell")
    [ 1; 3 ]

let test_grid_unknown_name () =
  (* Registry validation happens in the submitting domain, before any
     fan-out. *)
  match
    Runner.run_grid [ Runner.spec ~algo:"nope" ~adv:"fair" ~p:2 ~t:4 ~d:1 () ]
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    if not (String.length msg >= 26
            && String.sub msg 0 26 = "unknown algorithm \"nope\" (") then
      Alcotest.failf "unexpected message: %s" msg

let test_average_work_parallel () =
  let seq =
    Runner.average_work ~jobs:1 ~algo:"paran1" ~adv:"max-delay" ~p:8 ~t:64
      ~d:4 ()
  in
  let par =
    Runner.average_work ~jobs:4 ~algo:"paran1" ~adv:"max-delay" ~p:8 ~t:64
      ~d:4 ()
  in
  Alcotest.(check (pair (float 0.0) (float 0.0)))
    "average_work identical at jobs=1 and jobs=4" seq par

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map sizes incl. empty" `Quick test_map_sizes;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs_one_inline;
    Alcotest.test_case "deterministic exceptions" `Quick
      test_exception_propagation;
    Alcotest.test_case "shutdown semantics" `Quick test_shutdown;
    Alcotest.test_case "grid determinism across jobs" `Slow
      test_grid_determinism;
    Alcotest.test_case "grid pool reuse" `Slow test_grid_pool_reuse;
    Alcotest.test_case "Grid_incomplete on cap" `Quick test_grid_incomplete;
    Alcotest.test_case "unknown name fails fast" `Quick test_grid_unknown_name;
    Alcotest.test_case "average_work parallel" `Quick
      test_average_work_parallel;
  ]
