open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_record_order () =
  let tr = Trace.create () in
  Trace.add tr (Trace.Step { time = 0; pid = 1 });
  Trace.add tr (Trace.Perform { time = 1; pid = 0; task = 3; fresh = true });
  check_int "length" 2 (Trace.length tr);
  match Trace.events tr with
  | [ Trace.Step { time = 0; pid = 1 }; Trace.Perform { task = 3; _ } ] -> ()
  | _ -> Alcotest.fail "wrong order"

let test_time_of () =
  check_int "step" 5 (Trace.time_of (Trace.Step { time = 5; pid = 0 }));
  check_int "note" 9 (Trace.time_of (Trace.Note { time = 9; text = "x" }))

let test_timeline_symbols () =
  let tr = Trace.create () in
  Trace.add tr (Trace.Perform { time = 0; pid = 0; task = 1; fresh = true });
  Trace.add tr (Trace.Delayed { time = 0; pid = 1 });
  Trace.add tr (Trace.Step { time = 1; pid = 0 });
  Trace.add tr (Trace.Halt { time = 2; pid = 0 });
  Trace.add tr (Trace.Crash { time = 1; pid = 1 });
  let rows = Trace.timeline tr ~p:2 ~until:4 in
  check_int "two rows" 2 (Array.length rows);
  check "perform mark" true (rows.(0).[0] = '#');
  check "step mark" true (rows.(0).[1] = 'o');
  check "halt mark" true (rows.(0).[2] = 'H');
  check "post-halt fill" true (rows.(0).[3] = 'h');
  check "delayed mark" true (rows.(1).[0] = '.');
  check "crash mark" true (rows.(1).[1] = 'X');
  check "post-crash fill" true (rows.(1).[2] = 'x')

let test_timeline_clips () =
  let tr = Trace.create () in
  Trace.add tr (Trace.Perform { time = 99; pid = 0; task = 0; fresh = false });
  let rows = Trace.timeline tr ~p:1 ~until:10 in
  check "out-of-window event ignored" true (rows.(0) = String.make 10 ' ')

let test_fold () =
  let tr = Trace.create () in
  for i = 0 to 999 do
    Trace.add tr (Trace.Step { time = i; pid = i mod 7 })
  done;
  check_int "fold counts all" 1000
    (Trace.fold tr ~init:0 ~f:(fun acc _ -> acc + 1));
  (* fold visits in recording order and agrees with [events] *)
  let times_via_fold =
    List.rev (Trace.fold tr ~init:[] ~f:(fun acc e -> Trace.time_of e :: acc))
  in
  let times_via_events = List.map Trace.time_of (Trace.events tr) in
  check "fold order = events order" true (times_via_fold = times_via_events)

let test_pp_timeline_output () =
  let tr = Trace.create () in
  Trace.add tr (Trace.Step { time = 0; pid = 0 });
  let s = Format.asprintf "%a" Trace.pp_timeline (tr, 1, 2) in
  check "labelled row" true (String.length s > 0 && s.[0] = 'p')

let suite =
  [
    Alcotest.test_case "record order" `Quick test_record_order;
    Alcotest.test_case "time_of" `Quick test_time_of;
    Alcotest.test_case "timeline symbols" `Quick test_timeline_symbols;
    Alcotest.test_case "timeline clips window" `Quick test_timeline_clips;
    Alcotest.test_case "fold" `Quick test_fold;
    Alcotest.test_case "pp_timeline" `Quick test_pp_timeline_output;
  ]
