(* The observability subsystem: probe instruments, the determinism
   contract (probes must not perturb metrics, and snapshots must be
   identical at every jobs count), engine instrument consistency against
   Metrics.t, and line-by-line JSONL validation of the exporters. *)

open Doall_sim
open Doall_core
module Export = Doall_obs.Export

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Probe instruments.                                                  *)

let test_counter () =
  let pr = Probe.create () in
  let c = Probe.counter pr "c" in
  Probe.incr c;
  Probe.add c 41;
  check_int "value" 42 (Probe.counter_value c);
  check "same name, same instrument" true
    (Probe.counter_value (Probe.counter pr "c") = 42)

let test_disabled_probe_records_nothing () =
  let pr = Probe.create ~enabled:false () in
  check "disabled" true (not (Probe.enabled pr));
  let c = Probe.counter pr "c" in
  let g = Probe.gauge pr "g" in
  let h = Probe.histogram pr "h" in
  let v = Probe.vector pr "v" ~len:3 in
  let s = Probe.series pr "s" in
  Probe.incr c;
  Probe.set g 7;
  Probe.observe h 5;
  Probe.observe_n h 5 10;
  Probe.vincr v 1;
  Probe.sample s ~time:0 3;
  let snap = Probe.snapshot pr in
  check_int "counter zero" 0 (List.assoc "c" snap.Probe.counters);
  check "gauge zero" true (List.assoc "g" snap.Probe.gauges = (0, 0));
  let hs = List.assoc "h" snap.Probe.histograms in
  check_int "histogram empty" 0 hs.Probe.count;
  check "vector zero" true (List.assoc "v" snap.Probe.vectors = [| 0; 0; 0 |]);
  check "series empty" true (List.assoc "s" snap.Probe.series = [||])

let test_gauge_last_and_max () =
  let pr = Probe.create () in
  let g = Probe.gauge pr "g" in
  Probe.set g 5;
  Probe.set g 9;
  Probe.set g 2;
  let snap = Probe.snapshot pr in
  check "last=2 max=9" true (List.assoc "g" snap.Probe.gauges = (2, 9))

let test_histogram_buckets () =
  (* bucket 0 holds v <= 0; bucket i >= 1 holds [2^(i-1), 2^i - 1] *)
  let pr = Probe.create () in
  let h = Probe.histogram pr "h" in
  List.iter (Probe.observe h) [ 0; 1; 2; 3; 4; 7; 8; 1023; 1024 ];
  let hs = List.assoc "h" (Probe.snapshot pr).Probe.histograms in
  check_int "count" 9 hs.Probe.count;
  check_int "sum" (0 + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024) hs.Probe.sum;
  check_int "max" 1024 hs.Probe.max;
  let n_of i = try List.assoc i hs.Probe.buckets with Not_found -> 0 in
  check_int "bucket 0: v=0" 1 (n_of 0);
  check_int "bucket 1: v=1" 1 (n_of 1);
  check_int "bucket 2: v=2,3" 2 (n_of 2);
  check_int "bucket 3: v=4..7" 2 (n_of 3);
  check_int "bucket 4: v=8" 1 (n_of 4);
  check_int "bucket 10: v=1023" 1 (n_of 10);
  check_int "bucket 11: v=1024" 1 (n_of 11);
  check "bounds bucket 3" true (Probe.bucket_bounds 3 = (4, 7));
  check "bounds bucket 0" true (Probe.bucket_bounds 0 = (0, 0))

let test_observe_n_equals_repeated_observe () =
  let pr = Probe.create () in
  let a = Probe.histogram pr "a" and b = Probe.histogram pr "b" in
  List.iter
    (fun (v, n) ->
      Probe.observe_n a v n;
      for _ = 1 to n do
        Probe.observe b v
      done)
    [ (3, 4); (17, 1); (0, 2); (1500, 3); (3, 0) ];
  let snap = Probe.snapshot pr in
  let ha = List.assoc "a" snap.Probe.histograms in
  let hb = List.assoc "b" snap.Probe.histograms in
  check "observe_n = n x observe" true (ha = hb)

let test_vector () =
  let pr = Probe.create () in
  let v = Probe.vector pr "v" ~len:4 in
  Probe.vincr v 0;
  Probe.vadd v 3 5;
  check "values" true
    (List.assoc "v" (Probe.snapshot pr).Probe.vectors = [| 1; 0; 0; 5 |]);
  check "len mismatch rejected" true
    (try
       ignore (Probe.vector pr "v" ~len:5);
       false
     with Invalid_argument _ -> true)

let test_series_and_snapshot_isolation () =
  let pr = Probe.create () in
  let s = Probe.series pr "s" in
  for i = 0 to 99 do
    Probe.sample s ~time:i (i * i)
  done;
  let snap = Probe.snapshot pr in
  let pts = List.assoc "s" snap.Probe.series in
  check_int "100 samples" 100 (Array.length pts);
  check "in order" true (pts.(7) = (7, 49));
  (* a snapshot is a deep copy: later records must not leak into it *)
  Probe.sample s ~time:100 1;
  check_int "old snapshot unchanged" 100
    (Array.length (List.assoc "s" snap.Probe.series))

let test_percentile () =
  let pr = Probe.create () in
  let h = Probe.histogram pr "h" in
  let snap () = List.assoc "h" (Probe.snapshot pr).Probe.histograms in
  check "empty histogram" true (Probe.percentile (snap ()) 0.5 = (0, 0));
  (* 9 ones, 1 seventeen: p50/p90 sit in the ones, p99 in bucket 5 *)
  Probe.observe_n h 1 9;
  Probe.observe h 17;
  let hs = snap () in
  check "p50 = ones bucket" true (Probe.percentile hs 0.50 = (1, 1));
  check "p90 = ones bucket" true (Probe.percentile hs 0.90 = (1, 1));
  (* bucket 5 spans [16, 31]; hi is capped at the observed max *)
  check "p99 capped at max" true (Probe.percentile hs 0.99 = (16, 17));
  check "q=1 is the max bucket" true (Probe.percentile hs 1.0 = (16, 17));
  (* out-of-range q clamps rather than raising *)
  check "q clamped low" true (Probe.percentile hs (-3.0) = (1, 1));
  check "q clamped high" true (Probe.percentile hs 9.0 = (16, 17))

(* ------------------------------------------------------------------ *)
(* Engine instrumentation consistency vs Metrics.t.                    *)

let probed_run ~algo ~adv ~p ~t ~d =
  let probe = Probe.create () in
  let r = Runner.run ~seed:3 ~probe ~algo ~adv ~p ~t ~d () in
  (r, Probe.snapshot probe)

let test_engine_instruments_match_metrics () =
  List.iter
    (fun (algo, adv) ->
      let p = 8 and t = 48 and d = 4 in
      let r, snap = probed_run ~algo ~adv ~p ~t ~d in
      let m = r.Runner.metrics in
      let c name = List.assoc name snap.Probe.counters in
      check_int
        (algo ^ ": fresh + redundant = executions")
        m.Metrics.executions
        (c "engine.fresh_executions" + c "engine.redundant_executions");
      check_int
        (algo ^ ": redundant counter = Metrics.redundant")
        (Metrics.redundant m)
        (c "engine.redundant_executions");
      check_int (algo ^ ": sends = messages") m.Metrics.messages
        (c "net.sends");
      let lat = List.assoc "net.delivery_latency" snap.Probe.histograms in
      check_int (algo ^ ": one latency sample per send") m.Metrics.messages
        lat.Probe.count;
      check (algo ^ ": deltas within (0, max 1 d]") true
        (lat.Probe.count = 0 || (lat.Probe.max <= max 1 d && lat.Probe.sum > 0));
      check (algo ^ ": deliveries <= sends") true
        (c "net.deliveries" <= c "net.sends");
      check_int
        (algo ^ ": delayed vector spans p")
        p
        (Array.length (List.assoc "proc.delayed_steps" snap.Probe.vectors));
      let series = List.assoc "engine.fresh_executions" snap.Probe.series in
      check (algo ^ ": one sample per tick") true
        (Array.length series = m.Metrics.sigma + 1);
      check (algo ^ ": final fresh sample = t (completed)") true
        ((not m.Metrics.completed)
        || snd series.(Array.length series - 1) = t))
    [ ("paran1", "max-delay"); ("da-q4", "fair"); ("padet", "uniform-delay") ]

(* ------------------------------------------------------------------ *)
(* Determinism: probes on/off and jobs=1/2/4 must not move a bit.      *)

let det_specs =
  Runner.grid
    ~seeds:[ 0; 1 ]
    ~algos:[ "paran1"; "da-q4" ]
    ~advs:[ "max-delay"; "fair" ]
    ~points:[ (6, 24, 3) ]
    ()

(* Everything except wall_s (machine noise) and obs (checked apart). *)
let comparable (r : Runner.result) =
  (r.Runner.metrics, r.Runner.algo, r.Runner.adv, r.Runner.seed)

let test_grid_deterministic_across_jobs_and_probes () =
  let base = Runner.run_grid ~jobs:1 ~probes:false det_specs in
  let base_snaps = Runner.run_grid ~jobs:1 ~probes:true det_specs in
  (* probes on vs off: Metrics.t bit-identical, down to per_proc_work *)
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      check "metrics identical probes on/off" true
        (comparable a = comparable b);
      check "per_proc_work identical" true
        (a.Runner.metrics.Metrics.per_proc_work
        = b.Runner.metrics.Metrics.per_proc_work);
      check "obs off -> None" true (a.Runner.obs = None);
      check "obs on -> Some" true (b.Runner.obs <> None))
    base base_snaps;
  (* jobs=2 and jobs=4: results and probe snapshots bit-identical *)
  List.iter
    (fun jobs ->
      let rs = Runner.run_grid ~jobs ~probes:true det_specs in
      List.iter2
        (fun (a : Runner.result) (b : Runner.result) ->
          check
            (Printf.sprintf "metrics identical at jobs=%d" jobs)
            true
            (comparable a = comparable b);
          check
            (Printf.sprintf "snapshots identical at jobs=%d" jobs)
            true
            (a.Runner.obs = b.Runner.obs))
        base_snaps rs)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser, just enough to validate exporter output.     *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true
                                     | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* good enough for the exporter's output: BMP only *)
           if code < 128 then Buffer.add_char b (Char.chr code)
           else Buffer.add_string b (Printf.sprintf "U+%04X" code)
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false)
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> JNum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> JStr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); JObj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> fail "expected , or }"
        in
        JObj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); JList [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        JList (elems [])
      end
    | Some 't' -> literal "true" (JBool true)
    | Some 'f' -> literal "false" (JBool false)
    | Some 'n' -> literal "null" JNull
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Exporters: every line parses, carries v/kind, and counts add up.    *)

let with_temp_file f =
  let path = Filename.temp_file "doall_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let assoc_exn key = function
  | JObj fields -> List.assoc key fields
  | _ -> raise Not_found

let validate_lines lines =
  List.map
    (fun line ->
      let j = parse_json line in
      check "schema version" true (assoc_exn "v" j = JNum 1.);
      match assoc_exn "kind" j with
      | JStr kind -> (kind, j)
      | _ -> Alcotest.fail "kind is not a string")
    lines

let test_export_run_jsonl () =
  let probe = Probe.create () in
  let r =
    Runner.run ~seed:3 ~probe ~profile:true ~algo:"paran1" ~adv:"max-delay"
      ~p:6 ~t:24 ~d:3 ()
  in
  let snap = Probe.snapshot probe in
  let kinds =
    with_temp_file (fun path ->
        let oc = open_out path in
        Export.write_run oc
          ~meta:[ ("algo", Export.Json.Str "paran1") ]
          ~snapshot:snap ?spans:r.Runner.spans r.Runner.metrics;
        close_out oc;
        validate_lines (read_lines path))
  in
  let count k = List.length (List.filter (fun (k', _) -> k' = k) kinds) in
  check_int "one run header" 1 (count "run");
  check_int "one metrics line" 1 (count "metrics");
  check_int "one phases line" 1 (count "phases");
  (* the phases line lists the engine catalogue with counts *)
  let _, phases_line = List.find (fun (k, _) -> k = "phases") kinds in
  (match assoc_exn "phases" phases_line with
   | JList phases ->
     let names =
       List.map
         (fun ph ->
           match assoc_exn "name" ph with
           | JStr s -> s
           | _ -> Alcotest.fail "phase name not a string")
         phases
     in
     check "engine phase catalogue" true
       (List.sort compare names
       = [ "adversary"; "algo_step"; "bcast_maint"; "deliver"; "oracle" ]);
     List.iter
       (fun ph ->
         check "phase has wall_s" true
           (match assoc_exn "wall_s" ph with JNum _ -> true | _ -> false);
         check "phase has count" true
           (match assoc_exn "count" ph with JNum _ -> true | _ -> false))
       phases
   | _ -> Alcotest.fail "phases field not a list");
  (* every histogram line carries exact percentile intervals *)
  List.iter
    (fun (k, j) ->
      if k = "histogram" then
        List.iter
          (fun q ->
            check (q ^ " is an interval") true
              (match assoc_exn q j with
               | JList [ JNum lo; JNum hi ] -> lo <= hi
               | _ -> false))
          [ "p50"; "p90"; "p99" ])
    kinds;
  check_int "counter lines" (List.length snap.Probe.counters) (count "counter");
  check_int "gauge lines" (List.length snap.Probe.gauges) (count "gauge");
  check_int "histogram lines"
    (List.length snap.Probe.histograms)
    (count "histogram");
  check_int "vector lines" (List.length snap.Probe.vectors) (count "vector");
  check_int "series lines" (List.length snap.Probe.series) (count "series");
  (* the metrics line round-trips the interesting integers *)
  let _, metrics_line = List.find (fun (k, _) -> k = "metrics") kinds in
  check "work field" true
    (assoc_exn "work" metrics_line
    = JNum (float_of_int r.Runner.metrics.Metrics.work));
  check "per_proc_work field" true
    (match assoc_exn "per_proc_work" metrics_line with
     | JList l -> List.length l = 6
     | _ -> false)

let test_export_trace_jsonl () =
  let r, trace =
    Runner.run_traced ~seed:1 ~algo:"da-q4" ~adv:"fair" ~p:4 ~t:12 ~d:2 ()
  in
  let kinds =
    with_temp_file (fun path ->
        let oc = open_out path in
        Export.write_trace oc ~meta:[] r.Runner.metrics trace;
        close_out oc;
        validate_lines (read_lines path))
  in
  let count k = List.length (List.filter (fun (k', _) -> k' = k) kinds) in
  check_int "one trace header" 1 (count "trace");
  check_int "one metrics line" 1 (count "metrics");
  check_int "one line per event" (Trace.length trace) (count "event");
  let _, header = List.find (fun (k, _) -> k = "trace") kinds in
  check "header event count" true
    (assoc_exn "events" header = JNum (float_of_int (Trace.length trace)))

let test_json_escaping_and_floats () =
  let open Export.Json in
  check "escapes" true
    (to_string (Str "a\"b\\c\nd") = {|"a\"b\\c\nd"|});
  check "control chars" true (to_string (Str "\001") = {|"\u0001"|});
  check "nan -> null" true (to_string (Float Float.nan) = "null");
  check "inf -> null" true (to_string (Float Float.infinity) = "null");
  check "int float keeps point" true
    (String.contains (to_string (Float 2.0)) '.');
  check "compact obj" true
    (to_string (Obj [ ("a", Int 1); ("b", List [ Bool true; Null ]) ])
    = {|{"a":1,"b":[true,null]}|});
  (* and the parser above accepts everything the printer emits *)
  let v =
    Obj
      [
        ("s", Str "x\"\n\tzz\\");
        ("f", Float 3.25);
        ("l", List [ Int 1; Null; Bool false ]);
      ]
  in
  check "printer output parses" true
    (match parse_json (to_string v) with
     | JObj [ ("s", JStr "x\"\n\tzz\\"); ("f", JNum 3.25); ("l", _) ] -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Progress: force-rendered output has the k/n shape; inactive
   otherwise.                                                          *)

let test_progress_rendering () =
  let path = Filename.temp_file "doall_progress" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      let pr =
        Doall_obs.Progress.create ~out:oc ~force:true ~total:3 ~label:"grid" ()
      in
      Doall_obs.Progress.tick pr;
      Doall_obs.Progress.tick pr;
      Doall_obs.Progress.tick pr;
      Doall_obs.Progress.finish pr;
      close_out oc;
      let text =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check "mentions label" true
        (try ignore (Str.search_forward (Str.regexp_string "grid") text 0); true
         with Not_found -> false);
      check "mentions 3/3" true
        (try ignore (Str.search_forward (Str.regexp_string "3/3") text 0); true
         with Not_found -> false);
      (* a non-tty, non-forced meter writes nothing *)
      let oc2 = open_out path in
      let quiet =
        Doall_obs.Progress.create ~out:oc2 ~total:2 ~label:"quiet" ()
      in
      Doall_obs.Progress.tick quiet;
      Doall_obs.Progress.finish quiet;
      close_out oc2;
      check_int "silent when not a tty" 0
        (let ic = open_in path in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> in_channel_length ic)))

(* Overwrite hygiene, through a real pipe: every carriage return must
   be chased by a clear-to-EOL (CSI K) so a shrinking render ("ETA
   1m40s" -> "ETA 9s") cannot leave the old line's tail on screen, and
   no render may rely on trailing-space padding instead. *)
let test_progress_erases_line () =
  let r, w = Unix.pipe () in
  let wc = Unix.out_channel_of_descr w in
  let pr = Doall_obs.Progress.create ~out:wc ~force:true ~total:3 ~label:"pipe" () in
  Doall_obs.Progress.tick pr;
  (* space the renders past the 0.05s throttle so both draw *)
  Unix.sleepf 0.06;
  Doall_obs.Progress.tick pr;
  Doall_obs.Progress.tick pr;
  Doall_obs.Progress.finish pr;
  close_out wc;
  let text =
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 256 in
    let rec drain () =
      match Unix.read r chunk 0 256 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    in
    drain ();
    Unix.close r;
    Buffer.contents buf
  in
  check "pipe saw renders" true (String.length text > 0);
  check "intermediate render drew" true
    (try ignore (Str.search_forward (Str.regexp_string "2/3") text 0); true
     with Not_found -> false);
  (* every \r is immediately followed by ESC [ K *)
  let n = String.length text in
  let rec scan i ok =
    if i >= n then ok
    else if text.[i] <> '\r' then scan (i + 1) ok
    else
      scan (i + 1)
        (ok && i + 3 < n && text.[i + 1] = '\027' && text.[i + 2] = '['
       && text.[i + 3] = 'K')
  in
  check "every \\r erases to EOL" true (String.contains text '\r' && scan 0 true);
  (* and no render papers over stale tails with trailing blanks *)
  check "no space-padding before overwrite" true
    (try ignore (Str.search_forward (Str.regexp " +\r") text 0); false
     with Not_found -> true)

(* ------------------------------------------------------------------ *)
(* Pool observability.                                                 *)

let test_pool_jobs_completed () =
  Pool.with_pool ~jobs:2 (fun pool ->
      check_int "idle queue" 0 (Pool.queue_depth pool);
      let xs = List.init 40 Fun.id in
      let ys = Pool.map pool (fun x -> x * x) xs in
      check "map result" true (ys = List.map (fun x -> x * x) xs);
      let completed = Pool.jobs_completed pool in
      check_int "one slot per domain" 2 (Array.length completed);
      check_int "all tasks accounted" 40
        (Array.fold_left ( + ) 0 completed);
      check_int "queue drained" 0 (Pool.queue_depth pool))

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "disabled probe" `Quick
      test_disabled_probe_records_nothing;
    Alcotest.test_case "gauge last/max" `Quick test_gauge_last_and_max;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "observe_n" `Quick
      test_observe_n_equals_repeated_observe;
    Alcotest.test_case "vector" `Quick test_vector;
    Alcotest.test_case "series + snapshot isolation" `Quick
      test_series_and_snapshot_isolation;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "engine instruments vs metrics" `Quick
      test_engine_instruments_match_metrics;
    Alcotest.test_case "determinism: jobs x probes" `Quick
      test_grid_deterministic_across_jobs_and_probes;
    Alcotest.test_case "export run JSONL" `Quick test_export_run_jsonl;
    Alcotest.test_case "export trace JSONL" `Quick test_export_trace_jsonl;
    Alcotest.test_case "JSON escaping/floats" `Quick
      test_json_escaping_and_floats;
    Alcotest.test_case "progress rendering" `Quick test_progress_rendering;
    Alcotest.test_case "progress erases line" `Quick test_progress_erases_line;
    Alcotest.test_case "pool jobs_completed" `Quick test_pool_jobs_completed;
  ]
