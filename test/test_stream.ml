(* The shared-broadcast stream and the delta wire are pure transport
   optimizations: a run under a declared-constant-latency adversary must
   be observably identical to the same run with the declaration stripped
   ([Adversary.with_latency Variable]), which forces the general
   per-destination path with full-snapshot payloads. These tests pin
   that equivalence across algorithms and adversaries, and pin the xl
   cell shapes' determinism across domain-pool sizes. *)

open Doall_sim
open Doall_adversary
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let metrics_key (m : Metrics.t) =
  (* everything deterministic and wall-clock-free *)
  ( (m.Metrics.work, m.Metrics.messages, m.Metrics.sigma),
    (m.Metrics.executions, m.Metrics.completed, m.Metrics.halted),
    (m.Metrics.crashed, Array.to_list m.Metrics.per_proc_work) )

let run ?(p = 16) ?(t = 96) ?(d = 5) ?(seed = 3) algo adv =
  let cfg = Config.make ~seed ~p ~t () in
  Engine.run_packed algo cfg ~d ~adversary:adv ~check:true ()

let algos () =
  [
    ("paran1", Algo_pa.make_ran1 ());
    ("paran2", Algo_pa.make_ran2 ());
    ("padet", Algo_pa.make_det ());
    ("paran1-b3", Algo_pa.make_ran1 ~broadcast_every:3 ());
    ("paran1-single", Algo_pa.make_ran1 ~gossip:`Single ());
    ("paran1-f2", Algo_pa.make_ran1 ~fanout:2 ());
    ("da-q4", Algo_da.make ~q:4 ());
    ("da-q2", Algo_da.make ~q:2 ());
  ]

let declared_adversaries () =
  [
    ("fair", Adversary.fair);
    ("fixed-3", Adversary.fixed_delay 3);
    ("max-delay", Adversary.max_delay);
    ( "laggard",
      Schedule.combine ~name:"laggard" ~schedule:Schedule.adaptive_laggard () );
    ( "crash-two",
      Crash.into ~name:"crash-two" (Crash.at_time ~time:2 ~pids:[ 1; 5 ]) );
  ]

let test_stream_equals_slow_path () =
  (* The keystone: declared vs stripped runs agree on every metric, for
     every (algorithm x adversary) pair — including crash-without-
     recovery, where halted and crashed pids deactivate the stream. *)
  List.iter
    (fun (aname, algo) ->
      List.iter
        (fun (vname, adv) ->
          let fast = run algo adv in
          let slow = run algo (Adversary.with_latency Adversary.Variable adv) in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s: declared = stripped" aname vname)
            true
            (metrics_key fast = metrics_key slow))
        (declared_adversaries ()))
    (algos ())

let test_variable_latency_not_streamed () =
  (* uniform_delay draws from the adversary RNG per destination and is
     declared Variable: runs must keep the historical per-destination
     behaviour (pinned here via a golden triple, guarding against an
     accidental stream on the RNG-dependent path). *)
  let m = run (Algo_pa.make_det ()) Adversary.uniform_delay in
  check "completed" true m.Metrics.completed;
  check "uniform-delay differs from fixed-1" true
    (metrics_key m <> metrics_key (run (Algo_pa.make_det ()) Adversary.fair))

let test_faulted_declaration_is_safe () =
  (* Fault injection (dup / reorder / drop) gates the stream and the
     delta wire off even when latency is declared: the declared and
     stripped runs still agree, now both on the general path. *)
  let faulted name policy =
    (name, Fault.into ~name policy)
  in
  List.iter
    (fun (vname, adv) ->
      List.iter
        (fun (aname, algo) ->
          let fast = run ~seed:9 algo adv in
          let slow =
            run ~seed:9 algo (Adversary.with_latency Adversary.Variable adv)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s: faults force one path" aname vname)
            true
            (metrics_key fast = metrics_key slow))
        [ ("paran1", Algo_pa.make_ran1 ()); ("da-q4", Algo_da.make ~q:4 ()) ])
    [
      faulted "dup-storm" (Fault.duplicate ~copies:2 ~prob:0.3);
      faulted "reorder" (Fault.reorder ~prob:0.4);
      faulted "lossy" (Fault.drop ~prob:0.2);
    ]

let test_recovery_gates_stream_off () =
  (* A restart policy invalidates the delta wire's monotone-receiver
     premise; the engine must fall back even under declared latency. *)
  let crash, restart = Crash.flaky ~survivor:0 ~up:6 ~down:3 () in
  let adv = Crash.into_recovering ~name:"flaky" ~crash ~restart in
  let fast = run (Algo_pa.make_ran1 ()) adv in
  let slow =
    run (Algo_pa.make_ran1 ()) (Adversary.with_latency Adversary.Variable adv)
  in
  check "flaky-restart: declared = stripped" true
    (metrics_key fast = metrics_key slow);
  check "flaky-restart completes" true fast.Metrics.completed

let test_xl_shape_jobs_determinism () =
  (* xl-shaped mini cells (p >> t fleet and t >> p task set) through the
     domain pool: results must be bit-identical at jobs 1, 2 and 4 —
     the shared-stream state is per-run, never shared across domains. *)
  let specs =
    Runner.grid
      ~seeds:[ 1; 2 ]
      ~algos:[ "paran1"; "da-q4" ]
      ~advs:[ "max-delay" ]
      ~points:[ (128, 32, 4); (16, 512, 6) ]
      ()
  in
  let key (r : Runner.result) =
    (r.Runner.metrics, r.Runner.algo, r.Runner.adv, r.Runner.seed)
  in
  let base = List.map key (Runner.run_grid ~jobs:1 specs) in
  List.iter
    (fun jobs ->
      let got = List.map key (Runner.run_grid ~jobs specs) in
      check (Printf.sprintf "jobs=%d identical to jobs=1" jobs) true
        (got = base))
    [ 2; 4 ]

let test_messages_count_multicast () =
  (* M parity on the stream: one multicast = p-1 point-to-point sends,
     exactly as on the general path (Definition 2.2). *)
  let p = 16 in
  let m = run ~p (Algo_pa.make_ran1 ()) Adversary.max_delay in
  check_int "M is a multiple of p-1" 0 (m.Metrics.messages mod (p - 1))

let suite =
  [
    Alcotest.test_case "stream = per-destination path (all pairs)" `Quick
      test_stream_equals_slow_path;
    Alcotest.test_case "variable latency stays general" `Quick
      test_variable_latency_not_streamed;
    Alcotest.test_case "fault injection gates the stream" `Quick
      test_faulted_declaration_is_safe;
    Alcotest.test_case "crash recovery gates the stream" `Quick
      test_recovery_gates_stream_off;
    Alcotest.test_case "xl shapes: jobs 1/2/4 bit-identical" `Quick
      test_xl_shape_jobs_determinism;
    Alcotest.test_case "multicast M parity" `Quick test_messages_count_multicast;
  ]
