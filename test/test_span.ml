(* The engine self-profiler and its two consumers: span mechanics,
   the profile determinism contract (metrics and span structure must
   not move a bit with profiling on/off or across jobs counts), the
   Chrome trace-event exporter (valid JSON, matched s/f flow pairs),
   and the structured run-diff. *)

open Doall_core
module Chrome = Doall_obs.Chrome
module Diff = Doall_obs.Diff
module Json = Doall_obs.Export.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Span mechanics.                                                     *)

let test_span_enter_leave () =
  let t = Span.create () in
  check "enabled by default" true (Span.enabled t);
  let sp = Span.span t "a" in
  Span.enter sp;
  Span.leave sp;
  Span.enter sp;
  Span.leave sp;
  match Span.snapshot t with
  | [ ("a", (total, count)) ] ->
    check_int "two sections" 2 count;
    check "non-negative total" true (total >= 0.0)
  | _ -> Alcotest.fail "expected exactly one span"

let test_span_leave_without_enter () =
  let t = Span.create () in
  let sp = Span.span t "a" in
  Span.leave sp;
  Span.leave sp;
  check "unmatched leaves ignored" true
    (Span.snapshot t = [ ("a", (0.0, 0)) ])

let test_span_disabled () =
  let t = Span.create ~enabled:false () in
  check "disabled" true (not (Span.enabled t));
  let sp = Span.span t "a" in
  Span.enter sp;
  Span.leave sp;
  ignore (Span.time sp (fun () -> 41 + 1));
  check "disabled span records nothing" true
    (Span.snapshot t = [ ("a", (0.0, 0)) ])

let test_span_shift () =
  let t = Span.create () in
  let a = Span.span t "a" and b = Span.span t "b" in
  Span.enter a;
  Span.shift a b;
  Span.leave b;
  let counts = Span.names_and_counts (Span.snapshot t) in
  check "shift closes a and opens b" true
    (counts = [ ("a", 1); ("b", 1) ]);
  (* shift with the source closed still opens the destination *)
  Span.shift a b;
  Span.leave b;
  check "shift on closed source" true
    (Span.names_and_counts (Span.snapshot t) = [ ("a", 1); ("b", 2) ])

let test_span_registry_and_snapshot () =
  let t = Span.create () in
  let a = Span.span t "z" in
  check "same name, same span" true (a == Span.span t "z");
  ignore (Span.span t "m");
  ignore (Span.span t "a");
  let names = List.map fst (Span.snapshot t) in
  check "snapshot sorted by name" true (names = [ "a"; "m"; "z" ]);
  let sp = Span.span t "a" in
  ignore (Span.time sp (fun () -> ()));
  check "total sums spans" true (Span.total (Span.snapshot t) >= 0.0);
  check "time raises through" true
    (try
       Span.time sp (fun () -> raise Exit)
     with Exit ->
       (* the section still closed *)
       List.assoc "a" (Span.names_and_counts (Span.snapshot t)) = 2)

(* ------------------------------------------------------------------ *)
(* Profiled runs: deterministic counts, bit-identical metrics.         *)

let profiled_run ?(check = false) ~algo ~adv ~p ~t ~d () =
  Runner.run ~seed:3 ~profile:true ~check ~algo ~adv ~p ~t ~d ()

let test_profile_phase_counts () =
  List.iter
    (fun (algo, adv) ->
      let r = profiled_run ~algo ~adv ~p:8 ~t:48 ~d:4 () in
      let sp =
        match r.Runner.spans with
        | Some sp -> sp
        | None -> Alcotest.fail "profile:true must fill result.spans"
      in
      let counts = Span.names_and_counts sp in
      let c name = List.assoc name counts in
      let w = r.Runner.metrics.Doall_sim.Metrics.work in
      let sigma = r.Runner.metrics.Doall_sim.Metrics.sigma in
      (* one deliver -> algo_step -> bcast_maint chain per engine step *)
      check_int (algo ^ ": deliver per step") w (c "deliver");
      check_int (algo ^ ": algo_step per step") w (c "algo_step");
      check_int (algo ^ ": bcast_maint per step") w (c "bcast_maint");
      check_int (algo ^ ": adversary per tick") (sigma + 1) (c "adversary");
      check_int (algo ^ ": oracle off without check") 0 (c "oracle"))
    [ ("paran1", "max-delay"); ("da-q4", "fair"); ("padet", "uniform-delay") ]

let test_profile_oracle_span () =
  let r = profiled_run ~check:true ~algo:"paran1" ~adv:"fair" ~p:6 ~t:24 ~d:3 () in
  let counts = Span.names_and_counts (Option.get r.Runner.spans) in
  check "oracle span counts with ~check" true (List.assoc "oracle" counts > 0)

let comparable (r : Runner.result) =
  (r.Runner.metrics, r.Runner.algo, r.Runner.adv, r.Runner.seed, r.Runner.obs)

let test_profile_does_not_perturb_metrics () =
  let base =
    Runner.run ~seed:5 ~algo:"paran2" ~adv:"max-delay" ~p:8 ~t:40 ~d:3 ()
  in
  let prof =
    Runner.run ~seed:5 ~profile:true ~algo:"paran2" ~adv:"max-delay" ~p:8 ~t:40
      ~d:3 ()
  in
  check "metrics identical profile on/off" true (comparable base = comparable prof);
  check "unprofiled run carries no spans" true (base.Runner.spans = None)

let test_profile_structure_stable_across_jobs () =
  let specs =
    Runner.grid
      ~seeds:[ 0; 1 ]
      ~algos:[ "paran1"; "da-q4" ]
      ~advs:[ "max-delay"; "fair" ]
      ~points:[ (6, 24, 3) ]
      ()
  in
  let structure rs =
    List.map
      (fun (r : Runner.result) ->
        (comparable r, Option.map Span.names_and_counts r.Runner.spans))
      rs
  in
  let base = structure (Runner.run_grid ~jobs:1 ~profile:true specs) in
  check "every cell profiled" true
    (List.for_all (fun (_, s) -> s <> None) base);
  List.iter
    (fun jobs ->
      let rs = structure (Runner.run_grid ~jobs ~profile:true specs) in
      check
        (Printf.sprintf "span structure identical at jobs=%d" jobs)
        true (base = rs))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export.                                          *)

let traced_run () =
  Runner.run_traced ~seed:2 ~profile:true ~algo:"paran1" ~adv:"max-delay" ~p:5
    ~t:20 ~d:3 ()

let trace_events doc =
  match doc with
  | Json.Obj fields ->
    check "displayTimeUnit" true
      (List.assoc "displayTimeUnit" fields = Json.Str "ms");
    (match List.assoc "traceEvents" fields with
     | Json.List evs -> evs
     | _ -> Alcotest.fail "traceEvents is not a list")
  | _ -> Alcotest.fail "document is not an object"

let phase_of = function
  | Json.Obj fields -> (
    match List.assoc_opt "ph" fields with
    | Some (Json.Str ph) -> ph
    | _ -> Alcotest.fail "event without ph")
  | _ -> Alcotest.fail "event is not an object"

let field name = function
  | Json.Obj fields -> List.assoc name fields
  | _ -> raise Not_found

let test_chrome_valid_json_and_flows () =
  let r, tr = traced_run () in
  let doc = Chrome.json ?spans:r.Runner.spans ~p:5 tr in
  (* the rendered artifact round-trips through the strict parser *)
  (* validate the artifact as serialized: parse back and walk that.
     (Not compared for identity with [doc]: the printer keeps 12
     significant digits, enough for trace viewers but not for
     bit-exact float round-trips of the clock-derived span values.) *)
  let evs =
    match Json.of_string (Json.to_string doc) with
    | Ok doc' -> trace_events doc'
    | Error msg -> Alcotest.fail ("chrome document does not parse: " ^ msg)
  in
  check "has events" true (evs <> []);
  (* s/f flows come in exactly matched id pairs *)
  let ids ph =
    List.filter_map
      (fun ev -> if phase_of ev = ph then Some (field "id" ev) else None)
      evs
    |> List.sort compare
  in
  let starts = ids "s" and finishes = ids "f" in
  check "at least one flow" true (starts <> []);
  check "s/f ids pair up" true (starts = finishes);
  check "flow ids distinct" true
    (List.length (List.sort_uniq compare starts) = List.length starts);
  (* every complete slice has a duration; finishes bind at enter *)
  List.iter
    (fun ev ->
      match phase_of ev with
      (* sim slices carry the integer step duration; profile slices a
         clock-derived float (non-negative, coarse clocks can floor a
         fast phase to 0) *)
      | "X" -> check "X has dur" true (match field "dur" ev with
          | Json.Int d -> d > 0
          | Json.Float d -> d >= 0.0
          | _ -> false)
      | "f" -> check "f binds enter" true (field "bp" ev = Json.Str "e")
      | _ -> ())
    evs;
  (* both processes present: simulation tracks and the profile track *)
  let pids =
    List.filter_map
      (fun ev -> match field "pid" ev with
        | Json.Int pid -> Some pid
        | _ -> None
      | exception Not_found -> None)
      evs
    |> List.sort_uniq compare
  in
  check "simulation + profile processes" true (pids = [ 1; 2 ])

let test_chrome_without_spans () =
  let r, tr =
    Runner.run_traced ~seed:7 ~algo:"da-q4" ~adv:"fair" ~p:4 ~t:12 ~d:2 ()
  in
  check "no profile requested" true (r.Runner.spans = None);
  let evs = trace_events (Chrome.json ~p:4 tr) in
  check "profile track absent" true
    (List.for_all
       (fun ev ->
         match field "pid" ev with
         | Json.Int pid -> pid = 1
         | _ -> false
         | exception Not_found -> true)
       evs)

(* ------------------------------------------------------------------ *)
(* Structured run-diff.                                                *)

let test_diff_machine_key () =
  List.iter
    (fun (name, expect) ->
      check (Printf.sprintf "machine_key %S" name) expect (Diff.machine_key name))
    [
      ("wall_s", true);
      ("cell_wall", true);
      ("speedup", true);
      ("rss_mb", true);
      ("measured", true);
      ("seconds", true);
      ("ns", true);
      ("alloc_ns", true);
      (* "columns" contains "ns" as a substring but is logical data *)
      ("columns", false);
      ("work", false);
      ("messages", false);
    ]

let test_diff_exact_vs_tolerant () =
  let doc work wall =
    Json.Obj [ ("work", Json.Int work); ("wall_s", Json.Float wall) ]
  in
  check "identical agree" true (Diff.compare_values (doc 368 0.5) (doc 368 0.7) = []);
  (match Diff.compare_values (doc 368 0.5) (doc 369 0.5) with
   | [ f ] ->
     check "logical path" true (f.Diff.path = "$.work");
     check "logical finding not machine" true (not f.Diff.machine)
   | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  (* machine values: absolute slack of 1s, then ratio tolerance *)
  let wall a b = Diff.compare_values (doc 1 a) (doc 1 b) in
  check "within absolute slack" true (wall 0.2 1.1 = []);
  check "within ratio" true (wall 100.0 130.0 = []);
  (match wall 100.0 200.0 with
   | [ f ] -> check "tolerance miss is machine" true f.Diff.machine
   | fs -> Alcotest.failf "expected one wall finding, got %d" (List.length fs));
  check "custom tol" true (Diff.compare_values ~tol:2.5 (doc 1 100.0) (doc 1 200.0) = [])

let test_diff_structure () =
  let a = Json.Obj [ ("x", Json.Int 1); ("y", Json.Int 2) ] in
  let b = Json.Obj [ ("y", Json.Int 2); ("x", Json.Int 1) ] in
  check "field order ignored" true (Diff.compare_values a b = []);
  let missing = Json.Obj [ ("x", Json.Int 1) ] in
  check_int "missing field is a finding" 1
    (List.length (Diff.compare_values a missing));
  let nested =
    Json.Obj [ ("wall", Json.Obj [ ("inner", Json.Float 9.0) ]) ]
  in
  let nested' =
    Json.Obj [ ("wall", Json.Obj [ ("inner", Json.Float 9.5) ]) ]
  in
  check "machine flag covers subtree" true
    (Diff.compare_values nested nested' = []);
  check_int "list length mismatch" 1
    (List.length
       (Diff.compare_values (Json.List [ Json.Int 1 ]) (Json.List [])));
  check_int "docs length mismatch" 1
    (List.length (Diff.compare_docs [ a; b ] [ a ]))

let with_temp_files f =
  let pa = Filename.temp_file "doall_diff_a" ".jsonl" in
  let pb = Filename.temp_file "doall_diff_b" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ pa; pb ])
    (fun () -> f pa pb)

let write_file path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc text)

let test_diff_files () =
  with_temp_files (fun pa pb ->
      (* JSONL: line-by-line comparison with line-prefixed paths *)
      write_file pa "{\"v\":1,\"work\":368}\n{\"v\":1,\"wall_s\":0.5}\n";
      write_file pb "{\"v\":1,\"work\":369}\n{\"v\":1,\"wall_s\":0.6}\n";
      (match Diff.compare_files pa pb with
       | Ok [ f ] ->
         check "line-prefixed path" true (f.Diff.path = "line 1 $.work")
       | Ok fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)
       | Error msg -> Alcotest.fail msg);
      check "identical files agree" true (Diff.compare_files pa pa = Ok []);
      (* whole-file documents load as a single doc, no line prefix *)
      write_file pa "{\n  \"cells\": [1, 2],\n  \"wall_s\": 3.0\n}\n";
      check "whole-file parse" true (Diff.load pa = Ok [ Json.Obj [
        ("cells", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("wall_s", Json.Float 3.0) ] ]);
      (* unreadable input is an Error, not findings *)
      write_file pb "{not json";
      check "parse failure is Error" true
        (match Diff.compare_files pa pb with Error _ -> true | Ok _ -> false))

let test_diff_gates () =
  check "pins agree" true
    (Diff.gate_metric_pins ~key:"cell"
       ~pins:[ ("work", 368); ("sigma", 22) ]
       ~actual:[ ("work", 368); ("sigma", 22) ]
    = []);
  (match
     Diff.gate_metric_pins ~key:"cell"
       ~pins:[ ("work", 368); ("messages", 9) ]
       ~actual:[ ("work", 369) ]
   with
   | [ a; b ] ->
     check "pin mismatch path" true (a.Diff.path = "cell.work");
     check "pin mismatch is logical" true (not a.Diff.machine);
     check "missing pin reported" true (b.Diff.path = "cell.messages")
   | fs -> Alcotest.failf "expected two pin findings, got %d" (List.length fs));
  check "wall gate passes" true
    (Diff.gate_wall_ratio ~key:"cell" ~reference_s:10.0 ~wall_s:2.0
       ~min_ratio:4.0
    = []);
  match
    Diff.gate_wall_ratio ~key:"cell" ~reference_s:10.0 ~wall_s:5.0
      ~min_ratio:4.0
  with
  | [ f ] -> check "wall gate miss is machine" true f.Diff.machine
  | fs -> Alcotest.failf "expected one gate finding, got %d" (List.length fs)

let suite =
  [
    Alcotest.test_case "span enter/leave" `Quick test_span_enter_leave;
    Alcotest.test_case "span unmatched leave" `Quick
      test_span_leave_without_enter;
    Alcotest.test_case "span disabled" `Quick test_span_disabled;
    Alcotest.test_case "span shift" `Quick test_span_shift;
    Alcotest.test_case "span registry/snapshot" `Quick
      test_span_registry_and_snapshot;
    Alcotest.test_case "profile phase counts" `Quick test_profile_phase_counts;
    Alcotest.test_case "profile oracle span" `Quick test_profile_oracle_span;
    Alcotest.test_case "profile does not perturb metrics" `Quick
      test_profile_does_not_perturb_metrics;
    Alcotest.test_case "profile structure across jobs" `Quick
      test_profile_structure_stable_across_jobs;
    Alcotest.test_case "chrome JSON + flows" `Quick
      test_chrome_valid_json_and_flows;
    Alcotest.test_case "chrome without spans" `Quick test_chrome_without_spans;
    Alcotest.test_case "diff machine keys" `Quick test_diff_machine_key;
    Alcotest.test_case "diff exact vs tolerant" `Quick
      test_diff_exact_vs_tolerant;
    Alcotest.test_case "diff structure" `Quick test_diff_structure;
    Alcotest.test_case "diff files" `Quick test_diff_files;
    Alcotest.test_case "diff gates" `Quick test_diff_gates;
  ]
