(* The epoch-digest fast path (Bcast ?fold / Algorithm.merge_homomorphic)
   must be invisible everywhere except wall clock: folding one epoch's
   broadcasts and applying the digest once has to leave every receiver's
   knowledge, every re-broadcast tracker, and every counter exactly
   where the per-record walk would. Three layers of pins: the bitset
   algebra (QCheck), raw network traffic across all three backends, and
   full engine runs compared probe-counter by probe-counter. *)

open Doall_sim
open Doall_adversary
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Property: applying union_many(deltas) once = applying each delta,
   including the tracker marks a relaying receiver would flush next.   *)

let deltas_gen =
  QCheck2.Gen.(
    let* n = int_range 1 300 in
    let* receiver = list_size (int_range 0 40) (int_range 0 (n - 1)) in
    let* senders =
      list_size (int_range 1 12)
        (list_size (int_range 0 25) (int_range 0 (n - 1)))
    in
    return (n, receiver, senders))

(* [delta] is abstract; a flush is characterized by its pair count plus
   its image on an empty set (flushes never emit duplicate words, and a
   pair's value is the word's full content, so the image recovers every
   pair). *)
let flush_fingerprint n b tk =
  let dl = Bitset.delta_flush b tk in
  let img = Bitset.create n in
  Bitset.apply_delta ~dst:img dl;
  (Bitset.delta_words dl, img)

let fingerprint_equal (w1, img1) (w2, img2) = w1 = w2 && Bitset.equal img1 img2

let prop_digest_equals_sequential =
  QCheck2.Test.make ~name:"digest apply = sequential applies" ~count:300
    deltas_gen (fun (n, receiver, senders) ->
      let deltas =
        Array.of_list
          (List.map
             (fun is ->
               let b = Bitset.create n in
               let tk = Bitset.tracker b in
               List.iter (Bitset.set_tracked b tk) is;
               Bitset.delta_flush b tk)
             senders)
      in
      let seq = Bitset.of_list n receiver in
      let seq_tk = Bitset.tracker seq in
      Array.iter
        (fun dl -> Bitset.apply_delta_tracked ~dst:seq seq_tk dl)
        deltas;
      let dig = Bitset.of_list n receiver in
      let dig_tk = Bitset.tracker dig in
      Bitset.apply_delta_tracked ~dst:dig dig_tk (Bitset.union_many deltas);
      (* same knowledge, and the delta each receiver would re-broadcast
         carries the same word/value pairs (order may differ: marks
         happen in first-gain vs first-seen order, and application is
         order-insensitive either way) *)
      Bitset.equal seq dig
      && Bitset.cardinal seq = Bitset.cardinal dig
      && fingerprint_equal
           (flush_fingerprint n seq seq_tk)
           (flush_fingerprint n dig dig_tk))

let prop_union_many_one_pair_per_word =
  QCheck2.Test.make ~name:"union_many emits one pair per distinct word"
    ~count:200 deltas_gen (fun (n, _receiver, senders) ->
      let deltas =
        Array.of_list
          (List.map
             (fun is ->
               let b = Bitset.create n in
               let tk = Bitset.tracker b in
               List.iter (Bitset.set_tracked b tk) is;
               Bitset.delta_flush b tk)
             senders)
      in
      (* every touched word of a fresh set holds a gained bit, so the
         distinct words across all inputs are exactly the distinct
         word indices of the set bits *)
      let expected_words =
        List.length
          (List.sort_uniq compare
             (List.map (fun i -> i / 63) (List.concat senders)))
      in
      Bitset.delta_words (Bitset.union_many deltas) = expected_words)

(* ------------------------------------------------------------------ *)
(* Backend parity: identical broadcast traffic through Heap, Ring, and
   Ring + digest must agree on sends, logical deliveries, and the
   payload multiset each destination sees. Payload elements are tagged
   with their source because a digest may fold the receiver's own
   contribution in (sound for knowledge unions, which absorb it);
   own-tagged elements are filtered before comparison, mirroring that
   absorption, while the delivery *counts* must match exactly with no
   filtering. *)

let test_backend_parity () =
  let p = 8 in
  let fold msgs = List.concat (Array.to_list msgs) in
  let drive net =
    let got = Array.make p [] in
    let delivered = ref 0 in
    for now = 0 to 40 do
      for dst = 0 to p - 1 do
        delivered :=
          !delivered
          + Network.receive_iter net ~dst ~now (fun _src msg ->
                got.(dst) <- msg @ got.(dst))
      done;
      if now <= 30 then begin
        (* two same-due broadcasts per step: multi-record epochs, one of
           which periodically lands on a destination's own source *)
        let s1 = now mod p and s2 = (now + 3) mod p in
        Network.broadcast net ~src:s1 ~due:(now + 3) [ (s1, now) ];
        Network.broadcast net ~src:s2 ~due:(now + 3) [ (s2, 1000 + now) ]
      end
    done;
    let cleaned =
      Array.mapi
        (fun dst l ->
          List.sort compare (List.filter (fun (src, _) -> src <> dst) l))
        got
    in
    (Network.sent net, !delivered, cleaned)
  in
  let hs, hd, hg = drive (Network.create ~p ()) in
  let rs, rd, rg = drive (Network.create ~horizon:8 ~p ()) in
  let ds, dd, dg = drive (Network.create ~digest:fold ~horizon:8 ~p ()) in
  check_int "net.sends: heap = ring" hs rs;
  check_int "net.sends: ring = digest" rs ds;
  check_int "net.deliveries: heap = ring" hd rd;
  check_int "net.deliveries: ring = digest" rd dd;
  check "per-dst payloads: heap = ring" true (hg = rg);
  check "per-dst payloads: ring = digest" true (rg = dg)

let test_digest_sources_are_anonymous () =
  (* A digest delivery carries src = -1: it stands for a whole epoch,
     not any single sender. *)
  let net = Network.create ~digest:(fun msgs -> Array.to_list msgs |> List.concat) ~horizon:4 ~p:4 () in
  Network.broadcast net ~src:0 ~due:2 [ 10 ];
  Network.broadcast net ~src:1 ~due:2 [ 11 ];
  let srcs = ref [] in
  let n = Network.receive_iter net ~dst:2 ~now:5 (fun src _ -> srcs := src :: !srcs) in
  check_int "two logical deliveries" 2 n;
  Alcotest.(check (list int)) "one callback, src = -1" [ -1 ] !srcs

(* ------------------------------------------------------------------ *)
(* Engine parity: declared (stream + digest) vs stripped (Variable =
   general path) runs agree on metrics and on the net.sends /
   net.deliveries probe counters, for both merge-homomorphic families. *)

let metrics_key (m : Metrics.t) =
  ( (m.Metrics.work, m.Metrics.messages, m.Metrics.sigma),
    (m.Metrics.executions, m.Metrics.completed, m.Metrics.halted),
    Array.to_list m.Metrics.per_proc_work )

let counted_run algo adv =
  let cfg = Config.make ~seed:5 ~p:24 ~t:160 () in
  let probe = Probe.create () in
  let m = Engine.run_packed algo cfg ~d:6 ~adversary:adv ~probe ~check:true () in
  let c name = Probe.counter_value (Probe.counter probe name) in
  (metrics_key m, c "net.sends", c "net.deliveries")

let test_engine_probe_parity () =
  List.iter
    (fun (name, algo) ->
      List.iter
        (fun (vname, adv) ->
          let fast = counted_run algo adv in
          let slow =
            counted_run algo (Adversary.with_latency Adversary.Variable adv)
          in
          check
            (Printf.sprintf "%s under %s: declared = stripped" name vname)
            true (fast = slow))
        [
          ("fair", Adversary.fair);
          ("max-delay", Adversary.max_delay);
          ( "laggard",
            Schedule.combine ~name:"laggard"
              ~schedule:Schedule.adaptive_laggard () );
        ])
    [
      ("paran1", Algo_pa.make_ran1 ());
      ("paran1-single", Algo_pa.make_ran1 ~gossip:`Single ());
      ("da-q4", Algo_da.make ~q:4 ());
    ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_digest_equals_sequential;
    QCheck_alcotest.to_alcotest prop_union_many_one_pair_per_word;
    Alcotest.test_case "backend parity (heap | ring | digest)" `Quick
      test_backend_parity;
    Alcotest.test_case "digest deliveries are source-anonymous" `Quick
      test_digest_sources_are_anonymous;
    Alcotest.test_case "engine probe parity (declared = stripped)" `Quick
      test_engine_probe_parity;
  ]
