open Doall_sim
open Doall_adversary
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run ?(p = 8) ?(t = 32) ?(d = 4) ?(seed = 0) ?(algo = Algo_pa.make_det ())
    adv =
  let cfg = Config.make ~seed ~p ~t () in
  Engine.run_packed algo cfg ~d ~adversary:adv ()

let test_delay_policies_complete () =
  List.iter
    (fun (name, delay) ->
      let m = run (Delay.into ~name delay) in
      check (name ^ " completes") true m.Metrics.completed)
    [
      ("immediate", Delay.immediate);
      ("constant-3", Delay.constant 3);
      ("maximal", Delay.maximal);
      ("uniform", Delay.uniform);
      ("bimodal", Delay.bimodal ~slow_fraction:0.3);
      ("per-dest", Delay.per_destination (fun dst -> 1 + (dst mod 3)));
      ("batched", Delay.stage_batched ~stage_len:4);
      ("partition", Delay.partition ~split:4);
      ("churn", Delay.churn ~calm:6 ~storm:6);
      ("targeted", Delay.targeted ~victims:(fun pid -> pid mod 3 = 0));
    ]

let test_partition_slows_cross_traffic () =
  (* A partitioned network with large d must cost more than a uniform
     fast one on a coordination-heavy algorithm. *)
  let w_fast = (run (Delay.into ~name:"i" Delay.immediate) ~d:32).Metrics.work in
  let w_part =
    (run (Delay.into ~name:"p" (Delay.partition ~split:4)) ~d:32).Metrics.work
  in
  check "partition costs work" true (w_part >= w_fast)

let test_churn_between_extremes () =
  let w_fast = (run (Delay.into ~name:"i" Delay.immediate) ~d:16).Metrics.work in
  let w_slow = (run (Delay.into ~name:"m" Delay.maximal) ~d:16).Metrics.work in
  let w_churn =
    (run (Delay.into ~name:"c" (Delay.churn ~calm:8 ~storm:8)) ~d:16)
      .Metrics.work
  in
  check
    (Printf.sprintf "fast %d <= churn %d <= slow %d (with slack)" w_fast
       w_churn w_slow)
    true
    (w_churn >= w_fast && w_churn <= (2 * w_slow) + 16)

let test_max_delay_increases_work () =
  let w_fast = (run (Delay.into ~name:"i" Delay.immediate) ~d:16).Metrics.work in
  let w_slow = (run (Delay.into ~name:"m" Delay.maximal) ~d:16).Metrics.work in
  check "slower network, no less work" true (w_slow >= w_fast)

let test_schedules_complete () =
  List.iter
    (fun (name, schedule) ->
      let m = run (Schedule.into ~name schedule) in
      check (name ^ " completes") true m.Metrics.completed)
    [
      ("all", Schedule.all);
      ("solo", Schedule.solo 0);
      ("solo-last", Schedule.solo 7);
      ("round-robin", Schedule.round_robin ~width:3);
      ("random-subset", Schedule.random_subset ~prob:0.4);
      ("harmonic", Schedule.harmonic_speeds);
      ("laggard", Schedule.adaptive_laggard);
    ]

let test_solo_serializes () =
  let m = run (Schedule.into ~name:"solo" (Schedule.solo 2)) ~p:4 ~t:12 in
  (* Only processor 2 works: its work is the total. *)
  check_int "one worker" m.Metrics.work m.Metrics.per_proc_work.(2)

let test_round_robin_spreads () =
  let m = run (Schedule.into ~name:"rr" (Schedule.round_robin ~width:2)) in
  let active = Array.fold_left (fun acc w -> if w > 0 then acc + 1 else acc) 0
      m.Metrics.per_proc_work
  in
  check "several processors participated" true (active >= 2)

let test_crashes_complete () =
  List.iter
    (fun (name, crash) ->
      let m = run (Crash.into ~name crash) in
      check (name ^ " completes") true m.Metrics.completed)
    [
      ("none", Crash.none);
      ("at-time", Crash.at_time ~time:2 ~pids:[ 1; 3 ]);
      ("all-but-one", Crash.all_but_one ~survivor:4 ~time:1);
      ("poisson", Crash.poisson ~survivor:0 ~rate:0.02);
      ("staggered", Crash.staggered ~every:3);
    ]

let test_all_but_one_crash_counts () =
  let m = run (Crash.into ~name:"abo" (Crash.all_but_one ~survivor:0 ~time:1)) in
  check_int "p-1 crashed" 7 m.Metrics.crashed

let test_lb_det_stages_recorded () =
  let adv = Lb_deterministic.create () in
  let m = run adv ~p:16 ~t:16 ~d:4 ~algo:(Algo_da.make ~q:2 ()) in
  check "completes" true m.Metrics.completed;
  let stages = Lb_deterministic.stages_of adv in
  check "at least one stage" true (List.length stages >= 1);
  (* u_s decreases across stages *)
  let us_list = List.map (fun (_, us, _) -> us) stages in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  check "u_s non-increasing" true (non_increasing us_list);
  (* J_s tasks were unperformed at stage start and the set is non-empty *)
  List.iter
    (fun (_, us, js) ->
      check "J_s non-empty" true (List.length js >= 1);
      check "J_s within undone" true (List.length js <= us))
    stages

let test_lb_det_hurts_da () =
  (* The stage adversary must not make the algorithm cheaper than the
     friendly fair adversary. *)
  let fair = (run Adversary.fair ~p:32 ~t:32 ~d:8 ~algo:(Algo_da.make ~q:2 ())).Metrics.work in
  let adv = Lb_deterministic.create () in
  let hostile = (run adv ~p:32 ~t:32 ~d:8 ~algo:(Algo_da.make ~q:2 ())).Metrics.work in
  check
    (Printf.sprintf "hostile %d >= fair %d" hostile fair)
    true (hostile >= fair)

let test_lb_rand_hurts_pa () =
  let algo = Algo_pa.make_ran1 () in
  let fair = (run Adversary.fair ~p:32 ~t:32 ~d:8 ~algo).Metrics.work in
  let adv = Lb_randomized.create () in
  let hostile = (run adv ~p:32 ~t:32 ~d:8 ~algo).Metrics.work in
  check
    (Printf.sprintf "hostile %d >= fair %d" hostile fair)
    true (hostile >= fair)

let test_lb_rand_stages_recorded () =
  let adv = Lb_randomized.create ~selection:`Random () in
  let m = run adv ~p:16 ~t:16 ~d:4 ~algo:(Algo_pa.make_ran2 ()) in
  check "completes" true m.Metrics.completed;
  check "stages recorded" true (List.length (Lb_randomized.stages_of adv) >= 1)

let test_lb_work_grows_with_d () =
  (* The heart of the delay-sensitive lower bound: more delay budget, more
     forced work. Needs p = t large enough that the forced p*delta/3 per
     stage dominates the algorithm's baseline traversal cost. *)
  let work d =
    let adv = Lb_deterministic.create () in
    (run adv ~p:64 ~t:64 ~d ~algo:(Algo_da.make ~q:4 ())).Metrics.work
  in
  let w1 = work 1 and w8 = work 8 in
  check (Printf.sprintf "w(d=8)=%d > w(d=1)=%d * 1.2" w8 w1) true
    (float_of_int w8 >= 1.2 *. float_of_int w1)

let metrics_tuple (m : Metrics.t) =
  ( m.Metrics.work,
    m.Metrics.messages,
    m.Metrics.sigma,
    m.Metrics.executions,
    Array.to_list m.Metrics.per_proc_work )

let test_poisson_survivor_deterministic () =
  (* rate 1.0: every pid except the survivor crashes on the very first
     tick, before anyone steps — the survivor does all the work, every
     time, whatever the seed. *)
  List.iter
    (fun seed ->
      let m =
        run ~seed (Crash.into ~name:"p1" (Crash.poisson ~survivor:3 ~rate:1.0))
      in
      check "completes" true m.Metrics.completed;
      check_int "p-1 crashed" 7 m.Metrics.crashed;
      check_int "survivor did all the work" m.Metrics.work
        m.Metrics.per_proc_work.(3);
      Array.iteri
        (fun pid w -> if pid <> 3 then check_int "victims never stepped" 0 w)
        m.Metrics.per_proc_work)
    [ 0; 1; 7; 42 ];
  (* moderate rate: same seed, same execution, bit for bit *)
  let go () =
    run ~seed:5
      (Crash.into ~name:"p.3" (Crash.poisson ~survivor:0 ~rate:0.3))
  in
  Alcotest.(check bool)
    "seeded poisson is reproducible" true
    (metrics_tuple (go ()) = metrics_tuple (go ()))

let test_delay_policies_clamped () =
  (* Policies may return arbitrary latencies; the engine clamps into
     [1..d]. With the calendar-ring queue an unclamped due time would be
     rejected outright, so mere completion proves the clamp held. *)
  List.iter
    (fun (name, delay) ->
      let m = run ~d:3 (Delay.into ~name delay) in
      check (name ^ " completes under d=3") true m.Metrics.completed)
    [
      ("per-dest-huge", Delay.per_destination (fun dst -> 1000 + dst));
      ("per-dest-zero", Delay.per_destination (fun _ -> 0));
      ("per-dest-negative", Delay.per_destination (fun dst -> -dst));
      ("batched-long", Delay.stage_batched ~stage_len:50);
      ("constant-over", Delay.constant 99);
    ]

let test_structured_delays_deterministic () =
  (* partition / per_destination / stage_batched: same seed => identical
     run, across a few seeds (the policies are RNG-free; the clamp and
     delivery order must be too). *)
  List.iter
    (fun (name, delay) ->
      List.iter
        (fun seed ->
          let go () = run ~seed ~d:5 (Delay.into ~name delay) in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed=%d reproducible" name seed)
            true
            (metrics_tuple (go ()) = metrics_tuple (go ())))
        [ 0; 3; 11 ])
    [
      ("partition", Delay.partition ~split:4);
      ("per-dest", Delay.per_destination (fun dst -> 1 + (dst mod 4)));
      ("batched", Delay.stage_batched ~stage_len:3);
    ]

let test_batched_delivery_legal () =
  (* stage_batched with stage_len <= d never exceeds the bound: engine
     clamps, so completion plus work sanity suffices here; delivery
     batching must not lose messages (PA would then stall). *)
  let m = run (Delay.into ~name:"b" (Delay.stage_batched ~stage_len:4)) ~d:4 in
  check "completes" true m.Metrics.completed

let suite =
  [
    Alcotest.test_case "delay policies complete" `Quick
      test_delay_policies_complete;
    Alcotest.test_case "max delay costs work" `Quick
      test_max_delay_increases_work;
    Alcotest.test_case "partition slows cross traffic" `Quick
      test_partition_slows_cross_traffic;
    Alcotest.test_case "churn between extremes" `Quick
      test_churn_between_extremes;
    Alcotest.test_case "schedules complete" `Quick test_schedules_complete;
    Alcotest.test_case "solo serializes" `Quick test_solo_serializes;
    Alcotest.test_case "round-robin spreads" `Quick test_round_robin_spreads;
    Alcotest.test_case "crash patterns complete" `Quick test_crashes_complete;
    Alcotest.test_case "all-but-one crash count" `Quick
      test_all_but_one_crash_counts;
    Alcotest.test_case "lb-det records stages" `Quick
      test_lb_det_stages_recorded;
    Alcotest.test_case "lb-det >= fair on DA" `Quick test_lb_det_hurts_da;
    Alcotest.test_case "lb-rand >= fair on PaRan1" `Quick test_lb_rand_hurts_pa;
    Alcotest.test_case "lb-rand records stages" `Quick
      test_lb_rand_stages_recorded;
    Alcotest.test_case "forced work grows with d" `Quick
      test_lb_work_grows_with_d;
    Alcotest.test_case "batched delivery legal" `Quick
      test_batched_delivery_legal;
    Alcotest.test_case "poisson survivor deterministic" `Quick
      test_poisson_survivor_deterministic;
    Alcotest.test_case "delay policies clamped" `Quick
      test_delay_policies_clamped;
    Alcotest.test_case "structured delays deterministic" `Quick
      test_structured_delays_deterministic;
  ]
