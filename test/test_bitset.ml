open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_empty () =
  let b = Bitset.create 10 in
  check_int "length" 10 (Bitset.length b);
  check_int "cardinal" 0 (Bitset.cardinal b);
  check "empty" true (Bitset.is_empty b);
  check "not full" false (Bitset.is_full b);
  for i = 0 to 9 do
    check "bit clear" false (Bitset.mem b i)
  done

let test_zero_capacity () =
  let b = Bitset.create 0 in
  check "empty" true (Bitset.is_empty b);
  check "vacuously full" true (Bitset.is_full b)

let test_set_mem () =
  let b = Bitset.create 20 in
  Bitset.set b 0;
  Bitset.set b 7;
  Bitset.set b 8;
  Bitset.set b 19;
  check "0" true (Bitset.mem b 0);
  check "7" true (Bitset.mem b 7);
  check "8 (byte boundary)" true (Bitset.mem b 8);
  check "19" true (Bitset.mem b 19);
  check "1 clear" false (Bitset.mem b 1);
  check_int "cardinal" 4 (Bitset.cardinal b)

let test_set_idempotent () =
  let b = Bitset.create 5 in
  Bitset.set b 3;
  Bitset.set b 3;
  check_int "cardinal counts once" 1 (Bitset.cardinal b)

let test_out_of_range () =
  let b = Bitset.create 5 in
  Alcotest.check_raises "set -1" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set b (-1));
  Alcotest.check_raises "mem 5" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem b 5))

let test_full () =
  let b = Bitset.create 9 in
  for i = 0 to 8 do
    Bitset.set b i
  done;
  check "full" true (Bitset.is_full b)

let test_copy_independent () =
  let a = Bitset.create 8 in
  Bitset.set a 2;
  let b = Bitset.copy a in
  Bitset.set b 5;
  check "copy has original bit" true (Bitset.mem b 2);
  check "original unaffected" false (Bitset.mem a 5)

let test_union () =
  let a = Bitset.of_list 10 [ 1; 3; 5 ] in
  let b = Bitset.of_list 10 [ 3; 4 ] in
  Bitset.union_into ~dst:a b;
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 5 ] (Bitset.to_list a);
  check_int "cardinal recomputed" 4 (Bitset.cardinal a);
  Alcotest.(check (list int)) "src untouched" [ 3; 4 ] (Bitset.to_list b)

let test_union_mismatch () =
  let a = Bitset.create 4 and b = Bitset.create 5 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitset.union_into: capacity mismatch") (fun () ->
      Bitset.union_into ~dst:a b)

let test_subset () =
  let a = Bitset.of_list 8 [ 1; 2 ] in
  let b = Bitset.of_list 8 [ 1; 2; 5 ] in
  check "a <= b" true (Bitset.subset a b);
  check "b </= a" false (Bitset.subset b a);
  check "a <= a" true (Bitset.subset a a);
  check "empty <= a" true (Bitset.subset (Bitset.create 8) a)

let test_equal () =
  let a = Bitset.of_list 8 [ 0; 7 ] in
  let b = Bitset.of_list 8 [ 0; 7 ] in
  let c = Bitset.of_list 8 [ 0 ] in
  check "equal" true (Bitset.equal a b);
  check "not equal" false (Bitset.equal a c)

let test_missing () =
  let b = Bitset.of_list 6 [ 0; 2; 4 ] in
  Alcotest.(check (list int)) "missing" [ 1; 3; 5 ] (Bitset.missing b);
  Alcotest.(check (option int)) "first missing" (Some 1)
    (Bitset.first_missing b)

let test_first_missing_full () =
  let b = Bitset.of_list 3 [ 0; 1; 2 ] in
  Alcotest.(check (option int)) "none" None (Bitset.first_missing b)

let test_iterators () =
  let b = Bitset.of_list 7 [ 1; 4; 6 ] in
  let set_acc = ref [] and miss_acc = ref [] in
  Bitset.iter_set b (fun i -> set_acc := i :: !set_acc);
  Bitset.iter_missing b (fun i -> miss_acc := i :: !miss_acc);
  Alcotest.(check (list int)) "iter_set" [ 1; 4; 6 ] (List.rev !set_acc);
  Alcotest.(check (list int)) "iter_missing" [ 0; 2; 3; 5 ]
    (List.rev !miss_acc)

let test_word_boundaries () =
  (* the packing is 63 bits per word: exercise 62/63/64 and a capacity
     spanning several words *)
  let b = Bitset.create 200 in
  List.iter (Bitset.set b) [ 0; 62; 63; 64; 125; 126; 189; 199 ];
  Alcotest.(check (list int)) "set bits across words"
    [ 0; 62; 63; 64; 125; 126; 189; 199 ]
    (Bitset.to_list b);
  check_int "cardinal" 8 (Bitset.cardinal b);
  check "62" true (Bitset.mem b 62);
  check "63 (word boundary)" true (Bitset.mem b 63);
  check "65 clear" false (Bitset.mem b 65);
  let c = Bitset.copy b in
  Bitset.union_into ~dst:c b;
  check "union idempotent" true (Bitset.equal b c)

let test_full_multiword () =
  let n = 130 in
  let b = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.set b i
  done;
  check "full across words" true (Bitset.is_full b);
  Alcotest.(check (option int)) "no missing" None (Bitset.first_missing b);
  Alcotest.(check (list int)) "missing empty" [] (Bitset.missing b)

let test_first_missing_scans_words () =
  let n = 190 in
  let b = Bitset.create n in
  for i = 0 to n - 1 do
    if i <> 150 then Bitset.set b i
  done;
  Alcotest.(check (option int)) "deep first missing" (Some 150)
    (Bitset.first_missing b);
  Alcotest.(check (list int)) "deep missing list" [ 150 ] (Bitset.missing b)

(* qcheck properties *)

let indices_gen =
  QCheck2.Gen.(
    let* n = int_range 1 200 in
    let* is = list_size (int_range 0 60) (int_range 0 (n - 1)) in
    return (n, is))

let prop_cardinal_matches =
  QCheck2.Test.make ~name:"cardinal = |distinct indices|" ~count:200
    indices_gen (fun (n, is) ->
      let b = Bitset.of_list n is in
      Bitset.cardinal b = List.length (List.sort_uniq compare is))

let prop_union_commutes_with_membership =
  QCheck2.Test.make ~name:"union membership = or of memberships" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 180 in
      let* xs = list_size (int_range 0 30) (int_range 0 (n - 1)) in
      let* ys = list_size (int_range 0 30) (int_range 0 (n - 1)) in
      return (n, xs, ys))
    (fun (n, xs, ys) ->
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      let u = Bitset.copy a in
      Bitset.union_into ~dst:u b;
      List.for_all
        (fun i -> Bitset.mem u i = (Bitset.mem a i || Bitset.mem b i))
        (List.init n Fun.id))

let prop_subset_iff_union_noop =
  QCheck2.Test.make ~name:"subset a b iff union b a = b" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 180 in
      let* xs = list_size (int_range 0 30) (int_range 0 (n - 1)) in
      let* ys = list_size (int_range 0 30) (int_range 0 (n - 1)) in
      return (n, xs, ys))
    (fun (n, xs, ys) ->
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      let u = Bitset.copy b in
      Bitset.union_into ~dst:u a;
      Bitset.subset a b = Bitset.equal u b)

let test_swar_popcount_edges () =
  (* cardinal is backed by the branch-free SWAR popcount; pin it against
     a naive per-bit count on the words that stress the 63-bit masking:
     all-ones (every mask byte saturated), the top bit 62 alone (peeled
     separately from the 62-bit SWAR body), and alternating patterns. *)
  let cases =
    [
      ([], 0);
      (List.init 63 Fun.id, 63); (* the all-ones word *)
      ([ 62 ], 1); (* bit 62: outside the SWAR masks *)
      ([ 0; 62 ], 2);
      (List.filteri (fun i _ -> i mod 2 = 0) (List.init 63 Fun.id), 32);
      (List.init 56 Fun.id, 56) (* saturates whole mask bytes *);
    ]
  in
  List.iter
    (fun (bits, expect) ->
      let b = Bitset.of_list 63 bits in
      check_int
        (Printf.sprintf "popcount of %d bits" expect)
        expect (Bitset.cardinal b))
    cases;
  (* multi-word: every residue class mod 7 over three words *)
  let bits = List.filter (fun i -> i mod 7 = 0) (List.init 189 Fun.id) in
  check_int "multi-word cardinal" (List.length bits)
    (Bitset.cardinal (Bitset.of_list 189 bits))

let test_copy_empty_skips_words () =
  let b = Bitset.create 200 in
  let c = Bitset.copy b in
  check "copy of empty is empty" true (Bitset.is_empty c);
  check_int "copy length" 200 (Bitset.length c);
  (* the fresh array is genuinely independent *)
  Bitset.set c 150;
  check "original untouched" false (Bitset.mem b 150);
  check_int "copy cardinal" 1 (Bitset.cardinal c)

let test_tracker_delta_roundtrip () =
  (* sender/receiver pair: every flush of the sender's touched words,
     applied in order to a receiver that held the previous state, keeps
     the receiver identical to the sender — the delta-wire invariant. *)
  let n = 200 in
  let sender = Bitset.create n in
  let tk = Bitset.tracker sender in
  let receiver = Bitset.create n in
  let rng = Rng.create 11 in
  for _round = 1 to 20 do
    for _ = 1 to 5 do
      Bitset.set_tracked sender tk (Rng.int rng n)
    done;
    let dl = Bitset.delta_flush sender tk in
    check_int "flush resets the tracker" 0 (Bitset.tracker_pending tk);
    Bitset.apply_delta ~dst:receiver dl;
    check "receiver caught up" true (Bitset.equal sender receiver)
  done;
  (* an empty flush is the empty delta *)
  check_int "no touches, no words" 0
    (Bitset.delta_words (Bitset.delta_flush sender tk))

let test_tracked_union_and_relay () =
  (* union_into_tracked marks exactly the changed words, so a relay
     (receive tracked, flush, forward) carries the union onward. *)
  let n = 130 in
  let a = Bitset.of_list n [ 0; 63; 100 ] in
  let mid = Bitset.create n in
  let tk = Bitset.tracker mid in
  Bitset.union_into_tracked ~dst:mid tk a;
  Bitset.set_tracked mid tk 64;
  let dl = Bitset.delta_flush mid tk in
  let far = Bitset.create n in
  let far_tk = Bitset.tracker far in
  Bitset.apply_delta_tracked ~dst:far far_tk dl;
  check "relay reproduces the union" true (Bitset.equal mid far);
  check "relay tracker saw the words" true (Bitset.tracker_pending far_tk > 0);
  (* absorbing a subset touches nothing: the next flush is empty *)
  Bitset.union_into_tracked ~dst:mid tk a;
  check_int "absorbed union tracks no words" 0
    (Bitset.delta_words (Bitset.delta_flush mid tk))

let prop_delta_stream_equals_state =
  QCheck2.Test.make
    ~name:"chained delta flushes reconstruct the sender (tracker copies too)"
    ~count:200
    QCheck2.Gen.(
      pair (int_range 1 150) (list_size (int_range 0 60) (int_range 0 1000)))
    (fun (n, touches) ->
      let sender = Bitset.create n in
      let tk = Bitset.tracker sender in
      let receiver = Bitset.create n in
      let ok = ref true in
      List.iteri
        (fun i x ->
          Bitset.set_tracked sender tk (x mod n);
          if i mod 7 = 0 then begin
            (* a lookahead clone must not consume the original's
               pending delta *)
            let clone = Bitset.tracker_copy tk in
            ignore (Bitset.delta_flush (Bitset.copy sender) clone)
          end;
          if i mod 3 = 0 then begin
            Bitset.apply_delta ~dst:receiver (Bitset.delta_flush sender tk);
            if not (Bitset.equal sender receiver) then ok := false
          end)
        touches;
      Bitset.apply_delta ~dst:receiver (Bitset.delta_flush sender tk);
      !ok && Bitset.equal sender receiver)

let suite =
  [
    Alcotest.test_case "create empty" `Quick test_create_empty;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    Alcotest.test_case "set and mem" `Quick test_set_mem;
    Alcotest.test_case "set idempotent" `Quick test_set_idempotent;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "full" `Quick test_full;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "union capacity mismatch" `Quick test_union_mismatch;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "missing" `Quick test_missing;
    Alcotest.test_case "first_missing on full" `Quick test_first_missing_full;
    Alcotest.test_case "iterators" `Quick test_iterators;
    Alcotest.test_case "63-bit word boundaries" `Quick test_word_boundaries;
    Alcotest.test_case "full across words" `Quick test_full_multiword;
    Alcotest.test_case "first_missing scans words" `Quick
      test_first_missing_scans_words;
    Alcotest.test_case "SWAR popcount edge words" `Quick
      test_swar_popcount_edges;
    Alcotest.test_case "copy of empty set" `Quick test_copy_empty_skips_words;
    Alcotest.test_case "tracker/delta roundtrip" `Quick
      test_tracker_delta_roundtrip;
    Alcotest.test_case "tracked union relays" `Quick
      test_tracked_union_and_relay;
    QCheck_alcotest.to_alcotest prop_cardinal_matches;
    QCheck_alcotest.to_alcotest prop_union_commutes_with_membership;
    QCheck_alcotest.to_alcotest prop_subset_iff_union_noop;
    QCheck_alcotest.to_alcotest prop_delta_stream_equals_state;
  ]
