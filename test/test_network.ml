open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_send_receive () =
  let net = Network.create ~p:3 () in
  Network.send net ~src:0 ~dst:1 ~due:5 "hello";
  Alcotest.(check (list (pair int string))) "not yet" []
    (Network.receive net ~dst:1 ~now:4);
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ]
    (Network.receive net ~dst:1 ~now:5);
  Alcotest.(check (list (pair int string))) "consumed" []
    (Network.receive net ~dst:1 ~now:5)

let test_no_self_send () =
  let net = Network.create ~p:2 () in
  Alcotest.check_raises "self send" (Invalid_argument "Network.send: self-send")
    (fun () -> Network.send net ~src:1 ~dst:1 ~due:1 ())

let test_pid_range () =
  let net = Network.create ~p:2 () in
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Network.send dst: pid out of range") (fun () ->
      Network.send net ~src:0 ~dst:5 ~due:1 ())

let test_message_counting () =
  let net = Network.create ~p:4 () in
  (* simulate one multicast from 0: three point-to-point sends *)
  List.iter (fun dst -> Network.send net ~src:0 ~dst ~due:2 "m") [ 1; 2; 3 ];
  check_int "sent counts p2p" 3 (Network.sent net);
  check_int "pending" 3 (Network.pending net);
  ignore (Network.receive net ~dst:1 ~now:2);
  check_int "pending after one receive" 2 (Network.pending net);
  check_int "sent unchanged by receive" 3 (Network.sent net)

let test_delayed_processor_receives_backlog () =
  (* A processor that did not step for a while gets everything at once,
     in order. *)
  let net = Network.create ~p:2 () in
  Network.send net ~src:0 ~dst:1 ~due:1 "a";
  Network.send net ~src:0 ~dst:1 ~due:3 "b";
  Network.send net ~src:0 ~dst:1 ~due:2 "c";
  Alcotest.(check (list (pair int string))) "backlog in due order"
    [ (0, "a"); (0, "c"); (0, "b") ]
    (Network.receive net ~dst:1 ~now:10)

let test_per_destination_isolation () =
  let net = Network.create ~p:3 () in
  Network.send net ~src:0 ~dst:1 ~due:1 "for1";
  Network.send net ~src:0 ~dst:2 ~due:1 "for2";
  Alcotest.(check (list (pair int string))) "only own messages"
    [ (0, "for2") ]
    (Network.receive net ~dst:2 ~now:1);
  check_int "pending_for dst 1" 1 (Network.pending_for net ~dst:1)

let test_next_due () =
  let net = Network.create ~p:2 () in
  Alcotest.(check (option int)) "none" None (Network.next_due net ~dst:1);
  Network.send net ~src:0 ~dst:1 ~due:9 ();
  Network.send net ~src:0 ~dst:1 ~due:4 ();
  Alcotest.(check (option int)) "min due" (Some 4)
    (Network.next_due net ~dst:1)

let test_reliability () =
  (* every message sent is eventually received exactly once *)
  let net = Network.create ~p:4 () in
  let sent = ref [] in
  let rng = Rng.create 77 in
  for i = 0 to 99 do
    let src = Rng.int rng 4 in
    let dst = (src + 1 + Rng.int rng 3) mod 4 in
    let due = Rng.int rng 20 in
    Network.send net ~src ~dst ~due i;
    sent := (dst, i) :: !sent
  done;
  let received = ref [] in
  for dst = 0 to 3 do
    List.iter
      (fun (_, payload) -> received := (dst, payload) :: !received)
      (Network.receive net ~dst ~now:100)
  done;
  check_int "no losses" 100 (List.length !received);
  let norm l = List.sort compare l in
  check "exactly the sent messages" true (norm !sent = norm !received);
  check_int "nothing pending" 0 (Network.pending net)

let test_receive_iter_matches_receive () =
  let mk () =
    let net = Network.create ~horizon:4 ~p:3 () in
    Network.send net ~src:0 ~dst:1 ~due:1 "a";
    Network.send net ~src:2 ~dst:1 ~due:3 "b";
    Network.send net ~src:0 ~dst:1 ~due:1 "c";
    net
  in
  let by_list = Network.receive (mk ()) ~dst:1 ~now:3 in
  let by_iter = ref [] in
  Network.receive_iter (mk ()) ~dst:1 ~now:3 (fun src msg ->
      by_iter := (src, msg) :: !by_iter);
  Alcotest.(check (list (pair int string)))
    "same messages, same order" by_list
    (List.rev !by_iter)

let test_bounded_horizon_network () =
  (* engine-shaped traffic through a ring-backed network *)
  let net = Network.create ~horizon:3 ~p:2 () in
  let received = ref [] in
  for now = 0 to 30 do
    Network.receive_iter net ~dst:1 ~now (fun _src msg ->
        received := msg :: !received);
    if now < 20 then Network.send net ~src:0 ~dst:1 ~due:(now + 1 + (now mod 3)) now
  done;
  check_int "all delivered" 20 (List.length !received);
  check_int "nothing pending" 0 (Network.pending net);
  (* deliveries ordered by (due, send order): payload k is due at
     k + 1 + (k mod 3), so received order is sorted by that key *)
  let key k = ((k + 1 + (k mod 3)) * 100) + k in
  let got = List.rev !received in
  let sorted = List.sort (fun a b -> compare (key a) (key b)) got in
  check "due order respected" true (got = sorted)

let suite =
  [
    Alcotest.test_case "send/receive with due time" `Quick test_send_receive;
    Alcotest.test_case "receive_iter = receive" `Quick
      test_receive_iter_matches_receive;
    Alcotest.test_case "bounded-horizon (ring) network" `Quick
      test_bounded_horizon_network;
    Alcotest.test_case "self-send rejected" `Quick test_no_self_send;
    Alcotest.test_case "pid range checked" `Quick test_pid_range;
    Alcotest.test_case "message counting" `Quick test_message_counting;
    Alcotest.test_case "backlog delivered in order" `Quick
      test_delayed_processor_receives_backlog;
    Alcotest.test_case "per-destination isolation" `Quick
      test_per_destination_isolation;
    Alcotest.test_case "next_due" `Quick test_next_due;
    Alcotest.test_case "reliable: no loss, no duplication" `Quick
      test_reliability;
  ]
