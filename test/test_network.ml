open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_send_receive () =
  let net = Network.create ~p:3 () in
  Network.send net ~src:0 ~dst:1 ~due:5 "hello";
  Alcotest.(check (list (pair int string))) "not yet" []
    (Network.receive net ~dst:1 ~now:4);
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ]
    (Network.receive net ~dst:1 ~now:5);
  Alcotest.(check (list (pair int string))) "consumed" []
    (Network.receive net ~dst:1 ~now:5)

let test_no_self_send () =
  let net = Network.create ~p:2 () in
  Alcotest.check_raises "self send" (Invalid_argument "Network.send: self-send")
    (fun () -> Network.send net ~src:1 ~dst:1 ~due:1 ())

let test_pid_range () =
  let net = Network.create ~p:2 () in
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Network.send dst: pid out of range") (fun () ->
      Network.send net ~src:0 ~dst:5 ~due:1 ())

let test_message_counting () =
  let net = Network.create ~p:4 () in
  (* simulate one multicast from 0: three point-to-point sends *)
  List.iter (fun dst -> Network.send net ~src:0 ~dst ~due:2 "m") [ 1; 2; 3 ];
  check_int "sent counts p2p" 3 (Network.sent net);
  check_int "pending" 3 (Network.pending net);
  ignore (Network.receive net ~dst:1 ~now:2);
  check_int "pending after one receive" 2 (Network.pending net);
  check_int "sent unchanged by receive" 3 (Network.sent net)

let test_delayed_processor_receives_backlog () =
  (* A processor that did not step for a while gets everything at once,
     in order. *)
  let net = Network.create ~p:2 () in
  Network.send net ~src:0 ~dst:1 ~due:1 "a";
  Network.send net ~src:0 ~dst:1 ~due:3 "b";
  Network.send net ~src:0 ~dst:1 ~due:2 "c";
  Alcotest.(check (list (pair int string))) "backlog in due order"
    [ (0, "a"); (0, "c"); (0, "b") ]
    (Network.receive net ~dst:1 ~now:10)

let test_per_destination_isolation () =
  let net = Network.create ~p:3 () in
  Network.send net ~src:0 ~dst:1 ~due:1 "for1";
  Network.send net ~src:0 ~dst:2 ~due:1 "for2";
  Alcotest.(check (list (pair int string))) "only own messages"
    [ (0, "for2") ]
    (Network.receive net ~dst:2 ~now:1);
  check_int "pending_for dst 1" 1 (Network.pending_for net ~dst:1)

let test_next_due () =
  let net = Network.create ~p:2 () in
  Alcotest.(check (option int)) "none" None (Network.next_due net ~dst:1);
  Network.send net ~src:0 ~dst:1 ~due:9 ();
  Network.send net ~src:0 ~dst:1 ~due:4 ();
  Alcotest.(check (option int)) "min due" (Some 4)
    (Network.next_due net ~dst:1)

let test_reliability () =
  (* every message sent is eventually received exactly once *)
  let net = Network.create ~p:4 () in
  let sent = ref [] in
  let rng = Rng.create 77 in
  for i = 0 to 99 do
    let src = Rng.int rng 4 in
    let dst = (src + 1 + Rng.int rng 3) mod 4 in
    let due = Rng.int rng 20 in
    Network.send net ~src ~dst ~due i;
    sent := (dst, i) :: !sent
  done;
  let received = ref [] in
  for dst = 0 to 3 do
    List.iter
      (fun (_, payload) -> received := (dst, payload) :: !received)
      (Network.receive net ~dst ~now:100)
  done;
  check_int "no losses" 100 (List.length !received);
  let norm l = List.sort compare l in
  check "exactly the sent messages" true (norm !sent = norm !received);
  check_int "nothing pending" 0 (Network.pending net)

let test_receive_iter_matches_receive () =
  let mk () =
    let net = Network.create ~horizon:4 ~p:3 () in
    Network.send net ~src:0 ~dst:1 ~due:1 "a";
    Network.send net ~src:2 ~dst:1 ~due:3 "b";
    Network.send net ~src:0 ~dst:1 ~due:1 "c";
    net
  in
  let by_list = Network.receive (mk ()) ~dst:1 ~now:3 in
  let by_iter = ref [] in
  let n =
    Network.receive_iter (mk ()) ~dst:1 ~now:3 (fun src msg ->
        by_iter := (src, msg) :: !by_iter)
  in
  check_int "returned count = deliveries" (List.length by_list) n;
  Alcotest.(check (list (pair int string)))
    "same messages, same order" by_list
    (List.rev !by_iter)

let test_bounded_horizon_network () =
  (* engine-shaped traffic through a ring-backed network *)
  let net = Network.create ~horizon:3 ~p:2 () in
  let received = ref [] in
  for now = 0 to 30 do
    ignore
      (Network.receive_iter net ~dst:1 ~now (fun _src msg ->
           received := msg :: !received));
    if now < 20 then Network.send net ~src:0 ~dst:1 ~due:(now + 1 + (now mod 3)) now
  done;
  check_int "all delivered" 20 (List.length !received);
  check_int "nothing pending" 0 (Network.pending net);
  (* deliveries ordered by (due, send order): payload k is due at
     k + 1 + (k mod 3), so received order is sorted by that key *)
  let key k = ((k + 1 + (k mod 3)) * 100) + k in
  let got = List.rev !received in
  let sorted = List.sort (fun a b -> compare (key a) (key b)) got in
  check "due order respected" true (got = sorted)

let test_broadcast_basic () =
  (* One shared record, p-1 logical messages: everyone but the source
     receives exactly one copy, and M/pending advance by p-1. *)
  List.iter
    (fun horizon ->
      let net = Network.create ?horizon ~p:4 () in
      Network.broadcast net ~src:1 ~due:3 "news";
      check_int "sent = p-1" 3 (Network.sent net);
      check_int "pending = p-1" 3 (Network.pending net);
      Alcotest.(check (list (pair int string)))
        "source gets nothing" []
        (Network.receive net ~dst:1 ~now:10);
      List.iter
        (fun dst ->
          Alcotest.(check (list (pair int string)))
            (Printf.sprintf "dst %d" dst)
            [ (1, "news") ]
            (Network.receive net ~dst ~now:10))
        [ 0; 2; 3 ];
      check_int "drained" 0 (Network.pending net))
    [ None; Some 8 ]

let test_broadcast_merge_order () =
  (* Shared-stream deliveries interleave with per-destination unicasts
     exactly as if the broadcast had been p-1 individual sends: global
     (due, send order). *)
  let mk horizon =
    let net = Network.create ?horizon ~p:3 () in
    Network.send net ~src:2 ~dst:1 ~due:2 "u-first";
    Network.broadcast net ~src:0 ~due:2 "b1";
    Network.send net ~src:2 ~dst:1 ~due:2 "u-mid";
    Network.broadcast net ~src:2 ~due:4 "b2";
    Network.send net ~src:0 ~dst:1 ~due:3 "u-late";
    net
  in
  let heap = Network.receive (mk None) ~dst:1 ~now:10 in
  let ring = Network.receive (mk (Some 8)) ~dst:1 ~now:10 in
  Alcotest.(check (list (pair int string)))
    "heap order is the spec"
    [ (2, "u-first"); (0, "b1"); (2, "u-mid"); (0, "u-late"); (2, "b2") ]
    heap;
  Alcotest.(check (list (pair int string))) "ring = heap" heap ring

let test_broadcast_stream_growth () =
  (* Keep more undelivered broadcasts in flight than the stream's
     initial capacity, with a lagging reader: exercises the circular
     grow + head reclaim while cursors straddle the buffer. *)
  let net = Network.create ~horizon:512 ~p:3 () in
  let fast = ref [] and slow = ref [] in
  for now = 0 to 999 do
    if now < 500 then begin
      (* constant latency (the stream's contract) with ~400 records in
         flight: well past the initial 64-slot capacity *)
      Network.broadcast net ~src:0 ~due:(now + 400) now;
      Network.broadcast net ~src:1 ~due:(now + 400) (1000 + now)
    end;
    (* dst 2 reads every step, dst 1 only rarely *)
    ignore
      (Network.receive_iter net ~dst:2 ~now (fun _ msg ->
           fast := msg :: !fast));
    if now mod 97 = 0 then
      ignore
        (Network.receive_iter net ~dst:1 ~now (fun _ msg ->
             slow := msg :: !slow))
  done;
  ignore (Network.receive net ~dst:0 ~now:2000);
  ignore (Network.receive net ~dst:1 ~now:2000);
  ignore (Network.receive net ~dst:2 ~now:2000);
  check_int "dst 2 saw every broadcast" 1000 (List.length !fast);
  check_int "nothing pending" 0 (Network.pending net);
  (* pairwise FIFO within each source's stream *)
  let fifo src_tag msgs =
    let own = List.filter (fun m -> m / 1000 = src_tag) (List.rev msgs) in
    let rec increasing = function
      | a :: (b :: _ as rest) -> a < b && increasing rest
      | _ -> true
    in
    increasing own
  in
  check "src 0 FIFO at fast reader" true (fifo 0 !fast);
  check "src 1 FIFO at fast reader" true (fifo 1 !fast)

let test_broadcast_deactivate () =
  let net = Network.create ~horizon:4 ~p:3 () in
  Network.broadcast net ~src:0 ~due:2 "a";
  Network.deactivate net ~pid:2;
  Network.broadcast net ~src:0 ~due:3 "b";
  (* the live destination still gets both *)
  Alcotest.(check (list (pair int string)))
    "live dst" [ (0, "a"); (0, "b") ]
    (Network.receive net ~dst:1 ~now:10);
  (* messages owed to the dead pid rot in pending, like an unread
     per-destination queue *)
  check_int "dead pid's copies still pending" 2 (Network.pending net);
  check_int "sent unaffected" 4 (Network.sent net);
  Network.deactivate net ~pid:2 (* idempotent *);
  check_int "still pending after re-deactivate" 2 (Network.pending net)

let test_broadcast_ring_matches_heap_random () =
  (* Randomized mixed traffic: the shared-stream backend must deliver
     exactly the heap backend's sequences at every destination. The
     stream requires non-decreasing broadcast dues (constant-latency
     traffic), so broadcasts use a fixed delta while unicasts roam. *)
  let p = 5 in
  let delta = 6 in
  let heap = Network.create ~p () in
  let ring = Network.create ~horizon:8 ~p () in
  let rng = Rng.create 4242 in
  let mismatch = ref false in
  for now = 0 to 199 do
    let burst = Rng.int rng 3 in
    for _ = 1 to burst do
      let src = Rng.int rng p in
      if Rng.int rng 3 = 0 then begin
        Network.broadcast heap ~src ~due:(now + delta) now;
        Network.broadcast ring ~src ~due:(now + delta) now
      end
      else begin
        let dst = (src + 1 + Rng.int rng (p - 1)) mod p in
        let due = now + 1 + Rng.int rng 8 in
        Network.send heap ~src ~dst ~due now;
        Network.send ring ~src ~dst ~due now
      end
    done;
    for dst = 0 to p - 1 do
      if Network.receive heap ~dst ~now <> Network.receive ring ~dst ~now
      then mismatch := true
    done
  done;
  for dst = 0 to p - 1 do
    if Network.receive heap ~dst ~now:300 <> Network.receive ring ~dst ~now:300
    then mismatch := true
  done;
  check "ring = heap on mixed random traffic" false !mismatch;
  check_int "same sent" (Network.sent heap) (Network.sent ring);
  check_int "same pending" (Network.pending heap) (Network.pending ring)

let test_broadcast_next_due_pending_for () =
  let net = Network.create ~horizon:8 ~p:3 () in
  Alcotest.(check (option int)) "empty" None (Network.next_due net ~dst:1);
  Network.broadcast net ~src:0 ~due:7 "b";
  Network.send net ~src:2 ~dst:1 ~due:9 "u";
  Alcotest.(check (option int)) "min over stream and ring" (Some 7)
    (Network.next_due net ~dst:1);
  check_int "pending_for counts both" 2 (Network.pending_for net ~dst:1);
  check_int "other dst sees only the broadcast" 1
    (Network.pending_for net ~dst:2);
  ignore (Network.receive net ~dst:1 ~now:7);
  Alcotest.(check (option int)) "unicast remains" (Some 9)
    (Network.next_due net ~dst:1)

let suite =
  [
    Alcotest.test_case "send/receive with due time" `Quick test_send_receive;
    Alcotest.test_case "receive_iter = receive" `Quick
      test_receive_iter_matches_receive;
    Alcotest.test_case "bounded-horizon (ring) network" `Quick
      test_bounded_horizon_network;
    Alcotest.test_case "self-send rejected" `Quick test_no_self_send;
    Alcotest.test_case "pid range checked" `Quick test_pid_range;
    Alcotest.test_case "message counting" `Quick test_message_counting;
    Alcotest.test_case "backlog delivered in order" `Quick
      test_delayed_processor_receives_backlog;
    Alcotest.test_case "per-destination isolation" `Quick
      test_per_destination_isolation;
    Alcotest.test_case "next_due" `Quick test_next_due;
    Alcotest.test_case "reliable: no loss, no duplication" `Quick
      test_reliability;
    Alcotest.test_case "broadcast: one record, p-1 messages" `Quick
      test_broadcast_basic;
    Alcotest.test_case "broadcast merges with unicasts in order" `Quick
      test_broadcast_merge_order;
    Alcotest.test_case "broadcast stream grows and reclaims" `Quick
      test_broadcast_stream_growth;
    Alcotest.test_case "broadcast to deactivated pid rots in pending" `Quick
      test_broadcast_deactivate;
    Alcotest.test_case "broadcast ring = heap on random traffic" `Quick
      test_broadcast_ring_matches_heap_random;
    Alcotest.test_case "broadcast next_due / pending_for" `Quick
      test_broadcast_next_due_pending_for;
  ]
