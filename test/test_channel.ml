(* The multiple-access shared channel: slot semantics (deliver iff
   exactly one contender), collision modes, adversary arbitration,
   message counting on a broadcast medium, engine integration behind the
   Transport seam, and bit-determinism of channel-backed grids.

   The companion guarantee — that the point-to-point backend is
   byte-identical through the Transport refactor — is pinned by the
   existing golden suites (test_golden_grid, test_exp's e1/e2/e19);
   here we only pin the new backend's own semantics. *)

open Doall_sim
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- raw channel semantics ----------------------------------------- *)

let test_single_contender_delivers () =
  let ch = Channel.create ~p:3 ~collision:Config.Silent () in
  Channel.transmit ch ~src:0 ~release:0 ~bcast:"m" ~unis:[] ();
  check_int "sent: broadcast costs 1 on a shared medium" 1 (Channel.sent ch);
  let slot = Channel.resolve ch ~now:0 () in
  check "busy" true slot.Channel.slot_busy;
  check "no collision" false slot.Channel.slot_collided;
  check_int "one logical message delivered" 1 slot.Channel.slot_delivered;
  check_int "not due yet" 0
    (Channel.receive_iter ch ~dst:1 ~now:0 (fun _ _ -> ()));
  let got = ref [] in
  let n =
    Channel.receive_iter ch ~dst:1 ~now:1 (fun src msg ->
        got := (src, msg) :: !got)
  in
  check_int "due next slot" 1 n;
  Alcotest.(check (list (pair int string))) "payload" [ (0, "m") ] !got;
  check_int "other receiver too" 1
    (Channel.receive_iter ch ~dst:2 ~now:1 (fun _ _ -> ()))

let test_silent_collision_loses_both () =
  let ch = Channel.create ~p:3 ~collision:Config.Silent () in
  Channel.transmit ch ~src:0 ~release:0 ~bcast:"a" ~unis:[] ();
  Channel.transmit ch ~src:1 ~release:0 ~bcast:"b" ~unis:[] ();
  let slot = Channel.resolve ch ~now:0 () in
  check "collided" true slot.Channel.slot_collided;
  check_int "nothing delivered" 0 slot.Channel.slot_delivered;
  check_int "both frames lost" 2 (Channel.lost ch);
  check_int "attempts still count as messages" 2 (Channel.sent ch);
  check_int "nothing owed" 0 (Channel.pending ch);
  check_int "nothing ever arrives" 0
    (Channel.receive_iter ch ~dst:2 ~now:99 (fun _ _ -> ()))

let test_detectable_backoff_serializes () =
  (* Colliders back off to the next slot u > now with u mod p = src:
     distinct sources land on distinct slots and never re-collide. *)
  let ch = Channel.create ~p:3 ~collision:Config.Detectable () in
  Channel.transmit ch ~src:0 ~release:0 ~bcast:"a" ~unis:[] ();
  Channel.transmit ch ~src:1 ~release:0 ~bcast:"b" ~unis:[] ();
  let s0 = Channel.resolve ch ~now:0 () in
  check "collision detected" true s0.Channel.slot_collided;
  check_int "nothing lost" 0 (Channel.lost ch);
  (* src 1 retries at slot 1 (1 mod 3 = 1), src 0 at slot 3 *)
  let s1 = Channel.resolve ch ~now:1 () in
  check "src 1 alone at slot 1" true
    ((not s1.Channel.slot_collided) && s1.Channel.slot_delivered = 1);
  let s2 = Channel.resolve ch ~now:2 () in
  check "slot 2 idle" false s2.Channel.slot_busy;
  let s3 = Channel.resolve ch ~now:3 () in
  check "src 0 alone at slot 3" true
    ((not s3.Channel.slot_collided) && s3.Channel.slot_delivered = 1);
  check_int "one collision total" 1 (Channel.collisions ch);
  check_int "two successes" 2 (Channel.successes ch);
  let got = ref [] in
  ignore
    (Channel.receive_iter ch ~dst:2 ~now:4 (fun src msg ->
         got := (src, msg) :: !got));
  Alcotest.(check (list (pair int string)))
    "backoff order: src 1 first" [ (1, "b"); (0, "a") ] (List.rev !got)

let test_arbitration_grants_head_defers_rest () =
  let ch = Channel.create ~p:4 ~collision:Config.Silent () in
  List.iter
    (fun src ->
      Channel.transmit ch ~src ~release:0 ~bcast:(string_of_int src)
        ~unis:[] ())
    [ 0; 1; 2 ];
  let reverse arr =
    let n = Array.length arr in
    Some (Array.init n (fun i -> arr.(n - 1 - i)))
  in
  let s0 = Channel.resolve ch ~now:0 ~arbitrate:reverse () in
  check "arbitrated slot is not a collision" false s0.Channel.slot_collided;
  check_int "one delivery" 1 s0.Channel.slot_delivered;
  let s1 = Channel.resolve ch ~now:1 ~arbitrate:reverse () in
  let s2 = Channel.resolve ch ~now:2 ~arbitrate:reverse () in
  check "deferred frames drain one per slot" true
    (s1.Channel.slot_delivered = 1 && s2.Channel.slot_delivered = 1);
  let got = ref [] in
  ignore
    (Channel.receive_iter ch ~dst:3 ~now:3 (fun src _ -> got := src :: !got));
  Alcotest.(check (list int)) "highest pid first under reverse order"
    [ 2; 1; 0 ] (List.rev !got)

let test_arbitration_decline_collides () =
  let ch = Channel.create ~p:3 ~collision:Config.Silent () in
  Channel.transmit ch ~src:0 ~release:0 ~bcast:"a" ~unis:[] ();
  Channel.transmit ch ~src:1 ~release:0 ~bcast:"b" ~unis:[] ();
  let slot = Channel.resolve ch ~now:0 ~arbitrate:(fun _ -> None) () in
  check "declined arbitration collides" true slot.Channel.slot_collided;
  check_int "silent: both lost" 2 (Channel.lost ch)

let test_arbitration_must_permute () =
  let ch = Channel.create ~p:3 ~collision:Config.Silent () in
  Channel.transmit ch ~src:0 ~release:0 ~bcast:"a" ~unis:[] ();
  Channel.transmit ch ~src:1 ~release:0 ~bcast:"b" ~unis:[] ();
  check "non-permutation rejected" true
    (try
       ignore
         (Channel.resolve ch ~now:0 ~arbitrate:(fun _ -> Some [| 0; 0 |]) ());
       false
     with Invalid_argument _ -> true)

let test_frame_validation () =
  let ch = Channel.create ~p:3 ~collision:Config.Silent () in
  check "empty frame rejected" true
    (try
       Channel.transmit ch ~src:0 ~release:0 ~unis:[] ();
       false
     with Invalid_argument _ -> true);
  check "self-unicast rejected" true
    (try
       Channel.transmit ch ~src:0 ~release:0 ~unis:[ (0, "x") ] ();
       false
     with Invalid_argument _ -> true)

let test_message_counting_mixed_frame () =
  (* a frame with a broadcast and two unicasts is 3 logical messages *)
  let ch = Channel.create ~p:4 ~collision:Config.Silent () in
  Channel.transmit ch ~src:0 ~release:0 ~bcast:"b"
    ~unis:[ (1, "u1"); (2, "u2") ] ();
  check_int "3 logical messages" 3 (Channel.sent ch);
  let slot = Channel.resolve ch ~now:0 () in
  check_int "all delivered in one slot" 3 slot.Channel.slot_delivered;
  (* dst 1 gets the broadcast and its unicast; dst 3 only the bcast *)
  check_int "dst 1" 2 (Channel.receive_iter ch ~dst:1 ~now:1 (fun _ _ -> ()));
  check_int "dst 3" 1 (Channel.receive_iter ch ~dst:3 ~now:1 (fun _ _ -> ()))

(* QCheck: the defining property — an unarbitrated slot delivers iff
   exactly one station contends. *)
let delivers_iff_single_contender =
  QCheck2.Test.make ~name:"channel: delivers iff exactly one contender"
    ~count:200
    QCheck2.Gen.(pair (int_range 0 6) bool)
    (fun (contenders, detectable) ->
      let collision =
        if detectable then Config.Detectable else Config.Silent
      in
      let p = 8 in
      let ch = Channel.create ~p ~collision () in
      for src = 0 to contenders - 1 do
        Channel.transmit ch ~src ~release:0 ~bcast:src ~unis:[] ()
      done;
      let slot = Channel.resolve ch ~now:0 () in
      (* pid p-1 never transmits, so it owes us the broadcast iff the
         slot went through *)
      let received = Channel.receive_iter ch ~dst:(p - 1) ~now:1 (fun _ _ -> ()) in
      slot.Channel.slot_busy = (contenders > 0)
      && slot.Channel.slot_collided = (contenders >= 2)
      && slot.Channel.slot_delivered = (if contenders = 1 then 1 else 0)
      && received = (if contenders = 1 then 1 else 0)
      && Channel.sent ch = contenders
      &&
      (* silent collisions lose the frames; detectable keeps them *)
      if contenders >= 2 then
        if detectable then Channel.lost ch = 0
        else Channel.lost ch = contenders
      else Channel.lost ch = 0)

(* -- engine integration -------------------------------------------- *)

let test_spec_name_transport_suffix () =
  let name tr =
    Runner.spec_name
      (Runner.spec ~seed:1 ?transport:tr ~algo:"da-q4" ~adv:"fair" ~p:4 ~t:8
         ~d:2 ())
  in
  Alcotest.(check string)
    "ptp keeps the historical name" "da-q4/fair/p4/t8/d2/seed1" (name None);
  Alcotest.(check string)
    "channel suffix" "da-q4/fair/p4/t8/d2/seed1@channel"
    (name (Some (Config.Channel Config.Silent)));
  Alcotest.(check string)
    "detectable suffix" "da-q4/fair/p4/t8/d2/seed1@channel-detect"
    (name (Some (Config.Channel Config.Detectable)))

let test_faults_rejected_on_channel () =
  let faults =
    match Doall_adversary.Fault.of_spec "drop=0.5" with
    | Ok (policy, _) -> policy
    | Error e -> Alcotest.fail e
  in
  check "engine rejects fault injection on the channel" true
    (try
       ignore
         (Runner.run ~transport:(Config.Channel Config.Silent) ~faults
            ~algo:"da-q4" ~adv:"fair" ~p:4 ~t:8 ~d:2 ());
       false
     with Invalid_argument _ -> true)

let test_digest_requires_horizon () =
  (* satellite of the same PR: Network.create's ?digest used to be
     silently ignored on heap backends; now it is rejected *)
  check "Network.create ?digest without ~horizon rejected" true
    (try
       ignore (Network.create ~digest:(fun (a : int array) -> a.(0)) ~p:4 ());
       false
     with Invalid_argument _ -> true)

let probed_run ~transport ~algo ~adv ~p ~t ~d =
  let probe = Probe.create () in
  let r = Runner.run ~seed:3 ~probe ~transport ~algo ~adv ~p ~t ~d () in
  (r, Probe.snapshot probe)

let test_probe_counters () =
  let p = 8 and t = 48 and d = 4 in
  (* fair has no arbitration rule, so every multi-transmitter slot on
     the channel collides; on ptp the same counters stay at zero *)
  let _, chan_snap =
    probed_run ~transport:(Config.Channel Config.Detectable) ~algo:"paran1"
      ~adv:"fair" ~p ~t ~d
  in
  let c snap name = List.assoc name snap.Probe.counters in
  check "channel run collides" true (c chan_snap "net.collisions" > 0);
  check "channel has busy slots" true (c chan_snap "net.channel_busy" > 0);
  check "busy >= collisions" true
    (c chan_snap "net.channel_busy" >= c chan_snap "net.collisions");
  let _, ptp_snap =
    probed_run ~transport:Config.Ptp ~algo:"paran1" ~adv:"fair" ~p ~t ~d
  in
  check_int "ptp never collides" 0 (c ptp_snap "net.collisions");
  check_int "ptp has no channel slots" 0 (c ptp_snap "net.channel_busy")

let test_chan_adversary_inert_on_ptp () =
  (* the chan-* registry adversaries are fair-stepping latency-1; on
     point-to-point their contention rules are inert, so their metrics
     equal fair's exactly *)
  let run adv =
    (Runner.run ~seed:1 ~algo:"da-q4" ~adv ~p:8 ~t:32 ~d:4 ()).Runner.metrics
  in
  let base = run "fair" in
  List.iter
    (fun adv ->
      let m = run adv in
      check (adv ^ " = fair on ptp") true
        (m.Metrics.work = base.Metrics.work
        && m.Metrics.messages = base.Metrics.messages
        && m.Metrics.sigma = base.Metrics.sigma))
    [ "chan-ordered"; "chan-ordered-high"; "chan-rotor"; "chan-delayed";
      "chan-delayed-ordered" ]

(* Golden cells: exact (W, M, sigma) pins for the channel backend, the
   channel-side analogue of the ptp golden grid. Deterministic
   algorithms and adversaries only, so any semantic drift in slot
   resolution, backoff or arbitration shows up as a diff here. *)
let test_channel_golden_cells () =
  let cell ~collision ~algo ~adv =
    let m =
      (Runner.run ~seed:1 ~transport:(Config.Channel collision) ~algo ~adv
         ~p:12 ~t:48 ~d:4 ())
        .Runner.metrics
    in
    (m.Metrics.work, m.Metrics.messages, m.Metrics.sigma)
  in
  let expect name want got =
    if got <> want then
      let w, m, s = got and w', m', s' = want in
      Alcotest.failf "%s: got W=%d M=%d sigma=%d, want W=%d M=%d sigma=%d"
        name w m s w' m' s'
  in
  expect "da-q4/chan-ordered/silent" (216, 52, 17)
    (cell ~collision:Config.Silent ~algo:"da-q4" ~adv:"chan-ordered");
  expect "da-q4/fair/detect" (300, 72, 24)
    (cell ~collision:Config.Detectable ~algo:"da-q4" ~adv:"fair");
  expect "padet/fair/silent: total loss, oblivious wall" (576, 576, 47)
    (cell ~collision:Config.Silent ~algo:"padet" ~adv:"fair");
  expect "padet/chan-delayed-ordered/silent" (300, 299, 24)
    (cell ~collision:Config.Silent ~algo:"padet" ~adv:"chan-delayed-ordered")

let test_channel_grid_determinism () =
  (* jobs=1/2/4 must be byte-identical for channel cells too *)
  let specs =
    Runner.grid ~seeds:[ 1; 2 ]
      ~transport:(Config.Channel Config.Detectable)
      ~algos:[ "da-q4"; "paran1"; "coord" ]
      ~advs:[ "fair"; "chan-ordered"; "chan-delayed" ]
      ~points:[ (6, 24, 3) ] ()
  in
  let key (r : Runner.result) =
    let m = r.Runner.metrics in
    (m.Metrics.work, m.Metrics.messages, m.Metrics.sigma, m.Metrics.executions)
  in
  let at jobs = List.map key (Runner.run_grid ~jobs specs) in
  let j1 = at 1 in
  List.iter
    (fun jobs ->
      if at jobs <> j1 then
        Alcotest.failf "channel grid differs at jobs=%d" jobs)
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "single contender delivers" `Quick
      test_single_contender_delivers;
    Alcotest.test_case "silent collision loses both" `Quick
      test_silent_collision_loses_both;
    Alcotest.test_case "detectable backoff serializes" `Quick
      test_detectable_backoff_serializes;
    Alcotest.test_case "arbitration grants head, defers rest" `Quick
      test_arbitration_grants_head_defers_rest;
    Alcotest.test_case "declined arbitration collides" `Quick
      test_arbitration_decline_collides;
    Alcotest.test_case "arbitration must permute" `Quick
      test_arbitration_must_permute;
    Alcotest.test_case "frame validation" `Quick test_frame_validation;
    Alcotest.test_case "message counting on a shared medium" `Quick
      test_message_counting_mixed_frame;
    QCheck_alcotest.to_alcotest delivers_iff_single_contender;
    Alcotest.test_case "spec_name transport suffix" `Quick
      test_spec_name_transport_suffix;
    Alcotest.test_case "faults rejected on channel" `Quick
      test_faults_rejected_on_channel;
    Alcotest.test_case "digest requires horizon" `Quick
      test_digest_requires_horizon;
    Alcotest.test_case "net.collisions / net.channel_busy probes" `Quick
      test_probe_counters;
    Alcotest.test_case "chan adversaries inert on ptp" `Quick
      test_chan_adversary_inert_on_ptp;
    Alcotest.test_case "channel golden cells" `Quick
      test_channel_golden_cells;
    Alcotest.test_case "channel grid bit-determinism" `Slow
      test_channel_grid_determinism;
  ]
