(* The adversary-strategy DSL and the worst-case synthesis search
   (docs/FAULTS.md "Strategy DSL").

   Pinned here: spec round-tripping (to_spec/of_spec is a fixpoint over
   random strategies in every space), the latency declaration the engine's
   stream gate relies on (any fault rule or phase change forces
   [Variable]), bit-determinism of strategy-compiled adversaries across
   --jobs, bit-determinism of the whole search (same seed => same winning
   spec, at any jobs), and a soak: a small-budget search against every
   registry algorithm with the oracle on finds zero violations and never
   livelocks. *)

open Doall_sim
open Doall_core
open Doall_adversary

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let spaces =
  [ Strategy.Full; Strategy.Live; Strategy.In_model; Strategy.Quorum_safe ]

(* -- spec round-trip ----------------------------------------------- *)

let test_roundtrip_qcheck =
  QCheck2.Test.make ~name:"to_spec/of_spec fixpoint over random strategies"
    ~count:300
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let space = List.nth spaces (Rng.int rng 4) in
      let p = 1 + Rng.int rng 16 in
      let t = 1 + Rng.int rng 64 in
      let d = 1 + Rng.int rng 12 in
      let str = Strategy.random ~rng ~space ~p ~t ~d () in
      let spec = Strategy.to_spec str in
      match Strategy.of_spec spec with
      | Error e -> QCheck2.Test.fail_reportf "%s unparsable: %s" spec e
      | Ok str' ->
        let spec' = Strategy.to_spec str' in
        if spec <> spec' then
          QCheck2.Test.fail_reportf "not a fixpoint: %s -> %s" spec spec';
        (* mutate and crossover stay inside the printable space *)
        let m = Strategy.mutate ~rng ~space ~p ~t ~d str in
        let x = Strategy.crossover ~rng ~space ~p str m in
        (match Strategy.of_spec (Strategy.to_spec m) with
        | Error e ->
          QCheck2.Test.fail_reportf "mutant unparsable: %s: %s"
            (Strategy.to_spec m) e
        | Ok _ -> ());
        (match Strategy.of_spec (Strategy.to_spec x) with
        | Error e ->
          QCheck2.Test.fail_reportf "crossover unparsable: %s: %s"
            (Strategy.to_spec x) e
        | Ok _ -> ());
        true)

let test_of_spec_errors () =
  List.iter
    (fun spec ->
      match Strategy.of_spec spec with
      | Ok _ -> Alcotest.failf "of_spec accepted %S" spec
      | Error _ -> ())
    [
      "";
      "sched=warp";
      "delay=const:x";
      "sched=all;sched=all";
      "crash=at:1:2";
      "fault=drop";
      "nonsense";
      "sched=all;delay=max;for=0x";
    ]

let test_of_spec_normalizes () =
  (* parsing clamps and canonicalizes exactly like [make] *)
  List.iter
    (fun (input, expect) ->
      match Strategy.of_spec input with
      | Error e -> Alcotest.failf "of_spec %S: %s" input e
      | Ok t -> check_str input expect (Strategy.to_spec t))
    [
      ("sched=all;delay=max", "sched=all;delay=max");
      (* probabilities quantized to 3 decimals *)
      ("sched=all;delay=max;fault=drop:0.12345",
       "sched=all;delay=max;fault=drop:0.123");
      (* out-of-range genes clamped *)
      ("sched=all;delay=const:0", "sched=all;delay=const:1");
      ("sched=rr:0;delay=max", "sched=rr:1;delay=max");
      (* non-final phase gets a duration *)
      ("sched=all;delay=max|sched=all;delay=const:1",
       "sched=all;delay=max;for=1|sched=all;delay=const:1");
    ]

(* -- latency declaration (stream-gate soundness) -------------------- *)

let latency_of_spec spec =
  match Strategy.of_spec spec with
  | Error e -> Alcotest.failf "of_spec %S: %s" spec e
  | Ok t -> t

let test_latency_pins () =
  let pin spec expect =
    let t = latency_of_spec spec in
    let declared = Strategy.latency_of t in
    if declared <> expect then Alcotest.failf "%s: wrong latency_of" spec;
    (* and [into] declares the same thing to the engine *)
    if (Strategy.into t).Adversary.latency <> expect then
      Alcotest.failf "%s: into disagrees with latency_of" spec
  in
  pin "sched=all;delay=const:3" (Adversary.Fixed 3);
  pin "sched=laggard;delay=const:1;crash=staggered:4" (Adversary.Fixed 1);
  pin "sched=all;delay=max" Adversary.Maximal;
  pin "sched=all;delay=uniform" Adversary.Variable;
  (* any fault rule pins Variable even under a constant delay: faults
     perturb delivery, so the declared-constant stream gate must stay
     closed *)
  pin "sched=all;delay=const:3;fault=drop:0.5" Adversary.Variable;
  pin "sched=all;delay=max;fault=dup:0.2:2" Adversary.Variable;
  (* phase changes likewise *)
  pin "sched=all;delay=const:3;for=8|sched=all;delay=const:3"
    Adversary.Variable

(* -- determinism of compiled strategies across jobs ----------------- *)

let strategy_specs =
  [
    "strategy:sched=laggard;delay=max";
    "strategy:sched=all;delay=uniform;crash=flaky:4:2;fault=drop:0.4";
    "strategy:sched=harmonic;delay=stage:3;crash=staggered:6;for=20|sched=all;delay=const:2;fault=dup:0.3:2";
  ]

let grid_metrics ~jobs =
  let specs =
    List.concat_map
      (fun adv ->
        List.map
          (fun algo -> Runner.spec ~seed:5 ~algo ~adv ~p:8 ~t:40 ~d:4 ())
          [ "paran1"; "da-q4"; "padet" ])
      strategy_specs
  in
  List.map
    (fun (r : Runner.result) ->
      (r.Runner.metrics.Metrics.work, r.Runner.metrics.Metrics.messages,
       r.Runner.metrics.Metrics.sigma))
    (Runner.run_grid ~jobs ~check:true specs)

let test_strategy_adv_jobs_deterministic () =
  let m1 = grid_metrics ~jobs:1 in
  let m2 = grid_metrics ~jobs:2 in
  let m4 = grid_metrics ~jobs:4 in
  check "jobs 1 = jobs 2" true (m1 = m2);
  check "jobs 1 = jobs 4" true (m1 = m4)

(* -- determinism of the search itself ------------------------------- *)

let small_search ~jobs =
  Worstcase.search ~seed:3 ~population:6 ~jobs ~algo:"paran1" ~p:6 ~t:24
    ~d:3 ~budget:18 ()

let test_search_deterministic () =
  let a = small_search ~jobs:1 in
  let b = small_search ~jobs:1 in
  check_str "same seed, same best spec" a.Synth.best_spec b.Synth.best_spec;
  Alcotest.(check (float 0.0))
    "same seed, same best score" a.Synth.best_score b.Synth.best_score;
  Alcotest.(check int) "same evals" a.Synth.evals b.Synth.evals;
  let c = small_search ~jobs:2 in
  let d = small_search ~jobs:4 in
  check_str "jobs 2, same best spec" a.Synth.best_spec c.Synth.best_spec;
  check_str "jobs 4, same best spec" a.Synth.best_spec d.Synth.best_spec;
  (* and the winner replays bit-identically through the runner *)
  let r =
    Runner.run_spec ~check:true
      (Runner.spec ~seed:3 ~algo:"paran1"
         ~adv:("strategy:" ^ a.Synth.best_spec)
         ~p:6 ~t:24 ~d:3 ())
  in
  Alcotest.(check int)
    "winner replays to the searched work" a.Synth.best_eval.Synth.e_work
    r.Runner.metrics.Metrics.work

(* -- the search beats the hand registry in the paper's model -------- *)

let test_search_beats_hand_in_model () =
  let p = 8 and t = 32 and d = 4 in
  let hand =
    List.fold_left
      (fun acc adv ->
        let r =
          Runner.run_spec ~check:true
            (Runner.spec ~seed:1 ~algo:"da-q4" ~adv ~p ~t ~d ())
        in
        max acc r.Runner.metrics.Metrics.work)
      0
      [ "max-delay"; "laggard"; "lb-det"; "lb-rand"; "flaky-restart" ]
  in
  let o =
    Worstcase.search ~seed:1 ~population:6 ~space:Strategy.In_model
      ~algo:"da-q4" ~p ~t ~d ~budget:16 ()
  in
  check
    (Printf.sprintf "synth (%d) >= hand (%d)" o.Synth.best_eval.Synth.e_work
       hand)
    true
    (o.Synth.best_eval.Synth.e_work >= hand);
  check "no violations" true (o.Synth.violations = [])

(* -- soak: oracle-on search over every registry algorithm ----------- *)

let test_soak_every_algorithm () =
  Doall_quorum.Register.install ();
  List.iter
    (fun aspec ->
      let algo = aspec.Runner.algo_name in
      let o =
        Worstcase.search ~seed:7 ~population:4 ~algo ~p:6 ~t:20 ~d:3
          ~budget:8 ()
      in
      if o.Synth.violations <> [] then
        Alcotest.failf "%s: oracle violation under %s" algo
          (fst (List.hd o.Synth.violations));
      if o.Synth.capped > 0 then
        Alcotest.failf "%s: %d candidate run(s) livelocked (hit the cap)"
          algo o.Synth.capped;
      check (algo ^ " found nonzero work") true
        (o.Synth.best_eval.Synth.e_work > 0))
    (Runner.all_algorithms ())

(* -- fuzz-case derivation is deterministic -------------------------- *)

let test_fuzz_gen_deterministic () =
  List.iter
    (fun quorum_safe ->
      let a = Fuzz_gen.case ~seed:4242 ~quorum_safe in
      let b = Fuzz_gen.case ~seed:4242 ~quorum_safe in
      check "same dims" true
        ((a.Fuzz_gen.p, a.Fuzz_gen.t, a.Fuzz_gen.d)
        = (b.Fuzz_gen.p, b.Fuzz_gen.t, b.Fuzz_gen.d));
      check_str "same strategy"
        (Strategy.to_spec a.Fuzz_gen.strategy)
        (Strategy.to_spec b.Fuzz_gen.strategy))
    [ false; true ]

let suite =
  [
    QCheck_alcotest.to_alcotest test_roundtrip_qcheck;
    Alcotest.test_case "of_spec rejects malformed specs" `Quick
      test_of_spec_errors;
    Alcotest.test_case "of_spec normalizes like make" `Quick
      test_of_spec_normalizes;
    Alcotest.test_case "latency declaration pins (stream gate)" `Quick
      test_latency_pins;
    Alcotest.test_case "strategy adversaries bit-identical at any --jobs"
      `Quick test_strategy_adv_jobs_deterministic;
    Alcotest.test_case "search deterministic (seed, jobs, replay)" `Slow
      test_search_deterministic;
    Alcotest.test_case "search >= hand registry in the paper's model" `Slow
      test_search_beats_hand_in_model;
    Alcotest.test_case "soak: oracle-on search over every algorithm" `Slow
      test_soak_every_algorithm;
    Alcotest.test_case "fuzz-case derivation deterministic" `Quick
      test_fuzz_gen_deterministic;
  ]
