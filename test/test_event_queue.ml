open Doall_sim

let check = Alcotest.(check bool)

let test_empty () =
  let q = Event_queue.create () in
  check "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option string)) "nothing due" None
    (Event_queue.pop_due q ~now:100)

let test_due_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:5 "c";
  Event_queue.add q ~time:1 "a";
  Event_queue.add q ~time:3 "b";
  Alcotest.(check (list string)) "time order" [ "a"; "b" ]
    (Event_queue.pop_all_due q ~now:3);
  Alcotest.(check (list string)) "rest later" [ "c" ]
    (Event_queue.pop_all_due q ~now:10)

let test_not_due_stays () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:7 "x";
  Alcotest.(check (option string)) "not due yet" None
    (Event_queue.pop_due q ~now:6);
  Alcotest.(check int) "still queued" 1 (Event_queue.size q);
  Alcotest.(check (option string)) "due now" (Some "x")
    (Event_queue.pop_due q ~now:7)

let test_tie_break_fifo () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:2 "first";
  Event_queue.add q ~time:2 "second";
  Event_queue.add q ~time:2 "third";
  Alcotest.(check (list string)) "insertion order at equal time"
    [ "first"; "second"; "third" ]
    (Event_queue.pop_all_due q ~now:2)

let test_past_events () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:0 "late-scheduled";
  Alcotest.(check (option string)) "past delivered" (Some "late-scheduled")
    (Event_queue.pop_due q ~now:50)

let test_next_time () =
  let q = Event_queue.create () in
  Alcotest.(check (option int)) "empty" None (Event_queue.next_time q);
  Event_queue.add q ~time:9 "x";
  Event_queue.add q ~time:4 "y";
  Alcotest.(check (option int)) "min" (Some 4) (Event_queue.next_time q)

(* --- calendar-ring backend -------------------------------------------- *)

let test_ring_basic () =
  let q = Event_queue.create ~horizon:4 () in
  Event_queue.add q ~time:2 "b";
  Event_queue.add q ~time:1 "a";
  Event_queue.add q ~time:2 "c";
  Alcotest.(check int) "size" 3 (Event_queue.size q);
  Alcotest.(check (option int)) "next" (Some 1) (Event_queue.next_time q);
  Alcotest.(check (list string)) "due order with FIFO ties" [ "a"; "b"; "c" ]
    (Event_queue.pop_all_due q ~now:2);
  check "drained" true (Event_queue.is_empty q)

let test_ring_wraparound_epochs () =
  (* A consumer that polls rarely: dues wrap the ring several times and
     land in the same buckets across epochs. *)
  let q = Event_queue.create ~horizon:2 () in
  let sent = ref [] in
  let now = ref 0 in
  for i = 0 to 19 do
    (* sender clock advances every iteration; due = clock + 1 or 2 *)
    let due = i + 1 + (i mod 2) in
    Event_queue.add q ~time:due i;
    sent := (due, i) :: !sent;
    (* consumer only polls every 7th instant *)
    if i mod 7 = 6 then begin
      now := i;
      let got = Event_queue.pop_all_due q ~now:!now in
      let expected =
        List.filter (fun (due, _) -> due <= !now) (List.rev !sent)
        |> List.sort compare |> List.map snd
      in
      sent := List.filter (fun (due, _) -> due > !now) !sent;
      Alcotest.(check (list int)) "epoch batch in (due, seq) order" expected
        got
    end
  done;
  let rest = Event_queue.pop_all_due q ~now:100 in
  Alcotest.(check int) "rest delivered" (List.length !sent)
    (List.length rest)

let test_ring_rejects_past_add () =
  let q = Event_queue.create ~horizon:3 () in
  ignore (Event_queue.pop_all_due q ~now:5);
  Alcotest.check_raises "add at cursor"
    (Invalid_argument "Event_queue.add: ring event at or before the cursor")
    (fun () -> Event_queue.add q ~time:5 "late")

let test_ring_pop_due_single () =
  let q = Event_queue.create ~horizon:4 () in
  Event_queue.add q ~time:1 "a";
  Event_queue.add q ~time:1 "b";
  Event_queue.add q ~time:3 "c";
  Alcotest.(check (option string)) "first" (Some "a")
    (Event_queue.pop_due q ~now:3);
  Alcotest.(check (option string)) "tie partner not skipped" (Some "b")
    (Event_queue.pop_due q ~now:3);
  Alcotest.(check (option string)) "then later" (Some "c")
    (Event_queue.pop_due q ~now:3);
  Alcotest.(check (option string)) "empty" None (Event_queue.pop_due q ~now:3)

let test_drain_matches_pop_all () =
  List.iter
    (fun horizon ->
      let mk () = Event_queue.create ?horizon () in
      let q1 = mk () and q2 = mk () in
      List.iter
        (fun (t, x) ->
          Event_queue.add q1 ~time:t x;
          Event_queue.add q2 ~time:t x)
        [ (1, "a"); (3, "b"); (1, "c"); (2, "d"); (5, "e") ];
      let drained = ref [] in
      Event_queue.drain_due q1 ~now:3 (fun x -> drained := x :: !drained);
      Alcotest.(check (list string)) "drain = pop_all"
        (Event_queue.pop_all_due q2 ~now:3)
        (List.rev !drained))
    [ None; Some 5 ]

(* The determinism keystone: on engine-shaped traffic (every add due
   within (clock, clock + horizon], clock non-decreasing), the ring and
   the heap deliver identical payload sequences. The heap is the oracle. *)
let prop_ring_matches_heap =
  QCheck2.Test.make ~name:"calendar ring = heap oracle (delivery order)"
    ~count:500
    QCheck2.Gen.(
      let* horizon = int_range 1 9 in
      let* ops =
        list_size (int_range 1 80)
          (triple (int_range 1 9) (int_range 0 4) (int_range 1 3))
      in
      return (horizon, ops))
    (fun (horizon, ops) ->
      let ring = Event_queue.create ~horizon () in
      let heap = Event_queue.create () in
      let now = ref 0 in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (delta, advance, burst) ->
          for _ = 1 to burst do
            incr seq;
            let due = !now + min horizon delta in
            Event_queue.add ring ~time:due !seq;
            Event_queue.add heap ~time:due !seq
          done;
          now := !now + advance;
          if Event_queue.pop_all_due ring ~now:!now
             <> Event_queue.pop_all_due heap ~now:!now
          then ok := false)
        ops;
      let final = !now + horizon + 1 in
      !ok
      && Event_queue.pop_all_due ring ~now:final
         = Event_queue.pop_all_due heap ~now:final
      && Event_queue.is_empty ring)

let test_ring_large_horizon_matches_heap () =
  (* The xl cells run the ring at d in the hundreds; pin the many-bucket
     regime (bucket count, cursor walks over long empty stretches,
     wrap-around with sparse occupancy) against the heap oracle. *)
  List.iter
    (fun horizon ->
      let ring = Event_queue.create ~horizon () in
      let heap = Event_queue.create () in
      let rng = Rng.create (0xE0 + horizon) in
      let now = ref 0 in
      let seq = ref 0 in
      for round = 1 to 400 do
        let burst = Rng.int rng 4 in
        for _ = 1 to burst do
          incr seq;
          let due = !now + 1 + Rng.int rng horizon in
          Event_queue.add ring ~time:due !seq;
          Event_queue.add heap ~time:due !seq
        done;
        (* long idle stretches force multi-bucket cursor walks *)
        now := !now + if round mod 7 = 0 then horizon / 2 else Rng.int rng 3;
        Alcotest.(check (list int))
          (Printf.sprintf "h=%d round %d" horizon round)
          (Event_queue.pop_all_due heap ~now:!now)
          (Event_queue.pop_all_due ring ~now:!now)
      done;
      let final = !now + horizon + 1 in
      Alcotest.(check (list int))
        (Printf.sprintf "h=%d final drain" horizon)
        (Event_queue.pop_all_due heap ~now:final)
        (Event_queue.pop_all_due ring ~now:final);
      Alcotest.(check bool)
        (Printf.sprintf "h=%d empty" horizon)
        true (Event_queue.is_empty ring))
    [ 64; 257; 512 ]

let prop_pop_all_due_partitions =
  QCheck2.Test.make ~name:"pop_all_due returns exactly the due items"
    ~count:200
    QCheck2.Gen.(
      let* events = list_size (int_range 0 60) (int_range 0 50) in
      let* now = int_range 0 50 in
      return (events, now))
    (fun (times, now) ->
      let q = Event_queue.create () in
      List.iteri (fun i time -> Event_queue.add q ~time (time, i)) times;
      let due = Event_queue.pop_all_due q ~now in
      let expected_due = List.filter (fun time -> time <= now) times in
      List.length due = List.length expected_due
      && List.for_all (fun (time, _) -> time <= now) due
      && Event_queue.size q = List.length times - List.length due)

let prop_delivery_order_monotone =
  QCheck2.Test.make ~name:"deliveries are time-monotone" ~count:200
    QCheck2.Gen.(list_size (int_range 0 80) (int_range 0 30))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun time -> Event_queue.add q ~time time) times;
      let out = Event_queue.pop_all_due q ~now:1000 in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone out)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "due ordering" `Quick test_due_ordering;
    Alcotest.test_case "not-due stays queued" `Quick test_not_due_stays;
    Alcotest.test_case "FIFO tie-break" `Quick test_tie_break_fifo;
    Alcotest.test_case "past events delivered" `Quick test_past_events;
    Alcotest.test_case "next_time" `Quick test_next_time;
    Alcotest.test_case "ring: basics" `Quick test_ring_basic;
    Alcotest.test_case "ring: wrap-around epochs" `Quick
      test_ring_wraparound_epochs;
    Alcotest.test_case "ring: past add rejected" `Quick
      test_ring_rejects_past_add;
    Alcotest.test_case "ring: pop_due does not skip ties" `Quick
      test_ring_pop_due_single;
    Alcotest.test_case "drain_due = pop_all_due (both backends)" `Quick
      test_drain_matches_pop_all;
    Alcotest.test_case "ring at large horizons = heap oracle" `Quick
      test_ring_large_horizon_matches_heap;
    QCheck_alcotest.to_alcotest prop_ring_matches_heap;
    QCheck_alcotest.to_alcotest prop_pop_all_due_partitions;
    QCheck_alcotest.to_alcotest prop_delivery_order_monotone;
  ]
