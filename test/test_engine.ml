open Doall_sim
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run ?(seed = 0) ?(p = 4) ?(t = 16) ?(d = 2) ?(adv = Adversary.fair) algo =
  let cfg = Config.make ~seed ~p ~t () in
  Engine.run_packed algo cfg ~d ~adversary:adv ()

let test_trivial_completes () =
  let m = run (Algo_trivial.make ()) in
  check "completed" true m.Metrics.completed;
  check_int "work p*t" (4 * 16) m.Metrics.work;
  check_int "no messages" 0 m.Metrics.messages;
  check_int "sigma = t - 1" 15 m.Metrics.sigma

let test_executions_at_least_t () =
  let m = run (Algo_pa.make_ran1 ()) in
  check "every task performed" true (m.Metrics.executions >= m.Metrics.t)

let test_work_counts_all_steps () =
  (* With fair scheduling, work = p * (sigma + 1) minus steps of processors
     that halted before sigma. For trivial nobody halts before sigma. *)
  let m = run (Algo_trivial.make ()) in
  check_int "work = p * (sigma+1)" (m.Metrics.p * (m.Metrics.sigma + 1))
    m.Metrics.work

let test_per_proc_work_sums () =
  let m = run (Algo_pa.make_ran2 ()) ~p:5 ~t:20 ~d:3 in
  check_int "per-processor sums to W" m.Metrics.work
    (Array.fold_left ( + ) 0 m.Metrics.per_proc_work)

let test_messages_multiple_of_p_minus_1 () =
  let m = run (Algo_pa.make_ran1 ()) ~p:6 ~t:12 ~d:2 in
  check_int "broadcasts only" 0 (m.Metrics.messages mod 5)

let test_d_zero_treated_as_one () =
  let m = run (Algo_pa.make_ran1 ()) ~d:0 in
  check "completes with d=0" true m.Metrics.completed;
  check_int "d recorded as 1" 1 m.Metrics.d

let test_deterministic_reproducible () =
  let m1 = run (Algo_da.make ~q:2 ()) ~p:6 ~t:24 ~d:4 ~seed:3 in
  let m2 = run (Algo_da.make ~q:2 ()) ~p:6 ~t:24 ~d:4 ~seed:3 in
  check_int "same work" m1.Metrics.work m2.Metrics.work;
  check_int "same messages" m1.Metrics.messages m2.Metrics.messages;
  check_int "same sigma" m1.Metrics.sigma m2.Metrics.sigma

let test_randomized_seed_sensitivity () =
  let works =
    List.map
      (fun seed ->
        (run (Algo_pa.make_ran1 ()) ~p:8 ~t:32 ~d:4 ~seed).Metrics.work)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  check "some variation across seeds" true
    (List.length (List.sort_uniq compare works) > 1)

let test_forced_step_under_total_delay () =
  (* An adversary that delays everybody: the engine must still advance
     one processor per unit, so the run completes. *)
  let deny = { Adversary.fair with
               name = "deny-all";
               schedule = (fun o -> Array.make o.Adversary.p false) } in
  let m = run (Algo_trivial.make ()) ~adv:deny ~p:3 ~t:9 in
  check "completed" true m.Metrics.completed;
  (* only one processor steps per unit: work equals elapsed units *)
  check_int "serialized work" (m.Metrics.sigma + 1) m.Metrics.work

let test_crash_all_but_one_still_completes () =
  let adv =
    Doall_adversary.Crash.into ~name:"cabo"
      (Doall_adversary.Crash.all_but_one ~survivor:2 ~time:3)
  in
  let m = run (Algo_da.make ~q:2 ()) ~adv ~p:4 ~t:16 ~d:2 in
  check "completed" true m.Metrics.completed;
  check_int "three crashed" 3 m.Metrics.crashed

let test_survivor_rule () =
  (* Crashing everyone is refused for the last processor. *)
  let adv =
    Doall_adversary.Crash.into ~name:"kill-all"
      (fun o -> List.init o.Adversary.p Fun.id)
  in
  let m = run (Algo_trivial.make ()) ~adv ~p:4 ~t:8 in
  check "completed" true m.Metrics.completed;
  check_int "one survivor" 3 m.Metrics.crashed

let test_oracle_would_perform () =
  (* Build an engine directly and inspect the oracle through an adversary
     that records lookahead results. *)
  let seen = ref [] in
  let adv =
    {
      Adversary.fair with
      name = "peek";
      schedule =
        (fun o ->
          (match o.Adversary.would_perform 0 with
           | Some task -> seen := task :: !seen
           | None -> ());
          Array.make o.Adversary.p true);
    }
  in
  let m = run (Algo_trivial.make ~staggered:false ()) ~adv ~p:2 ~t:6 in
  check "completed" true m.Metrics.completed;
  let seen = List.rev !seen in
  (* trivial-lockstep performs 0,1,2,..: lookahead must predict that *)
  check "lookahead predicted first task" true
    (match seen with 0 :: _ -> true | _ -> false);
  check "lookahead tracks progression" true
    (List.for_all2 ( = ) (List.init (min 6 (List.length seen)) Fun.id)
       (List.filteri (fun i _ -> i < 6) seen))

let test_plan_horizon () =
  let plans = ref [] in
  let adv =
    {
      Adversary.fair with
      name = "plan";
      schedule =
        (fun o ->
          if o.Adversary.time () = 0 then
            plans := o.Adversary.plan ~pid:0 ~horizon:4;
          Array.make o.Adversary.p true);
    }
  in
  let m = run (Algo_trivial.make ~staggered:false ()) ~adv ~p:2 ~t:8 in
  check "completed" true m.Metrics.completed;
  Alcotest.(check (list int)) "first four tasks planned" [ 0; 1; 2; 3 ] !plans

let test_lookahead_does_not_disturb () =
  (* Lookahead clones; the run with a peeking adversary equals the run
     with the same scheduling but no peeking. *)
  let peek =
    {
      Adversary.fair with
      name = "peek2";
      schedule =
        (fun o ->
          for pid = 0 to o.Adversary.p - 1 do
            ignore (o.Adversary.would_perform pid)
          done;
          Array.make o.Adversary.p true);
    }
  in
  let m1 = run (Algo_pa.make_ran1 ()) ~p:5 ~t:20 ~d:3 ~seed:9 ~adv:peek in
  let m2 = run (Algo_pa.make_ran1 ()) ~p:5 ~t:20 ~d:3 ~seed:9 in
  check_int "identical work" m2.Metrics.work m1.Metrics.work;
  check_int "identical sigma" m2.Metrics.sigma m1.Metrics.sigma

let test_delay_clamped_to_d () =
  (* An adversary demanding absurd latencies is clamped into [1, d]:
     the run must behave exactly like max-delay. *)
  let absurd =
    { Adversary.fair with
      name = "absurd";
      delay = (fun _ ~src:_ ~dst:_ -> 1_000_000_000);
      (* keep the declaration honest so the stream fast path is also
         exercised by the clamp *)
      latency = Adversary.Fixed 1_000_000_000 }
  in
  let m1 = run (Algo_pa.make_det ()) ~p:6 ~t:24 ~d:5 ~adv:absurd in
  let m2 = run (Algo_pa.make_det ()) ~p:6 ~t:24 ~d:5 ~adv:Adversary.max_delay in
  check "completes despite absurd delays" true m1.Metrics.completed;
  check_int "identical to max-delay" m2.Metrics.work m1.Metrics.work;
  (* and a zero/negative delay is floored at one time unit *)
  let instant =
    { Adversary.fair with
      name = "instant";
      delay = (fun _ ~src:_ ~dst:_ -> -3);
      latency = Adversary.Fixed (-3) }
  in
  let m3 = run (Algo_pa.make_det ()) ~p:6 ~t:24 ~d:5 ~adv:instant in
  let m4 = run (Algo_pa.make_det ()) ~p:6 ~t:24 ~d:5 ~adv:Adversary.fair in
  check_int "floored at 1 = fair" m4.Metrics.work m3.Metrics.work

let test_timeout_reported () =
  (* An adversary cannot prevent termination, so force a tiny cap. *)
  let cfg = Config.make ~p:4 ~t:64 () in
  let m =
    Engine.run_packed (Algo_da.make ~q:2 ()) cfg ~d:1
      ~adversary:Adversary.fair ~max_time:2 ()
  in
  check "not completed" false m.Metrics.completed

let test_trace_records () =
  let cfg = Config.make ~p:3 ~t:6 () in
  let m, trace =
    Engine.run_traced (Algo_trivial.make ()) cfg ~d:1
      ~adversary:Adversary.fair ()
  in
  check "completed" true m.Metrics.completed;
  let performs = ref 0 in
  Trace.iter trace (fun ev ->
      match ev with Trace.Perform _ -> incr performs | _ -> ());
  check_int "trace has all executions" m.Metrics.executions !performs

let test_fresh_flags_in_trace () =
  let cfg = Config.make ~p:3 ~t:6 () in
  let _, trace =
    Engine.run_traced (Algo_trivial.make ()) cfg ~d:1
      ~adversary:Adversary.fair ()
  in
  let fresh = ref 0 in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Perform { fresh = true; _ } -> incr fresh
      | _ -> ());
  check_int "each task fresh exactly once" 6 !fresh

let suite =
  [
    Alcotest.test_case "trivial completes, W=pt, M=0" `Quick
      test_trivial_completes;
    Alcotest.test_case "executions >= t" `Quick test_executions_at_least_t;
    Alcotest.test_case "work counts all steps" `Quick
      test_work_counts_all_steps;
    Alcotest.test_case "per-processor work sums to W" `Quick
      test_per_proc_work_sums;
    Alcotest.test_case "messages multiple of p-1" `Quick
      test_messages_multiple_of_p_minus_1;
    Alcotest.test_case "d=0 handled" `Quick test_d_zero_treated_as_one;
    Alcotest.test_case "deterministic runs reproducible" `Quick
      test_deterministic_reproducible;
    Alcotest.test_case "randomized runs vary with seed" `Quick
      test_randomized_seed_sensitivity;
    Alcotest.test_case "engine forces a step when all delayed" `Quick
      test_forced_step_under_total_delay;
    Alcotest.test_case "crash all-but-one completes" `Quick
      test_crash_all_but_one_still_completes;
    Alcotest.test_case "last survivor cannot be crashed" `Quick
      test_survivor_rule;
    Alcotest.test_case "oracle would_perform" `Quick test_oracle_would_perform;
    Alcotest.test_case "oracle plan horizon" `Quick test_plan_horizon;
    Alcotest.test_case "lookahead side-effect free" `Quick
      test_lookahead_does_not_disturb;
    Alcotest.test_case "delays clamped into [1, d]" `Quick
      test_delay_clamped_to_d;
    Alcotest.test_case "timeout reported honestly" `Quick
      test_timeout_reported;
    Alcotest.test_case "trace records performs" `Quick test_trace_records;
    Alcotest.test_case "trace fresh flags" `Quick test_fresh_flags_in_trace;
  ]
