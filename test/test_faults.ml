(* The fault-injection subsystem (docs/FAULTS.md): lossy / duplicating /
   reordering networks, crash-recovery, and the invariant oracle.

   The headline claim pinned here is liveness under total message loss:
   no algorithm in the registry ever depended on delivery for
   termination (solo fallback), so even [lossy-all] — 100% drop — must
   complete, with the oracle auditing every tick. *)

open Doall_sim
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let metrics_tuple (m : Metrics.t) =
  (m.Metrics.work, m.Metrics.messages, m.Metrics.sigma, m.Metrics.executions)

(* ------------------------------------------------------------------ *)
(* Headline: every algorithm stays live at 100% message loss.          *)

let test_total_loss_terminates () =
  List.iter
    (fun aspec ->
      let r =
        Runner.run ~check:true ~algo:aspec.Runner.algo_name ~adv:"lossy-all"
          ~p:5 ~t:15 ~d:3 ~seed:2 ()
      in
      let m = r.Runner.metrics in
      if not m.Metrics.completed then
        Alcotest.failf "%s did not terminate under 100%% message loss"
          aspec.Runner.algo_name;
      check (aspec.Runner.algo_name ^ " performed every task") true
        (m.Metrics.work >= 15))
    Runner.algorithms

let test_drop_all_overlay () =
  (* the same network via the --faults overlay path instead of the
     registry adversary: drop_all on top of max-delay *)
  List.iter
    (fun algo ->
      let r =
        Runner.run ~check:true ~faults:Doall_adversary.Fault.drop_all ~algo
          ~adv:"max-delay" ~p:5 ~t:15 ~d:3 ~seed:2 ()
      in
      check (algo ^ " completes with drop_all overlay") true
        r.Runner.metrics.Metrics.completed)
    [ "trivial"; "paran1"; "padet"; "da-q4" ]

(* ------------------------------------------------------------------ *)
(* Probe counters: drops and duplicate replicas are observable, and    *)
(* the M accounting holds (drops count toward messages, dups do not).  *)

let run_snapped ~adv ~seed =
  let probe = Probe.create () in
  let r =
    Runner.run ~probe ~check:true ~algo:"paran1" ~adv ~p:6 ~t:24 ~d:3 ~seed ()
  in
  let snap =
    match r.Runner.obs with
    | Some s -> s
    | None -> Alcotest.fail "probed run returned no snapshot"
  in
  (r.Runner.metrics, fun name -> List.assoc name snap.Probe.counters)

let test_drop_counter () =
  let m, c = run_snapped ~adv:"lossy-half" ~seed:5 in
  check "some messages dropped" true (c "net.drops" > 0);
  check "no replicas under a pure-loss policy" true (c "net.dups" = 0);
  (* a dropped send was still paid for by the algorithm: M counts it *)
  check_int "sends = messages (drops included)" m.Metrics.messages
    (c "net.sends");
  check "drops <= sends" true (c "net.drops" <= c "net.sends");
  check "deliveries <= sends - drops" true
    (c "net.deliveries" <= c "net.sends" - c "net.drops")

let test_dup_counter () =
  let m, c = run_snapped ~adv:"dup-storm" ~seed:5 in
  check "some replicas created" true (c "net.dups" > 0);
  (* replicas are the network's doing, not the algorithm's: M excludes
     them, so sends still equals the messages metric *)
  check_int "sends = messages (dups excluded)" m.Metrics.messages
    (c "net.sends");
  check "replicas deliver on top of sends" true
    (c "net.deliveries" > c "net.sends" - c "net.drops" - m.Metrics.p)

(* ------------------------------------------------------------------ *)
(* Crash-recovery: restarts happen, are traced, and reset local state. *)

let test_flaky_restart_traced () =
  let r, tr =
    Runner.run_traced ~check:true ~algo:"padet" ~adv:"flaky-restart" ~p:4
      ~t:16 ~d:2 ~seed:1 ()
  in
  check "completed" true r.Runner.metrics.Metrics.completed;
  let restarts, crashes =
    Trace.fold tr ~init:(0, 0) ~f:(fun (rs, cs) ev ->
        match ev with
        | Trace.Restart _ -> (rs + 1, cs)
        | Trace.Crash _ -> (rs, cs + 1)
        | _ -> (rs, cs))
  in
  check "some crashes under flaky-restart" true (crashes > 0);
  check "some restarts under flaky-restart" true (restarts > 0);
  (* every restart revives a previously crashed processor *)
  check "restarts <= crashes" true (restarts <= crashes);
  (* the survivor (pid 0) never crashes: flaky keeps it up *)
  Trace.iter tr (fun ev ->
      match ev with
      | Trace.Crash { pid = 0; time } ->
        Alcotest.failf "survivor pid 0 crashed at t=%d" time
      | _ -> ())

let test_restart_changes_outcome () =
  (* same flaky schedule with and without the revive rule: recovering
     processors add work the crash-only run cannot *)
  let run restart =
    let p = 4 and t = 16 and d = 2 in
    let crash, revive =
      Doall_adversary.Crash.flaky ~survivor:0 ~up:4 ~down:2 ()
    in
    let base =
      Doall_adversary.Schedule.combine ~name:"flaky"
        ~schedule:Doall_adversary.Schedule.all
        ~delay:(Doall_adversary.Delay.constant d)
        ~crash
        ?restart:(if restart then Some revive else None)
        ()
    in
    let cfg = Config.make ~seed:1 ~p ~t () in
    Engine.run_packed
      ((Runner.find_algo "padet").Runner.make ())
      cfg ~d ~adversary:base ~check:true ()
  in
  let with_restart = run true and without = run false in
  check "both complete (survivor rule)" true
    (with_restart.Metrics.completed && without.Metrics.completed);
  check "recovery changes the execution" true
    (metrics_tuple with_restart <> metrics_tuple without)

(* ------------------------------------------------------------------ *)
(* Run_timeout carries the partial metrics.                            *)

let test_run_timeout_partial_metrics () =
  match
    Runner.run ~max_time:3 ~algo:"paran1" ~adv:"max-delay" ~p:8 ~t:64 ~d:4 ()
  with
  | _ -> Alcotest.fail "expected Run_timeout at max_time:3"
  | exception Runner.Run_timeout { spec; metrics } ->
    check "spec names the run" true (spec.Runner.spec_algo = "paran1");
    check "partial metrics not completed" true (not metrics.Metrics.completed);
    check "sigma is the cap" true (metrics.Metrics.sigma <= 3);
    check "partial work was counted" true (metrics.Metrics.work > 0)

(* ------------------------------------------------------------------ *)
(* The oracle actually audits when asked, and stays silent otherwise.  *)

let test_oracle_ticks_checked () =
  let (module A : Algorithm.S) = (Runner.find_algo "padet").Runner.make () in
  let module E = Engine.Make (A) in
  let cfg = Config.make ~seed:1 ~p:4 ~t:16 () in
  let adversary = (Runner.find_adv "chaos").Runner.instantiate ~p:4 ~t:16 ~d:2 in
  let eng = E.create ~check:true cfg ~d:2 ~adversary in
  let m = E.run eng in
  check "completed" true m.Metrics.completed;
  (match E.checker eng with
   | None -> Alcotest.fail "check:true attached no oracle"
   | Some oc ->
     check "oracle audited every tick" true
       (Oracle.ticks_checked oc >= m.Metrics.sigma));
  let unchecked = E.create cfg ~d:2 ~adversary in
  check "default is unchecked" true (E.checker unchecked = None)

let test_checked_runs_bit_identical () =
  (* the oracle only reads: metrics with and without it are identical,
     including under a fault-heavy adversary *)
  List.iter
    (fun adv ->
      let run chk =
        (Runner.run ~check:chk ~algo:"paran1" ~adv ~p:6 ~t:24 ~d:3 ~seed:7 ())
          .Runner.metrics
      in
      Alcotest.(check (list int))
        (adv ^ ": per-proc work identical checked/unchecked")
        (Array.to_list (run false).Metrics.per_proc_work)
        (Array.to_list (run true).Metrics.per_proc_work);
      check (adv ^ ": metrics identical checked/unchecked") true
        (metrics_tuple (run false) = metrics_tuple (run true)))
    [ "fair"; "chaos"; "flaky-restart" ]

(* ------------------------------------------------------------------ *)
(* Chaos registry + determinism + the CLI fault-spec parser.           *)

let test_chaos_adversaries_complete_checked () =
  List.iter
    (fun adv ->
      let r =
        Runner.run ~check:true ~algo:"paran2" ~adv ~p:5 ~t:15 ~d:3 ~seed:3 ()
      in
      check (adv ^ " completes under audit") true
        r.Runner.metrics.Metrics.completed)
    [ "lossy-half"; "lossy-all"; "dup-storm"; "flaky-restart"; "chaos" ]

let test_faulty_runs_deterministic () =
  let faults =
    Doall_adversary.Fault.all
      [
        Doall_adversary.Fault.drop ~prob:0.3;
        Doall_adversary.Fault.duplicate ~copies:2 ~prob:0.2;
        Doall_adversary.Fault.reorder ~prob:0.3;
      ]
  in
  let run () =
    (Runner.run ~check:true ~faults ~algo:"paran1" ~adv:"uniform-delay" ~p:6
       ~t:24 ~d:3 ~seed:11 ())
      .Runner.metrics
  in
  check "same seed, same faulty execution" true
    (metrics_tuple (run ()) = metrics_tuple (run ()))

let test_of_spec () =
  (match Doall_adversary.Fault.of_spec "drop=0.3,dup=0.2x2,reorder=0.1" with
   | Error e -> Alcotest.failf "valid spec rejected: %s" e
   | Ok (_, name) ->
     check "normalized name mentions every clause" true
       (let has s =
          let re = Str.regexp_string s in
          try ignore (Str.search_forward re name 0); true
          with Not_found -> false
        in
        has "drop" && has "dup" && has "reorder"));
  List.iter
    (fun bad ->
      match Doall_adversary.Fault.of_spec bad with
      | Ok (_, name) -> Alcotest.failf "bogus spec %S accepted as %s" bad name
      | Error _ -> ())
    [ "bogus"; "drop"; "drop=1.5"; "dup=0.2xx2"; "drop=0.1,junk=3" ]

let test_to_spec () =
  let module F = Doall_adversary.Fault in
  let pin policy expect =
    Alcotest.(check (option string)) expect (Some expect) (F.to_spec policy)
  in
  pin (F.drop ~prob:0.5) "drop=0.5";
  pin (F.duplicate ~copies:1 ~prob:0.2) "dup=0.2";
  pin (F.duplicate ~copies:3 ~prob:0.25) "dup=0.25x3";
  pin (F.reorder ~prob:0.3) "reorder=0.3";
  pin
    (F.all [ F.drop ~prob:0.3; F.reorder ~prob:0.1 ])
    "drop=0.3,reorder=0.1";
  (* policies with no spec form serialize to None *)
  check "none has no spec" true (F.to_spec F.none = None);
  check "drop_all has no spec" true (F.to_spec F.drop_all = None)

let test_to_spec_roundtrip =
  (* of_spec -> to_spec yields a canonical name: parsing it again
     rebuilds a policy that prints identically (a fixpoint) *)
  QCheck2.Test.make ~name:"Fault.to_spec inverts of_spec" ~count:200
    QCheck2.Gen.(
      triple (int_range 0 1000) (int_range 0 1000) (int_range 1 8))
    (fun (a, b, copies) ->
      let module F = Doall_adversary.Fault in
      let spec =
        Printf.sprintf "drop=%g,dup=%gx%d,reorder=%g"
          (float_of_int a /. 1000.)
          (float_of_int b /. 1000.)
          copies
          (float_of_int (1000 - a) /. 1000.)
      in
      match F.of_spec spec with
      | Error e -> QCheck2.Test.fail_reportf "%s rejected: %s" spec e
      | Ok (policy, _name) -> (
        match F.to_spec policy with
        | None -> QCheck2.Test.fail_reportf "%s: to_spec lost the name" spec
        | Some name' ->
          (match F.of_spec name' with
          | Error e ->
            QCheck2.Test.fail_reportf "%s unparsable: %s" name' e
          | Ok (_, name'') ->
            if name' <> name'' then
              QCheck2.Test.fail_reportf "not a fixpoint: %s -> %s" name'
                name'');
          true))

let suite =
  [
    Alcotest.test_case "every algorithm survives 100% loss" `Quick
      test_total_loss_terminates;
    Alcotest.test_case "drop_all as a --faults overlay" `Quick
      test_drop_all_overlay;
    Alcotest.test_case "net.drops counter + M accounting" `Quick
      test_drop_counter;
    Alcotest.test_case "net.dups counter + M accounting" `Quick
      test_dup_counter;
    Alcotest.test_case "flaky-restart crashes, revives, traces" `Quick
      test_flaky_restart_traced;
    Alcotest.test_case "recovery changes the execution" `Quick
      test_restart_changes_outcome;
    Alcotest.test_case "Run_timeout carries partial metrics" `Quick
      test_run_timeout_partial_metrics;
    Alcotest.test_case "oracle audits every tick when attached" `Quick
      test_oracle_ticks_checked;
    Alcotest.test_case "oracle is read-only (bit-identical runs)" `Quick
      test_checked_runs_bit_identical;
    Alcotest.test_case "chaos registry completes under audit" `Quick
      test_chaos_adversaries_complete_checked;
    Alcotest.test_case "faulty runs deterministic in the seed" `Quick
      test_faulty_runs_deterministic;
    Alcotest.test_case "--faults spec parser" `Quick test_of_spec;
    Alcotest.test_case "Fault.to_spec pins" `Quick test_to_spec;
    QCheck_alcotest.to_alcotest test_to_spec_roundtrip;
  ]
