open Doall_core
open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_p_ge_t () =
  let part = Task.make ~p:10 ~t:6 in
  check_int "n = t" 6 part.Task.n;
  for j = 0 to 5 do
    check_int "singleton jobs" 1 (Task.job_size part j);
    Alcotest.(check (list int)) "job j = task j" [ j ]
      (Task.tasks_of_job part j)
  done

let test_p_lt_t () =
  let part = Task.make ~p:4 ~t:10 in
  check_int "n = p" 4 part.Task.n;
  let sizes = List.init 4 (Task.job_size part) in
  check_int "total tasks" 10 (List.fold_left ( + ) 0 sizes);
  List.iter
    (fun s -> check "sizes within ceil(t/p)" true (s = 2 || s = 3))
    sizes

let test_job_of_task_consistent () =
  let part = Task.make ~p:3 ~t:11 in
  for z = 0 to 10 do
    let j = Task.job_of_task part z in
    check "membership" true (List.mem z (Task.tasks_of_job part j))
  done

let test_contiguous_cover () =
  let part = Task.make ~p:5 ~t:17 in
  let all = List.concat_map (Task.tasks_of_job part) (List.init part.Task.n Fun.id) in
  Alcotest.(check (list int)) "jobs partition tasks" (List.init 17 Fun.id)
    (List.sort compare all)

let test_job_done_and_next_member () =
  let part = Task.make ~p:2 ~t:5 in
  (* job 0 = {0,1,2}, job 1 = {3,4} *)
  let know = Bitset.create 5 in
  check "initially not done" false (Task.job_done part know 0);
  Alcotest.(check (option int)) "first member" (Some 0)
    (Task.next_member part know 0);
  Bitset.set know 0;
  Bitset.set know 2;
  Alcotest.(check (option int)) "skips known members" (Some 1)
    (Task.next_member part know 0);
  Bitset.set know 1;
  check "now done" true (Task.job_done part know 0);
  Alcotest.(check (option int)) "no member left" None
    (Task.next_member part know 0);
  check "job 1 unaffected" false (Task.job_done part know 1)

let prop_first_unknown_agrees_with_next_member =
  (* [first_unknown ~from:lo] is [next_member]; with a carried cursor it
     must keep agreeing as knowledge grows (the monotone-scan contract
     Algo_pa's per-step job cursor relies on). *)
  QCheck2.Test.make ~name:"first_unknown = next_member under monotone growth"
    ~count:300
    QCheck2.Gen.(
      let* p = int_range 1 10 in
      let* t = int_range 1 80 in
      let* sets = list_size (int_range 0 60) (int_range 0 (t - 1)) in
      return (p, t, sets))
    (fun (p, t, sets) ->
      let part = Task.make ~p ~t in
      let know = Bitset.create t in
      let cursors = Array.make part.Task.n 0 in
      List.init part.Task.n Fun.id
      |> List.iter (fun j ->
             cursors.(j) <- fst part.Task.task_ranges.(j));
      List.for_all
        (fun i ->
          Bitset.set know i;
          List.for_all
            (fun j ->
              let lo, hi = part.Task.task_ranges.(j) in
              (* cursor-carried scan = fresh scan = next_member *)
              cursors.(j) <-
                Task.first_unknown part know j ~from:cursors.(j);
              let fresh = Task.first_unknown part know j ~from:lo in
              cursors.(j) = fresh
              &&
              match Task.next_member part know j with
              | Some z -> fresh = z && z < hi
              | None -> fresh = hi)
            (List.init part.Task.n Fun.id))
        sets)

let test_jobs_done_count () =
  let part = Task.make ~p:3 ~t:6 in
  let know = Bitset.of_list 6 [ 0; 1; 4; 5 ] in
  (* jobs: {0,1} {2,3} {4,5} *)
  check_int "two jobs done" 2 (Task.jobs_done_count part know)

let test_validation () =
  Alcotest.check_raises "bad p"
    (Invalid_argument "Task.make: p and t must be positive") (fun () ->
      ignore (Task.make ~p:0 ~t:3));
  let part = Task.make ~p:2 ~t:4 in
  Alcotest.check_raises "bad job" (Invalid_argument "Task: job id out of range")
    (fun () -> ignore (Task.job_size part 2))

let prop_partition_invariants =
  QCheck2.Test.make ~name:"partition invariants" ~count:300
    QCheck2.Gen.(pair (int_range 1 40) (int_range 1 200))
    (fun (p, t) ->
      let part = Task.make ~p ~t in
      let n = part.Task.n in
      let ceil_tp = (t + p - 1) / p in
      n = min p t
      && List.for_all
           (fun j ->
             let s = Task.job_size part j in
             s >= 1 && s <= max 1 ceil_tp)
           (List.init n Fun.id)
      && List.fold_left ( + ) 0 (List.init n (Task.job_size part)) = t)

let suite =
  [
    Alcotest.test_case "p >= t: singleton jobs" `Quick test_p_ge_t;
    Alcotest.test_case "p < t: balanced jobs" `Quick test_p_lt_t;
    Alcotest.test_case "job_of_task consistent" `Quick
      test_job_of_task_consistent;
    Alcotest.test_case "jobs cover all tasks" `Quick test_contiguous_cover;
    Alcotest.test_case "job_done / next_member" `Quick
      test_job_done_and_next_member;
    QCheck_alcotest.to_alcotest prop_first_unknown_agrees_with_next_member;
    Alcotest.test_case "jobs_done_count" `Quick test_jobs_done_count;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_partition_invariants;
  ]
