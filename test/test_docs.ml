(* Documentation consistency: every file path mentioned in the docs and
   every named registry entry referenced by README/docs actually exists.
   Guards against doc rot as the library evolves. *)

let check = Alcotest.(check bool)

(* tests run from the test/ build context; locate the repo root by
   walking up until dune-project is found *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let extract_paths text =
  (* pull tokens that look like repo paths: lib/..., test/..., bench/...,
     examples/..., docs/..., bin/... with an extension *)
  let re =
    Str.regexp
      "\\(lib\\|test\\|bench\\|examples\\|docs\\|bin\\)/[A-Za-z0-9_/.-]+\\.\\(ml\\|mli\\|md\\)"
  in
  let rec go acc pos =
    match Str.search_forward re text pos with
    | exception Not_found -> acc
    | i -> go (Str.matched_string text :: acc) (i + 1)
  in
  List.sort_uniq compare (go [] 0)

let test_doc_paths_exist () =
  match repo_root () with
  | None -> () (* installed context: nothing to check *)
  | Some root ->
    let docs =
      [ "README.md"; "DESIGN.md"; "EXPERIMENTS.md"; "docs/PAPER_MAP.md";
        "docs/MODEL.md"; "docs/ALGORITHMS.md"; "docs/LOWER_BOUNDS.md";
        "docs/CONTENTION.md"; "docs/PERFORMANCE.md";
        "docs/OBSERVABILITY.md"; "docs/FAULTS.md" ]
    in
    List.iter
      (fun doc ->
        let path = Filename.concat root doc in
        if Sys.file_exists path then
          List.iter
            (fun referenced ->
              (* tolerate deliberate non-path prose like "lib/quorum" *)
              if not (Sys.file_exists (Filename.concat root referenced)) then
                Alcotest.failf "%s references missing file %s" doc referenced)
            (extract_paths (read_file path))
        else Alcotest.failf "documented file %s itself is missing" doc)
      docs

let test_registry_names_in_docs_exist () =
  Doall_quorum.Register.install ();
  let known =
    List.map
      (fun s -> s.Doall_core.Runner.algo_name)
      (Doall_core.Runner.all_algorithms ())
  in
  List.iter
    (fun name -> check (name ^ " registered") true (List.mem name known))
    [
      "trivial"; "da-q2"; "da-q4"; "da-q8"; "paran1"; "paran2"; "padet";
      "coord"; "awq-q4"; "awq-abd-q4";
    ]

let suite =
  [
    Alcotest.test_case "doc file references exist" `Quick
      test_doc_paths_exist;
    Alcotest.test_case "documented registry names exist" `Quick
      test_registry_names_in_docs_exist;
  ]
