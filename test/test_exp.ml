(* The declarative experiment subsystem (lib/exp): spec metadata, the
   registry contract, the cell memo cache, and the golden pin that the
   migrated bodies render byte-identically to the pre-refactor
   bench/main.ml output at several pool widths. *)

module Exp = Doall_exp.Exp
module Ctx = Doall_exp.Ctx
module Catalog = Doall_exp.Catalog
open Doall_core

let () = Catalog.install ()

(* -- spec metadata ------------------------------------------------- *)

let test_spec_fields () =
  let e =
    Exp.make ~id:"zz-spec" ~doc:"a doc" ~anchor:"Thm 0"
      ~axes:(Exp.axes ~algos:[ "a1" ] ~points:[ (1, 2, 3) ] ~seeds:[ 4 ] ())
      ~tables:[ "main"; "extra" ]
      (fun _ -> ())
  in
  Alcotest.(check string) "id" "zz-spec" e.Exp.id;
  Alcotest.(check string) "doc" "a doc" e.Exp.doc;
  Alcotest.(check string) "one-liner" "(Thm 0) a doc" (Exp.one_liner e);
  Alcotest.(check (list string)) "tables" [ "main"; "extra" ] e.Exp.tables;
  Alcotest.(check (list string)) "algos axis" [ "a1" ] e.Exp.axes.Exp.algos

let test_describe () =
  let e =
    Exp.make ~id:"zz-desc" ~doc:"describe me" ~anchor:"Lemma 9"
      ~axes:
        (Exp.axes ~algos:[ "x"; "y" ] ~advs:[ "fair" ] ~points:[ (8, 16, 2) ]
           ~seeds:[ 1; 2 ] ~fault_tags:[ "drop=0.50" ] ())
      ~tables:[ "main" ]
      (fun _ -> ())
  in
  let d = Exp.describe e in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "describe mentions %S" needle)
        true
        (Str.string_match
           (Str.regexp (".*" ^ Str.quote needle ^ ".*"))
           (Str.global_replace (Str.regexp_string "\n") " " d)
           0))
    [
      "zz-desc"; "describe me"; "Lemma 9"; "x, y"; "fair"; "(p=8,t=16,d=2)";
      "1, 2"; "drop=0.50"; "zz-desc-main.csv";
    ]

let test_describe_text_only () =
  let e = Exp.make ~id:"zz-text" ~doc:"d" ~anchor:"a" (fun _ -> ()) in
  Alcotest.(check bool)
    "text-only marker" true
    (Str.string_match (Str.regexp ".*text-only.*")
       (Str.global_replace (Str.regexp_string "\n") " " (Exp.describe e))
       0)

(* -- registry ------------------------------------------------------ *)

let test_registry_duplicate () =
  let e = Exp.make ~id:"zz-dup-test" ~doc:"d" ~anchor:"a" (fun _ -> ()) in
  Exp.register e;
  Alcotest.check_raises "duplicate id rejected"
    (Invalid_argument "Exp.register: duplicate experiment id \"zz-dup-test\"")
    (fun () -> Exp.register e)

let test_registry_order_and_find () =
  let ids = Exp.ids () in
  let take n l = List.filteri (fun i _ -> i < n) l in
  Alcotest.(check (list string))
    "catalog order is the bench order"
    [ "e1"; "e2"; "e3"; "fig1"; "e4" ]
    (take 5 ids);
  Alcotest.(check bool) "e19 registered" true (List.mem "e19" ids);
  Alcotest.(check bool) "find hit" true (Exp.find "e17" <> None);
  Alcotest.(check bool) "find miss" true (Exp.find "nope" = None);
  (* install is idempotent: a second call must not re-register *)
  let n = List.length (Exp.all ()) in
  Catalog.install ();
  Alcotest.(check int) "install idempotent" n (List.length (Exp.all ()))

(* -- cell memo cache ----------------------------------------------- *)

let null_sink =
  { Exp.on_table = (fun ~name:_ _ -> ()); on_text = (fun _ -> ()) }

let test_cell_memo () =
  let spec = Runner.spec ~seed:1 ~algo:"trivial" ~adv:"fair" ~p:4 ~t:8 ~d:1 () in
  let spec2 =
    Runner.spec ~seed:2 ~algo:"trivial" ~adv:"fair" ~p:4 ~t:8 ~d:1 ()
  in
  let e =
    Exp.make ~id:"zz-memo" ~doc:"d" ~anchor:"a" (fun ctx ->
        let before = Runner.sim_count () in
        let r1 = Ctx.cell ctx spec in
        let r2 = Ctx.cell ctx spec in
        (* same spec, repeated in a batch with a fresh one *)
        let batch = Ctx.grid ctx [ spec; spec2; spec ] in
        Alcotest.(check int)
          "simulated exactly twice" 2
          (Runner.sim_count () - before);
        Alcotest.(check int) "ctx agrees" 2 (Ctx.cells_simulated ctx);
        Alcotest.(check bool) "hit is the same result" true (r1 == r2);
        (match batch with
         | [ a; b; c ] ->
           Alcotest.(check bool) "batch dedup" true (a == c && a == r1);
           Alcotest.(check bool) "fresh cell differs" true (b != a)
         | _ -> Alcotest.fail "grid arity");
        (* a different oracle flag or fault tag is a different cell *)
        let _ = Ctx.cell ctx ~check:true spec in
        Alcotest.(check int) "check:true is a miss" 3 (Ctx.cells_simulated ctx);
        let faults = ("drop=0.50", Doall_adversary.Fault.drop ~prob:0.5) in
        let _ = Ctx.cell ctx ~faults spec in
        let _ = Ctx.cell ctx ~faults spec in
        Alcotest.(check int) "fault tag keys the cache" 4
          (Ctx.cells_simulated ctx))
  in
  Exp.run ~jobs:1 ~sink:null_sink e

(* E1's table asks for 4 algos x 5 delays and its plot for 4 x 8 (a
   superset of delays) — pre-refactor that simulated 52 cells, the memo
   cache must do exactly the 32 distinct ones. *)
let test_e1_dedup () =
  let e1 = Option.get (Exp.find "e1") in
  let before = Runner.sim_count () in
  Exp.run ~jobs:1 ~sink:null_sink e1;
  Alcotest.(check int) "e1 simulates each distinct cell once" 32
    (Runner.sim_count () - before)

(* -- golden byte-identity ------------------------------------------ *)

(* test/exp-golden/<id>.expected are verbatim pre-refactor `bench <id>`
   stdout captures (trailing newline from the driver stripped). The
   migrated bodies must render the same bytes through a buffer sink at
   any pool width — this is both the migration pin and the pool
   determinism contract applied to whole experiments. *)
let golden_ids = [ "e1"; "e2"; "e19" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let render_with_jobs id jobs =
  let e = Option.get (Exp.find id) in
  let buf = Buffer.create 4096 in
  Exp.run ~jobs ~sink:(Exp.buffer_sink buf) e;
  Buffer.contents buf

(* `dune runtest` runs with cwd = the test directory; `dune exec
   test/main.exe` from the repo root does not. *)
let golden_path id =
  let candidates =
    [
      Filename.concat "exp-golden" (id ^ ".expected");
      Filename.concat "test/exp-golden" (id ^ ".expected");
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let test_golden id () =
  let expected = read_file (golden_path id) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "%s at jobs=%d" id jobs)
        expected (render_with_jobs id jobs))
    [ 1; 2; 4 ]

(* -- jsonl sink ---------------------------------------------------- *)

let test_write_table () =
  let tbl =
    Doall_analysis.Table.create ~title:"T" ~columns:[ "a"; "b" ]
  in
  Doall_analysis.Table.add_row tbl [ "1"; "x,y" ];
  Doall_analysis.Table.add_note tbl "note";
  let path = Filename.temp_file "doall-exp" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Doall_obs.Export.write_table oc ~exp:"zz" ~name:"main" tbl;
      close_out oc;
      let lines =
        String.split_on_char '\n' (String.trim (read_file path))
      in
      Alcotest.(check int) "header + one row" 2 (List.length lines);
      let header = List.nth lines 0 and row = List.nth lines 1 in
      Alcotest.(check string) "header line"
        {|{"v":1,"kind":"table","exp":"zz","name":"main","title":"T","columns":["a","b"],"rows":1,"notes":["note"]}|}
        header;
      Alcotest.(check string) "row line"
        {|{"v":1,"kind":"row","exp":"zz","name":"main","cells":{"a":"1","b":"x,y"}}|}
        row)

let suite =
  [
    Alcotest.test_case "spec fields" `Quick test_spec_fields;
    Alcotest.test_case "describe" `Quick test_describe;
    Alcotest.test_case "describe text-only" `Quick test_describe_text_only;
    Alcotest.test_case "registry duplicate" `Quick test_registry_duplicate;
    Alcotest.test_case "registry order/find" `Quick test_registry_order_and_find;
    Alcotest.test_case "cell memo" `Quick test_cell_memo;
    Alcotest.test_case "e1 cell dedup" `Quick test_e1_dedup;
    Alcotest.test_case "write_table jsonl" `Quick test_write_table;
  ]
  @ List.map
      (fun id ->
        Alcotest.test_case (Printf.sprintf "golden %s" id) `Slow
          (test_golden id))
      golden_ids
