(* doall: run message-delay-sensitive Do-All algorithms under adversarial
   simulation from the command line.

     doall list
     doall run --algo da-q4 --adv lb-det -p 32 -t 256 -d 16
     doall run --algo paran1 --adv fair -p 8 -t 64 -d 4 --trace
     doall run --algo paran1 --adv max-delay --obs out.jsonl
     doall run --algo padet --adv chaos --check --seed 7
     doall run --algo da-q4 --adv fair --faults drop=0.5,dup=0.2x2 --check
     doall trace --algo paran1 --adv fair -p 4 -t 16 --jsonl -
     doall trace --algo paran1 --adv max-delay -p 8 -t 64 --chrome tr.json
     doall obs diff run-a.jsonl run-b.jsonl --tol 1.5
     doall sweep --algo padet --adv max-delay -p 32 -t 256 --delays 1,4,16,64
     doall exp list
     doall exp run e1 e19 --jobs 2 --csv out/ --jsonl results.jsonl
     doall contention -n 6 --count 6 *)

open Cmdliner
open Doall_core
open Doall_analysis
module Export = Doall_obs.Export
module Progress = Doall_obs.Progress
module Exp = Doall_exp.Exp
module Ctx = Doall_exp.Ctx
module Catalog = Doall_exp.Catalog

let pos_int ~what v =
  if v <= 0 then `Error (Printf.sprintf "%s must be positive" what) else `Ok v

let p_arg =
  Arg.(value & opt int 16 & info [ "p"; "processors" ] ~docv:"P"
         ~doc:"Number of processors.")

let t_arg =
  Arg.(value & opt int 128 & info [ "t"; "tasks" ] ~docv:"T"
         ~doc:"Number of tasks.")

let d_arg =
  Arg.(value & opt int 8 & info [ "d"; "delay" ] ~docv:"D"
         ~doc:"Adversary's message-delay bound (unknown to the algorithms).")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.")

let algo_arg =
  Arg.(value & opt string "da-q4" & info [ "algo" ] ~docv:"NAME"
         ~doc:"Algorithm name; see $(b,doall list).")

let adv_arg =
  Arg.(value & opt string "fair" & info [ "adv" ] ~docv:"NAME"
         ~doc:"Adversary name; see $(b,doall list).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ]
         ~doc:"Record and print the per-processor timeline (small runs).")

let jobs_arg =
  Arg.(value
       & opt int (Doall_sim.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the grid commands (sweep, compare). \
                 Results are identical for any N; default is the \
                 machine's recommended domain count.")

let obs_arg =
  Arg.(value & opt (some string) None & info [ "obs" ] ~docv:"FILE"
         ~doc:"Instrument the run with in-engine probes and write the \
               final snapshot as JSONL to $(docv) ('-' for stdout); \
               schema in docs/OBSERVABILITY.md. Metrics are identical \
               with and without probes.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Self-profile the engine's phases (deliver, algo_step, \
               adversary, bcast_maint, oracle) and print the wall-clock \
               breakdown on stderr; with --obs the snapshot also gets a \
               'phases' line. Metrics are identical with and without.")

let check_arg =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Audit every tick with the invariant oracle and fail \
               loudly on the first violated invariant (docs/FAULTS.md). \
               Read-only: metrics are identical with and without.")

let faults_arg =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
         ~doc:"Overlay a message-fault policy on the adversary: \
               comma-separated $(b,drop=P), $(b,dup=P)[xN], \
               $(b,reorder=P), e.g. 'drop=0.3,dup=0.2x2,reorder=0.1'. \
               Beyond the paper's model; see docs/FAULTS.md.")

let max_time_arg =
  Arg.(value & opt (some int) None & info [ "max-time" ] ~docv:"N"
         ~doc:"Cap the run at $(docv) time units. A capped run prints \
               its partial metrics and exits nonzero instead of \
               pretending to be data.")

let transport_arg =
  Arg.(value & opt string "ptp" & info [ "transport" ] ~docv:"T"
         ~doc:"Network backend: $(b,ptp) (the paper's reliable \
               point-to-point model, the default), $(b,channel) \
               (multiple-access shared channel, one transmission slot \
               per time unit, collisions silent) or $(b,channel-detect) \
               (collisions detectable; colliders back off \
               deterministically). See docs/MODEL.md. Channel runs \
               reject --faults (the shared medium has its own loss \
               model: collisions).")

let parse_transport s =
  match Doall_sim.Config.transport_of_string s with
  | Ok tr -> tr
  | Error e ->
    prerr_endline ("doall: --transport: " ^ e);
    exit 2

(* Returns the policy with its normalized name, which doubles as the
   memo-cache tag for the experiment contexts. *)
let parse_faults = function
  | None -> None
  | Some spec -> (
    match Doall_adversary.Fault.of_spec spec with
    | Ok (policy, name) -> Some (name, policy)
    | Error msg ->
      prerr_endline ("doall: --faults: " ^ msg);
      exit 2)

let progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Render a live 'k/n cells, ETA' line on stderr while the \
               grid runs (only when stderr is a tty; CI logs stay \
               clean).")

(* Everything under run/trace that is commentary rather than data goes
   to stderr: '--obs -' and '--jsonl -' put machine-readable streams on
   stdout, and a summary mixed into them would corrupt the artifact. *)
let print_span_summary (sp : Span.snapshot) =
  Format.eprintf "phases (engine self-profile, wall-clock):@.";
  List.iter
    (fun (name, (total, count)) ->
      Format.eprintf "  %-12s %8.3f ms  x%d@." name (total *. 1e3) count)
    sp;
  Format.eprintf "  %-12s %8.3f ms@." "total" (Span.total sp *. 1e3)

let print_percentiles (s : Probe.snapshot) =
  List.iter
    (fun (name, (h : Probe.histogram_snapshot)) ->
      if h.Probe.count > 0 then begin
        let pc q =
          let lo, hi = Probe.percentile h q in
          if lo = hi then string_of_int lo else Printf.sprintf "%d..%d" lo hi
        in
        Format.eprintf "hist %-24s n=%-8d p50=%s p90=%s p99=%s max=%d@." name
          h.Probe.count (pc 0.50) (pc 0.90) (pc 0.99) h.Probe.max
      end)
    s.Probe.histograms

(* One cell's worth of export metadata, shared by run --obs and trace
   --jsonl. *)
let result_meta (r : Runner.result) p t d =
  Export.Json.
    [
      ("algo", Str r.Runner.algo);
      ("adv", Str r.Runner.adv);
      ("p", Int p);
      ("t", Int t);
      ("d", Int d);
      ("seed", Int r.Runner.seed);
      ("wall_s", Float r.Runner.wall_s);
    ]

(* ------------------------------------------------------------------ *)

let list_cmd =
  let doc = "List available algorithms and adversaries." in
  let run () =
    print_endline "Algorithms:";
    List.iter
      (fun s ->
        Printf.printf "  %-10s %s\n" s.Runner.algo_name s.Runner.doc)
      (Runner.all_algorithms ());
    print_endline "";
    print_endline "Adversaries:";
    List.iter
      (fun s -> Printf.printf "  %-18s %s\n" s.Runner.adv_name s.Runner.adv_doc)
      Runner.adversaries;
    print_endline "";
    print_endline
      "  strategy:<spec>    any strategy-DSL spec, compiled on the spot \
       (docs/FAULTS.md);\n\
      \                     e.g. --adv 'strategy:sched=laggard;delay=max' \
       or doall run --strategy ..."
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let strategy_arg =
  Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"SPEC"
         ~doc:"Run against a strategy-DSL spec instead of a named \
               adversary (shorthand for --adv strategy:$(docv)); the \
               grammar is in docs/FAULTS.md and what $(b,doall synth) \
               prints replays through this flag.")

let run_cmd =
  let doc = "Run one algorithm against one adversary and print metrics." in
  let run algo adv strategy p t d seed trace obs profile check faults_spec
      max_time transport =
    match (pos_int ~what:"p" p, pos_int ~what:"t" t) with
    | `Error e, _ | _, `Error e -> prerr_endline e; exit 2
    | `Ok p, `Ok t ->
      let adv =
        match strategy with None -> adv | Some s -> "strategy:" ^ s
      in
      let faults = Option.map snd (parse_faults faults_spec) in
      let transport = parse_transport transport in
      (try
         if trace then begin
           let result, tr =
             Runner.run_traced ~seed ~profile ~check ?faults ?max_time
               ~transport ~algo ~adv ~p ~t ~d ()
           in
           Option.iter print_span_summary result.Runner.spans;
           Format.printf "%a@." Doall_sim.Metrics.pp result.Runner.metrics;
           let until =
             min 120 (result.Runner.metrics.Doall_sim.Metrics.sigma + 1)
           in
           Format.printf "%a" Doall_sim.Trace.pp_timeline (tr, p, until);
           Format.printf
             "legend: # task step, o bookkeeping step, . delayed, H halt, \
              X crash, R restart@."
         end
         else begin
           let probe =
             match obs with None -> None | Some _ -> Some (Probe.create ())
           in
           let result =
             Runner.run ~seed ?probe ~profile ~check ?faults ?max_time
               ~transport ~algo ~adv ~p ~t ~d ()
           in
           Format.printf "%a@." Doall_sim.Metrics.pp result.Runner.metrics;
           Option.iter print_span_summary result.Runner.spans;
           Option.iter print_percentiles result.Runner.obs;
           let m = result.Runner.metrics in
           Format.printf "bounds: lower=%.0f pa-upper=%.0f oblivious=%.0f@."
             (Bounds.lower_bound ~p ~t ~d)
             (Bounds.pa_upper ~p ~t ~d)
             (Bounds.oblivious_work ~p ~t);
           Format.printf "effort (W+M) = %d@." (Doall_sim.Metrics.effort m);
           match obs with
           | None -> ()
           | Some path ->
             Export.with_out path (fun oc ->
                 Export.write_run oc
                   ~meta:(result_meta result p t d)
                   ?snapshot:result.Runner.obs ?spans:result.Runner.spans
                   result.Runner.metrics);
             if path <> "-" then
               Format.eprintf "wrote probe snapshot to %s@." path
         end
       with
      | Runner.Run_timeout { metrics; _ } ->
        Format.eprintf
          "doall: run hit the time cap at %d without completing@."
          metrics.Doall_sim.Metrics.sigma;
        Format.printf "partial %a@." Doall_sim.Metrics.pp metrics;
        exit 1
      | Doall_sim.Oracle.Invariant_violation v ->
        Format.eprintf "doall: %a@." Doall_sim.Oracle.pp_violation v;
        exit 1
      | Invalid_argument msg ->
        (* e.g. fault injection requested on the shared channel *)
        prerr_endline ("doall: " ^ msg);
        exit 2
      | Failure msg ->
        (* unknown names and unparsable strategy:<spec> arguments *)
        prerr_endline ("doall: " ^ msg);
        exit 2)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ algo_arg $ adv_arg $ strategy_arg $ p_arg $ t_arg
          $ d_arg $ seed_arg $ trace_arg $ obs_arg $ profile_arg $ check_arg
          $ faults_arg $ max_time_arg $ transport_arg)

let trace_cmd =
  let doc =
    "Run one instance with trace recording and export the event stream \
     as JSONL."
  in
  let jsonl_arg =
    Arg.(value & opt string "-" & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"Destination for the JSONL event stream ('-' = stdout, \
                 the default); one event per line, schema in \
                 docs/OBSERVABILITY.md.")
  in
  let chrome_arg =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Also export the run as a Chrome trace-event document \
                 ('-' = stdout): per-processor tracks, broadcast flow \
                 arrows and the engine phase profile, loadable in \
                 Perfetto / chrome://tracing.")
  in
  let run algo adv p t d seed jsonl chrome transport =
    match (pos_int ~what:"p" p, pos_int ~what:"t" t) with
    | `Error e, _ | _, `Error e -> prerr_endline e; exit 2
    | `Ok p, `Ok t ->
      (* The Chrome artifact carries an engine-profile track, so profile
         exactly when it is requested; the JSONL stream is unaffected. *)
      let profile = chrome <> None in
      let transport = parse_transport transport in
      let result, tr =
        Runner.run_traced ~seed ~profile ~transport ~algo ~adv ~p ~t ~d ()
      in
      Export.with_out jsonl (fun oc ->
          Export.write_trace oc
            ~meta:(result_meta result p t d)
            result.Runner.metrics tr);
      if jsonl <> "-" then
        Format.eprintf "wrote trace to %s@." jsonl;
      match chrome with
      | None -> ()
      | Some path ->
        Export.with_out path (fun oc ->
            Doall_obs.Chrome.write oc ?spans:result.Runner.spans ~p tr);
        if path <> "-" then
          Format.eprintf "wrote Chrome trace to %s@." path
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ algo_arg $ adv_arg $ p_arg $ t_arg $ d_arg $ seed_arg
          $ jsonl_arg $ chrome_arg $ transport_arg)

(* ------------------------------------------------------------------ *)

let obs_diff_cmd =
  let doc =
    "Compare two observability artifacts with per-metric tolerances."
  in
  let a_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A"
           ~doc:"First artifact (JSONL stream or whole-file JSON).")
  in
  let b_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B"
           ~doc:"Second artifact.")
  in
  let tol_arg =
    Arg.(value & opt float 1.5 & info [ "tol" ] ~docv:"RATIO"
           ~doc:"Max allowed ratio between machine-dependent numbers \
                 (wall_s and friends); every other value must match \
                 exactly.")
  in
  let run a b tol =
    match Doall_obs.Diff.compare_files ~tol a b with
    | Error e ->
      Printf.eprintf "doall: obs diff: %s\n" e;
      exit 2
    | Ok [] ->
      Printf.printf "%s and %s agree (machine-dependent values within %gx)\n"
        a b tol
    | Ok findings ->
      List.iter
        (fun f -> Format.printf "%a@." Doall_obs.Diff.pp_finding f)
        findings;
      Printf.printf "%d difference(s) between %s and %s\n"
        (List.length findings) a b;
      exit 1
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ a_arg $ b_arg $ tol_arg)

let obs_cmd =
  let doc = "Work with observability artifacts (snapshots, benches)." in
  Cmd.group (Cmd.info "obs" ~doc) [ obs_diff_cmd ]

let delays_arg =
  Arg.(value & opt (list int) [ 1; 2; 4; 8; 16; 32; 64 ]
       & info [ "delays" ] ~docv:"D1,D2,.." ~doc:"Delay bounds to sweep.")

let sweep_cmd =
  let doc = "Sweep the delay bound and tabulate work/messages." in
  let run algo adv p t delays seed jobs progress check faults_spec transport
      =
    let faults = parse_faults faults_spec in
    let transport = parse_transport transport in
    (* An anonymous spec through the same engine as the registered
       experiments: the context supplies the pool, the memo cache (one d
       requested twice simulates once), and the output sinks. *)
    let e =
      Exp.make
        ~id:(Printf.sprintf "sweep-%s-%s" algo adv)
        ~doc:"ad-hoc delay sweep" ~anchor:"CLI"
        ~axes:
          (Exp.axes ~algos:[ algo ] ~advs:[ adv ]
             ~points:(List.map (fun d -> (p, t, d)) delays)
             ~seeds:[ seed ] ())
        ~tables:[ "main" ]
        (fun ctx ->
          let tbl =
            Table.create
              ~title:(Printf.sprintf "%s vs %s, p=%d t=%d" algo adv p t)
              ~columns:[ "d"; "work"; "messages"; "sigma"; "redundant";
                         "lower-bound"; "W/LB"; "wall_s" ]
          in
          let specs =
            List.map
              (fun d -> Runner.spec ~seed ~transport ~algo ~adv ~p ~t ~d ())
              delays
          in
          let results = Ctx.grid ctx ~check ?faults specs in
          List.iter2
            (fun d (r : Runner.result) ->
              let m = r.Runner.metrics in
              let lb = Bounds.lower_bound ~p ~t ~d in
              Table.add_row tbl
                [
                  Table.cell_int d;
                  Table.cell_int m.Doall_sim.Metrics.work;
                  Table.cell_int m.Doall_sim.Metrics.messages;
                  Table.cell_int m.Doall_sim.Metrics.sigma;
                  Table.cell_int (Doall_sim.Metrics.redundant m);
                  Table.cell_float lb;
                  Table.cell_ratio (float_of_int m.Doall_sim.Metrics.work) lb;
                  Printf.sprintf "%.3f" r.Runner.wall_s;
                ])
            delays results;
          Table.add_note tbl
            "wall_s is per-cell wall-clock (machine-dependent; every other \
             column is deterministic)";
          Ctx.emit ctx ~name:"main" tbl)
    in
    Exp.run ~jobs ~progress e
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ algo_arg $ adv_arg $ p_arg $ t_arg $ delays_arg
          $ seed_arg $ jobs_arg $ progress_arg $ check_arg $ faults_arg
          $ transport_arg)

let compare_cmd =
  let doc = "Run several algorithms on one instance and tabulate them." in
  let algos_arg =
    Arg.(value
         & opt (list string) [ "trivial"; "da-q4"; "paran1"; "padet"; "coord" ]
         & info [ "algos" ] ~docv:"A,B,.." ~doc:"Algorithms to compare.")
  in
  let run algos adv p t d seed jobs progress check faults_spec transport =
    let faults = parse_faults faults_spec in
    let transport = parse_transport transport in
    let e =
      Exp.make ~id:(Printf.sprintf "compare-%s" adv)
        ~doc:"ad-hoc algorithm comparison" ~anchor:"CLI"
        ~axes:
          (Exp.axes ~algos ~advs:[ adv ] ~points:[ (p, t, d) ] ~seeds:[ seed ]
             ())
        ~tables:[ "main" ]
        (fun ctx ->
          let tbl =
            Table.create
              ~title:
                (Printf.sprintf "comparison vs %s, p=%d t=%d d=%d" adv p t d)
              ~columns:
                [ "algorithm"; "work"; "messages"; "effort"; "sigma";
                  "redundant" ]
          in
          let specs =
            List.map
              (fun algo -> Runner.spec ~seed ~transport ~algo ~adv ~p ~t ~d ())
              algos
          in
          let results = Ctx.grid ctx ~check ?faults specs in
          List.iter2
            (fun algo (r : Runner.result) ->
              let m = r.Runner.metrics in
              Table.add_row tbl
                [
                  algo;
                  Table.cell_int m.Doall_sim.Metrics.work;
                  Table.cell_int m.Doall_sim.Metrics.messages;
                  Table.cell_int (Doall_sim.Metrics.effort m);
                  Table.cell_int m.Doall_sim.Metrics.sigma;
                  Table.cell_int (Doall_sim.Metrics.redundant m);
                ])
            algos results;
          Table.add_note tbl
            (Printf.sprintf
               "oblivious baseline p*t = %d; delay-sensitive lower \
                bound = %.0f"
               (p * t)
               (Bounds.lower_bound ~p ~t ~d));
          Ctx.emit ctx ~name:"main" tbl)
    in
    Exp.run ~jobs ~progress e
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ algos_arg $ adv_arg $ p_arg $ t_arg $ d_arg $ seed_arg
          $ jobs_arg $ progress_arg $ check_arg $ faults_arg $ transport_arg)

(* ------------------------------------------------------------------ *)
(* Search-driven worst-case synthesis: evolve a strategy-DSL spec
   against one (algo, p, t, d) cell. Candidates run with the invariant
   oracle on by default, so the search doubles as a bug hunt: a
   violation scores as an instant maximum and fails the command. *)

module Synth = Doall_adversary.Synth
module Strategy = Doall_adversary.Strategy

let synth_cmd =
  let doc =
    "Search for a worst-case adversary strategy (evolutionary, \
     deterministic per seed)."
  in
  let budget_arg =
    Arg.(value & opt int 48 & info [ "budget" ] ~docv:"N"
           ~doc:"Candidate evaluations to spend (each is one full \
                 simulation of the cell).")
  in
  let population_arg =
    Arg.(value & opt int 12 & info [ "population" ] ~docv:"N"
           ~doc:"Population size of the evolutionary search.")
  in
  let fitness_arg =
    Arg.(value & opt string "work" & info [ "fitness" ] ~docv:"F"
           ~doc:"What to maximize: $(b,work), $(b,effort), $(b,sigma), \
                 $(b,cap-hits), or $(b,wall-per-work) (the last is \
                 wall-clock-based and therefore not deterministic).")
  in
  let space_arg =
    Arg.(value & opt (some string) None & info [ "space" ] ~docv:"S"
           ~doc:"Strategy space: $(b,full), $(b,live) or \
                 $(b,quorum-safe); default follows the algorithm's \
                 registered liveness requirement.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write JSONL search progress ('synth-gen' per \
                 generation, 'synth-best' at the end, plus a \
                 best-so-far probe series) to $(docv) ('-' for \
                 stdout).")
  in
  let wall_cap_arg =
    Arg.(value & opt (some float) None & info [ "wall-cap" ] ~docv:"SECONDS"
           ~doc:"Stop the search after $(docv) seconds of wall clock \
                 (finishing the in-flight generation). The reached \
                 generation count becomes machine-dependent; results \
                 up to each generation stay deterministic.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"CI smoke mode: shrink the population to 6 so a tiny \
                 --budget still gets past generation zero.")
  in
  let no_check_arg =
    Arg.(value & flag & info [ "no-check" ]
           ~doc:"Evaluate candidates without the invariant oracle \
                 (faster; forfeits the search's bug-hunting role).")
  in
  let run algo p t d seed budget population fitness space max_time out
      wall_cap quick no_check jobs transport =
    let transport = parse_transport transport in
    let fitness =
      match Synth.fitness_of_string fitness with
      | Ok f -> f
      | Error e -> prerr_endline ("doall: --fitness: " ^ e); exit 2
    in
    let space =
      match space with
      | None -> None
      | Some s -> (
        match Strategy.space_of_string s with
        | Ok sp -> Some sp
        | Error e -> prerr_endline ("doall: --space: " ^ e); exit 2)
    in
    let population = if quick then min population 6 else population in
    let probe = Probe.create () in
    let best_series = Probe.series probe "synth.best_work" in
    let run_search out_oc =
      let on_generation (pr : Synth.progress) =
        Printf.eprintf "gen %-3d evals %-4d best %-10g %s\n%!" pr.Synth.gen
          pr.evals pr.best_score pr.best_spec;
        (* infinity marks an oracle violation; clamp for the int series *)
        let w =
          if Float.is_finite pr.Synth.best_score then
            int_of_float (Float.min pr.Synth.best_score 1e9)
          else 1_000_000_000
        in
        Probe.sample best_series ~time:pr.Synth.gen w;
        Option.iter
          (fun oc ->
            Export.line oc ~kind:"synth-gen"
              Export.Json.
                [
                  ("gen", Int pr.Synth.gen);
                  ("evals", Int pr.evals);
                  ("best_score", Float pr.best_score);
                  ("best_spec", Str pr.best_spec);
                  ("capped", Int pr.capped);
                  ("violations", Int pr.violations);
                ])
          out_oc
      in
      let outcome =
        try
          Worstcase.search ~seed ~population ~fitness ?space ?max_time
            ~transport ?wall_cap_s:wall_cap ~check:(not no_check)
            ~on_generation ~jobs ~algo ~p ~t ~d ~budget ()
        with
        | Failure msg -> prerr_endline ("doall: " ^ msg); exit 2
        | Invalid_argument msg -> prerr_endline ("doall: " ^ msg); exit 2
      in
      let e = outcome.Synth.best_eval in
      Option.iter
        (fun oc ->
          Export.line oc ~kind:"synth-best"
            Export.Json.
              [
                ("algo", Str algo);
                ("p", Int p);
                ("t", Int t);
                ("d", Int d);
                ("seed", Int seed);
                ( "transport",
                  Str (Doall_sim.Config.transport_to_string transport) );
                ("fitness", Str (Synth.fitness_to_string fitness));
                ("spec", Str outcome.Synth.best_spec);
                ("score", Float outcome.Synth.best_score);
                ("work", Int e.Synth.e_work);
                ("messages", Int e.Synth.e_messages);
                ("sigma", Int e.Synth.e_sigma);
                ("completed", Int (if e.Synth.e_completed then 1 else 0));
                ("evals", Int outcome.Synth.evals);
                ("capped", Int outcome.Synth.capped);
                ("violations", Int (List.length outcome.Synth.violations));
              ];
          List.iter
            (fun (kind, fields) -> Export.line oc ~kind fields)
            (Export.snapshot_lines (Probe.snapshot probe)))
        out_oc;
      Printf.printf "best strategy (%s, %d evals, %d capped):\n  %s\n"
        (Synth.fitness_to_string fitness)
        outcome.Synth.evals outcome.Synth.capped outcome.Synth.best_spec;
      Printf.printf
        "  score=%g work=%d messages=%d sigma=%d completed=%b\n"
        outcome.Synth.best_score e.Synth.e_work e.Synth.e_messages
        e.Synth.e_sigma e.Synth.e_completed;
      Printf.printf
        "replay:\n\
        \  doall run --algo %s --strategy '%s' -p %d -t %d -d %d --seed \
         %d%s --check\n"
        algo outcome.Synth.best_spec p t d seed
        (match transport with
        | Doall_sim.Config.Ptp -> ""
        | tr ->
          " --transport " ^ Doall_sim.Config.transport_to_string tr);
      if outcome.Synth.violations <> [] then begin
        Printf.eprintf
          "doall: %d candidate(s) violated the invariant oracle:\n"
          (List.length outcome.Synth.violations);
        List.iter
          (fun (spec, v) -> Printf.eprintf "  %s\n    %s\n" spec v)
          outcome.Synth.violations;
        exit 1
      end
    in
    match out with
    | None -> run_search None
    | Some path -> Export.with_out path (fun oc -> run_search (Some oc))
  in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(const run $ algo_arg $ p_arg $ t_arg $ d_arg $ seed_arg
          $ budget_arg $ population_arg $ fitness_arg $ space_arg
          $ max_time_arg $ out_arg $ wall_cap_arg $ quick_arg $ no_check_arg
          $ jobs_arg $ transport_arg)

(* ------------------------------------------------------------------ *)
(* Fuzz-case replay: one integer seed rebuilds the exact failing run the
   fuzz suite printed (dimensions, strategy, engine streams). *)

let fuzz_cmd =
  let doc = "Replay a fuzz-suite case from its reproducer seed." in
  let replay_arg =
    Arg.(required & opt (some int) None & info [ "replay" ] ~docv:"SEED"
           ~doc:"The reproducer seed printed by the fuzz suite.")
  in
  let label_arg =
    Arg.(value & opt (some string) None & info [ "algo" ] ~docv:"LABEL"
           ~doc:"Replay only this algorithm label (default: all fuzzed \
                 labels).")
  in
  let quorum_arg =
    Arg.(value & flag & info [ "quorum-safe" ]
           ~doc:"Force the quorum-safe case derivation (implied for the \
                 quorum labels).")
  in
  let makers =
    Fuzz_audit.core_makers
    @ [ ("awq-q4", fun () -> Doall_quorum.Algo_awq.make ~q:4 ()) ]
  in
  let quorum_labels = [ "awq-q4" ] in
  let run seed label quorum_flag =
    let labels =
      match label with
      | Some l when List.mem_assoc l makers -> [ l ]
      | Some l ->
        Printf.eprintf "doall: unknown fuzz label %S; known: %s\n" l
          (String.concat ", " (List.map fst makers));
        exit 2
      | None -> Doall_adversary.Fuzz_gen.labels
    in
    let failed = ref false in
    List.iter
      (fun label ->
        let quorum_safe = quorum_flag || List.mem label quorum_labels in
        let case = Doall_adversary.Fuzz_gen.case ~seed ~quorum_safe in
        let { Doall_adversary.Fuzz_gen.p; t; d; transport; strategy } =
          case
        in
        let spec = Strategy.to_spec strategy in
        Printf.printf "%-16s p=%-3d t=%-3d d=%-3d transport=%s strategy:%s\n"
          label p t d
          (Doall_sim.Config.transport_to_string transport)
          spec;
        let adversary = Strategy.into strategy in
        (match
           Fuzz_audit.audit ~transport
             ((List.assoc label makers) ())
             ~p ~t ~d ~adversary ~seed
         with
        | Ok m ->
          Printf.printf "  ok: work=%d messages=%d sigma=%d\n"
            m.Doall_sim.Metrics.work m.Doall_sim.Metrics.messages
            m.Doall_sim.Metrics.sigma
        | Error e ->
          failed := true;
          Printf.printf "  FAIL: %s\n" e);
        (* the same run through the registry, for ad-hoc poking (only
           the labels that name registry algorithms) *)
        match Runner.find_algo label with
        | exception Failure _ -> ()
        | _ ->
          Printf.printf
            "  rerun: doall run --algo %s --adv 'strategy:%s' -p %d -t %d \
             -d %d --seed %d%s --check\n"
            label spec p t d seed
            (match transport with
            | Doall_sim.Config.Ptp -> ""
            | tr ->
              " --transport " ^ Doall_sim.Config.transport_to_string tr))
      labels;
    if !failed then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ replay_arg $ label_arg $ quorum_arg)

(* ------------------------------------------------------------------ *)
(* The experiment registry: the same specs `bench` runs, surfaced on the
   CLI. `list` and `describe` read the declarative metadata; `run`
   executes bodies through the lib/exp engine (pool parallelism, cell
   memo cache, --csv / --jsonl sinks). *)

let exp_ids_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"ID"
           ~doc:"Experiment ids (see $(b,doall exp list)); default all.")

let unknown_exp id =
  Printf.eprintf "doall: unknown experiment %S; known experiments:\n" id;
  List.iter
    (fun e -> Printf.eprintf "  %-5s %s\n" e.Exp.id (Exp.one_liner e))
    (Exp.all ());
  exit 2

let resolve_exps = function
  | [] -> Exp.all ()
  | ids ->
    List.map
      (fun id ->
        match Exp.find id with Some e -> e | None -> unknown_exp id)
      ids

let exp_list_cmd =
  let doc = "List registered experiments with their one-line docs." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-5s %s\n" e.Exp.id (Exp.one_liner e))
      (Exp.all ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let exp_describe_cmd =
  let doc = "Show an experiment's declarative spec (axes, tables, CSVs)." in
  let run ids =
    List.iteri
      (fun i e ->
        if i > 0 then print_newline ();
        print_string (Exp.describe e))
      (resolve_exps ids)
  in
  Cmd.v (Cmd.info "describe" ~doc) Term.(const run $ exp_ids_arg)

let exp_run_cmd =
  let doc = "Run experiments through the declarative engine." in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write every table as $(docv)/<exp>-<table>.csv \
                 (stable names; the directory is created if needed).")
  in
  let jsonl_arg =
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"Append versioned table/row JSONL lines to $(docv) \
                 ('-' for stdout); schema in docs/OBSERVABILITY.md.")
  in
  let run ids jobs csv jsonl progress =
    let es = resolve_exps ids in
    Option.iter
      (fun dir -> try Sys.mkdir dir 0o755 with Sys_error _ -> ())
      csv;
    (* One pool shared by every requested experiment; each gets a fresh
       context (the memo cache is per-experiment by design). *)
    let pool = Doall_sim.Pool.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Doall_sim.Pool.shutdown pool)
      (fun () ->
        let run_all jsonl_oc =
          List.iter
            (fun e ->
              Exp.run ~pool ?csv_dir:csv ?jsonl:jsonl_oc ~progress e;
              print_newline ())
            es
        in
        match jsonl with
        | None -> run_all None
        | Some path -> Export.with_out path (fun oc -> run_all (Some oc)))
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ exp_ids_arg $ jobs_arg $ csv_arg $ jsonl_arg
          $ progress_arg)

let exp_cmd =
  let doc = "Inspect and run the declarative experiment registry." in
  Cmd.group (Cmd.info "exp" ~doc)
    [ exp_list_cmd; exp_describe_cmd; exp_run_cmd ]

let lemma32_cmd =
  let doc = "Numerically verify Lemma 3.2 (Appendix A) over a range of u." in
  let umax_arg =
    Arg.(value & opt int 2000 & info [ "u-max" ] ~docv:"U"
           ~doc:"Largest u to scan.")
  in
  let run u_max =
    match Lemma32.first_counterexample ~u_max with
    | None ->
      Printf.printf
        "Lemma 3.2 verified: for all 2 <= u <= %d and 1 <= d <= sqrt u,\n\
        \  C(u-d, u/(d+1)) / C(u, u/(d+1)) >= 1/4 and the proof's sandwich \
         holds.\n"
        u_max;
      List.iter
        (fun (u, d) ->
          Printf.printf "  sample: u=%-6d d=%-4d ratio=%.4f\n" u d
            (Lemma32.ratio ~u ~d))
        [ (100, 1); (100, 10); (10_000, 100); (u_max, 1) ]
    | Some (u, d) ->
      Printf.printf "COUNTEREXAMPLE: u=%d d=%d ratio=%.6f\n" u d
        (Lemma32.ratio ~u ~d);
      exit 1
  in
  Cmd.v (Cmd.info "lemma32" ~doc) Term.(const run $ umax_arg)

let contention_cmd =
  let doc = "Search for a low-contention permutation list and report it." in
  let n_arg =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N"
           ~doc:"Permutation size (2..8 for certified search).")
  in
  let run n seed =
    let rng = Doall_sim.Rng.create seed in
    let cert = Doall_perms.Search.certified ~rng n in
    Printf.printf "n=%d  Cont(psi)=%d  bound 3nH_n=%.2f\n" n
      cert.Doall_perms.Search.contention cert.Doall_perms.Search.bound;
    List.iteri
      (fun i pi ->
        Format.printf "  pi_%d = %a@." i Doall_perms.Perm.pp pi)
      cert.Doall_perms.Search.list;
    (* exact d-contention profile: how the Lemma 6.1 work bound relaxes
       as the delay budget grows *)
    let profile =
      Array.init (n + 1) (fun d ->
          if d = 0 then 0
          else
            Doall_perms.Contention.d_contention_exact ~d
              cert.Doall_perms.Search.list)
    in
    print_endline "exact (d)-Cont profile (the PA work bound per Lemma 6.1):";
    for d = 1 to n do
      Printf.printf "  d=%-2d  %d\n" d profile.(d)
    done;
    let points =
      List.init n (fun i ->
          (float_of_int (i + 1), float_of_int profile.(i + 1)))
    in
    print_string
      (Plot.render ~width:40 ~height:10
         [ { Plot.label = "(d)-Cont(psi)"; points } ])
  in
  Cmd.v (Cmd.info "contention" ~doc) Term.(const run $ n_arg $ seed_arg)

let main =
  let doc = "message-delay-sensitive Do-All algorithms (Kowalski-Shvartsman)" in
  Cmd.group (Cmd.info "doall" ~doc)
    [ list_cmd; run_cmd; trace_cmd; obs_cmd; sweep_cmd; compare_cmd;
      synth_cmd; fuzz_cmd; exp_cmd; contention_cmd; lemma32_cmd ]

let () =
  (* Multicore grids stall on stop-the-world minor collections with the
     default minor heap; match the bench harness's 2M-word setting so
     --jobs scales (docs/PERFORMANCE.md has the calibration). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2 * 1024 * 1024 };
  Doall_quorum.Register.install ();
  Catalog.install ();
  exit (Cmd.eval main)
