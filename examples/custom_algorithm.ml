(* Custom algorithm tutorial: implement Doall_sim.Algorithm.S yourself.

   Run with:  dune exec examples/custom_algorithm.exe

   The library's extension point is the Algorithm.S signature: provide
   per-processor state, a receive that merges knowledge, and a step that
   performs at most one task and submits at most one broadcast. This file
   writes the most obvious algorithm from scratch — "greedy": always
   perform the lowest task you don't know to be done, broadcast your
   knowledge every step — wires it into the engine, and then measures why
   the paper spends a whole section (4) on schedules.

   Greedy is exactly PA with every processor using the identity
   permutation: the worst possible list, with contention p*n. Every
   processor races down the same order, so whenever the adversary delays
   news, they all redo the same prefix. *)

open Doall_sim
open Doall_core
open Doall_analysis

(* ------------------------------------------------------------------ *)
(* 1. The custom algorithm: 40 lines, no magic.                        *)

module Greedy : Algorithm.S = struct
  let name = "greedy"

  type state = { know : Bitset.t; mutable halted : bool }
  type msg = Bitset.t

  (* Config deliberately lacks the delay bound d: you cannot cheat. *)
  let init (cfg : Config.t) ~pid:_ =
    { know = Bitset.create cfg.Config.t; halted = false }

  (* copy must be deep: the omniscient adversary clones states. *)
  let copy st = { st with know = Bitset.copy st.know }

  (* receive must be monotone: merge, never forget. *)
  let receive st ~src:_ msg = Bitset.union_into ~dst:st.know msg

  (* receive is a pure union that never reads src, so we may declare it
     merge-homomorphic: on constant-delay runs the engine folds all
     broadcasts of a step into one digest and delivers it once per
     receiver instead of p - 1 times. Declare None if unsure — it is
     only ever a performance hint, never a correctness requirement. *)
  let merge_homomorphic =
    Some
      (fun msgs ->
        let acc = Bitset.copy msgs.(0) in
        for i = 1 to Array.length msgs - 1 do
          Bitset.union_into ~dst:acc msgs.(i)
        done;
        acc)

  let is_done st = Bitset.is_full st.know
  let done_tasks st = st.know

  let step st =
    if st.halted then Algorithm.nothing
    else if is_done st then begin
      st.halted <- true;
      (* halting is only legal once you KNOW everything is done
         (Proposition 2.1) - the engine asserts it. *)
      Algorithm.result ~halt:true ()
    end
    else
      match Bitset.first_missing st.know with
      | None -> Algorithm.nothing
      | Some z ->
        Bitset.set st.know z;
        Algorithm.result ~performed:z ~broadcast:(Bitset.copy st.know) ()
end

(* ------------------------------------------------------------------ *)
(* 2. Run it: the engine neither knows nor cares that it's custom.     *)

let () =
  let p = 24 and t = 96 in
  Printf.printf
    "A hand-written algorithm vs the paper's schedules, p=%d t=%d:\n\n" p t;
  let tbl =
    Table.create ~title:"greedy (identity schedule) vs padet vs da-q4"
      ~columns:[ "d"; "greedy W"; "padet W"; "da-q4 W"; "greedy/padet" ]
  in
  List.iter
    (fun d ->
      let adversary () =
        (Runner.find_adv "max-delay").Runner.instantiate ~p ~t ~d
      in
      let cfg = Config.make ~seed:3 ~p ~t () in
      let greedy =
        Engine.run_packed (module Greedy) cfg ~d ~adversary:(adversary ()) ()
      in
      let padet =
        (Runner.run ~seed:3 ~algo:"padet" ~adv:"max-delay" ~p ~t ~d ())
          .Runner.metrics
      in
      let da =
        (Runner.run ~seed:3 ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d ())
          .Runner.metrics
      in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_int greedy.Metrics.work;
          Table.cell_int padet.Metrics.work;
          Table.cell_int da.Metrics.work;
          Table.cell_ratio
            (float_of_int greedy.Metrics.work)
            (float_of_int padet.Metrics.work);
        ])
    [ 1; 4; 16; 48 ];
  Table.add_note tbl
    "greedy = PA with the identity list: contention p*n, so delayed news \
     makes everyone redo the same prefix; Section 4's low-contention \
     schedules are the entire difference";
  Table.print tbl;
  print_endline
    "\nTo make a custom algorithm available by name (CLI, benches), call\n\
     Runner.register_algorithm with a spec - see Doall_quorum.Register\n\
     for a complete template."
