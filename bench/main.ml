(* The experiment harness driver. The experiments themselves (one per
   theorem/figure of the paper — see EXPERIMENTS.md) are declarative
   specs in lib/exp/catalog.ml, shared with `doall exp`; this executable
   only dispatches ids and keeps the wall-clock work that has no place
   in the registry: the perf grid behind BENCH_N.json, the Bechamel
   microbenchmarks, and the probe-overhead measurement.

   Run all experiments with `dune exec bench/main.exe`, a subset with
   e.g. `dune exec bench/main.exe -- e2 e6 fig1`, or `micro` / `perf` /
   `obs` for the performance targets. `--list` shows every registered
   experiment with its one-line doc. *)

open Doall_sim
open Doall_core
open Doall_perms
open Doall_analysis
module Exp = Doall_exp.Exp
module Catalog = Doall_exp.Catalog
module Json = Doall_obs.Export.Json
module Progress = Doall_obs.Progress

(* Parallelism for the grid-shaped experiments (seed averaging, e17's
   bound-fitting sweep, the perf grid). One pool for the whole process,
   sized by --jobs; Pool.create ~jobs:1 degrades to inline execution. *)
let jobs = ref (Pool.default_jobs ())
let pool_ref : Pool.t option ref = ref None

let shared_pool () =
  match !pool_ref with
  | Some pool -> pool
  | None ->
    let pool = Pool.create ~jobs:!jobs () in
    pool_ref := Some pool;
    pool

(* Live grid progress for the perf arms: Progress only renders on a tty,
   so batch/CI output is untouched. [f] receives an [on_cell] callback
   for Runner.run_grid. *)
let with_progress ~label ~total f =
  let pr = Progress.create ~total ~label () in
  Fun.protect
    ~finally:(fun () -> Progress.finish pr)
    (fun () ->
      f (fun ~finished:_ ~total:_ (_ : Runner.result) -> Progress.tick pr))

(* With --csv DIR on the command line, every table is also written as a
   CSV artifact for downstream analysis, under a stable name. *)
let csv_dir : string option ref = ref None

let emit_named name tbl =
  Table.print tbl;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    Table.write_csv tbl ~path:(Filename.concat dir (name ^ ".csv"))

(* ------------------------------------------------------------------ *)
(* perf: the wall-clock grid behind BENCH_N.json (see docs/PERFORMANCE.md).

   Scenarios are broadcast-heavy on purpose: PA-family algorithms
   broadcast on every performing step, so these runs live in the
   delivery + union_into hot path the calendar ring and the word-packed
   bitsets rearchitected. *)

let perf_scenarios ~quick =
  if quick then
    [ ("paran1", "max-delay", 64, 512, 8); ("da-q4", "max-delay", 64, 512, 8) ]
  else
    [
      ("paran1", "max-delay", 256, 4096, 16);
      ("padet", "max-delay", 256, 4096, 16);
      ("da-q4", "max-delay", 256, 4096, 16);
      ("paran1", "uniform-delay", 128, 2048, 32);
    ]

(* Wall-clock of the identical scenarios (seed 42) measured on the
   pre-rewrite engine — binary heap delivery, byte-packed bitsets,
   O(p)-scan scheduling — at commit b5fef56, in this repo's reference
   container, 2026-08-06. The perf run reports speedups against these. *)
let perf_seed_baseline =
  [
    ("paran1/max-delay/p256/t4096/d16", 17.351);
    ("padet/max-delay/p256/t4096/d16", 16.220);
    ("da-q4/max-delay/p256/t4096/d16", 0.159);
    ("paran1/uniform-delay/p128/t2048/d32", 1.843);
  ]

(* The end-to-end parallel grid: every scenario x seeds 1..6, fanned
   across Runner.run_grid at several domain counts. Per-run metrics are
   asserted byte-identical across all arms (the pool's determinism
   contract); the wall-clock ratio against the jobs=1 arm is the
   speedup row of BENCH_2.json. *)
let grid_scenarios ~quick =
  if quick then
    [ ("paran1", "max-delay", 64, 512, 8); ("da-q4", "max-delay", 64, 512, 8) ]
  else
    [
      ("paran1", "max-delay", 128, 2048, 16);
      ("padet", "max-delay", 128, 2048, 16);
      ("da-q4", "max-delay", 256, 4096, 16);
      ("paran1", "uniform-delay", 128, 2048, 32);
    ]

let grid_seeds ~quick = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6 ]

(* Compare the deterministic payload only: [wall_s] is machine noise and
   [obs] is None/None here, but keying on the fields keeps this honest if
   more nondeterministic ones appear. *)
let same_metrics (a : Runner.result list) (b : Runner.result list) =
  let key (r : Runner.result) =
    (r.Runner.metrics, r.Runner.algo, r.Runner.adv, r.Runner.seed)
  in
  List.length a = List.length b
  && List.for_all2 (fun x y -> key x = key y) a b

let perf ~quick ~out () =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "perf: wall-clock grid%s (seed 42)"
           (if quick then " [--quick]" else ""))
      ~columns:[ "scenario"; "W"; "M"; "wall_s"; "seed_s"; "speedup" ]
  in
  let results =
    List.map
      (fun (algo, adv, p, t, d) ->
        let key = Printf.sprintf "%s/%s/p%d/t%d/d%d" algo adv p t d in
        let t0 = Unix.gettimeofday () in
        (* run_spec reports a capped run as metrics.completed = false
           instead of raising Run_timeout: one slow cell becomes an
           annotated row, not an aborted grid *)
        let m =
          (Runner.run_spec (Runner.spec ~seed:42 ~algo ~adv ~p ~t ~d ()))
            .Runner.metrics
        in
        let wall = Unix.gettimeofday () -. t0 in
        let seed_s = List.assoc_opt key perf_seed_baseline in
        Table.add_row tbl
          [
            (if m.Metrics.completed then key else key ^ " (capped)");
            Table.cell_int m.Metrics.work;
            Table.cell_int m.Metrics.messages;
            Printf.sprintf "%.3f" wall;
            (match seed_s with Some s -> Printf.sprintf "%.3f" s | None -> "-");
            (match seed_s with
             | Some s -> Printf.sprintf "%.1fx" (s /. wall)
             | None -> "-");
          ];
        (key, algo, adv, p, t, d, m, wall, seed_s))
      (perf_scenarios ~quick)
  in
  Table.add_note tbl
    "seed_s: same scenario on the pre-calendar-ring/pre-word-packed engine \
     (commit b5fef56); wall-clock is machine-dependent, the W/M columns are \
     not (golden-pinned)";
  emit_named "perf-scenarios" tbl;
  (* -- the parallel grid -- *)
  let specs =
    List.concat_map
      (fun (algo, adv, p, t, d) ->
        List.map
          (fun seed -> Runner.spec ~seed ~algo ~adv ~p ~t ~d ())
          (grid_seeds ~quick))
      (grid_scenarios ~quick)
  in
  let arms =
    List.sort_uniq compare
      (if quick then [ 1; !jobs ] else [ 1; 2; 4; !jobs ])
  in
  (* Best-of-N wall clock per arm, with the major heap compacted before
     each round: the container's co-tenant load and leftover major-heap
     state from the scenario table above otherwise dominate the
     between-arm differences. Metrics are taken from the last round and
     asserted identical across arms below. *)
  let rounds = if quick then 1 else 2 in
  let measured =
    List.map
      (fun k ->
        let best = ref infinity and last = ref [] in
        for round = 1 to rounds do
          Gc.compact ();
          let t0 = Unix.gettimeofday () in
          let rs =
            with_progress
              ~label:(Printf.sprintf "perf grid j%d round %d/%d" k round rounds)
              ~total:(List.length specs)
              (fun on_cell -> Runner.run_grid ~jobs:k ~on_cell specs)
          in
          let wall = Unix.gettimeofday () -. t0 in
          if wall < !best then best := wall;
          last := rs
        done;
        (k, !best, !last))
      arms
  in
  let _, wall1, base_results =
    List.find (fun (k, _, _) -> k = 1) measured
  in
  let grid_tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "perf: end-to-end parallel grid, %d runs (%d scenarios x %d seeds)"
           (List.length specs)
           (List.length (grid_scenarios ~quick))
           (List.length (grid_seeds ~quick)))
      ~columns:[ "jobs"; "wall_s"; "speedup vs jobs=1"; "metrics identical" ]
  in
  let arm_rows =
    List.map
      (fun (k, wall, rs) ->
        let identical = same_metrics rs base_results in
        Table.add_row grid_tbl
          [
            Table.cell_int k;
            Printf.sprintf "%.3f" wall;
            Printf.sprintf "%.2fx" (wall1 /. wall);
            (if identical then "yes" else "NO");
          ];
        (k, wall, identical))
      measured
  in
  Table.add_note grid_tbl
    (Printf.sprintf
       "Runner.run_grid over a %d-domain pool (--jobs, default \
        recommended_domain_count=%d); wall_s is the min of %d round(s), \
        major heap compacted before each. Per-run metrics are \
        byte-identical across every arm by the pool's determinism \
        contract, so only wall-clock varies; speedup is capped by the \
        host's effective cores - see docs/PERFORMANCE.md for this \
        container's calibration."
       !jobs
       (Pool.default_jobs ()) rounds);
  emit_named "perf-grid" grid_tbl;
  List.iter
    (fun (_, _, identical) ->
      if not identical then begin
        prerr_endline
          "FATAL: parallel grid metrics differ from the sequential arm";
        exit 1
      end)
    arm_rows;
  let _, best_wall, _ =
    List.fold_left
      (fun ((_, bw, _) as best) ((_, w, _) as arm) ->
        if w < bw then arm else best)
      (List.hd arm_rows) (List.tl arm_rows)
  in
  let scenario_json (key, algo, adv, p, t, d, (m : Metrics.t), wall, seed_s) =
    Json.Obj
      ([
         ("scenario", Json.Str key);
         ("algo", Json.Str algo);
         ("adversary", Json.Str adv);
         ("p", Json.Int p);
         ("t", Json.Int t);
         ("d", Json.Int d);
         ("work", Json.Int m.Metrics.work);
         ("messages", Json.Int m.Metrics.messages);
         ("sigma", Json.Int m.Metrics.sigma);
         ("wall_s", Json.Float wall);
       ]
      @
      match seed_s with
      | Some s ->
        [
          ("seed_wall_s", Json.Float s);
          ("speedup_vs_seed", Json.Float (s /. wall));
        ]
      | None -> [])
  in
  let arm_json (k, wall, identical) =
    Json.Obj
      [
        ("jobs", Json.Int k);
        ("wall_s", Json.Float wall);
        ("speedup_vs_jobs1", Json.Float (wall1 /. wall));
        ("metrics_identical", Json.Bool identical);
      ]
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Int 2);
        ( "description",
          Json.Str
            "wall-clock grid over broadcast-heavy (algo x adversary x p,t,d) \
             scenarios, plus the end-to-end parallel-grid speedup of the \
             domain-pool runner; second point of the perf trajectory" );
        ("quick", Json.Bool quick);
        ( "baseline",
          Json.Obj
            [
              ("commit", Json.Str "b5fef56");
              ( "engine",
                Json.Str
                  "binary-heap delivery, byte-packed bitsets, O(p) tick scans"
              );
              ("measured", Json.Str "2026-08-06");
              ( "wall_s",
                Json.Obj
                  (List.map
                     (fun (key, s) -> (key, Json.Float s))
                     perf_seed_baseline) );
            ] );
        ("results", Json.List (List.map scenario_json results));
        ( "parallel_grid",
          Json.Obj
            [
              ("runs", Json.Int (List.length specs));
              ("scenarios", Json.Int (List.length (grid_scenarios ~quick)));
              ("seeds", Json.Int (List.length (grid_seeds ~quick)));
              ("recommended_domain_count", Json.Int (Pool.default_jobs ()));
              ("minor_heap_words", Json.Int (Gc.get ()).Gc.minor_heap_size);
              ("rounds", Json.Int rounds);
              ("arms", Json.List (List.map arm_json arm_rows));
              ("best_speedup", Json.Float (wall1 /. best_wall));
              ( "note",
                Json.Str
                  "per-run metrics byte-identical across all arms (asserted \
                   at generation time); wall-clock speedup is bounded by the \
                   host's effective core count - this container exposes 2 \
                   vCPUs with a measured two-process ceiling of ~1.5x, see \
                   docs/PERFORMANCE.md; 4-core CI-class hardware is the >=2x \
                   target" );
            ] );
      ]
  in
  let oc = open_out out in
  Json.pp_to_channel oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks.                                           *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let bitset_union =
    let a = Bitset.create 4096 and b = Bitset.create 4096 in
    for i = 0 to 4095 do
      if i mod 3 = 0 then Bitset.set a i;
      if i mod 5 = 0 then Bitset.set b i
    done;
    Test.make ~name:"bitset-union-4096"
      (Staged.stage (fun () ->
           let dst = Bitset.copy a in
           Bitset.union_into ~dst b))
  in
  let bitset_union_absorbed =
    (* The engine's steady state: knowledge is monotone, so most incoming
       sets are already contained in the destination and union_into is a
       read-only sweep. *)
    let dst = Bitset.create 4096 and src = Bitset.create 4096 in
    for i = 0 to 4095 do
      if i mod 2 = 0 then Bitset.set dst i;
      if i mod 4 = 0 then Bitset.set src i
    done;
    Bitset.union_into ~dst src;
    Test.make ~name:"bitset-union-absorbed-4096"
      (Staged.stage (fun () -> Bitset.union_into ~dst src))
  in
  let bitset_first_missing =
    let b = Bitset.create 4096 in
    for i = 0 to 4000 do
      Bitset.set b i
    done;
    Test.make ~name:"bitset-first-missing-4096"
      (Staged.stage (fun () -> ignore (Bitset.first_missing b)))
  in
  let bitset_iter_set =
    let b = Bitset.create 4096 in
    for i = 0 to 4095 do
      if i mod 7 = 0 then Bitset.set b i
    done;
    Test.make ~name:"bitset-iter-set-4096"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Bitset.iter_set b (fun i -> acc := !acc + i);
           ignore !acc))
  in
  (* One epoch of delta traffic: 64 senders each flush a small tracked
     delta of a 4096-bit knowledge set. The digest path folds them once
     per epoch (union-many); the per-record path applies each delta at
     every receiver (seq-apply measures one receiver's share, on the
     steady-state absorbed sweep like bitset-union-absorbed above). *)
  let digest_deltas =
    Array.init 64 (fun s ->
        let b = Bitset.create 4096 in
        let tk = Bitset.tracker b in
        for i = 0 to 7 do
          Bitset.set_tracked b tk (((s * 131) + (i * 63)) mod 4096)
        done;
        Bitset.delta_flush b tk)
  in
  let digest_union_many =
    Test.make ~name:"digest-union-many-64x8w"
      (Staged.stage (fun () -> ignore (Bitset.union_many digest_deltas)))
  in
  let digest_seq_apply =
    let dst = Bitset.create 4096 in
    let tk = Bitset.tracker dst in
    Test.make ~name:"digest-seq-apply-64x8w"
      (Staged.stage (fun () ->
           Array.iter
             (fun dl -> Bitset.apply_delta_tracked ~dst tk dl)
             digest_deltas))
  in
  (* Steady-state delivery: one "tick" = 63 sends into the future plus a
     drain of what is due now, mimicking a broadcast to p-1 = 63 peers.
     The ring and heap variants run identical traffic. *)
  let equeue_bench name q =
    let now = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr now;
           for i = 0 to 62 do
             Event_queue.add q ~time:(!now + 1 + (i mod 8)) i
           done;
           Event_queue.drain_due q ~now:!now (fun _ -> ())))
  in
  let equeue_ring =
    equeue_bench "equeue-ring-tick-63send-d8" (Event_queue.create ~horizon:8 ())
  in
  let equeue_heap =
    equeue_bench "equeue-heap-tick-63send-d8" (Event_queue.create ())
  in
  let dlrm =
    let rng = Rng.create 1 in
    let pi = Perm.random rng 1024 in
    Test.make ~name:"d-lrm-1024"
      (Staged.stage (fun () -> ignore (Lrm.d_lrm ~d:8 pi)))
  in
  let cont =
    let rng = Rng.create 2 in
    let psi = Gen.random_list ~rng ~n:64 ~count:64 in
    let rho = Perm.random rng 64 in
    Test.make ~name:"contention-wrt-64x64"
      (Staged.stage (fun () -> ignore (Contention.contention_wrt psi ~rho)))
  in
  let tree_marks =
    Test.make ~name:"progress-tree-marks-q4-1e3"
      (Staged.stage (fun () ->
           ignore
             (Progress_tree.initial_marks
                (Progress_tree.shape ~q:4 ~jobs:1000))))
  in
  let engine_run =
    Test.make ~name:"engine-paran1-p16-t64"
      (Staged.stage (fun () ->
           let cfg = Config.make ~seed:7 ~p:16 ~t:64 () in
           ignore
             (Engine.run_packed (Algo_pa.make_ran1 ()) cfg ~d:4
                ~adversary:Adversary.fair ())))
  in
  let engine_run_probed =
    (* The same cell as engine-paran1-p16-t64 with live probes attached:
       the pair brackets the instrumentation overhead at micro scale
       (the `obs` bench id measures the paper-scale cell). *)
    Test.make ~name:"engine-paran1-p16-t64-probed"
      (Staged.stage (fun () ->
           let cfg = Config.make ~seed:7 ~p:16 ~t:64 () in
           let probe = Probe.create () in
           ignore
             (Engine.run_packed (Algo_pa.make_ran1 ()) cfg ~d:4
                ~adversary:Adversary.fair ~probe ())))
  in
  let engine_da =
    Test.make ~name:"engine-da-q4-p16-t64"
      (Staged.stage (fun () ->
           let cfg = Config.make ~seed:7 ~p:16 ~t:64 () in
           ignore
             (Engine.run_packed (Algo_da.make ~q:4 ()) cfg ~d:4
                ~adversary:Adversary.fair ())))
  in
  let rng_bench =
    let rng = Rng.create 3 in
    Test.make ~name:"rng-int"
      (Staged.stage (fun () -> ignore (Rng.int rng 1000)))
  in
  let pool_grid =
    (* Grid dispatch through the reusable pool: measures the pool's
       per-batch overhead (queueing, condition signalling, slot
       collection) on top of the 8 simulation runs themselves. *)
    let pool = shared_pool () in
    let specs =
      Runner.grid
        ~seeds:[ 1; 2; 3; 4 ]
        ~algos:[ "paran1"; "da-q4" ]
        ~advs:[ "fair" ]
        ~points:[ (16, 64, 4) ]
        ()
    in
    Test.make
      ~name:(Printf.sprintf "pool-grid-8runs-j%d" (Pool.jobs pool))
      (Staged.stage (fun () -> ignore (Runner.run_grid ~pool specs)))
  in
  let tests =
    Test.make_grouped ~name:"doall"
      [
        bitset_union;
        bitset_union_absorbed;
        bitset_first_missing;
        bitset_iter_set;
        digest_union_many;
        digest_seq_apply;
        equeue_ring;
        equeue_heap;
        dlrm;
        cont;
        tree_marks;
        engine_run;
        engine_run_probed;
        engine_da;
        rng_bench;
        pool_grid;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  print_endline "== microbenchmarks (ns per run, OLS on monotonic clock) ==";
  Hashtbl.iter
    (fun _label per_test ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %14.1f ns\n" name est
          | Some ests ->
            Printf.printf "  %-36s %s\n" name
              (String.concat ", " (List.map (Printf.sprintf "%.1f") ests))
          | None -> Printf.printf "  %-36s (no estimate)\n" name)
        per_test)
    results

(* ------------------------------------------------------------------ *)
(* Probe overhead: the "zero-cost when disabled, cheap when enabled"
   claim of lib/obs, measured on the broadcast-heavy paper-scale cell
   (the same paran1/max-delay scenario the perf table tracks). The
   measured ratio is recorded in docs/OBSERVABILITY.md; target < 5%. *)

let obs_overhead ~quick ~profile () =
  let p, t, d = if quick then (64, 512, 8) else (256, 4096, 16) in
  let run_cell ?probe ?spans () =
    let adversary =
      (Runner.find_adv "max-delay").Runner.instantiate ~p ~t ~d
    in
    let cfg = Config.make ~seed:42 ~p ~t () in
    Engine.run_packed (Algo_pa.make_ran1 ()) cfg ~d ~adversary ?probe ?spans ()
  in
  let timed ?probe ?spans () =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let m = run_cell ?probe ?spans () in
    (Unix.gettimeofday () -. t0, m)
  in
  (* This cell runs for seconds, so best-of-N interleaved wall clock
     beats a sampling harness here: the min discards co-tenant noise,
     and alternating the arms exposes both to the same machine state.
     (Bechamel covers the micro scale: engine-paran1-p16-t64[-probed].) *)
  let rounds = if quick then 7 else 4 in
  if profile then begin
    (* --profile: the engine self-profiler's own cost, same protocol.
       Unlike the report-only probe arm this one is a gate: CI fails if
       profiling costs >= 5% or perturbs the metrics at all. *)
    let off_best = ref infinity and on_best = ref infinity in
    let off_m = ref None and on_m = ref None in
    let last_sp = ref None in
    ignore (run_cell ()) (* warm up code paths and the major heap *);
    for _ = 1 to rounds do
      let w, m = timed () in
      if w < !off_best then off_best := w;
      off_m := Some m;
      let sp = Span.create () in
      let w, m = timed ~spans:sp () in
      if w < !on_best then on_best := w;
      on_m := Some m;
      last_sp := Some (Span.snapshot sp)
    done;
    let overhead_pct = ((!on_best /. !off_best) -. 1.) *. 100. in
    (* The <5% contract is stated on the paper-scale cell, whose steps
       run ~25µs each; the --quick cell's ~1µs steps make the clock
       reads themselves the dominant cost, so quick mode only smokes
       against a catastrophic-regression ceiling. *)
    let gate_pct = if quick then 50.0 else 5.0 in
    Printf.printf "== span overhead: paran1/max-delay p=%d t=%d d=%d ==\n" p t
      d;
    Printf.printf "  spans-off  %10.3f ms/run (best of %d)\n"
      (!off_best *. 1e3) rounds;
    Printf.printf "  spans-on   %10.3f ms/run (best of %d)\n"
      (!on_best *. 1e3) rounds;
    Printf.printf "  overhead   %+.2f%% (gate < %.0f%%, docs/OBSERVABILITY.md)\n"
      overhead_pct gate_pct;
    (match !last_sp with
     | None -> ()
     | Some sp ->
       Printf.printf "  phase breakdown (last profiled run):\n";
       List.iter
         (fun (name, (total, count)) ->
           Printf.printf "    %-12s %10.3f ms  x%d\n" name (total *. 1e3)
             count)
         sp);
    if !off_m <> !on_m then begin
      prerr_endline "FATAL: metrics differ between spans-on and spans-off";
      exit 1
    end;
    print_string "  metrics identical across arms: yes\n";
    if overhead_pct >= gate_pct then begin
      Printf.eprintf "FATAL: span overhead %+.2f%% exceeds the %.0f%% gate\n"
        overhead_pct gate_pct;
      exit 1
    end
  end
  else begin
    let off_best = ref infinity and on_best = ref infinity in
    let off_m = ref None and on_m = ref None in
    ignore (run_cell ()) (* warm up code paths and the major heap *);
    for _ = 1 to rounds do
      let w, m = timed () in
      if w < !off_best then off_best := w;
      off_m := Some m;
      let w, m = timed ~probe:(Probe.create ()) () in
      if w < !on_best then on_best := w;
      on_m := Some m
    done;
    if !off_m <> !on_m then begin
      prerr_endline "FATAL: metrics differ between probe-on and probe-off";
      exit 1
    end;
    Printf.printf "== probe overhead: paran1/max-delay p=%d t=%d d=%d ==\n" p t
      d;
    Printf.printf "  probe-off  %10.3f ms/run (best of %d)\n"
      (!off_best *. 1e3) rounds;
    Printf.printf "  probe-on   %10.3f ms/run (best of %d)\n"
      (!on_best *. 1e3) rounds;
    Printf.printf "  overhead   %+.2f%% (target < 5%%, docs/OBSERVABILITY.md)\n"
      (((!on_best /. !off_best) -. 1.) *. 100.);
    print_string "  metrics identical across arms: yes\n"
  end

(* ------------------------------------------------------------------ *)
(* xl: the scale-wall arm behind BENCH_3.json (docs/PERFORMANCE.md,
   "xl methodology").

   Two cell families sit beyond what the per-destination delivery
   pipeline could reach: p=16384 fleets, where every broadcast used to
   cost p-1 calendar-ring insertions and p-1 payload copies, and t=1e6
   task sets, where every knowledge snapshot used to copy ~16k words.
   The shared-broadcast stream plus delta payloads collapse both. A
   third arm re-runs the BENCH_1 headline cells and requires the
   broadcast-heavy PA ones to have gained >= 1.5x at unchanged
   golden-pinned metrics. *)

let vm_hwm_kb () =
  (* Peak resident set of this process (kB), from /proc/self/status.
     A high-water mark: cumulative over the process, so per-cell values
     only bound the cell run smallest-first (see docs/PERFORMANCE.md). *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          (* "VmHWM:\t  123456 kB" — take the first numeric field *)
          String.sub line 6 (String.length line - 6)
          |> String.split_on_char ' '
          |> List.concat_map (String.split_on_char '\t')
          |> List.find_map int_of_string_opt
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in ic) scan

(* Ordered smallest-memory-first so the cumulative VmHWM samples stay
   attributable (each cell's reading is an upper bound set by the
   largest cell so far). *)
let xl_scenarios ~quick =
  if quick then
    [
      ("da-q4", "max-delay", 256, 131072, 8);
      ("paran1", "max-delay", 2048, 1024, 8);
    ]
  else
    [
      ("paran1", "max-delay", 256, 1_000_000, 16);
      ("da-q4", "max-delay", 256, 1_000_000, 16);
      ("da-q4", "max-delay", 16384, 16384, 8);
      ("paran1", "max-delay", 16384, 2048, 8);
    ]

(* BENCH_1's headline cells: recorded wall-clock (same reference
   container, 2026-08-06) and golden-pinned metrics. The >= 1.5x gate
   applies to the broadcast-heavy PA cells; da-q4 finishes in ~0.1s
   where wall-clock is mostly noise, so it is reported unGated. *)
let xl_speedup_cells =
  [
    ("paran1", 3.592, (20224, 5091840, 78), true);
    ("padet", 4.624, (20224, 5091840, 78), true);
    ("da-q4", 0.094, (8960, 130560, 34), false);
  ]

(* Per-cell BENCH_3-engine reference walls (stream + delta wire, before
   epoch-digest delivery; same reference container, 2026-08-08) and
   golden-pinned metrics, keyed like xl_scenarios. Full cells from
   BENCH_3.json; quick cells measured on the BENCH_3 engine at the same
   commit. [gate] is the required wall-clock ratio: the regression gate
   on --quick cells fails CI when a cell runs > 1.5x SLOWER than the
   reference (ratio 1/1.5), and the paran1/t=1e6 headline cell must run
   >= 3x FASTER (the PR's acceptance criterion); None = report-only. *)
let xl_bench3_reference =
  [
    ("paran1/max-delay/p256/t1000000/d16", 455.555, (3007744, 766971405, 11748), Some 3.0);
    ("da-q4/max-delay/p256/t1000000/d16", 20.265, (1005056, 130560, 3925), None);
    ("da-q4/max-delay/p16384/t16384/d8", 106.715, (245760, 1878933504, 14), None);
    ("paran1/max-delay/p16384/t2048/d8", 60.296, (147456, 2415214626, 8), None);
    ("da-q4/max-delay/p256/t131072/d8", 0.840, (133888, 130560, 522), Some (1.0 /. 1.5));
    ("paran1/max-delay/p2048/t1024/d8", 0.845, (22528, 46102534, 10), Some (1.0 /. 1.5));
  ]

(* The engine phase totals as a compact share string for table cells:
   "deliver 34% algo_step 28% …", zero-count phases omitted. *)
let phases_cell = function
  | None -> "-"
  | Some sp ->
    let total = Span.total sp in
    if total <= 0.0 then "-"
    else
      String.concat " "
        (List.filter_map
           (fun (name, (t, count)) ->
             if count = 0 then None
             else Some (Printf.sprintf "%s %.0f%%" name (100. *. t /. total)))
           sp)

let xl ~quick ~out () =
  let quick_ceiling_s = 60.0 in
  let fail = ref false in
  let fatal_findings label findings =
    List.iter
      (fun f ->
        Format.eprintf "FATAL: %s %a@." label Doall_obs.Diff.pp_finding f;
        fail := true)
      findings;
    findings = []
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "xl: scale-wall cells%s (seed 42)"
           (if quick then " [--quick]" else ""))
      ~columns:
        [ "scenario"; "W"; "M"; "sigma"; "wall_s"; "rss_peak_kb"; "phases" ]
  in
  let cell_results =
    List.map
      (fun (algo, adv, p, t, d) ->
        let key = Printf.sprintf "%s/%s/p%d/t%d/d%d" algo adv p t d in
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        let r =
          Runner.run_spec ~profile:true
            (Runner.spec ~seed:42 ~algo ~adv ~p ~t ~d ())
        in
        let m = r.Runner.metrics in
        let wall = Unix.gettimeofday () -. t0 in
        let rss = vm_hwm_kb () in
        if quick && wall > quick_ceiling_s then begin
          Printf.eprintf "FATAL: xl --quick cell %s took %.1fs (ceiling %.0fs)\n"
            key wall quick_ceiling_s;
          fail := true
        end;
        if not m.Metrics.completed then begin
          Printf.eprintf "FATAL: xl cell %s hit the time cap at %d\n" key
            m.Metrics.sigma;
          fail := true
        end;
        Table.add_row tbl
          [
            (if m.Metrics.completed then key else key ^ " (capped)");
            Table.cell_int m.Metrics.work;
            Table.cell_int m.Metrics.messages;
            Table.cell_int m.Metrics.sigma;
            Printf.sprintf "%.3f" wall;
            (match rss with Some kb -> Table.cell_int kb | None -> "-");
            phases_cell r.Runner.spans;
          ];
        (key, algo, adv, p, t, d, m, wall, rss, r.Runner.spans))
      (xl_scenarios ~quick)
  in
  Table.add_note tbl
    "rss_peak_kb: /proc/self/status VmHWM after the cell - a process-wide \
     high-water mark, so readings are cumulative; cells run \
     smallest-memory-first to keep them attributable";
  emit_named "xl-cells" tbl;
  (* -- epoch-digest arm: every cell against its BENCH_3-engine wall.
        Runs in both modes; on --quick this is the CI perf-regression
        gate (fail when a cell runs > 1.5x slower than the committed
        reference), and on full runs the paran1/t=1e6 headline cell
        must clear its 3x floor. -- *)
  let b3_tbl =
    Table.create ~title:"xl: vs BENCH_3 engine (epoch-digest delivery)"
      ~columns:[ "scenario"; "wall_s"; "bench3_s"; "speedup"; "metrics"; "gate" ]
  in
  let bench3_rows =
    List.filter_map
      (fun (key, _, _, _, _, _, (m : Metrics.t), wall, _, _) ->
        match
          List.find_opt (fun (k, _, _, _) -> k = key) xl_bench3_reference
        with
        | None -> None
        | Some (_, bench3_s, (w_pin, m_pin, s_pin), gate) ->
          let pinned =
            fatal_findings "BENCH_3 pin"
              (Doall_obs.Diff.gate_metric_pins ~key
                 ~pins:
                   [ ("work", w_pin); ("messages", m_pin); ("sigma", s_pin) ]
                 ~actual:
                   [
                     ("work", m.Metrics.work);
                     ("messages", m.Metrics.messages);
                     ("sigma", m.Metrics.sigma);
                   ])
          in
          let speedup = bench3_s /. wall in
          (match gate with
           | Some g ->
             ignore
               (fatal_findings "BENCH_3 gate"
                  (Doall_obs.Diff.gate_wall_ratio ~key ~reference_s:bench3_s
                     ~wall_s:wall ~min_ratio:g))
           | None -> ());
          Table.add_row b3_tbl
            [
              key;
              Printf.sprintf "%.3f" wall;
              Printf.sprintf "%.3f" bench3_s;
              Printf.sprintf "%.2fx" speedup;
              (if pinned then "pinned" else "DIVERGED");
              (match gate with
               | Some g -> Printf.sprintf ">=%.2fx" g
               | None -> "report-only");
            ];
          Some (key, wall, bench3_s, speedup, pinned, gate))
      cell_results
  in
  Table.add_note b3_tbl
    "bench3_s: the same cell on the stream+delta engine before epoch-digest \
     delivery (BENCH_3.json for full cells; quick cells measured at the \
     same commit). The quick cells' 0.67x floor is the CI \
     perf-regression gate; the paran1/t=1e6 3x floor is the epoch-digest \
     acceptance criterion.";
  emit_named "xl-bench3" b3_tbl;
  (* -- speedup arm vs BENCH_1 -- *)
  let speedups =
    if quick then []
    else begin
      let sp_tbl =
        Table.create ~title:"xl: BENCH_1 headline cells, re-measured"
          ~columns:
            [ "scenario"; "wall_s"; "bench1_s"; "speedup"; "metrics"; "gate" ]
      in
      let rows =
        List.map
          (fun (algo, bench1_s, (w_pin, m_pin, s_pin), gated) ->
            let p, t, d = (256, 4096, 16) in
            let key = Printf.sprintf "%s/max-delay/p%d/t%d/d%d" algo p t d in
            let best = ref infinity and last = ref None in
            for _ = 1 to 2 do
              Gc.compact ();
              let t0 = Unix.gettimeofday () in
              let m =
                (Runner.run ~seed:42 ~algo ~adv:"max-delay" ~p ~t ~d ())
                  .Runner.metrics
              in
              let wall = Unix.gettimeofday () -. t0 in
              if wall < !best then best := wall;
              last := Some m
            done;
            let m = Option.get !last in
            let pinned =
              fatal_findings "BENCH_1 pin"
                (Doall_obs.Diff.gate_metric_pins ~key
                   ~pins:
                     [ ("work", w_pin); ("messages", m_pin); ("sigma", s_pin) ]
                   ~actual:
                     [
                       ("work", m.Metrics.work);
                       ("messages", m.Metrics.messages);
                       ("sigma", m.Metrics.sigma);
                     ])
            in
            let speedup = bench1_s /. !best in
            if gated then
              ignore
                (fatal_findings "BENCH_1 gate"
                   (Doall_obs.Diff.gate_wall_ratio ~key ~reference_s:bench1_s
                      ~wall_s:!best ~min_ratio:1.5));
            Table.add_row sp_tbl
              [
                key;
                Printf.sprintf "%.3f" !best;
                Printf.sprintf "%.3f" bench1_s;
                Printf.sprintf "%.2fx" speedup;
                (if pinned then "pinned" else "DIVERGED");
                (if gated then ">=1.5x" else "report-only");
              ];
            (key, !best, bench1_s, speedup, pinned, gated))
          xl_speedup_cells
      in
      Table.add_note sp_tbl
        "best of 2 rounds, major heap compacted before each; bench1_s from \
         BENCH_1.json (same reference container); metrics must equal the \
         golden-pinned BENCH_1 values";
      emit_named "xl-speedup" sp_tbl;
      rows
    end
  in
  let cell_json (key, algo, adv, p, t, d, (m : Metrics.t), wall, rss, spans) =
    Json.Obj
      ([
         ("scenario", Json.Str key);
         ("algo", Json.Str algo);
         ("adversary", Json.Str adv);
         ("p", Json.Int p);
         ("t", Json.Int t);
         ("d", Json.Int d);
         ("work", Json.Int m.Metrics.work);
         ("messages", Json.Int m.Metrics.messages);
         ("sigma", Json.Int m.Metrics.sigma);
         ("wall_s", Json.Float wall);
       ]
      @ (match rss with
         | Some kb -> [ ("rss_peak_kb", Json.Int kb) ]
         | None -> [])
      @
      match spans with
      | Some sp -> Doall_obs.Export.spans_fields sp
      | None -> [])
  in
  let speedup_json (key, wall, bench1_s, speedup, pinned, gated) =
    Json.Obj
      [
        ("scenario", Json.Str key);
        ("wall_s", Json.Float wall);
        ("bench1_wall_s", Json.Float bench1_s);
        ("speedup_vs_bench1", Json.Float speedup);
        ("metrics_pinned", Json.Bool pinned);
        ("gated_1_5x", Json.Bool gated);
      ]
  in
  let bench3_json (key, wall, bench3_s, speedup, pinned, gate) =
    Json.Obj
      ([
         ("scenario", Json.Str key);
         ("wall_s", Json.Float wall);
         ("bench3_wall_s", Json.Float bench3_s);
         ("speedup_vs_bench3", Json.Float speedup);
         ("metrics_pinned", Json.Bool pinned);
       ]
      @
      match gate with
      | Some g -> [ ("gate_min_ratio", Json.Float g) ]
      | None -> [])
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Int 4);
        ( "description",
          Json.Str
            "scale-wall cells re-measured under epoch-digest delivery (one \
             shared union per tick instead of p-1 per-receiver applies), \
             gated against the BENCH_3 engine per cell, plus the BENCH_1 \
             headline arm; fourth point of the perf trajectory" );
        ("quick", Json.Bool quick);
        ( "baseline",
          Json.Obj
            [
              ("bench", Json.Str "BENCH_3.json");
              ( "engine",
                Json.Str
                  "shared-broadcast stream + delta payloads, per-receiver \
                   payload applies (before epoch-digest delivery)" );
              ("measured", Json.Str "2026-08-08");
            ] );
        ("cells", Json.List (List.map cell_json cell_results));
        ("bench3_speedup", Json.List (List.map bench3_json bench3_rows));
        ("bench1_speedup", Json.List (List.map speedup_json speedups));
      ]
  in
  let oc = open_out out in
  Json.pp_to_channel oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if !fail then exit 1

(* ------------------------------------------------------------------ *)

let list_experiments () =
  List.iter
    (fun e -> Printf.printf "%-5s %s\n" e.Exp.id (Exp.one_liner e))
    (Exp.all ());
  print_string "micro  Bechamel microbenchmarks (bitsets, event queues, engine cells)\n";
  print_string "perf   wall-clock grid + parallel-grid speedup, writes BENCH_2.json\n";
  print_string "obs    probe overhead on the paper-scale cell (target < 5%); --profile gates the span self-profiler instead\n";
  print_string "xl     scale-wall cells (p=16384, t=1e6) + BENCH_3/BENCH_1 speedup gates, writes BENCH_4.json\n"

let unknown id =
  Printf.eprintf "unknown experiment %S; known experiments:\n" id;
  List.iter
    (fun e -> Printf.eprintf "  %-5s %s\n" e.Exp.id (Exp.one_liner e))
    (Exp.all ());
  Printf.eprintf "  micro, perf, obs, xl (performance targets)\n";
  exit 2

let () =
  (* Stop-the-world minor collections serialize the domain pool: with the
     default 256k-word minor heap the parallel grid is *slower* than
     sequential (every broadcast-heavy run allocates fresh bitsets). 2M
     words per domain keeps the rendezvous rate low enough to scale; set
     before any timing so the jobs=1 and jobs=N arms run under the same
     GC (docs/PERFORMANCE.md has the calibration). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2 * 1024 * 1024 };
  Doall_quorum.Register.install ();
  Catalog.install ();
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = ref false in
  let profile = ref false in
  let out_override = ref None in
  let list_only = ref false in
  let rec strip_flags acc = function
    | "--csv" :: dir :: rest ->
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      csv_dir := Some dir;
      strip_flags acc rest
    | "--quick" :: rest ->
      quick := true;
      strip_flags acc rest
    | "--profile" :: rest ->
      profile := true;
      strip_flags acc rest
    | "--list" :: rest ->
      list_only := true;
      strip_flags acc rest
    | "--out" :: path :: rest ->
      out_override := Some path;
      strip_flags acc rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | _ ->
         Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
         exit 2);
      strip_flags acc rest
    | x :: rest -> strip_flags (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_flags [] args in
  if !list_only then list_experiments ()
  else begin
    let requested =
      match args with
      | [] | [ "all" ] -> Exp.ids ()
      | args -> args
    in
    List.iter
      (fun id ->
        let out default = Option.value !out_override ~default in
        if id = "micro" then micro ()
        else if id = "perf" then perf ~quick:!quick ~out:(out "BENCH_2.json") ()
        else if id = "obs" then
          obs_overhead ~quick:!quick ~profile:!profile ()
        else if id = "xl" then xl ~quick:!quick ~out:(out "BENCH_4.json") ()
        else
          match Exp.find id with
          | Some e ->
            Exp.run ~pool:(shared_pool ()) ?csv_dir:!csv_dir ~progress:true e;
            print_newline ()
          | None -> unknown id)
      requested
  end
