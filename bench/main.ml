(* The experiment harness: one experiment per theorem/figure of the paper
   (see DESIGN.md section 4 and EXPERIMENTS.md for the paper-vs-measured
   record). Run all with `dune exec bench/main.exe`, or a subset with
   e.g. `dune exec bench/main.exe -- e2 e6 fig1`, or `micro` for the
   Bechamel microbenchmarks. *)

open Doall_sim
open Doall_core
open Doall_perms
open Doall_analysis
module Json = Doall_obs.Export.Json
module Progress = Doall_obs.Progress

let wf = float_of_int

(* Parallelism for the grid-shaped experiments (seed averaging, e17's
   bound-fitting sweep, the perf grid). One pool for the whole process,
   sized by --jobs; Pool.create ~jobs:1 degrades to inline execution. *)
let jobs = ref (Pool.default_jobs ())
let pool_ref : Pool.t option ref = ref None

let shared_pool () =
  match !pool_ref with
  | Some pool -> pool
  | None ->
    let pool = Pool.create ~jobs:!jobs () in
    pool_ref := Some pool;
    pool

let work_of ?(seed = 1) ~algo ~adv ~p ~t ~d () =
  (Runner.run ~seed ~algo ~adv ~p ~t ~d ()).Runner.metrics

let mean_work ?(seeds = [ 1; 2; 3; 4; 5 ]) ~algo ~adv ~p ~t ~d () =
  fst
    (Runner.average_work ~seeds ~pool:(shared_pool ()) ~algo ~adv ~p ~t ~d ())

(* Run a packed algorithm (for variants not in the registry). *)
let run_packed ?(seed = 1) algo ~adv ~p ~t ~d =
  let adversary = (Runner.find_adv adv).Runner.instantiate ~p ~t ~d in
  let cfg = Config.make ~seed ~p ~t () in
  Engine.run_packed algo cfg ~d ~adversary ()

(* Live grid progress for the longer experiments: Progress only renders
   on a tty, so batch/CI output is untouched. [f] receives an [on_cell]
   callback for Runner.run_grid. *)
let with_progress ~label ~total f =
  let pr = Progress.create ~total ~label () in
  Fun.protect
    ~finally:(fun () -> Progress.finish pr)
    (fun () ->
      f (fun ~finished:_ ~total:_ (_ : Runner.result) -> Progress.tick pr))

(* With --csv DIR on the command line, every table is also written as a
   CSV artifact for downstream analysis. *)
let csv_dir : string option ref = ref None

let table_counter = ref 0

let emit tbl =
  Table.print tbl;
  incr table_counter;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (Printf.sprintf "table-%02d.csv" !table_counter) in
    Table.write_csv tbl ~path

(* ------------------------------------------------------------------ *)
(* E1. Proposition 2.2: the quadratic wall at d = Theta(t).            *)

let e1 () =
  let p = 16 and t = 96 in
  let algos = [ "trivial"; "da-q4"; "paran1"; "padet" ] in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E1 (Prop 2.2): work under max-delay, p=%d t=%d (oblivious pt=%d)"
           p t (p * t))
      ~columns:("d" :: List.concat_map (fun a -> [ a; a ^ "/pt" ]) algos)
  in
  List.iter
    (fun d ->
      let cells =
        List.concat_map
          (fun algo ->
            let m = work_of ~algo ~adv:"max-delay" ~p ~t ~d () in
            [
              Table.cell_int m.Metrics.work;
              Table.cell_ratio (wf m.Metrics.work) (wf (p * t));
            ])
          algos
      in
      Table.add_row tbl (Table.cell_int d :: cells))
    [ 1; 8; 24; 48; 96 ];
  Table.add_note tbl
    "expected shape: coordinated algorithms approach the oblivious p*t as d \
     approaches t; trivial is flat at 1.00";
  emit tbl;
  let series =
    List.map
      (fun algo ->
        {
          Plot.label = algo;
          points =
            List.map
              (fun d ->
                let m = work_of ~algo ~adv:"max-delay" ~p ~t ~d () in
                (wf d, wf m.Metrics.work))
              [ 1; 2; 4; 8; 16; 24; 48; 96 ];
        })
      algos
  in
  print_string
    (Plot.render ~logx:true ~logy:true
       ~title:"work vs d (log-log); the wall at d = t is the flattening"
       series)

(* ------------------------------------------------------------------ *)
(* E2. Theorem 3.1: deterministic lower-bound adversary.               *)

let e2 () =
  let p = 64 and t = 64 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E2 (Thm 3.1): work forced by the stage adversary, p=t=%d" p)
      ~columns:
        [ "d"; "da-q2"; "da-q4"; "padet"; "LB(p,t,d)"; "da-q4/LB"; "stages" ]
  in
  List.iter
    (fun d ->
      let stagecount = ref 0 in
      let run algo =
        let adv = Doall_adversary.Lb_deterministic.create () in
        let cfg = Config.make ~seed:1 ~p ~t () in
        let m =
          Engine.run_packed
            ((Runner.find_algo algo).Runner.make ())
            cfg ~d ~adversary:adv ()
        in
        stagecount :=
          List.length (Doall_adversary.Lb_deterministic.stages_of adv);
        m.Metrics.work
      in
      let w2 = run "da-q2" in
      let w4 = run "da-q4" in
      let wd = run "padet" in
      let lb = Bounds.lower_bound ~p ~t ~d in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_int w2;
          Table.cell_int w4;
          Table.cell_int wd;
          Table.cell_float lb;
          Table.cell_ratio (wf w4) lb;
          Table.cell_int !stagecount;
        ])
    [ 1; 2; 4; 8 ];
  Table.add_note tbl
    "expected shape: forced work grows with d and tracks \
     t + p*min(d,t)*log_{d+1}(d+t) within a constant";
  emit tbl

(* ------------------------------------------------------------------ *)
(* E3. Theorem 3.4: randomized online adversary; Fig. 1 rendering.     *)

let e3 () =
  let p = 64 and t = 64 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E3 (Thm 3.4): expected work under the online adversary, p=t=%d" p)
      ~columns:[ "d"; "paran1 (coverage)"; "paran2 (random J_s)"; "LB(p,t,d)" ]
  in
  List.iter
    (fun d ->
      let mean algo adv =
        mean_work ~seeds:[ 1; 2; 3 ] ~algo ~adv ~p ~t ~d ()
      in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_float (mean "paran1" "lb-rand");
          Table.cell_float (mean "paran2" "lb-rand-random");
          Table.cell_float (Bounds.lower_bound ~p ~t ~d);
        ])
    [ 1; 2; 4; 8 ];
  Table.add_note tbl
    "expected shape: expected work grows with d like the lower bound";
  emit tbl;
  (* The combinatorial pillar of Theorem 3.4, machine-checked: Lemma 3.2's
     binomial-ratio bound on every (u, d) pair up to 2000. *)
  (match Lemma32.first_counterexample ~u_max:2000 with
   | None ->
     print_endline
       "Lemma 3.2 verified numerically: C(u-d,k)/C(u,k) >= 1/4 and the \
        proof's sandwich hold for all u <= 2000, 1 <= d <= sqrt u"
   | Some (u, d) ->
     Printf.printf "Lemma 3.2 COUNTEREXAMPLE at u=%d d=%d (ratio %.4f)\n" u d
       (Lemma32.ratio ~u ~d))

let fig1 () =
  (* The paper's Fig. 1: five processors, d = 5; the online adversary
     delays a processor the moment it selects a J_s task. *)
  let p = 5 and t = 30 and d = 5 in
  let result, trace =
    Runner.run_traced ~seed:3 ~algo:"paran1" ~adv:"lb-rand" ~p ~t ~d ()
  in
  Printf.printf
    "== Fig. 1: online adversary on PaRan1, p=%d t=%d d=%d ==\n" p t d;
  Format.printf "%a@." Metrics.pp result.Runner.metrics;
  let until = min 72 (result.Runner.metrics.Metrics.sigma + 1) in
  Format.printf "%a" Trace.pp_timeline (trace, p, until);
  print_endline
    "legend: # performs a task, o bookkeeping, . delayed by adversary (the \
     moment it selected a J_s task), H halt";
  Trace.iter trace (function
    | Trace.Note { time; text } -> Printf.printf "  note t=%d: %s\n" time text
    | _ -> ())

(* ------------------------------------------------------------------ *)
(* E4. Lemma 4.1: low-contention lists by search.                      *)

let e4 () =
  let rng = Rng.create 2024 in
  let tbl =
    Table.create ~title:"E4 (Lemma 4.1): contention of n-permutation lists"
      ~columns:
        [ "n"; "Cont(searched)"; "3nH_n"; "Cont(random)"; "Cont(identity)=n^2" ]
  in
  List.iter
    (fun n ->
      let cert = Search.certified ~rng n in
      let random_cont =
        Contention.contention_exact (Gen.random_list ~rng ~n ~count:n)
      in
      Table.add_row tbl
        [
          Table.cell_int n;
          Table.cell_int cert.Search.contention;
          Table.cell_float cert.Search.bound;
          Table.cell_int random_cont;
          Table.cell_int (n * n);
        ])
    [ 2; 3; 4; 5; 6; 7 ];
  Table.add_note tbl
    "3nH_n exceeds n^2 for n <= 10, so the certificate is loose here; the \
     point is searched < random < identity, and exactness of the Cont \
     computation";
  emit tbl

(* ------------------------------------------------------------------ *)
(* E5. Theorem 4.4 / Corollary 4.5: d-contention of random lists.      *)

let e5 () =
  let n = 48 in
  let rng = Rng.create 7 in
  let psi = Gen.random_list ~rng ~n ~count:n in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E5 (Thm 4.4): d-contention of a random list, n=p=%d" n)
      ~columns:[ "d"; "(d)-Cont estimate"; "n ln n + 8pd ln(e+n/d)"; "ratio" ]
  in
  List.iter
    (fun d ->
      let est =
        Contention.d_contention_estimate ~restarts:2 ~samples:24 ~rng ~d psi
      in
      let bound = Contention.bound_theorem_4_4 ~n ~p:n ~d in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_int est;
          Table.cell_float bound;
          Table.cell_ratio (wf est) bound;
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.add_note tbl
    "estimate lower-bounds the true max over rho; staying well under the \
     bound confirms the w.h.p. statement";
  emit tbl;
  (* (b) concentration: the w.h.p. statement over many random lists *)
  let n2 = 32 in
  let lists = 40 in
  let tbl2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E5b (Thm 4.4): concentration over %d random lists, n=p=%d" lists
           n2)
      ~columns:[ "d"; "mean est/bound"; "max est/bound"; "lists over bound" ]
  in
  List.iter
    (fun d ->
      let bound = Contention.bound_theorem_4_4 ~n:n2 ~p:n2 ~d in
      let fractions =
        List.map
          (fun i ->
            let rng_i = Rng.create (1000 + i) in
            let psi_i = Gen.random_list ~rng:rng_i ~n:n2 ~count:n2 in
            let est =
              Contention.d_contention_estimate ~restarts:1 ~samples:12
                ~rng:rng_i ~d psi_i
            in
            wf est /. bound)
          (List.init lists Fun.id)
      in
      let mean =
        List.fold_left ( +. ) 0.0 fractions /. wf lists
      in
      let worst = List.fold_left Float.max 0.0 fractions in
      let over = List.length (List.filter (fun f -> f > 1.0) fractions) in
      Table.add_row tbl2
        [
          Table.cell_int d;
          Table.cell_float ~decimals:3 mean;
          Table.cell_float ~decimals:3 worst;
          Table.cell_int over;
        ])
    [ 1; 4; 16 ];
  Table.add_note tbl2
    "w.h.p. means the over-bound count should be 0, and it is; the \
     distribution sits tightly around 1/5 of the bound";
  emit tbl2

(* ------------------------------------------------------------------ *)
(* E6. Theorems 5.4/5.5: DA(q) upper bound sweeps.                     *)

let e6 () =
  (* (a) d sweep. The proof's eps(q) = log_q(4 log q) exceeds 1 for the
     small q we can instantiate (the theorem's q grows like
     2^(log(1/e)/e)); we compare against the bound's *shape* at the
     empirically achieved exponent (~0.3, see the E6b fits below). *)
  let p = 32 and t = 256 in
  let q = 4 in
  let eps = 0.3 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E6a (Thm 5.5): DA(%d) work vs bound shape, p=%d t=%d (eps=%.2f \
            empirical; proof eps(q)=%.2f)"
           q p t eps (Bounds.epsilon_of_q ~q))
      ~columns:[ "d"; "work"; "t*p^e + p*min(t,d)*ceil(t/d)^e"; "ratio" ]
  in
  List.iter
    (fun d ->
      let m = work_of ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
      let ub = Bounds.da_upper ~p ~t ~d ~epsilon:eps in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_int m.Metrics.work;
          Table.cell_float ub;
          Table.cell_ratio (wf m.Metrics.work) ub;
        ])
    [ 1; 4; 16; 64; 256 ];
  Table.add_note tbl "expected shape: ratio bounded by a constant across d";
  emit tbl;
  (* (b) p sweep: empirical exponent of W in p *)
  let t = 256 and d = 4 in
  let tbl2 =
    Table.create
      ~title:
        (Printf.sprintf "E6b: DA work scaling in p (t=%d d=%d, max-delay)" t d)
      ~columns:[ "p"; "da-q2"; "da-q4"; "da-q8" ]
  in
  let points = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let row =
        List.map
          (fun q ->
            let algo = Printf.sprintf "da-q%d" q in
            let m = work_of ~algo ~adv:"max-delay" ~p ~t ~d () in
            Hashtbl.replace points (q, p) m.Metrics.work;
            Table.cell_int m.Metrics.work)
          [ 2; 4; 8 ]
      in
      Table.add_row tbl2 (Table.cell_int p :: row))
    [ 4; 8; 16; 32; 64 ];
  List.iter
    (fun q ->
      let pairs =
        List.map
          (fun p -> (wf p, wf (Hashtbl.find points (q, p))))
          [ 4; 8; 16; 32; 64 ]
      in
      let fit = Stats.loglog_fit pairs in
      Table.add_note tbl2
        (Printf.sprintf
           "q=%d: empirical exponent of W in p = %.2f (r2=%.2f); paper \
            predicts a small epsilon plus the additive p*d term" q
           fit.Stats.slope fit.Stats.r2))
    [ 2; 4; 8 ];
  emit tbl2;
  (* (c) t sweep: W should be near-linear in t *)
  let p = 32 and d = 4 in
  let tbl3 =
    Table.create
      ~title:(Printf.sprintf "E6c: DA(4) work scaling in t (p=%d d=%d)" p d)
      ~columns:[ "t"; "work"; "work/t" ]
  in
  let pairs = ref [] in
  List.iter
    (fun t ->
      let m = work_of ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
      pairs := (wf t, wf m.Metrics.work) :: !pairs;
      Table.add_row tbl3
        [
          Table.cell_int t;
          Table.cell_int m.Metrics.work;
          Table.cell_ratio (wf m.Metrics.work) (wf t);
        ])
    [ 64; 128; 256; 512; 1024 ];
  let fit = Stats.loglog_fit !pairs in
  Table.add_note tbl3
    (Printf.sprintf
       "empirical exponent of W in t = %.2f (r2=%.2f); bound predicts ~1"
       fit.Stats.slope fit.Stats.r2);
  emit tbl3

(* ------------------------------------------------------------------ *)
(* E7. Theorem 5.6: DA message complexity M = O(pW).                   *)

let e7 () =
  let tbl =
    Table.create ~title:"E7 (Thm 5.6): DA message complexity, M/(p*W) <= 1"
      ~columns:[ "q"; "adv"; "W"; "M"; "M/(p*W)" ]
  in
  let p = 16 and t = 64 and d = 4 in
  List.iter
    (fun q ->
      List.iter
        (fun adv ->
          let m =
            work_of ~algo:(Printf.sprintf "da-q%d" q) ~adv ~p ~t ~d ()
          in
          Table.add_row tbl
            [
              Table.cell_int q;
              adv;
              Table.cell_int m.Metrics.work;
              Table.cell_int m.Metrics.messages;
              Table.cell_ratio (wf m.Metrics.messages)
                (wf (p * m.Metrics.work));
            ])
        [ "fair"; "max-delay" ])
    [ 2; 4; 6; 8 ];
  Table.add_note tbl
    "DA broadcasts only on node completions, so the measured ratio sits \
     well below the p*W ceiling";
  emit tbl

(* ------------------------------------------------------------------ *)
(* E8. Theorem 6.2: PaRan1/PaRan2 expected work.                       *)

let e8 () =
  let p = 64 and t = 64 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E8 (Thm 6.2): randomized PA expected work, p=t=%d (max-delay)" p)
      ~columns:
        [
          "d"; "EW paran1"; "ci95"; "EW paran2"; "t log p + p d log(2+t/d)";
          "ran1/bound";
        ]
  in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun d ->
      let works algo =
        List.map
          (fun seed ->
            wf (work_of ~seed ~algo ~adv:"max-delay" ~p ~t ~d ()).Metrics.work)
          seeds
      in
      let s1 = Stats.summarize (works "paran1") in
      let s2 = Stats.summarize (works "paran2") in
      let ub = Bounds.pa_upper ~p ~t ~d in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_float s1.Stats.mean;
          Printf.sprintf "+-%.0f" s1.Stats.ci95;
          Table.cell_float s2.Stats.mean;
          Table.cell_float ub;
          Table.cell_ratio s1.Stats.mean ub;
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  Table.add_note tbl "expected shape: ratio bounded by a constant across d";
  emit tbl;
  (* p sweep at large t *)
  let t = 256 and d = 8 in
  let tbl2 =
    Table.create
      ~title:(Printf.sprintf "E8b: PaRan1 scaling in p (t=%d d=%d)" t d)
      ~columns:[ "p"; "EW"; "bound"; "ratio" ]
  in
  List.iter
    (fun p ->
      let w =
        mean_work ~seeds:[ 1; 2; 3 ] ~algo:"paran1" ~adv:"max-delay" ~p ~t ~d
          ()
      in
      let ub = Bounds.pa_upper ~p ~t ~d in
      Table.add_row tbl2
        [
          Table.cell_int p;
          Table.cell_float w;
          Table.cell_float ub;
          Table.cell_ratio w ub;
        ])
    [ 4; 8; 16; 32; 64 ];
  emit tbl2

(* ------------------------------------------------------------------ *)
(* E9. Theorem 6.3 / Corollary 6.5: PaDet + schedule-quality ablation. *)

let e9 () =
  let p = 48 and t = 48 in
  let n = min p t in
  (* (a) schedule quality: certified/seeded list vs the worst list. *)
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E9a (Cor 6.5): PaDet schedule quality, p=t=%d (max-delay)" p)
      ~columns:[ "d"; "padet"; "padet-identity-list"; "bound" ]
  in
  let identity_psi = Gen.identity_list ~n ~count:p in
  List.iter
    (fun d ->
      let w_good =
        (run_packed (Algo_pa.make_det ()) ~adv:"max-delay" ~p ~t ~d)
          .Metrics.work
      in
      let w_bad =
        (run_packed
           (Algo_pa.make_det ~psi:identity_psi ())
           ~adv:"max-delay" ~p ~t ~d)
          .Metrics.work
      in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_int w_good;
          Table.cell_int w_bad;
          Table.cell_float (Bounds.pa_upper ~p ~t ~d);
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.add_note tbl
    "the identity list has worst-case contention p*n (every processor \
     shares one schedule), and indeed pays ~p*t regardless of d";
  emit tbl;
  (* (b) gossip granularity: full knowledge sets vs single-task
     announcements. Needs a schedule where third-party relay matters —
     under all-to-all lockstep the two coincide, so we use random
     per-unit step subsets with uniform delays. *)
  let tbl2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E9b: gossip granularity ablation, p=t=%d (random-half)" p)
      ~columns:[ "d"; "padet (full sets)"; "padet (single task)" ]
  in
  List.iter
    (fun d ->
      let w_full =
        (run_packed (Algo_pa.make_det ()) ~adv:"random-half" ~p ~t ~d)
          .Metrics.work
      in
      let w_single =
        (run_packed
           (Algo_pa.make_det ~gossip:`Single ())
           ~adv:"random-half" ~p ~t ~d)
          .Metrics.work
      in
      Table.add_row tbl2
        [ Table.cell_int d; Table.cell_int w_full; Table.cell_int w_single ])
    [ 2; 4; 8; 16 ];
  Table.add_note tbl2
    "full knowledge sets (the paper's model, load-bearing in Lemma 6.1) \
     propagate third-party news; single-task gossip loses it and pays \
     more work as d grows";
  emit tbl2

(* ------------------------------------------------------------------ *)
(* E10. Head-to-head and the DA q ablation.                            *)

let e10 () =
  let p = 48 and t = 48 in
  let algos = [ "trivial"; "da-q2"; "da-q4"; "paran1"; "paran2"; "padet" ] in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E10: head-to-head work under max-delay, p=t=%d (winner starred)" p)
      ~columns:("d" :: algos)
  in
  List.iter
    (fun d ->
      let results =
        List.map
          (fun algo ->
            let w =
              if algo = "paran1" || algo = "paran2" then
                int_of_float
                  (mean_work ~seeds:[ 1; 2; 3 ] ~algo ~adv:"max-delay" ~p ~t
                     ~d ())
              else (work_of ~algo ~adv:"max-delay" ~p ~t ~d ()).Metrics.work
            in
            (algo, w))
          algos
      in
      let best =
        List.fold_left (fun acc (_, w) -> min acc w) max_int results
      in
      let cells =
        List.map
          (fun (_, w) ->
            if w = best then Table.cell_int w ^ "*" else Table.cell_int w)
          results
      in
      Table.add_row tbl (Table.cell_int d :: cells))
    [ 1; 4; 16; 48 ];
  Table.add_note tbl
    "expected crossover: coordinated algorithms win while d = o(t); at d = t \
     the oblivious baseline is no longer beaten by much (Prop 2.2)";
  emit tbl;
  (* q ablation *)
  let p = 64 and t = 64 in
  let tbl2 =
    Table.create
      ~title:(Printf.sprintf "E10b: DA(q) ablation, p=t=%d (max-delay)" p)
      ~columns:[ "q"; "W at d=1"; "W at d=16" ]
  in
  List.iter
    (fun q ->
      let algo = Printf.sprintf "da-q%d" q in
      let w1 = (work_of ~algo ~adv:"max-delay" ~p ~t ~d:1 ()).Metrics.work in
      let w16 =
        (work_of ~algo ~adv:"max-delay" ~p ~t ~d:16 ()).Metrics.work
      in
      Table.add_row tbl2
        [ Table.cell_int q; Table.cell_int w1; Table.cell_int w16 ])
    [ 2; 3; 4; 5; 6; 7; 8 ];
  Table.add_note tbl2
    "the q knob trades traversal depth (helps small d) against fan-out \
     redundancy (hurts large d) - the epsilon trade-off of Thm 5.4";
  emit tbl2

(* ------------------------------------------------------------------ *)
(* E11. Lemma 4.2: ObliDo primary executions vs contention.            *)

let e11 () =
  let rng = Rng.create 91 in
  let tbl =
    Table.create
      ~title:"E11 (Lemma 4.2): ObliDo primary executions <= Cont(psi)"
      ~columns:
        [ "n"; "Cont(psi)"; "max primaries (40 interleavings)"; "bound holds" ]
  in
  List.iter
    (fun n ->
      let psi = Gen.random_list ~rng ~n ~count:n in
      let cont = Contention.contention_exact psi in
      let worst = ref 0 in
      for _ = 1 to 39 do
        let prob = 0.15 +. Rng.float rng 0.8 in
        let rounds = Oblido.random_rounds ~rng ~n ~count:n ~prob in
        let stats = Oblido.replay ~psi ~rounds in
        worst := max !worst stats.Oblido.primary
      done;
      let stats =
        Oblido.replay ~psi ~rounds:(Oblido.adversarial_rounds ~psi)
      in
      worst := max !worst stats.Oblido.primary;
      Table.add_row tbl
        [
          Table.cell_int n;
          Table.cell_int cont;
          Table.cell_int !worst;
          (if !worst <= cont then "yes" else "NO");
        ])
    [ 3; 4; 5; 6; 7 ];
  emit tbl

(* ------------------------------------------------------------------ *)
(* E12. Proposition 2.1: premature halting breaks Do-All.              *)

module Bad_early_halt : Algorithm.S = struct
  (* Deliberately broken: processors share the identity schedule and halt
     one task early. Every processor performs 0..t-2 and stops; task t-1
     is never performed, so the run cannot complete (Prop 2.1: in the
     paper's unbounded-work sense; here the engine's honest time cap
     reports the non-termination). *)
  let name = "bad-early-halt"

  type state = { t : int; know : Bitset.t; mutable halted : bool }
  type msg = Bitset.t

  let init (cfg : Config.t) ~pid:_ =
    { t = cfg.Config.t; know = Bitset.create cfg.Config.t; halted = false }

  let copy st = { st with know = Bitset.copy st.know }
  let receive st ~src:_ msg = Bitset.union_into ~dst:st.know msg
  let is_done st = Bitset.is_full st.know
  let done_tasks st = st.know

  let step st =
    if st.halted then Algorithm.nothing
    else if Bitset.cardinal st.know >= st.t - 1 then begin
      (* halts while one task may still be unperformed *)
      st.halted <- true;
      Algorithm.nothing
    end
    else
      match Bitset.first_missing st.know with
      | Some z ->
        Bitset.set st.know z;
        Algorithm.result ~performed:z ~broadcast:(Bitset.copy st.know) ()
      | None -> Algorithm.nothing
end

let e12 () =
  let p = 4 and t = 12 and d = 2 in
  let cfg = Config.make ~seed:1 ~p ~t () in
  let m =
    Engine.run_packed
      (module Bad_early_halt)
      cfg ~d ~adversary:Adversary.fair ~max_time:2000 ()
  in
  Printf.printf "== E12 (Prop 2.1): halting before knowing completion ==\n";
  Printf.printf
    "bad-early-halt: completed=%b executions=%d (task %d never performed; \
     work would grow unboundedly, the harness caps at time %d)\n"
    m.Metrics.completed m.Metrics.executions (t - 1) m.Metrics.sigma;
  let good = work_of ~algo:"padet" ~adv:"fair" ~p ~t ~d () in
  Printf.printf "padet (halts only when informed): completed=%b work=%d\n\n"
    good.Metrics.completed good.Metrics.work

(* ------------------------------------------------------------------ *)
(* E13. Section 1.1: direct message passing vs quorum emulation.       *)

let e13 () =
  let p = 16 and t = 64 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E13 (Sec 1.1): DA(4) vs quorum-emulated AW(4), p=%d t=%d \
            (max-delay)"
           p t)
      ~columns:
        [ "d"; "da-q4 W"; "awq-q4 W"; "awq-abd W"; "awq/da"; "abd/awq" ]
  in
  List.iter
    (fun d ->
      let da = work_of ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
      let awq =
        run_packed (Doall_quorum.Algo_awq.make ~q:4 ()) ~adv:"max-delay" ~p
          ~t ~d
      in
      let abd =
        run_packed
          (Doall_quorum.Algo_awq.make ~q:4 ~protocol:`Abd ())
          ~adv:"max-delay" ~p ~t ~d
      in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_int da.Metrics.work;
          Table.cell_int awq.Metrics.work;
          Table.cell_int abd.Metrics.work;
          Table.cell_ratio (wf awq.Metrics.work) (wf da.Metrics.work);
          Table.cell_ratio (wf abd.Metrics.work) (wf awq.Metrics.work);
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  Table.add_note tbl
    "every emulated memory operation waits ~d steps for a quorum, so the \
     emulation's work grows much faster in d than DA's (the paper: \
     subquadratic only while delays are O(K)); the full two-phase ABD \
     protocol of the general constructions [3,18] doubles the per-op \
     round trips, and the measured ~2x confirms the monotone single-phase \
     optimization is what keeps even the emulation competitive";
  emit tbl;
  (* the liveness caveat: quorum damage *)
  let run_crash algo label =
    let adversary =
      (Runner.find_adv "crash-all-but-one").Runner.instantiate ~p ~t ~d:2
    in
    let cfg = Config.make ~seed:1 ~p ~t () in
    let m = Engine.run_packed algo cfg ~d:2 ~adversary ~max_time:20_000 () in
    Printf.printf "  %-8s under crash-all-but-one: completed=%b work=%d\n"
      label m.Metrics.completed m.Metrics.work
  in
  print_endline
    "quorum-damage caveat (crashes leave 1 < majority processors):";
  run_crash ((Runner.find_algo "da-q4").Runner.make ()) "da-q4";
  run_crash (Doall_quorum.Algo_awq.make ~q:4 ()) "awq-q4";
  print_endline
    "  (AWQ burns work forever without solving Do-All - the paper's \
     'quorums disabled by failures' failure mode)"

(* ------------------------------------------------------------------ *)
(* E14 (extension): trading messages for work by throttling broadcasts. *)

let e14 () =
  let p = 48 and t = 48 in
  List.iter
    (fun d ->
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "E14 (extension, Sec 7 open problem): PaDet broadcast \
                throttling, p=t=%d d=%d (max-delay)"
               p d)
          ~columns:[ "broadcast every"; "W"; "M"; "effort W+M" ]
      in
      List.iter
        (fun k ->
          let m =
            run_packed
              (Algo_pa.make_det ~broadcast_every:k ())
              ~adv:"max-delay" ~p ~t ~d
          in
          Table.add_row tbl
            [
              Table.cell_int k;
              Table.cell_int m.Metrics.work;
              Table.cell_int m.Metrics.messages;
              Table.cell_int (Metrics.effort m);
            ])
        [ 1; 2; 4; 8; 16 ];
      Table.add_note tbl
        "k divides M by ~k while W rises slowly: the effort-minimizing k \
         is interior - evidence for the paper's open problem that W and M \
         can be balanced";
      emit tbl)
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* E15. Intro claim: synchronous-style techniques do not adapt.        *)

let e15 () =
  let p = 16 and t = 96 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E15 (Sec 1.1 intro): synchronous-style coordinator vs \
            delay-sensitive algorithms, p=%d t=%d (max-delay)"
           p t)
      ~columns:
        [ "d"; "coord W"; "coord M"; "da-q4 W"; "da-q4 M"; "padet W";
          "padet M" ]
  in
  List.iter
    (fun d ->
      let c = work_of ~algo:"coord" ~adv:"max-delay" ~p ~t ~d () in
      let a = work_of ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
      let g = work_of ~algo:"padet" ~adv:"max-delay" ~p ~t ~d () in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_int c.Metrics.work;
          Table.cell_int c.Metrics.messages;
          Table.cell_int a.Metrics.work;
          Table.cell_int a.Metrics.messages;
          Table.cell_int g.Metrics.work;
          Table.cell_int g.Metrics.messages;
        ])
    [ 1; 2; 4; 8; 16; 32; 96 ];
  Table.add_note tbl
    "the coordinator's fixed timeouts make it superbly frugal when the \
     network matches its synchrony assumption (small d) and wasteful once \
     d exceeds the timeout: suspicion is always wrong, epochs thrash, and \
     the uncoordinated fallback does the work - the intro's 'not clear how \
     to adapt' claim, measured";
  emit tbl

(* ------------------------------------------------------------------ *)
(* E16 (extension): gossip fanout instead of full broadcast.           *)

let e16 () =
  let p = 48 and t = 48 and d = 4 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E16 (extension, cf. [12]): PaRan1 gossip fanout, p=t=%d d=%d \
            (uniform-delay, mean of 5 seeds)"
           p d)
      ~columns:[ "fanout"; "EW"; "EM"; "effort" ]
  in
  let mean_of f seeds =
    List.fold_left (fun acc s -> acc +. f s) 0.0 seeds
    /. wf (List.length seeds)
  in
  List.iter
    (fun fanout ->
      let runs =
        List.map
          (fun seed ->
            run_packed ~seed
              (Algo_pa.make_ran1 ?fanout ())
              ~adv:"uniform-delay" ~p ~t ~d)
          [ 1; 2; 3; 4; 5 ]
      in
      let ew = mean_of (fun m -> wf m.Metrics.work) runs in
      let em = mean_of (fun m -> wf m.Metrics.messages) runs in
      Table.add_row tbl
        [
          (match fanout with None -> "all (p-1)" | Some k -> Table.cell_int k);
          Table.cell_float ew;
          Table.cell_float em;
          Table.cell_float (ew +. em);
        ])
    [ Some 1; Some 2; Some 4; Some 8; Some 16; None ];
  Table.add_note tbl
    "random gossip to k recipients: messages scale with k while work decays \
     slowly - small fanouts already realize most of the coordination value";
  emit tbl

(* ------------------------------------------------------------------ *)
(* E17. Model selection: which theorem explains each algorithm?        *)

let e17 () =
  let p = 48 and t = 48 in
  let ds = [ 1; 2; 4; 8; 16; 32; 48 ] in
  let algos = [ "trivial"; "da-q4"; "paran1"; "padet"; "coord" ] in
  (* The whole sweep as one flat grid fanned across the shared pool:
     deterministic algorithms contribute one cell (seed 1) per delay,
     randomized ones the mean of seeds 1-3. *)
  let seeds_for algo =
    if (Runner.find_algo algo).Runner.deterministic then [ 1 ] else [ 1; 2; 3 ]
  in
  let specs =
    List.concat_map
      (fun algo ->
        List.concat_map
          (fun d ->
            List.map
              (fun seed ->
                Runner.spec ~seed ~algo ~adv:"max-delay" ~p ~t ~d ())
              (seeds_for algo))
          ds)
      algos
  in
  let results =
    with_progress ~label:"e17 grid" ~total:(List.length specs) (fun on_cell ->
        Runner.run_grid ~pool:(shared_pool ()) ~on_cell specs)
  in
  let works : (string * int, float list) Hashtbl.t = Hashtbl.create 64 in
  List.iter2
    (fun (s : Runner.run_spec) (r : Runner.result) ->
      let key = (s.Runner.spec_algo, s.Runner.d) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt works key) in
      Hashtbl.replace works key (wf r.Runner.metrics.Metrics.work :: prev))
    specs results;
  let mean_at algo d =
    let ws = Hashtbl.find works (algo, d) in
    List.fold_left ( +. ) 0.0 ws /. wf (List.length ws)
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E17: best-fitting bound shape per algorithm, work-vs-d sweep, \
            p=t=%d (max-delay)"
           p)
      ~columns:[ "algorithm"; "best model"; "r2"; "runner-up"; "r2 " ]
  in
  List.iter
    (fun algo ->
      let points = List.map (fun d -> (d, mean_at algo d)) ds in
      match Fit.rank ~p ~t points with
      | first :: second :: _ ->
        Table.add_row tbl
          [
            algo;
            first.Fit.model.Fit.model_name;
            Table.cell_float ~decimals:3 first.Fit.r2;
            second.Fit.model.Fit.model_name;
            Table.cell_float ~decimals:3 second.Fit.r2;
          ]
      | _ -> assert false)
    algos;
  Table.add_note tbl
    "expected: trivial flat (constant shapes fit exactly); DA/PA best \
     explained by the delay-sensitive shapes at r2 ~0.99 (lower bound / \
     pa upper / linear p*d are near-collinear at p=t); coord fits \
     nothing well (r2 markedly lower) - its timeout cliff follows no \
     delay-sensitive bound, which is the point of E15";
  emit tbl

(* ------------------------------------------------------------------ *)
(* E18. The three worlds: shared memory, message passing, emulation.   *)

let e18 () =
  let p = 16 and t = 64 in
  let shm = Doall_sharedmem.Write_all.run ~q:4 ~p ~t () in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E18 (Sec 1.1): one algorithm, three worlds - AW(4) in shared \
            memory vs DA(4) vs quorum emulations, p=%d t=%d"
           p t)
      ~columns:[ "d"; "AW shm"; "DA msg"; "AWQ"; "AWQ-ABD" ]
  in
  List.iter
    (fun d ->
      let da = work_of ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d () in
      let awq =
        run_packed (Doall_quorum.Algo_awq.make ~q:4 ()) ~adv:"max-delay" ~p
          ~t ~d
      in
      let abd =
        run_packed
          (Doall_quorum.Algo_awq.make ~q:4 ~protocol:`Abd ())
          ~adv:"max-delay" ~p ~t ~d
      in
      Table.add_row tbl
        [
          Table.cell_int d;
          Table.cell_int shm.Doall_sharedmem.Write_all.work;
          Table.cell_int da.Metrics.work;
          Table.cell_int awq.Metrics.work;
          Table.cell_int abd.Metrics.work;
        ])
    [ 1; 4; 16; 64 ];
  Table.add_note tbl
    "the shared-memory original has no d: its column is constant. DA \
     beats it at tiny d (multicasts PUSH progress; shared memory must \
     PULL by reading) but pays a delay-sensitive premium as d grows \
     (Thm 5.5); the emulations pay ~d per memory operation on top of \
     that.";
  emit tbl;
  (* and the asynchrony-only degradation of the original, for context *)
  let tbl2 =
    Table.create
      ~title:"E18b: AW(4) shared-memory work under schedule adversaries"
      ~columns:[ "schedule"; "work"; "redundant" ]
  in
  List.iter
    (fun (name, schedule) ->
      let m = Doall_sharedmem.Write_all.run ~q:4 ~p ~t ~schedule () in
      Table.add_row tbl2
        [
          name;
          Table.cell_int m.Doall_sharedmem.Write_all.work;
          Table.cell_int (Doall_sharedmem.Write_all.redundant m);
        ])
    [
      ("fair (all step)", Doall_sharedmem.Write_all.fair);
      ("rotating width 4", Doall_sharedmem.Write_all.rotating ~width:4);
      ("random half", Doall_sharedmem.Write_all.random_subset ~seed:3 ~prob:0.5);
      ("solo", Doall_sharedmem.Write_all.solo 0);
    ];
  Table.add_note tbl2
    "pure scheduling adversity barely moves AW's work - with atomic \
     shared state, progress knowledge is never stale; staleness is \
     exactly what message delay buys the adversary in the other worlds";
  emit tbl2

(* ------------------------------------------------------------------ *)
(* E19. Graceful degradation: work vs message-loss rate.

   Outside the paper's model (its network never loses messages), so
   there is no theorem to pin — the claim under test is docs/FAULTS.md's:
   every algorithm stays live at any loss rate, and work degrades
   monotonically toward the oblivious p*t wall as the gossip channel
   closes. At 100% loss the cooperative algorithms ARE the trivial
   algorithm with postage. *)

let e19 () =
  let p = 16 and t = 64 and d = 4 in
  let algos = [ "paran1"; "padet"; "da-q4" ] in
  let seeds = [ 1; 2; 3 ] in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E19 (docs/FAULTS.md): mean work vs message-loss rate, max-delay, \
            p=%d t=%d d=%d (oblivious pt=%d)"
           p t d (p * t))
      ~columns:
        ("loss" :: List.concat_map (fun a -> [ a; a ^ "/pt" ]) algos)
  in
  let mean_work_at ~algo rate =
    (* rate 0.0 passes no policy at all, so the baseline row is the
       reliable network bit-for-bit (the fault branch draws no RNG when
       absent); checked runs keep the oracle on the whole sweep *)
    let faults =
      if rate > 0.0 then Some (Doall_adversary.Fault.drop ~prob:rate)
      else None
    in
    let sum =
      List.fold_left
        (fun acc seed ->
          let m =
            (Runner.run ~seed ?faults ~check:true ~algo ~adv:"max-delay" ~p
               ~t ~d ())
              .Runner.metrics
          in
          acc + m.Metrics.work)
        0 seeds
    in
    wf sum /. wf (List.length seeds)
  in
  List.iter
    (fun rate ->
      let cells =
        List.concat_map
          (fun algo ->
            let w = mean_work_at ~algo rate in
            [ Table.cell_float w; Table.cell_ratio w (wf (p * t)) ])
          algos
      in
      Table.add_row tbl (Table.cell_float ~decimals:2 rate :: cells))
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ];
  Table.add_note tbl
    "expected shape: work rises monotonically with loss and saturates at \
     the oblivious p*t wall (ratio ~1) once no gossip survives — DA(q) \
     lands slightly above it because unacknowledged coordinators keep \
     re-executing their phase; no run ever hangs: liveness never depended \
     on delivery (solo fallback)";
  emit tbl

(* ------------------------------------------------------------------ *)
(* perf: the wall-clock grid behind BENCH_N.json (see docs/PERFORMANCE.md).

   Scenarios are broadcast-heavy on purpose: PA-family algorithms
   broadcast on every performing step, so these runs live in the
   delivery + union_into hot path the calendar ring and the word-packed
   bitsets rearchitected. *)

let perf_scenarios ~quick =
  if quick then
    [ ("paran1", "max-delay", 64, 512, 8); ("da-q4", "max-delay", 64, 512, 8) ]
  else
    [
      ("paran1", "max-delay", 256, 4096, 16);
      ("padet", "max-delay", 256, 4096, 16);
      ("da-q4", "max-delay", 256, 4096, 16);
      ("paran1", "uniform-delay", 128, 2048, 32);
    ]

(* Wall-clock of the identical scenarios (seed 42) measured on the
   pre-rewrite engine — binary heap delivery, byte-packed bitsets,
   O(p)-scan scheduling — at commit b5fef56, in this repo's reference
   container, 2026-08-06. The perf run reports speedups against these. *)
let perf_seed_baseline =
  [
    ("paran1/max-delay/p256/t4096/d16", 17.351);
    ("padet/max-delay/p256/t4096/d16", 16.220);
    ("da-q4/max-delay/p256/t4096/d16", 0.159);
    ("paran1/uniform-delay/p128/t2048/d32", 1.843);
  ]

(* The end-to-end parallel grid: every scenario x seeds 1..6, fanned
   across Runner.run_grid at several domain counts. Per-run metrics are
   asserted byte-identical across all arms (the pool's determinism
   contract); the wall-clock ratio against the jobs=1 arm is the
   speedup row of BENCH_2.json. *)
let grid_scenarios ~quick =
  if quick then
    [ ("paran1", "max-delay", 64, 512, 8); ("da-q4", "max-delay", 64, 512, 8) ]
  else
    [
      ("paran1", "max-delay", 128, 2048, 16);
      ("padet", "max-delay", 128, 2048, 16);
      ("da-q4", "max-delay", 256, 4096, 16);
      ("paran1", "uniform-delay", 128, 2048, 32);
    ]

let grid_seeds ~quick = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6 ]

(* Compare the deterministic payload only: [wall_s] is machine noise and
   [obs] is None/None here, but keying on the fields keeps this honest if
   more nondeterministic ones appear. *)
let same_metrics (a : Runner.result list) (b : Runner.result list) =
  let key (r : Runner.result) =
    (r.Runner.metrics, r.Runner.algo, r.Runner.adv, r.Runner.seed)
  in
  List.length a = List.length b
  && List.for_all2 (fun x y -> key x = key y) a b

let perf ~quick ~out () =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "perf: wall-clock grid%s (seed 42)"
           (if quick then " [--quick]" else ""))
      ~columns:[ "scenario"; "W"; "M"; "wall_s"; "seed_s"; "speedup" ]
  in
  let results =
    List.map
      (fun (algo, adv, p, t, d) ->
        let key = Printf.sprintf "%s/%s/p%d/t%d/d%d" algo adv p t d in
        let t0 = Unix.gettimeofday () in
        let m = (Runner.run ~seed:42 ~algo ~adv ~p ~t ~d ()).Runner.metrics in
        let wall = Unix.gettimeofday () -. t0 in
        let seed_s = List.assoc_opt key perf_seed_baseline in
        Table.add_row tbl
          [
            key;
            Table.cell_int m.Metrics.work;
            Table.cell_int m.Metrics.messages;
            Printf.sprintf "%.3f" wall;
            (match seed_s with Some s -> Printf.sprintf "%.3f" s | None -> "-");
            (match seed_s with
             | Some s -> Printf.sprintf "%.1fx" (s /. wall)
             | None -> "-");
          ];
        (key, algo, adv, p, t, d, m, wall, seed_s))
      (perf_scenarios ~quick)
  in
  Table.add_note tbl
    "seed_s: same scenario on the pre-calendar-ring/pre-word-packed engine \
     (commit b5fef56); wall-clock is machine-dependent, the W/M columns are \
     not (golden-pinned)";
  emit tbl;
  (* -- the parallel grid -- *)
  let specs =
    List.concat_map
      (fun (algo, adv, p, t, d) ->
        List.map
          (fun seed -> Runner.spec ~seed ~algo ~adv ~p ~t ~d ())
          (grid_seeds ~quick))
      (grid_scenarios ~quick)
  in
  let arms =
    List.sort_uniq compare
      (if quick then [ 1; !jobs ] else [ 1; 2; 4; !jobs ])
  in
  (* Best-of-N wall clock per arm, with the major heap compacted before
     each round: the container's co-tenant load and leftover major-heap
     state from the scenario table above otherwise dominate the
     between-arm differences. Metrics are taken from the last round and
     asserted identical across arms below. *)
  let rounds = if quick then 1 else 2 in
  let measured =
    List.map
      (fun k ->
        let best = ref infinity and last = ref [] in
        for round = 1 to rounds do
          Gc.compact ();
          let t0 = Unix.gettimeofday () in
          let rs =
            with_progress
              ~label:(Printf.sprintf "perf grid j%d round %d/%d" k round rounds)
              ~total:(List.length specs)
              (fun on_cell -> Runner.run_grid ~jobs:k ~on_cell specs)
          in
          let wall = Unix.gettimeofday () -. t0 in
          if wall < !best then best := wall;
          last := rs
        done;
        (k, !best, !last))
      arms
  in
  let _, wall1, base_results =
    List.find (fun (k, _, _) -> k = 1) measured
  in
  let grid_tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "perf: end-to-end parallel grid, %d runs (%d scenarios x %d seeds)"
           (List.length specs)
           (List.length (grid_scenarios ~quick))
           (List.length (grid_seeds ~quick)))
      ~columns:[ "jobs"; "wall_s"; "speedup vs jobs=1"; "metrics identical" ]
  in
  let arm_rows =
    List.map
      (fun (k, wall, rs) ->
        let identical = same_metrics rs base_results in
        Table.add_row grid_tbl
          [
            Table.cell_int k;
            Printf.sprintf "%.3f" wall;
            Printf.sprintf "%.2fx" (wall1 /. wall);
            (if identical then "yes" else "NO");
          ];
        (k, wall, identical))
      measured
  in
  Table.add_note grid_tbl
    (Printf.sprintf
       "Runner.run_grid over a %d-domain pool (--jobs, default \
        recommended_domain_count=%d); wall_s is the min of %d round(s), \
        major heap compacted before each. Per-run metrics are \
        byte-identical across every arm by the pool's determinism \
        contract, so only wall-clock varies; speedup is capped by the \
        host's effective cores - see docs/PERFORMANCE.md for this \
        container's calibration."
       !jobs
       (Pool.default_jobs ()) rounds);
  emit grid_tbl;
  List.iter
    (fun (_, _, identical) ->
      if not identical then begin
        prerr_endline
          "FATAL: parallel grid metrics differ from the sequential arm";
        exit 1
      end)
    arm_rows;
  let _, best_wall, _ =
    List.fold_left
      (fun ((_, bw, _) as best) ((_, w, _) as arm) ->
        if w < bw then arm else best)
      (List.hd arm_rows) (List.tl arm_rows)
  in
  let scenario_json (key, algo, adv, p, t, d, (m : Metrics.t), wall, seed_s) =
    Json.Obj
      ([
         ("scenario", Json.Str key);
         ("algo", Json.Str algo);
         ("adversary", Json.Str adv);
         ("p", Json.Int p);
         ("t", Json.Int t);
         ("d", Json.Int d);
         ("work", Json.Int m.Metrics.work);
         ("messages", Json.Int m.Metrics.messages);
         ("sigma", Json.Int m.Metrics.sigma);
         ("wall_s", Json.Float wall);
       ]
      @
      match seed_s with
      | Some s ->
        [
          ("seed_wall_s", Json.Float s);
          ("speedup_vs_seed", Json.Float (s /. wall));
        ]
      | None -> [])
  in
  let arm_json (k, wall, identical) =
    Json.Obj
      [
        ("jobs", Json.Int k);
        ("wall_s", Json.Float wall);
        ("speedup_vs_jobs1", Json.Float (wall1 /. wall));
        ("metrics_identical", Json.Bool identical);
      ]
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Int 2);
        ( "description",
          Json.Str
            "wall-clock grid over broadcast-heavy (algo x adversary x p,t,d) \
             scenarios, plus the end-to-end parallel-grid speedup of the \
             domain-pool runner; second point of the perf trajectory" );
        ("quick", Json.Bool quick);
        ( "baseline",
          Json.Obj
            [
              ("commit", Json.Str "b5fef56");
              ( "engine",
                Json.Str
                  "binary-heap delivery, byte-packed bitsets, O(p) tick scans"
              );
              ("measured", Json.Str "2026-08-06");
              ( "wall_s",
                Json.Obj
                  (List.map
                     (fun (key, s) -> (key, Json.Float s))
                     perf_seed_baseline) );
            ] );
        ("results", Json.List (List.map scenario_json results));
        ( "parallel_grid",
          Json.Obj
            [
              ("runs", Json.Int (List.length specs));
              ("scenarios", Json.Int (List.length (grid_scenarios ~quick)));
              ("seeds", Json.Int (List.length (grid_seeds ~quick)));
              ("recommended_domain_count", Json.Int (Pool.default_jobs ()));
              ("minor_heap_words", Json.Int (Gc.get ()).Gc.minor_heap_size);
              ("rounds", Json.Int rounds);
              ("arms", Json.List (List.map arm_json arm_rows));
              ("best_speedup", Json.Float (wall1 /. best_wall));
              ( "note",
                Json.Str
                  "per-run metrics byte-identical across all arms (asserted \
                   at generation time); wall-clock speedup is bounded by the \
                   host's effective core count - this container exposes 2 \
                   vCPUs with a measured two-process ceiling of ~1.5x, see \
                   docs/PERFORMANCE.md; 4-core CI-class hardware is the >=2x \
                   target" );
            ] );
      ]
  in
  let oc = open_out out in
  Json.pp_to_channel oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks.                                           *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let bitset_union =
    let a = Bitset.create 4096 and b = Bitset.create 4096 in
    for i = 0 to 4095 do
      if i mod 3 = 0 then Bitset.set a i;
      if i mod 5 = 0 then Bitset.set b i
    done;
    Test.make ~name:"bitset-union-4096"
      (Staged.stage (fun () ->
           let dst = Bitset.copy a in
           Bitset.union_into ~dst b))
  in
  let bitset_union_absorbed =
    (* The engine's steady state: knowledge is monotone, so most incoming
       sets are already contained in the destination and union_into is a
       read-only sweep. *)
    let dst = Bitset.create 4096 and src = Bitset.create 4096 in
    for i = 0 to 4095 do
      if i mod 2 = 0 then Bitset.set dst i;
      if i mod 4 = 0 then Bitset.set src i
    done;
    Bitset.union_into ~dst src;
    Test.make ~name:"bitset-union-absorbed-4096"
      (Staged.stage (fun () -> Bitset.union_into ~dst src))
  in
  let bitset_first_missing =
    let b = Bitset.create 4096 in
    for i = 0 to 4000 do
      Bitset.set b i
    done;
    Test.make ~name:"bitset-first-missing-4096"
      (Staged.stage (fun () -> ignore (Bitset.first_missing b)))
  in
  let bitset_iter_set =
    let b = Bitset.create 4096 in
    for i = 0 to 4095 do
      if i mod 7 = 0 then Bitset.set b i
    done;
    Test.make ~name:"bitset-iter-set-4096"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Bitset.iter_set b (fun i -> acc := !acc + i);
           ignore !acc))
  in
  (* Steady-state delivery: one "tick" = 63 sends into the future plus a
     drain of what is due now, mimicking a broadcast to p-1 = 63 peers.
     The ring and heap variants run identical traffic. *)
  let equeue_bench name q =
    let now = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr now;
           for i = 0 to 62 do
             Event_queue.add q ~time:(!now + 1 + (i mod 8)) i
           done;
           Event_queue.drain_due q ~now:!now (fun _ -> ())))
  in
  let equeue_ring =
    equeue_bench "equeue-ring-tick-63send-d8" (Event_queue.create ~horizon:8 ())
  in
  let equeue_heap =
    equeue_bench "equeue-heap-tick-63send-d8" (Event_queue.create ())
  in
  let dlrm =
    let rng = Rng.create 1 in
    let pi = Perm.random rng 1024 in
    Test.make ~name:"d-lrm-1024"
      (Staged.stage (fun () -> ignore (Lrm.d_lrm ~d:8 pi)))
  in
  let cont =
    let rng = Rng.create 2 in
    let psi = Gen.random_list ~rng ~n:64 ~count:64 in
    let rho = Perm.random rng 64 in
    Test.make ~name:"contention-wrt-64x64"
      (Staged.stage (fun () -> ignore (Contention.contention_wrt psi ~rho)))
  in
  let tree_marks =
    Test.make ~name:"progress-tree-marks-q4-1e3"
      (Staged.stage (fun () ->
           ignore
             (Progress_tree.initial_marks
                (Progress_tree.shape ~q:4 ~jobs:1000))))
  in
  let engine_run =
    Test.make ~name:"engine-paran1-p16-t64"
      (Staged.stage (fun () ->
           let cfg = Config.make ~seed:7 ~p:16 ~t:64 () in
           ignore
             (Engine.run_packed (Algo_pa.make_ran1 ()) cfg ~d:4
                ~adversary:Adversary.fair ())))
  in
  let engine_run_probed =
    (* The same cell as engine-paran1-p16-t64 with live probes attached:
       the pair brackets the instrumentation overhead at micro scale
       (the `obs` bench id measures the paper-scale cell). *)
    Test.make ~name:"engine-paran1-p16-t64-probed"
      (Staged.stage (fun () ->
           let cfg = Config.make ~seed:7 ~p:16 ~t:64 () in
           let probe = Probe.create () in
           ignore
             (Engine.run_packed (Algo_pa.make_ran1 ()) cfg ~d:4
                ~adversary:Adversary.fair ~probe ())))
  in
  let engine_da =
    Test.make ~name:"engine-da-q4-p16-t64"
      (Staged.stage (fun () ->
           let cfg = Config.make ~seed:7 ~p:16 ~t:64 () in
           ignore
             (Engine.run_packed (Algo_da.make ~q:4 ()) cfg ~d:4
                ~adversary:Adversary.fair ())))
  in
  let rng_bench =
    let rng = Rng.create 3 in
    Test.make ~name:"rng-int"
      (Staged.stage (fun () -> ignore (Rng.int rng 1000)))
  in
  let pool_grid =
    (* Grid dispatch through the reusable pool: measures the pool's
       per-batch overhead (queueing, condition signalling, slot
       collection) on top of the 8 simulation runs themselves. *)
    let pool = shared_pool () in
    let specs =
      Runner.grid
        ~seeds:[ 1; 2; 3; 4 ]
        ~algos:[ "paran1"; "da-q4" ]
        ~advs:[ "fair" ]
        ~points:[ (16, 64, 4) ]
        ()
    in
    Test.make
      ~name:(Printf.sprintf "pool-grid-8runs-j%d" (Pool.jobs pool))
      (Staged.stage (fun () -> ignore (Runner.run_grid ~pool specs)))
  in
  let tests =
    Test.make_grouped ~name:"doall"
      [
        bitset_union;
        bitset_union_absorbed;
        bitset_first_missing;
        bitset_iter_set;
        equeue_ring;
        equeue_heap;
        dlrm;
        cont;
        tree_marks;
        engine_run;
        engine_run_probed;
        engine_da;
        rng_bench;
        pool_grid;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  print_endline "== microbenchmarks (ns per run, OLS on monotonic clock) ==";
  Hashtbl.iter
    (fun _label per_test ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %14.1f ns\n" name est
          | Some ests ->
            Printf.printf "  %-36s %s\n" name
              (String.concat ", " (List.map (Printf.sprintf "%.1f") ests))
          | None -> Printf.printf "  %-36s (no estimate)\n" name)
        per_test)
    results

(* ------------------------------------------------------------------ *)
(* Probe overhead: the "zero-cost when disabled, cheap when enabled"
   claim of lib/obs, measured on the broadcast-heavy paper-scale cell
   (the same paran1/max-delay scenario the perf table tracks). The
   measured ratio is recorded in docs/OBSERVABILITY.md; target < 5%. *)

let obs_overhead ~quick () =
  let p, t, d = if quick then (64, 512, 8) else (256, 4096, 16) in
  let run_cell probe =
    let adversary =
      (Runner.find_adv "max-delay").Runner.instantiate ~p ~t ~d
    in
    let cfg = Config.make ~seed:42 ~p ~t () in
    Engine.run_packed (Algo_pa.make_ran1 ()) cfg ~d ~adversary ?probe ()
  in
  let timed probe =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let m = run_cell probe in
    (Unix.gettimeofday () -. t0, m)
  in
  (* This cell runs for seconds, so best-of-N interleaved wall clock
     beats a sampling harness here: the min discards co-tenant noise,
     and alternating the arms exposes both to the same machine state.
     (Bechamel covers the micro scale: engine-paran1-p16-t64[-probed].) *)
  let rounds = if quick then 7 else 4 in
  let off_best = ref infinity and on_best = ref infinity in
  let off_m = ref None and on_m = ref None in
  ignore (run_cell None) (* warm up code paths and the major heap *);
  for _ = 1 to rounds do
    let w, m = timed None in
    if w < !off_best then off_best := w;
    off_m := Some m;
    let w, m = timed (Some (Probe.create ())) in
    if w < !on_best then on_best := w;
    on_m := Some m
  done;
  if !off_m <> !on_m then begin
    prerr_endline "FATAL: metrics differ between probe-on and probe-off";
    exit 1
  end;
  Printf.printf "== probe overhead: paran1/max-delay p=%d t=%d d=%d ==\n" p t d;
  Printf.printf "  probe-off  %10.3f ms/run (best of %d)\n"
    (!off_best *. 1e3) rounds;
  Printf.printf "  probe-on   %10.3f ms/run (best of %d)\n"
    (!on_best *. 1e3) rounds;
  Printf.printf "  overhead   %+.2f%% (target < 5%%, docs/OBSERVABILITY.md)\n"
    (((!on_best /. !off_best) -. 1.) *. 100.);
  print_string "  metrics identical across arms: yes\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("fig1", fig1);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("e17", e17);
    ("e18", e18);
    ("e19", e19);
  ]

let () =
  (* Stop-the-world minor collections serialize the domain pool: with the
     default 256k-word minor heap the parallel grid is *slower* than
     sequential (every broadcast-heavy run allocates fresh bitsets). 2M
     words per domain keeps the rendezvous rate low enough to scale; set
     before any timing so the jobs=1 and jobs=N arms run under the same
     GC (docs/PERFORMANCE.md has the calibration). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2 * 1024 * 1024 };
  Doall_quorum.Register.install ();
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = ref false in
  let perf_out = ref "BENCH_2.json" in
  let rec strip_flags acc = function
    | "--csv" :: dir :: rest ->
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      csv_dir := Some dir;
      strip_flags acc rest
    | "--quick" :: rest ->
      quick := true;
      strip_flags acc rest
    | "--out" :: path :: rest ->
      perf_out := path;
      strip_flags acc rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | _ ->
         Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
         exit 2);
      strip_flags acc rest
    | x :: rest -> strip_flags (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_flags [] args in
  let requested =
    match args with
    | [] | [ "all" ] -> List.map fst experiments
    | args -> args
  in
  List.iter
    (fun id ->
      if id = "micro" then micro ()
      else if id = "perf" then perf ~quick:!quick ~out:!perf_out ()
      else if id = "obs" then obs_overhead ~quick:!quick ()
      else
        match List.assoc_opt id experiments with
        | Some run ->
          run ();
          print_newline ()
        | None ->
          Printf.eprintf
            "unknown experiment %S (known: %s, micro, perf, obs)\n" id
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested
