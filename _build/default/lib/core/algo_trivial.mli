(** The communication-oblivious baseline.

    Every processor performs all [t] tasks by itself and never sends a
    message: work [Theta(p * t)], message complexity 0 (Section 1). It is
    unbeatable when [d >= t] (Proposition 2.2) and the yardstick every
    delay-sensitive algorithm must beat when [d = o(t)].

    Each processor performs tasks starting from its own offset
    [pid * t / p] (wrapping around), which spreads first executions
    without any coordination; with offset disabled all processors march
    in identical order. Either way a processor halts only after having
    performed every task itself — it can learn completion no other
    way. *)

val make : ?staggered:bool -> unit -> Doall_sim.Algorithm.packed
(** [staggered] (default [true]) enables the per-processor offset. *)
