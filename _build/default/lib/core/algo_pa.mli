(** The permutation algorithms PA (Section 6).

    The common shell (Fig. 4): while a processor has not ascertained that
    all tasks are complete, it performs one not-known-done task from its
    local list and multicasts its knowledge; received knowledge prunes
    the list. One local step = one task performance plus one broadcast
    submission, so work equals the number of task performances (the
    accounting of Lemma 6.1) and message complexity is [(p-1) * W]
    (Theorems 6.2 and 6.3).

    The three specializations differ only in [Order] / [Select]:

    - {b PaRan1}: each processor draws one uniformly random permutation
      of the jobs up front and follows it.
    - {b PaRan2}: each selection is uniform among the not-known-done
      jobs ([O(EW log t)] random bits instead of [p n log n]).
    - {b PaDet}: processor [pid] follows the [pid]-th permutation of a
      fixed list [psi]; with [psi] of low d-contention, work is bounded
      by [(d)-Cont(psi)] against every d-adversary (Lemma 6.1), giving
      [O(t log p + p d log(2 + t/d))] (Corollary 6.5). The default
      [psi] instantiates Corollary 4.5 by the probabilistic method: a
      random list from a fixed seed, the paper's own construction.

    With [p < t], jobs of [ceil(t/p)] tasks replace tasks throughout
    (Section 6's parameterization); a job's member tasks are performed
    on consecutive steps. *)

val make_ran1 :
  ?gossip:[ `Full | `Single ] ->
  ?broadcast_every:int ->
  ?fanout:int ->
  unit ->
  Doall_sim.Algorithm.packed

val make_ran2 :
  ?gossip:[ `Full | `Single ] ->
  ?broadcast_every:int ->
  ?fanout:int ->
  unit ->
  Doall_sim.Algorithm.packed

val make_det :
  ?gossip:[ `Full | `Single ] ->
  ?broadcast_every:int ->
  ?fanout:int ->
  ?psi:Doall_perms.Perm.t list ->
  unit ->
  Doall_sim.Algorithm.packed
(** An explicit [psi] must hold permutations of size [min(p, t)]; when it
    has fewer than [p] entries, processor [pid] uses entry
    [pid mod length].

    [gossip] is an ablation knob (default [`Full], the paper's model):
    [`Single] broadcasts only the task just performed instead of the
    processor's whole knowledge set, weakening information propagation —
    used by the benchmark harness to show the knowledge model of
    Lemma 6.1 is load-bearing.

    [broadcast_every] (default 1, the paper's algorithm) is an
    {e extension} addressing the paper's closing open problem of
    controlling work and message complexity simultaneously: broadcast
    only on every k-th performing step (and always when the local
    knowledge set fills). k > 1 divides message complexity by roughly k
    at the cost of extra redundant work; benchmark E14 maps the
    trade-off.

    [fanout] (default: broadcast to all p-1) is a second extension in
    the same spirit, after the "inexpensive gossip" line of work the
    paper cites as [12]: send knowledge to [fanout] uniformly random
    destinations instead of everyone, replacing the p-1 multicast by k
    unicasts. Note this adds coin flips to PaDet's sends (its task
    schedule stays deterministic). Benchmark E16 maps this trade-off. *)

val det_list_seed : int
(** The fixed seed from which PaDet's default schedule list derives. *)
