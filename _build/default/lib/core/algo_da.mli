(** Algorithm DA(q) (Section 5): the message-passing re-interpretation of
    the Anderson-Woll shared-memory algorithm.

    Every processor keeps a {e local replica} of the q-ary progress tree;
    where the shared-memory algorithm writes a node, DA multicasts its
    whole replica, and where it reads, DA consults the replica (updated
    whenever a multicast arrives). The traversal is the recursive
    post-order search [Dowork] of Fig. 3, driven at interior depth [m] by
    the permutation [pi_{x\[m\]}] chosen by the [m]-th q-ary digit of the
    processor id; we realize the recursion as an explicit frame stack so
    that each simulated local step does constant bookkeeping:

    - one step per child-pointer check (skipping a known-done subtree),
    - one step per descent into a subtree,
    - one step per task performed at a leaf (a leaf's job of [k] tasks
      takes [k] consecutive steps),
    - one step per node completion, which is also when the processor
      multicasts (leaf completions and interior completions, exactly the
      broadcast points of Fig. 3).

    With [p <= t], tasks are pre-grouped into [min(p,t)] jobs
    (Section 5.1.3). Work is [O(t p^e + p min(t,d) ceil(t/d)^e)] for a
    suitable constant [q = q(e)] (Theorems 5.4 and 5.5), and message
    complexity is [O(p W)] (Theorem 5.6).

    The permutation list [psi] defaults to a certified low-contention
    list from {!Doall_perms.Search.certified} (cached per [q]). *)

val make :
  ?q:int -> ?psi:Doall_perms.Perm.t list -> unit -> Doall_sim.Algorithm.packed
(** [make ~q ()] with [2 <= q <= 8] for the default certified list; an
    explicit [psi] must contain exactly [q] permutations of size [q]
    (any [q >= 2] is then accepted). Default [q = 4]. *)

val default_psi : q:int -> Doall_perms.Perm.t list
(** The cached certified list used by [make] for this [q]. *)
