(** The q-ary boolean progress tree of Algorithm DA (Section 5.1.1).

    A complete q-ary tree with [q^h] leaves stored as a flat array:
    node 0 is the root and the children of interior node [v] are
    [q*v + 1 .. q*v + q]. Jobs are associated with the leaves; a node's
    bit means "every task in the subtree rooted here has been performed".
    The number of nodes is [(q^{h+1} - 1)/(q - 1)].

    When the number of jobs is not a power of [q], the tail leaves are
    {e dummies}: pre-marked done at initialization (the paper's padding
    argument), together with any interior node all of whose descendants
    are dummies, so that no processor ever spends steps on padding. *)

type t = private {
  q : int;
  h : int;  (** height; leaves have depth [h] *)
  leaves : int;  (** [q^h] *)
  size : int;  (** total nodes *)
  first_leaf : int;
  jobs : int;  (** real (non-dummy) leaves: [jobs <= leaves] *)
}

val shape : q:int -> jobs:int -> t
(** Smallest complete q-ary tree with at least [jobs] leaves. Requires
    [q >= 2], [jobs >= 1]. *)

val root : int
val is_leaf : t -> int -> bool
val child : t -> int -> int -> int
(** [child sh v j] is the [j]-th child ([0 <= j < q]) of interior [v]. *)

val parent : t -> int -> int
val depth : t -> int -> int
val leaf_of_job : t -> int -> int
val job_of_leaf : t -> int -> int
(** Partial inverse of {!leaf_of_job}; dummy leaves raise
    [Invalid_argument]. *)

val is_dummy_leaf : t -> int -> bool

val initial_marks : t -> Doall_sim.Bitset.t
(** A node bitset (capacity [size]) with every dummy leaf and every
    all-dummy interior node pre-marked. *)

val subtree_jobs : t -> int -> int list
(** Real jobs under node [v] (inclusive if [v] is itself a leaf). *)
