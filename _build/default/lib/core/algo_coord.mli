(** A synchronous-style coordinator algorithm (the [10]-family baseline).

    The paper's introduction observes that the substantial synchronous
    Do-All literature (Dwork-Halpern-Waarts [9], De Prisco-Mayer-Yung
    [10], Chlebus et al. [5], ...) relies on processor synchrony and
    constant message delay, and that "it is not clear how such
    algorithms can be adapted to deal with asynchrony". This module
    makes that observation measurable: a faithful-in-spirit
    coordinator-based algorithm whose efficiency rests on timely
    round-trips, run inside the asynchronous engine.

    Protocol (epochs with rotating coordinators, as in [10]):

    - epoch [e]'s coordinator is processor [e mod p];
    - the coordinator partitions the tasks it does not know done into
      [p] chunks, unicasts an [Assign] to every processor, performs its
      own chunk, collects [Report]s, merges, broadcasts a [Summary] and
      moves to epoch [e+1];
    - workers perform their chunk and report; a [Summary] advances their
      epoch.

    Asynchrony is handled the only way a synchrony-assuming algorithm
    can: {e fixed timeouts} ([patience], default 8 local steps — "the
    network is fast" is baked in). A processor that waits in vain first
    falls back to performing tasks from its own rotation (so Do-All is
    always solved — the survivor-liveness contract holds), and after
    long silence unilaterally advances its epoch, eventually becoming
    coordinator itself.

    The measurable consequence (benchmark E15): at [d] small relative to
    [patience] the algorithm is efficient and frugal with messages, but
    as [d] grows past the timeout its suspicion is always wrong — chunks
    get reassigned, epochs thrash, the fallback does the real work — and
    work degrades {e non-gracefully} compared to DA/PA at the same [d].
    Delay-sensitivity is precisely what this design lacks. *)

val make : ?patience:int -> unit -> Doall_sim.Algorithm.packed
(** [patience >= 1] (default 8): local steps a processor waits on the
    network before acting unilaterally. *)
