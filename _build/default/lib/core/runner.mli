(** Wiring: named algorithms x named adversaries x (p, t, d) -> metrics.

    The registries give the CLI, the examples, the tests and the
    benchmark harness one shared vocabulary. Adversary constructors are
    invoked per run because the lower-bound adversaries are stateful. *)

open Doall_sim

type algo_spec = {
  algo_name : string;
  doc : string;
  make : unit -> Algorithm.packed;
  deterministic : bool;
      (** true when the algorithm draws no coins (DA, PaDet, trivial) *)
  liveness : [ `Any_survivor | `Needs_quorum ];
      (** [`Any_survivor]: terminates whenever at least one processor
          keeps taking steps (the paper's standard condition).
          [`Needs_quorum]: additionally requires a quorum of processors
          to keep taking steps (e.g. {!Doall_quorum.Algo_awq}); under
          quorum-killing adversaries such runs honestly fail to
          complete. *)
}

type adv_spec = {
  adv_name : string;
  adv_doc : string;
  instantiate : p:int -> t:int -> d:int -> Adversary.t;
}

val algorithms : algo_spec list
(** The built-ins: trivial, paran1, paran2, padet, da-q2 .. da-q8. *)

val register_algorithm : algo_spec -> unit
(** Add (or replace) an externally provided algorithm; built-in names are
    protected ([Invalid_argument]). Used by [Doall_quorum.Register]. *)

val all_algorithms : unit -> algo_spec list
(** Built-ins plus everything registered so far. *)

val adversaries : adv_spec list
(** fair, max-delay, uniform-delay, batch, solo, round-robin,
    harmonic, random-half, laggard, lb-det, lb-rand, lb-rand-random,
    crash-half, crash-all-but-one, crash-staggered. *)

val find_algo : string -> algo_spec
(** Raises [Failure] with a message listing known names. *)

val find_adv : string -> adv_spec

type result = { metrics : Metrics.t; algo : string; adv : string; seed : int }

val run :
  ?seed:int ->
  ?max_time:int ->
  algo:string ->
  adv:string ->
  p:int ->
  t:int ->
  d:int ->
  unit ->
  result
(** One simulation. Raises [Failure] if the run hits its time cap
    without completing (that would be an algorithm bug, not data). *)

val run_traced :
  ?seed:int ->
  ?max_time:int ->
  algo:string ->
  adv:string ->
  p:int ->
  t:int ->
  d:int ->
  unit ->
  result * Trace.t

val average_work :
  ?seeds:int list ->
  algo:string ->
  adv:string ->
  p:int ->
  t:int ->
  d:int ->
  unit ->
  float * float
(** Mean work and mean messages over the given seeds (default 5 seeds),
    for estimating expected complexity of the randomized algorithms. *)
