lib/core/oblido.ml: Algorithm Array Bitset Config Doall_perms Doall_sim Fun Hashtbl List Perm Rng Task
