lib/core/task.ml: Array Bitset Doall_sim List
