lib/core/progress_tree.ml: Bitset Doall_sim
