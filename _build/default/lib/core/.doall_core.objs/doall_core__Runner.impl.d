lib/core/runner.ml: Adversary Algo_coord Algo_da Algo_pa Algo_trivial Algorithm Config Crash Delay Doall_adversary Doall_sim Engine Lb_deterministic Lb_randomized List Metrics Printf Schedule String
