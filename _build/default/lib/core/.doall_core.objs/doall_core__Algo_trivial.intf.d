lib/core/algo_trivial.mli: Doall_sim
