lib/core/algo_da.ml: Algorithm Array Bitset Config Doall_perms Doall_sim Hashtbl List Perm Printf Progress_tree Qary Rng Search Task
