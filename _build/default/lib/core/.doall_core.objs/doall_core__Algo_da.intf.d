lib/core/algo_da.mli: Doall_perms Doall_sim
