lib/core/algo_coord.mli: Doall_sim
