lib/core/algo_pa.mli: Doall_perms Doall_sim
