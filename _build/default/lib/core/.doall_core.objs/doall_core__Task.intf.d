lib/core/task.mli: Doall_sim
