lib/core/runner.mli: Adversary Algorithm Doall_sim Metrics Trace
