lib/core/progress_tree.mli: Doall_sim
