lib/core/oblido.mli: Doall_perms Doall_sim Perm
