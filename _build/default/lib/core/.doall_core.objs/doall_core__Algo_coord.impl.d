lib/core/algo_coord.ml: Algorithm Array Bitset Config Doall_sim List
