lib/core/algo_trivial.ml: Algorithm Bitset Config Doall_sim
