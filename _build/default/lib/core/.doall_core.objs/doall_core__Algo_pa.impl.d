lib/core/algo_pa.ml: Algorithm Array Bitset Config Doall_perms Doall_sim Gen List Perm Printf Rng Task
