open Doall_sim

type t = {
  q : int;
  h : int;
  leaves : int;
  size : int;
  first_leaf : int;
  jobs : int;
}

let shape ~q ~jobs =
  if q < 2 then invalid_arg "Progress_tree.shape: q >= 2";
  if jobs < 1 then invalid_arg "Progress_tree.shape: jobs >= 1";
  let rec grow h leaves = if leaves >= jobs then (h, leaves) else grow (h + 1) (leaves * q) in
  let h, leaves = grow 0 1 in
  (* size = 1 + q + q^2 + .. + q^h *)
  let rec total acc pow k = if k > h then acc else total (acc + pow) (pow * q) (k + 1) in
  let size = total 0 1 0 in
  { q; h; leaves; size; first_leaf = size - leaves; jobs }

let root = 0

let check sh v =
  if v < 0 || v >= sh.size then invalid_arg "Progress_tree: node out of range"

let is_leaf sh v =
  check sh v;
  v >= sh.first_leaf

let child sh v j =
  check sh v;
  if is_leaf sh v then invalid_arg "Progress_tree.child: leaf has no children";
  if j < 0 || j >= sh.q then invalid_arg "Progress_tree.child: branch out of range";
  (sh.q * v) + 1 + j

let parent sh v =
  check sh v;
  if v = 0 then invalid_arg "Progress_tree.parent: root";
  (v - 1) / sh.q

let depth sh v =
  check sh v;
  let rec go v acc = if v = 0 then acc else go ((v - 1) / sh.q) (acc + 1) in
  go v 0

let leaf_of_job sh j =
  if j < 0 || j >= sh.jobs then invalid_arg "Progress_tree.leaf_of_job";
  sh.first_leaf + j

let is_dummy_leaf sh v =
  is_leaf sh v && v - sh.first_leaf >= sh.jobs

let job_of_leaf sh v =
  if not (is_leaf sh v) then invalid_arg "Progress_tree.job_of_leaf: not a leaf";
  if is_dummy_leaf sh v then invalid_arg "Progress_tree.job_of_leaf: dummy leaf";
  v - sh.first_leaf

let initial_marks sh =
  let b = Bitset.create sh.size in
  for v = sh.first_leaf + sh.jobs to sh.size - 1 do
    Bitset.set b v
  done;
  (* Mark interior nodes whose children are all marked, bottom-up. *)
  for v = sh.first_leaf - 1 downto 0 do
    let all = ref true in
    for j = 0 to sh.q - 1 do
      if not (Bitset.mem b (child sh v j)) then all := false
    done;
    if !all then Bitset.set b v
  done;
  b

let subtree_jobs sh v =
  check sh v;
  let acc = ref [] in
  let rec go v =
    if is_leaf sh v then begin
      if not (is_dummy_leaf sh v) then acc := job_of_leaf sh v :: !acc
    end
    else
      for j = sh.q - 1 downto 0 do
        go (child sh v j)
      done
  in
  go v;
  !acc
