(** Algorithm ObliDo (Fig. 2) and primary-execution accounting.

    ObliDo runs [n] processors over [n] jobs with {e no} coordination:
    processor [u] performs jobs in the order of its permutation [pi_u],
    blindly, for a total of [n^2] executions. Its interest is
    analytical: an execution of a job is {e primary} if the job had not
    been completed in any earlier round (several processors may perform
    the same job concurrently for the first time — all of those are
    primary); Lemma 4.2 bounds the primary executions by [Cont(psi)],
    and this bound is what powers DA's recursion (Lemma 5.3).

    {!replay} is a pure round-based executor for measuring primaries
    under arbitrary interleavings; {!make} wraps ObliDo as an engine
    algorithm (it never communicates, so each processor halts only after
    performing its whole list). *)

open Doall_perms

type replay_stats = {
  executions : int;  (** total job executions, [<= n^2] *)
  primary : int;  (** executions of jobs with no earlier-round completion *)
  rounds_used : int;
}

val replay : psi:Perm.t list -> rounds:int list list -> replay_stats
(** [replay ~psi ~rounds]: [psi] gives each processor's schedule (size
    [n], one entry per processor). Each round lists the processors that
    take one step, concurrently; processors past the end of their
    schedule simply idle. If [rounds] is exhausted before every
    processor finishes, remaining steps run in lock-step rounds.
    Duplicate pids within a round raise [Invalid_argument]. *)

val lockstep_rounds : n:int -> count:int -> int list list
(** All [count] processors step in every round, [n] rounds — maximal
    concurrency. *)

val random_rounds :
  rng:Doall_sim.Rng.t -> n:int -> count:int -> prob:float -> int list list
(** Enough Bernoulli rounds ([prob] per processor per round) to let every
    processor finish. *)

val adversarial_rounds : psi:Perm.t list -> int list list
(** One processor at a time, always the processor whose next job has
    already been completed if one exists — an interleaving that pushes
    executions towards the primary bound. *)

val make : psi:Perm.t list -> unit -> Doall_sim.Algorithm.packed
(** Engine-compatible ObliDo over jobs of the standard partition;
    processor [pid] follows [psi]'s entry [pid mod length]. *)
