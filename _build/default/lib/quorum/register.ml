open Doall_core

let install () =
  List.iter
    (fun q ->
      Runner.register_algorithm
        {
          Runner.algo_name = Printf.sprintf "awq-q%d" q;
          doc =
            Printf.sprintf
              "Anderson-Woll AW(%d) over quorum-replicated memory (Sec. 1.1 \
               emulation route)"
              q;
          make = (fun () -> Algo_awq.make ~q ());
          deterministic = true;
          liveness = `Needs_quorum;
        })
    [ 2; 4; 8 ];
  Runner.register_algorithm
    {
      Runner.algo_name = "awq-abd-q4";
      doc =
        "AW(4) over full two-phase ABD atomic registers (general \
         emulation, cf. [3,18])";
      make = (fun () -> Algo_awq.make ~q:4 ~protocol:`Abd ());
      deterministic = true;
      liveness = `Needs_quorum;
    }
