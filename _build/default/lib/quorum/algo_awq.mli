(** AWQ: the Anderson-Woll algorithm over quorum-replicated memory.

    The emulation route of Section 1.1 ([16,19], Momenzadeh et al.),
    built so the paper's comparison of approaches is executable. Every
    processor plays two roles:

    - {b server}: holds a full replica of the progress tree; answers
      READ/WRITE requests on tree nodes and applies writes to its
      replica;
    - {b client}: runs the recursive Anderson-Woll traversal (the same
      q-ary tree, digit-selected permutations and post-order search as
      {!Doall_core.Algo_da}), but where DA consults its local replica and
      multicasts, AWQ performs {e memory operations}: a request is
      multicast to all processors and the operation completes when a
      quorum (default: majority, counting the issuer's own replica) has
      responded. While an operation is in flight the client can only
      wait — and every waiting step is charged, which is precisely why
      this approach needs delays [O(K)] (K the quorum size) to stay
      subquadratic, as the paper notes.

    Two register protocols are provided ([?protocol]):

    - [`Monotone] (default): exploits that tree bits only ever go 0 to 1
      — single-phase operations, a READ completes early on the first
      value-1 response (one witness proves the subtree done);
    - [`Abd]: the full two-phase Attiya-Bar-Noy-Dolev emulation the
      general constructions [3,18] the paper cites would use —
      timestamped replicas, a quorum {e query} phase followed by a
      quorum {e store} phase for writes {b and} reads (readers write
      back what they read). Roughly doubles the round trips per
      operation; benchmark E13 measures the gap.

    In both protocols, bits the client has ever seen at 1 are cached
    locally and never re-read (legal under monotone values).

    {b Liveness differs from DA/PA by design}: if crashes (or permanent
    scheduling starvation) leave fewer than a quorum of processors
    taking steps, in-flight operations never complete and Do-All is
    never solved — the engine's time cap reports it honestly. This is
    the paper's "quorum systems disabled by failures" caveat, reproduced
    as behaviour; benchmark E13 measures both sides. *)

val make :
  ?q:int ->
  ?psi:Doall_perms.Perm.t list ->
  ?quorum:(p:int -> Quorum.t) ->
  ?protocol:[ `Monotone | `Abd ] ->
  unit ->
  Doall_sim.Algorithm.packed
(** Same [q]/[psi] contract as {!Doall_core.Algo_da.make}; [quorum]
    defaults to {!Quorum.majority}; [protocol] defaults to
    [`Monotone]. *)
