lib/quorum/register.mli:
