lib/quorum/algo_awq.ml: Algo_da Algorithm Array Bitset Config Doall_core Doall_perms Doall_sim List Option Perm Printf Progress_tree Qary Quorum Task
