lib/quorum/algo_awq.mli: Doall_perms Doall_sim Quorum
