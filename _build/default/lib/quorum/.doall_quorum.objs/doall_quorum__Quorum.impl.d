lib/quorum/quorum.ml: Bitset Doall_sim Float Format
