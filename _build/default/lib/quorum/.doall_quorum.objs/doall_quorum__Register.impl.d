lib/quorum/register.ml: Algo_awq Doall_core List Printf Runner
