lib/quorum/quorum.mli: Doall_sim Format
