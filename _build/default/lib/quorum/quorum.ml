open Doall_sim

type t =
  | Threshold of { p : int; threshold : int }
  | Grid of { p : int; rows : int; cols : int }

let of_threshold ~p ~threshold =
  if p < 1 then invalid_arg "Quorum.of_threshold: p >= 1";
  if threshold < 1 || threshold > p then
    invalid_arg "Quorum.of_threshold: threshold must be in 1..p";
  Threshold { p; threshold }

let majority ~p = of_threshold ~p ~threshold:((p / 2) + 1)

let grid ~p ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Quorum.grid: dimensions >= 1";
  if rows * cols <> p then invalid_arg "Quorum.grid: rows * cols must equal p";
  Grid { p; rows; cols }

let square_grid ~p =
  if p < 1 then None
  else begin
    let s = int_of_float (Float.round (sqrt (float_of_int p))) in
    if s * s = p then Some (grid ~p ~rows:s ~cols:s) else None
  end

let size = function Threshold { p; _ } | Grid { p; _ } -> p

let threshold = function
  | Threshold { threshold; _ } -> threshold
  | Grid { rows; cols; _ } -> rows + cols - 1

let intersecting = function
  | Threshold { p; threshold } -> 2 * threshold > p
  | Grid _ -> true
(* any row meets any column *)

let check_capacity t responders =
  if Bitset.length responders <> size t then
    invalid_arg "Quorum.satisfied: responder set has the wrong capacity"

let satisfied t responders =
  check_capacity t responders;
  match t with
  | Threshold { threshold; _ } -> Bitset.cardinal responders >= threshold
  | Grid { rows; cols; _ } ->
    let full_row r =
      let rec go c =
        c >= cols || (Bitset.mem responders ((r * cols) + c) && go (c + 1))
      in
      go 0
    in
    let full_col c =
      let rec go r =
        r >= rows || (Bitset.mem responders ((r * cols) + c) && go (r + 1))
      in
      go 0
    in
    let rec any_row r = r < rows && (full_row r || any_row (r + 1)) in
    let rec any_col c = c < cols && (full_col c || any_col (c + 1)) in
    any_row 0 && any_col 0

let viable t ~live = satisfied t live

let viable_count t ~live =
  match t with
  | Threshold { threshold; _ } -> live >= threshold
  | Grid { rows; cols; _ } -> live >= rows + cols - 1

let pp ppf = function
  | Threshold { p; threshold } ->
    Format.fprintf ppf "quorum(%d-of-%d%s)" threshold p
      (if 2 * threshold > p then "" else ", non-intersecting")
  | Grid { rows; cols; _ } -> Format.fprintf ppf "quorum(grid %dx%d)" rows cols
