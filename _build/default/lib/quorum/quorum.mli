(** Quorum systems.

    The alternative route to asynchronous Do-All discussed in Section 1.1
    of the paper (following [16,19]) emulates a shared-memory algorithm
    over memory replicated at all processors, with operations completing
    once a {e quorum} acknowledges. Two classic constructions are
    provided:

    - {b threshold} systems: any set of at least [threshold] processors
      is a quorum; two quorums always intersect when
      [2 * threshold > p] — majorities guarantee it;
    - {b grid} systems ([rows * cols = p], processors arranged
      row-major): a quorum is a full row plus a full column
      ([O(sqrt p)] processors instead of [p/2], at the cost of less
      fault tolerance: losing one full row already kills every quorum).

    The decisive weakness the paper points out — "when processor failures
    damage quorum systems, the work of such algorithms becomes quadratic,
    even if message latency is constant" — is captured by {!satisfied}:
    once no quorum can be assembled from responsive processors, no
    operation ever completes. *)

type t

val majority : p:int -> t
(** Threshold [floor(p/2) + 1] — the standard majority system. *)

val of_threshold : p:int -> threshold:int -> t
(** Any threshold in [1..p]; raises [Invalid_argument] outside that
    range. Intersection (hence atomicity of the emulated memory) requires
    [2 * threshold > p]; smaller thresholds are allowed for experiments
    but {!intersecting} reports them. *)

val grid : p:int -> rows:int -> cols:int -> t
(** Requires [rows * cols = p], both positive. Processor [i] occupies
    row [i / cols], column [i mod cols]. A quorum is (a superset of) one
    full row union one full column; any two such sets intersect. *)

val square_grid : p:int -> t option
(** The [sqrt p x sqrt p] grid when [p] is a perfect square. *)

val size : t -> int
(** Number of processors [p]. *)

val threshold : t -> int
(** For threshold systems, the threshold; for a grid, the size of its
    smallest quorum ([rows + cols - 1]) — a lower bound on responders
    needed. *)

val intersecting : t -> bool
(** Whether every two quorums intersect (always true for grids). *)

val satisfied : t -> Doall_sim.Bitset.t -> bool
(** [satisfied q responders]: does the responder set contain a quorum?
    The bitset's capacity must be [size q]. *)

val viable : t -> live:Doall_sim.Bitset.t -> bool
(** Whether the live set can still assemble a quorum (same check as
    {!satisfied}; named for intent at call sites). *)

val viable_count : t -> live:int -> bool
(** Count-only viability: exact for threshold systems; for grids it is
    the {e optimistic} bound (enough live processors somewhere), since
    grid viability depends on which processors are live. *)

val pp : Format.formatter -> t -> unit
