(** Registry hookup for the quorum-based algorithms.

    Call {!install} once at program start to make ["awq-q2"], ["awq-q4"]
    and ["awq-q8"] available through {!Doall_core.Runner} by name (the
    CLI, benches and examples do). Idempotent. *)

val install : unit -> unit
