lib/adversary/delay.mli: Adversary Doall_sim
