lib/adversary/lb_randomized.ml: Adversary Array Doall_sim Hashtbl List Printf Rng
