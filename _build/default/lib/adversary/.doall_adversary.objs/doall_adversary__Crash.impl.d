lib/adversary/crash.ml: Adversary Delay Doall_sim Fun List Rng
