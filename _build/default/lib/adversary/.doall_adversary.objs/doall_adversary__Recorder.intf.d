lib/adversary/recorder.mli: Adversary Doall_sim
