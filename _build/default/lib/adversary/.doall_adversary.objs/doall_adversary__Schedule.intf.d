lib/adversary/schedule.mli: Adversary Delay Doall_sim
