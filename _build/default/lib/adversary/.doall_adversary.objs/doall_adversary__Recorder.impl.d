lib/adversary/recorder.ml: Adversary Array Doall_sim List
