lib/adversary/crash.mli: Adversary Doall_sim
