lib/adversary/lb_deterministic.mli: Adversary Doall_sim
