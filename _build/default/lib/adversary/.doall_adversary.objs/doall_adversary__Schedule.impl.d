lib/adversary/schedule.ml: Adversary Array Delay Doall_sim Rng
