lib/adversary/delay.ml: Adversary Doall_sim Rng
