lib/adversary/lb_deterministic.ml: Adversary Array Doall_sim Hashtbl List Printf
