lib/adversary/lb_randomized.mli: Adversary Doall_sim
