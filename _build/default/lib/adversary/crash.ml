open Doall_sim

type t = Adversary.oracle -> int list

let none = Adversary.no_crash

let at_time ~time ~pids (o : Adversary.oracle) =
  if o.time () = time then pids else []

let all_but_one ~survivor ~time (o : Adversary.oracle) =
  if o.time () = time then
    List.filter (fun pid -> pid <> survivor) (List.init o.p Fun.id)
  else []

let poisson ~rate (o : Adversary.oracle) =
  List.filter
    (fun pid -> o.alive pid && Rng.float o.rng 1.0 < rate)
    (List.init o.p Fun.id)

let staggered ~every (o : Adversary.oracle) =
  if every < 1 then invalid_arg "Crash.staggered: every >= 1";
  if o.time () mod every = 0 && o.time () > 0 then begin
    let rec lowest pid =
      if pid >= o.p then []
      else if o.alive pid then [ pid ]
      else lowest (pid + 1)
    in
    lowest 0
  end
  else []

let into ~name crash =
  {
    Adversary.name;
    schedule = Adversary.all_active;
    delay = Delay.immediate;
    crash;
  }
