(** Crash-failure patterns.

    The model admits any pattern of crash failures with at least one
    surviving processor (the engine enforces the survivor rule). Crashes
    can be seen as infinite delays; algorithms must remain correct and
    their work bounds hold regardless. *)

open Doall_sim

type t = Adversary.oracle -> int list

val none : t

val at_time : time:int -> pids:int list -> t
(** Crash exactly [pids] at [time]. *)

val all_but_one : survivor:int -> time:int -> t
(** At [time], crash every processor except [survivor] — the adversary's
    strongest legal crash pattern. *)

val poisson : rate:float -> t
(** Each unit, each live processor crashes independently with probability
    [rate] (engine keeps the last one alive). *)

val staggered : every:int -> t
(** Crash the lowest live pid every [every] time units. *)

val into : name:string -> t -> Adversary.t
(** Wrap with fair scheduling and immediate delivery. *)
