(** The online stage adversary of Theorem 3.4 (and Fig. 1), executable.

    Against a randomized algorithm the adversary cannot precompute
    [J_s(i)] — future coin flips are unknowable. The proof instead fixes
    a target set [J_s] at the start of each stage and defines the
    undelayed set [P_s] {e online}: every processor is let run until the
    moment it {e selects} a task in [J_s]; at that instant it is delayed
    to the end of the stage and drops out of [P_s] (exactly the picture
    in Fig. 1 of the paper). Lemma 3.3 shows a choice of [J_s] of size
    [u_s / (d+1)] exists for which at least [p/64] processors survive the
    stage undelayed, with high probability.

    Selection of [J_s] is pluggable, since the lemma's argmax over the
    distributions [p_i(Y)] is not computable in general:

    - [`Coverage]: least-covered tasks according to each processor's
      {e currently determined} plan (clone lookahead). Exact for
      algorithms whose schedule is already fixed in their state (PaDet;
      PaRan1 after its initial shuffle) — for these, lookahead reads
      present state, not future coins.
    - [`Random]: uniformly random subset of the undone tasks. The right
      choice against PaRan2, whose selection distribution is uniform —
      Lemma 3.3's objective is then constant over all candidate sets, so
      a random set is an optimal one, and the adversary stays honestly
      adaptive (no coin prediction enters the choice).

    The online delaying rule itself uses one-step lookahead
    ([would_perform]), which for a cloned generator equals observing the
    processor's selection as it happens — the Fig. 1 rule. *)

open Doall_sim

val create : ?selection:[ `Coverage | `Random ] -> unit -> Adversary.t
(** Default selection is [`Coverage]. Fresh instance per run. *)

val stages_of : Adversary.t -> (int * int * int list) list
(** [(stage_start, u_s, J_s)] history of the most recent run. *)
