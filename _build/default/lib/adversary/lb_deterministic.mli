(** The stage adversary of Theorem 3.1, executable.

    The proof's strategy, reproduced operationally:

    + Partition time into stages of [delta = min(d, t/6)] steps (at least
      1). All messages sent during a stage are delivered at its end —
      legal because [delta <= d].
    + At the start of stage [s], with [U_s] the still-unperformed tasks
      ([u_s = |U_s|]): compute, for every processor [i], the set
      [J_s(i)] of tasks from [U_s] that [i] would perform during the
      stage if undelayed and receiving nothing — obtained by cloning
      [i]'s state and stepping the clone in isolation (the adversary is
      omniscient and the algorithm deterministic, so this is exact).
    + By the pigeonhole claim in the proof, at least [u_s / (3 delta)]
      tasks lie in at most [2 p delta / u_s] of the [J_s(i)]; take
      [J_s] = the [max(1, u_s / (3 delta))] least-covered tasks.
    + Let [P_s = {i : J_s(i) /\ J_s = {}}] and delay every processor
      outside [P_s] for the whole stage.

    The effect: at least a third of the processors run all stage long,
    charging [>= p delta / 3] work, while every task of [J_s] survives
    the stage — so at least [u_s / (3 delta)] tasks remain, forcing
    [Omega(log_{3 delta} t)] stages and total work
    [Omega(p min(d,t) log_{d+1}(d+t))]. *)

open Doall_sim

val create : unit -> Adversary.t
(** Fresh instance (the adversary is stateful across a run; do not share
    one instance between runs). *)

val stages_of : Adversary.t -> (int * int * int list) list
(** Diagnostic history for the {e most recent} run using this instance:
    [(stage_start, u_s, J_s)] per stage, oldest first. *)
