(** Permutations of [{0, .., n-1}].

    The paper works with the symmetric group [S_n] (1-based [\[n\]] there;
    0-based here throughout). A permutation doubles as a {e schedule}: the
    order in which a processor intends to perform [n] jobs
    (Section 4). *)

type t
(** Immutable. [apply pi i] is the element in position [i] — i.e. the
    paper's [pi(i+1)]. *)

val of_array : int array -> t
(** Validates that the argument is a permutation of [0..n-1]; raises
    [Invalid_argument] otherwise. The array is copied. *)

val of_array_unsafe : int array -> t
(** Trusts and takes ownership of the array. For hot loops in search. *)

val to_array : t -> int array
(** A fresh copy. *)

val size : t -> int
val apply : t -> int -> int
val identity : int -> t
val reverse : int -> t
(** [<n-1, n-2, .., 0>] — the schedule that minimizes left-to-right maxima
    against the identity (see the two-processor discussion opening
    Section 4). *)

val rotation : int -> int -> t
(** [rotation n k] maps position [i] to [(i + k) mod n]. *)

val compose : t -> t -> t
(** [compose a b] is [a o b]: position [i] holds [a(b(i))]. Sizes must
    agree. *)

val inverse : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val is_valid : int array -> bool
(** Whether the array is a permutation of [0..n-1]. *)

val all : int -> t list
(** Every permutation of size [n], in lexicographic order. Intended for
    exhaustive contention computations; guarded to [n <= 9]. *)

val next_in_place : int array -> bool
(** Advance to the lexicographic successor; [false] (and a wrap to the
    identity) when the input was the last permutation. *)

val random : Doall_sim.Rng.t -> int -> t
(** Uniformly random permutation. *)

val pp : Format.formatter -> t -> unit
