let lrm_positions pi =
  let n = Perm.size pi in
  let best = ref min_int in
  let acc = ref [] in
  for j = 0 to n - 1 do
    let v = Perm.apply pi j in
    if v > !best then begin
      best := v;
      acc := j :: !acc
    end
  done;
  List.rev !acc

let lrm pi = List.length (lrm_positions pi)

(* Fenwick tree over values: [seen_gt j v] = number of earlier elements
   greater than v. *)
module Fenwick = struct
  type t = int array (* 1-based *)

  let create n : t = Array.make (n + 1) 0

  let add (tr : t) i =
    let i = ref (i + 1) in
    while !i < Array.length tr do
      tr.(!i) <- tr.(!i) + 1;
      i := !i + (!i land - !i)
    done

  (* count of added values <= v *)
  let prefix (tr : t) v =
    let i = ref (v + 1) in
    let s = ref 0 in
    while !i > 0 do
      s := !s + tr.(!i);
      i := !i - (!i land - !i)
    done;
    !s
end

let greater_before pi =
  let n = Perm.size pi in
  let tr = Fenwick.create n in
  let g = Array.make n 0 in
  for j = 0 to n - 1 do
    let v = Perm.apply pi j in
    let le = Fenwick.prefix tr v in
    g.(j) <- j - le;
    Fenwick.add tr v
  done;
  g

let d_lrm_profile pi =
  let n = Perm.size pi in
  let g = greater_before pi in
  let profile = Array.make (n + 1) 0 in
  (* position j is a d-lrm iff d > g.(j): bucket by g and prefix-sum *)
  let buckets = Array.make (n + 1) 0 in
  Array.iter (fun gv -> buckets.(min gv n) <- buckets.(min gv n) + 1) g;
  let acc = ref 0 in
  for d = 1 to n do
    acc := !acc + buckets.(d - 1);
    profile.(d) <- !acc
  done;
  profile

let d_lrm_positions ~d pi =
  if d < 1 then invalid_arg "Lrm.d_lrm: d must be >= 1";
  let n = Perm.size pi in
  let tr = Fenwick.create n in
  let acc = ref [] in
  for j = 0 to n - 1 do
    let v = Perm.apply pi j in
    let le = Fenwick.prefix tr v in
    let greater_before = j - le in
    if greater_before < d then acc := j :: !acc;
    Fenwick.add tr v
  done;
  List.rev !acc

let d_lrm ~d pi = List.length (d_lrm_positions ~d pi)
