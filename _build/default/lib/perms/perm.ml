open Doall_sim

type t = int array

let is_valid a =
  let n = Array.length a in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then ok := false else seen.(v) <- true)
    a;
  !ok

let of_array a =
  if not (is_valid a) then invalid_arg "Perm.of_array: not a permutation";
  Array.copy a

let of_array_unsafe a = a
let to_array p = Array.copy p
let size = Array.length
let apply p i = p.(i)
let identity n = Array.init n (fun i -> i)
let reverse n = Array.init n (fun i -> n - 1 - i)

let rotation n k =
  if n <= 0 then invalid_arg "Perm.rotation";
  let k = ((k mod n) + n) mod n in
  Array.init n (fun i -> (i + k) mod n)

let compose a b =
  if Array.length a <> Array.length b then
    invalid_arg "Perm.compose: size mismatch";
  Array.init (Array.length a) (fun i -> a.(b.(i)))

let inverse p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  for i = 0 to n - 1 do
    inv.(p.(i)) <- i
  done;
  inv

let equal a b = a = b
let compare = Stdlib.compare

let next_in_place a =
  (* Standard next-permutation: find the rightmost ascent, swap, reverse
     the suffix. *)
  let n = Array.length a in
  let i = ref (n - 2) in
  while !i >= 0 && a.(!i) >= a.(!i + 1) do
    decr i
  done;
  if !i < 0 then begin
    Array.sort Stdlib.compare a;
    false
  end
  else begin
    let j = ref (n - 1) in
    while a.(!j) <= a.(!i) do
      decr j
    done;
    let tmp = a.(!i) in
    a.(!i) <- a.(!j);
    a.(!j) <- tmp;
    let lo = ref (!i + 1) and hi = ref (n - 1) in
    while !lo < !hi do
      let tmp = a.(!lo) in
      a.(!lo) <- a.(!hi);
      a.(!hi) <- tmp;
      incr lo;
      decr hi
    done;
    true
  end

let all n =
  if n < 0 || n > 9 then invalid_arg "Perm.all: n must be in 0..9";
  if n = 0 then [ [||] ]
  else begin
    let cur = identity n in
    let acc = ref [ Array.copy cur ] in
    while next_in_place cur do
      acc := Array.copy cur :: !acc
    done;
    List.rev !acc
  end

let random rng n = Rng.permutation rng n

let pp ppf p =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
       Format.pp_print_int)
    (Array.to_list p)
