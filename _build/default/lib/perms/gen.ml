open Doall_sim

let random_list ~rng ~n ~count = List.init count (fun _ -> Perm.random rng n)
let identity_list ~n ~count = List.init count (fun _ -> Perm.identity n)
let rotation_list ~n ~count = List.init count (fun u -> Perm.rotation n u)
let reverse_identity_pair ~n = [ Perm.identity n; Perm.reverse n ]

let seeded_list ~seed ~n ~count =
  let rng = Rng.create (seed lxor 0x9e3779b9) in
  random_list ~rng ~n ~count
