(** Contention of permutation lists (Section 4).

    For a list [psi = <pi_0, .., pi_{p-1}>] of permutations of [S_n] and a
    "completion order" [rho in S_n]:

    - [Cont(psi, rho) = sum_u lrm(rho^{-1} o pi_u)]  (contention w.r.t. rho)
    - [Cont(psi) = max_rho Cont(psi, rho)]           (contention)
    - [(d)-Cont(psi, rho)] and [(d)-Cont(psi)] replace lrm by d-lrm
      (Section 4.2, the paper's new notion).

    [Cont(psi)] bounds the primary (first-time, possibly concurrent) job
    executions of the oblivious algorithm ObliDo (Lemma 4.2), and
    [(d)-Cont(psi)] bounds the work of the PA algorithms against any
    d-adversary (Lemma 6.1). For any list, [n <= Cont(psi) <= n*p] when
    [psi] has [p] schedules (the paper states [n..n^2] for [p = n]).

    The exact maximum ranges over [n!] orders and is only computed for
    small [n]; for larger [n] we report a certified {e lower} estimate
    obtained by hill-climbing over [rho] — safe for claims of the form
    "contention of this list is at least x" and for comparing lists. *)

val contention_wrt : Perm.t list -> rho:Perm.t -> int
(** [Cont(psi, rho)]. All permutations must share [rho]'s size. *)

val d_contention_wrt : d:int -> Perm.t list -> rho:Perm.t -> int
(** [(d)-Cont(psi, rho)]. Requires [d >= 1]. *)

val d_contention_profile_wrt : Perm.t list -> rho:Perm.t -> int array
(** Entry [d] (for [1 <= d <= n]) is [(d)-Cont(psi, rho)], all computed
    in one pass per schedule ({!Lrm.d_lrm_profile}). Entry 0 is 0. *)

val contention_exact : Perm.t list -> int
(** [Cont(psi)] by exhaustive maximization; requires size [<= 8]. *)

val d_contention_exact : d:int -> Perm.t list -> int

val contention_estimate :
  ?restarts:int -> ?samples:int -> rng:Doall_sim.Rng.t -> Perm.t list -> int
(** Lower estimate of [Cont(psi)]: the best of [samples] random [rho]'s
    and [restarts] hill-climbing runs (adjacent transpositions plus
    arbitrary swaps, first-improvement). Always [>= Cont(psi, identity)]
    and [<= Cont(psi)]. *)

val d_contention_estimate :
  ?restarts:int ->
  ?samples:int ->
  rng:Doall_sim.Rng.t ->
  d:int ->
  Perm.t list ->
  int

val harmonic : int -> float
(** [H_n = sum_{j=1..n} 1/j]. *)

val bound_lemma_4_1 : int -> float
(** [3 n H_n] — Lemma 4.1: a list of [n] permutations with contention at
    most this exists for every [n]. *)

val bound_theorem_4_4 : n:int -> p:int -> d:int -> float
(** [n ln n + 8 p d ln(e + n/d)] — Theorem 4.4 / Corollary 4.5: a list of
    [p] schedules with d-contention at most this exists, simultaneously
    for every [d >= 1]; random lists satisfy it with high probability. *)
