open Doall_sim

let check_sizes psi rho =
  let n = Perm.size rho in
  List.iter
    (fun pi ->
      if Perm.size pi <> n then
        invalid_arg "Contention: size mismatch between list and rho")
    psi;
  n

let contention_wrt psi ~rho =
  ignore (check_sizes psi rho);
  let rho_inv = Perm.inverse rho in
  List.fold_left (fun acc pi -> acc + Lrm.lrm (Perm.compose rho_inv pi)) 0 psi

let d_contention_wrt ~d psi ~rho =
  ignore (check_sizes psi rho);
  let rho_inv = Perm.inverse rho in
  List.fold_left
    (fun acc pi -> acc + Lrm.d_lrm ~d (Perm.compose rho_inv pi))
    0 psi

let d_contention_profile_wrt psi ~rho =
  let n = check_sizes psi rho in
  let rho_inv = Perm.inverse rho in
  let total = Array.make (n + 1) 0 in
  List.iter
    (fun pi ->
      let prof = Lrm.d_lrm_profile (Perm.compose rho_inv pi) in
      for d = 0 to n do
        total.(d) <- total.(d) + prof.(d)
      done)
    psi;
  total

let exact_max eval psi =
  match psi with
  | [] -> 0
  | pi :: _ ->
    let n = Perm.size pi in
    if n > 8 then
      invalid_arg "Contention.*_exact: exhaustive search limited to n <= 8";
    List.fold_left
      (fun best rho -> max best (eval psi ~rho))
      min_int (Perm.all n)

let contention_exact psi = exact_max contention_wrt psi
let d_contention_exact ~d psi = exact_max (d_contention_wrt ~d) psi

(* First-improvement hill climbing over rho under the swap neighbourhood.
   Contention is invariant under relabelling only of both psi and rho, so
   the landscape genuinely depends on rho; swaps reach all of S_n. *)
let climb eval psi rng rho0 =
  let n = Array.length rho0 in
  let rho = Array.copy rho0 in
  let current = ref (eval psi ~rho:(Perm.of_array_unsafe rho)) in
  let improved = ref true in
  let budget = ref (8 * n * n) in
  while !improved && !budget > 0 do
    improved := false;
    (* Randomized scan order avoids systematic bias in tie-handling. *)
    let order = Rng.permutation rng (n * (n - 1) / 2) in
    let pair k =
      (* decode k-th unordered pair (i, j), i < j *)
      let rec find i k =
        let row = n - 1 - i in
        if k < row then (i, i + 1 + k) else find (i + 1) (k - row)
      in
      find 0 k
    in
    (try
       Array.iter
         (fun k ->
           decr budget;
           if !budget <= 0 then raise Exit;
           let i, j = pair k in
           let tmp = rho.(i) in
           rho.(i) <- rho.(j);
           rho.(j) <- tmp;
           let v = eval psi ~rho:(Perm.of_array_unsafe rho) in
           if v > !current then begin
             current := v;
             improved := true
           end
           else begin
             let tmp = rho.(i) in
             rho.(i) <- rho.(j);
             rho.(j) <- tmp
           end)
         order
     with Exit -> ())
  done;
  !current

let estimate eval ?(restarts = 8) ?(samples = 64) ~rng psi =
  match psi with
  | [] -> 0
  | pi :: _ ->
    let n = Perm.size pi in
    let best = ref (eval psi ~rho:(Perm.identity n)) in
    for _ = 1 to samples do
      let rho = Perm.random rng n in
      best := max !best (eval psi ~rho)
    done;
    for r = 0 to restarts - 1 do
      let rho0 =
        if r = 0 then Perm.to_array (Perm.identity n)
        else Rng.permutation rng n
      in
      best := max !best (climb eval psi rng rho0)
    done;
    !best

let contention_estimate ?restarts ?samples ~rng psi =
  estimate contention_wrt ?restarts ?samples ~rng psi

let d_contention_estimate ?restarts ?samples ~rng ~d psi =
  estimate (d_contention_wrt ~d) ?restarts ?samples ~rng psi

let harmonic n =
  let s = ref 0.0 in
  for j = 1 to n do
    s := !s +. (1.0 /. float_of_int j)
  done;
  !s

let bound_lemma_4_1 n = 3.0 *. float_of_int n *. harmonic n

let bound_theorem_4_4 ~n ~p ~d =
  let nf = float_of_int n and pf = float_of_int p and df = float_of_int d in
  (nf *. log nf)
  +. (8.0 *. pf *. df *. log (Float.exp 1.0 +. (nf /. df)))
