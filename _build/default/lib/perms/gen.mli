(** Generators for lists of schedules.

    The algorithm families are parameterized by lists of permutations:
    DA(q) needs [q] permutations of [S_q] (tiny, quality-critical), the
    PA family needs [p] permutations of [S_n] with [n = min(p, t)]
    (large; random lists have low d-contention with high probability by
    Theorem 4.4, which is the paper's own construction for PaDet via the
    probabilistic method). *)

val random_list : rng:Doall_sim.Rng.t -> n:int -> count:int -> Perm.t list
(** [count] independent uniformly random permutations of size [n]. *)

val identity_list : n:int -> count:int -> Perm.t list
(** All-identity — the worst list (contention [count * n]); used as an
    adversarial baseline in tests and ablations. *)

val rotation_list : n:int -> count:int -> Perm.t list
(** [pi_u = rotation by u] — a cheap structured family; decent but not
    optimal contention. *)

val reverse_identity_pair : n:int -> Perm.t list
(** [<identity; reverse>] — the two-processor example opening Section 4. *)

val seeded_list : seed:int -> n:int -> count:int -> Perm.t list
(** Deterministic: the random list generated from a fixed seed. This is
    how PaDet instantiates Corollary 4.5 reproducibly. *)
