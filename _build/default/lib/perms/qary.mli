(** q-ary expansions of processor identifiers (Section 5.1).

    Algorithm DA(q) routes processor [pid] through the progress tree by
    the digits of [pid] written in base [q]: the digit at index [m]
    (least-significant first) selects which permutation from the list
    [psi] orders the subtree visits at depth [m]. Only the [h] least
    significant digits matter for a tree of height [h]; when [p > q^h]
    several processors are indistinguishable, exactly as the paper
    notes. *)

val digits : q:int -> width:int -> int -> int array
(** [digits ~q ~width pid] is the little-endian base-[q] expansion of
    [pid], padded/truncated to exactly [width] digits. Requires [q >= 2],
    [width >= 0], [pid >= 0]. *)

val of_digits : q:int -> int array -> int
(** Inverse of {!digits} (up to truncation): recomposes little-endian
    digits. *)

val digit : q:int -> int -> int -> int
(** [digit ~q pid m] is digit [m] of [pid] in base [q]. *)

val width_for : q:int -> int -> int
(** [width_for ~q v] is the least [w] with [q^w > v] (and at least 1) —
    the number of digits needed to distinguish values [0..v]. *)
