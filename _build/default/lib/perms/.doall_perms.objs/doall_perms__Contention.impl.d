lib/perms/contention.ml: Array Doall_sim Float List Lrm Perm Rng
