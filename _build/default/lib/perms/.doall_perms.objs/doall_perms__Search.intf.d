lib/perms/search.mli: Doall_sim Perm
