lib/perms/gen.mli: Doall_sim Perm
