lib/perms/lrm.mli: Perm
