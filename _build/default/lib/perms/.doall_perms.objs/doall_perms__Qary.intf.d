lib/perms/qary.mli:
