lib/perms/lrm.ml: Array List Perm
