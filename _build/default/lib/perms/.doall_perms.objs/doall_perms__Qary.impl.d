lib/perms/qary.ml: Array
