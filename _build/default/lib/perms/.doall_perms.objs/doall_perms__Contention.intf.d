lib/perms/contention.mli: Doall_sim Perm
