lib/perms/perm.ml: Array Doall_sim Format List Rng Stdlib
