lib/perms/gen.ml: Doall_sim List Perm Rng
