lib/perms/search.ml: Array Contention Doall_sim Gen List Perm Printf Rng
