lib/perms/perm.mli: Doall_sim Format
