let check_q q = if q < 2 then invalid_arg "Qary: q must be >= 2"

let digits ~q ~width pid =
  check_q q;
  if width < 0 then invalid_arg "Qary.digits: negative width";
  if pid < 0 then invalid_arg "Qary.digits: negative pid";
  let a = Array.make width 0 in
  let v = ref pid in
  for m = 0 to width - 1 do
    a.(m) <- !v mod q;
    v := !v / q
  done;
  a

let of_digits ~q a =
  check_q q;
  let acc = ref 0 in
  for m = Array.length a - 1 downto 0 do
    if a.(m) < 0 || a.(m) >= q then invalid_arg "Qary.of_digits: bad digit";
    acc := (!acc * q) + a.(m)
  done;
  !acc

let digit ~q pid m =
  check_q q;
  if m < 0 then invalid_arg "Qary.digit: negative index";
  let v = ref pid in
  for _ = 1 to m do
    v := !v / q
  done;
  !v mod q

let width_for ~q v =
  check_q q;
  let rec go w acc = if acc > v then w else go (w + 1) (acc * q) in
  go 1 q
