(** Searching for low-contention permutation lists.

    Lemma 4.1 guarantees, for every [n], a list of [n] permutations with
    [Cont <= 3 n H_n]; the paper obtains it by exhaustive search
    ("a constant number of operations on integers... of order (n!)^n").
    We provide:

    - {!exhaustive}: the true optimum, feasible for [n <= 3] only;
    - {!certified}: randomized search with {e exact} contention evaluation
      ([n <= 8]) — repeatedly sample and locally improve lists, return the
      first whose exact contention meets the [3 n H_n] bound, together
      with that contention. Random lists meet the bound with high
      probability (contention [O(n log n)] w.h.p., Section 1.1), so this
      terminates quickly in practice; the bound check makes the result a
      certificate, not a hope.

    DA(q) uses [certified] at construction time for its list [psi]. *)

type certificate = { list : Perm.t list; contention : int; bound : float }

val exhaustive : int -> certificate
(** Optimal list of [n] permutations of [S_n] by full enumeration over
    [(n!)^n] lists; requires [n <= 3]. *)

val certified :
  ?attempts:int -> ?local_steps:int -> rng:Doall_sim.Rng.t -> int ->
  certificate
(** [certified ~rng n] for [2 <= n <= 8]: a list of [n] permutations with
    exact [Cont <= 3 n H_n]. Raises [Failure] if no list meeting the
    bound is found within the budget (never observed for [n <= 8]). *)

val improve :
  ?steps:int -> rng:Doall_sim.Rng.t -> Perm.t list -> Perm.t list * int
(** Local search from a given list: random transpositions inside single
    permutations, keeping changes that do not increase exact contention.
    Returns the improved list and its exact contention. Size [<= 8]. *)
