open Doall_sim

type certificate = { list : Perm.t list; contention : int; bound : float }

let exhaustive n =
  if n < 1 || n > 3 then
    invalid_arg "Search.exhaustive: feasible only for n <= 3";
  let perms = Array.of_list (Perm.all n) in
  let k = Array.length perms in
  (* Enumerate all k^n lists by counting in base k. *)
  let idx = Array.make n 0 in
  let best = ref None in
  let continue_ = ref true in
  while !continue_ do
    let list = Array.to_list (Array.map (fun i -> perms.(i)) idx) in
    let c = Contention.contention_exact list in
    (match !best with
     | Some (_, bc) when bc <= c -> ()
     | _ -> best := Some (list, c));
    (* increment base-k counter *)
    let rec inc i =
      if i >= n then continue_ := false
      else if idx.(i) + 1 < k then idx.(i) <- idx.(i) + 1
      else begin
        idx.(i) <- 0;
        inc (i + 1)
      end
    in
    inc 0
  done;
  match !best with
  | Some (list, contention) ->
    { list; contention; bound = Contention.bound_lemma_4_1 n }
  | None -> assert false

let improve ?(steps = 400) ~rng list =
  let arrs = Array.of_list (List.map Perm.to_array list) in
  let count = Array.length arrs in
  let n = Array.length arrs.(0) in
  let as_list () =
    Array.to_list (Array.map (fun a -> Perm.of_array (Array.copy a)) arrs)
  in
  let current = ref (Contention.contention_exact (as_list ())) in
  for _ = 1 to steps do
    let u = Rng.int rng count in
    let i = Rng.int rng n and j = Rng.int rng n in
    if i <> j then begin
      let a = arrs.(u) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp;
      let c = Contention.contention_exact (as_list ()) in
      if c <= !current then current := c
      else begin
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      end
    end
  done;
  (as_list (), !current)

let certified ?(attempts = 32) ?(local_steps = 200) ~rng n =
  if n < 2 || n > 8 then
    invalid_arg "Search.certified: requires 2 <= n <= 8";
  let bound = Contention.bound_lemma_4_1 n in
  let best = ref None in
  (try
     for _ = 1 to attempts do
       let list0 = Gen.random_list ~rng ~n ~count:n in
       let list, c = improve ~steps:local_steps ~rng list0 in
       (match !best with
        | Some (_, bc) when bc <= c -> ()
        | _ -> best := Some (list, c));
       match !best with
       | Some (_, bc) when float_of_int bc <= bound -> raise Exit
       | _ -> ()
     done
   with Exit -> ());
  match !best with
  | Some (list, contention) when float_of_int contention <= bound ->
    { list; contention; bound }
  | Some (_, contention) ->
    failwith
      (Printf.sprintf
         "Search.certified: best contention %d exceeds 3nH_n = %.2f for n=%d"
         contention bound n)
  | None -> assert false
