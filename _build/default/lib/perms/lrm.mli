(** Left-to-right maxima and their delay-sensitive generalization.

    For a schedule [pi = <pi(0), .., pi(n-1)>]:

    - [pi(j)] is a {e left-to-right maximum} (lrm, Knuth vol. 3) when it
      exceeds every earlier element. [lrm pi] counts them; it is the number
      of tasks a second processor performs redundantly when racing a first
      processor whose completion order is the identity (Section 4's
      two-processor motivation).
    - [pi(j)] is a {e d-left-to-right maximum} (d-lrm, Section 4.2) when
      fewer than [d] earlier elements exceed it. With message delay [d], a
      processor may redundantly perform precisely its d-lrm's: it cannot
      have heard about fewer than [d] later-scheduled completions.

    [d_lrm] with [d = 1] coincides with [lrm]. *)

val lrm : Perm.t -> int
(** Number of left-to-right maxima. O(n). *)

val d_lrm : d:int -> Perm.t -> int
(** Number of d-lrm's. O(n log n) via a Fenwick tree. Requires [d >= 1].
    [d_lrm ~d:1 pi = lrm pi]; [d_lrm ~d:n pi = n]. *)

val lrm_positions : Perm.t -> int list
(** Positions [j] holding left-to-right maxima, increasing. *)

val d_lrm_positions : d:int -> Perm.t -> int list

val greater_before : Perm.t -> int array
(** [greater_before pi] maps each position [j] to the number of earlier
    elements exceeding [pi(j)] — position [j] is a d-lrm iff
    [greater_before.(j) < d]. One O(n log n) pass determines d-lrm
    counts for {e every} d at once; see {!d_lrm_profile}. *)

val d_lrm_profile : Perm.t -> int array
(** [d_lrm_profile pi] has length [n + 1]; entry [d] (for [1 <= d <= n])
    is [d_lrm ~d pi], computed for all [d] in one pass (entry 0 is 0).
    Satisfies: non-decreasing, [profile.(1) = lrm pi],
    [profile.(n) = n]. *)
