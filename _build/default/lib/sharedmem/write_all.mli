(** Write-All in asynchronous shared memory — the origin model.

    Section 1.1 of the paper: "A similar problem, called Write-All, has
    been extensively studied in the shared-memory models of computation
    ... however, the techniques used in the synchronous shared-memory
    setting are not easily ported to the asynchronous message-passing
    setting." The paper's DA is a message-passing re-interpretation of
    the asynchronous shared-memory algorithm of Anderson and Woll [2];
    this module implements that algorithm {e in its native model}, so
    the three worlds can be compared on one instance:

    - AW in shared memory (this module): reads and writes hit one shared
      progress tree, instantly atomic; asynchrony is only adversarial
      interleaving of steps;
    - DA over message passing ({!Doall_core.Algo_da}): tree replicated,
      writes become multicasts, extra work appears as a function of the
      delay bound [d];
    - AW over quorum-replicated memory ({!Doall_quorum.Algo_awq}): tree
      emulated, every read/write costs a round trip.

    The model: [p] processors share one q-ary boolean progress tree over
    the [min(p,t)] jobs; a local step — granted or withheld per time
    unit by the adversarial schedule — performs exactly one action:
    check one tree bit, descend, perform one task, or set one bit.
    Work charges every granted step (same measure as the
    message-passing engine). A run ends when some live processor
    returns from the root knowing all tasks done. There are no
    messages, hence no delay parameter: the shared-memory adversary's
    whole power is scheduling and crashes. *)

type schedule = time:int -> p:int -> bool array
(** Which processors advance at each time unit (the engine forces the
    lowest live pid if none). *)

type crash_plan = time:int -> alive:bool array -> int list
(** Pids to crash at each instant; the last live processor is immune. *)

type metrics = {
  p : int;
  t : int;
  work : int;  (** granted steps until completion *)
  reads : int;  (** shared-memory bit reads *)
  writes : int;  (** shared-memory bit writes *)
  executions : int;  (** task executions, with multiplicity *)
  sigma : int;  (** completion time *)
  completed : bool;
  crashed : int;
}

val redundant : metrics -> int

val fair : schedule
(** Everyone steps every unit — the PRAM-like special case. *)

val rotating : width:int -> schedule
val random_subset : seed:int -> prob:float -> schedule
val solo : int -> schedule

val no_crashes : crash_plan
val crash_at : time:int -> pids:int list -> crash_plan

val run :
  ?q:int ->
  ?psi:Doall_perms.Perm.t list ->
  ?schedule:schedule ->
  ?crashes:crash_plan ->
  ?max_time:int ->
  p:int ->
  t:int ->
  unit ->
  metrics
(** Execute AW(q) to completion. Same [q]/[psi] contract as
    {!Doall_core.Algo_da.make} (default: the cached certified list).
    Raises nothing on adversarial schedules — the algorithm terminates
    under any interleaving with one survivor; [max_time] is a safety
    cap, reported via [completed]. *)
