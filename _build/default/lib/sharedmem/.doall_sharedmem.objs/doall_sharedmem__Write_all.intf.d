lib/sharedmem/write_all.mli: Doall_perms
