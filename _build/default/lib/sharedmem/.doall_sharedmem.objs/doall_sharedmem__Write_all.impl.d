lib/sharedmem/write_all.ml: Algo_da Array Bitset Doall_core Doall_perms Doall_sim List Perm Progress_tree Qary Rng Task
