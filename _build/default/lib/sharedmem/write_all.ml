open Doall_sim
open Doall_perms
open Doall_core

type schedule = time:int -> p:int -> bool array
type crash_plan = time:int -> alive:bool array -> int list

type metrics = {
  p : int;
  t : int;
  work : int;
  reads : int;
  writes : int;
  executions : int;
  sigma : int;
  completed : bool;
  crashed : int;
}

let redundant m = if m.completed then m.executions - m.t else m.executions

let fair ~time:_ ~p = Array.make p true

let rotating ~width ~time ~p =
  let a = Array.make p false in
  for k = 0 to min width p - 1 do
    a.((time + k) mod p) <- true
  done;
  a

let random_subset ~seed ~prob =
  let rng = Rng.create seed in
  fun ~time:_ ~p -> Array.init p (fun _ -> Rng.float rng 1.0 < prob)

let solo pid ~time:_ ~p = Array.init p (fun i -> i = pid)

let no_crashes ~time:_ ~alive:_ = []

let crash_at ~time ~pids =
 fun ~time:now ~alive:_ -> if now = time then pids else []

(* Per-processor traversal state: the same frame-stack realization of
   Dowork as Algo_da, but against the one shared tree. *)
type frame = { node : int; depth : int; order : int array; mutable idx : int }

type proc = {
  digits : int array;
  mutable stack : frame list;
  mutable current : int option; (* leaf being executed *)
  mutable finished : bool; (* returned from the root *)
}

let run ?(q = 4) ?psi ?(schedule = fair) ?(crashes = no_crashes) ?max_time ~p
    ~t () =
  let psi =
    match psi with
    | Some psi ->
      if List.length psi <> q then
        invalid_arg "Write_all.run: psi must contain exactly q permutations";
      List.iter
        (fun pi ->
          if Perm.size pi <> q then
            invalid_arg "Write_all.run: psi permutations must have size q")
        psi;
      psi
    | None -> Algo_da.default_psi ~q
  in
  let psi_arr = Array.of_list (List.map Perm.to_array psi) in
  let part = Task.make ~p ~t in
  let sh = Progress_tree.shape ~q ~jobs:part.Task.n in
  let tree = Progress_tree.initial_marks sh in
  let task_done = Bitset.create t in
  let alive = Array.make p true in
  let procs =
    Array.init p (fun pid ->
        let digits = Qary.digits ~q ~width:sh.Progress_tree.h pid in
        let stack, current =
          if Progress_tree.is_leaf sh Progress_tree.root then
            ([], Some Progress_tree.root)
          else
            ( [
                {
                  node = Progress_tree.root;
                  depth = 0;
                  order = psi_arr.(digits.(0));
                  idx = 0;
                };
              ],
              None )
        in
        { digits; stack; current; finished = false })
  in
  let work = ref 0 in
  let reads = ref 0 in
  let writes = ref 0 in
  let executions = ref 0 in
  let time = ref 0 in
  let finished = ref false in
  let sigma = ref 0 in
  let cap =
    match max_time with
    | Some m -> m
    | None -> 10_000 + (48 * t * p)
  in
  (* one granted local step for processor [pid] *)
  let next_member_of_leaf leaf =
    Task.next_member part task_done (Progress_tree.job_of_leaf sh leaf)
  in
  let perform_at_leaf pr leaf =
    match next_member_of_leaf leaf with
    | Some z ->
      Bitset.set task_done z;
      incr executions;
      if Task.job_done part task_done (Progress_tree.job_of_leaf sh leaf)
      then begin
        incr writes;
        Bitset.set tree leaf;
        pr.current <- None
      end
      else pr.current <- Some leaf
    | None ->
      (* job finished by someone else: mark the leaf and move on *)
      incr writes;
      Bitset.set tree leaf;
      pr.current <- None
  in
  let step pid =
    let pr = procs.(pid) in
    incr work;
    if pr.finished then ()
    else
      match pr.current with
      | Some leaf -> perform_at_leaf pr leaf
      | None -> (
        match pr.stack with
        | [] ->
          pr.finished <- true;
          if Bitset.is_full task_done then begin
            if not !finished then sigma := !time;
            finished := true
          end
        | fr :: rest ->
          incr reads;
          if Bitset.mem tree fr.node then pr.stack <- rest
          else if fr.idx >= sh.Progress_tree.q then begin
            incr writes;
            Bitset.set tree fr.node;
            pr.stack <- rest
          end
          else begin
            let branch = fr.order.(fr.idx) in
            fr.idx <- fr.idx + 1;
            let child = Progress_tree.child sh fr.node branch in
            if Bitset.mem tree child then ()
            else if Progress_tree.is_leaf sh child then
              perform_at_leaf pr child
            else
              pr.stack <-
                {
                  node = child;
                  depth = fr.depth + 1;
                  order = psi_arr.(pr.digits.(fr.depth + 1));
                  idx = 0;
                }
                :: pr.stack
          end)
  in
  let live_count () =
    Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive
  in
  while (not !finished) && !time < cap do
    List.iter
      (fun pid ->
        if pid >= 0 && pid < p && alive.(pid) && live_count () > 1 then
          alive.(pid) <- false)
      (crashes ~time:!time ~alive);
    let active = schedule ~time:!time ~p in
    let eligible pid = alive.(pid) && not procs.(pid).finished in
    let someone = ref false in
    for pid = 0 to p - 1 do
      if active.(pid) && eligible pid then someone := true
    done;
    if not !someone then begin
      let forced = ref (-1) in
      for pid = p - 1 downto 0 do
        if eligible pid then forced := pid
      done;
      if !forced >= 0 then active.(!forced) <- true
      else begin
        (* every live processor finished: completion must have fired *)
        if Bitset.is_full task_done then begin
          if not !finished then sigma := !time;
          finished := true
        end
      end
    end;
    for pid = 0 to p - 1 do
      if active.(pid) && eligible pid then step pid
    done;
    incr time
  done;
  {
    p;
    t;
    work = !work;
    reads = !reads;
    writes = !writes;
    executions = !executions;
    sigma = (if !finished then !sigma else !time);
    completed = !finished;
    crashed = p - live_count ();
  }
