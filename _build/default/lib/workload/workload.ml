type 'r t = { t : int; run : int -> 'r; equal : 'r -> 'r -> bool }

let make ?(equal = ( = )) ~t run =
  if t < 1 then invalid_arg "Workload.make: t >= 1";
  { t; run; equal }

let tasks w = w.t

let run_task w z =
  if z < 0 || z >= w.t then invalid_arg "Workload.run_task: task out of range";
  w.run z

module Journal = struct
  type 'r workload = 'r t

  type 'r t = {
    w : 'r workload;
    first : (int, 'r) Hashtbl.t;
    mutable executions : int;
    mutable redundant : int;
    mutable violations : (int * int) list;
  }

  let create w =
    {
      w;
      first = Hashtbl.create 64;
      executions = 0;
      redundant = 0;
      violations = [];
    }

  let record j ~task =
    let r = run_task j.w task in
    j.executions <- j.executions + 1;
    match Hashtbl.find_opt j.first task with
    | None -> Hashtbl.add j.first task r
    | Some r0 ->
      j.redundant <- j.redundant + 1;
      if not (j.w.equal r0 r) then
        j.violations <- (task, j.executions) :: j.violations

  let replay_trace j trace =
    Doall_sim.Trace.iter trace (fun ev ->
        match ev with
        | Doall_sim.Trace.Perform { task; _ } -> record j ~task
        | _ -> ())

  let executions j = j.executions
  let distinct j = Hashtbl.length j.first
  let redundant j = j.redundant
  let complete j = distinct j = j.w.t
  let consistent j = j.violations = []
  let violations j = List.rev j.violations
  let result j task = Hashtbl.find_opt j.first task

  let results j =
    List.filter_map
      (fun z -> Option.map (fun r -> (z, r)) (result j z))
      (List.init j.w.t Fun.id)
end

(* ----- stock workloads ----- *)

let mix z =
  (* splitmix-style integer hash: deterministic, well spread (constants
     truncated to OCaml's 63-bit int) *)
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let checksum ~t =
  make ~t (fun z ->
      let acc = ref 0 in
      for i = 1 to 32 do
        acc := !acc + mix ((z * 37) + i)
      done;
      !acc)

let keyspace_scan ~t ~shard_size ~hit =
  if shard_size < 1 then invalid_arg "Workload.keyspace_scan: shard_size >= 1";
  make ~t (fun z ->
      let lo = z * shard_size in
      List.filter hit (List.init shard_size (fun k -> lo + k)))

let flaky_but_idempotent ~t ~seed =
  make ~t (fun z -> mix (mix (z + seed)))

let broken_nonidempotent ~t () =
  let counter = ref 0 in
  make ~t (fun z ->
      incr counter;
      z + !counter)
