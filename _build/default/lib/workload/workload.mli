(** Concrete task payloads over the abstract Do-All machinery.

    The simulation deals in task {e ids}; real deployments deal in task
    {e effects}. This module binds the two: a workload maps each id to a
    computation, and a {!Journal} replays an engine {!Doall_sim.Trace}
    against the workload, executing each recorded performance and
    {b verifying the model's idempotence requirement end-to-end} — every
    task executed at least once, and re-executions (which adversarial
    schedules guarantee) producing results equal to the first.

    The payloads here are deterministic on purpose: Section 2.4 requires
    that "the results of multiple task executions are always the same",
    and the journal turns that requirement into a checked property of
    the user's task functions. *)

type 'r t
(** A workload of tasks with results of type ['r]. *)

val make : ?equal:('r -> 'r -> bool) -> t:int -> (int -> 'r) -> 'r t
(** [make ~t f]: [t] tasks; task [z]'s effect is [f z]. [equal] (default
    structural equality) decides whether a re-execution reproduced the
    original result. *)

val tasks : 'r t -> int
val run_task : 'r t -> int -> 'r
(** Execute one task (raises whatever [f] raises). *)

(** Journals: replaying simulated executions against real effects. *)
module Journal : sig
  type 'r workload := 'r t

  type 'r t

  val create : 'r workload -> 'r t

  val record : 'r t -> task:int -> unit
  (** Execute task [task] and record the outcome; flags an idempotence
      violation if a previous execution produced a different result. *)

  val replay_trace : 'r t -> Doall_sim.Trace.t -> unit
  (** Feed every [Perform] event of a trace through {!record}. *)

  val executions : 'r t -> int
  val distinct : 'r t -> int
  (** Tasks executed at least once. *)

  val redundant : 'r t -> int
  (** Executions beyond the first per task. *)

  val complete : 'r t -> bool
  (** Every task of the workload executed at least once. *)

  val consistent : 'r t -> bool
  (** No re-execution ever disagreed with the first result. *)

  val violations : 'r t -> (int * int) list
  (** [(task, execution_index)] pairs where idempotence broke. *)

  val result : 'r t -> int -> 'r option
  (** First-recorded result of a task. *)

  val results : 'r t -> (int * 'r) list
  (** All first results, by increasing task id. *)
end

(** Stock workloads for examples and tests. *)

val checksum : t:int -> int t
(** Task [z] computes a cheap arithmetic digest of [z] — deterministic,
    nontrivial, fast. *)

val keyspace_scan : t:int -> shard_size:int -> hit:(int -> bool) -> int list t
(** Task [z] scans keys [z * shard_size .. (z+1) * shard_size - 1] and
    returns the hits. *)

val flaky_but_idempotent : t:int -> seed:int -> int t
(** Deterministic per-task results computed through a seeded hash —
    looks random, replays identically: the kind of task the model
    wants. *)

val broken_nonidempotent : t:int -> unit -> int t
(** A deliberately NON-idempotent workload (a hidden counter leaks into
    results) for testing that journals catch violations. Fresh state per
    call. *)
