lib/workload/workload.ml: Doall_sim Fun Hashtbl List Option
