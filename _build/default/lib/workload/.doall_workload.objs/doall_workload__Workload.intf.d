lib/workload/workload.mli: Doall_sim
