lib/analysis/bounds.mli:
