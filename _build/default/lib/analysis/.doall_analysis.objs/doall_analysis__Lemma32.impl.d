lib/analysis/lemma32.ml: Float
