lib/analysis/bounds.ml: Float
