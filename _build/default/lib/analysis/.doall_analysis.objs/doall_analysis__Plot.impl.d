lib/analysis/plot.ml: Array Buffer Bytes Float List Printf String
