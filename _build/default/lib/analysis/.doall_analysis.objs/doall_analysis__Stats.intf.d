lib/analysis/stats.mli:
