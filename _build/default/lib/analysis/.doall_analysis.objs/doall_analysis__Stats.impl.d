lib/analysis/stats.ml: Array Float List
