lib/analysis/table.ml: Array Buffer Float Fun List Printf String
