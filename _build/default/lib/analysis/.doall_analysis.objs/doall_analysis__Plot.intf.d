lib/analysis/plot.mli:
