lib/analysis/fit.ml: Bounds List
