lib/analysis/table.mli:
