lib/analysis/fit.mli:
