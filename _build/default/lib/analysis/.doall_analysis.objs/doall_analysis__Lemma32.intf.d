lib/analysis/lemma32.mli:
