(** Descriptive statistics and log-log regression.

    Used by the benchmark harness to summarize repeated randomized runs
    and to fit empirical growth exponents (e.g. the [p^epsilon] factor of
    DA's work is estimated as the slope of [log W] against [log p]). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1); 0 for n < 2 *)
  min : float;
  max : float;
  median : float;
  ci95 : float;  (** half-width of the 95% normal-approximation CI *)
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float
val median : float list -> float

type fit = { slope : float; intercept : float; r2 : float }

val linear_fit : (float * float) list -> fit
(** Ordinary least squares on [(x, y)] pairs; needs at least two distinct
    x values. *)

val loglog_fit : (float * float) list -> fit
(** OLS on [(log x, log y)]: [slope] is the empirical growth exponent.
    Pairs with non-positive coordinates are dropped. *)
