let log_base ~base x =
  let base = max 1.000001 base in
  let x = max 1.0 x in
  log x /. log base

let lower_bound ~p ~t ~d =
  let pf = float_of_int p and tf = float_of_int t and df = float_of_int d in
  tf
  +. (pf *. Float.min df tf *. log_base ~base:(df +. 1.0) (df +. tf))

let oblivious_work ~p ~t = float_of_int (p * t)

let da_upper ~p ~t ~d ~epsilon =
  let pf = float_of_int p and tf = float_of_int t and df = float_of_int d in
  (tf *. (pf ** epsilon))
  +. (pf *. Float.min tf df *. (Float.ceil (tf /. df) ** epsilon))

let pa_upper ~p ~t ~d =
  let pf = float_of_int p and tf = float_of_int t and df = float_of_int d in
  let n = Float.min pf tf in
  (tf *. log (max 2.0 n))
  +. (pf *. Float.min tf df *. log (2.0 +. (tf /. df)))

let da_message_upper ~p ~work = float_of_int p *. work

let pa_message_upper ~p ~t ~d =
  float_of_int p *. pa_upper ~p ~t ~d

let epsilon_of_q ~q =
  let qf = float_of_int q in
  log_base ~base:qf (4.0 *. log qf)

let subquadratic_threshold ~p:_ ~t = float_of_int t
