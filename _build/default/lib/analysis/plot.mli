(** Terminal scatter/line plots for sweep results.

    The experiment harness produces (x, y) sweeps (work vs delay bound,
    work vs p, ...); this renders them as a compact ASCII chart so growth
    shapes and crossovers are visible without leaving the terminal.
    Purely cosmetic — the tables remain the ground truth. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  ?logy:bool ->
  ?title:string ->
  series list ->
  string
(** [render series] draws all series on one canvas (default 56x16).
    Each series gets a distinct mark, listed in the legend. With [logx]
    or [logy], points with non-positive coordinates on that axis are
    dropped. Returns [""] when no point survives. Axis extremes are
    labelled with the raw (non-log) values. *)

val mark_of : int -> char
(** Mark assigned to the i-th series ([*], [+], [o], [x], [#], [@], ...,
    cycling). *)
