type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  ci95 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let median xs =
  match xs with
  | [] -> invalid_arg "Stats.median: empty"
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    let n = List.length xs in
    let m = mean xs in
    let var =
      if n < 2 then 0.0
      else
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (n - 1)
    in
    let sd = sqrt var in
    {
      count = n;
      mean = m;
      stddev = sd;
      min = List.fold_left Float.min infinity xs;
      max = List.fold_left Float.max neg_infinity xs;
      median = median xs;
      ci95 = 1.96 *. sd /. sqrt (float_of_int n);
    }

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit pairs =
  let n = List.length pairs in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pairs in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pairs in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 pairs in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 pairs in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let ybar = sy /. nf in
  let ss_tot =
    List.fold_left (fun acc (_, y) -> acc +. ((y -. ybar) ** 2.0)) 0.0 pairs
  in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let fy = (slope *. x) +. intercept in
        acc +. ((y -. fy) ** 2.0))
      0.0 pairs
  in
  let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let loglog_fit pairs =
  let usable =
    List.filter_map
      (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      pairs
  in
  linear_fit usable
