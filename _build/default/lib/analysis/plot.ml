type series = { label : string; points : (float * float) list }

let marks = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]
let mark_of i = marks.(i mod Array.length marks)

let render ?(width = 56) ?(height = 16) ?(logx = false) ?(logy = false)
    ?title series =
  let tx v = if logx then log v else v in
  let ty v = if logy then log v else v in
  let usable =
    List.map
      (fun s ->
        let points =
          List.filter
            (fun (x, y) -> ((not logx) || x > 0.0) && ((not logy) || y > 0.0))
            s.points
        in
        { s with points })
      series
  in
  let all = List.concat_map (fun s -> s.points) usable in
  if all = [] then ""
  else begin
    let xs = List.map fst all and ys = List.map snd all in
    let fold f = function
      | [] -> assert false
      | v :: rest -> List.fold_left f v rest
    in
    let xmin = fold Float.min xs
    and xmax = fold Float.max xs
    and ymin = fold Float.min ys
    and ymax = fold Float.max ys in
    let sx = tx xmin and sy = ty ymin in
    let wx = Float.max 1e-9 (tx xmax -. sx) in
    let wy = Float.max 1e-9 (ty ymax -. sy) in
    let grid = Array.init height (fun _ -> Bytes.make width ' ') in
    List.iteri
      (fun i s ->
        let mark = mark_of i in
        List.iter
          (fun (x, y) ->
            let cx =
              int_of_float ((tx x -. sx) /. wx *. float_of_int (width - 1))
            in
            let cy =
              int_of_float ((ty y -. sy) /. wy *. float_of_int (height - 1))
            in
            let row = height - 1 - cy in
            if row >= 0 && row < height && cx >= 0 && cx < width then
              Bytes.set grid.(row) cx mark)
          s.points)
      usable;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    (match title with
     | Some t -> Buffer.add_string buf (t ^ "\n")
     | None -> ());
    let ylab v = Printf.sprintf "%10.4g" v in
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 then ylab ymax
          else if row = height - 1 then ylab ymin
          else String.make 10 ' '
        in
        Buffer.add_string buf label;
        Buffer.add_string buf " |";
        Buffer.add_bytes buf line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%11s %.4g%s%.4g%s\n" "" xmin
         (String.make (max 1 (width - 12)) ' ')
         xmax
         (if logx || logy then
            Printf.sprintf "  [%s%s]"
              (if logx then "log-x" else "")
              (if logy then (if logx then ",log-y" else "log-y") else "")
          else ""));
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%11s %c %s\n" "" (mark_of i) s.label))
      usable;
    Buffer.contents buf
  end
