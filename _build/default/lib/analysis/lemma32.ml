let check_args ~u ~d =
  if d < 1 then invalid_arg "Lemma32: d >= 1";
  if u < d + 1 then invalid_arg "Lemma32: u >= d + 1"

let ratio ~u ~d =
  check_args ~u ~d;
  let k = u / (d + 1) in
  (* C(u-d, k) / C(u, k) = prod_{i=0}^{k-1} (u - d - i) / (u - i) *)
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. log (float_of_int (u - d - i)) -. log (float_of_int (u - i))
  done;
  exp !acc

let sandwich ~u ~d =
  check_args ~u ~d;
  let k = u / (d + 1) in
  let kf = float_of_int k
  and df = float_of_int d
  and uf = float_of_int u in
  let lower = (1.0 -. (df /. (uf -. kf +. 1.0))) ** kf in
  let upper = (1.0 -. (df /. uf)) ** kf in
  (lower, upper)

let holds ~u ~d =
  let r = ratio ~u ~d in
  let lower, upper = sandwich ~u ~d in
  let eps = 1e-9 in
  lower <= r +. eps
  && r <= upper +. eps
  && r >= 0.25 -. eps
  && upper >= (1.0 /. Float.exp 1.0) -. eps

let first_counterexample ~u_max =
  let found = ref None in
  (try
     for u = 2 to u_max do
       let dmax = int_of_float (sqrt (float_of_int u)) in
       for d = 1 to min dmax (u - 1) do
         if not (holds ~u ~d) then begin
           found := Some (u, d);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found
