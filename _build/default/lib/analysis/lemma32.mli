(** Numeric verification of the paper's Lemma 3.2 (Appendix A).

    The randomized lower bound (Lemma 3.3) needs, for [1 <= d <= sqrt u]
    and [k = u/(d+1)]:

    {v C(u - d, k) / C(u, k)  >=  1/4 v}

    (it is applied as "... >= p/4" in inequality (1) of the proof).
    The appendix derives it by sandwiching the ratio:

    {v (1 - d/(u - k + 1))^k  <=  ratio  <=  (1 - d/u)^k v}

    and bounding the left side below by [1/4] (via
    [(1/4)^(du/(ud+d+1)) >= 1/4]) and the right side below by [1/e]
    (via [e^(-d/(d+1)) >= 1/e]). Note the ratio itself can exceed [1/e]
    — at [d = 1] it equals exactly [(u - k)/u ~= 1/2]; the published
    statement's "1/e" is a bound on the sandwich's right expression, not
    an upper bound on the ratio (the typeset relations are ambiguous in
    the source text; the usable direction is unambiguous from Lemma
    3.3's application).

    This module evaluates everything exactly in log space and checks the
    operative inequality and the sandwich over ranges of [(u, d)] — the
    appendix, machine-checked on concrete values. *)

val ratio : u:int -> d:int -> float
(** [C(u-d, k) / C(u, k)] with [k = u / (d+1)] (integer division, as in
    the proof). Requires [1 <= d] and [u >= d + 1]. *)

val sandwich : u:int -> d:int -> float * float
(** [(lower, upper)] = the proof's two sandwich expressions. *)

val holds : u:int -> d:int -> bool
(** The operative claim plus the proof's sandwich:
    [lower <= ratio <= upper], [ratio >= 1/4], and [upper >= 1/e].
    Only meaningful when [1 <= d <= sqrt u]. *)

val first_counterexample : u_max:int -> (int * int) option
(** Scan every [u <= u_max] and every [1 <= d <= sqrt u]; [None] when the
    lemma holds everywhere (the expected outcome). *)
