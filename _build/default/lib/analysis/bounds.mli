(** Closed forms of every bound proved in the paper.

    All functions return the bound {e without} its hidden constant: they
    are shape functions for comparing growth against measurements (ratio
    curves should flatten, crossovers should match), not predictions of
    absolute values. *)

val log_base : base:float -> float -> float
(** [log_base ~base x]; guards degenerate bases by flooring the base at
    [exp 1 /. exp 1 +. epsilon]... concretely: bases are clamped to
    [> 1.000001] and arguments to [>= 1]. *)

val lower_bound : p:int -> t:int -> d:int -> float
(** Theorems 3.1 and 3.4: [t + p min(d,t) log_{d+1}(d+t)] — the
    delay-sensitive lower bound on (expected) work for any algorithm. *)

val oblivious_work : p:int -> t:int -> float
(** [p * t], the no-communication solution (and the Prop. 2.2 floor when
    [d = Omega(t)]). *)

val da_upper : p:int -> t:int -> d:int -> epsilon:float -> float
(** Theorem 5.5: [t p^e + p min(t,d) ceil(t/d)^e]. *)

val pa_upper : p:int -> t:int -> d:int -> float
(** Theorem 6.2 / Corollary 6.4-6.5:
    [t log p + p min(t,d) log(2 + t/d)] (with [log n] for [n = min(p,t)]
    in the first summand, per Theorem 6.2). *)

val da_message_upper : p:int -> work:float -> float
(** Theorem 5.6: [p * W]. *)

val pa_message_upper : p:int -> t:int -> d:int -> float
(** Theorem 6.2: [t p log p + p^2 min(t,d) log(2 + t/d)]. *)

val epsilon_of_q : q:int -> float
(** The exponent achieved by DA(q) in Theorem 5.4's proof:
    [log_q (4 a log q)] with the proof's constant folded to [a = 1] —
    usable for qualitative "larger q gives smaller epsilon" checks. *)

val subquadratic_threshold : p:int -> t:int -> float
(** The delay beyond which no algorithm can stay subquadratic, i.e. the
    [d = Theta(t)] wall of Proposition 2.2 (returned as [t]). *)
