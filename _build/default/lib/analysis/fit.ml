type model = {
  model_name : string;
  predict : p:int -> t:int -> d:int -> float;
}

let candidates =
  [
    {
      model_name = "t (delay-free)";
      predict = (fun ~p:_ ~t ~d:_ -> float_of_int t);
    };
    {
      model_name = "lower bound";
      predict = (fun ~p ~t ~d -> Bounds.lower_bound ~p ~t ~d);
    };
    {
      model_name = "pa upper";
      predict = (fun ~p ~t ~d -> Bounds.pa_upper ~p ~t ~d);
    };
    {
      model_name = "da upper (e=0.3)";
      predict = (fun ~p ~t ~d -> Bounds.da_upper ~p ~t ~d ~epsilon:0.3);
    };
    {
      model_name = "linear p*d";
      predict = (fun ~p ~t ~d -> float_of_int (t + (p * d)));
    };
    {
      model_name = "quadratic p*t";
      predict = (fun ~p ~t ~d:_ -> float_of_int (p * t));
    };
  ]

type fitted = { model : model; constant : float; r2 : float }

let fit_one model ~p ~t points =
  if points = [] then invalid_arg "Fit.fit_one: no points";
  let shapes = List.map (fun (d, _) -> model.predict ~p ~t ~d) points in
  List.iter
    (fun s -> if s <= 0.0 then invalid_arg "Fit.fit_one: non-positive shape")
    shapes;
  let ws = List.map snd points in
  (* least squares through the origin: c = sum(w*s) / sum(s^2) *)
  let num = List.fold_left2 (fun acc w s -> acc +. (w *. s)) 0.0 ws shapes in
  let den = List.fold_left (fun acc s -> acc +. (s *. s)) 0.0 shapes in
  let c = if den <= 0.0 then 0.0 else num /. den in
  let wbar =
    List.fold_left ( +. ) 0.0 ws /. float_of_int (List.length ws)
  in
  let ss_tot =
    List.fold_left (fun acc w -> acc +. ((w -. wbar) ** 2.0)) 0.0 ws
  in
  let ss_res =
    List.fold_left2
      (fun acc w s -> acc +. ((w -. (c *. s)) ** 2.0))
      0.0 ws shapes
  in
  let r2 =
    if ss_tot < 1e-9 then if ss_res < 1e-9 then 1.0 else 0.0
    else 1.0 -. (ss_res /. ss_tot)
  in
  { model; constant = c; r2 }

let rank ~p ~t points =
  List.sort
    (fun a b -> compare b.r2 a.r2)
    (List.map (fun m -> fit_one m ~p ~t points) candidates)

let best ~p ~t points =
  match rank ~p ~t points with
  | [] -> invalid_arg "Fit.best: no candidates"
  | f :: _ -> f
