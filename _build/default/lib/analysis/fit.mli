(** Model selection: which theoretical curve explains a measured sweep?

    Given work measurements across the delay bound [d] at fixed [(p, t)],
    fit each candidate bound shape from the paper by a single
    multiplicative constant (least squares through the origin) and rank
    by goodness of fit. Used by benchmark E17 to confirm, per algorithm,
    that the {e right} theorem's shape wins — a stronger statement than
    eyeballing a ratio column. *)

type model = {
  model_name : string;
  predict : p:int -> t:int -> d:int -> float;  (** shape, constants free *)
}

val candidates : model list
(** The shapes from the paper, in rough order of growth:
    - ["t (delay-free)"]: constant in d;
    - ["lower bound"]: [t + p min(d,t) log_{d+1}(d+t)] (Thms 3.1/3.4);
    - ["pa upper"]: [t log n + p min(d,t) log(2+t/d)] (Thm 6.2);
    - ["da upper (e=0.3)"]: [t p^0.3 + p min(d,t) ceil(t/d)^0.3] (Thm 5.5);
    - ["linear p*d"]: [t + p d] (naive waiting cost);
    - ["quadratic p*t"]: constant at [p t] (Prop. 2.2 wall). *)

type fitted = {
  model : model;
  constant : float;  (** fitted multiplier *)
  r2 : float;  (** 1 - SS_res / SS_tot over the sweep *)
}

val fit_one : model -> p:int -> t:int -> (int * float) list -> fitted
(** [(d, measured_work)] points; at least one point, shapes must be
    positive on the points. *)

val rank : p:int -> t:int -> (int * float) list -> fitted list
(** All candidates, best (highest r2) first. *)

val best : p:int -> t:int -> (int * float) list -> fitted
