let default_max_time ~p ~t ~d =
  (* A single processor can solve Do-All alone in O(q * t) steps for every
     algorithm in this library (full solo traversal); with the engine
     forcing at least one step per time unit, p * that is an absolute
     bound. Add slack for delays and tiny instances. *)
  10_000 + (48 * t * p) + (64 * d)

module Make (A : Algorithm.S) = struct
  type t = {
    cfg : Config.t;
    d : int;
    adv : Adversary.t;
    states : A.state array;
    net : A.msg Network.t;
    global_done : Bitset.t;
    alive : bool array;
    halted : bool array;
    per_proc_work : int array;
    trace : Trace.t;
    mutable oracle : Adversary.oracle option;
    mutable time : int;
    mutable work : int;
    mutable executions : int;
    mutable finished : bool;
    mutable sigma : int;
  }

  (* Lookahead used by the omniscient adversary: clone [pid]'s state and
     step the clone in isolation (no deliveries), collecting the distinct
     tasks it performs. [step_cap] bounds bookkeeping-only steps so a
     clone that has halted (or spins on a finished tree) cannot loop. *)
  let isolated_plan states ~pid ~horizon ~step_cap =
    let clone = A.copy states.(pid) in
    let performed = ref [] in
    let count = ref 0 in
    let seen = Hashtbl.create 16 in
    let steps = ref 0 in
    (try
       while !steps < step_cap && !count < horizon do
         incr steps;
         let r = A.step clone in
         (match r.Algorithm.performed with
          | Some task when not (Hashtbl.mem seen task) ->
            Hashtbl.add seen task ();
            performed := task :: !performed;
            incr count
          | Some _ -> incr count
          | None -> ());
         if r.Algorithm.halt then raise Exit
       done
     with Exit -> ());
    List.rev !performed

  let create cfg ~d ~adversary =
    if d < 0 then invalid_arg "Engine.create: d must be non-negative";
    let d = max 1 d in
    let p = cfg.Config.p in
    let eng =
      {
        cfg;
        d;
        adv = adversary;
        states = Array.init p (fun pid -> A.init cfg ~pid);
        net = Network.create ~p;
        global_done = Bitset.create cfg.Config.t;
        alive = Array.make p true;
        halted = Array.make p false;
        per_proc_work = Array.make p 0;
        trace = Trace.create ();
        oracle = None;
        time = 0;
        work = 0;
        executions = 0;
        finished = false;
        sigma = -1;
      }
    in
    let plan_step_cap = 16 * (cfg.Config.t + 8) in
    eng.oracle <-
      Some
        {
          Adversary.time = (fun () -> eng.time);
          p;
          t = cfg.Config.t;
          d;
          undone_count =
            (fun () -> cfg.Config.t - Bitset.cardinal eng.global_done);
          undone = (fun () -> Bitset.missing eng.global_done);
          task_done = (fun task -> Bitset.mem eng.global_done task);
          would_perform =
            (fun pid ->
              match
                isolated_plan eng.states ~pid ~horizon:1
                  ~step_cap:plan_step_cap
              with
              | [] -> None
              | task :: _ -> Some task);
          plan =
            (fun ~pid ~horizon ->
              isolated_plan eng.states ~pid ~horizon ~step_cap:plan_step_cap);
          alive = (fun pid -> eng.alive.(pid));
          halted = (fun pid -> eng.halted.(pid));
          note =
            (fun text ->
              if cfg.Config.record_trace then
                Trace.add eng.trace (Trace.Note { time = eng.time; text }));
          rng = Rng.create (cfg.Config.seed lxor 0x5adbeef);
        };
    eng

  let oracle eng =
    match eng.oracle with Some o -> o | None -> assert false

  let informed eng =
    let p = eng.cfg.Config.p in
    let rec go pid =
      pid < p
      && ((eng.alive.(pid) && A.is_done eng.states.(pid)) || go (pid + 1))
    in
    go 0

  let live_count eng =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 eng.alive

  let apply_crashes eng pids =
    List.iter
      (fun pid ->
        if
          pid >= 0
          && pid < eng.cfg.Config.p
          && eng.alive.(pid)
          && live_count eng > 1
        then begin
          eng.alive.(pid) <- false;
          if eng.cfg.Config.record_trace then
            Trace.add eng.trace (Trace.Crash { time = eng.time; pid })
        end)
      pids

  let eligible eng pid = eng.alive.(pid) && not eng.halted.(pid)

  let step_processor eng pid =
    (* Deliver due messages, then take the local step. *)
    let msgs = Network.receive eng.net ~dst:pid ~now:eng.time in
    List.iter (fun (src, msg) -> A.receive eng.states.(pid) ~src msg) msgs;
    let r = A.step eng.states.(pid) in
    eng.work <- eng.work + 1;
    eng.per_proc_work.(pid) <- eng.per_proc_work.(pid) + 1;
    (match r.Algorithm.performed with
     | Some task ->
       let fresh = not (Bitset.mem eng.global_done task) in
       Bitset.set eng.global_done task;
       eng.executions <- eng.executions + 1;
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace
           (Trace.Perform { time = eng.time; pid; task; fresh })
     | None ->
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace (Trace.Step { time = eng.time; pid }));
    let send_one dst msg =
      let o = oracle eng in
      let raw = eng.adv.Adversary.delay o ~src:pid ~dst in
      let delta = max 1 (min eng.d raw) in
      Network.send eng.net ~src:pid ~dst ~due:(eng.time + delta) msg
    in
    (match r.Algorithm.broadcast with
     | Some msg ->
       let p = eng.cfg.Config.p in
       for dst = 0 to p - 1 do
         if dst <> pid then send_one dst msg
       done;
       if eng.cfg.Config.record_trace then
         Trace.add eng.trace
           (Trace.Broadcast { time = eng.time; src = pid; copies = p - 1 })
     | None -> ());
    List.iter
      (fun (dst, msg) -> if dst <> pid then send_one dst msg)
      r.Algorithm.unicasts;
    if r.Algorithm.halt then begin
      assert (A.is_done eng.states.(pid));
      eng.halted.(pid) <- true;
      if eng.cfg.Config.record_trace then
        Trace.add eng.trace (Trace.Halt { time = eng.time; pid })
    end

  let tick eng =
    let o = oracle eng in
    apply_crashes eng (eng.adv.Adversary.crash o);
    let p = eng.cfg.Config.p in
    let active = eng.adv.Adversary.schedule o in
    if Array.length active <> p then
      invalid_arg "Adversary.schedule: wrong array length";
    (* Time units are defined by the fastest processor: force someone to
       step if the adversary tried to delay every eligible processor. *)
    let any_eligible_active = ref false in
    for pid = 0 to p - 1 do
      if active.(pid) && eligible eng pid then any_eligible_active := true
    done;
    if not !any_eligible_active then begin
      let forced = ref (-1) in
      for pid = p - 1 downto 0 do
        if eligible eng pid then forced := pid
      done;
      if !forced >= 0 then active.(!forced) <- true
    end;
    for pid = 0 to p - 1 do
      if eligible eng pid then
        if active.(pid) then step_processor eng pid
        else if eng.cfg.Config.record_trace then
          Trace.add eng.trace (Trace.Delayed { time = eng.time; pid })
    done;
    if Bitset.is_full eng.global_done && informed eng then begin
      eng.finished <- true;
      eng.sigma <- eng.time
    end;
    eng.time <- eng.time + 1

  let run ?max_time eng =
    let cap =
      match max_time with
      | Some m -> m
      | None ->
        default_max_time ~p:eng.cfg.Config.p ~t:eng.cfg.Config.t ~d:eng.d
    in
    while (not eng.finished) && eng.time < cap do
      tick eng
    done;
    {
      Metrics.p = eng.cfg.Config.p;
      t = eng.cfg.Config.t;
      d = eng.d;
      work = eng.work;
      messages = Network.sent eng.net;
      sigma = (if eng.finished then eng.sigma else eng.time);
      executions = eng.executions;
      completed = eng.finished;
      halted =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 eng.halted;
      crashed =
        Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 eng.alive;
      per_proc_work = Array.copy eng.per_proc_work;
    }

  let state eng pid = eng.states.(pid)
  let trace eng = eng.trace
  let global_done eng = eng.global_done
end

let run_packed (module A : Algorithm.S) cfg ~d ~adversary ?max_time () =
  let module E = Make (A) in
  let eng = E.create cfg ~d ~adversary in
  E.run ?max_time eng

let run_traced (module A : Algorithm.S) cfg ~d ~adversary ?max_time () =
  let cfg =
    Config.make ~seed:cfg.Config.seed ~record_trace:true ~p:cfg.Config.p
      ~t:cfg.Config.t ()
  in
  let module E = Make (A) in
  let eng = E.create cfg ~d ~adversary in
  let m = E.run ?max_time eng in
  (m, E.trace eng)
