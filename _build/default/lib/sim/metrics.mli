(** Complexity accounting per Definitions 2.1 and 2.2 of the paper.

    Work [W] charges one unit per local step of every processor — task
    work, traversal bookkeeping, broadcasting, idling — until the instant
    [sigma] at which all tasks have been performed {e and} at least one
    processor knows it. Message complexity [M] counts point-to-point
    messages (a multicast to [m] destinations counts [m]). *)

type t = {
  p : int;
  t : int;
  d : int;  (** the adversary's delay bound for this run *)
  work : int;  (** W: total local steps up to [sigma] *)
  messages : int;  (** M: point-to-point messages sent up to [sigma] *)
  sigma : int;
      (** completion time: all tasks performed and >= 1 processor informed *)
  executions : int;  (** task executions, counting multiplicities *)
  completed : bool;  (** false iff the run hit its safety time cap *)
  halted : int;  (** processors that voluntarily halted by [sigma] *)
  crashed : int;  (** processors crashed by [sigma] *)
  per_proc_work : int array;  (** work breakdown, indexed by pid *)
}

val redundant : t -> int
(** Task executions beyond the first of each task: [executions - t]
    when the run completed. *)

val effort : t -> int
(** [W + M], the combined measure from the paper's introduction. *)

val pp : Format.formatter -> t -> unit
(** One-line human-readable summary. *)

val pp_wide : Format.formatter -> t -> unit
(** Multi-line summary with the per-processor breakdown. *)
