type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let size h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.data <- [||];
  h.size <- 0

let to_sorted_list h =
  let c = { cmp = h.cmp; data = Array.sub h.data 0 h.size; size = h.size } in
  let rec drain acc =
    match pop c with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
