lib/sim/metrics.ml: Array Format
