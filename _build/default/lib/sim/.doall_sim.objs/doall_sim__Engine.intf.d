lib/sim/engine.mli: Adversary Algorithm Bitset Config Metrics Trace
