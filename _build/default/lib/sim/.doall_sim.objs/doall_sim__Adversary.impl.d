lib/sim/adversary.ml: Array Printf Rng
