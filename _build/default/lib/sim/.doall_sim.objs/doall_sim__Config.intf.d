lib/sim/config.mli: Format
