lib/sim/rng.mli:
