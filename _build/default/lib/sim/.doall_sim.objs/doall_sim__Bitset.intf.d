lib/sim/bitset.mli: Format
