lib/sim/trace.ml: Array Bytes Format List
