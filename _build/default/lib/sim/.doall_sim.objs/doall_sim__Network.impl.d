lib/sim/network.ml: Array Event_queue
