lib/sim/bitset.ml: Array Bytes Char Format List
