lib/sim/algorithm.ml: Bitset Config
