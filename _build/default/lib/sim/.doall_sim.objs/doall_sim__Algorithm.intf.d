lib/sim/algorithm.mli: Bitset Config
