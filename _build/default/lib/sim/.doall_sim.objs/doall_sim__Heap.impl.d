lib/sim/heap.ml: Array List
