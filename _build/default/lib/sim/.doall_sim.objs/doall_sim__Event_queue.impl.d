lib/sim/event_queue.ml: Heap List Option
