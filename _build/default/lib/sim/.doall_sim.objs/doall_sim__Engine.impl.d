lib/sim/engine.ml: Adversary Algorithm Array Bitset Config Hashtbl List Metrics Network Rng Trace
