lib/sim/heap.mli:
