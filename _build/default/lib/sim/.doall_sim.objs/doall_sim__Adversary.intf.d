lib/sim/adversary.mli: Rng
