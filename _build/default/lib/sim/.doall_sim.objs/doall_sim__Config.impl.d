lib/sim/config.ml: Format
