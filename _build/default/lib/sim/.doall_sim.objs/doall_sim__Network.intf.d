lib/sim/network.mli:
