(** Time-ordered event queues with stable tie-breaking.

    A thin layer over {!Heap} that orders events by due time, breaking ties
    by insertion order. Determinism of the whole simulation depends on this
    tie-break: two messages delivered at the same instant are always
    processed in the order they were sent. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:int -> 'a -> unit
(** Schedule an event at absolute time [time]. Times may be scheduled in
    any order, including in the past (delivered on the next poll). *)

val pop_due : 'a t -> now:int -> 'a option
(** Removes and returns the earliest event with due time [<= now], or
    [None] when nothing is due. Ties resolve in insertion order. *)

val pop_all_due : 'a t -> now:int -> 'a list
(** All due events, in delivery order. *)

val next_time : 'a t -> int option
(** Due time of the earliest pending event. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
