type t = { words : Bytes.t; n : int; mutable count : int }

let bytes_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make (bytes_for n) '\000'; n; count = 0 }

let length b = b.n
let copy b = { words = Bytes.copy b.words; n = b.n; count = b.count }

let check b i =
  if i < 0 || i >= b.n then invalid_arg "Bitset: index out of range"

let mem b i =
  check b i;
  Char.code (Bytes.unsafe_get b.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set b i =
  check b i;
  let byte = i lsr 3 in
  let bit = 1 lsl (i land 7) in
  let v = Char.code (Bytes.unsafe_get b.words byte) in
  if v land bit = 0 then begin
    Bytes.unsafe_set b.words byte (Char.unsafe_chr (v lor bit));
    b.count <- b.count + 1
  end

let cardinal b = b.count
let is_full b = b.count = b.n
let is_empty b = b.count = 0

let popcount_byte =
  let tbl = Array.init 256 (fun v ->
      let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
      go v 0)
  in
  fun c -> tbl.(Char.code c)

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  let len = Bytes.length dst.words in
  let count = ref 0 in
  for i = 0 to len - 1 do
    let v =
      Char.code (Bytes.unsafe_get dst.words i)
      lor Char.code (Bytes.unsafe_get src.words i)
    in
    Bytes.unsafe_set dst.words i (Char.unsafe_chr v);
    count := !count + popcount_byte (Char.unsafe_chr v)
  done;
  dst.count <- !count

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset.subset: capacity mismatch";
  let len = Bytes.length a.words in
  let rec go i =
    i >= len
    || (let va = Char.code (Bytes.unsafe_get a.words i) in
        let vb = Char.code (Bytes.unsafe_get b.words i) in
        va land lnot vb = 0 && go (i + 1))
  in
  go 0

let equal a b = a.n = b.n && Bytes.equal a.words b.words

let iter_set b f =
  for i = 0 to b.n - 1 do
    if mem b i then f i
  done

let iter_missing b f =
  for i = 0 to b.n - 1 do
    if not (mem b i) then f i
  done

let to_list b =
  let acc = ref [] in
  for i = b.n - 1 downto 0 do
    if mem b i then acc := i :: !acc
  done;
  !acc

let missing b =
  let acc = ref [] in
  for i = b.n - 1 downto 0 do
    if not (mem b i) then acc := i :: !acc
  done;
  !acc

let first_missing b =
  if is_full b then None
  else begin
    let res = ref None in
    (try
       for i = 0 to b.n - 1 do
         if not (mem b i) then begin
           res := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let of_list n is =
  let b = create n in
  List.iter (set b) is;
  b

let pp ppf b =
  Format.fprintf ppf "{%a}/%d"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (to_list b) b.n
