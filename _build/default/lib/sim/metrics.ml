type t = {
  p : int;
  t : int;
  d : int;
  work : int;
  messages : int;
  sigma : int;
  executions : int;
  completed : bool;
  halted : int;
  crashed : int;
  per_proc_work : int array;
}

let redundant m = if m.completed then m.executions - m.t else m.executions
let effort m = m.work + m.messages

let pp ppf m =
  Format.fprintf ppf
    "p=%d t=%d d=%d | W=%d M=%d sigma=%d exec=%d redundant=%d%s" m.p m.t m.d
    m.work m.messages m.sigma m.executions (redundant m)
    (if m.completed then "" else " [TIMED OUT]")

let pp_wide ppf m =
  pp ppf m;
  Format.fprintf ppf "@.halted=%d crashed=%d@.per-processor work:@." m.halted
    m.crashed;
  Array.iteri
    (fun pid w -> Format.fprintf ppf "  p%-3d %d@." pid w)
    m.per_proc_work
