(** Deterministic, splittable pseudo-random number generator.

    The simulation substrate must be fully reproducible from a single seed:
    the engine, every simulated processor, and every adversary each own an
    independent stream derived from the run seed. We implement xoshiro256**
    (Blackman & Vigna) seeded through SplitMix64, the standard seeding
    recipe. The global [Stdlib.Random] state is never touched, so
    simulations are insensitive to ambient randomness and can be replayed
    bit-for-bit. *)

type t
(** A mutable generator. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Two generators
    built from equal seeds produce identical streams. *)

val split : t -> t
(** [split rng] derives a new generator whose stream is statistically
    independent of the parent's subsequent output. Used to give each
    simulated processor its own stream so that adversarial scheduling
    cannot perturb the coins of unrelated processors. *)

val copy : t -> t
(** [copy rng] duplicates the full generator state. The copy and the
    original then produce identical streams. Needed by the omniscient
    adversary's one-step lookahead (see {!Engine}). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng n] is uniform in [\[0, n)]. Requires [n > 0]. Uses rejection
    sampling, so the distribution is exactly uniform. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** A fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle; uniform over all permutations. *)

val permutation : t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of [0..n-1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement rng k n] draws [k] distinct values from
    [0..n-1], in random order. Requires [0 <= k <= n]. *)
