(** Run configuration visible to the algorithms.

    Deliberately, the message-delay bound [d] is {e not} part of this
    record: the paper's central modelling assumption is that algorithms
    have no knowledge of [d] and may not rely on any bound on it
    (Section 1). [d] is therefore a parameter of the adversarial
    environment, supplied to {!Engine.run} alongside the adversary — the
    type system makes it impossible for an algorithm to peek at it. *)

type t = private {
  p : int;  (** number of processors, with pids [0..p-1] *)
  t : int;  (** number of tasks, with ids [0..t-1] *)
  seed : int;  (** master seed; all randomness in a run derives from it *)
  record_trace : bool;  (** record per-event traces (costs memory) *)
}

val make : ?seed:int -> ?record_trace:bool -> p:int -> t:int -> unit -> t
(** Validates [p >= 1] and [t >= 1]. *)

val with_seed : t -> int -> t

val pp : Format.formatter -> t -> unit
