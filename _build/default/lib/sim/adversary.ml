(* See adversary.mli. *)

type oracle = {
  time : unit -> int;
  p : int;
  t : int;
  d : int;
  undone_count : unit -> int;
  undone : unit -> int list;
  task_done : int -> bool;
  would_perform : int -> int option;
  plan : pid:int -> horizon:int -> int list;
  alive : int -> bool;
  halted : int -> bool;
  note : string -> unit;
  rng : Rng.t;
}

type t = {
  name : string;
  schedule : oracle -> bool array;
  delay : oracle -> src:int -> dst:int -> int;
  crash : oracle -> int list;
}

let no_crash (_ : oracle) = []
let all_active o = Array.make o.p true

let fair =
  {
    name = "fair";
    schedule = all_active;
    delay = (fun _ ~src:_ ~dst:_ -> 1);
    crash = no_crash;
  }

let fixed_delay delta =
  {
    name = Printf.sprintf "fixed-delay-%d" delta;
    schedule = all_active;
    delay = (fun _ ~src:_ ~dst:_ -> delta);
    crash = no_crash;
  }

let max_delay =
  {
    name = "max-delay";
    schedule = all_active;
    delay = (fun o ~src:_ ~dst:_ -> o.d);
    crash = no_crash;
  }

let uniform_delay =
  {
    name = "uniform-delay";
    schedule = all_active;
    delay = (fun o ~src:_ ~dst:_ -> 1 + Rng.int o.rng (max 1 o.d));
    crash = no_crash;
  }
