type 'a event = { time : int; seq : int; payload : 'a }

type 'a t = { heap : 'a event Heap.t; mutable next_seq : int }

let cmp a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () = { heap = Heap.create ~cmp; next_seq = 0 }

let add q ~time payload =
  Heap.add q.heap { time; seq = q.next_seq; payload };
  q.next_seq <- q.next_seq + 1

let pop_due q ~now =
  match Heap.peek q.heap with
  | Some ev when ev.time <= now ->
    ignore (Heap.pop q.heap);
    Some ev.payload
  | Some _ | None -> None

let pop_all_due q ~now =
  let rec go acc =
    match pop_due q ~now with
    | Some x -> go (x :: acc)
    | None -> List.rev acc
  in
  go []

let next_time q = Option.map (fun ev -> ev.time) (Heap.peek q.heap)
let size q = Heap.size q.heap
let is_empty q = Heap.is_empty q.heap
