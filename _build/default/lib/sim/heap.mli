(** Resizable binary min-heaps.

    A small, allocation-light priority queue used by the event queue
    ({!Event_queue}) that drives message delivery. Generic so that tests
    can exercise it independently of the simulation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** O(log n) insertion. *)

val peek : 'a t -> 'a option
(** Minimum element, without removal. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Drains a {e copy} of the heap; the heap itself is unchanged. Ordered by
    [cmp]. Intended for tests and debugging (O(n log n)). *)
