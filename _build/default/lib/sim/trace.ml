type event =
  | Step of { time : int; pid : int }
  | Delayed of { time : int; pid : int }
  | Perform of { time : int; pid : int; task : int; fresh : bool }
  | Broadcast of { time : int; src : int; copies : int }
  | Halt of { time : int; pid : int }
  | Crash of { time : int; pid : int }
  | Note of { time : int; text : string }

type t = { mutable events : event list; mutable length : int }

let create () = { events = []; length = 0 }

let add t ev =
  t.events <- ev :: t.events;
  t.length <- t.length + 1

let length t = t.length
let events t = List.rev t.events
let iter t f = List.iter f (events t)

let time_of = function
  | Step { time; _ }
  | Delayed { time; _ }
  | Perform { time; _ }
  | Broadcast { time; src = _; copies = _ }
  | Halt { time; _ }
  | Crash { time; _ }
  | Note { time; _ } -> time

let timeline t ~p ~until =
  let grid = Array.init p (fun _ -> Bytes.make until ' ') in
  let put time pid c =
    if time >= 0 && time < until && pid >= 0 && pid < p then
      Bytes.set grid.(pid) time c
  in
  let crashed_at = Array.make p max_int in
  let halted_at = Array.make p max_int in
  iter t (fun ev ->
      match ev with
      | Step { time; pid } ->
        (* only mark if no richer mark present *)
        if time < until && Bytes.get grid.(pid) time = ' ' then put time pid 'o'
      | Perform { time; pid; _ } -> put time pid '#'
      | Delayed { time; pid } -> put time pid '.'
      | Halt { time; pid } ->
        put time pid 'H';
        if time < halted_at.(pid) then halted_at.(pid) <- time
      | Crash { time; pid } ->
        put time pid 'X';
        if time < crashed_at.(pid) then crashed_at.(pid) <- time
      | Broadcast _ | Note _ -> ());
  (* Extend crash / halt markers to the right for readability. *)
  Array.iteri (fun pid row ->
      let from = min crashed_at.(pid) halted_at.(pid) in
      if from < until then
        for time = from + 1 to until - 1 do
          if Bytes.get row time = ' ' then
            Bytes.set row time (if crashed_at.(pid) <= time then 'x' else 'h')
        done)
    grid;
  Array.map Bytes.to_string grid

let pp_timeline ppf (t, p, until) =
  let rows = timeline t ~p ~until in
  Array.iteri
    (fun pid row -> Format.fprintf ppf "p%-3d |%s|@." pid row)
    rows
