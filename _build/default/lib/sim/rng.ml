type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a seed into xoshiro's 256-bit state and
   to derive split streams. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive a child seed from the parent stream; SplitMix re-expansion keeps
     the child decorrelated from subsequent parent output. *)
  of_seed64 (bits64 t)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits for exact uniformity. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let bound = mask / n * n in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    if v < bound then v mod n else draw ()
  in
  draw ()

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher-Yates over 0..n-1; O(n) space, O(n + k) time. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k
