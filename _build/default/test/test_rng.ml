open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check "different seeds give different streams" true !differs

let test_copy_equal_stream () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_split_decorrelates () =
  let a = Rng.create 9 in
  let child = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 child then incr same
  done;
  check "split stream differs from parent" true (!same < 4)

let test_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_int_bad_bound () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_all () =
  let rng = Rng.create 4 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  check "all values hit" true (Array.for_all Fun.id seen)

let test_int_roughly_uniform () =
  let rng = Rng.create 5 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Rng.int rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      check "within 5% of expectation" true
        (abs (c - (n / 4)) < n / 20))
    counts

let test_float_range () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check "float in range" true (v >= 0.0 && v < 2.5)
  done

let test_bool_balance () =
  let rng = Rng.create 8 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  check "roughly balanced" true (abs (!trues - (n / 2)) < n / 20)

let test_permutation_valid () =
  let rng = Rng.create 11 in
  for n = 1 to 30 do
    let p = Rng.permutation rng n in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "is a permutation"
      (Array.init n Fun.id) sorted
  done

let test_shuffle_preserves_multiset () =
  let rng = Rng.create 12 in
  let a = [| 5; 5; 1; 2; 9; 1 |] in
  let b = Array.copy a in
  Rng.shuffle rng b;
  Array.sort compare a;
  let b' = Array.copy b in
  Array.sort compare b';
  Alcotest.(check (array int)) "same multiset" a b'

let test_sample_without_replacement () =
  let rng = Rng.create 13 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng 5 12 in
    check_int "size" 5 (Array.length s);
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun v ->
        check "in range" true (v >= 0 && v < 12);
        check "distinct" false (Hashtbl.mem tbl v);
        Hashtbl.add tbl v ())
      s
  done

let test_sample_full () =
  let rng = Rng.create 14 in
  let s = Rng.sample_without_replacement rng 6 6 in
  let s = Array.copy s in
  Array.sort compare s;
  Alcotest.(check (array int)) "full sample is a permutation"
    (Array.init 6 Fun.id) s

let test_pick_member () =
  let rng = Rng.create 15 in
  let a = [| 3; 1; 4 |] in
  for _ = 1 to 40 do
    let v = Rng.pick rng a in
    check "member" true (Array.exists (( = ) v) a)
  done

let suite =
  [
    Alcotest.test_case "determinism from seed" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy replays stream" `Quick test_copy_equal_stream;
    Alcotest.test_case "split decorrelates" `Quick test_split_decorrelates;
    Alcotest.test_case "int in range" `Quick test_int_range;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "int covers all values" `Quick test_int_covers_all;
    Alcotest.test_case "int roughly uniform" `Quick test_int_roughly_uniform;
    Alcotest.test_case "float in range" `Quick test_float_range;
    Alcotest.test_case "bool balanced" `Quick test_bool_balance;
    Alcotest.test_case "permutation is valid" `Quick test_permutation_valid;
    Alcotest.test_case "shuffle preserves multiset" `Quick
      test_shuffle_preserves_multiset;
    Alcotest.test_case "sample without replacement" `Quick
      test_sample_without_replacement;
    Alcotest.test_case "sample k=n" `Quick test_sample_full;
    Alcotest.test_case "pick returns a member" `Quick test_pick_member;
  ]
