open Doall_perms
open Doall_sim

let check_int = Alcotest.(check int)
let check = Alcotest.(check bool)

let test_identity_all_lrm () =
  (* every element of the identity is a new maximum *)
  check_int "lrm(id_6)" 6 (Lrm.lrm (Perm.identity 6))

let test_reverse_single_lrm () =
  check_int "lrm(reverse_6)" 1 (Lrm.lrm (Perm.reverse 6))

let test_knuth_example () =
  (* <1, 0, 3, 2, 5, 4>: maxima at values 1, 3, 5 *)
  check_int "interleaved" 3 (Lrm.lrm (Perm.of_array [| 1; 0; 3; 2; 5; 4 |]))

let test_lrm_positions () =
  Alcotest.(check (list int)) "positions" [ 0; 2; 4 ]
    (Lrm.lrm_positions (Perm.of_array [| 1; 0; 3; 2; 5; 4 |]))

let test_singleton () =
  check_int "lrm of single" 1 (Lrm.lrm (Perm.identity 1))

let test_d1_equals_lrm () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let p = Perm.random rng 12 in
    check_int "d=1 coincides with lrm" (Lrm.lrm p) (Lrm.d_lrm ~d:1 p)
  done

let test_dn_counts_all () =
  let rng = Rng.create 6 in
  for n = 1 to 12 do
    let p = Perm.random rng n in
    check_int "d=n counts everything" n (Lrm.d_lrm ~d:n p)
  done

let test_d_lrm_example () =
  (* pi = <3, 4, 0, 1, 2>.
     d=1: 3,4 are lrm -> 2.
     d=2: 3,4 qualify; 0 has two greater before (3,4) -> not; 1 likewise; 2
     likewise -> 2.
     d=3: now 0,1,2 each have exactly 2 greater before (< 3) -> all -> 5. *)
  let p = Perm.of_array [| 3; 4; 0; 1; 2 |] in
  check_int "d=1" 2 (Lrm.d_lrm ~d:1 p);
  check_int "d=2" 2 (Lrm.d_lrm ~d:2 p);
  check_int "d=3" 5 (Lrm.d_lrm ~d:3 p)

let test_reverse_d_lrm () =
  (* reverse order: element at position j has j greater predecessors, so
     exactly the first d positions are d-lrm. *)
  let p = Perm.reverse 10 in
  for d = 1 to 10 do
    check_int "first d positions" d (Lrm.d_lrm ~d p)
  done

let test_d_requires_positive () =
  Alcotest.check_raises "d=0" (Invalid_argument "Lrm.d_lrm: d must be >= 1")
    (fun () -> ignore (Lrm.d_lrm ~d:0 (Perm.identity 3)))

let test_d_lrm_positions_subset () =
  let p = Perm.of_array [| 3; 4; 0; 1; 2 |] in
  Alcotest.(check (list int)) "positions d=3" [ 0; 1; 2; 3; 4 ]
    (Lrm.d_lrm_positions ~d:3 p);
  Alcotest.(check (list int)) "positions d=1" [ 0; 1 ]
    (Lrm.d_lrm_positions ~d:1 p)

let test_greater_before () =
  let g = Lrm.greater_before (Perm.of_array [| 3; 4; 0; 1; 2 |]) in
  Alcotest.(check (array int)) "counts" [| 0; 0; 2; 2; 2 |] g

let prop_profile_matches_per_d =
  QCheck2.Test.make ~name:"d-lrm profile agrees with per-d computation"
    ~count:200
    QCheck2.Gen.(int_range 1 25)
    (fun n ->
      let rng = Rng.create (n * 97) in
      let p = Perm.random rng n in
      let profile = Lrm.d_lrm_profile p in
      profile.(0) = 0
      && List.for_all
           (fun d -> profile.(d) = Lrm.d_lrm ~d p)
           (List.init n (fun i -> i + 1)))

let prop_monotone_in_d =
  QCheck2.Test.make ~name:"d-lrm monotone in d" ~count:200
    QCheck2.Gen.(int_range 1 30)
    (fun n ->
      let rng = Rng.create (n * 13) in
      let p = Perm.random rng n in
      let prev = ref 0 in
      List.for_all
        (fun d ->
          let v = Lrm.d_lrm ~d p in
          let ok = v >= !prev in
          prev := v;
          ok)
        (List.init n (fun i -> i + 1)))

let prop_bounds =
  QCheck2.Test.make ~name:"1 <= lrm <= n; d <= d-lrm <= n" ~count:200
    QCheck2.Gen.(pair (int_range 1 30) (int_range 1 10))
    (fun (n, d) ->
      let rng = Rng.create ((n * 100) + d) in
      let p = Perm.random rng n in
      let l = Lrm.lrm p in
      let dl = Lrm.d_lrm ~d:(min d n) p in
      l >= 1 && l <= n && dl >= min d n && dl <= n)

let prop_first_d_always_dlrm =
  QCheck2.Test.make ~name:"first d elements are always d-lrm" ~count:200
    QCheck2.Gen.(pair (int_range 2 25) (int_range 1 8))
    (fun (n, d) ->
      let rng = Rng.create ((n * 37) + d) in
      let p = Perm.random rng n in
      let d = min d n in
      let positions = Lrm.d_lrm_positions ~d p in
      List.for_all (fun j -> List.mem j positions) (List.init d Fun.id))

let prop_brute_force_agreement =
  QCheck2.Test.make ~name:"d-lrm agrees with O(n^2) definition" ~count:300
    QCheck2.Gen.(pair (int_range 1 12) (int_range 1 12))
    (fun (n, d) ->
      let rng = Rng.create ((n * 1009) + d) in
      let p = Perm.random rng n in
      let arr = Perm.to_array p in
      let brute = ref 0 in
      for j = 0 to n - 1 do
        let greater_before = ref 0 in
        for i = 0 to j - 1 do
          if arr.(i) > arr.(j) then incr greater_before
        done;
        if !greater_before < d then incr brute
      done;
      Lrm.d_lrm ~d p = !brute)

let suite =
  [
    Alcotest.test_case "identity: n maxima" `Quick test_identity_all_lrm;
    Alcotest.test_case "reverse: 1 maximum" `Quick test_reverse_single_lrm;
    Alcotest.test_case "interleaved example" `Quick test_knuth_example;
    Alcotest.test_case "lrm positions" `Quick test_lrm_positions;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "d=1 equals lrm" `Quick test_d1_equals_lrm;
    Alcotest.test_case "d=n counts all" `Quick test_dn_counts_all;
    Alcotest.test_case "worked d-lrm example" `Quick test_d_lrm_example;
    Alcotest.test_case "reverse d-lrm" `Quick test_reverse_d_lrm;
    Alcotest.test_case "d must be positive" `Quick test_d_requires_positive;
    Alcotest.test_case "d-lrm positions" `Quick test_d_lrm_positions_subset;
    Alcotest.test_case "greater_before" `Quick test_greater_before;
    QCheck_alcotest.to_alcotest prop_profile_matches_per_d;
    QCheck_alcotest.to_alcotest prop_monotone_in_d;
    QCheck_alcotest.to_alcotest prop_bounds;
    QCheck_alcotest.to_alcotest prop_first_d_always_dlrm;
    QCheck_alcotest.to_alcotest prop_brute_force_agreement;
  ]
