open Doall_core
open Doall_perms
open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_lockstep_counts () =
  let n = 4 in
  let psi = Gen.identity_list ~n ~count:n in
  let stats =
    Oblido.replay ~psi ~rounds:(Oblido.lockstep_rounds ~n ~count:n)
  in
  check_int "n^2 executions" (n * n) stats.Oblido.executions;
  (* all processors hit job j in the same round: all primary *)
  check_int "lockstep identity: all primary" (n * n) stats.Oblido.primary

let test_serial_identity () =
  (* one processor at a time, identical schedules: only the first pass is
     primary *)
  let n = 5 in
  let psi = Gen.identity_list ~n ~count:n in
  let rounds = List.concat_map (fun u -> List.init n (fun _ -> [ u ]))
      (List.init n Fun.id)
  in
  let stats = Oblido.replay ~psi ~rounds in
  check_int "n^2 executions" (n * n) stats.Oblido.executions;
  check_int "n primary" n stats.Oblido.primary

let test_two_processor_reverse () =
  (* Section 4 example, p2 = reverse of p1. Strictly serial p1-then-p2:
     every p2 execution is secondary, so exactly n primaries. Racing in
     lockstep instead: p2's first job (n-1) is executed concurrently with
     p1's first (0), giving one extra primary when n >= 2 and the halves
     never collide earlier (reverse vs identity meet in the middle). *)
  let n = 6 in
  let psi = Gen.reverse_identity_pair ~n in
  let serial =
    List.init n (fun _ -> [ 0 ]) @ List.init n (fun _ -> [ 1 ])
  in
  let stats = Oblido.replay ~psi ~rounds:serial in
  check_int "serial: n primaries" n stats.Oblido.primary;
  let lockstep = Oblido.lockstep_rounds ~n ~count:2 in
  let stats2 = Oblido.replay ~psi ~rounds:lockstep in
  (* identity covers 0,1,2 while reverse covers 5,4,3: disjoint halves,
     so every execution before the crossover is primary. *)
  check_int "lockstep: all 2n primary until crossover" (2 * n)
    stats2.Oblido.executions;
  check "lockstep primaries within [n, Cont]" true
    (stats2.Oblido.primary >= n
     && stats2.Oblido.primary
        <= Contention.contention_exact psi + n (* slack: concurrency *))

let test_primary_at_least_n () =
  let rng = Rng.create 41 in
  for n = 2 to 6 do
    let psi = Gen.random_list ~rng ~n ~count:n in
    let rounds = Oblido.random_rounds ~rng ~n ~count:n ~prob:0.5 in
    let stats = Oblido.replay ~psi ~rounds in
    check "primary >= n" true (stats.Oblido.primary >= n);
    check_int "executions = n^2" (n * n) stats.Oblido.executions
  done

let test_lemma_4_2_bound () =
  (* Primary executions never exceed Cont(psi), over many random
     interleavings (Lemma 4.2). n small enough for exact contention. *)
  let rng = Rng.create 42 in
  for n = 2 to 6 do
    let psi = Gen.random_list ~rng ~n ~count:n in
    let cont = Contention.contention_exact psi in
    for trial = 1 to 20 do
      let prob = 0.2 +. (0.15 *. float_of_int (trial mod 5)) in
      let rounds = Oblido.random_rounds ~rng ~n ~count:n ~prob in
      let stats = Oblido.replay ~psi ~rounds in
      if stats.Oblido.primary > cont then
        Alcotest.failf "n=%d trial=%d: primary %d > Cont %d" n trial
          stats.Oblido.primary cont
    done
  done

let test_lemma_4_2_adversarial () =
  let rng = Rng.create 43 in
  for n = 2 to 6 do
    let psi = Gen.random_list ~rng ~n ~count:n in
    let cont = Contention.contention_exact psi in
    let rounds = Oblido.adversarial_rounds ~psi in
    let stats = Oblido.replay ~psi ~rounds in
    check "adversarial interleaving still bounded" true
      (stats.Oblido.primary <= cont)
  done

let test_low_contention_certificate_orders_lists () =
  (* A certified list's contention (the Lemma 4.2 primary bound) is
     strictly below the identity list's n^2, so its worst-case primary
     guarantee is strictly better. *)
  let rng = Rng.create 44 in
  let n = 5 in
  let good = (Search.certified ~rng n).Search.list in
  let bad = Gen.identity_list ~n ~count:n in
  let cg = Contention.contention_exact good in
  let cb = Contention.contention_exact bad in
  check "certified bound strictly better" true (cg < cb);
  (* and the measured primaries respect the certified bound *)
  let stats = Oblido.replay ~psi:good ~rounds:(Oblido.adversarial_rounds ~psi:good) in
  check "measured primaries under certificate" true (stats.Oblido.primary <= cg)

let test_lemma_4_2_exhaustive_n3 () =
  (* Complete verification at n = 3: every list psi in (S_3)^3 (216
     lists) against every serial interleaving of the 3x3 executions
     (9!/(3!)^3 = 1680 orderings): primaries <= Cont(psi), no exceptions.
     This is Lemma 4.2 proved by enumeration at this size. *)
  let perms3 = Array.of_list (Perm.all 3) in
  (* enumerate interleavings as sequences over {0,1,2} with three of each *)
  let interleavings =
    let acc = ref [] in
    let counts = [| 0; 0; 0 |] in
    let seq = Array.make 9 0 in
    let rec go depth =
      if depth = 9 then acc := Array.copy seq :: !acc
      else
        for u = 0 to 2 do
          if counts.(u) < 3 then begin
            counts.(u) <- counts.(u) + 1;
            seq.(depth) <- u;
            go (depth + 1);
            counts.(u) <- counts.(u) - 1
          end
        done
    in
    go 0;
    !acc
  in
  check_int "1680 interleavings" 1680 (List.length interleavings);
  let checked = ref 0 in
  Array.iter (fun p0 ->
      Array.iter (fun p1 ->
          Array.iter (fun p2 ->
              let psi = [ p0; p1; p2 ] in
              let cont = Contention.contention_exact psi in
              List.iter
                (fun seq ->
                  let rounds = Array.to_list (Array.map (fun u -> [ u ]) seq) in
                  let stats = Oblido.replay ~psi ~rounds in
                  incr checked;
                  if stats.Oblido.primary > cont then
                    Alcotest.failf
                      "Lemma 4.2 violated: psi=%s cont=%d primaries=%d"
                      (String.concat ";"
                         (List.map
                            (fun pi ->
                              String.concat ""
                                (List.map string_of_int
                                   (Array.to_list (Perm.to_array pi))))
                            psi))
                      cont stats.Oblido.primary)
                interleavings)
            perms3)
        perms3)
    perms3;
  check_int "all 216 * 1680 cases checked" (216 * 1680) !checked

let test_duplicate_pid_rejected () =
  let psi = Gen.identity_list ~n:2 ~count:2 in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Oblido.replay: duplicate pid in round") (fun () ->
      ignore (Oblido.replay ~psi ~rounds:[ [ 0; 0 ] ]))

let test_engine_oblido () =
  let n = 6 in
  let psi = Gen.seeded_list ~seed:7 ~n ~count:6 in
  let cfg = Config.make ~p:6 ~t:6 () in
  let m =
    Engine.run_packed (Oblido.make ~psi ()) cfg ~d:3
      ~adversary:Adversary.fair ()
  in
  check "completes" true m.Doall_sim.Metrics.completed;
  check_int "no messages (oblivious)" 0 m.Doall_sim.Metrics.messages;
  check_int "everyone does everything" (6 * 6) m.Doall_sim.Metrics.executions

let test_engine_oblido_with_jobs () =
  let psi = Gen.seeded_list ~seed:8 ~n:4 ~count:4 in
  let cfg = Config.make ~p:4 ~t:13 () in
  let m =
    Engine.run_packed (Oblido.make ~psi ()) cfg ~d:2
      ~adversary:Adversary.fair ()
  in
  check "completes with jobs" true m.Doall_sim.Metrics.completed;
  check_int "p * t executions" (4 * 13) m.Doall_sim.Metrics.executions

let prop_replay_primary_bounds =
  QCheck2.Test.make ~name:"n <= primary <= executions = n*count" ~count:100
    QCheck2.Gen.(pair (int_range 2 7) (int_range 2 7))
    (fun (n, count) ->
      let rng = Rng.create ((n * 100) + count) in
      let psi = Gen.random_list ~rng ~n ~count in
      let rounds = Oblido.random_rounds ~rng ~n ~count ~prob:0.6 in
      let stats = Oblido.replay ~psi ~rounds in
      stats.Oblido.executions = n * count
      && stats.Oblido.primary >= n
      && stats.Oblido.primary <= stats.Oblido.executions)

let suite =
  [
    Alcotest.test_case "lockstep identity counts" `Quick test_lockstep_counts;
    Alcotest.test_case "serial identity: n primaries" `Quick
      test_serial_identity;
    Alcotest.test_case "two-processor reverse example" `Quick
      test_two_processor_reverse;
    Alcotest.test_case "primary >= n" `Quick test_primary_at_least_n;
    Alcotest.test_case "Lemma 4.2: primary <= Cont (random)" `Slow
      test_lemma_4_2_bound;
    Alcotest.test_case "Lemma 4.2: primary <= Cont (adversarial)" `Quick
      test_lemma_4_2_adversarial;
    Alcotest.test_case "low contention helps" `Quick
      test_low_contention_certificate_orders_lists;
    Alcotest.test_case "Lemma 4.2 exhaustive at n=3" `Slow
      test_lemma_4_2_exhaustive_n3;
    Alcotest.test_case "duplicate pid rejected" `Quick
      test_duplicate_pid_rejected;
    Alcotest.test_case "engine ObliDo" `Quick test_engine_oblido;
    Alcotest.test_case "engine ObliDo with jobs" `Quick
      test_engine_oblido_with_jobs;
    QCheck_alcotest.to_alcotest prop_replay_primary_bounds;
  ]
