open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_registries_populated () =
  check "at least 10 algorithms" true (List.length Runner.algorithms >= 10);
  check "at least 12 adversaries" true (List.length Runner.adversaries >= 12)

let test_registry_names_unique () =
  let names = List.map (fun s -> s.Runner.algo_name) Runner.algorithms in
  check_int "unique algo names" (List.length names)
    (List.length (List.sort_uniq compare names));
  let advs = List.map (fun s -> s.Runner.adv_name) Runner.adversaries in
  check_int "unique adv names" (List.length advs)
    (List.length (List.sort_uniq compare advs))

let test_find () =
  check "finds da-q4" true ((Runner.find_algo "da-q4").Runner.algo_name = "da-q4");
  check "finds lb-det" true ((Runner.find_adv "lb-det").Runner.adv_name = "lb-det")

let test_find_unknown () =
  check "unknown algo raises Failure" true
    (try ignore (Runner.find_algo "nope"); false with Failure _ -> true);
  check "unknown adv raises Failure" true
    (try ignore (Runner.find_adv "nope"); false with Failure _ -> true)

let test_run_returns_metrics () =
  let r = Runner.run ~algo:"padet" ~adv:"fair" ~p:4 ~t:16 ~d:2 () in
  check "completed" true r.Runner.metrics.Doall_sim.Metrics.completed;
  check_int "p recorded" 4 r.Runner.metrics.Doall_sim.Metrics.p

let test_every_algo_runs_under_every_adversary () =
  List.iter
    (fun aspec ->
      List.iter
        (fun vspec ->
          let r =
            Runner.run ~algo:aspec.Runner.algo_name
              ~adv:vspec.Runner.adv_name ~p:5 ~t:15 ~d:3 ~seed:2 ()
          in
          if not r.Runner.metrics.Doall_sim.Metrics.completed then
            Alcotest.failf "%s vs %s did not complete" aspec.Runner.algo_name
              vspec.Runner.adv_name)
        Runner.adversaries)
    Runner.algorithms

let test_deterministic_flags () =
  List.iter
    (fun aspec ->
      if aspec.Runner.deterministic then begin
        let w seed =
          (Runner.run ~seed ~algo:aspec.Runner.algo_name ~adv:"max-delay"
             ~p:6 ~t:18 ~d:4 ())
            .Runner.metrics
            .Doall_sim.Metrics.work
        in
        (* deterministic algorithms are seed-insensitive under a
           deterministic adversary *)
        check_int (aspec.Runner.algo_name ^ " seed-insensitive") (w 1) (w 2)
      end)
    Runner.algorithms

let test_average_work () =
  let w, m =
    Runner.average_work ~seeds:[ 1; 2; 3 ] ~algo:"paran1" ~adv:"fair" ~p:4
      ~t:16 ~d:2 ()
  in
  check "mean work positive" true (w > 0.0);
  check "mean messages positive" true (m > 0.0)

let test_run_traced () =
  let r, tr =
    Runner.run_traced ~algo:"trivial" ~adv:"fair" ~p:2 ~t:4 ~d:1 ()
  in
  check "completed" true r.Runner.metrics.Doall_sim.Metrics.completed;
  check "trace non-empty" true (Doall_sim.Trace.length tr > 0)

let suite =
  [
    Alcotest.test_case "registries populated" `Quick test_registries_populated;
    Alcotest.test_case "registry names unique" `Quick
      test_registry_names_unique;
    Alcotest.test_case "find by name" `Quick test_find;
    Alcotest.test_case "unknown names rejected" `Quick test_find_unknown;
    Alcotest.test_case "run returns metrics" `Quick test_run_returns_metrics;
    Alcotest.test_case "full registry cross-product" `Slow
      test_every_algo_runs_under_every_adversary;
    Alcotest.test_case "deterministic algorithms seed-insensitive" `Quick
      test_deterministic_flags;
    Alcotest.test_case "average_work" `Quick test_average_work;
    Alcotest.test_case "run_traced" `Quick test_run_traced;
  ]
