open Doall_perms

let check_int = Alcotest.(check int)
let check = Alcotest.(check bool)

let test_digits_example () =
  (* 11 in base 3 = 102 -> little-endian [2; 0; 1] *)
  Alcotest.(check (array int)) "11 base 3" [| 2; 0; 1 |]
    (Qary.digits ~q:3 ~width:3 11)

let test_digits_padding () =
  Alcotest.(check (array int)) "padded" [| 1; 0; 0; 0 |]
    (Qary.digits ~q:2 ~width:4 1)

let test_digits_truncation () =
  (* width smaller than needed keeps only low digits *)
  Alcotest.(check (array int)) "truncated" [| 1; 1 |]
    (Qary.digits ~q:2 ~width:2 7)

let test_roundtrip () =
  for q = 2 to 5 do
    for v = 0 to 200 do
      let w = Qary.width_for ~q v in
      check_int "roundtrip" v (Qary.of_digits ~q (Qary.digits ~q ~width:w v))
    done
  done

let test_digit_accessor () =
  check_int "digit 0 of 11 base 3" 2 (Qary.digit ~q:3 11 0);
  check_int "digit 1 of 11 base 3" 0 (Qary.digit ~q:3 11 1);
  check_int "digit 2 of 11 base 3" 1 (Qary.digit ~q:3 11 2);
  check_int "digit 5 of 11 base 3" 0 (Qary.digit ~q:3 11 5)

let test_width_for () =
  check_int "width for 0 base 2" 1 (Qary.width_for ~q:2 0);
  check_int "width for 1 base 2" 1 (Qary.width_for ~q:2 1);
  check_int "width for 2 base 2" 2 (Qary.width_for ~q:2 2);
  check_int "width for 8 base 2" 4 (Qary.width_for ~q:2 8);
  check_int "width for 80 base 3" 4 (Qary.width_for ~q:3 80);
  check_int "width for 81 base 3" 5 (Qary.width_for ~q:3 81)

let test_validation () =
  Alcotest.check_raises "q=1" (Invalid_argument "Qary: q must be >= 2")
    (fun () -> ignore (Qary.digits ~q:1 ~width:2 0));
  Alcotest.check_raises "bad digit"
    (Invalid_argument "Qary.of_digits: bad digit") (fun () ->
      ignore (Qary.of_digits ~q:2 [| 2 |]))

let prop_digits_in_range =
  QCheck2.Test.make ~name:"digits always in [0, q)" ~count:300
    QCheck2.Gen.(pair (int_range 2 9) (int_range 0 100000))
    (fun (q, v) ->
      let w = Qary.width_for ~q v in
      Array.for_all (fun dgt -> dgt >= 0 && dgt < q) (Qary.digits ~q ~width:w v))

let prop_digit_matches_digits =
  QCheck2.Test.make ~name:"digit agrees with digits array" ~count:300
    QCheck2.Gen.(pair (int_range 2 9) (int_range 0 100000))
    (fun (q, v) ->
      let w = Qary.width_for ~q v in
      let a = Qary.digits ~q ~width:w v in
      List.for_all (fun m -> a.(m) = Qary.digit ~q v m) (List.init w Fun.id))

let suite =
  [
    Alcotest.test_case "digits example" `Quick test_digits_example;
    Alcotest.test_case "digits padding" `Quick test_digits_padding;
    Alcotest.test_case "digits truncation" `Quick test_digits_truncation;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "digit accessor" `Quick test_digit_accessor;
    Alcotest.test_case "width_for" `Quick test_width_for;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_digits_in_range;
    QCheck_alcotest.to_alcotest prop_digit_matches_digits;
  ]
